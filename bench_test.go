package hadooppreempt_test

// The benchmark harness regenerates every table/figure of the paper's
// evaluation (§IV). One benchmark per figure; the headline numbers are
// attached as custom metrics so `go test -bench` output doubles as the
// reproduction record:
//
//	go test -bench=. -benchmem
//
// Figures 2/3 report seconds at r=50%; Figure 4 reports the worst-case
// point. Absolute values depend on the simulated hardware; the shapes are
// the reproduction target (see EXPERIMENTS.md).

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	hp "hadooppreempt"
	"hadooppreempt/internal/experiments"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/metrics"
	"hadooppreempt/internal/sweep"
)

// benchSeed keeps benchmark runs reproducible.
const benchSeed = 1

// benchCfg builds the serial sweep configuration the benchmarks use.
func benchCfg(reps int) hp.ExperimentConfig {
	return hp.ExperimentConfig{Reps: reps, Seed: benchSeed}
}

// BenchmarkFigure1Schedules regenerates the task execution schedules of
// Figure 1 (wait / kill / suspend at r=50%).
func BenchmarkFigure1Schedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hp.Figure1(benchCfg(1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Gantt) != 3 {
			b.Fatalf("gantt charts = %d, want 3", len(res.Gantt))
		}
	}
}

// BenchmarkFigure2aSojournLightweight regenerates Figure 2a: sojourn time
// of th vs tl progress, light-weight tasks.
func BenchmarkFigure2aSojournLightweight(b *testing.B) {
	var res *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hp.Figure2(benchCfg(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAt(b, res.Sojourn, 50, "sojourn_s")
}

// BenchmarkFigure2bMakespanLightweight regenerates Figure 2b: makespan vs
// tl progress, light-weight tasks.
func BenchmarkFigure2bMakespanLightweight(b *testing.B) {
	var res *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hp.Figure2(benchCfg(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAt(b, res.Makespan, 50, "makespan_s")
}

// BenchmarkFigure3aSojournWorstCase regenerates Figure 3a: sojourn time
// with memory-hungry (2 GB) tasks.
func BenchmarkFigure3aSojournWorstCase(b *testing.B) {
	var res *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hp.Figure3(benchCfg(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAt(b, res.Sojourn, 50, "sojourn_s")
}

// BenchmarkFigure3bMakespanWorstCase regenerates Figure 3b: makespan with
// memory-hungry tasks.
func BenchmarkFigure3bMakespanWorstCase(b *testing.B) {
	var res *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hp.Figure3(benchCfg(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAt(b, res.Makespan, 50, "makespan_s")
}

// BenchmarkFigure4MemoryFootprint regenerates Figure 4: tl's swap traffic
// and the susp overheads vs kill/wait as th's allocation grows.
func BenchmarkFigure4MemoryFootprint(b *testing.B) {
	var res *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hp.Figure4(benchCfg(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.PagedMB, "paged_MB@2.5G")
	b.ReportMetric(last.SojournOverheadFrac*100, "sojourn_ovh_%")
	b.ReportMetric(last.MakespanOverheadFrac*100, "makespan_ovh_%")
}

// BenchmarkAblationCheckpointVsSuspend reproduces the §IV-C comparison
// with Natjam-style checkpointing: the application-level primitive pays
// serialization on every preemption, the OS-assisted one does not.
func BenchmarkAblationCheckpointVsSuspend(b *testing.B) {
	var res *experiments.NatjamResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hp.NatjamAblation(benchCfg(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SuspendOverheadFrac*100, "susp_ovh_%")
	b.ReportMetric(res.CheckpointOverheadFrac*100, "ckpt_ovh_%")
}

// BenchmarkAblationHeartbeatInterval quantifies the control-latency
// component of the suspend primitive: commands ride heartbeats (§III-B),
// so a longer interval delays the slot hand-off. Out-of-band heartbeats
// are disabled here — with them on, piggybacking masks the interval
// entirely (see BenchmarkAblationOutOfBandHeartbeats).
func BenchmarkAblationHeartbeatInterval(b *testing.B) {
	for _, hb := range []int{1, 3, 10} {
		hb := hb
		b.Run(benchName("hb", hb, "s"), func(b *testing.B) {
			var sojourn float64
			for i := 0; i < b.N; i++ {
				ccfg := mapreduce.DefaultClusterConfig()
				ccfg.Engine.HeartbeatInterval = durSeconds(hb)
				ccfg.Engine.OutOfBandHeartbeats = false
				p := hp.DefaultTwoJobParams()
				p.Primitive = hp.Suspend
				p.Cluster = &ccfg
				out, err := hp.RunTwoJob(p)
				if err != nil {
					b.Fatal(err)
				}
				sojourn = out.SojournTH.Seconds()
			}
			b.ReportMetric(sojourn, "sojourn_s")
		})
	}
}

// BenchmarkAblationOutOfBandHeartbeats isolates the out-of-band
// heartbeat: without it, a freed slot waits for the next regular
// heartbeat before the high-priority task can launch.
func BenchmarkAblationOutOfBandHeartbeats(b *testing.B) {
	for _, oob := range []bool{true, false} {
		oob := oob
		name := "enabled"
		if !oob {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			var sojourn float64
			for i := 0; i < b.N; i++ {
				ccfg := mapreduce.DefaultClusterConfig()
				ccfg.Engine.OutOfBandHeartbeats = oob
				p := hp.DefaultTwoJobParams()
				p.Primitive = hp.Suspend
				p.Cluster = &ccfg
				out, err := hp.RunTwoJob(p)
				if err != nil {
					b.Fatal(err)
				}
				sojourn = out.SojournTH.Seconds()
			}
			b.ReportMetric(sojourn, "sojourn_s")
		})
	}
}

// BenchmarkAblationPageClusterSize varies the kernel's reclaim batch size
// (vm.page-cluster analogue): bigger batches over-evict more, the
// mechanism behind Figure 4's superlinear swap growth.
func BenchmarkAblationPageClusterSize(b *testing.B) {
	for _, pages := range []int{4, 32, 128} {
		pages := pages
		b.Run(benchName("cluster", pages, "pages"), func(b *testing.B) {
			var swapped float64
			for i := 0; i < b.N; i++ {
				ccfg := mapreduce.DefaultClusterConfig()
				ccfg.Node.Memory.PageClusterPages = pages
				p := hp.DefaultTwoJobParams()
				p.Primitive = hp.Suspend
				p.TLExtraMemory = experiments.Figure4TLMemory
				p.THExtraMemory = experiments.Figure4TLMemory
				p.Cluster = &ccfg
				out, err := hp.RunTwoJob(p)
				if err != nil {
					b.Fatal(err)
				}
				swapped = float64(out.SwapOutTL) / float64(1<<20)
			}
			b.ReportMetric(swapped, "tl_swapout_MB")
		})
	}
}

// BenchmarkAblationSwappiness contrasts swappiness 0 (Hadoop best
// practice: cache reclaimed first) with swappiness 100.
func BenchmarkAblationSwappiness(b *testing.B) {
	for _, sw := range []int{0, 100} {
		sw := sw
		b.Run(benchName("swappiness", sw, ""), func(b *testing.B) {
			var swapped float64
			for i := 0; i < b.N; i++ {
				ccfg := mapreduce.DefaultClusterConfig()
				ccfg.Node.Memory.Swappiness = sw
				p := hp.DefaultTwoJobParams()
				p.Primitive = hp.Suspend
				p.TLExtraMemory = experiments.WorstCaseMemory
				p.THExtraMemory = experiments.WorstCaseMemory
				p.Cluster = &ccfg
				out, err := hp.RunTwoJob(p)
				if err != nil {
					b.Fatal(err)
				}
				swapped = float64(out.SwapOutTL+out.SwapInTL) / float64(1<<20)
			}
			b.ReportMetric(swapped, "tl_swap_MB")
		})
	}
}

// BenchmarkAblationSuspendResumeCycles measures §III-A's warning: each
// suspend/resume cycle has a moderate cost that multiplies with the
// cycle count, so schedulers should avoid churning the same victim.
func BenchmarkAblationSuspendResumeCycles(b *testing.B) {
	for _, cycles := range []int{1, 3, 6} {
		cycles := cycles
		b.Run(benchName("cycles", cycles, ""), func(b *testing.B) {
			var sojourn, swapMB float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunCycles(experiments.DefaultCycleParams(cycles))
				if err != nil {
					b.Fatal(err)
				}
				sojourn = res.TLSojourn.Seconds()
				swapMB = float64(res.TLSwapOut+res.TLSwapIn) / float64(1<<20)
			}
			b.ReportMetric(sojourn, "tl_sojourn_s")
			b.ReportMetric(swapMB, "tl_swap_MB")
		})
	}
}

// BenchmarkAblationEvictionPolicy compares victim-selection policies in
// the §V-A scenario: suspending the task with the smallest memory
// footprint minimizes paging.
func BenchmarkAblationEvictionPolicy(b *testing.B) {
	for _, policy := range []string{"smallest-memory", "largest-memory", "most-progress"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			var swap, makespan float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunEvictionComparison(policy, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				swap = float64(res.VictimSwap) / float64(1<<20)
				makespan = res.Makespan.Seconds()
			}
			b.ReportMetric(swap, "victim_swap_MB")
			b.ReportMetric(makespan, "makespan_s")
		})
	}
}

// BenchmarkAblationAdvisor evaluates the §V-A cost model (kill young,
// wait for nearly-done, suspend the middle) against fixed primitives.
func BenchmarkAblationAdvisor(b *testing.B) {
	var res []*experiments.AdvisorResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAdvisorSweep([]float64{0.02, 0.5, 0.97}, benchCfg(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.Makespans["advisor"].Seconds(),
			fmt.Sprintf("advisor_mk_s@r%.0f%%", r.R*100))
	}
}

// BenchmarkFullGrid20Reps runs the paper's full two-job grid at its 20
// repetitions (540 cells) through the streaming-collapse engine — the
// grid-scale throughput the sharded sweep work targets. The headline
// metrics are the r=50% sojourn means over all 20 repetitions, which
// are deterministic and golden-gated.
func BenchmarkFullGrid20Reps(b *testing.B) {
	var col *hp.SweepCollapsed
	for i := 0; i < b.N; i++ {
		grid, cell := hp.TwoJobSweep(20)
		var err error
		col, err = hp.RunSweepCollapsed(grid, cell,
			hp.SweepOptions{Parallel: runtime.GOMAXPROCS(0), Seed: benchSeed}, "rep")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, g := range col.Groups {
		if g.Labels["r"] == "50" {
			b.ReportMetric(g.Metrics["sojourn_th_s"].Mean, g.Labels["prim"]+"_sojourn20_s")
		}
	}
}

// BenchmarkLargeTraceReplay drives a synthesized 1200-job Facebook-like
// SWIM trace (hp.SynthesizeSWIMTrace, deterministic in the job count)
// through the full cluster engine as one replay cell, streaming inputs
// through a 64-job window instead of materializing all 1200 up front.
// -replay-timescale 10 compresses the trace's day of arrivals so the
// simulated cluster runs saturated — the heavy-traffic regime the
// quiescent heartbeat path exists for. The virtual-time throughput and
// mean sojourn are deterministic physics and golden-gated; wall-clock
// throughput is jobs / (ns/op), tracked via ns/op but never gated.
func BenchmarkLargeTraceReplay(b *testing.B) {
	const jobs = 1200
	trace, err := hp.SynthesizeSWIMTrace(jobs)
	if err != nil {
		b.Fatal(err)
	}
	backend, err := hp.ReplaySweep(hp.ReplayConfig{
		Jobs:      trace,
		Shards:    1,
		Reps:      1,
		TimeScale: 10,
		Window:    64,
	})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := backend.Grid()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var col *hp.SweepCollapsed
	for i := 0; i < b.N; i++ {
		col, err = hp.RunSweepCollapsed(grid, backend.Cell,
			hp.SweepOptions{Parallel: 1, Seed: benchSeed}, "rep")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, g := range col.Groups {
		makespan := g.Metrics["makespan_s"].Mean
		if done := g.Metrics["jobs"].Mean; done != jobs {
			b.Fatalf("replayed %v jobs, want %d", done, jobs)
		}
		b.ReportMetric(jobs/makespan, "virt_jobs_per_s")
		b.ReportMetric(g.Metrics["sojourn_mean_s"].Mean, "sojourn_mean_s")
	}
}

// BenchmarkSweepCollapse contrasts per-cell allocations of the legacy
// materialize-then-collapse path against the streaming-collapse path on
// a synthetic grid, so harness overhead — not simulation cost — is what
// is measured. The allocs/cell metrics land in BENCH_sweep.json but are
// exempt from golden gating (allocator behavior may drift with the
// toolchain).
func BenchmarkSweepCollapse(b *testing.B) {
	grid := func() sweep.Grid {
		return sweep.NewGrid(
			sweep.Strings("prim", "wait", "kill", "susp"),
			sweep.Floats("r", 10, 50, 90),
			sweep.Reps(100),
		).Pair("prim")
	}
	cells := float64(grid().Size())
	measure := func(b *testing.B, run func()) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < b.N; i++ {
			run()
		}
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N)/cells, "allocs/cell")
	}
	b.Run("legacy", func(b *testing.B) {
		measure(b, func() {
			res, err := sweep.Run(grid(), func(pt sweep.Point) (sweep.Outcome, error) {
				v := float64(pt.Seed >> 12)
				return sweep.Outcome{Values: map[string]float64{
					"sojourn_s": v, "makespan_s": 2 * v,
				}}, nil
			}, sweep.Options{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			res.Collapse(sweep.RepAxis)
		})
	})
	b.Run("stream", func(b *testing.B) {
		measure(b, func() {
			_, err := sweep.RunCollapsed(grid(), func(pt sweep.Point, rec *sweep.Recorder) error {
				v := float64(pt.Seed >> 12)
				rec.Observe("sojourn_s", v)
				rec.Observe("makespan_s", 2*v)
				return nil
			}, sweep.Options{Seed: benchSeed}, sweep.RepAxis)
			if err != nil {
				b.Fatal(err)
			}
		})
	})
}

// reportAt attaches the three primitives' values at a given r as metrics.
func reportAt(b *testing.B, series map[string]*metrics.Series, r float64, unit string) {
	b.Helper()
	for _, prim := range []string{"wait", "kill", "susp"} {
		if s, ok := series[prim]; ok {
			if y, found := s.YAt(r); found {
				b.ReportMetric(y, prim+"_"+unit)
			}
		}
	}
}

// benchName builds a sub-benchmark label like "hb=3s".
func benchName(key string, v int, unit string) string {
	return fmt.Sprintf("%s=%d%s", key, v, unit)
}

// durSeconds converts whole seconds to a duration.
func durSeconds(s int) time.Duration { return time.Duration(s) * time.Second }

// BenchmarkCellCache measures the cell-result cache on a synthetic grid
// whose cells are nearly free, so what is timed is cache overhead — the
// cold path (execute + verify-write every entry) and the warm path
// (verified replay of every entry). Timing lands in BENCH_sweep.json
// but is exempt from golden gating, like BenchmarkSweepCollapse.
func BenchmarkCellCache(b *testing.B) {
	grid := sweep.NewGrid(
		sweep.Strings("prim", "wait", "kill", "susp"),
		sweep.Floats("r", 10, 50, 90),
		sweep.Reps(50),
	).Pair("prim")
	cell := func(pt sweep.Point, rec *sweep.Recorder) error {
		rec.Observe("m0", float64(pt.Seed>>12))
		rec.Observe("m1", float64(pt.Index))
		return nil
	}
	cells := float64(grid.Size())
	run := func(b *testing.B, cache *hp.CellCache) {
		col, err := hp.RunSweepCollapsed(grid, cell,
			hp.SweepOptions{Parallel: runtime.GOMAXPROCS(0), Seed: benchSeed, Cache: cache}, "rep")
		if err != nil || len(col.Groups) == 0 {
			b.Fatalf("sweep failed: %v", err)
		}
	}
	b.Run("miss", func(b *testing.B) {
		// Every iteration fills a fresh cache: miss + store per cell.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache, err := hp.NewCellCache(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			run(b, cache)
		}
		b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/cells, "us/cell")
	})
	b.Run("hit", func(b *testing.B) {
		cache, err := hp.NewCellCache(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		run(b, cache) // cold fill outside the timed loop
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, cache)
		}
		b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/cells, "us/cell")
		b.StopTimer()
		cc := cache.Counters()
		if cc.Hits == 0 || cc.Misses != int64(cells) {
			b.Fatalf("warm loop did not replay: %+v", cc)
		}
	})
}

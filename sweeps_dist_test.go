package hadooppreempt_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	hp "hadooppreempt"
)

// renderAll renders a collapsed sweep in every format.
func renderAll(t *testing.T, col *hp.SweepCollapsed) string {
	t.Helper()
	var out bytes.Buffer
	for _, format := range []string{"csv", "json", "table", "series"} {
		if err := col.Write(&out, format); err != nil {
			t.Fatal(err)
		}
	}
	return out.String()
}

// TestDistributedSweepMatchesLocal drives the paper's two-job grid
// through the facade's coordinator/worker entry points — two workers,
// single-cell leases so both stay busy — and checks the merged result
// renders byte-identically to the in-process sweep in every format.
func TestDistributedSweepMatchesLocal(t *testing.T) {
	backend := func() hp.SweepBackend {
		b, err := hp.SimSweep("twojob", 12, 1)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want, err := hp.RunSweepBackend(backend(), hp.SweepOptions{Parallel: 4, Seed: 7}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	type res struct {
		col *hp.SweepCollapsed
		err error
	}
	servec := make(chan res, 1)
	go func() {
		col, err := hp.DistributedSweep(context.Background(), backend(), hp.DistributedOptions{
			Addr:       "127.0.0.1:0",
			Seed:       7,
			LeaseCells: 1,
			LeaseTTL:   time.Minute,
			OnListen:   func(a string) { addrc <- a },
		}, "rep")
		servec <- res{col, err}
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator never bound")
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for w := range workerErrs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerErrs[w] = hp.DistributedSweepWorker(context.Background(), addr, backend(), 2, nil)
		}(w)
	}
	wg.Wait()
	got := <-servec
	if got.err != nil {
		t.Fatal(got.err)
	}
	for w, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if renderAll(t, got.col) != renderAll(t, want) {
		t.Fatal("distributed sweep output differs from the in-process sweep")
	}
}

// TestClusterPrimitiveSweep checks the new seed-paired primitive axis:
// the grid restricts the scheduler axis to the preempting schedulers,
// pairs susp and kill on identical workload draws, and runs
// deterministically.
func TestClusterPrimitiveSweep(t *testing.T) {
	grid, run := hp.ClusterPrimitiveSweep(4, 1)
	wantAxes := []string{"sched", "prim", "nodes", "mix", "rep"}
	if len(grid.Axes) != len(wantAxes) {
		t.Fatalf("grid has %d axes, want %d", len(grid.Axes), len(wantAxes))
	}
	for i, a := range grid.Axes {
		if a.Name != wantAxes[i] {
			t.Fatalf("axis %d is %q, want %q", i, a.Name, wantAxes[i])
		}
	}
	if labels := grid.Axes[0].Values; len(labels) != 2 || labels[0].Label != "fair" || labels[1].Label != "hfsp" {
		t.Fatalf("sched axis %v, want fair/hfsp only (FIFO never preempts)", labels)
	}
	if labels := grid.Axes[1].Values; len(labels) != 2 || labels[0].Label != "susp" || labels[1].Label != "kill" {
		t.Fatalf("prim axis %v, want susp/kill", labels)
	}
	points, err := grid.Points(1)
	if err != nil {
		t.Fatal(err)
	}
	// Seed pairing: cells differing only in sched and prim must share a
	// seed, so primitives face identical workload draws.
	bySuffix := make(map[string]uint64)
	for _, pt := range points {
		key := pt.KeyWithout("sched", "prim")
		if seed, ok := bySuffix[key]; ok {
			if pt.Seed != seed {
				t.Fatalf("cell %q seed %d differs from its pair %d", pt.Key(), pt.Seed, seed)
			}
		} else {
			bySuffix[key] = pt.Seed
		}
	}
	render := func(parallel int) string {
		col, err := hp.RunSweepCollapsed(grid, run, hp.SweepOptions{Parallel: parallel, Seed: 1}, "rep")
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := col.WriteCSV(&out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if render(1) != render(4) {
		t.Fatal("primitive sweep differs across parallelism")
	}
}

// Package hadooppreempt is a Go reproduction of "OS-Assisted Task
// Preemption for Hadoop" (Pastorelli, Dell'Amico, Michiardi — ICDCS
// 2014): a suspend/resume task-preemption primitive that stops Hadoop
// task processes with SIGTSTP and resumes them with SIGCONT, letting the
// operating system's paging machinery hold — and only under pressure,
// swap — the suspended task's state.
//
// The package front-ends a complete simulated Hadoop 1 stack (discrete
// event kernel, page-level OS memory manager, HDFS, JobTracker /
// TaskTracker engine), the preemption primitives (wait, kill, suspend,
// and a Natjam-style checkpoint baseline), schedulers (trigger-driven
// dummy, FIFO, FAIR with preemption, HFSP-style size-based) and the
// drivers that regenerate every figure of the paper's evaluation.
//
// Quick start:
//
//	cluster, err := hadooppreempt.New(hadooppreempt.Options{})
//	...
//	cluster.CreateInput("/data", 512<<20)
//	job, err := cluster.Submit(hadooppreempt.JobConfig{
//		Name: "wordcount", InputPath: "/data", MapParseRate: 6.5e6,
//	})
//	cluster.RunUntilJobsDone(time.Hour)
package hadooppreempt

import (
	"fmt"
	"math"
	"time"

	"hadooppreempt/internal/advisor"
	"hadooppreempt/internal/core"
	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/experiments"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/scheduler"
	"hadooppreempt/internal/sim"
	"hadooppreempt/internal/trace"
	"hadooppreempt/internal/workload"
)

// Primitive selects a preemption primitive.
type Primitive = core.Primitive

// The preemption primitives of the paper's comparison.
const (
	// Wait lets the victim finish (no preemption).
	Wait = core.Wait
	// Kill restarts the victim from scratch.
	Kill = core.Kill
	// Suspend is the paper's OS-assisted SIGTSTP/SIGCONT primitive.
	Suspend = core.Suspend
	// Checkpoint is the Natjam-style serialize/deserialize baseline.
	Checkpoint = core.Checkpoint
)

// JobConfig describes a job; it is the engine's JobConf.
type JobConfig = mapreduce.JobConf

// Job is a submitted job handle.
type Job = mapreduce.Job

// TaskID identifies a task.
type TaskID = mapreduce.TaskID

// SchedulerKind selects the cluster scheduler.
type SchedulerKind int

// Scheduler kinds.
const (
	// SchedulerPriority is the paper's dummy scheduler: strict priority
	// order plus programmable triggers (see OnJobProgress /
	// OnJobComplete) and explicit PreemptJob / RestoreJob calls.
	SchedulerPriority SchedulerKind = iota + 1
	// SchedulerFIFO runs jobs in submission order, no preemption.
	SchedulerFIFO
	// SchedulerFair enforces pool fair shares, preempting with the
	// configured primitive after a starvation timeout.
	SchedulerFair
	// SchedulerHFSP orders jobs by remaining size (smallest first),
	// preempting bigger jobs' tasks — the §VI outlook.
	SchedulerHFSP
)

// Options configures a cluster. The zero value yields the paper's
// single-node evaluation setup with the priority (dummy) scheduler and
// the suspend primitive.
type Options struct {
	// Nodes is the worker node count (default 1).
	Nodes int
	// MapSlotsPerNode is the per-node slot count (default 1, as in the
	// paper's contended-slot experiments).
	MapSlotsPerNode int
	// RAMBytes is per-node physical memory (default 4 GB).
	RAMBytes int64
	// Scheduler picks the scheduler (default SchedulerPriority).
	Scheduler SchedulerKind
	// Primitive picks the preemption primitive used by PreemptJob and by
	// the Fair/HFSP schedulers (default Suspend).
	Primitive Primitive
	// EvictionPolicy names the victim-selection policy for Fair/HFSP
	// ("most-progress", "least-progress", "smallest-memory",
	// "largest-memory", "oldest", "youngest"; default "most-progress").
	EvictionPolicy string
	// PreemptionTimeout overrides how long Fair lets a pool starve before
	// preempting (and HFSP's preemption delay). Zero keeps the scheduler
	// defaults.
	PreemptionTimeout time.Duration
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// HeartbeatInterval overrides the TaskTracker heartbeat period.
	HeartbeatInterval time.Duration
}

// Cluster is a simulated Hadoop cluster with a preemption-capable
// scheduler installed.
type Cluster struct {
	inner     *mapreduce.Cluster
	preemptor *core.Preemptor
	kind      SchedulerKind
	dummy     *scheduler.Dummy
	fair      *scheduler.Fair
	hfsp      *scheduler.HFSP
	rec       *trace.Recorder
	byName    map[string]*mapreduce.Job
	// planned counts submissions issued or scheduled, so
	// RunUntilJobsDone does not stop before deferred submissions land.
	planned int
}

// New builds a cluster per the options.
func New(opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	if opts.MapSlotsPerNode <= 0 {
		opts.MapSlotsPerNode = 1
	}
	if opts.Scheduler == 0 {
		opts.Scheduler = SchedulerPriority
	}
	if opts.Primitive == 0 {
		opts.Primitive = Suspend
	}
	if opts.EvictionPolicy == "" {
		opts.EvictionPolicy = "most-progress"
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	ccfg := mapreduce.DefaultClusterConfig()
	ccfg.Nodes = opts.Nodes
	ccfg.Node.MapSlots = opts.MapSlotsPerNode
	ccfg.Seed = opts.Seed
	if opts.RAMBytes > 0 {
		ccfg.Node.Memory.RAMBytes = opts.RAMBytes
	}
	if opts.HeartbeatInterval > 0 {
		ccfg.Engine.HeartbeatInterval = opts.HeartbeatInterval
	}
	inner, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		inner:  inner,
		kind:   opts.Scheduler,
		rec:    &trace.Recorder{},
		byName: make(map[string]*mapreduce.Job),
	}
	jt := inner.JobTracker()
	deviceFor := func(tracker string) *disk.Device {
		for _, n := range inner.Nodes() {
			if n.Tracker.Name() == tracker {
				return n.Device
			}
		}
		return nil
	}
	c.preemptor, err = core.NewPreemptor(inner.Engine(), jt, opts.Primitive, deviceFor, core.CheckpointConfig{})
	if err != nil {
		return nil, err
	}
	policy, err := advisor.PolicyByName(opts.EvictionPolicy)
	if err != nil {
		return nil, err
	}
	adv, err := advisor.New(advisor.Config{Policy: policy, Primitive: opts.Primitive})
	if err != nil {
		return nil, err
	}
	resident := func(id mapreduce.TaskID) int64 {
		if t, ok := jt.Task(id); ok {
			return t.ResidentBytes()
		}
		return 0
	}
	switch opts.Scheduler {
	case SchedulerPriority:
		c.dummy = scheduler.NewDummy(jt)
		jt.SetScheduler(c.dummy)
	case SchedulerFIFO:
		jt.SetScheduler(scheduler.NewFIFO(jt))
	case SchedulerFair:
		fcfg := scheduler.DefaultFairConfig(opts.Nodes * opts.MapSlotsPerNode)
		fcfg.Resident = resident
		if opts.PreemptionTimeout > 0 {
			fcfg.PreemptionTimeout = opts.PreemptionTimeout
		}
		c.fair, err = scheduler.NewFair(inner.Engine(), jt, c.preemptor, adv, fcfg)
		if err != nil {
			return nil, err
		}
		jt.SetScheduler(c.fair)
	case SchedulerHFSP:
		hcfg := scheduler.DefaultHFSPConfig()
		hcfg.Resident = resident
		if opts.PreemptionTimeout > 0 {
			hcfg.PreemptionDelay = opts.PreemptionTimeout
		}
		c.hfsp, err = scheduler.NewHFSP(inner.Engine(), jt, c.preemptor, adv, hcfg)
		if err != nil {
			return nil, err
		}
		jt.SetScheduler(c.hfsp)
	default:
		return nil, fmt.Errorf("hadooppreempt: unknown scheduler kind %d", opts.Scheduler)
	}
	jt.AddListener(&facadeTraceListener{rec: c.rec})
	return c, nil
}

// CreateInput stores a synthetic input file of the given size.
func (c *Cluster) CreateInput(path string, size int64) error {
	return c.inner.CreateInput(path, size)
}

// Submit submits a job. Job names must be unique per cluster.
func (c *Cluster) Submit(conf JobConfig) (*Job, error) {
	job, err := c.submit(conf)
	if err != nil {
		return nil, err
	}
	c.planned++
	return job, nil
}

// submit performs the submission without touching the planned counter.
func (c *Cluster) submit(conf JobConfig) (*Job, error) {
	if _, dup := c.byName[conf.Name]; dup {
		return nil, fmt.Errorf("hadooppreempt: job %q already submitted", conf.Name)
	}
	job, err := c.inner.JobTracker().Submit(conf)
	if err != nil {
		return nil, err
	}
	c.byName[conf.Name] = job
	return job, nil
}

// SubmitAt schedules a submission at a future virtual time. The job
// counts toward RunUntilJobsDone immediately, so the run does not stop
// before the submission lands.
func (c *Cluster) SubmitAt(at time.Duration, conf JobConfig) {
	c.planned++
	c.inner.Engine().At(at, func() {
		if _, err := c.submit(conf); err != nil {
			panic(fmt.Sprintf("hadooppreempt: deferred submit %s: %v", conf.Name, err))
		}
	})
}

// Job returns a submitted job by name.
func (c *Cluster) Job(name string) (*Job, bool) {
	j, ok := c.byName[name]
	return j, ok
}

// Jobs returns all submitted jobs in submission order.
func (c *Cluster) Jobs() []*Job { return c.inner.JobTracker().Jobs() }

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.inner.Engine().Now() }

// RunFor advances virtual time by d.
func (c *Cluster) RunFor(d time.Duration) { c.inner.Engine().RunFor(d) }

// RunUntilJobsDone advances virtual time until every submitted AND
// scheduled (SubmitAt) job finished, or the deadline passed; it reports
// completion.
func (c *Cluster) RunUntilJobsDone(deadline time.Duration) bool {
	planned := c.planned
	if planned == 0 {
		// Nothing was submitted or scheduled: drain events to the
		// deadline and report failure, as an impossible plan would.
		planned = math.MaxInt
	}
	ok := c.inner.RunUntilPlannedJobsDone(planned, deadline)
	c.rec.CloseAll(c.inner.Engine().Now())
	return ok
}

// PreemptJob applies the configured primitive to the named job's running
// map tasks (all of them). With SchedulerPriority this is the paper's
// manual eviction path; Fair/HFSP preempt on their own.
func (c *Cluster) PreemptJob(name string) error {
	job, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("hadooppreempt: unknown job %q", name)
	}
	for _, t := range job.MapTasks() {
		if t.State() == mapreduce.TaskRunning {
			if _, err := c.preemptor.Preempt(t.ID()); err != nil {
				return err
			}
		}
	}
	return nil
}

// KillJob terminally kills a job.
func (c *Cluster) KillJob(name string) error {
	job, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("hadooppreempt: unknown job %q", name)
	}
	return c.inner.JobTracker().KillJob(job.ID())
}

// NodeStats summarizes one node's OS-level state.
type NodeStats struct {
	Name string
	// FreeBytes and CacheBytes describe current memory occupancy.
	FreeBytes  int64
	CacheBytes int64
	// SwapUsedBytes is occupied swap capacity.
	SwapUsedBytes int64
	// SwapRate is swap traffic over the last 10 s (bytes/second).
	SwapRate float64
	// Thrashing reports whether swap traffic exceeds 10 MB/s over that
	// window — §III-A's warning signal for churning schedulers.
	Thrashing bool
}

// Nodes returns OS-level statistics for every worker node.
func (c *Cluster) Nodes() []NodeStats {
	var out []NodeStats
	for _, n := range c.inner.Nodes() {
		mem := n.Memory
		out = append(out, NodeStats{
			Name:          n.Name,
			FreeBytes:     mem.FreeBytes(),
			CacheBytes:    mem.CacheBytes(),
			SwapUsedBytes: mem.SwapUsedBytes(),
			SwapRate:      mem.SwapRate(10 * time.Second),
			Thrashing:     mem.Thrashing(10*time.Second, 10e6),
		})
	}
	return out
}

// RestoreJob undoes a preemption (resumes suspended tasks).
func (c *Cluster) RestoreJob(name string) error {
	job, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("hadooppreempt: unknown job %q", name)
	}
	for _, t := range job.MapTasks() {
		if t.State() == mapreduce.TaskSuspended {
			if err := c.preemptor.Restore(t.ID()); err != nil {
				return err
			}
		}
	}
	return nil
}

// OnJobProgress registers fn to run once when the named job reaches the
// progress threshold. Only available with SchedulerPriority.
func (c *Cluster) OnJobProgress(job string, threshold float64, fn func()) error {
	if c.dummy == nil {
		return fmt.Errorf("hadooppreempt: triggers need SchedulerPriority")
	}
	c.dummy.AddTrigger(scheduler.Trigger{
		Event: scheduler.OnProgress, Job: job, Threshold: threshold, Do: fn,
	})
	return nil
}

// OnJobComplete registers fn to run once when the named job succeeds.
// Only available with SchedulerPriority.
func (c *Cluster) OnJobComplete(job string, fn func()) error {
	if c.dummy == nil {
		return fmt.Errorf("hadooppreempt: triggers need SchedulerPriority")
	}
	c.dummy.AddTrigger(scheduler.Trigger{
		Event: scheduler.OnComplete, Job: job, Do: fn,
	})
	return nil
}

// Gantt renders the execution schedule recorded so far (Figure 1 style).
func (c *Cluster) Gantt(width int) string { return c.rec.Gantt(width) }

// Preemptions reports how many preemptions the scheduler issued (Fair
// and HFSP; zero for the others).
func (c *Cluster) Preemptions() int {
	switch {
	case c.fair != nil:
		return c.fair.Preemptions()
	case c.hfsp != nil:
		return c.hfsp.Preemptions()
	}
	return 0
}

// Resumes reports how many suspended-task restores the scheduler issued
// (Fair and HFSP; zero for the others).
func (c *Cluster) Resumes() int {
	switch {
	case c.fair != nil:
		return c.fair.Resumes()
	case c.hfsp != nil:
		return c.hfsp.Resumes()
	}
	return 0
}

// JobStats summarizes one job's outcome.
type JobStats struct {
	Name        string
	State       string
	Sojourn     time.Duration
	Suspensions int
	Attempts    int
	WastedWork  time.Duration
	SwapOut     int64
	SwapIn      int64
}

// Stats returns the named job's outcome summary.
func (c *Cluster) Stats(name string) (JobStats, error) {
	job, ok := c.byName[name]
	if !ok {
		return JobStats{}, fmt.Errorf("hadooppreempt: unknown job %q", name)
	}
	st := JobStats{
		Name:  name,
		State: job.State().String(),
	}
	if job.CompletedAt() > 0 {
		st.Sojourn = job.CompletedAt() - job.SubmittedAt()
	}
	for _, t := range job.Tasks() {
		st.Suspensions += t.Suspensions()
		st.Attempts += t.Attempts()
		st.WastedWork += t.WastedWork()
		st.SwapOut += t.SwapOutBytes()
		st.SwapIn += t.SwapInBytes()
	}
	return st, nil
}

// facadeTraceListener records job-level spans for Gantt.
type facadeTraceListener struct {
	mapreduce.NopListener
	rec *trace.Recorder
}

func (l *facadeTraceListener) TaskStateChanged(t *mapreduce.Task, from, to mapreduce.TaskState, at time.Duration) {
	row := t.Job().Name()
	if len(t.Job().MapTasks()) > 1 {
		row = t.ID().String()
	}
	switch to {
	case mapreduce.TaskRunning:
		l.rec.Begin(row, trace.SpanRunning, at)
	case mapreduce.TaskSuspended:
		l.rec.Begin(row, trace.SpanSuspended, at)
	case mapreduce.TaskSucceeded, mapreduce.TaskFailed:
		l.rec.End(row, at)
	case mapreduce.TaskPending:
		if from.Live() || from == mapreduce.TaskKilled {
			l.rec.Begin(row, trace.SpanWaiting, at)
		}
	}
}

// --- Experiment re-exports -------------------------------------------

// TwoJobParams parameterizes the paper's two-job scenario.
type TwoJobParams = experiments.TwoJobParams

// TwoJobResult is the scenario outcome.
type TwoJobResult = experiments.TwoJobResult

// DefaultTwoJobParams returns the paper's baseline setup.
func DefaultTwoJobParams() TwoJobParams { return experiments.DefaultTwoJobParams() }

// RunTwoJob executes the paper's two-job preemption scenario once.
func RunTwoJob(p TwoJobParams) (*TwoJobResult, error) { return experiments.RunTwoJob(p) }

// ExperimentConfig controls how figure generators execute their grids
// through the sweep harness (repetitions, base seed, parallelism).
type ExperimentConfig = experiments.Config

// Figure1 renders the schedule charts of Figure 1.
func Figure1(cfg ExperimentConfig) (*experiments.Figure1Result, error) {
	return experiments.Figure1(cfg)
}

// Figure2 regenerates the light-weight comparison (Figures 2a and 2b).
func Figure2(cfg ExperimentConfig) (*experiments.ComparisonResult, error) {
	return experiments.Figure2(cfg)
}

// Figure3 regenerates the worst-case comparison (Figures 3a and 3b).
func Figure3(cfg ExperimentConfig) (*experiments.ComparisonResult, error) {
	return experiments.Figure3(cfg)
}

// Figure4 regenerates the memory-footprint overhead analysis.
func Figure4(cfg ExperimentConfig) (*experiments.Figure4Result, error) {
	return experiments.Figure4(cfg)
}

// NatjamAblation compares the checkpoint baseline against suspension.
func NatjamAblation(cfg ExperimentConfig) (*experiments.NatjamResult, error) {
	return experiments.NatjamAblation(cfg)
}

// --- Workload re-exports ----------------------------------------------

// WorkloadConfig describes a synthetic SWIM-style workload.
type WorkloadConfig = workload.Config

// WorkloadClass is one job class of the mix.
type WorkloadClass = workload.JobClass

// WorkloadJob is one generated job specification.
type WorkloadJob = workload.JobSpec

// DefaultWorkloadConfig returns a Facebook-like interactive/batch mix.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// GenerateWorkload samples a deterministic workload trace.
func GenerateWorkload(cfg WorkloadConfig, seed uint64) ([]WorkloadJob, error) {
	return workload.Generate(cfg, sim.NewRNG(seed))
}

// InstallWorkload creates the inputs and schedules the submissions of a
// generated workload on the cluster.
func (c *Cluster) InstallWorkload(specs []WorkloadJob) error {
	for i := range specs {
		spec := specs[i]
		if err := c.CreateInput(spec.Conf.InputPath, spec.InputBytes); err != nil {
			return err
		}
		c.SubmitAt(spec.SubmitAt, spec.Conf)
	}
	return nil
}

package hadooppreempt_test

import (
	"strings"
	"testing"
	"time"

	hp "hadooppreempt"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	cluster, err := hp.New(hp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.CreateInput("/data", 128<<20); err != nil {
		t.Fatal(err)
	}
	job, err := cluster.Submit(hp.JobConfig{
		Name: "quick", InputPath: "/data", MapParseRate: 16e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cluster.RunUntilJobsDone(time.Hour) {
		t.Fatalf("job did not finish: %v", job.State())
	}
	st, err := cluster.Stats("quick")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "SUCCEEDED" || st.Sojourn <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFacadeManualPreemption(t *testing.T) {
	cluster, err := hp.New(hp.Options{Primitive: hp.Suspend})
	if err != nil {
		t.Fatal(err)
	}
	cluster.CreateInput("/lo", 512<<20)
	cluster.CreateInput("/hi", 512<<20)
	if _, err := cluster.Submit(hp.JobConfig{
		Name: "lo", InputPath: "/lo", MapParseRate: 6.5e6,
	}); err != nil {
		t.Fatal(err)
	}
	err = cluster.OnJobProgress("lo", 0.5, func() {
		if _, err := cluster.Submit(hp.JobConfig{
			Name: "hi", InputPath: "/hi", Priority: 10, MapParseRate: 6.5e6,
		}); err != nil {
			t.Errorf("submit hi: %v", err)
		}
		if err := cluster.PreemptJob("lo"); err != nil {
			t.Errorf("preempt lo: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.OnJobComplete("hi", func() {
		if err := cluster.RestoreJob("lo"); err != nil {
			t.Errorf("restore lo: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !cluster.RunUntilJobsDone(2 * time.Hour) {
		t.Fatal("jobs did not finish")
	}
	lo, _ := cluster.Stats("lo")
	hi, _ := cluster.Stats("hi")
	if lo.Suspensions != 1 {
		t.Fatalf("lo suspensions = %d, want 1", lo.Suspensions)
	}
	loJob, _ := cluster.Job("lo")
	hiJob, _ := cluster.Job("hi")
	if hiJob.CompletedAt() >= loJob.CompletedAt() {
		t.Fatal("hi should complete before resumed lo")
	}
	if hi.State != "SUCCEEDED" {
		t.Fatalf("hi state = %s", hi.State)
	}
	gantt := cluster.Gantt(60)
	if !strings.Contains(gantt, "=") {
		t.Fatalf("gantt should show suspension:\n%s", gantt)
	}
}

func TestFacadeFairScheduler(t *testing.T) {
	cluster, err := hp.New(hp.Options{
		Scheduler:       hp.SchedulerFair,
		MapSlotsPerNode: 2,
		Primitive:       hp.Suspend,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.CreateInput("/a", 256<<20)
	cluster.CreateInput("/b", 64<<20)
	cluster.Submit(hp.JobConfig{Name: "a", InputPath: "/a", Pool: "batch", MapParseRate: 8e6})
	cluster.SubmitAt(10*time.Second, hp.JobConfig{Name: "b", InputPath: "/b", Pool: "prod", MapParseRate: 8e6})
	if !cluster.RunUntilJobsDone(2 * time.Hour) {
		t.Fatal("jobs did not finish")
	}
}

func TestFacadeTriggersRequirePriorityScheduler(t *testing.T) {
	cluster, err := hp.New(hp.Options{Scheduler: hp.SchedulerFIFO})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.OnJobProgress("x", 0.5, func() {}); err == nil {
		t.Fatal("triggers should require the priority scheduler")
	}
	if err := cluster.OnJobComplete("x", func() {}); err == nil {
		t.Fatal("triggers should require the priority scheduler")
	}
}

func TestFacadeDuplicateJobName(t *testing.T) {
	cluster, _ := hp.New(hp.Options{})
	cluster.CreateInput("/in", 64<<20)
	if _, err := cluster.Submit(hp.JobConfig{Name: "j", InputPath: "/in", MapParseRate: 1e6}); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Submit(hp.JobConfig{Name: "j", InputPath: "/in", MapParseRate: 1e6}); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestFacadeUnknownJobErrors(t *testing.T) {
	cluster, _ := hp.New(hp.Options{})
	if err := cluster.PreemptJob("ghost"); err == nil {
		t.Fatal("preempt of unknown job should fail")
	}
	if err := cluster.RestoreJob("ghost"); err == nil {
		t.Fatal("restore of unknown job should fail")
	}
	if _, err := cluster.Stats("ghost"); err == nil {
		t.Fatal("stats of unknown job should fail")
	}
}

func TestFacadeExperimentReexports(t *testing.T) {
	p := hp.DefaultTwoJobParams()
	p.Primitive = hp.Suspend
	out, err := hp.RunTwoJob(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.SojournTH <= 0 || out.Makespan <= out.SojournTH {
		t.Fatalf("implausible result: %+v", out)
	}
}

func TestFacadeBadOptions(t *testing.T) {
	if _, err := hp.New(hp.Options{EvictionPolicy: "bogus"}); err == nil {
		t.Fatal("bogus eviction policy should fail")
	}
	if _, err := hp.New(hp.Options{Scheduler: hp.SchedulerKind(99)}); err == nil {
		t.Fatal("bogus scheduler should fail")
	}
}

package hadooppreempt_test

import (
	"bytes"
	"testing"
	"time"

	hp "hadooppreempt"

	"hadooppreempt/internal/genload"
	"hadooppreempt/internal/sim"
)

// runScenario boots the scenario sweep's cluster shape for one
// generated trace and runs it to completion.
func runScenario(t *testing.T, sc genload.Scenario, kind hp.SchedulerKind, seed uint64) *hp.Cluster {
	t.Helper()
	c, err := hp.New(hp.Options{
		Nodes:             2,
		MapSlotsPerNode:   2,
		Scheduler:         kind,
		Seed:              seed,
		PreemptionTimeout: sc.StarvationTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := sc.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallWorkload(specs); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilJobsDone(24 * time.Hour) {
		t.Fatal("generated scenario did not converge")
	}
	return c
}

// TestFairPreemptsOnDefaultScenario is the satellite regression test:
// the tuned default burst scenario makes the fair scheduler's
// preemption path fire — the coverage the SWIM-style cluster sweeps
// never provide, because their single-pool workloads give fair no
// over-share pool to victimize.
func TestFairPreemptsOnDefaultScenario(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		c := runScenario(t, genload.Default(), hp.SchedulerFair, seed)
		if got := c.Preemptions(); got == 0 {
			t.Errorf("seed %d: fair issued no preemptions on the default burst scenario", seed)
		}
	}
}

// TestScenarioFuzzConverges drives randomized scenarios (the fuzzer
// side of the generator) through full fair and hfsp clusters: whatever
// shape Randomize draws, the simulation must converge and the
// preemption/resume counters must stay consistent.
func TestScenarioFuzzConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing full cluster runs is slow")
	}
	rng := sim.NewRNG(99)
	for trial := 0; trial < 6; trial++ {
		sc := genload.Randomize(rng)
		sc.Jobs = 1 + sc.Jobs%6 // bound virtual work per trial
		seed := rng.Uint64()
		for _, kind := range []hp.SchedulerKind{hp.SchedulerFair, hp.SchedulerHFSP} {
			c := runScenario(t, sc, kind, seed)
			if c.Resumes() > c.Preemptions() {
				t.Errorf("trial %d kind %d: %d resumes exceed %d preemptions",
					trial, kind, c.Resumes(), c.Preemptions())
			}
		}
	}
}

// TestScenarioSweepDeterminism is the acceptance criterion for the new
// grid: -sweep scenarios output is byte-identical across worker-pool
// sizes and across a 3-way shard split merged in scrambled order.
func TestScenarioSweepDeterminism(t *testing.T) {
	render := func(col *hp.SweepCollapsed) string {
		var out bytes.Buffer
		for _, format := range []string{"csv", "json", "table"} {
			if err := col.Write(&out, format); err != nil {
				t.Fatal(err)
			}
		}
		return out.String()
	}
	run := func(parallel int, shard *hp.SweepShard) *hp.SweepCollapsed {
		grid, cell := hp.ScenarioSweep(2)
		opts := hp.SweepOptions{Parallel: parallel, Seed: 7}
		if shard != nil {
			opts.Shard = *shard
		}
		col, err := hp.RunSweepCollapsed(grid, cell, opts, "rep")
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	full := render(run(1, nil))
	if got := render(run(8, nil)); got != full {
		t.Fatal("scenarios sweep output differs between -parallel 1 and -parallel 8")
	}
	const shards = 3
	parts := make([]*hp.SweepCollapsed, shards)
	for i := 0; i < shards; i++ {
		col := run(4, &hp.SweepShard{Index: i, Count: shards})
		var file bytes.Buffer
		if err := col.WriteShard(&file); err != nil {
			t.Fatal(err)
		}
		var err error
		if parts[i], err = hp.ReadSweepShard(&file); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := hp.MergeSweepShards(parts[2], parts[0], parts[1])
	if err != nil {
		t.Fatal(err)
	}
	if render(merged) != full {
		t.Fatal("merged scenarios shards differ from the single-process sweep")
	}
}

// TestScenarioSweepShowsPreemption checks the grid tells the story it
// exists for: the burst cells report nonzero fair preemptions, and the
// seed-paired axes hold arrival times steady across the memory axis
// (the per-axis stream contract, observed end to end through the
// makespan of the uniform vs skewed steady cells).
func TestScenarioSweepShowsPreemption(t *testing.T) {
	grid, cell := hp.ScenarioSweep(2)
	col, err := hp.RunSweepCollapsed(grid, cell, hp.SweepOptions{Parallel: 8, Seed: 1}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range col.Groups {
		if g.Labels["sched"] == "fair" && g.Labels["arrival"] == "burst" {
			found = true
			if g.Metrics["preemptions"].Mean == 0 {
				t.Errorf("fair/burst/%s cell reports zero preemptions", g.Labels["mem"])
			}
		}
	}
	if !found {
		t.Fatal("no fair burst cells in the scenarios sweep")
	}
}

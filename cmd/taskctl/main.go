//go:build unix

// Command taskctl demonstrates the paper's preemption primitive on REAL
// operating-system processes: it spawns a low-priority CPU-bound worker,
// preempts it with an actual SIGTSTP when a high-priority worker arrives,
// and resumes it with SIGCONT afterwards — the exact signal pair the
// modified TaskTracker uses (§III-B).
//
// Usage:
//
//	taskctl [-primitive susp|kill|wait] [-steps N] [-units U] [-mem BYTES]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hadooppreempt/internal/realexec"
)

func main() {
	if realexec.IsWorkerInvocation() {
		realexec.WorkerMain()
	}
	primitive := flag.String("primitive", "susp", "preemption primitive: susp, kill or wait")
	steps := flag.Int("steps", 40, "progress steps per worker")
	units := flag.Int64("units", 20_000_000, "busy-loop iterations per step")
	mem := flag.Int64("mem", 0, "bytes of state each worker dirties at startup")
	flag.Parse()

	if err := run(*primitive, *steps, *units, *mem); err != nil {
		fmt.Fprintln(os.Stderr, "taskctl:", err)
		os.Exit(1)
	}
}

func run(primitive string, steps int, units, mem int64) error {
	start := time.Now()
	stamp := func() string { return time.Since(start).Round(10 * time.Millisecond).String() }

	fmt.Printf("[%s] starting low-priority worker tl\n", stamp())
	tl, err := realexec.SpawnSelf(realexec.Spec{
		Name: "tl", Steps: steps, UnitsPerStep: units, MemBytes: mem,
	})
	if err != nil {
		return err
	}
	defer tl.Kill()

	// Let tl reach ~50% progress, like the paper's r parameter.
	for tl.Progress() < 0.5 && tl.State() == realexec.StateRunning {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("[%s] tl at %.0f%% — high-priority worker th arrives\n", stamp(), tl.Progress()*100)

	switch primitive {
	case "susp":
		if err := tl.Suspend(); err != nil {
			return err
		}
		fmt.Printf("[%s] sent SIGTSTP to tl (pid %d): state=%v\n", stamp(), tl.PID(), tl.State())
	case "kill":
		if err := tl.Kill(); err != nil {
			return err
		}
		fmt.Printf("[%s] sent SIGKILL to tl (pid %d): all its work is lost\n", stamp(), tl.PID())
	case "wait":
		fmt.Printf("[%s] waiting for tl to finish before starting th\n", stamp())
		if !tl.Wait(10 * time.Minute) {
			return fmt.Errorf("tl did not finish")
		}
	default:
		return fmt.Errorf("unknown primitive %q", primitive)
	}

	th, err := realexec.SpawnSelf(realexec.Spec{
		Name: "th", Steps: steps, UnitsPerStep: units, MemBytes: mem,
	})
	if err != nil {
		return err
	}
	defer th.Kill()
	fmt.Printf("[%s] th started (pid %d)\n", stamp(), th.PID())
	if !th.Wait(10 * time.Minute) {
		return fmt.Errorf("th did not finish")
	}
	fmt.Printf("[%s] th done\n", stamp())

	switch primitive {
	case "susp":
		if err := tl.Resume(); err != nil {
			return err
		}
		fmt.Printf("[%s] sent SIGCONT to tl: resuming from %.0f%%\n", stamp(), tl.Progress()*100)
	case "kill":
		fmt.Printf("[%s] restarting tl from scratch\n", stamp())
		tl, err = realexec.SpawnSelf(realexec.Spec{
			Name: "tl-retry", Steps: steps, UnitsPerStep: units, MemBytes: mem,
		})
		if err != nil {
			return err
		}
		defer tl.Kill()
	case "wait":
		fmt.Printf("[%s] tl already finished\n", stamp())
		return nil
	}
	if !tl.Wait(10 * time.Minute) {
		return fmt.Errorf("tl did not finish")
	}
	fmt.Printf("[%s] tl done (state=%v)\n", stamp(), tl.State())
	return nil
}

// Command preemptbench regenerates every figure of the paper's
// evaluation section and prints the same series the paper plots.
//
// Usage:
//
//	preemptbench [-fig 1|2a|2b|3a|3b|4|natjam|all] [-reps N] [-seed S]
//
// Absolute seconds depend on the simulated hardware parameters; the
// shapes (who wins, by how much, where crossovers fall) are the
// reproduction target. See EXPERIMENTS.md for paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hadooppreempt/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2a, 2b, 3a, 3b, 4, natjam, cycles, eviction, advisor, all")
	reps := flag.Int("reps", 5, "repetitions per data point (the paper averages 20)")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	if err := run(*fig, *reps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "preemptbench:", err)
		os.Exit(1)
	}
}

func run(fig string, reps int, seed uint64) error {
	switch fig {
	case "1":
		return figure1(seed)
	case "2a", "2b", "2":
		return figure23("Figure 2: baseline experiments (light-weight tasks)",
			experiments.Figure2, fig, reps, seed)
	case "3a", "3b", "3":
		return figure23("Figure 3: worst-case experiments (memory-hungry tasks)",
			experiments.Figure3, fig, reps, seed)
	case "4":
		return figure4(reps, seed)
	case "natjam":
		return natjam(reps, seed)
	case "cycles":
		return cycles(seed)
	case "eviction":
		return eviction(seed)
	case "advisor":
		return advisor(seed)
	case "all":
		for _, f := range []string{"1", "2", "3", "4", "natjam", "cycles", "eviction", "advisor"} {
			if err := run(f, reps, seed); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

func figure1(seed uint64) error {
	res, err := experiments.Figure1(seed)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 1: task execution schedules ==")
	fmt.Println("legend: '#' running, '=' suspended, 'c' cleanup, '.' waiting for reschedule")
	keys := make([]string, 0, len(res.Gantt))
	for k := range res.Gantt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, prim := range keys {
		fmt.Printf("\n-- %s --\n%s", prim, res.Gantt[prim])
	}
	return nil
}

func figure23(title string, gen func(int, uint64) (*experiments.ComparisonResult, error),
	fig string, reps int, seed uint64) error {
	res, err := gen(reps, seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatComparison(title, res))
	_ = fig
	return nil
}

func figure4(reps int, seed uint64) error {
	res, err := experiments.Figure4(reps, seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure4(res))
	return nil
}

func cycles(seed uint64) error {
	fmt.Println("== Suspend/resume cycle cost (§III-A) ==")
	res, err := experiments.CycleSweep(6, false, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %14s %14s %12s\n", "cycles", "tl sojourn", "tl swap-out", "tl swap-in")
	for _, r := range res {
		fmt.Printf("%8d %13.1fs %13dM %11dM\n",
			r.Cycles, r.TLSojourn.Seconds(), r.TLSwapOut>>20, r.TLSwapIn>>20)
	}
	fmt.Println("(sojourn grows ~linearly per cycle; cold pages go to swap at most once,")
	fmt.Println(" so write traffic amortizes — §III-A's thrashing analysis)")
	return nil
}

func eviction(seed uint64) error {
	fmt.Println("== Eviction policies (§V-A): whom to suspend ==")
	fmt.Printf("%-18s %-8s %12s %14s %14s\n", "policy", "victim", "makespan", "th sojourn", "victim swap")
	for _, policy := range []string{"smallest-memory", "largest-memory", "most-progress", "least-progress"} {
		res, err := experiments.RunEvictionComparison(policy, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %-8s %11.1fs %13.1fs %13dM\n",
			res.Policy, res.Victim, res.Makespan.Seconds(),
			res.SojournTH.Seconds(), res.VictimSwap>>20)
	}
	fmt.Println("(suspending the smallest memory footprint minimizes paging overhead)")
	return nil
}

func advisor(seed uint64) error {
	fmt.Println("== Primitive advisor (§V-A): kill young, wait for nearly-done, suspend the rest ==")
	res, err := experiments.RunAdvisorSweep([]float64{0.02, 0.25, 0.5, 0.75, 0.97}, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %-10s %12s %12s %12s %12s\n", "r(%)", "chosen", "advisor", "wait", "kill", "susp")
	for _, r := range res {
		fmt.Printf("%8.0f %-10s %11.1fs %11.1fs %11.1fs %11.1fs\n",
			r.R*100, r.Chosen.String(),
			r.Makespans["advisor"].Seconds(), r.Makespans["wait"].Seconds(),
			r.Makespans["kill"].Seconds(), r.Makespans["susp"].Seconds())
	}
	return nil
}

func natjam(reps int, seed uint64) error {
	res, err := experiments.NatjamAblation(reps, seed)
	if err != nil {
		return err
	}
	fmt.Println("== Checkpoint (Natjam-style) vs OS-assisted suspension ==")
	fmt.Printf("makespan wait:       %8.1fs (no-preemption floor)\n", res.MakespanWait.Seconds())
	fmt.Printf("makespan susp:       %8.1fs (overhead %+.1f%%)\n",
		res.MakespanSuspend.Seconds(), res.SuspendOverheadFrac*100)
	fmt.Printf("makespan checkpoint: %8.1fs (overhead %+.1f%%)\n",
		res.MakespanCheckpoint.Seconds(), res.CheckpointOverheadFrac*100)
	fmt.Println("(the paper reports ~7% makespan overhead for Natjam in a similar setting,")
	fmt.Println(" and negligible overhead for the OS-assisted primitive)")
	return nil
}

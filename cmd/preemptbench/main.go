// Command preemptbench regenerates every figure of the paper's
// evaluation section and prints the same series the paper plots.
//
// Usage:
//
//	preemptbench [-fig 1|2a|2b|3a|3b|4|natjam|all] [-reps N] [-seed S]
//	             [-parallel W] [-format text|json]
//	             [-cpuprofile file] [-memprofile file]
//
// Figures execute through the parallel sweep harness on its streaming-
// collapse path: -parallel fans the scenario grid out across W workers,
// outcomes fold into per-point aggregates as cells complete, and
// because every cell's seed is derived from its grid coordinates the
// output is identical at any parallelism level. The nightly CI job
// regenerates every figure at the paper's -reps 20 and diffs the JSON
// against goldens/figures_reps20.json. Absolute seconds depend on the
// simulated hardware parameters; the shapes (who wins, by how much,
// where crossovers fall) are the reproduction target. See
// EXPERIMENTS.md for paper-vs-measured notes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"hadooppreempt/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2a, 2b, 3a, 3b, 4, natjam, cycles, eviction, advisor, all")
	reps := flag.Int("reps", 5, "repetitions per data point (the paper averages 20)")
	seed := flag.Uint64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size")
	format := flag.String("format", "text", "output format: text or json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "preemptbench: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "preemptbench: cpuprofile:", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	cfg := experiments.Config{Reps: *reps, Seed: *seed, Parallel: *parallel}
	err := run(*fig, cfg, *format)

	// Flush the CPU profile before any exit path so it is always valid.
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "preemptbench: memprofile:", merr)
			os.Exit(1)
		}
		runtime.GC()
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "preemptbench: memprofile:", merr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "preemptbench:", err)
		os.Exit(1)
	}
}

// figures maps figure names to a generator (producing the raw result for
// JSON output) and a text renderer. One table drives both formats.
type figure struct {
	gen  func(cfg experiments.Config) (any, error)
	text func(res any)
}

var figures = map[string]figure{
	"1":      {genFigure1, textFigure1},
	"2":      {genFigure2, textFigure2},
	"3":      {genFigure3, textFigure3},
	"4":      {genFigure4, textFigure4},
	"natjam": {genNatjam, textNatjam},
	"cycles": {genCycles, textCycles},
	"eviction": {func(cfg experiments.Config) (any, error) {
		return experiments.EvictionSweep(evictionPolicies, cfg)
	}, textEviction},
	"advisor": {func(cfg experiments.Config) (any, error) {
		return experiments.RunAdvisorSweep(advisorRs, cfg)
	}, textAdvisor},
}

var (
	evictionPolicies = []string{"smallest-memory", "largest-memory", "most-progress", "least-progress"}
	advisorRs        = []float64{0.02, 0.25, 0.5, 0.75, 0.97}
	allFigures       = []string{"1", "2", "3", "4", "natjam", "cycles", "eviction", "advisor"}
)

func run(fig string, cfg experiments.Config, format string) error {
	if format != "text" && format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", format)
	}
	// The sub-figure names select the same generator as their figure.
	switch fig {
	case "2a", "2b":
		fig = "2"
	case "3a", "3b":
		fig = "3"
	}
	names := []string{fig}
	if fig == "all" {
		names = allFigures
	}
	results := make(map[string]any, len(names))
	for _, name := range names {
		f, ok := figures[name]
		if !ok {
			return fmt.Errorf("unknown figure %q", name)
		}
		res, err := f.gen(cfg)
		if err != nil {
			return err
		}
		results[name] = res
		if format == "text" {
			f.text(res)
			if len(names) > 1 {
				fmt.Println()
			}
		}
	}
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(names) == 1 {
			return enc.Encode(results[names[0]])
		}
		return enc.Encode(results)
	}
	return nil
}

func genFigure1(cfg experiments.Config) (any, error) { return experiments.Figure1(cfg) }
func genFigure2(cfg experiments.Config) (any, error) { return experiments.Figure2(cfg) }
func genFigure3(cfg experiments.Config) (any, error) { return experiments.Figure3(cfg) }
func genFigure4(cfg experiments.Config) (any, error) { return experiments.Figure4(cfg) }
func genNatjam(cfg experiments.Config) (any, error)  { return experiments.NatjamAblation(cfg) }
func genCycles(cfg experiments.Config) (any, error) {
	return experiments.CycleSweep(6, false, cfg)
}

func textFigure1(res any) {
	r := res.(*experiments.Figure1Result)
	fmt.Println("== Figure 1: task execution schedules ==")
	fmt.Println("legend: '#' running, '=' suspended, 'c' cleanup, '.' waiting for reschedule")
	keys := make([]string, 0, len(r.Gantt))
	for k := range r.Gantt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, prim := range keys {
		fmt.Printf("\n-- %s --\n%s", prim, r.Gantt[prim])
	}
}

func textFigure2(res any) {
	fmt.Print(experiments.FormatComparison(
		"Figure 2: baseline experiments (light-weight tasks)",
		res.(*experiments.ComparisonResult)))
}

func textFigure3(res any) {
	fmt.Print(experiments.FormatComparison(
		"Figure 3: worst-case experiments (memory-hungry tasks)",
		res.(*experiments.ComparisonResult)))
}

func textFigure4(res any) {
	fmt.Print(experiments.FormatFigure4(res.(*experiments.Figure4Result)))
}

func textCycles(res any) {
	r := res.([]*experiments.CycleResult)
	fmt.Println("== Suspend/resume cycle cost (§III-A) ==")
	fmt.Printf("%8s %14s %14s %12s\n", "cycles", "tl sojourn", "tl swap-out", "tl swap-in")
	for _, c := range r {
		fmt.Printf("%8d %13.1fs %13dM %11dM\n",
			c.Cycles, c.TLSojourn.Seconds(), c.TLSwapOut>>20, c.TLSwapIn>>20)
	}
	fmt.Println("(sojourn grows ~linearly per cycle; cold pages go to swap at most once,")
	fmt.Println(" so write traffic amortizes — §III-A's thrashing analysis)")
}

func textEviction(res any) {
	r := res.([]*experiments.EvictionResult)
	fmt.Println("== Eviction policies (§V-A): whom to suspend ==")
	fmt.Printf("%-18s %-8s %12s %14s %14s\n", "policy", "victim", "makespan", "th sojourn", "victim swap")
	for _, e := range r {
		fmt.Printf("%-18s %-8s %11.1fs %13.1fs %13dM\n",
			e.Policy, e.Victim, e.Makespan.Seconds(),
			e.SojournTH.Seconds(), e.VictimSwap>>20)
	}
	fmt.Println("(suspending the smallest memory footprint minimizes paging overhead)")
}

func textAdvisor(res any) {
	r := res.([]*experiments.AdvisorResult)
	fmt.Println("== Primitive advisor (§V-A): kill young, wait for nearly-done, suspend the rest ==")
	fmt.Printf("%8s %-10s %12s %12s %12s %12s\n", "r(%)", "chosen", "advisor", "wait", "kill", "susp")
	for _, a := range r {
		fmt.Printf("%8.0f %-10s %11.1fs %11.1fs %11.1fs %11.1fs\n",
			a.R*100, a.Chosen.String(),
			a.Makespans["advisor"].Seconds(), a.Makespans["wait"].Seconds(),
			a.Makespans["kill"].Seconds(), a.Makespans["susp"].Seconds())
	}
}

func textNatjam(res any) {
	r := res.(*experiments.NatjamResult)
	fmt.Println("== Checkpoint (Natjam-style) vs OS-assisted suspension ==")
	fmt.Printf("makespan wait:       %8.1fs (no-preemption floor)\n", r.MakespanWait.Seconds())
	fmt.Printf("makespan susp:       %8.1fs (overhead %+.1f%%)\n",
		r.MakespanSuspend.Seconds(), r.SuspendOverheadFrac*100)
	fmt.Printf("makespan checkpoint: %8.1fs (overhead %+.1f%%)\n",
		r.MakespanCheckpoint.Seconds(), r.CheckpointOverheadFrac*100)
	fmt.Println("(the paper reports ~7% makespan overhead for Natjam in a similar setting,")
	fmt.Println(" and negligible overhead for the OS-assisted primitive)")
}

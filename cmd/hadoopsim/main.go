// Command hadoopsim runs a simulated Hadoop cluster from a dummy-
// scheduler configuration file (§III-B's "static configuration files")
// and prints the resulting schedule and per-job metrics, or fans a
// declarative scenario grid out across a parallel sweep harness bound
// to one of three execution backends.
//
// Usage:
//
//	hadoopsim -config experiment.conf [-nodes N] [-slots S] [-seed X]
//	hadoopsim -sweep twojob|pressure|cluster|evict|primitive|scenarios
//	          [-parallel W]
//	          [-reps N] [-seed X] [-format table|csv|json|series]
//	          [-cache DIR] [-cpuprofile file] [-memprofile file]
//	hadoopsim -backend replay {-trace trace.tsv | -trace-gen N} [-trace-shards K]
//	          [-replay-sched fifo|fair|hfsp] [-replay-timescale F]
//	          [-replay-window W] [-reps N] [-format F]
//	hadoopsim -backend real [-reps N] [-real-steps N] [-real-units U]
//	          [-real-mem BYTES] [-format F]
//	hadoopsim [backend flags] -shard i/n > shard-i.json
//	hadoopsim -merge [-format table|csv|json|series] shard-*.json
//	hadoopsim [backend flags] -serve addr [-lease N] [-lease-ttl D] [-format F]
//	          [-checkpoint state.ckpt [-resume]] [-lease-retries N] [-chaos SPEC]
//	hadoopsim [backend flags] -worker addr [-parallel W] [-chaos SPEC]
//	hadoopsim -status addr
//
// Backends (-backend, default sim):
//
//	sim     the discrete-event simulator; -sweep picks the grid
//	replay  SWIM trace replay: -trace (or a synthesized -trace-gen N
//	        trace) splits into -trace-shards cells per repetition, each
//	        replayed through an isolated cluster (-replay-timescale F
//	        divides trace submission times, so day-long traces run in
//	        bounded cells; -replay-window W streams inputs instead of
//	        materializing every job up front)
//	real    the two-job scenario on real OS processes, preempted with
//	        actual SIGTSTP/SIGCONT/SIGKILL (unix only; wall-clock, so
//	        output is measured, not deterministic; cells run serially
//	        unless -parallel is set explicitly, to keep CPU-bound
//	        workers of different cells from contending)
//
// Sim sweep grids (before repetitions):
//
//	twojob     primitive x preemption point        (Figures 2a/2b)
//	pressure   primitive x th memory x preemption  (Figures 3/4 regime)
//	cluster    scheduler x nodes x workload mix    (cluster scale-out)
//	evict      fair/hfsp x eviction policy x nodes x mix
//	primitive  fair/hfsp x susp/kill x nodes x mix (seed-paired)
//	scenarios  fair/hfsp x arrival shape x memory skew (generated
//	           preemption scenarios; all scenario axes seed-paired)
//
// Cell seeds derive from grid coordinates, not execution order, so for
// the sim and replay backends -parallel 8 produces byte-identical
// output to -parallel 1. The same property makes sharding pure
// partitioning: -shard i/n runs the i-th of n seed-stable grid slices
// and emits a mergeable shard file on stdout, and -merge combines the
// shard files of one sweep — in any order — into output byte-identical
// to a single-process run.
//
// Distributed mode replaces static shards with dynamic scheduling: a
// coordinator (-serve addr) partitions the grid into leases of -lease
// cells and hands them to workers (-worker addr) over HTTP+JSON. Every
// process is started with the same backend flags; the coordinator
// verifies each worker sweeps the identical grid (structure and
// content fingerprints) before leasing, re-issues leases whose worker
// went silent past -lease-ttl, and lets fast workers steal outstanding
// leases from stragglers (first result wins, duplicates discarded).
// The merged output the coordinator prints is byte-identical to the
// single-process sweep at any worker count, join order, steal or
// re-issue history.
//
// The coordinator is durable and observable: -checkpoint persists its
// state (identity fingerprints, lease ledger, running aggregate) after
// every accepted upload, and a coordinator killed mid-sweep restarts
// with -resume from its last durable lease — live workers retry
// through the outage and the final output is still byte-identical.
// GET /v1/status (rendered by `hadoopsim -status addr`) reports cells
// done, lease progress, per-worker throughput and an ETA. A
// comma-separated -sweep list (sim backend) queues several grids on
// one server, run in order as a long-lived grid service.
//
// -cache DIR memoizes cell results on disk, keyed by the content of the
// computation (grid fingerprint, backend identity, base seed, cell):
// a warm rerun replays cached cells instead of executing them and emits
// byte-identical output. The same directory serves single-process runs,
// the coordinator (which retires whole leases from cache before issuing
// them) and workers (which skip leased cells they find cached). Corrupt
// or stale entries are silent misses, never errors; the real backend
// measures wall-clock time and always bypasses. Counters are printed to
// stderr and served in /v1/status.
//
// -chaos injects a seeded, deterministic fault schedule for drills: on
// a coordinator it corrupts the HTTP boundary (drop, duplicate,
// truncate, delay) and the checkpoint writer; on a worker it corrupts
// the HTTP client and makes chosen grid cells fail transiently. The
// spec is comma-separated key=value pairs (seed, drop, drop-resp, dup,
// trunc, delay, delay-max, ckpt, cell-err, cell-panic, cell-fails;
// cell-fails=poison never lets a faulty cell succeed). Within the
// coordinator's per-lease failure budget (-lease-retries, default 3)
// output stays byte-identical to a faultless run; beyond it the sweep
// aborts naming the poison cells. Give each process its own seed so
// their fault schedules are independent and individually replayable.
//
// Example configuration (the paper's two-job experiment at r=50%):
//
//	primitive susp
//	input /input/tl 512M
//	input /input/th 512M
//	job tl /input/tl priority=0 rate=6.5e6
//	job th /input/th priority=10 rate=6.5e6
//	submit tl
//	on progress tl 0.5 submit th
//	on progress tl 0.5 preempt tl
//	on complete th restore tl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	hp "hadooppreempt"
	"hadooppreempt/internal/config"
	"hadooppreempt/internal/mapreduce"
)

func main() {
	// The real backend re-executes this binary as its workers.
	if hp.IsRealExecWorker() {
		hp.RealExecWorkerMain()
	}
	path := flag.String("config", "", "experiment configuration file")
	nodes := flag.Int("nodes", 1, "worker node count")
	slots := flag.Int("slots", 1, "map slots per node")
	seed := flag.Uint64("seed", 1, "random seed")
	deadline := flag.Duration("deadline", 2*time.Hour, "virtual-time budget")
	width := flag.Int("width", 72, "gantt chart width")
	backend := flag.String("backend", "sim", "execution backend: sim, replay or real")
	sweepName := flag.String("sweep", "", "sim scenario grid to sweep: twojob, pressure, cluster, evict, primitive or scenarios (with -serve, a comma-separated list queues several)")
	tracePath := flag.String("trace", "", "SWIM trace file for the replay backend")
	traceGen := flag.Int("trace-gen", 0, "replay backend: synthesize a deterministic N-job Facebook-like SWIM trace instead of reading -trace (a pure function of N, so every process regenerates the same trace)")
	traceShards := flag.Int("trace-shards", 4, "trace shards per repetition (replay cells)")
	replaySched := flag.String("replay-sched", "fifo", "replay cluster scheduler: fifo, fair or hfsp")
	replayTimescale := flag.Float64("replay-timescale", 1, "replay backend: divide trace submission times by this factor")
	replayWindow := flag.Int("replay-window", 0, "replay backend: materialize at most this many jobs' inputs ahead of the submission frontier (0 = all up front; output is identical either way)")
	realSteps := flag.Int("real-steps", 20, "real backend: progress steps per worker")
	realUnits := flag.Int64("real-units", 2_000_000, "real backend: busy-loop iterations per step")
	realMem := flag.Int64("real-mem", 0, "real backend: bytes of state each worker dirties")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size")
	reps := flag.Int("reps", 1, "sweep repetitions per cell")
	format := flag.String("format", "table", "sweep output format: table, csv, json or series")
	shard := flag.String("shard", "", "run only slice i/n of the sweep and emit a mergeable shard file on stdout")
	merge := flag.Bool("merge", false, "merge the shard files given as arguments and render with -format")
	serveAddr := flag.String("serve", "", "coordinate a distributed sweep: listen on this address, lease cells to -worker processes, print the merged result")
	workerAddr := flag.String("worker", "", "join the distributed-sweep coordinator at this address and execute leased cells")
	leaseCells := flag.Int("lease", 8, "distributed mode: grid cells per lease")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "distributed mode: how long a lease may stay outstanding before a silent worker's cells are reissued")
	checkpoint := flag.String("checkpoint", "", "coordinator mode: persist durable state to this file after every accepted upload, so a killed coordinator can -resume")
	resume := flag.Bool("resume", false, "coordinator mode: restore state from -checkpoint instead of starting the sweep over; output stays byte-identical to an uninterrupted run")
	statusAddr := flag.String("status", "", "query the coordinator at this address (GET /v1/status) and print sweep progress")
	cellSleep := flag.Duration("cell-sleep", 0, "debug: sleep (1 + cell mod 3) x this per cell — artificially slow, uneven cells for exercising the distributed scheduler; results are unchanged")
	leaseRetries := flag.Int("lease-retries", 3, "coordinator mode: per-lease failure budget — reported cell errors tolerated per lease before the sweep aborts as poisoned")
	chaosSpec := flag.String("chaos", "", "distributed mode: seeded deterministic fault injection, comma-separated key=value pairs (seed, drop, drop-resp, dup, trunc, delay, delay-max, ckpt, cell-err, cell-panic, cell-fails)")
	cacheDir := flag.String("cache", "", "sweep mode: memoize cell results in this directory; warm reruns replay cached cells and stay byte-identical (real backend bypasses: wall-clock cells)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	var cpuFile *os.File
	if *cpuprofile != "" {
		cf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hadoopsim: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			fmt.Fprintln(os.Stderr, "hadoopsim: cpuprofile:", err)
			os.Exit(1)
		}
		cpuFile = cf
	}

	f := sweepFlags{
		cellSleep:       *cellSleep,
		chaos:           *chaosSpec,
		cache:           *cacheDir,
		backend:         *backend,
		scenario:        *sweepName,
		trace:           *tracePath,
		traceGen:        *traceGen,
		traceShards:     *traceShards,
		replaySched:     *replaySched,
		replayTimescale: *replayTimescale,
		replayWindow:    *replayWindow,
		realSteps:       *realSteps,
		realUnits:       *realUnits,
		realMem:         *realMem,
		parallel:        *parallel,
		parallelSet:     flagSet("parallel"),
		reps:            *reps,
		seed:            *seed,
		format:          *format,
		shard:           *shard,
	}
	var err error
	switch {
	case *merge:
		if conflicting := append(configOnlyFlagsSet(), sweepOnlyFlagsSet()...); len(conflicting) > 0 {
			err = fmt.Errorf("-merge cannot be combined with %s", strings.Join(conflicting, ", "))
		} else {
			err = runMerge(flag.Args(), *format)
		}
	case *statusAddr != "":
		if conflicting := append(configOnlyFlagsSet(), sweepOnlyFlagsSet()...); len(conflicting) > 0 {
			err = fmt.Errorf("-status only queries a running coordinator; it cannot be combined with %s",
				strings.Join(conflicting, ", "))
		} else {
			err = runStatus(*statusAddr)
		}
	case *serveAddr != "" && *workerAddr != "":
		err = fmt.Errorf("-serve and -worker are different processes; pick one")
	case *serveAddr != "":
		if conflicting := configOnlyFlagsSet(); len(conflicting) > 0 {
			err = fmt.Errorf("-serve cannot be combined with %s (config-mode flags)", strings.Join(conflicting, ", "))
		} else if *shard != "" {
			err = fmt.Errorf("-serve schedules cells dynamically; it cannot be combined with -shard")
		} else if *resume && *checkpoint == "" {
			err = fmt.Errorf("-resume needs -checkpoint <file> to restore from")
		} else {
			err = runServe(f, *serveAddr, *leaseCells, *leaseTTL, *checkpoint, *resume, *leaseRetries)
		}
	case *workerAddr != "":
		switch {
		case len(configOnlyFlagsSet()) > 0:
			err = fmt.Errorf("-worker cannot be combined with %s (config-mode flags)",
				strings.Join(configOnlyFlagsSet(), ", "))
		case *shard != "" || flagSet("format"):
			err = fmt.Errorf("-worker streams results to the coordinator; -shard and -format do not apply")
		case flagSet("seed"):
			err = fmt.Errorf("-worker takes the sweep seed from the coordinator; drop -seed")
		case anyFlagSet("lease", "lease-ttl", "checkpoint", "resume", "lease-retries"):
			err = fmt.Errorf("-lease, -lease-ttl, -lease-retries, -checkpoint and -resume are coordinator (-serve) flags")
		default:
			err = runWorker(f, *workerAddr)
		}
	case *sweepName != "" || anyFlagSet("backend", "trace", "trace-gen", "trace-shards",
		"replay-sched", "replay-timescale", "replay-window",
		"real-steps", "real-units", "real-mem", "cell-sleep"):
		if conflicting := configOnlyFlagsSet(); len(conflicting) > 0 {
			err = fmt.Errorf("sweep mode cannot be combined with %s (config-mode flags)",
				strings.Join(conflicting, ", "))
		} else if conflicting := distOnlyFlagsSet(); len(conflicting) > 0 {
			err = fmt.Errorf("%s need -serve or -worker", strings.Join(conflicting, ", "))
		} else if *shard != "" && flagSet("format") {
			// A shard run always emits the shard-file form; merge
			// applies -format.
			err = fmt.Errorf("-shard emits a shard file, not -format output (render it via -merge)")
		} else {
			err = runSweep(f)
		}
	default:
		err = run(*path, *nodes, *slots, *seed, *deadline, *width)
	}
	// Flush profiles before any exit path so they are always valid.
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
	if *memprofile != "" {
		mf, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "hadoopsim: memprofile:", merr)
			os.Exit(1)
		}
		runtime.GC()
		if merr := pprof.WriteHeapProfile(mf); merr != nil {
			fmt.Fprintln(os.Stderr, "hadoopsim: memprofile:", merr)
			os.Exit(1)
		}
		mf.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hadoopsim:", err)
		os.Exit(1)
	}
}

// configOnlyFlagsSet lists explicitly set flags that only apply to
// -config mode, so sweep mode rejects them instead of silently ignoring
// what the user asked for.
func configOnlyFlagsSet() []string {
	var out []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "config", "nodes", "slots", "deadline", "width":
			out = append(out, "-"+f.Name)
		}
	})
	return out
}

// flagSet reports whether the named flag was explicitly set.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// anyFlagSet reports whether any of the named flags was explicitly set.
func anyFlagSet(names ...string) bool {
	for _, n := range names {
		if flagSet(n) {
			return true
		}
	}
	return false
}

// sweepOnlyFlagsSet lists explicitly set flags that only apply to
// sweep mode, so -merge rejects them.
func sweepOnlyFlagsSet() []string {
	var out []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sweep", "parallel", "reps", "seed", "shard", "backend",
			"trace", "trace-gen", "trace-shards",
			"replay-sched", "replay-timescale", "replay-window",
			"real-steps", "real-units", "real-mem",
			"serve", "worker", "lease", "lease-ttl", "lease-retries",
			"checkpoint", "resume", "cell-sleep", "chaos", "cache":
			out = append(out, "-"+f.Name)
		}
	})
	return out
}

// distOnlyFlagsSet lists explicitly set flags that only apply to the
// distributed modes, so plain sweeps reject them.
func distOnlyFlagsSet() []string {
	var out []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "lease", "lease-ttl", "lease-retries", "checkpoint", "resume", "chaos":
			out = append(out, "-"+f.Name)
		}
	})
	return out
}

// sweepFlags carries the flag values of one sweep-mode invocation.
type sweepFlags struct {
	cellSleep       time.Duration
	chaos           string
	cache           string
	backend         string
	scenario        string
	trace           string
	traceGen        int
	traceShards     int
	replaySched     string
	replayTimescale float64
	replayWindow    int
	realSteps       int
	realUnits       int64
	realMem         int64
	parallel        int
	parallelSet     bool
	reps            int
	seed            uint64
	format          string
	shard           string
}

// buildBackend resolves the flag set to an execution backend,
// decorated with the -cell-sleep debug cost when asked for.
func buildBackend(f sweepFlags) (hp.SweepBackend, error) {
	b, err := buildBareBackend(f)
	if err != nil {
		return nil, err
	}
	return hp.SlowSweep(b, f.cellSleep), nil
}

func buildBareBackend(f sweepFlags) (hp.SweepBackend, error) {
	switch f.backend {
	case "sim":
		if f.trace != "" || f.traceGen != 0 {
			return nil, fmt.Errorf("-trace and -trace-gen need -backend replay")
		}
		scenario := f.scenario
		if scenario == "" {
			scenario = "twojob"
		}
		return hp.SimSweep(scenario, 12, f.reps)
	case "replay":
		if f.scenario != "" {
			return nil, fmt.Errorf("-sweep names a sim scenario; the replay backend takes -trace")
		}
		var jobs []hp.SWIMTraceJob
		var err error
		switch {
		case f.trace != "" && f.traceGen != 0:
			return nil, fmt.Errorf("-trace and -trace-gen are alternatives; pick one")
		case f.trace != "":
			jobs, err = hp.ReadSWIMTraceFile(f.trace)
		case f.traceGen != 0:
			jobs, err = hp.SynthesizeSWIMTrace(f.traceGen)
		default:
			return nil, fmt.Errorf("-backend replay needs -trace <file> or -trace-gen <n>")
		}
		if err != nil {
			return nil, err
		}
		return hp.ReplaySweep(hp.ReplayConfig{
			Jobs:      jobs,
			Shards:    f.traceShards,
			Reps:      f.reps,
			Scheduler: f.replaySched,
			TimeScale: f.replayTimescale,
			Window:    f.replayWindow,
		})
	case "real":
		if f.scenario != "" || f.trace != "" {
			return nil, fmt.Errorf("the real backend takes neither -sweep nor -trace")
		}
		return hp.RealExecSweep(hp.RealExecConfig{
			Reps:         f.reps,
			Steps:        f.realSteps,
			UnitsPerStep: f.realUnits,
			MemBytes:     f.realMem,
		})
	default:
		return nil, fmt.Errorf("unknown backend %q (want sim, replay or real)", f.backend)
	}
}

func runSweep(f sweepFlags) error {
	b, err := buildBackend(f)
	if err != nil {
		return err
	}
	if f.backend == "real" && !f.parallelSet {
		// Real cells measure wall-clock time of CPU-bound workers:
		// running them concurrently would measure contention between
		// cells, not the primitives. Serialize unless explicitly asked.
		f.parallel = 1
	}
	opts := hp.SweepOptions{Parallel: f.parallel, Seed: f.seed}
	if f.shard != "" {
		if opts.Shard, err = hp.ParseSweepShard(f.shard); err != nil {
			return err
		}
	}
	cache, err := openCache(f)
	if err != nil {
		return err
	}
	opts.Cache = cache
	col, err := hp.RunSweepBackend(b, opts, "rep")
	if err != nil {
		return err
	}
	reportCache(cache, "sweep")
	if f.shard != "" {
		return col.WriteShard(os.Stdout)
	}
	return col.Write(os.Stdout, f.format)
}

// openCache opens the -cache cell-result cache, or returns nil when
// the flag is unset (a nil cache caches nothing).
func openCache(f sweepFlags) (*hp.CellCache, error) {
	if f.cache == "" {
		return nil, nil
	}
	return hp.NewCellCache(f.cache)
}

// reportCache prints this process's cache counters to stderr — the
// warm-vs-cold summary of a -cache run.
func reportCache(c *hp.CellCache, role string) {
	if c == nil {
		return
	}
	cc := c.Counters()
	fmt.Fprintf(os.Stderr, "%s: cache: %d hits, %d misses, %d bypassed, %d writes\n",
		role, cc.Hits, cc.Misses, cc.Bypassed, cc.Writes)
}

// runServe coordinates distributed sweeps: partition each grid into
// leases, hand them to workers, fold their uploads into a running
// aggregate and render the result — byte-identical to runSweep at any
// worker count, steal, re-issue, or coordinator-crash-and-resume
// history. With -checkpoint the coordinator state is durable; with a
// comma-separated -sweep list the server queues several sim grids and
// runs them in order (a long-lived grid service).
func runServe(f sweepFlags, addr string, leaseCells int, ttl time.Duration, checkpoint string, resume bool, leaseRetries int) error {
	plan, err := chaosPlan(f, "coord")
	if err != nil {
		return err
	}
	cache, err := openCache(f)
	if err != nil {
		return err
	}
	opts := hp.DistributedOptions{
		Addr:             addr,
		Seed:             f.seed,
		LeaseCells:       leaseCells,
		LeaseTTL:         ttl,
		Checkpoint:       checkpoint,
		Resume:           resume,
		MaxLeaseFailures: leaseRetries,
		Chaos:            plan,
		Cache:            cache,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "coord: "+format+"\n", args...)
		},
	}
	scenarios := strings.Split(f.scenario, ",")
	if len(scenarios) == 1 {
		b, err := buildBackend(f)
		if err != nil {
			return err
		}
		col, err := hp.DistributedSweep(context.Background(), b, opts, "rep")
		if err != nil {
			return err
		}
		reportCache(cache, "coord")
		return col.Write(os.Stdout, f.format)
	}
	if f.backend != "sim" {
		return fmt.Errorf("a -sweep queue (comma-separated scenarios) needs -backend sim")
	}
	backends := make([]hp.SweepBackend, len(scenarios))
	for i, scenario := range scenarios {
		fs := f
		fs.scenario = strings.TrimSpace(scenario)
		b, err := buildBackend(fs)
		if err != nil {
			return fmt.Errorf("sweep %d (%s): %w", i, scenario, err)
		}
		backends[i] = b
	}
	var werr error
	_, err = hp.DistributedSweepQueue(context.Background(), backends, opts,
		func(i int, col *hp.SweepCollapsed) {
			fmt.Printf("# sweep %d: %s\n", i, strings.TrimSpace(scenarios[i]))
			if err := col.Write(os.Stdout, f.format); err != nil && werr == nil {
				werr = err
			}
		}, "rep")
	if err != nil {
		return err
	}
	reportCache(cache, "coord")
	return werr
}

// runStatus queries a running coordinator's GET /v1/status endpoint
// and prints per-sweep and per-worker progress.
func runStatus(addr string) error {
	st, err := hp.SweepStatus(addr)
	if err != nil {
		return err
	}
	for _, s := range st.Sweeps {
		line := fmt.Sprintf("sweep %d: %-7s %d/%d cells", s.Sweep, s.State, s.CellsDone, s.Cells)
		if s.Cells > 0 {
			line += fmt.Sprintf(" (%d%%)", 100*s.CellsDone/s.Cells)
		}
		line += fmt.Sprintf(", leases %d done / %d out / %d queued of %d",
			s.LeasesDone, s.LeasesOutstanding, s.LeasesQueued, s.Leases)
		if s.EtaMS >= 0 {
			line += fmt.Sprintf(", eta %s", (time.Duration(s.EtaMS) * time.Millisecond).Round(time.Second))
		}
		if s.Error != "" {
			line += ", error: " + s.Error
		}
		fmt.Println(line)
	}
	for _, w := range st.Workers {
		fmt.Printf("worker %s: sweep %d, %d cells, %.1f cells/s, seen %s ago\n",
			w.Worker, w.Sweep, w.CellsDone, w.CellsPerSec,
			(time.Duration(w.LastSeenMS) * time.Millisecond).Round(100*time.Millisecond))
	}
	if st.Cache != nil {
		fmt.Printf("cache: %d hits, %d misses, %d bypassed, %d writes\n",
			st.Cache.Hits, st.Cache.Misses, st.Cache.Bypassed, st.Cache.Writes)
	}
	return nil
}

// runWorker joins a coordinator and executes leased cells with the
// locally constructed backend until the sweep completes.
func runWorker(f sweepFlags, addr string) error {
	b, err := buildBackend(f)
	if err != nil {
		return err
	}
	if f.backend == "real" && !f.parallelSet {
		// Same rule as runSweep: real cells measure wall-clock time, so
		// they run serially unless concurrency is asked for explicitly.
		f.parallel = 1
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "worker: "+format+"\n", args...)
	}
	plan, err := chaosPlan(f, "worker")
	if err != nil {
		return err
	}
	cache, err := openCache(f)
	if err != nil {
		return err
	}
	werr := hp.RunDistributedWorker(context.Background(), addr, b, hp.DistributedWorkerOptions{
		Parallel: f.parallel,
		Chaos:    plan,
		Cache:    cache,
		Logf:     logf,
	})
	reportCache(cache, "worker")
	return werr
}

// chaosPlan builds the process's fault plan from -chaos, logging every
// injected fault to stderr under the process role — the replayable
// fault trace of a drill. Nil when -chaos is unset.
func chaosPlan(f sweepFlags, role string) (*hp.ChaosPlan, error) {
	if f.chaos == "" {
		return nil, nil
	}
	cfg, err := hp.ParseChaosSpec(f.chaos)
	if err != nil {
		return nil, err
	}
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, role+": "+format+"\n", args...)
	}
	plan := hp.NewChaosPlan(cfg)
	fmt.Fprintf(os.Stderr, "%s: chaos plan active (seed %d): %s\n", role, plan.Seed(), f.chaos)
	return plan, nil
}

// runMerge combines the shard files of one sweep into the full result
// and renders it; any shard order yields byte-identical output.
func runMerge(files []string, format string) error {
	if len(files) == 0 {
		return fmt.Errorf("-merge needs shard files as arguments")
	}
	shards := make([]*hp.SweepCollapsed, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		shards[i], err = hp.ReadSweepShard(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	col, err := hp.MergeSweepShards(shards...)
	if err != nil {
		return err
	}
	return col.Write(os.Stdout, format)
}

func run(path string, nodes, slots int, seed uint64, deadline time.Duration, width int) error {
	if path == "" {
		return fmt.Errorf("missing -config or -sweep (see -h)")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	exp, err := config.Parse(f)
	if err != nil {
		return err
	}
	ccfg := mapreduce.DefaultClusterConfig()
	ccfg.Nodes = nodes
	ccfg.Node.MapSlots = slots
	ccfg.Seed = seed
	cluster, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return err
	}
	runner, err := config.NewRunner(exp, cluster)
	if err != nil {
		return err
	}
	if err := runner.Run(deadline); err != nil {
		return err
	}

	fmt.Printf("primitive: %v\n\n", exp.Primitive)
	fmt.Println("schedule ('#' running, '=' suspended, 'c' cleanup, '.' waiting):")
	fmt.Print(runner.Trace().Gantt(width))
	fmt.Println()

	names := make([]string, 0, len(runner.Jobs()))
	for name := range runner.Jobs() {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-12s %-10s %10s %12s %8s %10s %12s\n",
		"job", "state", "sojourn", "wasted-cpu", "susp", "attempts", "swap-out")
	for _, name := range names {
		job := runner.Jobs()[name]
		var susp, attempts int
		var wasted time.Duration
		var swapOut int64
		for _, t := range job.Tasks() {
			susp += t.Suspensions()
			attempts += t.Attempts()
			wasted += t.WastedWork()
			swapOut += t.SwapOutBytes()
		}
		fmt.Printf("%-12s %-10s %9.1fs %11.1fs %8d %10d %11dM\n",
			name, job.State(),
			(job.CompletedAt() - job.SubmittedAt()).Seconds(),
			wasted.Seconds(), susp, attempts, swapOut>>20)
	}
	return nil
}

// Command hadoopsim runs a simulated Hadoop cluster from a dummy-
// scheduler configuration file (§III-B's "static configuration files")
// and prints the resulting schedule and per-job metrics.
//
// Usage:
//
//	hadoopsim -config experiment.conf [-nodes N] [-slots S] [-seed X]
//
// Example configuration (the paper's two-job experiment at r=50%):
//
//	primitive susp
//	input /input/tl 512M
//	input /input/th 512M
//	job tl /input/tl priority=0 rate=6.5e6
//	job th /input/th priority=10 rate=6.5e6
//	submit tl
//	on progress tl 0.5 submit th
//	on progress tl 0.5 preempt tl
//	on complete th restore tl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"hadooppreempt/internal/config"
	"hadooppreempt/internal/mapreduce"
)

func main() {
	path := flag.String("config", "", "experiment configuration file (required)")
	nodes := flag.Int("nodes", 1, "worker node count")
	slots := flag.Int("slots", 1, "map slots per node")
	seed := flag.Uint64("seed", 1, "random seed")
	deadline := flag.Duration("deadline", 2*time.Hour, "virtual-time budget")
	width := flag.Int("width", 72, "gantt chart width")
	flag.Parse()

	if err := run(*path, *nodes, *slots, *seed, *deadline, *width); err != nil {
		fmt.Fprintln(os.Stderr, "hadoopsim:", err)
		os.Exit(1)
	}
}

func run(path string, nodes, slots int, seed uint64, deadline time.Duration, width int) error {
	if path == "" {
		return fmt.Errorf("missing -config (see -h for the file format)")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	exp, err := config.Parse(f)
	if err != nil {
		return err
	}
	ccfg := mapreduce.DefaultClusterConfig()
	ccfg.Nodes = nodes
	ccfg.Node.MapSlots = slots
	ccfg.Seed = seed
	cluster, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return err
	}
	runner, err := config.NewRunner(exp, cluster)
	if err != nil {
		return err
	}
	if err := runner.Run(deadline); err != nil {
		return err
	}

	fmt.Printf("primitive: %v\n\n", exp.Primitive)
	fmt.Println("schedule ('#' running, '=' suspended, 'c' cleanup, '.' waiting):")
	fmt.Print(runner.Trace().Gantt(width))
	fmt.Println()

	names := make([]string, 0, len(runner.Jobs()))
	for name := range runner.Jobs() {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-12s %-10s %10s %12s %8s %10s %12s\n",
		"job", "state", "sojourn", "wasted-cpu", "susp", "attempts", "swap-out")
	for _, name := range names {
		job := runner.Jobs()[name]
		var susp, attempts int
		var wasted time.Duration
		var swapOut int64
		for _, t := range job.Tasks() {
			susp += t.Suspensions()
			attempts += t.Attempts()
			wasted += t.WastedWork()
			swapOut += t.SwapOutBytes()
		}
		fmt.Printf("%-12s %-10s %9.1fs %11.1fs %8d %10d %11dM\n",
			name, job.State(),
			(job.CompletedAt() - job.SubmittedAt()).Seconds(),
			wasted.Seconds(), susp, attempts, swapOut>>20)
	}
	return nil
}

// Command hadoopsim runs a simulated Hadoop cluster from a dummy-
// scheduler configuration file (§III-B's "static configuration files")
// and prints the resulting schedule and per-job metrics, or fans a
// declarative scenario grid out across a parallel sweep harness.
//
// Usage:
//
//	hadoopsim -config experiment.conf [-nodes N] [-slots S] [-seed X]
//	hadoopsim -sweep twojob|pressure|cluster [-parallel W] [-reps N]
//	          [-seed X] [-format table|csv|json]
//	hadoopsim -sweep NAME -shard i/n [-reps N] [-seed X] > shard-i.json
//	hadoopsim -merge [-format table|csv|json] shard-*.json
//
// Sweep grids (27 cells each, before repetitions):
//
//	twojob    primitive x preemption point        (Figures 2a/2b)
//	pressure  primitive x th memory x preemption  (Figures 3/4 regime)
//	cluster   scheduler x nodes x workload mix    (cluster scale-out)
//
// Cell seeds derive from grid coordinates, not execution order, so
// -parallel 8 produces byte-identical output to -parallel 1. The same
// property makes sharding pure partitioning: -shard i/n runs the i-th
// of n seed-stable grid slices and emits a mergeable shard file on
// stdout, and -merge combines the shard files of one sweep — in any
// order — into output byte-identical to a single-process run.
//
// Example configuration (the paper's two-job experiment at r=50%):
//
//	primitive susp
//	input /input/tl 512M
//	input /input/th 512M
//	job tl /input/tl priority=0 rate=6.5e6
//	job th /input/th priority=10 rate=6.5e6
//	submit tl
//	on progress tl 0.5 submit th
//	on progress tl 0.5 preempt tl
//	on complete th restore tl
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	hp "hadooppreempt"
	"hadooppreempt/internal/config"
	"hadooppreempt/internal/mapreduce"
)

func main() {
	path := flag.String("config", "", "experiment configuration file")
	nodes := flag.Int("nodes", 1, "worker node count")
	slots := flag.Int("slots", 1, "map slots per node")
	seed := flag.Uint64("seed", 1, "random seed")
	deadline := flag.Duration("deadline", 2*time.Hour, "virtual-time budget")
	width := flag.Int("width", 72, "gantt chart width")
	sweepName := flag.String("sweep", "", "scenario grid to sweep: twojob, pressure or cluster")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size")
	reps := flag.Int("reps", 1, "sweep repetitions per cell")
	format := flag.String("format", "table", "sweep output format: table, csv or json")
	shard := flag.String("shard", "", "run only slice i/n of the sweep and emit a mergeable shard file on stdout")
	merge := flag.Bool("merge", false, "merge the shard files given as arguments and render with -format")
	flag.Parse()

	var err error
	switch {
	case *merge:
		if conflicting := append(configOnlyFlagsSet(), sweepOnlyFlagsSet()...); len(conflicting) > 0 {
			err = fmt.Errorf("-merge cannot be combined with %s", strings.Join(conflicting, ", "))
		} else {
			err = runMerge(flag.Args(), *format)
		}
	case *sweepName != "":
		if conflicting := configOnlyFlagsSet(); len(conflicting) > 0 {
			err = fmt.Errorf("-sweep cannot be combined with %s (config-mode flags)",
				strings.Join(conflicting, ", "))
		} else if *shard != "" && flagSet("format") {
			// A shard run always emits the shard-file form; merge
			// applies -format.
			err = fmt.Errorf("-shard emits a shard file, not -format output (render it via -merge)")
		} else {
			err = runSweep(*sweepName, *parallel, *reps, *seed, *format, *shard)
		}
	default:
		err = run(*path, *nodes, *slots, *seed, *deadline, *width)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hadoopsim:", err)
		os.Exit(1)
	}
}

// configOnlyFlagsSet lists explicitly set flags that only apply to
// -config mode, so sweep mode rejects them instead of silently ignoring
// what the user asked for.
func configOnlyFlagsSet() []string {
	var out []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "config", "nodes", "slots", "deadline", "width":
			out = append(out, "-"+f.Name)
		}
	})
	return out
}

// flagSet reports whether the named flag was explicitly set.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// sweepOnlyFlagsSet lists explicitly set flags that only apply to
// -sweep mode, so -merge rejects them.
func sweepOnlyFlagsSet() []string {
	var out []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sweep", "parallel", "reps", "seed", "shard":
			out = append(out, "-"+f.Name)
		}
	})
	return out
}

func runSweep(name string, parallel, reps int, seed uint64, format, shardSpec string) error {
	var grid hp.SweepGrid
	var runCell hp.SweepCellFunc
	switch name {
	case "twojob":
		grid, runCell = hp.TwoJobSweep(reps)
	case "pressure":
		grid, runCell = hp.PressureSweep(reps)
	case "cluster":
		grid, runCell = hp.ClusterSweep(12, reps)
	default:
		return fmt.Errorf("unknown sweep %q (want twojob, pressure or cluster)", name)
	}
	opts := hp.SweepOptions{Parallel: parallel, Seed: seed}
	if shardSpec != "" {
		var err error
		if opts.Shard, err = hp.ParseSweepShard(shardSpec); err != nil {
			return err
		}
	}
	col, err := hp.RunSweepCollapsed(grid, runCell, opts, "rep")
	if err != nil {
		return err
	}
	if shardSpec != "" {
		return col.WriteShard(os.Stdout)
	}
	return col.Write(os.Stdout, format)
}

// runMerge combines the shard files of one sweep into the full result
// and renders it; any shard order yields byte-identical output.
func runMerge(files []string, format string) error {
	if len(files) == 0 {
		return fmt.Errorf("-merge needs shard files as arguments")
	}
	shards := make([]*hp.SweepCollapsed, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		shards[i], err = hp.ReadSweepShard(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	col, err := hp.MergeSweepShards(shards...)
	if err != nil {
		return err
	}
	return col.Write(os.Stdout, format)
}

func run(path string, nodes, slots int, seed uint64, deadline time.Duration, width int) error {
	if path == "" {
		return fmt.Errorf("missing -config or -sweep (see -h)")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	exp, err := config.Parse(f)
	if err != nil {
		return err
	}
	ccfg := mapreduce.DefaultClusterConfig()
	ccfg.Nodes = nodes
	ccfg.Node.MapSlots = slots
	ccfg.Seed = seed
	cluster, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return err
	}
	runner, err := config.NewRunner(exp, cluster)
	if err != nil {
		return err
	}
	if err := runner.Run(deadline); err != nil {
		return err
	}

	fmt.Printf("primitive: %v\n\n", exp.Primitive)
	fmt.Println("schedule ('#' running, '=' suspended, 'c' cleanup, '.' waiting):")
	fmt.Print(runner.Trace().Gantt(width))
	fmt.Println()

	names := make([]string, 0, len(runner.Jobs()))
	for name := range runner.Jobs() {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-12s %-10s %10s %12s %8s %10s %12s\n",
		"job", "state", "sojourn", "wasted-cpu", "susp", "attempts", "swap-out")
	for _, name := range names {
		job := runner.Jobs()[name]
		var susp, attempts int
		var wasted time.Duration
		var swapOut int64
		for _, t := range job.Tasks() {
			susp += t.Suspensions()
			attempts += t.Attempts()
			wasted += t.WastedWork()
			swapOut += t.SwapOutBytes()
		}
		fmt.Printf("%-12s %-10s %9.1fs %11.1fs %8d %10d %11dM\n",
			name, job.State(),
			(job.CompletedAt() - job.SubmittedAt()).Seconds(),
			wasted.Seconds(), susp, attempts, swapOut>>20)
	}
	return nil
}

package hadooppreempt_test

import (
	"testing"
	"time"

	hp "hadooppreempt"
)

func TestFacadeKillJob(t *testing.T) {
	cluster, err := hp.New(hp.Options{MapSlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	cluster.CreateInput("/in", 512<<20)
	if _, err := cluster.Submit(hp.JobConfig{
		Name: "doomed", InputPath: "/in", MapParseRate: 8e6,
	}); err != nil {
		t.Fatal(err)
	}
	cluster.RunFor(10 * time.Second)
	if err := cluster.KillJob("doomed"); err != nil {
		t.Fatal(err)
	}
	st, err := cluster.Stats("doomed")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "FAILED" {
		t.Fatalf("state = %s, want FAILED", st.State)
	}
	if err := cluster.KillJob("ghost"); err == nil {
		t.Fatal("unknown job should fail")
	}
}

func TestFacadeNodeStats(t *testing.T) {
	cluster, err := hp.New(hp.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	nodes := cluster.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(nodes))
	}
	for _, n := range nodes {
		if n.FreeBytes <= 0 {
			t.Fatalf("node %s reports no free memory", n.Name)
		}
		if n.Thrashing {
			t.Fatalf("idle node %s reports thrashing", n.Name)
		}
	}
}

func TestFacadeNodeStatsUnderPressure(t *testing.T) {
	// The worst-case two-job scenario must be visible in node stats:
	// swap in use while tl is parked under pressure.
	cluster, err := hp.New(hp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.CreateInput("/lo", 512<<20)
	cluster.CreateInput("/hi", 512<<20)
	cluster.Submit(hp.JobConfig{
		Name: "lo", InputPath: "/lo", MapParseRate: 6.5e6, ExtraMemoryBytes: 2 << 30,
	})
	cluster.OnJobProgress("lo", 0.5, func() {
		cluster.Submit(hp.JobConfig{
			Name: "hi", InputPath: "/hi", Priority: 10, MapParseRate: 6.5e6,
			ExtraMemoryBytes: 2 << 30,
		})
		cluster.PreemptJob("lo")
	})
	cluster.OnJobComplete("hi", func() { cluster.RestoreJob("lo") })
	// Run until hi is mid-flight; swap should be occupied.
	cluster.RunFor(2 * time.Minute)
	sawSwap := false
	for _, n := range cluster.Nodes() {
		if n.SwapUsedBytes > 0 {
			sawSwap = true
		}
	}
	if !sawSwap {
		t.Fatal("worst-case preemption should occupy swap")
	}
	if !cluster.RunUntilJobsDone(2 * time.Hour) {
		t.Fatal("jobs did not finish")
	}
}

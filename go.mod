module hadooppreempt

go 1.24

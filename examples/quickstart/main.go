// Quickstart: build a single-node simulated Hadoop cluster, run one
// map-only job, and print its outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	hp "hadooppreempt"
)

func main() {
	// The zero Options value is the paper's evaluation node: 4 GB RAM,
	// one map slot, 3 s heartbeats, suspend primitive.
	cluster, err := hp.New(hp.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A 512 MB single-block input, like the paper's synthetic jobs.
	if err := cluster.CreateInput("/data/logs", 512<<20); err != nil {
		log.Fatal(err)
	}

	// Synthetic mapper parsing at ~6.5 MB/s (≈80 s of CPU for the block).
	job, err := cluster.Submit(hp.JobConfig{
		Name:         "wordcount",
		InputPath:    "/data/logs",
		MapParseRate: 6.5e6,
	})
	if err != nil {
		log.Fatal(err)
	}

	if !cluster.RunUntilJobsDone(time.Hour) {
		log.Fatalf("job did not finish: %v", job.State())
	}

	stats, err := cluster.Stats("wordcount")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s: %s\n", stats.Name, stats.State)
	fmt.Printf("  sojourn time: %v\n", stats.Sojourn.Round(100*time.Millisecond))
	fmt.Printf("  attempts:     %d\n", stats.Attempts)
	fmt.Println()
	fmt.Println("schedule:")
	fmt.Print(cluster.Gantt(64))
}

// Sizebased: the §VI outlook — the suspend/resume primitive inside a
// size-based (HFSP-style) scheduler, on a SWIM-like synthetic workload.
// Small interactive jobs preempt large batch jobs instead of queueing
// behind them; because the primitive is suspension, the batch work is not
// lost. The example compares mean sojourn times per job class under FIFO
// and under HFSP+suspend.
//
//	go run ./examples/sizebased
package main

import (
	"fmt"
	"log"
	"time"

	hp "hadooppreempt"
)

func main() {
	cfg := hp.WorkloadConfig{
		Count:            16,
		MeanInterarrival: 20 * time.Second,
		Classes: []hp.WorkloadClass{
			{
				Name: "interactive", Weight: 0.7,
				InputBytesMu: 17.8, InputBytesSigma: 0.5, // ~54 MB median
				MinInputBytes: 16 << 20,
				MapParseRate:  8e6, // ~7 s of map work
			},
			{
				Name: "batch", Weight: 0.3,
				InputBytesMu: 20.2, InputBytesSigma: 0.3, // ~600 MB median
				MinInputBytes: 384 << 20,
				MapParseRate:  8e6, // ~75 s of map work
			},
		},
	}
	specs, err := hp.GenerateWorkload(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs (SWIM-style interactive/batch mix)\n\n", len(specs))

	fifoInteractive, fifoBatch := run(hp.SchedulerFIFO, specs)
	hfspInteractive, hfspBatch := run(hp.SchedulerHFSP, specs)

	fmt.Printf("%-18s %18s %18s\n", "scheduler", "interactive mean", "batch mean")
	fmt.Printf("%-18s %17.1fs %17.1fs\n", "fifo", fifoInteractive.Seconds(), fifoBatch.Seconds())
	fmt.Printf("%-18s %17.1fs %17.1fs\n", "hfsp + suspend", hfspInteractive.Seconds(), hfspBatch.Seconds())
	fmt.Println()
	if hfspInteractive < fifoInteractive {
		fmt.Printf("interactive sojourns improve %.1fx; batch pays only its preempted gaps\n",
			fifoInteractive.Seconds()/hfspInteractive.Seconds())
	}
}

// run executes the workload under the given scheduler and returns mean
// sojourns for interactive and batch jobs.
func run(kind hp.SchedulerKind, specs []hp.WorkloadJob) (interactive, batch time.Duration) {
	cluster, err := hp.New(hp.Options{
		Scheduler:       kind,
		Nodes:           1,
		MapSlotsPerNode: 1,
		Primitive:       hp.Suspend,
		EvictionPolicy:  "smallest-memory",
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.InstallWorkload(specs); err != nil {
		log.Fatal(err)
	}
	if !cluster.RunUntilJobsDone(12 * time.Hour) {
		log.Fatal("workload did not finish")
	}
	var nInt, nBatch int
	classOf := make(map[string]string, len(specs))
	for _, s := range specs {
		classOf[s.Conf.Name] = s.Class
	}
	for _, job := range cluster.Jobs() {
		sojourn := job.CompletedAt() - job.SubmittedAt()
		switch classOf[job.Conf().Name] {
		case "interactive":
			interactive += sojourn
			nInt++
		case "batch":
			batch += sojourn
			nBatch++
		}
	}
	if nInt > 0 {
		interactive /= time.Duration(nInt)
	}
	if nBatch > 0 {
		batch /= time.Duration(nBatch)
	}
	return interactive, batch
}

//go:build unix

// Realexec: the paper's primitive on REAL processes. The example spawns a
// CPU-bound worker, stops it with an actual SIGTSTP at ~50% progress,
// runs a high-priority worker, then resumes the first with SIGCONT —
// demonstrating that the suspended process keeps its state and loses no
// work, exactly what the modified TaskTracker does in §III-B.
//
//	go run ./examples/realexec
package main

import (
	"fmt"
	"log"
	"time"

	"hadooppreempt/internal/realexec"
)

func main() {
	// Child invocations of this same binary run the synthetic worker.
	if realexec.IsWorkerInvocation() {
		realexec.WorkerMain()
	}
	start := time.Now()
	at := func() string { return time.Since(start).Round(10 * time.Millisecond).String() }

	tl, err := realexec.SpawnSelf(realexec.Spec{
		Name: "tl", Steps: 40, UnitsPerStep: 10_000_000, MemBytes: 64 << 20,
	})
	if err != nil {
		log.Fatalf("spawn tl: %v", err)
	}
	defer tl.Kill()
	fmt.Printf("[%s] low-priority worker tl started (pid %d), 64 MB of dirty state\n", at(), tl.PID())

	for tl.Progress() < 0.5 && tl.State() == realexec.StateRunning {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("[%s] tl reached %.0f%% — high-priority work arrives\n", at(), tl.Progress()*100)

	if err := tl.Suspend(); err != nil {
		log.Fatalf("suspend: %v", err)
	}
	fmt.Printf("[%s] SIGTSTP sent: tl is %v; its memory stays managed by the OS\n", at(), tl.State())

	th, err := realexec.SpawnSelf(realexec.Spec{
		Name: "th", Steps: 20, UnitsPerStep: 10_000_000,
	})
	if err != nil {
		log.Fatalf("spawn th: %v", err)
	}
	defer th.Kill()
	fmt.Printf("[%s] high-priority worker th started (pid %d)\n", at(), th.PID())
	if !th.Wait(10 * time.Minute) {
		log.Fatal("th did not finish")
	}
	fmt.Printf("[%s] th done; tl still at %.0f%% — nothing was lost\n", at(), tl.Progress()*100)

	if err := tl.Resume(); err != nil {
		log.Fatalf("resume: %v", err)
	}
	fmt.Printf("[%s] SIGCONT sent: tl resumes where it stopped\n", at())
	if !tl.Wait(10 * time.Minute) {
		log.Fatal("tl did not finish")
	}
	fmt.Printf("[%s] tl done (%v)\n", at(), tl.State())
}

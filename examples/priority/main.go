// Priority: the paper's motivating scenario on the public API — a
// best-effort job holds the cluster's only slot when a production job
// arrives. The example runs the scenario once per preemption primitive
// (wait, kill, suspend) and prints the trade-off the paper's Figure 2
// quantifies: suspend gives the production job kill-like latency at
// wait-like total cost.
//
//	go run ./examples/priority
package main

import (
	"fmt"
	"log"
	"time"

	hp "hadooppreempt"
)

func main() {
	fmt.Println("best-effort job tl (512 MB) is at 50% when production job th (512 MB) arrives")
	fmt.Println()
	fmt.Printf("%-8s %16s %14s %12s %10s\n", "primitive", "th sojourn", "makespan", "tl wasted", "tl susp")
	for _, prim := range []hp.Primitive{hp.Wait, hp.Kill, hp.Suspend} {
		sojourn, makespan, stats := runScenario(prim)
		fmt.Printf("%-8v %15.1fs %13.1fs %11.1fs %10d\n",
			prim, sojourn.Seconds(), makespan.Seconds(),
			stats.WastedWork.Seconds(), stats.Suspensions)
	}
	fmt.Println()
	fmt.Println("wait   = low makespan, terrible production latency")
	fmt.Println("kill   = low latency, but all of tl's work is redone")
	fmt.Println("susp   = both: the OS keeps tl's state in memory for free")
}

func runScenario(prim hp.Primitive) (sojourn, makespan time.Duration, tlStats hp.JobStats) {
	cluster, err := hp.New(hp.Options{Primitive: prim})
	if err != nil {
		log.Fatal(err)
	}
	must(cluster.CreateInput("/data/besteffort", 512<<20))
	must(cluster.CreateInput("/data/production", 512<<20))

	_, err = cluster.Submit(hp.JobConfig{
		Name: "tl", InputPath: "/data/besteffort", Priority: 0, MapParseRate: 6.5e6,
	})
	if err != nil {
		log.Fatal(err)
	}
	// When tl reaches 50%, the production job arrives and tl is evicted
	// with the chosen primitive (a no-op for wait).
	must(cluster.OnJobProgress("tl", 0.5, func() {
		if _, err := cluster.Submit(hp.JobConfig{
			Name: "th", InputPath: "/data/production", Priority: 10, MapParseRate: 6.5e6,
		}); err != nil {
			log.Fatal(err)
		}
		must(cluster.PreemptJob("tl"))
	}))
	must(cluster.OnJobComplete("th", func() {
		must(cluster.RestoreJob("tl"))
	}))

	if !cluster.RunUntilJobsDone(2 * time.Hour) {
		log.Fatal("scenario did not finish")
	}
	thStats, err := cluster.Stats("th")
	must(err)
	tlStats, err = cluster.Stats("tl")
	must(err)
	tlJob, _ := cluster.Job("tl")
	thJob, _ := cluster.Job("th")
	end := tlJob.CompletedAt()
	if thJob.CompletedAt() > end {
		end = thJob.CompletedAt()
	}
	return thStats.Sojourn, end - tlJob.SubmittedAt(), tlStats
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

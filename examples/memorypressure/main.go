// Memorypressure: the paper's worst case (§IV-C) — stateful tasks that
// allocate 2 GB each on a 4 GB node, so suspending one and running the
// other forces the OS to page the suspended task out. The example prints
// the paging traffic and where the suspend primitive's overhead lands
// relative to kill and wait (the Figure 3 / Figure 4 story).
//
//	go run ./examples/memorypressure
package main

import (
	"fmt"
	"log"
	"time"

	hp "hadooppreempt"
)

func main() {
	fmt.Println("worst case: tl and th each write 2 GB of state on a 4 GB node")
	fmt.Println()
	fmt.Printf("%-8s %14s %12s %14s %14s\n", "primitive", "th sojourn", "makespan", "tl paged out", "tl paged in")

	type row struct {
		prim     hp.Primitive
		sojourn  time.Duration
		makespan time.Duration
		out, in  int64
	}
	var rows []row
	for _, prim := range []hp.Primitive{hp.Wait, hp.Kill, hp.Suspend} {
		p := hp.DefaultTwoJobParams()
		p.Primitive = prim
		p.PreemptAt = 0.5
		p.TLExtraMemory = 2 << 30
		p.THExtraMemory = 2 << 30
		out, err := hp.RunTwoJob(p)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{prim, out.SojournTH, out.Makespan, out.SwapOutTL, out.SwapInTL})
		fmt.Printf("%-8v %13.1fs %11.1fs %13dM %13dM\n",
			prim, out.SojournTH.Seconds(), out.Makespan.Seconds(),
			out.SwapOutTL>>20, out.SwapInTL>>20)
	}
	fmt.Println()
	susp, kill, wait := rows[2], rows[1], rows[0]
	fmt.Printf("suspension paged %d MB of tl's state through swap, costing\n",
		(susp.out+susp.in)>>20)
	fmt.Printf("  +%.1fs sojourn vs kill and +%.1fs makespan vs wait —\n",
		(susp.sojourn - kill.sojourn).Seconds(), (susp.makespan - wait.makespan).Seconds())
	fmt.Println("  still the only primitive close to best on BOTH metrics.")
	fmt.Println()
	fmt.Println("sweep th's allocation (Figure 4): overhead is linear in swapped bytes")
	res, err := hp.Figure4(hp.ExperimentConfig{Reps: 1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%12s %12s %14s %14s\n", "th memory", "paged (MB)", "sojourn ovh", "makespan ovh")
	for _, pt := range res.Points {
		fmt.Printf("%11dM %12.0f %13.1fs %13.1fs\n",
			pt.THMemoryBytes>>20, pt.PagedMB, pt.SojournOverheadSec, pt.MakespanOverheadSec)
	}
}

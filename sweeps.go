package hadooppreempt

import (
	"fmt"
	"io"
	"time"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/experiments"
	"hadooppreempt/internal/metrics"
	"hadooppreempt/internal/sweep"
)

// The sweep harness fans a declarative grid of scenarios out across a
// bounded worker pool; every cell gets its own deterministically derived
// seed, so results are identical at any parallelism level. These aliases
// re-export it on the facade.

// SweepGrid declares a scenario grid (the cross product of its axes).
type SweepGrid = sweep.Grid

// SweepAxis is one grid dimension.
type SweepAxis = sweep.Axis

// SweepPoint is one grid cell handed to a run function.
type SweepPoint = sweep.Point

// SweepOutcome is what one run reports back.
type SweepOutcome = sweep.Outcome

// SweepOptions tunes execution (worker pool size, base seed).
type SweepOptions = sweep.Options

// SweepResult is a completed sweep in grid order.
type SweepResult = sweep.Result

// SweepRunFunc executes one cell.
type SweepRunFunc = sweep.RunFunc

// RunSweep executes every cell of the grid through the parallel harness.
func RunSweep(g SweepGrid, run SweepRunFunc, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(g, run, opts)
}

// WriteSweepCSV renders a sweep collapsed over its repetition axis as
// long-form CSV (one row per cell and metric).
func WriteSweepCSV(w io.Writer, r *SweepResult) error {
	return sweep.WriteCSV(w, r, sweep.RepAxis)
}

// WriteSweepJSON renders a sweep collapsed over its repetition axis as
// an indented JSON document.
func WriteSweepJSON(w io.Writer, r *SweepResult) error {
	return sweep.WriteJSON(w, r, sweep.RepAxis)
}

// WriteSweepTable renders a sweep collapsed over its repetition axis as
// an aligned text table of per-cell means.
func WriteSweepTable(w io.Writer, r *SweepResult) error {
	return sweep.WriteTable(w, r, sweep.RepAxis)
}

// TwoJobSweep returns the canned grid and runner for the paper's
// two-job scenario: primitive x preemption point x repetition, 27 cells
// per repetition. The grid and cell wiring are the same ones behind
// Figures 2 and 3, so the CLI sweep and the figure generators cannot
// drift. The primitive axis is seed-paired, so primitives are compared
// under identical randomness.
func TwoJobSweep(reps int) (SweepGrid, SweepRunFunc) {
	run := func(pt SweepPoint) (SweepOutcome, error) {
		return experiments.TwoJobCell(pt, 0, 0)
	}
	return experiments.TwoJobGrid(reps), run
}

// PressureSweep returns the canned grid and runner for the memory
// pressure scenario: primitive x th allocation x preemption point x
// repetition (27 cells per repetition), the grid behind Figures 3 and 4.
func PressureSweep(reps int) (SweepGrid, SweepRunFunc) {
	g := sweep.NewGrid(
		sweep.Stringers("prim", core.Primitives()...),
		sweep.Ints("th_mem_mb", 0, 1024, 2048),
		sweep.Floats("r", 25, 50, 75),
		sweep.Reps(reps),
	).Pair("prim")
	run := func(pt SweepPoint) (SweepOutcome, error) {
		return experiments.TwoJobCell(pt,
			experiments.WorstCaseMemory, int64(pt.Int("th_mem_mb"))<<20)
	}
	return g, run
}

// ClusterSweep returns the canned grid and runner for the cluster-scale
// scenario: scheduler x node count x workload mix x repetition (27 cells
// per repetition). Every cell boots an isolated cluster, installs a
// deterministic SWIM-style workload of jobs jobs, runs it to completion
// and reports sojourn statistics, preemption counts and swap traffic.
func ClusterSweep(jobs, reps int) (SweepGrid, SweepRunFunc) {
	if jobs <= 0 {
		jobs = 12
	}
	g := sweep.NewGrid(
		sweep.Strings("sched", "fifo", "fair", "hfsp"),
		sweep.Ints("nodes", 1, 2, 4),
		sweep.Strings("mix", "interactive", "mixed", "batch"),
		sweep.Reps(reps),
	).Pair("sched")
	run := func(pt SweepPoint) (SweepOutcome, error) {
		kinds := map[string]SchedulerKind{
			"fifo": SchedulerFIFO, "fair": SchedulerFair, "hfsp": SchedulerHFSP,
		}
		c, err := New(Options{
			Nodes:           pt.Int("nodes"),
			MapSlotsPerNode: 2,
			Scheduler:       kinds[pt.Label("sched")],
			Seed:            pt.Seed,
		})
		if err != nil {
			return SweepOutcome{}, err
		}
		cfg := workloadMix(pt.Label("mix"), jobs)
		specs, err := GenerateWorkload(cfg, pt.Seed)
		if err != nil {
			return SweepOutcome{}, err
		}
		if err := c.InstallWorkload(specs); err != nil {
			return SweepOutcome{}, err
		}
		if !c.RunUntilJobsDone(24 * time.Hour) {
			return SweepOutcome{}, fmt.Errorf("workload did not converge")
		}
		var sojourns []float64
		var suspensions, attempts int
		var swapOut, swapIn int64
		for _, spec := range specs {
			st, err := c.Stats(spec.Conf.Name)
			if err != nil {
				return SweepOutcome{}, err
			}
			sojourns = append(sojourns, st.Sojourn.Seconds())
			suspensions += st.Suspensions
			attempts += st.Attempts
			swapOut += st.SwapOut
			swapIn += st.SwapIn
		}
		s := metrics.Summarize(sojourns)
		return SweepOutcome{Values: map[string]float64{
			"sojourn_mean_s": s.Mean,
			"sojourn_p95_s":  s.P95,
			"makespan_s":     c.Now().Seconds(),
			"suspensions":    float64(suspensions),
			"attempts":       float64(attempts),
			"swap_out_mb":    float64(swapOut) / float64(1<<20),
			"swap_in_mb":     float64(swapIn) / float64(1<<20),
		}}, nil
	}
	return g, run
}

// workloadMix builds the named workload configuration: "mixed" is the
// default interactive/batch blend, "interactive" and "batch" isolate one
// class each.
func workloadMix(mix string, jobs int) WorkloadConfig {
	cfg := DefaultWorkloadConfig()
	cfg.Count = jobs
	switch mix {
	case "interactive":
		cfg.Classes = cfg.Classes[:1]
	case "batch":
		cfg.Classes = cfg.Classes[1:]
	}
	return cfg
}

package hadooppreempt

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"hadooppreempt/internal/chaos"
	"hadooppreempt/internal/coord"
	"hadooppreempt/internal/experiments"
	"hadooppreempt/internal/genload"
	"hadooppreempt/internal/metrics"
	"hadooppreempt/internal/realexec"
	"hadooppreempt/internal/sweep"
	"hadooppreempt/internal/workload"
)

// The sweep harness fans a declarative grid of scenarios out across a
// bounded worker pool; every cell gets its own deterministically derived
// seed, so results are identical at any parallelism level. These aliases
// re-export it on the facade.

// SweepGrid declares a scenario grid (the cross product of its axes).
type SweepGrid = sweep.Grid

// SweepAxis is one grid dimension.
type SweepAxis = sweep.Axis

// SweepPoint is one grid cell handed to a run function.
type SweepPoint = sweep.Point

// SweepOutcome is what one run reports back.
type SweepOutcome = sweep.Outcome

// SweepOptions tunes execution (worker pool size, base seed).
type SweepOptions = sweep.Options

// SweepResult is a completed sweep in grid order.
type SweepResult = sweep.Result

// SweepRunFunc executes one cell, materializing its outcome.
type SweepRunFunc = sweep.RunFunc

// SweepCellFunc executes one cell on the streaming-collapse path,
// reporting measurements through a reusable recorder.
type SweepCellFunc = sweep.CellFunc

// SweepRecorder receives one cell's measurements.
type SweepRecorder = sweep.Recorder

// SweepCollapsed is a sweep aggregated as cells complete; shard results
// of the same sweep merge into the single-process result exactly.
type SweepCollapsed = sweep.Collapsed

// SweepShard selects one of n seed-stable grid slices (see RunSweepCollapsed).
type SweepShard = sweep.Shard

// CellCache is a persistent content-addressed store of sweep cell
// results rooted at one directory. Cells whose verified entry exists
// replay it instead of executing; keys cover the grid fingerprint, the
// backend identity, the base seed and the cell index, so warm reruns
// are byte-identical to cold ones at any parallelism, shard split or
// worker count. Corrupt, truncated or mismatched entries are silent
// misses, never errors. A nil *CellCache caches nothing.
type CellCache = sweep.Cache

// CellCacheCounters snapshots a cache's hit/miss/bypass/write counters.
type CellCacheCounters = sweep.CacheCounters

// NewCellCache opens (creating if needed) the cell-result cache rooted
// at dir. One cache may serve many sweeps and many processes at once.
func NewCellCache(dir string) (*CellCache, error) {
	return sweep.NewCache(dir)
}

// SweepBackend binds a scenario grid to an execution engine: the
// simulator, the SWIM trace replayer, or real OS processes. All three
// run through the same harness, so parallelism, sharding and merge
// guarantees carry over (the real backend's wall-clock measurements are
// the one documented exception to determinism).
type SweepBackend = sweep.Backend

// RunSweep executes every cell of the grid through the parallel harness.
func RunSweep(g SweepGrid, run SweepRunFunc, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(g, run, opts)
}

// RunSweepCollapsed executes the grid — or the shard of it selected by
// opts.Shard — on the streaming path, folding outcomes into aggregates
// collapsed over the named axes as cells complete.
func RunSweepCollapsed(g SweepGrid, run SweepCellFunc, opts SweepOptions, collapse ...string) (*SweepCollapsed, error) {
	return sweep.RunCollapsed(g, run, opts, collapse...)
}

// SweepDispatcher abstracts execution placement for a sweep: the
// in-process worker pool, the static -shard slicer, and the
// distributed coordinator are three implementations behind one
// dispatch entry point (see DispatchSweepBackend), so local, sharded
// and multi-machine runs share every determinism guarantee.
type SweepDispatcher = sweep.Dispatcher

// RunSweepBackend executes the backend's grid — or the shard of it
// selected by opts.Shard — on the streaming path, collapsing the named
// axes as cells complete.
func RunSweepBackend(b SweepBackend, opts SweepOptions, collapse ...string) (*SweepCollapsed, error) {
	return sweep.RunBackend(b, opts, collapse...)
}

// DispatchSweepBackend executes the backend's grid through an
// arbitrary dispatcher, collapsing the named axes.
func DispatchSweepBackend(b SweepBackend, d SweepDispatcher, seed uint64, collapse ...string) (*SweepCollapsed, error) {
	return sweep.DispatchBackend(b, d, seed, collapse...)
}

// ParseSweepShard parses an "i/n" shard specification.
func ParseSweepShard(spec string) (SweepShard, error) {
	return sweep.ParseShard(spec)
}

// ReadSweepShard deserializes a shard file written by
// SweepCollapsed.WriteShard.
func ReadSweepShard(r io.Reader) (*SweepCollapsed, error) {
	return sweep.ReadShard(r)
}

// MergeSweepShards combines the shards of one sweep — in any order —
// into the full result, byte-identical to a single-process run.
func MergeSweepShards(shards ...*SweepCollapsed) (*SweepCollapsed, error) {
	return sweep.Merge(shards...)
}

// WriteSweepCSV renders a sweep collapsed over its repetition axis as
// long-form CSV (one row per cell and metric).
func WriteSweepCSV(w io.Writer, r *SweepResult) error {
	return sweep.WriteCSV(w, r, sweep.RepAxis)
}

// WriteSweepJSON renders a sweep collapsed over its repetition axis as
// an indented JSON document.
func WriteSweepJSON(w io.Writer, r *SweepResult) error {
	return sweep.WriteJSON(w, r, sweep.RepAxis)
}

// WriteSweepTable renders a sweep collapsed over its repetition axis as
// an aligned text table of per-cell means.
func WriteSweepTable(w io.Writer, r *SweepResult) error {
	return sweep.WriteTable(w, r, sweep.RepAxis)
}

// WriteSweepSeries renders a sweep collapsed over its repetition axis
// as plot-ready per-series CSV blocks (one block per metric, one column
// per series).
func WriteSweepSeries(w io.Writer, r *SweepResult) error {
	return sweep.WriteSeries(w, r, sweep.RepAxis)
}

// TwoJobSweep returns the canned grid and runner for the paper's
// two-job scenario: primitive x preemption point x repetition, 27 cells
// per repetition. The grid and cell wiring are the same ones behind
// Figures 2 and 3, so the CLI sweep and the figure generators cannot
// drift. The primitive axis is seed-paired, so primitives are compared
// under identical randomness.
func TwoJobSweep(reps int) (SweepGrid, SweepCellFunc) {
	run := func(pt SweepPoint, rec *SweepRecorder) error {
		return experiments.TwoJobCellInto(pt, 0, 0, rec)
	}
	return experiments.TwoJobGrid(reps), run
}

// PressureSweep returns the canned grid and runner for the memory
// pressure scenario: primitive x th allocation x preemption point x
// repetition (27 cells per repetition), the grid behind Figures 3 and 4.
func PressureSweep(reps int) (SweepGrid, SweepCellFunc) {
	return experiments.PressureGrid(reps), experiments.PressureCellInto
}

// ClusterSweep returns the canned grid and runner for the cluster-scale
// scenario: scheduler x node count x workload mix x repetition (27 cells
// per repetition). Every cell boots an isolated cluster, installs a
// deterministic SWIM-style workload of jobs jobs, runs it to completion
// and reports sojourn statistics, preemption counts and swap traffic.
//
// Passing eviction policies adds an "evict" axis and restricts the
// scheduler axis to the preempting schedulers (fair, hfsp), so
// victim-selection policies get the same grid coverage as the two-job
// scenario; FIFO never preempts, which would make the axis inert.
func ClusterSweep(jobs, reps int, evictionPolicies ...string) (SweepGrid, SweepCellFunc) {
	if jobs <= 0 {
		jobs = 12
	}
	axes := []SweepAxis{sweep.Strings("sched", "fifo", "fair", "hfsp")}
	paired := []string{"sched"}
	if len(evictionPolicies) > 0 {
		axes = []SweepAxis{
			sweep.Strings("sched", "fair", "hfsp"),
			sweep.Strings("evict", evictionPolicies...),
		}
		// Pairing the policy axis gives every policy the identical
		// workload draw, so outcome differences are pure policy effect —
		// the paper's paired-comparison methodology.
		paired = append(paired, "evict")
	}
	axes = append(axes,
		sweep.Ints("nodes", 1, 2, 4),
		sweep.Strings("mix", "interactive", "mixed", "batch"),
		sweep.Reps(reps),
	)
	g := sweep.NewGrid(axes...).Pair(paired...)
	run := clusterCell(jobs, func(pt SweepPoint, o *Options) {
		if len(evictionPolicies) > 0 {
			o.EvictionPolicy = pt.Label("evict")
		}
	})
	return g, run
}

// ClusterPrimitiveSweep returns the cluster-scale grid with a
// seed-paired preemption-primitive axis: scheduler (fair, hfsp) x
// primitive (susp, kill) x node count x workload mix x repetition. Like
// the eviction-policy axis, the primitive axis is restricted to the
// preempting schedulers (FIFO never preempts, which would make the axis
// inert) and seed-paired, so susp and kill face identical workload
// draws and outcome differences are pure primitive effect — the
// paper's paired comparison, scaled from the two-job scenario to
// scheduler-driven preemption on a full cluster.
func ClusterPrimitiveSweep(jobs, reps int) (SweepGrid, SweepCellFunc) {
	if jobs <= 0 {
		jobs = 12
	}
	g := sweep.NewGrid(
		sweep.Strings("sched", "fair", "hfsp"),
		sweep.Stringers("prim", Suspend, Kill),
		sweep.Ints("nodes", 1, 2, 4),
		sweep.Strings("mix", "interactive", "mixed", "batch"),
		sweep.Reps(reps),
	).Pair("sched", "prim")
	run := clusterCell(jobs, func(pt SweepPoint, o *Options) {
		o.Primitive = pt.Value("prim").(Primitive)
	})
	return g, run
}

// clusterCell returns the shared cluster-scale cell runner: boot an
// isolated cluster from the cell's coordinates, install a deterministic
// SWIM-style workload, run it to completion and record sojourn
// statistics, preemption counts and swap traffic. configure applies
// the grid-specific axes (eviction policy, preemption primitive) to
// the cluster options.
func clusterCell(jobs int, configure func(SweepPoint, *Options)) SweepCellFunc {
	return func(pt SweepPoint, rec *SweepRecorder) error {
		kinds := map[string]SchedulerKind{
			"fifo": SchedulerFIFO, "fair": SchedulerFair, "hfsp": SchedulerHFSP,
		}
		opts := Options{
			Nodes:           pt.Int("nodes"),
			MapSlotsPerNode: 2,
			Scheduler:       kinds[pt.Label("sched")],
			Seed:            pt.Seed,
		}
		if configure != nil {
			configure(pt, &opts)
		}
		c, err := New(opts)
		if err != nil {
			return err
		}
		cfg := workloadMix(pt.Label("mix"), jobs)
		specs, err := GenerateWorkload(cfg, pt.Seed)
		if err != nil {
			return err
		}
		if err := c.InstallWorkload(specs); err != nil {
			return err
		}
		if !c.RunUntilJobsDone(24 * time.Hour) {
			return fmt.Errorf("workload did not converge")
		}
		var sojourns []float64
		var suspensions, attempts int
		var swapOut, swapIn int64
		for _, spec := range specs {
			st, err := c.Stats(spec.Conf.Name)
			if err != nil {
				return err
			}
			sojourns = append(sojourns, st.Sojourn.Seconds())
			suspensions += st.Suspensions
			attempts += st.Attempts
			swapOut += st.SwapOut
			swapIn += st.SwapIn
		}
		s := metrics.Summarize(sojourns)
		rec.Observe("sojourn_mean_s", s.Mean)
		rec.Observe("sojourn_p95_s", s.P95)
		rec.Observe("makespan_s", c.Now().Seconds())
		rec.Observe("suspensions", float64(suspensions))
		rec.Observe("attempts", float64(attempts))
		rec.Observe("swap_out_mb", float64(swapOut)/float64(1<<20))
		rec.Observe("swap_in_mb", float64(swapIn)/float64(1<<20))
		return nil
	}
}

// GenScenario re-exports the seeded scenario generator's configuration
// (see internal/genload): burst arrivals, pool spread, size and
// memory-skew distributions, and the starvation timeout the scenario is
// tuned for.
type GenScenario = genload.Scenario

// DefaultGenScenario returns the tuned default scenario: pool-
// alternating bursts sized so the fair scheduler demonstrably preempts
// on the scenario sweep's 2x2-slot cluster.
func DefaultGenScenario() GenScenario { return genload.Default() }

// ScenarioSweep returns the generated-scenario grid and runner:
// scheduler (fair, hfsp) x arrival shape (burst, steady) x memory skew
// (uniform, skewed) x repetition, every cell a 2-node x 2-slot cluster
// running a genload trace with the scenario's starvation timeout wired
// into the scheduler. All three scenario axes are seed-paired, so every
// cell of a repetition faces the same base seed — and because the
// generator draws each randomness axis from its own substream, the
// skewed cell sees the identical arrival times and input sizes as its
// uniform twin, making outcome differences pure axis effect. The burst
// cells are the preemption showcase: the fair scheduler's preemption
// counter, inert in the SWIM-style cluster sweeps (single pool), is
// nonzero here by construction (a regression test pins this).
func ScenarioSweep(reps int) (SweepGrid, SweepCellFunc) {
	g := sweep.NewGrid(
		sweep.Strings("sched", "fair", "hfsp"),
		sweep.Strings("arrival", "burst", "steady"),
		sweep.Strings("mem", "uniform", "skewed"),
		sweep.Reps(reps),
	).Pair("sched", "arrival", "mem")
	run := func(pt SweepPoint, rec *SweepRecorder) error {
		sc := DefaultGenScenario()
		if pt.Label("arrival") == "steady" {
			// One job per "burst": a steady trickle at the jitter cadence,
			// pools still alternating job to job.
			sc.BurstSize = 1
			sc.BurstGap = 15 * time.Second
		}
		if pt.Label("mem") == "skewed" {
			sc.HeavyFrac = 0.5
		}
		kinds := map[string]SchedulerKind{"fair": SchedulerFair, "hfsp": SchedulerHFSP}
		c, err := New(Options{
			Nodes:             2,
			MapSlotsPerNode:   2,
			Scheduler:         kinds[pt.Label("sched")],
			Seed:              pt.Seed,
			PreemptionTimeout: sc.StarvationTimeout,
		})
		if err != nil {
			return err
		}
		specs, err := sc.Generate(pt.Seed)
		if err != nil {
			return err
		}
		if err := c.InstallWorkload(specs); err != nil {
			return err
		}
		if !c.RunUntilJobsDone(24 * time.Hour) {
			return fmt.Errorf("generated scenario did not converge")
		}
		var sojourns []float64
		var suspensions, attempts int
		var swapOut, swapIn int64
		for _, spec := range specs {
			st, err := c.Stats(spec.Conf.Name)
			if err != nil {
				return err
			}
			sojourns = append(sojourns, st.Sojourn.Seconds())
			suspensions += st.Suspensions
			attempts += st.Attempts
			swapOut += st.SwapOut
			swapIn += st.SwapIn
		}
		s := metrics.Summarize(sojourns)
		rec.Observe("sojourn_mean_s", s.Mean)
		rec.Observe("sojourn_p95_s", s.P95)
		rec.Observe("makespan_s", c.Now().Seconds())
		rec.Observe("preemptions", float64(c.Preemptions()))
		rec.Observe("resumes", float64(c.Resumes()))
		rec.Observe("suspensions", float64(suspensions))
		rec.Observe("attempts", float64(attempts))
		rec.Observe("swap_out_mb", float64(swapOut)/float64(1<<20))
		rec.Observe("swap_in_mb", float64(swapIn)/float64(1<<20))
		return nil
	}
	return g, run
}

// EvictionPolicyNames lists the victim-selection policies the evict
// sweep covers by default.
func EvictionPolicyNames() []string {
	return []string{"most-progress", "least-progress", "smallest-memory", "largest-memory"}
}

// --- Execution backends -----------------------------------------------

// SimSweep resolves a named simulator scenario to an execution backend:
// "twojob", "pressure", "cluster", "evict" (the cluster grid with the
// eviction-policy axis), "primitive" (the cluster grid with the
// seed-paired susp-vs-kill axis) or "scenarios" (the generated
// preemption-scenario grid; see ScenarioSweep). The sim backend is the
// pre-existing sweep path behind the committed goldens; its output is
// byte-identical to the direct grid runners at any parallelism level.
func SimSweep(scenario string, jobs, reps int) (SweepBackend, error) {
	switch scenario {
	case "twojob", "pressure":
		return experiments.SimBackend(scenario, reps)
	case "cluster":
		g, run := ClusterSweep(jobs, reps)
		return sweep.FuncBackend{Engine: experiments.SimBackendName, G: g, Run: run}, nil
	case "evict":
		g, run := ClusterSweep(jobs, reps, EvictionPolicyNames()...)
		return sweep.FuncBackend{Engine: experiments.SimBackendName, G: g, Run: run}, nil
	case "primitive":
		g, run := ClusterPrimitiveSweep(jobs, reps)
		return sweep.FuncBackend{Engine: experiments.SimBackendName, G: g, Run: run}, nil
	case "scenarios":
		g, run := ScenarioSweep(reps)
		return sweep.FuncBackend{Engine: experiments.SimBackendName, G: g, Run: run}, nil
	default:
		return nil, fmt.Errorf("hadooppreempt: unknown sim scenario %q (want twojob, pressure, cluster, evict, primitive or scenarios)", scenario)
	}
}

// SWIMTraceJob is one job of a parsed SWIM trace file.
type SWIMTraceJob = workload.TraceJob

// ParseSWIMTrace reads a SWIM-format workload trace (one job per line:
// id, submit time, inter-arrival, input/shuffle/output bytes).
func ParseSWIMTrace(r io.Reader) ([]SWIMTraceJob, error) {
	return workload.ParseTrace(r)
}

// ReadSWIMTraceFile parses the SWIM trace at the given path.
func ReadSWIMTraceFile(path string) ([]SWIMTraceJob, error) {
	return workload.ReadTraceFile(path)
}

// SynthesizeSWIMTrace generates an n-job Facebook-like SWIM trace,
// deterministic in n alone (fixed generator seed), so independent
// processes — benchmark harnesses, CI smoke jobs, distributed workers —
// regenerate byte-identical traces without shipping a trace file.
func SynthesizeSWIMTrace(n int) ([]SWIMTraceJob, error) {
	return workload.SynthesizeTrace(n, 1)
}

// ReplayConfig configures the trace-replay backend.
type ReplayConfig = workload.ReplayConfig

// ReplaySweep builds the backend that replays a SWIM trace through
// simulated clusters, one trace shard per grid cell. Replay cells
// derive their seeds from grid coordinates like every other backend, so
// replay output is deterministic across -parallel and process shards.
func ReplaySweep(cfg ReplayConfig) (SweepBackend, error) {
	return workload.NewReplayBackend(cfg)
}

// RealExecConfig configures the real-process backend.
type RealExecConfig = realexec.SweepConfig

// RealExecSweep builds the backend that runs the two-job preemption
// scenario on real OS processes (SIGTSTP/SIGCONT/SIGKILL), recording
// the same metric names as the simulator's two-job cells so sim and
// real aggregates compare in one table. The embedding binary must route
// worker self-invocations: call realexec-style worker dispatch (see
// IsRealExecWorker / RealExecWorkerMain) before flag parsing.
func RealExecSweep(cfg RealExecConfig) (SweepBackend, error) {
	return realexec.NewBackend(cfg)
}

// slowBackend decorates a backend with artificial per-cell wall-clock
// cost; see SlowSweep.
type slowBackend struct {
	SweepBackend
	unit time.Duration
}

func (b slowBackend) Cell(pt SweepPoint, rec *SweepRecorder) error {
	time.Sleep(time.Duration(1+pt.Index%3) * b.unit)
	return b.SweepBackend.Cell(pt, rec)
}

// Fingerprint forwards the wrapped backend's content fingerprint (see
// coord.Fingerprinter). The sleep itself is not part of it: it changes
// wall-clock behavior only, never results, so coordinator and workers
// may use different -cell-sleep values.
func (b slowBackend) Fingerprint() string {
	return coord.BackendFingerprint(b.SweepBackend)
}

// CacheVolatile forwards the wrapped backend's volatility (see
// sweep.Volatile): the sleep changes wall-clock behavior only, never
// results, so it must not change whether results are cacheable either.
func (b slowBackend) CacheVolatile() bool { return sweep.IsVolatile(b.SweepBackend) }

// SlowSweep wraps a backend with artificial, deterministically uneven
// per-cell cost: cell i sleeps (1 + i mod 3) x unit before running.
// Measurements are untouched, so output stays byte-identical to the
// unwrapped backend; only wall-clock behavior changes. It exists to
// exercise the distributed scheduler — steals, lease expiry,
// kill/reissue races — against grids whose cells are slow and uneven
// no matter how fast the simulator is (the CI distributed-parity gate
// uses it). A non-positive unit returns the backend unchanged.
func SlowSweep(b SweepBackend, unit time.Duration) SweepBackend {
	if unit <= 0 {
		return b
	}
	return slowBackend{SweepBackend: b, unit: unit}
}

// --- Distributed execution --------------------------------------------

// DistributedOptions configures the coordinator side of a distributed
// sweep.
type DistributedOptions struct {
	// Addr is the TCP listen address, e.g. ":9090".
	Addr string
	// Seed is the sweep-level base seed; the coordinator hands it to
	// every worker at join time.
	Seed uint64
	// LeaseCells is the number of grid cells per lease (default 8).
	// Smaller leases balance uneven cell costs better.
	LeaseCells int
	// LeaseTTL bounds how long a lease may stay outstanding before a
	// silent worker's cells are re-issued (default 30s).
	LeaseTTL time.Duration
	// Checkpoint, when set, is the file the coordinator persists its
	// state to — identity fingerprints, the lease ledger and the
	// running aggregate — after every accepted upload, making the sweep
	// durable against coordinator loss.
	Checkpoint string
	// Resume restarts a killed coordinator from Checkpoint: leases that
	// were durable stay done, only the rest are re-issued, and the
	// final output is byte-identical to an uninterrupted run.
	Resume bool
	// OnListen, when set, receives the bound listen address once the
	// coordinator is serving — the way to learn the port of an ":0"
	// Addr.
	OnListen func(addr string)
	// Logf, when set, receives coordinator progress lines (joins,
	// leases, steals, re-issues).
	Logf func(format string, args ...any)
	// MaxLeaseFailures is the per-lease failure budget before the sweep
	// aborts as poisoned (default 3); see coord.Config.
	MaxLeaseFailures int
	// Cache, when set, is the persistent cell-result cache the
	// coordinator consults before issuing leases: leases whose every
	// cell has a verified entry are absorbed directly and never reach a
	// worker. Volatile backends (the real-process backend) skip it.
	Cache *CellCache
	// Chaos, when set, injects the plan's faults on the coordinator
	// side: its transport faults at the server boundary and its
	// checkpoint faults into the checkpoint writer.
	Chaos *ChaosPlan
}

// --- Chaos (deterministic fault injection) ----------------------------

// ChaosConfig declares a seeded fault schedule for the distributed
// path; see the internal/chaos package documentation for the fault
// matrix and determinism contract.
type ChaosConfig = chaos.Config

// ChaosPlan is an active fault schedule (per-site RNG streams derived
// from one seed). One plan serves one process.
type ChaosPlan = chaos.Plan

// NewChaosPlan builds a fault plan from the schedule.
func NewChaosPlan(cfg ChaosConfig) *ChaosPlan { return chaos.New(cfg) }

// ParseChaosSpec parses a -chaos flag value (comma-separated key=value
// pairs: seed, drop, drop-resp, dup, trunc, delay, delay-max, ckpt,
// cell-err, cell-panic, cell-fails) into a ChaosConfig.
func ParseChaosSpec(spec string) (ChaosConfig, error) { return chaos.ParseSpec(spec) }

// chaosCoordConfig wires a plan's coordinator-side hooks into a coord
// config: HTTP middleware at the "coord" site and the checkpoint-writer
// wrapper.
func chaosCoordConfig(cfg *coord.Config, p *ChaosPlan) {
	if p == nil {
		return
	}
	cfg.Middleware = func(next http.Handler) http.Handler { return p.Middleware("coord", next) }
	cfg.WriteCheckpoint = p.CheckpointWriter(coord.WriteFileDurable)
}

// DistributedSweep serves the backend's grid as lease-based work units
// to DistributedSweepWorker processes and blocks until every cell has
// a result, returning the merged sweep. Leases lost to dead workers
// are re-issued after LeaseTTL, and outstanding leases are stolen
// (speculatively duplicated) by workers that drain the queue early, so
// uneven cell costs never leave capacity idle. Because cell seeds
// derive from grid coordinates and merging combines raw sample
// multisets, the result is byte-identical to RunSweepBackend at any
// worker count, join order, steal or re-issue history — for every
// output format. (The real-process backend's wall-clock measurements
// remain the documented exception to determinism.)
func DistributedSweep(ctx context.Context, b SweepBackend, opts DistributedOptions, collapse ...string) (*SweepCollapsed, error) {
	cfg := coord.Config{
		Addr:             opts.Addr,
		LeaseCells:       opts.LeaseCells,
		LeaseTTL:         opts.LeaseTTL,
		MaxLeaseFailures: opts.MaxLeaseFailures,
		BackendName:      b.Name(),
		BackendFP:        coord.BackendFingerprint(b),
		Checkpoint:       opts.Checkpoint,
		Resume:           opts.Resume,
		Context:          ctx,
		OnListen:         opts.OnListen,
		Logf:             opts.Logf,
	}
	if !sweep.IsVolatile(b) {
		cfg.Cache = opts.Cache
	}
	chaosCoordConfig(&cfg, opts.Chaos)
	return sweep.DispatchBackend(b, coord.New(cfg), opts.Seed, collapse...)
}

// SweepStatus queries a running coordinator's GET /v1/status endpoint:
// per-sweep cell and lease progress, per-worker throughput, ETA.
func SweepStatus(addr string) (*coord.Status, error) {
	return coord.FetchStatus(addr)
}

// DistributedSweepQueue serves several sweeps from one coordinator —
// a long-lived grid service. Sweeps activate in enqueue order; workers
// join the sweep whose grid and backend fingerprints they prove, and
// workers for a not-yet-active sweep poll until it starts. OnResult,
// when set, receives each sweep's merged output as it completes (the
// returned slice holds the same values, nil for failed sweeps). The
// returned error is the first sweep failure, if any; later sweeps
// still run.
func DistributedSweepQueue(ctx context.Context, backends []SweepBackend, opts DistributedOptions,
	onResult func(i int, col *SweepCollapsed), collapse ...string) ([]*SweepCollapsed, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("sweep queue needs at least one backend")
	}
	cfg := coord.Config{
		Addr:             opts.Addr,
		LeaseCells:       opts.LeaseCells,
		LeaseTTL:         opts.LeaseTTL,
		MaxLeaseFailures: opts.MaxLeaseFailures,
		Checkpoint:       opts.Checkpoint,
		// Volatile backends are safe under a shared cache: their workers
		// bypass it, so no entry ever exists for the coordinator to
		// replay — every consult is a miss that falls through to leasing.
		Cache:    opts.Cache,
		Context:  ctx,
		OnListen: opts.OnListen,
		Logf:     opts.Logf,
	}
	chaosCoordConfig(&cfg, opts.Chaos)
	c := coord.New(cfg)
	for _, b := range backends {
		g, err := b.Grid()
		if err != nil {
			return nil, err
		}
		if _, err := c.Enqueue(coord.Sweep{
			Grid: g, Seed: opts.Seed, Collapse: collapse,
			BackendName: b.Name(), BackendFP: coord.BackendFingerprint(b),
		}); err != nil {
			return nil, err
		}
	}
	if opts.Resume {
		if err := c.Restore(opts.Checkpoint); err != nil {
			return nil, err
		}
	}
	if err := c.Serve(); err != nil {
		return nil, err
	}
	defer c.Drain()
	results := make([]*SweepCollapsed, len(backends))
	var firstErr error
	for i := range backends {
		col, err := c.WaitSweep(ctx, i)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("sweep %d: %w", i, err)
			}
			if ctx.Err() != nil {
				break
			}
			continue
		}
		results[i] = col
		if onResult != nil {
			onResult(i, col)
		}
	}
	return results, firstErr
}

// DistributedSweepWorker joins the coordinator at addr and executes
// leased cell batches through a locally constructed backend until the
// sweep completes. The backend must describe the same grid as the
// coordinator's (verified via structure and content fingerprints at
// join time); the coordinator's seed and collapse axes govern.
func DistributedSweepWorker(ctx context.Context, addr string, b SweepBackend, parallel int, logf func(string, ...any)) error {
	return RunDistributedWorker(ctx, addr, b, DistributedWorkerOptions{Parallel: parallel, Logf: logf})
}

// DistributedWorkerOptions configures one worker process beyond the
// basics DistributedSweepWorker covers.
type DistributedWorkerOptions struct {
	// Parallel bounds the worker's in-process pool per lease.
	Parallel int
	// Cache, when set, memoizes this worker's leased cell results
	// persistently (see CellCache). Volatile backends bypass it.
	Cache *CellCache
	// Chaos, when set, injects the plan's faults on this worker's side:
	// transport faults on its HTTP client and cell faults around its
	// backend. Give each worker its own plan (distinct seeds) so their
	// transport schedules are independent.
	Chaos *ChaosPlan
	// Logf, when set, receives worker progress lines.
	Logf func(format string, args ...any)
}

// RunDistributedWorker is DistributedSweepWorker with options — in
// particular a worker-side chaos plan for deterministic fault drills.
func RunDistributedWorker(ctx context.Context, addr string, b SweepBackend, opts DistributedWorkerOptions) error {
	cfg := coord.WorkerConfig{
		Addr:     addr,
		Backend:  b,
		Parallel: opts.Parallel,
		Cache:    opts.Cache,
		Logf:     opts.Logf,
	}
	if opts.Chaos != nil {
		cfg.Backend = opts.Chaos.WrapBackend(b)
		cfg.Client = &http.Client{
			Timeout:   30 * time.Second,
			Transport: opts.Chaos.Transport("worker", nil),
		}
	}
	return coord.RunWorker(ctx, cfg)
}

// IsRealExecWorker reports whether this process was re-executed as a
// real-backend worker and must call RealExecWorkerMain.
func IsRealExecWorker() bool { return realexec.IsWorkerInvocation() }

// RealExecWorkerMain runs the worker side of the real-process backend;
// it does not return.
func RealExecWorkerMain() { realexec.WorkerMain() }

// workloadMix builds the named workload configuration: "mixed" is the
// default interactive/batch blend, "interactive" and "batch" isolate one
// class each.
func workloadMix(mix string, jobs int) WorkloadConfig {
	cfg := DefaultWorkloadConfig()
	cfg.Count = jobs
	switch mix {
	case "interactive":
		cfg.Classes = cfg.Classes[:1]
	case "batch":
		cfg.Classes = cfg.Classes[1:]
	}
	return cfg
}

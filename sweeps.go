package hadooppreempt

import (
	"fmt"
	"io"
	"time"

	"hadooppreempt/internal/experiments"
	"hadooppreempt/internal/metrics"
	"hadooppreempt/internal/realexec"
	"hadooppreempt/internal/sweep"
	"hadooppreempt/internal/workload"
)

// The sweep harness fans a declarative grid of scenarios out across a
// bounded worker pool; every cell gets its own deterministically derived
// seed, so results are identical at any parallelism level. These aliases
// re-export it on the facade.

// SweepGrid declares a scenario grid (the cross product of its axes).
type SweepGrid = sweep.Grid

// SweepAxis is one grid dimension.
type SweepAxis = sweep.Axis

// SweepPoint is one grid cell handed to a run function.
type SweepPoint = sweep.Point

// SweepOutcome is what one run reports back.
type SweepOutcome = sweep.Outcome

// SweepOptions tunes execution (worker pool size, base seed).
type SweepOptions = sweep.Options

// SweepResult is a completed sweep in grid order.
type SweepResult = sweep.Result

// SweepRunFunc executes one cell, materializing its outcome.
type SweepRunFunc = sweep.RunFunc

// SweepCellFunc executes one cell on the streaming-collapse path,
// reporting measurements through a reusable recorder.
type SweepCellFunc = sweep.CellFunc

// SweepRecorder receives one cell's measurements.
type SweepRecorder = sweep.Recorder

// SweepCollapsed is a sweep aggregated as cells complete; shard results
// of the same sweep merge into the single-process result exactly.
type SweepCollapsed = sweep.Collapsed

// SweepShard selects one of n seed-stable grid slices (see RunSweepCollapsed).
type SweepShard = sweep.Shard

// SweepBackend binds a scenario grid to an execution engine: the
// simulator, the SWIM trace replayer, or real OS processes. All three
// run through the same harness, so parallelism, sharding and merge
// guarantees carry over (the real backend's wall-clock measurements are
// the one documented exception to determinism).
type SweepBackend = sweep.Backend

// RunSweep executes every cell of the grid through the parallel harness.
func RunSweep(g SweepGrid, run SweepRunFunc, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(g, run, opts)
}

// RunSweepCollapsed executes the grid — or the shard of it selected by
// opts.Shard — on the streaming path, folding outcomes into aggregates
// collapsed over the named axes as cells complete.
func RunSweepCollapsed(g SweepGrid, run SweepCellFunc, opts SweepOptions, collapse ...string) (*SweepCollapsed, error) {
	return sweep.RunCollapsed(g, run, opts, collapse...)
}

// RunSweepBackend executes the backend's grid — or the shard of it
// selected by opts.Shard — on the streaming path, collapsing the named
// axes as cells complete.
func RunSweepBackend(b SweepBackend, opts SweepOptions, collapse ...string) (*SweepCollapsed, error) {
	return sweep.RunBackend(b, opts, collapse...)
}

// ParseSweepShard parses an "i/n" shard specification.
func ParseSweepShard(spec string) (SweepShard, error) {
	return sweep.ParseShard(spec)
}

// ReadSweepShard deserializes a shard file written by
// SweepCollapsed.WriteShard.
func ReadSweepShard(r io.Reader) (*SweepCollapsed, error) {
	return sweep.ReadShard(r)
}

// MergeSweepShards combines the shards of one sweep — in any order —
// into the full result, byte-identical to a single-process run.
func MergeSweepShards(shards ...*SweepCollapsed) (*SweepCollapsed, error) {
	return sweep.Merge(shards...)
}

// WriteSweepCSV renders a sweep collapsed over its repetition axis as
// long-form CSV (one row per cell and metric).
func WriteSweepCSV(w io.Writer, r *SweepResult) error {
	return sweep.WriteCSV(w, r, sweep.RepAxis)
}

// WriteSweepJSON renders a sweep collapsed over its repetition axis as
// an indented JSON document.
func WriteSweepJSON(w io.Writer, r *SweepResult) error {
	return sweep.WriteJSON(w, r, sweep.RepAxis)
}

// WriteSweepTable renders a sweep collapsed over its repetition axis as
// an aligned text table of per-cell means.
func WriteSweepTable(w io.Writer, r *SweepResult) error {
	return sweep.WriteTable(w, r, sweep.RepAxis)
}

// WriteSweepSeries renders a sweep collapsed over its repetition axis
// as plot-ready per-series CSV blocks (one block per metric, one column
// per series).
func WriteSweepSeries(w io.Writer, r *SweepResult) error {
	return sweep.WriteSeries(w, r, sweep.RepAxis)
}

// TwoJobSweep returns the canned grid and runner for the paper's
// two-job scenario: primitive x preemption point x repetition, 27 cells
// per repetition. The grid and cell wiring are the same ones behind
// Figures 2 and 3, so the CLI sweep and the figure generators cannot
// drift. The primitive axis is seed-paired, so primitives are compared
// under identical randomness.
func TwoJobSweep(reps int) (SweepGrid, SweepCellFunc) {
	run := func(pt SweepPoint, rec *SweepRecorder) error {
		return experiments.TwoJobCellInto(pt, 0, 0, rec)
	}
	return experiments.TwoJobGrid(reps), run
}

// PressureSweep returns the canned grid and runner for the memory
// pressure scenario: primitive x th allocation x preemption point x
// repetition (27 cells per repetition), the grid behind Figures 3 and 4.
func PressureSweep(reps int) (SweepGrid, SweepCellFunc) {
	return experiments.PressureGrid(reps), experiments.PressureCellInto
}

// ClusterSweep returns the canned grid and runner for the cluster-scale
// scenario: scheduler x node count x workload mix x repetition (27 cells
// per repetition). Every cell boots an isolated cluster, installs a
// deterministic SWIM-style workload of jobs jobs, runs it to completion
// and reports sojourn statistics, preemption counts and swap traffic.
//
// Passing eviction policies adds an "evict" axis and restricts the
// scheduler axis to the preempting schedulers (fair, hfsp), so
// victim-selection policies get the same grid coverage as the two-job
// scenario; FIFO never preempts, which would make the axis inert.
func ClusterSweep(jobs, reps int, evictionPolicies ...string) (SweepGrid, SweepCellFunc) {
	if jobs <= 0 {
		jobs = 12
	}
	axes := []SweepAxis{sweep.Strings("sched", "fifo", "fair", "hfsp")}
	paired := []string{"sched"}
	if len(evictionPolicies) > 0 {
		axes = []SweepAxis{
			sweep.Strings("sched", "fair", "hfsp"),
			sweep.Strings("evict", evictionPolicies...),
		}
		// Pairing the policy axis gives every policy the identical
		// workload draw, so outcome differences are pure policy effect —
		// the paper's paired-comparison methodology.
		paired = append(paired, "evict")
	}
	axes = append(axes,
		sweep.Ints("nodes", 1, 2, 4),
		sweep.Strings("mix", "interactive", "mixed", "batch"),
		sweep.Reps(reps),
	)
	g := sweep.NewGrid(axes...).Pair(paired...)
	run := func(pt SweepPoint, rec *SweepRecorder) error {
		kinds := map[string]SchedulerKind{
			"fifo": SchedulerFIFO, "fair": SchedulerFair, "hfsp": SchedulerHFSP,
		}
		opts := Options{
			Nodes:           pt.Int("nodes"),
			MapSlotsPerNode: 2,
			Scheduler:       kinds[pt.Label("sched")],
			Seed:            pt.Seed,
		}
		if len(evictionPolicies) > 0 {
			opts.EvictionPolicy = pt.Label("evict")
		}
		c, err := New(opts)
		if err != nil {
			return err
		}
		cfg := workloadMix(pt.Label("mix"), jobs)
		specs, err := GenerateWorkload(cfg, pt.Seed)
		if err != nil {
			return err
		}
		if err := c.InstallWorkload(specs); err != nil {
			return err
		}
		if !c.RunUntilJobsDone(24 * time.Hour) {
			return fmt.Errorf("workload did not converge")
		}
		var sojourns []float64
		var suspensions, attempts int
		var swapOut, swapIn int64
		for _, spec := range specs {
			st, err := c.Stats(spec.Conf.Name)
			if err != nil {
				return err
			}
			sojourns = append(sojourns, st.Sojourn.Seconds())
			suspensions += st.Suspensions
			attempts += st.Attempts
			swapOut += st.SwapOut
			swapIn += st.SwapIn
		}
		s := metrics.Summarize(sojourns)
		rec.Observe("sojourn_mean_s", s.Mean)
		rec.Observe("sojourn_p95_s", s.P95)
		rec.Observe("makespan_s", c.Now().Seconds())
		rec.Observe("suspensions", float64(suspensions))
		rec.Observe("attempts", float64(attempts))
		rec.Observe("swap_out_mb", float64(swapOut)/float64(1<<20))
		rec.Observe("swap_in_mb", float64(swapIn)/float64(1<<20))
		return nil
	}
	return g, run
}

// EvictionPolicyNames lists the victim-selection policies the evict
// sweep covers by default.
func EvictionPolicyNames() []string {
	return []string{"most-progress", "least-progress", "smallest-memory", "largest-memory"}
}

// --- Execution backends -----------------------------------------------

// SimSweep resolves a named simulator scenario to an execution backend:
// "twojob", "pressure", "cluster", or "evict" (the cluster grid with
// the eviction-policy axis). The sim backend is the pre-existing sweep
// path behind the committed goldens; its output is byte-identical to
// the direct grid runners at any parallelism level.
func SimSweep(scenario string, jobs, reps int) (SweepBackend, error) {
	switch scenario {
	case "twojob", "pressure":
		return experiments.SimBackend(scenario, reps)
	case "cluster":
		g, run := ClusterSweep(jobs, reps)
		return sweep.FuncBackend{Engine: experiments.SimBackendName, G: g, Run: run}, nil
	case "evict":
		g, run := ClusterSweep(jobs, reps, EvictionPolicyNames()...)
		return sweep.FuncBackend{Engine: experiments.SimBackendName, G: g, Run: run}, nil
	default:
		return nil, fmt.Errorf("hadooppreempt: unknown sim scenario %q (want twojob, pressure, cluster or evict)", scenario)
	}
}

// SWIMTraceJob is one job of a parsed SWIM trace file.
type SWIMTraceJob = workload.TraceJob

// ParseSWIMTrace reads a SWIM-format workload trace (one job per line:
// id, submit time, inter-arrival, input/shuffle/output bytes).
func ParseSWIMTrace(r io.Reader) ([]SWIMTraceJob, error) {
	return workload.ParseTrace(r)
}

// ReadSWIMTraceFile parses the SWIM trace at the given path.
func ReadSWIMTraceFile(path string) ([]SWIMTraceJob, error) {
	return workload.ReadTraceFile(path)
}

// ReplayConfig configures the trace-replay backend.
type ReplayConfig = workload.ReplayConfig

// ReplaySweep builds the backend that replays a SWIM trace through
// simulated clusters, one trace shard per grid cell. Replay cells
// derive their seeds from grid coordinates like every other backend, so
// replay output is deterministic across -parallel and process shards.
func ReplaySweep(cfg ReplayConfig) (SweepBackend, error) {
	return workload.NewReplayBackend(cfg)
}

// RealExecConfig configures the real-process backend.
type RealExecConfig = realexec.SweepConfig

// RealExecSweep builds the backend that runs the two-job preemption
// scenario on real OS processes (SIGTSTP/SIGCONT/SIGKILL), recording
// the same metric names as the simulator's two-job cells so sim and
// real aggregates compare in one table. The embedding binary must route
// worker self-invocations: call realexec-style worker dispatch (see
// IsRealExecWorker / RealExecWorkerMain) before flag parsing.
func RealExecSweep(cfg RealExecConfig) (SweepBackend, error) {
	return realexec.NewBackend(cfg)
}

// IsRealExecWorker reports whether this process was re-executed as a
// real-backend worker and must call RealExecWorkerMain.
func IsRealExecWorker() bool { return realexec.IsWorkerInvocation() }

// RealExecWorkerMain runs the worker side of the real-process backend;
// it does not return.
func RealExecWorkerMain() { realexec.WorkerMain() }

// workloadMix builds the named workload configuration: "mixed" is the
// default interactive/batch blend, "interactive" and "batch" isolate one
// class each.
func workloadMix(mix string, jobs int) WorkloadConfig {
	cfg := DefaultWorkloadConfig()
	cfg.Count = jobs
	switch mix {
	case "interactive":
		cfg.Classes = cfg.Classes[:1]
	case "batch":
		cfg.Classes = cfg.Classes[1:]
	}
	return cfg
}

package hadooppreempt_test

import (
	"bytes"
	"testing"

	hp "hadooppreempt"
	"hadooppreempt/internal/mapreduce"
)

// TestTwoJobSweepEndToEnd drives the paper's two-job scenario grid
// through the streaming-collapse harness and checks the headline
// qualitative claim: the smaller (high-priority) job's sojourn improves
// under suspend compared to kill at every preemption point.
func TestTwoJobSweepEndToEnd(t *testing.T) {
	grid, run := hp.TwoJobSweep(1)
	col, err := hp.RunSweepCollapsed(grid, run, hp.SweepOptions{Parallel: 4, Seed: 1}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	sojourn := make(map[string]map[string]float64) // prim -> r -> mean
	for _, g := range col.Groups {
		prim := g.Labels["prim"]
		if sojourn[prim] == nil {
			sojourn[prim] = make(map[string]float64)
		}
		sojourn[prim][g.Labels["r"]] = g.Metrics["sojourn_th_s"].Mean
	}
	if len(sojourn["susp"]) != 9 || len(sojourn["kill"]) != 9 {
		t.Fatalf("expected 9 preemption points per primitive, got susp=%d kill=%d",
			len(sojourn["susp"]), len(sojourn["kill"]))
	}
	for r, susp := range sojourn["susp"] {
		kill := sojourn["kill"][r]
		if susp >= kill {
			t.Errorf("at r=%s%%: susp sojourn %.1fs should beat kill %.1fs", r, susp, kill)
		}
	}
}

// TestSweepParallelismByteIdentical is the acceptance criterion: the
// same seed produces byte-identical aggregate output regardless of the
// worker pool size.
func TestSweepParallelismByteIdentical(t *testing.T) {
	render := func(parallel int) (string, string) {
		grid, run := hp.TwoJobSweep(1)
		col, err := hp.RunSweepCollapsed(grid, run, hp.SweepOptions{Parallel: parallel, Seed: 42}, "rep")
		if err != nil {
			t.Fatal(err)
		}
		var csv, js bytes.Buffer
		if err := col.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := col.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return csv.String(), js.String()
	}
	csv1, js1 := render(1)
	csv8, js8 := render(8)
	if csv1 != csv8 {
		t.Fatal("CSV output differs between -parallel 1 and -parallel 8")
	}
	if js1 != js8 {
		t.Fatal("JSON output differs between -parallel 1 and -parallel 8")
	}
}

// TestSweepShardMergeByteIdentical runs the two-job grid as three
// shards — through the serialized shard-file form — and checks the
// merged result renders byte-identically to the unsharded sweep in
// every format.
func TestSweepShardMergeByteIdentical(t *testing.T) {
	const shards = 3
	render := func(col *hp.SweepCollapsed) string {
		var out bytes.Buffer
		for _, format := range []string{"csv", "json", "table"} {
			if err := col.Write(&out, format); err != nil {
				t.Fatal(err)
			}
		}
		return out.String()
	}
	grid, run := hp.TwoJobSweep(2)
	full, err := hp.RunSweepCollapsed(grid, run, hp.SweepOptions{Parallel: 4, Seed: 7}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*hp.SweepCollapsed, shards)
	for i := 0; i < shards; i++ {
		grid, run := hp.TwoJobSweep(2)
		opts := hp.SweepOptions{Parallel: 4, Seed: 7, Shard: hp.SweepShard{Index: i, Count: shards}}
		col, err := hp.RunSweepCollapsed(grid, run, opts, "rep")
		if err != nil {
			t.Fatal(err)
		}
		var file bytes.Buffer
		if err := col.WriteShard(&file); err != nil {
			t.Fatal(err)
		}
		if parts[i], err = hp.ReadSweepShard(&file); err != nil {
			t.Fatal(err)
		}
	}
	// Merge in a non-trivial order to exercise order independence.
	merged, err := hp.MergeSweepShards(parts[2], parts[0], parts[1])
	if err != nil {
		t.Fatal(err)
	}
	if render(merged) != render(full) {
		t.Fatal("merged shard output differs from the single-process sweep")
	}
}

// TestSimSweepBackendMatchesCanned proves the backend repackaging of
// the simulator path changed no bytes: SimSweep("twojob") renders
// identically to the direct canned grid at any parallelism.
func TestSimSweepBackendMatchesCanned(t *testing.T) {
	b, err := hp.SimSweep("twojob", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "sim" {
		t.Errorf("backend name = %q, want sim", b.Name())
	}
	viaBackend, err := hp.RunSweepBackend(b, hp.SweepOptions{Parallel: 8, Seed: 1}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	grid, run := hp.TwoJobSweep(1)
	direct, err := hp.RunSweepCollapsed(grid, run, hp.SweepOptions{Parallel: 2, Seed: 1}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := viaBackend.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if err := direct.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("SimSweep backend output differs from the canned twojob sweep")
	}
	if _, err := hp.SimSweep("nope", 0, 1); err == nil {
		t.Fatal("unknown scenario should fail")
	}
}

// TestEvictSweepCoversPolicies checks the eviction-policy axis: the
// grid restricts to the preempting schedulers, carries one value per
// policy, and a reduced slice runs to completion with the policy label
// reaching the cluster.
func TestEvictSweepCoversPolicies(t *testing.T) {
	grid, run := hp.ClusterSweep(4, 1, "most-progress", "least-progress")
	var sched, evict *hp.SweepAxis
	for i, a := range grid.Axes {
		switch a.Name {
		case "sched":
			sched = &grid.Axes[i]
		case "evict":
			evict = &grid.Axes[i]
		case "nodes":
			grid.Axes[i].Values = a.Values[:1]
		case "mix":
			grid.Axes[i].Values = a.Values[1:2]
		}
	}
	if sched == nil || evict == nil {
		t.Fatal("expected sched and evict axes")
	}
	if len(sched.Values) != 2 {
		t.Fatalf("sched axis has %d values, want fair+hfsp only", len(sched.Values))
	}
	if len(evict.Values) != 2 {
		t.Fatalf("evict axis has %d values, want 2 policies", len(evict.Values))
	}
	col, err := hp.RunSweepCollapsed(grid, run, hp.SweepOptions{Parallel: 4, Seed: 5}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Groups) != 4 {
		t.Fatalf("groups = %d, want sched x evict = 4", len(col.Groups))
	}
	for _, g := range col.Groups {
		if g.Metrics["sojourn_mean_s"].Mean <= 0 {
			t.Errorf("%s: non-positive mean sojourn", g.Key)
		}
	}
	// An unknown policy must surface as a cell error, proving the axis
	// value actually reaches the cluster's eviction wiring.
	badGrid, badRun := hp.ClusterSweep(2, 1, "no-such-policy")
	for i, a := range badGrid.Axes {
		switch a.Name {
		case "sched", "nodes", "mix":
			badGrid.Axes[i].Values = a.Values[:1]
		}
	}
	if _, err := hp.RunSweepCollapsed(badGrid, badRun, hp.SweepOptions{Parallel: 1, Seed: 1}, "rep"); err == nil {
		t.Fatal("unknown eviction policy should fail the cell")
	}
}

// TestClusterSweepRuns smoke-tests the cluster-scale grid on a reduced
// slice: every scheduler completes a small workload and reports sane
// aggregates.
func TestClusterSweepRuns(t *testing.T) {
	grid, run := hp.ClusterSweep(4, 1)
	// Reduce to one node count and one mix to keep the test quick.
	for i, a := range grid.Axes {
		switch a.Name {
		case "nodes":
			grid.Axes[i].Values = a.Values[:1]
		case "mix":
			grid.Axes[i].Values = a.Values[1:2]
		}
	}
	col, err := hp.RunSweepCollapsed(grid, run, hp.SweepOptions{Parallel: 3, Seed: 5}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Groups) != 3 {
		t.Fatalf("groups = %d, want 3 schedulers", len(col.Groups))
	}
	for _, g := range col.Groups {
		if g.Metrics["sojourn_mean_s"].Mean <= 0 {
			t.Errorf("scheduler %s reported non-positive mean sojourn", g.Labels["sched"])
		}
		if g.Metrics["sojourn_p95_s"].Mean < g.Metrics["sojourn_mean_s"].Mean {
			t.Errorf("scheduler %s: p95 below mean", g.Labels["sched"])
		}
	}
}

// TestQuiescentHeartbeatParity is the heartbeat fast path's proof
// obligation in unit-test form: skipping provably no-op scheduler
// consultations must be invisible in every output byte. The two-job
// grid renders CSV+JSON with the fast path enabled and disabled — at
// -parallel 1, -parallel 8, and through a 3-way shard/merge — and each
// pairing must be identical.
func TestQuiescentHeartbeatParity(t *testing.T) {
	defer mapreduce.SetQuiescentHeartbeats(true)
	render := func(col *hp.SweepCollapsed) string {
		var out bytes.Buffer
		if err := col.WriteCSV(&out); err != nil {
			t.Fatal(err)
		}
		if err := col.WriteJSON(&out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	direct := func(parallel int) string {
		grid, run := hp.TwoJobSweep(1)
		col, err := hp.RunSweepCollapsed(grid, run, hp.SweepOptions{Parallel: parallel, Seed: 13}, "rep")
		if err != nil {
			t.Fatal(err)
		}
		return render(col)
	}
	sharded := func() string {
		const shards = 3
		parts := make([]*hp.SweepCollapsed, shards)
		for i := 0; i < shards; i++ {
			grid, run := hp.TwoJobSweep(1)
			opts := hp.SweepOptions{Parallel: 4, Seed: 13, Shard: hp.SweepShard{Index: i, Count: shards}}
			col, err := hp.RunSweepCollapsed(grid, run, opts, "rep")
			if err != nil {
				t.Fatal(err)
			}
			var file bytes.Buffer
			if err := col.WriteShard(&file); err != nil {
				t.Fatal(err)
			}
			if parts[i], err = hp.ReadSweepShard(&file); err != nil {
				t.Fatal(err)
			}
		}
		merged, err := hp.MergeSweepShards(parts[2], parts[0], parts[1])
		if err != nil {
			t.Fatal(err)
		}
		return render(merged)
	}
	type variant struct {
		name string
		run  func() string
	}
	variants := []variant{
		{"parallel=1", func() string { return direct(1) }},
		{"parallel=8", func() string { return direct(8) }},
		{"shard/merge", sharded},
	}
	for _, v := range variants {
		mapreduce.SetQuiescentHeartbeats(true)
		fast := v.run()
		mapreduce.SetQuiescentHeartbeats(false)
		slow := v.run()
		if fast != slow {
			t.Fatalf("%s: output differs with the quiescent fast path on vs off", v.name)
		}
		if len(fast) == 0 {
			t.Fatalf("%s: empty output", v.name)
		}
	}
}

package hadooppreempt_test

import (
	"bytes"
	"testing"

	hp "hadooppreempt"
)

// TestTwoJobSweepEndToEnd drives the paper's two-job scenario grid
// through the parallel harness and checks the headline qualitative
// claim: the smaller (high-priority) job's sojourn improves under
// suspend compared to kill at every preemption point.
func TestTwoJobSweepEndToEnd(t *testing.T) {
	grid, run := hp.TwoJobSweep(1)
	res, err := hp.RunSweep(grid, run, hp.SweepOptions{Parallel: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sojourn := make(map[string]map[string]float64) // prim -> r -> mean
	for _, agg := range res.Collapse("rep") {
		prim := agg.Labels["prim"]
		if sojourn[prim] == nil {
			sojourn[prim] = make(map[string]float64)
		}
		sojourn[prim][agg.Labels["r"]] = agg.Metrics["sojourn_th_s"].Mean
	}
	if len(sojourn["susp"]) != 9 || len(sojourn["kill"]) != 9 {
		t.Fatalf("expected 9 preemption points per primitive, got susp=%d kill=%d",
			len(sojourn["susp"]), len(sojourn["kill"]))
	}
	for r, susp := range sojourn["susp"] {
		kill := sojourn["kill"][r]
		if susp >= kill {
			t.Errorf("at r=%s%%: susp sojourn %.1fs should beat kill %.1fs", r, susp, kill)
		}
	}
}

// TestSweepParallelismByteIdentical is the acceptance criterion: the
// same seed produces byte-identical aggregate output regardless of the
// worker pool size.
func TestSweepParallelismByteIdentical(t *testing.T) {
	render := func(parallel int) (string, string) {
		grid, run := hp.TwoJobSweep(1)
		res, err := hp.RunSweep(grid, run, hp.SweepOptions{Parallel: parallel, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		var csv, js bytes.Buffer
		if err := hp.WriteSweepCSV(&csv, res); err != nil {
			t.Fatal(err)
		}
		if err := hp.WriteSweepJSON(&js, res); err != nil {
			t.Fatal(err)
		}
		return csv.String(), js.String()
	}
	csv1, js1 := render(1)
	csv8, js8 := render(8)
	if csv1 != csv8 {
		t.Fatal("CSV output differs between -parallel 1 and -parallel 8")
	}
	if js1 != js8 {
		t.Fatal("JSON output differs between -parallel 1 and -parallel 8")
	}
}

// TestClusterSweepRuns smoke-tests the cluster-scale grid on a reduced
// slice: every scheduler completes a small workload and reports sane
// aggregates.
func TestClusterSweepRuns(t *testing.T) {
	grid, run := hp.ClusterSweep(4, 1)
	// Reduce to one node count and one mix to keep the test quick.
	for i, a := range grid.Axes {
		switch a.Name {
		case "nodes":
			grid.Axes[i].Values = a.Values[:1]
		case "mix":
			grid.Axes[i].Values = a.Values[1:2]
		}
	}
	res, err := hp.RunSweep(grid, run, hp.SweepOptions{Parallel: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	aggs := res.Collapse("rep")
	if len(aggs) != 3 {
		t.Fatalf("groups = %d, want 3 schedulers", len(aggs))
	}
	for _, agg := range aggs {
		if agg.Metrics["sojourn_mean_s"].Mean <= 0 {
			t.Errorf("scheduler %s reported non-positive mean sojourn", agg.Labels["sched"])
		}
		if agg.Metrics["sojourn_p95_s"].Mean < agg.Metrics["sojourn_mean_s"].Mean {
			t.Errorf("scheduler %s: p95 below mean", agg.Labels["sched"])
		}
	}
}

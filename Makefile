# Local targets mirror the CI steps (.github/workflows/ci.yml) so the
# two never drift.

GO ?= go

.PHONY: all build test vet fmt fmt-check bench bench-golden sweep-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate BENCH_sweep.json and fail if figure metrics drifted from
# goldens/bench_metrics.json (run with UPDATE=1 to rewrite the goldens).
bench-golden:
	$(GO) test -run '^$$' -bench BenchmarkFigure -benchtime 3x -count 3 . \
		| $(GO) run ./internal/tools/benchjson \
			-golden goldens/bench_metrics.json $(if $(UPDATE),-update) \
			> BENCH_sweep.json

sweep-check:
	$(GO) build -o /tmp/hadoopsim-ci ./cmd/hadoopsim
	/tmp/hadoopsim-ci -sweep twojob -parallel 1 -format csv -seed 1 > /tmp/sweep-p1.csv
	/tmp/hadoopsim-ci -sweep twojob -parallel 8 -format csv -seed 1 > /tmp/sweep-p8.csv
	cmp /tmp/sweep-p1.csv /tmp/sweep-p8.csv

ci: build vet fmt-check test bench bench-golden sweep-check

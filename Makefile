# Local targets mirror the CI steps (.github/workflows/ci.yml) so the
# two never drift.

GO ?= go

.PHONY: all build test vet fmt fmt-check bench sweep-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

sweep-check:
	$(GO) build -o /tmp/hadoopsim-ci ./cmd/hadoopsim
	/tmp/hadoopsim-ci -sweep twojob -parallel 1 -format csv -seed 1 > /tmp/sweep-p1.csv
	/tmp/hadoopsim-ci -sweep twojob -parallel 8 -format csv -seed 1 > /tmp/sweep-p8.csv
	cmp /tmp/sweep-p1.csv /tmp/sweep-p8.csv

ci: build vet fmt-check test bench sweep-check

# Local targets mirror the CI steps (.github/workflows/ci.yml) so the
# two never drift.

GO ?= go

.PHONY: all build test vet fmt fmt-check lint bench bench-diff bench-golden sweep-check backend-check replay-check dist-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Mirrors the CI lint job; the version pin here and in ci.yml must move
# together. Fetches the tool on first use (network required).
STATICCHECK_VERSION ?= 2025.1.1
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Interleaved old-vs-new benchmark comparison per the EXPERIMENTS.md
# methodology (min-of-N per binary). BASE picks the git ref to compare
# the working tree against; BENCH narrows the benchmark regex.
BASE ?= HEAD
BENCH ?= ^BenchmarkFullGrid20Reps$$
bench-diff:
	scripts/benchdiff.sh -b '$(BENCH)' $(BASE)

# Regenerate BENCH_sweep.json and fail if figure or grid metrics
# drifted from goldens/bench_metrics.json (run with UPDATE=1 to rewrite
# the goldens). BenchmarkSweepCollapse's allocs/cell and the advisor
# serving-path benchmarks' decisions/s are reported but not gated:
# allocator behavior and wall-clock throughput may move with the
# toolchain and hardware.
bench-golden:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure|BenchmarkFullGrid20Reps|BenchmarkLargeTraceReplay|BenchmarkSweepCollapse|BenchmarkCellCache|BenchmarkAdvisorDecide' \
			-benchtime 3x -count 3 . \
		| $(GO) run ./internal/tools/benchjson \
			-golden goldens/bench_metrics.json -volatile 'BenchmarkSweepCollapse|BenchmarkCellCache|BenchmarkAdvisorDecide' \
			$(if $(UPDATE),-update) \
			> BENCH_sweep.json

sweep-check:
	$(GO) build -o /tmp/hadoopsim-ci ./cmd/hadoopsim
	/tmp/hadoopsim-ci -sweep twojob -parallel 1 -format csv -seed 1 > /tmp/sweep-p1.csv
	/tmp/hadoopsim-ci -sweep twojob -parallel 8 -format csv -seed 1 > /tmp/sweep-p8.csv
	cmp /tmp/sweep-p1.csv /tmp/sweep-p8.csv
	for i in 0 1 2; do \
		/tmp/hadoopsim-ci -sweep twojob -parallel 4 -seed 1 -shard $$i/3 > /tmp/sweep-shard-$$i.json; done
	/tmp/hadoopsim-ci -merge -format csv \
		/tmp/sweep-shard-2.json /tmp/sweep-shard-0.json /tmp/sweep-shard-1.json > /tmp/sweep-merged.csv
	cmp /tmp/sweep-p1.csv /tmp/sweep-merged.csv

# Backend parity (mirrors the CI backend-parity job): sim backend
# byte-identical to the committed golden, replay backend deterministic
# across -parallel and -shard/-merge, real backend smoke run.
backend-check:
	$(GO) build -o /tmp/hadoopsim-ci ./cmd/hadoopsim
	/tmp/hadoopsim-ci -backend sim -sweep twojob -reps 20 -seed 1 -format csv \
		| cmp goldens/grid_twojob_reps20.csv -
	/tmp/hadoopsim-ci -backend replay -trace goldens/swim_sample.tsv \
		-reps 3 -seed 1 -parallel 1 -format csv > /tmp/replay-p1.csv
	/tmp/hadoopsim-ci -backend replay -trace goldens/swim_sample.tsv \
		-reps 3 -seed 1 -parallel 8 -format csv > /tmp/replay-p8.csv
	cmp /tmp/replay-p1.csv /tmp/replay-p8.csv
	for i in 0 1 2; do \
		/tmp/hadoopsim-ci -backend replay -trace goldens/swim_sample.tsv \
			-reps 3 -seed 1 -shard $$i/3 > /tmp/replay-shard-$$i.json || exit 1; done
	/tmp/hadoopsim-ci -merge -format csv \
		/tmp/replay-shard-2.json /tmp/replay-shard-0.json /tmp/replay-shard-1.json > /tmp/replay-merged.csv
	cmp /tmp/replay-p1.csv /tmp/replay-merged.csv
	/tmp/hadoopsim-ci -backend real -reps 1 -real-steps 10 -real-units 5000000 \
		-format table | grep -q susp

# Large-trace streaming-replay smoke (mirrors the CI replay-smoke
# job): a synthesized 1200-job SWIM trace runs through the full cluster
# engine behind a 64-job streaming input window, split over 3 cells,
# and the output must hash to the committed golden — and be
# byte-identical to the same run with the window disabled, so the
# streaming replayer can't silently diverge from the materialize-
# everything path. Run with UPDATE=1 to rewrite the hash golden.
replay-check:
	$(GO) build -o /tmp/hadoopsim-ci ./cmd/hadoopsim
	/tmp/hadoopsim-ci -backend replay -trace-gen 1200 -trace-shards 3 \
		-replay-timescale 10 -replay-window 64 -reps 1 -seed 1 -format csv \
		> /tmp/replay-trace-gen.csv
	/tmp/hadoopsim-ci -backend replay -trace-gen 1200 -trace-shards 3 \
		-replay-timescale 10 -reps 1 -seed 1 -format csv \
		| cmp /tmp/replay-trace-gen.csv -
	$(if $(UPDATE),sha256sum /tmp/replay-trace-gen.csv | cut -d' ' -f1 > goldens/replay_trace1200.sha256,)
	@obs=$$(sha256sum /tmp/replay-trace-gen.csv | cut -d' ' -f1); \
	want=$$(cat goldens/replay_trace1200.sha256); \
	if [ "$$obs" != "$$want" ]; then \
		echo "large-trace replay hash $$obs != golden $$want"; exit 1; fi; \
	echo "large-trace replay output matches golden hash ($$obs)"

# Distributed parity (mirrors the CI distributed-parity job): a
# coordinator plus two localhost workers — with artificially uneven
# cell costs, a worker-kill/lease-reissue case, a coordinator
# SIGKILL + checkpoint-resume case, a seeded -chaos fault-injection
# case, and a -cache cold-fill/warm-replay case — must reproduce the
# single-process sweep byte for byte. `make dist-check CASES=cache`
# (or chaos, coordkill, basic) runs one case.
CASES ?= all
dist-check:
	$(GO) build -o /tmp/hadoopsim-ci ./cmd/hadoopsim
	bash scripts/dist_parity.sh /tmp/hadoopsim-ci $(CASES)

# Nightly full-grid gate: regenerate every sweep at the paper's 20
# repetitions via 3 shards, merge, and diff against the committed
# aggregate goldens; figures likewise at -reps 20. Run with UPDATE=1 to
# rewrite goldens/grid_*_reps20.csv and goldens/figures_reps20.json
# after an intentional physics change.
nightly-grid:
	$(GO) build -o /tmp/hadoopsim-ci ./cmd/hadoopsim
	for s in twojob pressure cluster; do \
		for i in 0 1 2; do \
			/tmp/hadoopsim-ci -sweep $$s -reps 20 -seed 1 -shard $$i/3 > /tmp/grid-$$s-$$i.json || exit 1; done; \
		/tmp/hadoopsim-ci -merge -format csv /tmp/grid-$$s-0.json /tmp/grid-$$s-1.json /tmp/grid-$$s-2.json \
			> /tmp/grid-$$s.csv || exit 1; \
		$(if $(UPDATE),cp /tmp/grid-$$s.csv goldens/grid_$${s}_reps20.csv;,) \
		cmp goldens/grid_$${s}_reps20.csv /tmp/grid-$$s.csv || exit 1; \
	done
	$(GO) run ./cmd/preemptbench -fig all -reps 20 -seed 1 -format json > /tmp/figures-reps20.json
	$(if $(UPDATE),cp /tmp/figures-reps20.json goldens/figures_reps20.json,)
	cmp goldens/figures_reps20.json /tmp/figures-reps20.json

ci: build vet fmt-check test bench bench-golden sweep-check backend-check replay-check dist-check

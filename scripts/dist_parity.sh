#!/usr/bin/env bash
# Distributed-parity gate (mirrored by `make dist-check` and the CI
# distributed-parity job): a coordinator plus localhost workers must
# produce output byte-identical to the single-process sweep — in the
# happy path, through a worker kill + lease reissue, through a
# coordinator SIGKILL + checkpoint resume, and through a seeded chaos
# schedule corrupting every trust boundary at once.
#
# Usage: dist_parity.sh [BIN] [all|basic|coordkill|chaos|cache]
#   basic      cases 1-2 (worker-side scheduling and loss)
#   coordkill  case 3 (coordinator loss + -resume)
#   chaos      case 4 (-chaos fault injection on every process)
#   cache      case 5 (-cache cold fill, warm byte-identical replays)
#
# -cell-sleep makes cells artificially slow and uneven (cell i sleeps
# (1 + i mod 3) x unit; results unchanged), so with single-digit lease
# sizes the fast worker drains the queue and steals from the slow one,
# and a killed worker is reliably mid-lease. The reference runs skip
# the sleep — parity must hold anyway, because the sleep never touches
# measurements.
set -euo pipefail

BIN=${1:-/tmp/hadoopsim-ci}
CASES=${2:-all}
PORT=${DIST_PARITY_PORT:-9471}
tmp=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

want() { [ "$CASES" = all ] || [ "$CASES" = "$1" ]; }
case "$CASES" in
    all|basic|coordkill|chaos|cache) ;;
    *) echo "unknown case selection '$CASES' (want all, basic, coordkill, chaos or cache)" >&2; exit 2 ;;
esac

echo "== single-process reference"
"$BIN" -sweep pressure -reps 2 -seed 1 -parallel 4 -format csv > "$tmp/single.csv"
"$BIN" -sweep pressure -reps 2 -seed 1 -parallel 4 -format json > "$tmp/single.json"

if want basic; then

echo "== case 1: coordinator + 2 workers, small leases over uneven cells"
"$BIN" -sweep pressure -reps 2 -seed 1 -serve 127.0.0.1:$PORT -lease 3 -format csv \
    > "$tmp/dist.csv" 2> "$tmp/coord1.log" &
coord=$!
"$BIN" -sweep pressure -reps 2 -worker 127.0.0.1:$PORT -parallel 2 -cell-sleep 10ms 2> "$tmp/w1.log" &
w1=$!
"$BIN" -sweep pressure -reps 2 -worker 127.0.0.1:$PORT -parallel 2 -cell-sleep 1ms 2> "$tmp/w2.log" &
w2=$!
wait $w1
wait $w2
wait $coord
cmp "$tmp/single.csv" "$tmp/dist.csv"
echo "   byte-identical across $(grep -c 'lease .* done' "$tmp/coord1.log") leases on 2 workers"

echo "== case 2: worker killed mid-lease, cells reissued after the TTL"
PORT2=$((PORT + 1))
"$BIN" -sweep pressure -reps 2 -seed 1 -serve 127.0.0.1:$PORT2 -lease 3 -lease-ttl 2s -format json \
    > "$tmp/dist-kill.json" 2> "$tmp/coord2.log" &
coord=$!
# Worker A crawls (~2.4s per 3-cell lease serially), so killing it
# after one second is reliably mid-lease. Worker B starts only after
# A's lease has outlived its TTL, so recovery must go through the
# expiry/reissue path rather than a steal.
"$BIN" -sweep pressure -reps 2 -worker 127.0.0.1:$PORT2 -parallel 1 -cell-sleep 400ms 2> "$tmp/wa.log" &
wa=$!
disown $wa
sleep 1
kill -9 $wa 2>/dev/null || true
sleep 2.5
"$BIN" -sweep pressure -reps 2 -worker 127.0.0.1:$PORT2 -parallel 4 -cell-sleep 1ms 2> "$tmp/wb.log" &
wb=$!
wait $wb
wait $coord
cmp "$tmp/single.json" "$tmp/dist-kill.json"
if ! grep -q "reissue" "$tmp/coord2.log"; then
    echo "expected a lease reissue after killing worker A; coordinator log:" >&2
    cat "$tmp/coord2.log" >&2
    exit 1
fi
echo "   byte-identical through $(grep -c reissue "$tmp/coord2.log") lease reissue(s)"

fi # basic

if want coordkill; then

echo "== case 3: coordinator SIGKILLed mid-sweep, restarted with -resume"
PORT3=$((PORT + 2))
ckpt="$tmp/coord.ckpt"
"$BIN" -sweep pressure -reps 2 -seed 1 -serve 127.0.0.1:$PORT3 -lease 3 -checkpoint "$ckpt" -format csv \
    > "$tmp/dist-resume.csv" 2> "$tmp/coord3a.log" &
coord=$!
disown $coord
# One worker crawls through the sweep so the coordinator dies with most
# leases still open; the worker must survive the outage on its bounded
# retry backoff alone.
"$BIN" -sweep pressure -reps 2 -worker 127.0.0.1:$PORT3 -parallel 2 -cell-sleep 40ms 2> "$tmp/wc.log" &
wc_pid=$!
# Kill the coordinator cold as soon as at least one lease is durable in
# the checkpoint (the ledger only appears once non-empty).
for _ in $(seq 1 200); do
    grep -q '"done_leases":\[' "$ckpt" 2>/dev/null && break
    sleep 0.1
done
grep -q '"done_leases":\[' "$ckpt" || { echo "no lease became durable; coordinator log:" >&2; cat "$tmp/coord3a.log" >&2; exit 1; }
kill -9 $coord 2>/dev/null || true
echo "   coordinator killed with durable ledger $(grep -o '"done_leases":\[[0-9,]*\]' "$ckpt" | head -1)"
# Hold the outage open long enough that the worker provably hits
# connection-refused and survives on its retry backoff, then restart on
# the same port from the checkpoint — well inside the worker's 15s
# retry window.
sleep 1
"$BIN" -sweep pressure -reps 2 -seed 1 -serve 127.0.0.1:$PORT3 -lease 3 -checkpoint "$ckpt" -resume -format csv \
    > "$tmp/dist-resume.csv" 2> "$tmp/coord3b.log" &
coord=$!
wait $wc_pid
wait $coord
cmp "$tmp/single.csv" "$tmp/dist-resume.csv"
if ! grep -q "restored from" "$tmp/coord3b.log"; then
    echo "expected the restarted coordinator to restore from the checkpoint; log:" >&2
    cat "$tmp/coord3b.log" >&2
    exit 1
fi
if ! grep -q "retrying" "$tmp/wc.log"; then
    echo "expected the worker to retry through the coordinator outage; log:" >&2
    cat "$tmp/wc.log" >&2
    exit 1
fi
echo "   byte-identical after coordinator kill + resume ($(grep -o 'restored: [0-9/]* leases done' "$tmp/coord3b.log" | head -1))"

fi # coordkill

if want chaos; then

echo "== case 4: seeded chaos on every process, in-budget faults"
# The coordinator's chaos plan corrupts its HTTP boundary and its
# checkpoint writer; each worker's plan corrupts its HTTP client and
# makes deterministically chosen cells error once before succeeding.
# Distinct seeds per process keep the three schedules independent and
# individually replayable. Within the lease failure budget the merged
# output must still be byte-identical to the faultless single-process
# reference.
PORT4=$((PORT + 3))
ckpt4="$tmp/chaos.ckpt"
transport="drop=0.04,drop-resp=0.04,dup=0.06,trunc=0.04,delay=0.15,delay-max=2ms"
"$BIN" -sweep pressure -reps 2 -seed 1 -serve 127.0.0.1:$PORT4 -lease 2 -lease-ttl 2s \
    -checkpoint "$ckpt4" -chaos "seed=1009,$transport,ckpt=0.4" -format csv \
    > "$tmp/dist-chaos.csv" 2> "$tmp/coord4.log" &
coord=$!
"$BIN" -sweep pressure -reps 2 -worker 127.0.0.1:$PORT4 -parallel 2 \
    -chaos "seed=2003,$transport,cell-err=0.08" 2> "$tmp/cw1.log" &
w1=$!
"$BIN" -sweep pressure -reps 2 -worker 127.0.0.1:$PORT4 -parallel 2 \
    -chaos "seed=3001,$transport,cell-err=0.08" 2> "$tmp/cw2.log" &
w2=$!
wait $w1
wait $w2
wait $coord
cmp "$tmp/single.csv" "$tmp/dist-chaos.csv"
injected=$(cat "$tmp/coord4.log" "$tmp/cw1.log" "$tmp/cw2.log" | grep -c 'chaos\[')
if [ "$injected" -lt 10 ]; then
    echo "expected a fault-heavy schedule; only $injected faults injected" >&2
    cat "$tmp/coord4.log" >&2
    exit 1
fi
echo "   byte-identical through $injected injected faults"

fi # chaos

if want cache; then

echo "== case 5: cell cache — cold distributed fill, warm replays"
# Cold: coordinator and both workers share one -cache directory, so
# the workers persist every cell they execute. The cold run itself must
# already be byte-identical to the uncached reference.
PORT5=$((PORT + 4))
cdir="$tmp/cellcache"
"$BIN" -sweep pressure -reps 2 -seed 1 -serve 127.0.0.1:$PORT5 -lease 3 -cache "$cdir" -format csv \
    > "$tmp/dist-cache-cold.csv" 2> "$tmp/coord5.log" &
coord=$!
"$BIN" -sweep pressure -reps 2 -worker 127.0.0.1:$PORT5 -parallel 2 -cache "$cdir" -cell-sleep 5ms 2> "$tmp/ccw1.log" &
w1=$!
"$BIN" -sweep pressure -reps 2 -worker 127.0.0.1:$PORT5 -parallel 2 -cache "$cdir" -cell-sleep 1ms 2> "$tmp/ccw2.log" &
w2=$!
wait $w1
wait $w2
wait $coord
cmp "$tmp/single.csv" "$tmp/dist-cache-cold.csv"

# Warm single-process rerun: byte-identical with >=95% cache hits.
"$BIN" -sweep pressure -reps 2 -seed 1 -parallel 4 -cache "$cdir" -format csv \
    > "$tmp/warm-single.csv" 2> "$tmp/warm-single.log"
cmp "$tmp/single.csv" "$tmp/warm-single.csv"
counters=$(grep -o 'cache: [0-9]* hits, [0-9]* misses' "$tmp/warm-single.log" | tail -1)
hits=$(echo "$counters" | awk '{print $2}')
misses=$(echo "$counters" | awk '{print $4}')
if [ $((hits * 100)) -lt $(( (hits + misses) * 95 )) ]; then
    echo "warm rerun hit rate below 95%: $counters" >&2
    cat "$tmp/warm-single.log" >&2
    exit 1
fi
echo "   warm single-process rerun byte-identical ($counters)"

# Warm coordinator: every lease retires from cache at startup, so the
# sweep completes byte-identically with no worker ever joining.
PORT6=$((PORT + 5))
"$BIN" -sweep pressure -reps 2 -seed 1 -serve 127.0.0.1:$PORT6 -lease 3 -cache "$cdir" -format csv \
    > "$tmp/warm-dist.csv" 2> "$tmp/coord6.log"
cmp "$tmp/single.csv" "$tmp/warm-dist.csv"
if ! grep -q "retired from cache" "$tmp/coord6.log"; then
    echo "expected the warm coordinator to retire leases from cache; log:" >&2
    cat "$tmp/coord6.log" >&2
    exit 1
fi
echo "   warm coordinator byte-identical with zero workers ($(grep -o '[0-9/]* leases retired from cache' "$tmp/coord6.log" | head -1))"

fi # cache

echo "distributed parity OK"

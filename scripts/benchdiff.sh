#!/usr/bin/env bash
# Interleaved old-vs-new benchmark comparison (mirrored by `make
# bench-diff`). EXPERIMENTS.md prescribes the methodology for every
# speedup claim in this repo: build one test binary per side, alternate
# runs of the two binaries on the same machine, and compare per-binary
# *minimums* — the minimum is the run least disturbed by the scheduler,
# and interleaving means slow background phases hit both sides alike.
# Single-CPU CI-class hardware swings individual runs ±30%, so means
# and single runs are both misleading; treat the min-vs-min ratio as
# the result.
#
# Usage: benchdiff.sh [-b BENCH_REGEX] [-n ROUNDS] [-t BENCHTIME] [-p PKG] [BASE_REF]
#   BASE_REF   git ref to compare against (default HEAD); the working
#              tree (including uncommitted changes) is the "new" side.
#   -b REGEX   benchmark selector passed to -test.bench
#              (default '^BenchmarkFullGrid20Reps$')
#   -n ROUNDS  interleaved rounds per side (default 10)
#   -t TIME    -test.benchtime per run (default 3x)
#   -p PKG     package containing the benchmark (default '.')
set -euo pipefail

BENCH='^BenchmarkFullGrid20Reps$'
ROUNDS=10
BENCHTIME=3x
PKG=.
while getopts "b:n:t:p:" opt; do
    case "$opt" in
        b) BENCH=$OPTARG ;;
        n) ROUNDS=$OPTARG ;;
        t) BENCHTIME=$OPTARG ;;
        p) PKG=$OPTARG ;;
        *) exit 2 ;;
    esac
done
shift $((OPTIND - 1))
BASE_REF=${1:-HEAD}

GO=${GO:-go}
tmp=$(mktemp -d)
cleanup() {
    git worktree remove --force "$tmp/base" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building '$PKG' test binaries: base=$BASE_REF vs working tree"
git worktree add --force --detach "$tmp/base" "$BASE_REF" >/dev/null
(cd "$tmp/base" && $GO test -c -o "$tmp/bench-base" "$PKG")
$GO test -c -o "$tmp/bench-new" "$PKG"

# One run of one side: print the ns/op of the selected benchmark.
# Multiple matches (sub-benchmarks) are summed so a regex matching a
# family still yields one comparable number per run.
run() {
    "$1" -test.run '^$' -test.bench "$BENCH" -test.benchtime "$BENCHTIME" \
        | awk '/^Benchmark/ { for (i = 1; i <= NF; i++) if ($(i) == "ns/op") { ns += $(i-1); seen = 1 } }
               END { if (!seen) { print "no benchmark matched" > "/dev/stderr"; exit 1 }; printf "%.0f\n", ns }'
}

base_min=
new_min=
for i in $(seq 1 "$ROUNDS"); do
    b=$(run "$tmp/bench-base")
    n=$(run "$tmp/bench-new")
    [ -z "$base_min" ] || [ "$b" -lt "$base_min" ] && base_min=$b
    [ -z "$new_min" ] || [ "$n" -lt "$new_min" ] && new_min=$n
    printf 'round %2d/%d: base %12d ns/op   new %12d ns/op\n' "$i" "$ROUNDS" "$b" "$n"
done

awk -v b="$base_min" -v n="$new_min" -v bench="$BENCH" -v ref="$BASE_REF" 'BEGIN {
    printf "\n%s (min of interleaved runs)\n", bench
    printf "  base (%s): %.3f ms/op\n", ref, b / 1e6
    printf "  new  (worktree): %.3f ms/op\n", n / 1e6
    printf "  ratio: %.2fx %s\n", (n < b ? b / n : n / b), (n < b ? "faster" : "slower")
}'

package hadooppreempt_test

// Serving-path benchmarks for the §V-A decision library. Unlike the
// figure benchmarks, these measure the advisor itself — the ns/decision
// and allocation profile a JobTracker would see calling Decide on every
// heartbeat — so their metrics are wall-clock and land in
// BENCH_sweep.json as volatile (reported, not golden-gated). The
// zero-allocation guarantee itself is gated deterministically by
// TestDecideZeroAlloc in internal/advisor.

import (
	"fmt"
	"sync"
	"testing"

	"hadooppreempt/internal/advisor"
	"hadooppreempt/internal/core"
)

// benchAdvisorCandidates fills a candidate set shaped like a busy
// TaskTracker's slot table: mixed progress, memory, and ages, with the
// ID collisions that exercise the tie-break comparison.
func benchAdvisorCandidates(n int) []advisor.Candidate {
	cs := make([]advisor.Candidate, n)
	for i := range cs {
		cs[i] = advisor.Candidate{
			ID:            fmt.Sprintf("job%d_m_%06d", i%3, i%7),
			Progress:      float64(i%10) / 10,
			ResidentBytes: int64(i%5) << 27,
			StartedAt:     durSeconds(i % 9),
		}
	}
	return cs
}

// BenchmarkAdvisorDecide is the single-thread serving-path headline:
// one decision over a 16-candidate slot table, zero heap allocations.
func BenchmarkAdvisorDecide(b *testing.B) {
	adv, err := advisor.New(advisor.Config{
		Policy: advisor.MostProgress, KillBelow: 0.05, WaitAbove: 0.95,
		PressureKillBelow: 0.30,
	})
	if err != nil {
		b.Fatal(err)
	}
	req := advisor.Request{Candidates: benchAdvisorCandidates(16), FreeBytes: 1 << 28}
	b.ReportAllocs()
	b.ResetTimer()
	var sink advisor.Decision
	for i := 0; i < b.N; i++ {
		sink = adv.Decide(req)
	}
	if sink.Victim == advisor.NoVictim {
		b.Fatal("no victim selected")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkAdvisorDecideParallel shares one Advisor value across
// goroutines, as concurrent scheduler shards would. The candidate slice
// is read-only to Decide, so the goroutines share it too. The workers
// are spawned and parked on a barrier before the timer starts:
// goroutine creation and per-goroutine request setup are harness cost,
// not serving-path cost, and letting RunParallel charge them to the
// measured region showed up as 64–464 B/op of pure noise on a
// zero-alloc library.
func BenchmarkAdvisorDecideParallel(b *testing.B) {
	adv, err := advisor.New(advisor.Config{
		Policy: advisor.SmallestMemory, Primitive: core.Suspend,
	})
	if err != nil {
		b.Fatal(err)
	}
	cs := benchAdvisorCandidates(16)
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			per := (b.N + g - 1) / g
			var ready, done sync.WaitGroup
			release := make(chan struct{})
			ready.Add(g)
			done.Add(g)
			for w := 0; w < g; w++ {
				go func() {
					defer done.Done()
					req := advisor.Request{Candidates: cs}
					var sink advisor.Decision
					ready.Done()
					<-release
					for i := 0; i < per; i++ {
						sink = adv.Decide(req)
					}
					_ = sink
				}()
			}
			ready.Wait()
			b.ReportAllocs()
			b.ResetTimer()
			close(release)
			done.Wait()
			b.StopTimer()
			b.ReportMetric(float64(per*g)/b.Elapsed().Seconds(), "decisions/s")
		})
	}
}

package core_test

import (
	"testing"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/experiments"
)

// The primitive behaviour tests drive the full engine through the paper's
// two-job scenario.

func run(t *testing.T, prim core.Primitive, tlMem, thMem int64) *experiments.TwoJobResult {
	t.Helper()
	p := experiments.DefaultTwoJobParams()
	p.Primitive = prim
	p.PreemptAt = 0.5
	p.TLExtraMemory = tlMem
	p.THExtraMemory = thMem
	out, err := experiments.RunTwoJob(p)
	if err != nil {
		t.Fatalf("RunTwoJob(%v): %v", prim, err)
	}
	return out
}

func TestSuspendPrimitiveSuspendsOnce(t *testing.T) {
	out := run(t, core.Suspend, 0, 0)
	if out.TLSuspensions != 1 {
		t.Fatalf("suspensions = %d, want 1", out.TLSuspensions)
	}
	if out.TLAttempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no restart)", out.TLAttempts)
	}
	if out.WastedWork != 0 {
		t.Fatalf("wasted work = %v, want 0", out.WastedWork)
	}
}

func TestKillPrimitiveRestartsFromScratch(t *testing.T) {
	out := run(t, core.Kill, 0, 0)
	if out.TLAttempts != 2 {
		t.Fatalf("attempts = %d, want 2", out.TLAttempts)
	}
	if out.WastedWork == 0 {
		t.Fatal("kill must waste work")
	}
	if out.TLSuspensions != 0 {
		t.Fatalf("suspensions = %d, want 0", out.TLSuspensions)
	}
}

func TestWaitPrimitiveDoesNothing(t *testing.T) {
	out := run(t, core.Wait, 0, 0)
	if out.TLAttempts != 1 || out.TLSuspensions != 0 {
		t.Fatalf("wait should not disturb tl: attempts=%d suspensions=%d",
			out.TLAttempts, out.TLSuspensions)
	}
	// th had to wait for tl: sojourn includes ~half of tl's runtime.
	susp := run(t, core.Suspend, 0, 0)
	if out.SojournTH <= susp.SojournTH {
		t.Fatalf("wait sojourn (%v) should exceed suspend sojourn (%v)",
			out.SojournTH, susp.SojournTH)
	}
}

func TestSuspendBeatsKillOnMakespan(t *testing.T) {
	susp := run(t, core.Suspend, 0, 0)
	kill := run(t, core.Kill, 0, 0)
	if susp.Makespan >= kill.Makespan {
		t.Fatalf("suspend makespan (%v) should beat kill (%v): kill wastes work",
			susp.Makespan, kill.Makespan)
	}
}

func TestSuspendBeatsWaitOnSojourn(t *testing.T) {
	susp := run(t, core.Suspend, 0, 0)
	wait := run(t, core.Wait, 0, 0)
	if susp.SojournTH >= wait.SojournTH {
		t.Fatalf("suspend sojourn (%v) should beat wait (%v)",
			susp.SojournTH, wait.SojournTH)
	}
}

func TestCheckpointPaysSerializationEvenWithFreeMemory(t *testing.T) {
	susp := run(t, core.Suspend, 0, 0)
	ckpt := run(t, core.Checkpoint, 0, 0)
	if ckpt.SojournTH <= susp.SojournTH {
		t.Fatalf("checkpoint sojourn (%v) should exceed suspend (%v): serialization delays the slot",
			ckpt.SojournTH, susp.SojournTH)
	}
	if ckpt.Makespan <= susp.Makespan {
		t.Fatalf("checkpoint makespan (%v) should exceed suspend (%v)",
			ckpt.Makespan, susp.Makespan)
	}
	if ckpt.TLSuspensions != 1 {
		t.Fatalf("checkpoint suspensions = %d, want 1", ckpt.TLSuspensions)
	}
}

func TestSuspendPagesOutOnlyUnderPressure(t *testing.T) {
	light := run(t, core.Suspend, 0, 0)
	if light.SwapOutTL != 0 {
		t.Fatalf("light tasks should not swap, got %d bytes", light.SwapOutTL)
	}
	heavy := run(t, core.Suspend, experiments.WorstCaseMemory, experiments.WorstCaseMemory)
	if heavy.SwapOutTL == 0 {
		t.Fatal("memory-hungry tasks should force tl to swap")
	}
	if heavy.SwapInTL == 0 {
		t.Fatal("resumed tl should page its state back in")
	}
}

func TestNewPreemptorValidation(t *testing.T) {
	if _, err := core.NewPreemptor(nil, nil, core.Primitive(99), nil, core.CheckpointConfig{}); err == nil {
		t.Fatal("unknown primitive should fail")
	}
	if _, err := core.NewPreemptor(nil, nil, core.Checkpoint, nil, core.CheckpointConfig{}); err == nil {
		t.Fatal("checkpoint without device resolver should fail")
	}
}

package core

import (
	"fmt"
	"time"
)

// Candidate describes a preemptable task for eviction policies.
type Candidate struct {
	// ID is the task (stringified mapreduce.TaskID); policies treat it as
	// opaque.
	ID string
	// Progress is the completed fraction in [0,1].
	Progress float64
	// ResidentBytes is the task's resident memory.
	ResidentBytes int64
	// StartedAt is when the current attempt launched.
	StartedAt time.Duration
}

// EvictionPolicy picks which task to preempt when a high-priority task
// needs a slot. §V-A discusses the space: Natjam suspends tasks closest to
// completion to even out job progress; minimizing paging overhead instead
// favours the smallest memory footprint.
type EvictionPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// SelectVictim returns the task to preempt. ok is false when the
	// candidate set is empty.
	SelectVictim(candidates []Candidate) (victim Candidate, ok bool)
}

// policyFunc adapts a selection function.
type policyFunc struct {
	name string
	pick func([]Candidate) Candidate
}

// Name implements EvictionPolicy.
func (p policyFunc) Name() string { return p.name }

// SelectVictim implements EvictionPolicy.
func (p policyFunc) SelectVictim(cs []Candidate) (Candidate, bool) {
	if len(cs) == 0 {
		return Candidate{}, false
	}
	return p.pick(cs), true
}

// argBest returns the candidate maximizing better(a, b) == a preferred,
// breaking ties by ID for determinism.
func argBest(cs []Candidate, better func(a, b Candidate) bool) Candidate {
	best := cs[0]
	for _, c := range cs[1:] {
		if better(c, best) || (!better(best, c) && c.ID < best.ID) {
			best = c
		}
	}
	return best
}

// MostProgress prefers the task closest to completion (Natjam's SRT-style
// policy: keeps all of a job's tasks at similar completion levels, good
// for sojourn times).
func MostProgress() EvictionPolicy {
	return policyFunc{name: "most-progress", pick: func(cs []Candidate) Candidate {
		return argBest(cs, func(a, b Candidate) bool { return a.Progress > b.Progress })
	}}
}

// LeastProgress prefers the freshest task (least work wasted if the
// primitive is kill).
func LeastProgress() EvictionPolicy {
	return policyFunc{name: "least-progress", pick: func(cs []Candidate) Candidate {
		return argBest(cs, func(a, b Candidate) bool { return a.Progress < b.Progress })
	}}
}

// SmallestMemory prefers the task with the smallest resident set,
// minimizing paging overhead for the suspend primitive — the strategy
// §V-A derives from the paper's Figure 4.
func SmallestMemory() EvictionPolicy {
	return policyFunc{name: "smallest-memory", pick: func(cs []Candidate) Candidate {
		return argBest(cs, func(a, b Candidate) bool { return a.ResidentBytes < b.ResidentBytes })
	}}
}

// LargestMemory prefers the task with the largest resident set (frees the
// most memory for the incoming task; worst case for suspend overhead).
func LargestMemory() EvictionPolicy {
	return policyFunc{name: "largest-memory", pick: func(cs []Candidate) Candidate {
		return argBest(cs, func(a, b Candidate) bool { return a.ResidentBytes > b.ResidentBytes })
	}}
}

// Oldest prefers the longest-running task.
func Oldest() EvictionPolicy {
	return policyFunc{name: "oldest", pick: func(cs []Candidate) Candidate {
		return argBest(cs, func(a, b Candidate) bool { return a.StartedAt < b.StartedAt })
	}}
}

// Youngest prefers the most recently started task.
func Youngest() EvictionPolicy {
	return policyFunc{name: "youngest", pick: func(cs []Candidate) Candidate {
		return argBest(cs, func(a, b Candidate) bool { return a.StartedAt > b.StartedAt })
	}}
}

// PolicyByName resolves a policy label.
func PolicyByName(name string) (EvictionPolicy, error) {
	switch name {
	case "most-progress":
		return MostProgress(), nil
	case "least-progress":
		return LeastProgress(), nil
	case "smallest-memory":
		return SmallestMemory(), nil
	case "largest-memory":
		return LargestMemory(), nil
	case "oldest":
		return Oldest(), nil
	case "youngest":
		return Youngest(), nil
	default:
		return nil, fmt.Errorf("core: unknown eviction policy %q", name)
	}
}

// Advisor chooses a primitive per victim following §V-A: freshly started
// tasks are cheaper to kill (little work lost), tasks close to completion
// are cheaper to wait for, and everything in between is suspended.
type Advisor struct {
	// KillBelow kills victims with progress < KillBelow.
	KillBelow float64
	// WaitAbove waits for victims with progress > WaitAbove.
	WaitAbove float64
}

// DefaultAdvisor returns thresholds matching the paper's qualitative
// guidance.
func DefaultAdvisor() Advisor { return Advisor{KillBelow: 0.05, WaitAbove: 0.95} }

// Choose picks the primitive for a victim at the given progress.
func (a Advisor) Choose(progress float64) Primitive {
	switch {
	case progress < a.KillBelow:
		return Kill
	case progress > a.WaitAbove:
		return Wait
	default:
		return Suspend
	}
}

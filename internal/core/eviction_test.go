package core

import (
	"testing"
	"testing/quick"
	"time"
)

func candidates() []Candidate {
	return []Candidate{
		{ID: "a", Progress: 0.9, ResidentBytes: 100 << 20, StartedAt: 10 * time.Second},
		{ID: "b", Progress: 0.2, ResidentBytes: 2 << 30, StartedAt: 5 * time.Second},
		{ID: "c", Progress: 0.5, ResidentBytes: 500 << 20, StartedAt: 20 * time.Second},
	}
}

func TestPolicySelections(t *testing.T) {
	cases := []struct {
		policy EvictionPolicy
		want   string
	}{
		{MostProgress(), "a"},
		{LeastProgress(), "b"},
		{SmallestMemory(), "a"},
		{LargestMemory(), "b"},
		{Oldest(), "b"},
		{Youngest(), "c"},
	}
	for _, tc := range cases {
		t.Run(tc.policy.Name(), func(t *testing.T) {
			v, ok := tc.policy.SelectVictim(candidates())
			if !ok {
				t.Fatal("no victim selected")
			}
			if v.ID != tc.want {
				t.Fatalf("victim = %s, want %s", v.ID, tc.want)
			}
		})
	}
}

func TestPolicyEmptyCandidates(t *testing.T) {
	for _, p := range []EvictionPolicy{MostProgress(), LeastProgress(), SmallestMemory(), LargestMemory(), Oldest(), Youngest()} {
		if _, ok := p.SelectVictim(nil); ok {
			t.Fatalf("%s selected a victim from empty set", p.Name())
		}
	}
}

func TestPolicyTiesBrokenByID(t *testing.T) {
	cs := []Candidate{
		{ID: "z", Progress: 0.5},
		{ID: "a", Progress: 0.5},
		{ID: "m", Progress: 0.5},
	}
	v, ok := MostProgress().SelectVictim(cs)
	if !ok || v.ID != "a" {
		t.Fatalf("tie not broken by smallest ID: got %q", v.ID)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"most-progress", "least-progress", "smallest-memory", "largest-memory", "oldest", "youngest"} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy name %q != %q", p.Name(), name)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestAdvisorThresholds(t *testing.T) {
	a := DefaultAdvisor()
	if got := a.Choose(0.01); got != Kill {
		t.Fatalf("fresh task -> %v, want kill", got)
	}
	if got := a.Choose(0.5); got != Suspend {
		t.Fatalf("mid task -> %v, want suspend", got)
	}
	if got := a.Choose(0.99); got != Wait {
		t.Fatalf("nearly-done task -> %v, want wait", got)
	}
}

func TestAdvisorBoundaries(t *testing.T) {
	a := Advisor{KillBelow: 0.1, WaitAbove: 0.9}
	if a.Choose(0.1) != Suspend {
		t.Fatal("exactly KillBelow should suspend")
	}
	if a.Choose(0.9) != Suspend {
		t.Fatal("exactly WaitAbove should suspend")
	}
}

func TestPrimitiveStrings(t *testing.T) {
	for p, want := range map[Primitive]string{
		Wait: "wait", Kill: "kill", Suspend: "susp", Checkpoint: "checkpoint",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestParsePrimitive(t *testing.T) {
	for s, want := range map[string]Primitive{
		"wait": Wait, "kill": Kill, "susp": Suspend, "suspend": Suspend,
		"checkpoint": Checkpoint, "natjam": Checkpoint,
	} {
		got, err := ParsePrimitive(s)
		if err != nil || got != want {
			t.Errorf("ParsePrimitive(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePrimitive("bogus"); err == nil {
		t.Fatal("bogus primitive should fail")
	}
}

func TestPrimitivesList(t *testing.T) {
	ps := Primitives()
	if len(ps) != 3 || ps[0] != Wait || ps[1] != Kill || ps[2] != Suspend {
		t.Fatalf("Primitives() = %v", ps)
	}
}

// Property: every policy returns one of the candidates, regardless of
// input.
func TestPropertyPolicyReturnsMember(t *testing.T) {
	policies := []EvictionPolicy{MostProgress(), LeastProgress(), SmallestMemory(), LargestMemory(), Oldest(), Youngest()}
	f := func(raw []struct {
		P uint8
		M uint32
		S uint16
	}) bool {
		if len(raw) == 0 {
			return true
		}
		cs := make([]Candidate, len(raw))
		ids := make(map[string]bool)
		for i, r := range raw {
			cs[i] = Candidate{
				ID:            string(rune('a' + i%26)),
				Progress:      float64(r.P) / 255,
				ResidentBytes: int64(r.M),
				StartedAt:     time.Duration(r.S) * time.Second,
			}
			ids[cs[i].ID] = true
		}
		for _, p := range policies {
			v, ok := p.SelectVictim(cs)
			if !ok || !ids[v.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package core implements the paper's primary contribution: the
// OS-assisted task preemption primitive for Hadoop, alongside the two
// baseline primitives (wait, kill) and a Natjam-style application-level
// checkpoint primitive used as a comparison point.
//
// The package also provides the machinery §V discusses around the
// primitive: task eviction policies (which task to preempt) and a cost
// model advisor (which primitive to use given a task's progress).
package core

import (
	"fmt"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/sim"
)

// Primitive selects how a task is preempted.
type Primitive int

// The preemption primitives compared in the paper's evaluation.
const (
	// Wait does not preempt: the high-priority task waits for the victim
	// to complete. Zero wasted work, maximal latency.
	Wait Primitive = iota + 1
	// Kill terminates the victim with SIGKILL and reschedules it from
	// scratch, paying a cleanup attempt and losing all completed work.
	Kill
	// Suspend is the paper's OS-assisted primitive: SIGTSTP stops the
	// victim, the OS pages its memory out only if and when needed, and
	// SIGCONT resumes it in place.
	Suspend
	// Checkpoint is a Natjam-style application-level primitive: task
	// state is systematically serialized to disk at suspension and
	// deserialized at resume, paying the full cost every time even when
	// memory is plentiful.
	Checkpoint
)

// String returns the name used in the paper's figures.
func (p Primitive) String() string {
	switch p {
	case Wait:
		return "wait"
	case Kill:
		return "kill"
	case Suspend:
		return "susp"
	case Checkpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
}

// ParsePrimitive converts a figure label to a Primitive.
func ParsePrimitive(s string) (Primitive, error) {
	switch s {
	case "wait":
		return Wait, nil
	case "kill":
		return Kill, nil
	case "susp", "suspend":
		return Suspend, nil
	case "checkpoint", "natjam":
		return Checkpoint, nil
	default:
		return 0, fmt.Errorf("core: unknown primitive %q", s)
	}
}

// Primitives lists the three primitives of the paper's main comparison.
func Primitives() []Primitive { return []Primitive{Wait, Kill, Suspend} }

// CheckpointConfig parameterizes the Checkpoint primitive.
type CheckpointConfig struct {
	// StateBytes estimates the serialized task state for a job; nil uses
	// DefaultStateBytes.
	StateBytes func(conf mapreduce.JobConf) int64
}

// DefaultStateBytes estimates checkpoint volume as the task's full
// in-memory state: the application-level approach must serialize the heap
// (user state plus engine buffers), which is exactly the systematic cost
// §II contrasts with OS-assisted suspension. The OS instead pages out
// only what memory pressure demands — often nothing.
func DefaultStateBytes(conf mapreduce.JobConf) int64 {
	return conf.ExtraMemoryBytes + conf.JVMBaseBytes
}

// Preemptor executes preemption primitives against the JobTracker. It is
// the programmatic face of the paper's new API ("can be used both by
// users on the command line and by schedulers").
type Preemptor struct {
	eng  *sim.Engine
	jt   *mapreduce.JobTracker
	prim Primitive
	ckpt CheckpointConfig

	// deviceFor resolves the disk device of the node a task runs on, for
	// checkpoint traffic. Set by NewPreemptor.
	deviceFor func(tracker string) *disk.Device

	// pendingRestore holds deserialize deadlines for checkpointed tasks.
	pendingRestore map[mapreduce.TaskID]bool
}

// NewPreemptor builds a preemptor for the given primitive. deviceFor maps
// a TaskTracker name to its node's disk device and is only consulted by
// the Checkpoint primitive; it may be nil for the other primitives.
func NewPreemptor(eng *sim.Engine, jt *mapreduce.JobTracker, prim Primitive,
	deviceFor func(tracker string) *disk.Device, ckpt CheckpointConfig) (*Preemptor, error) {
	switch prim {
	case Wait, Kill, Suspend:
	case Checkpoint:
		if deviceFor == nil {
			return nil, fmt.Errorf("core: checkpoint primitive needs a device resolver")
		}
	default:
		return nil, fmt.Errorf("core: unknown primitive %d", int(prim))
	}
	if ckpt.StateBytes == nil {
		ckpt.StateBytes = DefaultStateBytes
	}
	return &Preemptor{
		eng:            eng,
		jt:             jt,
		prim:           prim,
		ckpt:           ckpt,
		deviceFor:      deviceFor,
		pendingRestore: make(map[mapreduce.TaskID]bool),
	}, nil
}

// Primitive returns the configured primitive.
func (p *Preemptor) Primitive() Primitive { return p.prim }

// Preempt evicts the victim task according to the primitive. For Wait it
// is a no-op: the caller simply refrains from granting the slot. The
// returned duration is the primitive's immediate bookkeeping cost (only
// Checkpoint has one: state serialization occupies the victim's disk and
// delays the slot release).
func (p *Preemptor) Preempt(victim mapreduce.TaskID) (time.Duration, error) {
	task, ok := p.jt.Task(victim)
	if !ok {
		return 0, fmt.Errorf("core: no such task %s", victim)
	}
	switch p.prim {
	case Wait:
		return 0, nil
	case Kill:
		return 0, p.jt.KillTaskAttempt(victim, true)
	case Suspend:
		return 0, p.jt.SuspendTask(victim)
	case Checkpoint:
		// Natjam-style: serialize state to the local disk, then release
		// the task. We model serialization as a disk write that must
		// complete before the suspension takes effect, so the slot frees
		// only afterwards — the systematic overhead §II contrasts with
		// the OS-assisted approach.
		dev := p.deviceFor(task.Tracker())
		if dev == nil {
			return 0, fmt.Errorf("core: no device for tracker %q", task.Tracker())
		}
		bytes := p.ckpt.StateBytes(task.Job().Conf())
		done := dev.Submit(disk.Write, bytes, disk.NoStream)
		wait := done - p.eng.Now()
		if wait < 0 {
			wait = 0
		}
		id := victim
		p.pendingRestore[id] = true
		p.eng.Schedule(wait, func() {
			// The task may have completed during serialization; ignore
			// the error, completion wins (same race as suspend).
			_ = p.jt.SuspendTask(id)
		})
		return wait, nil
	default:
		return 0, fmt.Errorf("core: unknown primitive %d", int(p.prim))
	}
}

// Restore undoes a preemption once the high-priority work is out of the
// way: resume for Suspend/Checkpoint (the latter pays deserialization
// first), nothing for Kill (the JobTracker already requeued the victim)
// and nothing for Wait.
func (p *Preemptor) Restore(victim mapreduce.TaskID) error {
	task, ok := p.jt.Task(victim)
	if !ok {
		return fmt.Errorf("core: no such task %s", victim)
	}
	switch p.prim {
	case Wait, Kill:
		return nil
	case Suspend:
		return p.jt.ResumeTask(victim)
	case Checkpoint:
		if !p.pendingRestore[victim] {
			return p.jt.ResumeTask(victim)
		}
		delete(p.pendingRestore, victim)
		if task.State() != mapreduce.TaskSuspended {
			// Completed during serialization; nothing to restore.
			return nil
		}
		dev := p.deviceFor(task.Tracker())
		if dev == nil {
			return fmt.Errorf("core: no device for tracker %q", task.Tracker())
		}
		bytes := p.ckpt.StateBytes(task.Job().Conf())
		done := dev.Submit(disk.Read, bytes, disk.NoStream)
		wait := done - p.eng.Now()
		if wait < 0 {
			wait = 0
		}
		id := victim
		p.eng.Schedule(wait, func() { _ = p.jt.ResumeTask(id) })
		return nil
	default:
		return fmt.Errorf("core: unknown primitive %d", int(p.prim))
	}
}

// Package ossim models the node operating system: processes, POSIX-style
// signals, CPU scheduling and the interaction with the memory manager.
//
// Map and Reduce tasks in Hadoop 1 are ordinary Unix processes (child JVMs
// spawned by the TaskTracker), so the paper's preemption primitive is
// "just" process control: SIGTSTP stops the process, SIGCONT resumes it,
// and the memory manager transparently pages its state in and out. This
// package provides exactly that machinery in simulated form:
//
//   - a Process executes a Program, a sequence of operations combining CPU
//     work, memory touches and disk I/O;
//   - SIGTSTP runs an optional handler (e.g. closing network connections)
//     and stops the process, clearing its pages' referenced bits;
//   - SIGCONT resumes execution where it left off; swapped pages fault
//     back in lazily as the program touches them;
//   - SIGKILL terminates immediately, releasing memory;
//   - runnable processes share the node's cores proportionally.
package ossim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/memory"
	"hadooppreempt/internal/sim"
)

// Signal is a POSIX-style signal number (only the ones the preemption
// primitive needs).
type Signal int

// The signals used by the preemption primitives, mirroring §III-B.
const (
	// SIGTSTP politely stops the process. Unlike SIGSTOP it can be
	// handled, which lets tasks manage external state before stopping.
	SIGTSTP Signal = iota + 1
	// SIGCONT resumes a stopped process.
	SIGCONT
	// SIGKILL terminates the process immediately.
	SIGKILL
	// SIGTERM requests termination; the default action terminates.
	SIGTERM
)

// String returns the conventional signal name.
func (s Signal) String() string {
	switch s {
	case SIGTSTP:
		return "SIGTSTP"
	case SIGCONT:
		return "SIGCONT"
	case SIGKILL:
		return "SIGKILL"
	case SIGTERM:
		return "SIGTERM"
	default:
		return fmt.Sprintf("Signal(%d)", int(s))
	}
}

// State is the lifecycle state of a process.
type State int

// Process states.
const (
	// StateRunning means the process is executing (or ready to execute)
	// its program.
	StateRunning State = iota + 1
	// StateStopped means the process received SIGTSTP and is suspended.
	StateStopped
	// StateExited means the process terminated.
	StateExited
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Exit codes reported via the OnExit callback.
const (
	// ExitOK is a normal exit.
	ExitOK = 0
	// ExitKilled is the conventional 128+SIGKILL code.
	ExitKilled = 137
	// ExitOOM marks a process killed because its memory access could not
	// be satisfied.
	ExitOOM = 138
)

// ErrNoSuchProcess is returned when signalling an unknown or exited pid.
var ErrNoSuchProcess = errors.New("ossim: no such process")

// MemOp describes a memory access performed by an operation.
type MemOp struct {
	// Offset and Length delimit the touched range of the address space.
	Offset int64
	Length int64
	// Write dirties the pages.
	Write bool
}

// IOOp describes a disk transfer performed by an operation.
type IOOp struct {
	Device *disk.Device
	Kind   disk.Kind
	Bytes  int64
	Stream disk.StreamID
}

// Op is one step of a Program. The kernel first waits for the fixed
// latencies (Sleep, memory faults, disk I/O), then performs Compute worth
// of CPU work at the process's share of the node's cores.
type Op struct {
	// Label is carried to traces for debugging.
	Label string
	// Sleep is a fixed latency (e.g. process startup, RPC wait).
	Sleep time.Duration
	// Mem, if non-nil, touches memory; page faults add latency.
	Mem *MemOp
	// IO, if non-nil, performs a disk transfer; queueing adds latency.
	IO *IOOp
	// Compute is pure CPU work at full speed on one core.
	Compute time.Duration
	// Done marks program completion; remaining fields are ignored except
	// ExitCode.
	Done bool
	// ExitCode is the exit status when Done.
	ExitCode int
}

// Program generates the operations of a process. Next is called once per
// step and must fully assign *op (typically `*op = Op{...}`); setting
// op.Done terminates the process. The out-parameter style keeps the
// per-operation hot path free of struct copies and allocations.
type Program interface {
	Next(p *Process, op *Op)
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(p *Process, op *Op)

// Next implements Program.
func (f ProgramFunc) Next(p *Process, op *Op) { f(p, op) }

type phase int

const (
	phaseIdle    phase = iota // between operations
	phaseLatency              // waiting out fixed latency
	phaseCompute              // CPU work in progress
)

// Process is a simulated OS process.
type Process struct {
	pid    memory.PID
	name   string
	kernel *Kernel
	prog   Program
	state  State

	phase            phase
	timer            sim.Timer
	pendingCompute   time.Duration // compute part of the op being latency-waited
	computeRemaining time.Duration // remaining CPU work of current compute phase
	speed            float64       // current share of a core
	speedSetAt       time.Duration
	stopAfterLatency bool

	handlers map[Signal]func(*Process) time.Duration
	onExit   func(*Process, int)

	// latencyDoneFn and computeDoneFn are bound once at spawn so the hot
	// scheduling paths (rebalance, runNextOp) reuse them instead of
	// allocating a fresh closure per reschedule.
	latencyDoneFn func()
	computeDoneFn func()

	// op is the reusable buffer the program fills on each step.
	op Op

	createdAt   time.Duration
	exitedAt    time.Duration
	exitCode    int
	cpuTime     time.Duration
	stoppedAt   time.Duration
	stoppedTime time.Duration
	stops       int
	conts       int
	// memStats is the address space's paging counters, captured at exit
	// (the space itself is released then).
	memStats memory.SpaceStats
}

// MemoryStats returns the process's paging counters: live values while the
// process runs, the final snapshot after it exits.
func (p *Process) MemoryStats() memory.SpaceStats {
	if p.state != StateExited {
		if s := p.kernel.mem.Space(p.pid); s != nil {
			return s.Stats()
		}
	}
	return p.memStats
}

// PID returns the process identifier.
func (p *Process) PID() memory.PID { return p.pid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// State returns the current lifecycle state.
func (p *Process) State() State { return p.state }

// ExitCode returns the exit status (valid once exited).
func (p *Process) ExitCode() int { return p.exitCode }

// CPUTime returns the accumulated CPU time consumed. Work since the last
// settle is accounted lazily: the kernel's rebalance fast path defers
// banking for processes running at an unchanged full-speed share.
func (p *Process) CPUTime() time.Duration {
	t := p.cpuTime
	if p.phase == phaseCompute {
		if elapsed := p.kernel.eng.Now() - p.speedSetAt; elapsed > 0 {
			done := time.Duration(float64(elapsed) * p.speed)
			if done > p.computeRemaining {
				done = p.computeRemaining
			}
			t += done
		}
	}
	return t
}

// StoppedTime returns total time spent in StateStopped (including the
// current stop, if stopped now).
func (p *Process) StoppedTime() time.Duration {
	t := p.stoppedTime
	if p.state == StateStopped {
		t += p.kernel.eng.Now() - p.stoppedAt
	}
	return t
}

// Stops and Conts report how many suspend/resume cycles the process saw.
func (p *Process) Stops() int { return p.stops }

// Conts reports the number of SIGCONT deliveries that resumed the process.
func (p *Process) Conts() int { return p.conts }

// Handle registers a signal handler. The handler runs before the default
// action and its returned duration is added as latency (e.g. closing
// network connections on SIGTSTP). Only SIGTSTP, SIGCONT and SIGTERM can
// be handled; SIGKILL cannot, as in POSIX.
func (p *Process) Handle(sig Signal, fn func(*Process) time.Duration) error {
	if sig == SIGKILL {
		return fmt.Errorf("ossim: SIGKILL cannot be caught")
	}
	if p.handlers == nil {
		p.handlers = make(map[Signal]func(*Process) time.Duration)
	}
	p.handlers[sig] = fn
	return nil
}

// Kernel is the operating system of one simulated node.
type Kernel struct {
	eng   *sim.Engine
	name  string
	cores int
	mem   *memory.Manager

	procs   map[memory.PID]*Process
	nextPID memory.PID
	// active lists processes in phaseCompute in insertion order; a slice
	// keeps rebalance iteration deterministic and allocation-free.
	active []*Process
	// fullSpeed is true while every active process runs at speed 1 with a
	// pending completion timer — the common un-contended regime, where
	// membership changes need no rebalance walk: a leaver cannot raise
	// anyone's share and an entrant (while n stays within the cores) only
	// needs its own timer.
	fullSpeed bool
	// oomFn is the oomKill method value, bound once per kernel shell so
	// re-installing the OOM handler on reuse does not allocate.
	oomFn func()
}

// NewKernel creates a node OS with the given core count and memory
// manager. The kernel installs itself as the memory manager's OOM handler:
// on OOM it kills the process with the largest resident set.
func NewKernel(eng *sim.Engine, name string, cores int, mem *memory.Manager) *Kernel {
	if cores <= 0 {
		panic("ossim: cores must be positive")
	}
	k := kernelPool.Get().(*Kernel)
	k.eng, k.name, k.cores, k.mem = eng, name, cores, mem
	k.nextPID = 1
	k.fullSpeed = true
	if k.procs == nil {
		k.procs = make(map[memory.PID]*Process)
	}
	if k.oomFn == nil {
		k.oomFn = k.oomKill
	}
	mem.SetOOMHandler(k.oomFn)
	return k
}

// kernelPool recycles Kernel shells released with Release, keeping the
// process table warm across the cluster rebuilds of a sweep cell.
var kernelPool = sync.Pool{New: func() any { return &Kernel{} }}

// Release returns the kernel's internal storage to a shared arena for reuse
// by a future NewKernel. The kernel and its processes must not be used
// afterwards.
func (k *Kernel) Release() {
	clear(k.procs)
	clear(k.active)
	k.active = k.active[:0]
	k.eng, k.mem = nil, nil
	kernelPool.Put(k)
}

// Name returns the node name.
func (k *Kernel) Name() string { return k.name }

// Cores returns the CPU count.
func (k *Kernel) Cores() int { return k.cores }

// Memory returns the node's memory manager.
func (k *Kernel) Memory() *memory.Manager { return k.mem }

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Processes returns the live (non-exited) process count.
func (k *Kernel) Processes() int { return len(k.procs) }

// Process looks up a live process by pid.
func (k *Kernel) Process(pid memory.PID) (*Process, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// Spawn creates a process with an address space of memBytes and starts
// executing prog. onExit (optional) fires when the process terminates for
// any reason.
func (k *Kernel) Spawn(name string, memBytes int64, prog Program, onExit func(*Process, int)) (*Process, error) {
	pid := k.nextPID
	k.nextPID++
	if _, err := k.mem.Register(pid, memBytes); err != nil {
		return nil, fmt.Errorf("ossim: spawn %s: %w", name, err)
	}
	p := &Process{
		pid:       pid,
		name:      name,
		kernel:    k,
		prog:      prog,
		state:     StateRunning,
		onExit:    onExit,
		createdAt: k.eng.Now(),
		speed:     1,
	}
	p.latencyDoneFn = func() { k.latencyDone(p) }
	p.computeDoneFn = func() { k.computeDone(p) }
	k.procs[pid] = p
	// Start executing on the next event so the caller finishes its own
	// bookkeeping first.
	k.eng.Schedule(0, func() {
		if p.state == StateRunning && p.phase == phaseIdle {
			k.runNextOp(p)
		}
	})
	return p, nil
}

// Signal delivers sig to pid.
func (k *Kernel) Signal(pid memory.PID, sig Signal) error {
	p, ok := k.procs[pid]
	if !ok {
		return fmt.Errorf("%w: pid %d", ErrNoSuchProcess, pid)
	}
	var handlerLatency time.Duration
	if h := p.handlers[sig]; h != nil {
		handlerLatency = h(p)
	}
	switch sig {
	case SIGTSTP:
		k.stop(p, handlerLatency)
	case SIGCONT:
		k.cont(p, handlerLatency)
	case SIGKILL:
		k.exit(p, ExitKilled)
	case SIGTERM:
		if p.handlers[sig] == nil {
			k.exit(p, ExitKilled)
		}
		// A handled SIGTERM is the handler's business; default action
		// suppressed.
	default:
		return fmt.Errorf("ossim: unsupported signal %v", sig)
	}
	return nil
}

// stop implements the SIGTSTP default action.
func (k *Kernel) stop(p *Process, handlerLatency time.Duration) {
	if p.state != StateRunning {
		return
	}
	switch p.phase {
	case phaseCompute:
		k.leaveCompute(p)
		p.timer.Cancel()
		p.timer = sim.Timer{}
		p.pendingCompute = p.computeRemaining
		p.computeRemaining = 0
	case phaseLatency:
		// A process blocked on I/O handles the signal when the operation
		// completes.
		p.stopAfterLatency = true
		p.markStopped(handlerLatency)
		return
	case phaseIdle:
		// Between ops (only transiently possible at spawn time).
	}
	p.phase = phaseIdle
	p.markStopped(handlerLatency)
	if handlerLatency > 0 {
		// The handler's work (e.g. closing connections) delays the actual
		// stop; model it as extending the moment the pages go cold.
		k.eng.Schedule(handlerLatency, func() {
			if p.state == StateStopped {
				k.mem.MarkStopped(p.pid)
			}
		})
	} else {
		k.mem.MarkStopped(p.pid)
	}
}

func (p *Process) markStopped(handlerLatency time.Duration) {
	p.state = StateStopped
	p.stoppedAt = p.kernel.eng.Now() + handlerLatency
	if p.stoppedAt < p.kernel.eng.Now() {
		p.stoppedAt = p.kernel.eng.Now()
	}
	p.stops++
}

// cont implements the SIGCONT default action. handlerLatency delays the
// actual resumption of work — e.g. a handler re-establishing network
// connections (§V-B).
func (k *Kernel) cont(p *Process, handlerLatency time.Duration) {
	if p.state != StateStopped {
		return
	}
	p.state = StateRunning
	now := k.eng.Now()
	if p.stoppedAt < now {
		p.stoppedTime += now - p.stoppedAt
	}
	p.conts++
	k.mem.MarkRunning(p.pid)
	if p.stopAfterLatency {
		// Still waiting out an I/O completion; it will proceed on its own.
		p.stopAfterLatency = false
		return
	}
	if handlerLatency > 0 {
		// Park the saved compute (possibly zero) behind the handler's
		// work; latencyDone picks it up.
		p.phase = phaseLatency
		p.timer = k.eng.Schedule(handlerLatency, p.latencyDoneFn)
		return
	}
	if p.pendingCompute > 0 {
		d := p.pendingCompute
		p.pendingCompute = 0
		k.startCompute(p, d)
		return
	}
	if p.phase == phaseIdle {
		k.runNextOp(p)
	}
}

// exit terminates a process.
func (k *Kernel) exit(p *Process, code int) {
	if p.state == StateExited {
		return
	}
	if p.phase == phaseCompute {
		k.leaveCompute(p)
	}
	p.timer.Cancel()
	p.timer = sim.Timer{}
	if p.state == StateStopped && p.stoppedAt < k.eng.Now() {
		p.stoppedTime += k.eng.Now() - p.stoppedAt
	}
	p.state = StateExited
	p.phase = phaseIdle
	p.exitedAt = k.eng.Now()
	p.exitCode = code
	if s := k.mem.Space(p.pid); s != nil {
		p.memStats = s.Stats()
	}
	k.mem.Unregister(p.pid)
	delete(k.procs, p.pid)
	if p.onExit != nil {
		// Deliver asynchronously, like SIGCHLD.
		k.eng.Schedule(0, func() { p.onExit(p, code) })
	}
}

// oomKill implements the kernel OOM killer: the victim is the live process
// with the largest resident set.
func (k *Kernel) oomKill() {
	var victim *Process
	var max int64 = -1
	for _, p := range k.procs {
		if r := k.mem.ResidentBytes(p.pid); r > max {
			max = r
			victim = p
		}
	}
	if victim != nil {
		k.exit(victim, ExitOOM)
	}
}

// runNextOp pulls and executes the next operation of p.
func (k *Kernel) runNextOp(p *Process) {
	if p.state != StateRunning {
		return
	}
	op := &p.op
	p.prog.Next(p, op)
	if op.Done {
		k.exit(p, op.ExitCode)
		return
	}
	latency := op.Sleep
	if op.Mem != nil {
		d, err := k.mem.Touch(p.pid, op.Mem.Offset, op.Mem.Length, op.Mem.Write)
		latency += d
		if err != nil {
			if errors.Is(err, memory.ErrOutOfMemory) {
				// The faulting process may itself have been chosen by the
				// OOM killer while touching.
				if p.state != StateExited {
					k.exit(p, ExitOOM)
				}
				return
			}
			panic(fmt.Sprintf("ossim: program of %s touched invalid memory: %v", p.name, err))
		}
		if p.state == StateExited {
			// The OOM killer fired during the touch and chose us.
			return
		}
	}
	if op.IO != nil {
		done := op.IO.Device.Submit(op.IO.Kind, op.IO.Bytes, op.IO.Stream)
		if wait := done - k.eng.Now(); wait > 0 {
			latency += wait
		}
	}
	if latency > 0 {
		p.phase = phaseLatency
		p.pendingCompute = op.Compute
		p.timer = k.eng.Schedule(latency, p.latencyDoneFn)
		return
	}
	k.startCompute(p, op.Compute)
}

// latencyDone fires when the fixed-latency part of an op completes.
func (k *Kernel) latencyDone(p *Process) {
	p.timer = sim.Timer{}
	if p.state == StateExited {
		return
	}
	if p.stopAfterLatency || p.state == StateStopped {
		// SIGTSTP arrived while blocked: now that the I/O finished, stay
		// stopped; the pending compute resumes on SIGCONT.
		p.stopAfterLatency = false
		p.phase = phaseIdle
		k.mem.MarkStopped(p.pid)
		return
	}
	d := p.pendingCompute
	p.pendingCompute = 0
	k.startCompute(p, d)
}

// startCompute begins (or resumes) CPU work of duration d.
func (k *Kernel) startCompute(p *Process, d time.Duration) {
	if d <= 0 {
		p.phase = phaseIdle
		k.runNextOp(p)
		return
	}
	p.phase = phaseCompute
	p.computeRemaining = d
	p.speedSetAt = k.eng.Now()
	k.active = append(k.active, p)
	if k.fullSpeed && len(k.active) <= k.cores {
		// The share regime stays full-speed: only the entrant needs a
		// timer; nobody else's speed changes.
		p.speed = 1
		p.timer = k.eng.Schedule(d, p.computeDoneFn)
		return
	}
	k.rebalance()
}

// leaveCompute removes p from the CPU-sharing set, banking its progress.
func (k *Kernel) leaveCompute(p *Process) {
	k.settle(p)
	k.removeActive(p)
	if k.fullSpeed {
		// Everyone left behind already runs at speed 1; a departure
		// cannot raise shares any further.
		return
	}
	k.rebalance()
}

// removeActive drops p from the compute set, preserving insertion order.
func (k *Kernel) removeActive(p *Process) {
	for i, q := range k.active {
		if q == p {
			k.active = append(k.active[:i], k.active[i+1:]...)
			return
		}
	}
}

// settle updates computeRemaining for the time elapsed at the current
// speed.
func (k *Kernel) settle(p *Process) {
	now := k.eng.Now()
	if p.phase != phaseCompute {
		return
	}
	elapsed := now - p.speedSetAt
	if elapsed <= 0 {
		return
	}
	donework := time.Duration(float64(elapsed) * p.speed)
	if donework > p.computeRemaining {
		donework = p.computeRemaining
	}
	p.computeRemaining -= donework
	p.cpuTime += donework
	p.speedSetAt = now
}

// rebalance recomputes CPU shares for all compute-active processes and
// reschedules their completion timers.
func (k *Kernel) rebalance() {
	n := len(k.active)
	if n == 0 {
		return
	}
	speed := 1.0
	if n > k.cores {
		speed = float64(k.cores) / float64(n)
	}
	now := k.eng.Now()
	for _, p := range k.active {
		if p.speed == speed && speed == 1 && p.timer.Pending() {
			// Full-speed share unchanged: settling is deferred — at speed
			// 1 banking is float-exact over any interval, so the eventual
			// settle (leaveCompute, computeDone, or a share change) banks
			// the same values, and CPUTime accounts the open interval
			// lazily. The existing timer already fires at the right time,
			// so the cancel+reschedule round is skipped too.
			continue
		}
		k.settle(p)
		p.speed = speed
		p.speedSetAt = now
		p.timer.Cancel()
		remainingWall := time.Duration(float64(p.computeRemaining) / speed)
		p.timer = k.eng.Schedule(remainingWall, p.computeDoneFn)
	}
	k.fullSpeed = speed == 1
}

// computeDone fires when a process finishes its compute phase.
func (k *Kernel) computeDone(p *Process) {
	p.timer = sim.Timer{}
	if p.state != StateRunning || p.phase != phaseCompute {
		return
	}
	k.settle(p)
	p.computeRemaining = 0
	k.removeActive(p)
	p.phase = phaseIdle
	if !k.fullSpeed {
		k.rebalance()
	}
	k.runNextOp(p)
}

package ossim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestPropertySignalStormPreservesWork fires random signal sequences at a
// running process and checks the kernel's accounting invariants: the
// process either finishes with its full CPU time delivered, or was
// killed; stopped time and CPU time never exceed wall time; and the
// process table ends empty when the process died.
func TestPropertySignalStormPreservesWork(t *testing.T) {
	type sig struct {
		AtMs uint16
		Sig  uint8
	}
	f := func(storm []sig) bool {
		if len(storm) > 32 {
			storm = storm[:32]
		}
		eng, k, _ := testKernel(t, 1)
		const work = 5 * time.Second
		p, _ := k.Spawn("w", 1<<20, computeProgram(1, work, 0), nil)
		killed := false
		for _, s := range storm {
			s := s
			eng.Schedule(time.Duration(s.AtMs)*time.Millisecond, func() {
				switch s.Sig % 3 {
				case 0:
					k.Signal(p.PID(), SIGTSTP)
				case 1:
					k.Signal(p.PID(), SIGCONT)
				case 2:
					if s.Sig%9 == 2 { // kill rarely
						killed = true
						k.Signal(p.PID(), SIGKILL)
					}
				}
			})
		}
		// Catch-all resume so a trailing stop cannot hang the run.
		eng.Schedule(80*time.Second, func() { k.Signal(p.PID(), SIGCONT) })
		eng.RunUntil(200 * time.Second)

		if p.State() != StateExited {
			t.Logf("process stuck in %v (killed=%v)", p.State(), killed)
			return false
		}
		if k.Processes() != 0 {
			t.Logf("process table not empty")
			return false
		}
		cpu := p.CPUTime()
		if cpu > work+time.Millisecond {
			t.Logf("CPU time %v exceeds the program's work %v", cpu, work)
			return false
		}
		if p.ExitCode() == ExitOK {
			// A normally finished process must have consumed all its work.
			if cpu < work-time.Millisecond {
				t.Logf("finished with only %v of %v CPU", cpu, work)
				return false
			}
		} else if !killed && p.ExitCode() == ExitKilled {
			t.Logf("killed without a SIGKILL being sent")
			return false
		}
		if p.StoppedTime() < 0 || p.StoppedTime() > 200*time.Second {
			t.Logf("implausible stopped time %v", p.StoppedTime())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

package ossim

import (
	"testing"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/memory"
	"hadooppreempt/internal/sim"
)

func testKernel(t *testing.T, cores int) (*sim.Engine, *Kernel, *disk.Device) {
	t.Helper()
	eng := sim.New()
	d := disk.New(eng, "sda", disk.Config{
		SeekTime:       time.Millisecond,
		ReadBandwidth:  100 << 20,
		WriteBandwidth: 100 << 20,
	})
	m, err := memory.New(eng, d, memory.Config{
		PageSize:         4096,
		RAMBytes:         64 << 20,
		SwapBytes:        256 << 20,
		PageClusterPages: 8,
		MinorFaultCost:   time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, NewKernel(eng, "node1", cores, m), d
}

// computeProgram runs n compute steps of d each, then exits with code.
func computeProgram(n int, d time.Duration, code int) Program {
	step := 0
	return ProgramFunc(func(_ *Process, op *Op) {
		if step >= n {
			*op = Op{Done: true, ExitCode: code}
			return
		}
		step++
		*op = Op{Label: "compute", Compute: d}
		return
	})
}

func TestProcessRunsToCompletion(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	exited := -1
	p, err := k.Spawn("worker", 1<<20, computeProgram(5, time.Second, 0),
		func(_ *Process, code int) { exited = code })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if exited != 0 {
		t.Fatalf("exit code = %d, want 0", exited)
	}
	if p.State() != StateExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
	if eng.Now() != 5*time.Second {
		t.Fatalf("finished at %v, want 5s", eng.Now())
	}
	if got := p.CPUTime(); got != 5*time.Second {
		t.Fatalf("CPUTime = %v, want 5s", got)
	}
}

func TestSleepOpAddsLatency(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	done := false
	steps := 0
	prog := ProgramFunc(func(_ *Process, op *Op) {
		steps++
		switch steps {
		case 1:
			*op = Op{Sleep: 2 * time.Second, Compute: time.Second}
			return
		default:
			*op = Op{Done: true}
			return
		}
	})
	k.Spawn("w", 1<<20, prog, func(*Process, int) { done = true })
	eng.Run()
	if !done {
		t.Fatal("process did not exit")
	}
	if eng.Now() != 3*time.Second {
		t.Fatalf("finished at %v, want 3s (2s sleep + 1s compute)", eng.Now())
	}
}

func TestCPUSharingSlowsProcesses(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	var finished []time.Duration
	for i := 0; i < 2; i++ {
		k.Spawn("w", 1<<20, computeProgram(1, 10*time.Second, 0),
			func(*Process, int) { finished = append(finished, eng.Now()) })
	}
	eng.Run()
	if len(finished) != 2 {
		t.Fatalf("finished %d, want 2", len(finished))
	}
	// Two processes sharing one core: both need ~20s of wall time.
	for _, f := range finished {
		if f < 19*time.Second || f > 21*time.Second {
			t.Fatalf("finish at %v, want ~20s under 2-way sharing", f)
		}
	}
}

func TestMultiCoreRunsInParallel(t *testing.T) {
	eng, k, _ := testKernel(t, 2)
	var finished []time.Duration
	for i := 0; i < 2; i++ {
		k.Spawn("w", 1<<20, computeProgram(1, 10*time.Second, 0),
			func(*Process, int) { finished = append(finished, eng.Now()) })
	}
	eng.Run()
	for _, f := range finished {
		if f != 10*time.Second {
			t.Fatalf("finish at %v, want 10s on 2 cores", f)
		}
	}
}

func TestSIGTSTPStopsAndSIGCONTResumes(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	var exitAt time.Duration
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, 10*time.Second, 0),
		func(*Process, int) { exitAt = eng.Now() })
	eng.Schedule(4*time.Second, func() {
		if err := k.Signal(p.PID(), SIGTSTP); err != nil {
			t.Errorf("SIGTSTP: %v", err)
		}
	})
	eng.Schedule(9*time.Second, func() {
		if p.State() != StateStopped {
			t.Errorf("state at 9s = %v, want stopped", p.State())
		}
		if err := k.Signal(p.PID(), SIGCONT); err != nil {
			t.Errorf("SIGCONT: %v", err)
		}
	})
	eng.Run()
	// 4s done before stop, 5s stopped, 6s remaining: exit at 15s.
	if exitAt != 15*time.Second {
		t.Fatalf("exit at %v, want 15s", exitAt)
	}
	if got := p.StoppedTime(); got != 5*time.Second {
		t.Fatalf("StoppedTime = %v, want 5s", got)
	}
	if p.Stops() != 1 || p.Conts() != 1 {
		t.Fatalf("Stops/Conts = %d/%d, want 1/1", p.Stops(), p.Conts())
	}
}

func TestSIGTSTPMarksPagesEvictable(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	steps := 0
	prog := ProgramFunc(func(_ *Process, op *Op) {
		steps++
		switch steps {
		case 1:
			*op = Op{Mem: &MemOp{Offset: 0, Length: 8 << 20, Write: true}, Compute: 100 * time.Second}
			return
		default:
			*op = Op{Done: true}
			return
		}
	})
	p, _ := k.Spawn("w", 8<<20, prog, nil)
	eng.Schedule(time.Second, func() { k.Signal(p.PID(), SIGTSTP) })
	eng.RunUntil(2 * time.Second)
	if k.Memory().ResidentBytes(p.PID()) != 8<<20 {
		t.Fatal("pages should still be resident while stopped (no pressure)")
	}
	// Under pressure, the stopped process's pages go first: spawn a hog.
	hog := ProgramFunc(func(pr *Process, op *Op) {
		if pr.CPUTime() > 0 {
			*op = Op{Done: true}
			return
		}
		*op = Op{Mem: &MemOp{Offset: 0, Length: 60 << 20, Write: true}, Compute: time.Millisecond}
		return
	})
	k.Spawn("hog", 60<<20, hog, nil)
	eng.Run()
	if k.Memory().SwappedBytes(p.PID()) == 0 {
		t.Fatal("stopped process should have been paged out under pressure")
	}
}

func TestSIGKILLTerminatesImmediately(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	code := -1
	p, _ := k.Spawn("w", 4<<20, computeProgram(1, 10*time.Second, 0),
		func(_ *Process, c int) { code = c })
	eng.Schedule(3*time.Second, func() { k.Signal(p.PID(), SIGKILL) })
	eng.Run()
	if code != ExitKilled {
		t.Fatalf("exit code = %d, want %d", code, ExitKilled)
	}
	if eng.Now() != 3*time.Second {
		t.Fatalf("killed at %v, want 3s", eng.Now())
	}
	if k.Memory().ResidentBytes(p.PID()) != 0 {
		t.Fatal("memory should be released on kill")
	}
	if k.Processes() != 0 {
		t.Fatal("process table should be empty")
	}
}

func TestSIGKILLWhileStopped(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	code := -1
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, 10*time.Second, 0),
		func(_ *Process, c int) { code = c })
	eng.Schedule(2*time.Second, func() { k.Signal(p.PID(), SIGTSTP) })
	eng.Schedule(5*time.Second, func() { k.Signal(p.PID(), SIGKILL) })
	eng.Run()
	if code != ExitKilled {
		t.Fatalf("exit code = %d, want %d", code, ExitKilled)
	}
	if got := p.StoppedTime(); got != 3*time.Second {
		t.Fatalf("StoppedTime = %v, want 3s", got)
	}
}

func TestSignalUnknownPIDFails(t *testing.T) {
	_, k, _ := testKernel(t, 1)
	if err := k.Signal(99, SIGTSTP); err == nil {
		t.Fatal("want ErrNoSuchProcess")
	}
}

func TestDoubleStopAndDoubleContAreIdempotent(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, 10*time.Second, 0), nil)
	eng.Schedule(2*time.Second, func() {
		k.Signal(p.PID(), SIGTSTP)
		k.Signal(p.PID(), SIGTSTP)
	})
	eng.Schedule(4*time.Second, func() {
		k.Signal(p.PID(), SIGCONT)
		k.Signal(p.PID(), SIGCONT)
	})
	eng.Run()
	if p.Stops() != 1 || p.Conts() != 1 {
		t.Fatalf("Stops/Conts = %d/%d, want 1/1", p.Stops(), p.Conts())
	}
	// 2s + 2s stopped + 8s remaining = exit at 12s.
	if eng.Now() != 12*time.Second {
		t.Fatalf("exit at %v, want 12s", eng.Now())
	}
}

func TestSIGCONTOnRunningProcessIsNoop(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, 5*time.Second, 0), nil)
	eng.Schedule(time.Second, func() { k.Signal(p.PID(), SIGCONT) })
	eng.Run()
	if eng.Now() != 5*time.Second {
		t.Fatalf("exit at %v, want 5s", eng.Now())
	}
	if p.Conts() != 0 {
		t.Fatalf("Conts = %d, want 0", p.Conts())
	}
}

func TestTSTPHandlerRuns(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	handlerRan := false
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, 10*time.Second, 0), nil)
	p.Handle(SIGTSTP, func(*Process) time.Duration {
		handlerRan = true
		return 50 * time.Millisecond // closing network connections
	})
	eng.Schedule(time.Second, func() { k.Signal(p.PID(), SIGTSTP) })
	eng.Schedule(2*time.Second, func() { k.Signal(p.PID(), SIGCONT) })
	eng.Run()
	if !handlerRan {
		t.Fatal("SIGTSTP handler did not run")
	}
}

func TestSIGKILLCannotBeHandled(t *testing.T) {
	_, k, _ := testKernel(t, 1)
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, time.Second, 0), nil)
	if err := p.Handle(SIGKILL, func(*Process) time.Duration { return 0 }); err == nil {
		t.Fatal("handling SIGKILL should fail")
	}
}

func TestStopDuringIOAppliesAfterCompletion(t *testing.T) {
	eng, k, dev := testKernel(t, 1)
	steps := 0
	prog := ProgramFunc(func(_ *Process, op *Op) {
		steps++
		switch steps {
		case 1:
			// 100 MB at 100 MB/s = ~1s of I/O, then 5s compute.
			*op = Op{
				IO:      &IOOp{Device: dev, Kind: disk.Read, Bytes: 100 << 20, Stream: 1},
				Compute: 5 * time.Second,
			}
		default:
			*op = Op{Done: true}
			return
		}
	})
	var exitAt time.Duration
	p, _ := k.Spawn("w", 1<<20, prog, func(*Process, int) { exitAt = eng.Now() })
	// Signal arrives mid-I/O at 0.5s; the process stops when the I/O
	// completes (~1s) and resumes at 3s.
	eng.Schedule(500*time.Millisecond, func() { k.Signal(p.PID(), SIGTSTP) })
	eng.Schedule(3*time.Second, func() { k.Signal(p.PID(), SIGCONT) })
	eng.Run()
	// I/O ~1.001s + stopped until 3s + 5s compute = ~8s.
	if exitAt < 7900*time.Millisecond || exitAt > 8100*time.Millisecond {
		t.Fatalf("exit at %v, want ~8s", exitAt)
	}
}

func TestContBeforeIOCompletesCancelsStop(t *testing.T) {
	eng, k, dev := testKernel(t, 1)
	steps := 0
	prog := ProgramFunc(func(_ *Process, op *Op) {
		steps++
		switch steps {
		case 1:
			*op = Op{
				IO:      &IOOp{Device: dev, Kind: disk.Read, Bytes: 100 << 20, Stream: 1},
				Compute: 2 * time.Second,
			}
		default:
			*op = Op{Done: true}
			return
		}
	})
	var exitAt time.Duration
	p, _ := k.Spawn("w", 1<<20, prog, func(*Process, int) { exitAt = eng.Now() })
	eng.Schedule(200*time.Millisecond, func() { k.Signal(p.PID(), SIGTSTP) })
	eng.Schedule(400*time.Millisecond, func() { k.Signal(p.PID(), SIGCONT) })
	eng.Run()
	// The stop never took effect at a phase boundary: ~1s I/O + 2s compute.
	if exitAt < 2900*time.Millisecond || exitAt > 3200*time.Millisecond {
		t.Fatalf("exit at %v, want ~3s", exitAt)
	}
}

func TestMemoryTouchLatencyChargedToProcess(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	// First process dirties most of RAM and stops; second must reclaim.
	steps1 := 0
	prog1 := ProgramFunc(func(_ *Process, op *Op) {
		steps1++
		switch steps1 {
		case 1:
			*op = Op{Mem: &MemOp{Offset: 0, Length: 56 << 20, Write: true}, Compute: time.Hour}
			return
		default:
			*op = Op{Done: true}
			return
		}
	})
	p1, _ := k.Spawn("tl", 56<<20, prog1, nil)
	eng.RunUntil(time.Second)
	k.Signal(p1.PID(), SIGTSTP)

	var exitAt time.Duration
	start := eng.Now()
	steps2 := 0
	prog2 := ProgramFunc(func(_ *Process, op *Op) {
		steps2++
		switch steps2 {
		case 1:
			*op = Op{Mem: &MemOp{Offset: 0, Length: 40 << 20, Write: true}, Compute: time.Second}
			return
		default:
			*op = Op{Done: true}
			return
		}
	})
	k.Spawn("th", 40<<20, prog2, func(*Process, int) { exitAt = eng.Now() })
	eng.RunUntil(30 * time.Second)
	if exitAt == 0 {
		t.Fatal("th did not finish")
	}
	elapsed := exitAt - start
	if elapsed <= time.Second {
		t.Fatalf("th took %v, want > 1s (page-out latency must be charged)", elapsed)
	}
	if k.Memory().SwappedBytes(p1.PID()) == 0 {
		t.Fatal("tl should have been paged out")
	}
}

func TestOOMKillsLargestResident(t *testing.T) {
	eng := sim.New()
	d := disk.New(eng, "sda", disk.Config{
		SeekTime: time.Millisecond, ReadBandwidth: 100 << 20, WriteBandwidth: 100 << 20,
	})
	m, err := memory.New(eng, d, memory.Config{
		PageSize: 4096, RAMBytes: 16 << 20, SwapBytes: 1 << 20,
		PageClusterPages: 8, MinorFaultCost: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := NewKernel(eng, "node1", 1, m)
	hogProg := func() Program {
		steps := 0
		return ProgramFunc(func(_ *Process, op *Op) {
			steps++
			if steps == 1 {
				*op = Op{Mem: &MemOp{Offset: 0, Length: 12 << 20, Write: true}, Compute: time.Hour}
				return
			}
			*op = Op{Done: true}
			return
		})
	}
	code1 := -1
	k.Spawn("big", 12<<20, hogProg(), func(_ *Process, c int) { code1 = c })
	eng.RunUntil(time.Second)
	k.Spawn("second", 12<<20, hogProg(), nil)
	eng.RunUntil(10 * time.Second)
	if code1 != ExitOOM {
		t.Fatalf("big process exit = %d, want OOM kill (%d)", code1, ExitOOM)
	}
}

func TestSpawnFailsWhenMemoryRegisterFails(t *testing.T) {
	_, k, _ := testKernel(t, 1)
	if _, err := k.Spawn("bad", -5, computeProgram(1, time.Second, 0), nil); err == nil {
		t.Fatal("negative memory should fail")
	}
}

func TestStateStrings(t *testing.T) {
	if StateRunning.String() != "running" || StateStopped.String() != "stopped" || StateExited.String() != "exited" {
		t.Fatal("state strings wrong")
	}
	if SIGTSTP.String() != "SIGTSTP" || SIGCONT.String() != "SIGCONT" ||
		SIGKILL.String() != "SIGKILL" || SIGTERM.String() != "SIGTERM" {
		t.Fatal("signal strings wrong")
	}
}

func TestExitCallbackDeliveredOnce(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	calls := 0
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, time.Second, 0),
		func(*Process, int) { calls++ })
	eng.Schedule(2*time.Second, func() { k.Signal(p.PID(), SIGKILL) }) // already exited
	eng.Run()
	if calls != 1 {
		t.Fatalf("onExit calls = %d, want 1", calls)
	}
}

func TestSuspendResumeCyclePreservesTotalWork(t *testing.T) {
	// Property-style check: for several suspend points, total CPU time is
	// unchanged and wall time = work + stopped interval.
	for _, stopAt := range []time.Duration{1 * time.Second, 3 * time.Second, 7 * time.Second} {
		eng, k, _ := testKernel(t, 1)
		var exitAt time.Duration
		p, _ := k.Spawn("w", 1<<20, computeProgram(1, 8*time.Second, 0),
			func(*Process, int) { exitAt = eng.Now() })
		resumeAt := stopAt + 2*time.Second
		eng.Schedule(stopAt, func() { k.Signal(p.PID(), SIGTSTP) })
		eng.Schedule(resumeAt, func() { k.Signal(p.PID(), SIGCONT) })
		eng.Run()
		want := 10 * time.Second // 8s work + 2s stopped
		if exitAt != want {
			t.Fatalf("stopAt=%v: exit at %v, want %v", stopAt, exitAt, want)
		}
		if got := p.CPUTime(); got < 8*time.Second-time.Millisecond || got > 8*time.Second+time.Millisecond {
			t.Fatalf("stopAt=%v: CPUTime = %v, want ~8s", stopAt, got)
		}
	}
}

package ossim

import (
	"testing"
	"time"
)

func TestSIGCONTHandlerDelaysResumption(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	var exitAt time.Duration
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, 10*time.Second, 0),
		func(*Process, int) { exitAt = eng.Now() })
	p.Handle(SIGCONT, func(*Process) time.Duration { return 2 * time.Second })
	eng.Schedule(4*time.Second, func() { k.Signal(p.PID(), SIGTSTP) })
	eng.Schedule(6*time.Second, func() { k.Signal(p.PID(), SIGCONT) })
	eng.Run()
	// 4s done + 2s stopped + 2s reconnect handler + 6s remaining = 14s.
	if exitAt != 14*time.Second {
		t.Fatalf("exit at %v, want 14s (2s handler delay)", exitAt)
	}
}

func TestSIGCONTHandlerWithNoPendingCompute(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	// Stop the process at spawn time (phaseIdle), then resume with a
	// handler: the first op must start only after the handler latency.
	var exitAt time.Duration
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, 3*time.Second, 0),
		func(*Process, int) { exitAt = eng.Now() })
	p.Handle(SIGCONT, func(*Process) time.Duration { return time.Second })
	k.Signal(p.PID(), SIGTSTP) // before the spawn event fires
	eng.Schedule(5*time.Second, func() { k.Signal(p.PID(), SIGCONT) })
	eng.Run()
	// Stopped until 5s + 1s handler + 3s compute = 9s.
	if exitAt != 9*time.Second {
		t.Fatalf("exit at %v, want 9s", exitAt)
	}
}

func TestStopDuringCONTHandlerWindow(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	var exitAt time.Duration
	p, _ := k.Spawn("w", 1<<20, computeProgram(1, 10*time.Second, 0),
		func(*Process, int) { exitAt = eng.Now() })
	p.Handle(SIGCONT, func(*Process) time.Duration { return 2 * time.Second })
	eng.Schedule(4*time.Second, func() { k.Signal(p.PID(), SIGTSTP) })
	eng.Schedule(6*time.Second, func() { k.Signal(p.PID(), SIGCONT) })
	// Second stop lands inside the reconnect window (6s..8s).
	eng.Schedule(7*time.Second, func() { k.Signal(p.PID(), SIGTSTP) })
	eng.Schedule(10*time.Second, func() { k.Signal(p.PID(), SIGCONT) })
	eng.Run()
	if p.State() != StateExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
	// Work must complete eventually with total compute preserved.
	if got := p.CPUTime(); got < 10*time.Second-time.Millisecond {
		t.Fatalf("CPUTime = %v, want ~10s", got)
	}
	if exitAt < 14*time.Second {
		t.Fatalf("exit at %v, want >= 14s given the two stop windows", exitAt)
	}
}

func TestMemoryStatsSurviveExit(t *testing.T) {
	eng, k, _ := testKernel(t, 1)
	steps := 0
	prog := ProgramFunc(func(_ *Process, op *Op) {
		steps++
		if steps == 1 {
			*op = Op{Mem: &MemOp{Offset: 0, Length: 8 << 20, Write: true}, Compute: time.Second}
			return
		}
		*op = Op{Done: true}
		return
	})
	p, _ := k.Spawn("w", 8<<20, prog, nil)
	eng.Run()
	st := p.MemoryStats()
	if st.MinorFaults == 0 {
		t.Fatal("final memory stats should record the faults")
	}
	if k.Memory().Space(p.PID()) != nil {
		t.Fatal("space should be released after exit")
	}
}

package disk

import (
	"testing"
	"testing/quick"
	"time"

	"hadooppreempt/internal/sim"
)

func testDevice() (*sim.Engine, *Device) {
	eng := sim.New()
	cfg := Config{
		SeekTime:       10 * time.Millisecond,
		ReadBandwidth:  100e6, // 100 MB/s
		WriteBandwidth: 50e6,  // 50 MB/s
	}
	return eng, New(eng, "sda", cfg)
}

func TestSubmitReadDuration(t *testing.T) {
	_, d := testDevice()
	// 100 MB at 100 MB/s = 1 s + 10 ms seek.
	at := d.Submit(Read, 100e6, NoStream)
	want := time.Second + 10*time.Millisecond
	if at != want {
		t.Fatalf("completion = %v, want %v", at, want)
	}
}

func TestSubmitWriteUsesWriteBandwidth(t *testing.T) {
	_, d := testDevice()
	at := d.Submit(Write, 50e6, NoStream)
	want := time.Second + 10*time.Millisecond
	if at != want {
		t.Fatalf("completion = %v, want %v", at, want)
	}
}

func TestRequestsSerialise(t *testing.T) {
	_, d := testDevice()
	first := d.Submit(Read, 100e6, NoStream)
	second := d.Submit(Read, 100e6, NoStream)
	if second <= first {
		t.Fatalf("second request (%v) should complete after first (%v)", second, first)
	}
	want := first + time.Second + 10*time.Millisecond
	if second != want {
		t.Fatalf("second completion = %v, want %v", second, want)
	}
}

func TestSequentialStreamSkipsSeek(t *testing.T) {
	_, d := testDevice()
	const stream StreamID = 7
	first := d.Submit(Read, 100e6, stream)
	second := d.Submit(Read, 100e6, stream)
	if got, want := second-first, time.Second; got != want {
		t.Fatalf("sequential continuation took %v, want %v (no seek)", got, want)
	}
	if d.Stats().Seeks != 1 {
		t.Fatalf("Seeks = %d, want 1", d.Stats().Seeks)
	}
}

func TestStreamSwitchPaysSeek(t *testing.T) {
	_, d := testDevice()
	d.Submit(Read, 1e6, 1)
	d.Submit(Read, 1e6, 2)
	d.Submit(Read, 1e6, 1)
	if d.Stats().Seeks != 3 {
		t.Fatalf("Seeks = %d, want 3 (every switch seeks)", d.Stats().Seeks)
	}
}

func TestNoStreamAlwaysSeeks(t *testing.T) {
	_, d := testDevice()
	d.Submit(Read, 1e6, NoStream)
	d.Submit(Read, 1e6, NoStream)
	if d.Stats().Seeks != 2 {
		t.Fatalf("Seeks = %d, want 2", d.Stats().Seeks)
	}
}

func TestZeroByteRequestIsFree(t *testing.T) {
	_, d := testDevice()
	at := d.Submit(Read, 0, NoStream)
	if at != 0 {
		t.Fatalf("zero-byte completion = %v, want 0", at)
	}
	s := d.Stats()
	if s.Reads != 0 || s.Seeks != 0 {
		t.Fatalf("zero-byte request recorded activity: %+v", s)
	}
}

func TestIdleDeviceStartsAtNow(t *testing.T) {
	eng, d := testDevice()
	eng.RunUntil(5 * time.Second)
	at := d.Submit(Read, 100e6, NoStream)
	want := 5*time.Second + time.Second + 10*time.Millisecond
	if at != want {
		t.Fatalf("completion = %v, want %v", at, want)
	}
}

func TestTransferCallback(t *testing.T) {
	eng, d := testDevice()
	var doneAt time.Duration = -1
	d.Transfer(Write, 50e6, NoStream, func() { doneAt = eng.Now() })
	eng.Run()
	want := time.Second + 10*time.Millisecond
	if doneAt != want {
		t.Fatalf("callback at %v, want %v", doneAt, want)
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, d := testDevice()
	d.Submit(Read, 10e6, NoStream)
	d.Submit(Write, 20e6, NoStream)
	d.Submit(Read, 5e6, NoStream)
	s := d.Stats()
	if s.BytesRead != 15e6 {
		t.Errorf("BytesRead = %d, want 15e6", s.BytesRead)
	}
	if s.BytesWritten != 20e6 {
		t.Errorf("BytesWritten = %d, want 20e6", s.BytesWritten)
	}
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("Reads/Writes = %d/%d, want 2/1", s.Reads, s.Writes)
	}
}

func TestEstimateDoesNotQueue(t *testing.T) {
	_, d := testDevice()
	est := d.Estimate(Read, 100e6)
	want := time.Second + 10*time.Millisecond
	if est != want {
		t.Fatalf("Estimate = %v, want %v", est, want)
	}
	if d.BusyUntil() != 0 {
		t.Fatal("Estimate must not occupy the device")
	}
	if d.Stats() != (Stats{}) {
		t.Fatal("Estimate must not touch stats")
	}
}

func TestNegativeBytesPanics(t *testing.T) {
	_, d := testDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer should panic")
		}
	}()
	d.Submit(Read, -1, NoStream)
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("Kind strings wrong: %q %q", Read, Write)
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatalf("unknown kind string: %q", Kind(99))
	}
}

// Property: the device never completes a request before it was submitted
// plus its pure transfer time, and busy time equals the sum of individual
// durations (the device never does work for free).
func TestPropertyDeviceConservation(t *testing.T) {
	f := func(sizes []uint32, writes []bool) bool {
		_, d := testDevice()
		var prev time.Duration
		for i, sz := range sizes {
			kind := Read
			if i < len(writes) && writes[i] {
				kind = Write
			}
			bytes := int64(sz % 10e6)
			at := d.Submit(kind, bytes, NoStream)
			if at < prev {
				return false // completions must be monotonic
			}
			if bytes > 0 {
				minDur := d.Estimate(kind, bytes) - d.Config().SeekTime
				if at-prev < minDur {
					return false // faster than bandwidth allows
				}
			}
			prev = at
		}
		return d.BusyUntil() == d.Stats().BusyTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

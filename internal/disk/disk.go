// Package disk models a rotational disk device for the simulated cluster.
//
// The model captures the two properties the paper's analysis depends on:
// sequential transfers run at full bandwidth while scattered transfers pay a
// positioning (seek) penalty, and the device serialises requests, so
// concurrent I/O streams (e.g. HDFS block reads and swap page-out traffic)
// contend for the same head.
package disk

import (
	"fmt"
	"time"

	"hadooppreempt/internal/sim"
)

// Kind distinguishes read requests from write requests.
type Kind int

const (
	// Read transfers data from the device.
	Read Kind = iota + 1
	// Write transfers data to the device.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes a disk device.
type Config struct {
	// SeekTime is the average positioning cost paid by a non-sequential
	// request.
	SeekTime time.Duration
	// ReadBandwidth is the sequential read throughput in bytes/second.
	ReadBandwidth float64
	// WriteBandwidth is the sequential write throughput in bytes/second.
	WriteBandwidth float64
}

// DefaultConfig returns parameters typical of the 7200rpm SATA drives in
// 2014-era Hadoop nodes: 8ms average seek, 130MB/s sequential read,
// 120MB/s sequential write.
func DefaultConfig() Config {
	return Config{
		SeekTime:       8 * time.Millisecond,
		ReadBandwidth:  130e6,
		WriteBandwidth: 120e6,
	}
}

// Stats aggregates device activity counters.
type Stats struct {
	// BytesRead and BytesWritten count payload bytes transferred.
	BytesRead    int64
	BytesWritten int64
	// Reads and Writes count requests.
	Reads  int64
	Writes int64
	// Seeks counts positioning operations (non-sequential requests).
	Seeks int64
	// BusyTime accumulates total time the device spent servicing requests.
	BusyTime time.Duration
}

// Device is a simulated disk. It serialises requests: a request issued
// while the device is busy is queued behind the in-flight work, and its
// completion time reflects the wait.
type Device struct {
	eng  *sim.Engine
	cfg  Config
	name string

	// busyUntil is the virtual time at which all accepted work completes.
	busyUntil time.Duration
	// lastStream tags the stream of the most recent request, so that
	// back-to-back requests from the same stream skip the seek penalty.
	lastStream StreamID

	stats Stats
}

// StreamID identifies a logically sequential I/O stream (one HDFS block
// read, the swap write stream, ...). Consecutive requests with the same
// non-zero stream ID are treated as sequential and skip the seek penalty.
type StreamID uint64

// NoStream marks a request as standalone: it always pays a seek.
const NoStream StreamID = 0

// New returns a device attached to the engine. The name is used in error
// and trace messages.
func New(eng *sim.Engine, name string, cfg Config) *Device {
	if cfg.ReadBandwidth <= 0 || cfg.WriteBandwidth <= 0 {
		panic("disk: bandwidth must be positive")
	}
	if cfg.SeekTime < 0 {
		panic("disk: negative seek time")
	}
	return &Device{eng: eng, cfg: cfg, name: name}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Config returns the device parameters.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// BusyUntil reports the virtual time at which currently accepted work
// completes.
func (d *Device) BusyUntil() time.Duration { return d.busyUntil }

// transferTime converts a byte count to pure transfer duration.
func (d *Device) transferTime(kind Kind, bytes int64) time.Duration {
	bw := d.cfg.ReadBandwidth
	if kind == Write {
		bw = d.cfg.WriteBandwidth
	}
	sec := float64(bytes) / bw
	return time.Duration(sec * float64(time.Second))
}

// Submit queues a transfer of bytes and returns the virtual time at which
// it completes. A request whose stream matches the immediately preceding
// request is sequential and pays no seek. Zero-byte requests complete at
// the device's current availability time without a seek.
func (d *Device) Submit(kind Kind, bytes int64, stream StreamID) time.Duration {
	if bytes < 0 {
		panic(fmt.Sprintf("disk %s: negative transfer size %d", d.name, bytes))
	}
	start := d.busyUntil
	if now := d.eng.Now(); start < now {
		start = now
	}
	if bytes == 0 {
		return start
	}
	var seek time.Duration
	if stream == NoStream || stream != d.lastStream {
		seek = d.cfg.SeekTime
		d.stats.Seeks++
	}
	d.lastStream = stream
	dur := seek + d.transferTime(kind, bytes)
	d.busyUntil = start + dur
	d.stats.BusyTime += dur
	switch kind {
	case Read:
		d.stats.Reads++
		d.stats.BytesRead += bytes
	case Write:
		d.stats.Writes++
		d.stats.BytesWritten += bytes
	default:
		panic(fmt.Sprintf("disk %s: unknown kind %d", d.name, int(kind)))
	}
	return d.busyUntil
}

// Transfer queues a request and invokes done when it completes.
func (d *Device) Transfer(kind Kind, bytes int64, stream StreamID, done func()) {
	at := d.Submit(kind, bytes, stream)
	if done != nil {
		d.eng.At(at, done)
	}
}

// Estimate returns the duration a transfer of bytes would take on an idle
// device, including one seek, without queueing anything.
func (d *Device) Estimate(kind Kind, bytes int64) time.Duration {
	return d.cfg.SeekTime + d.transferTime(kind, bytes)
}

// Package coord turns the sweep harness into an elastic multi-machine
// grid service. A coordinator serves lease-based work units — batches of
// grid cell indices — over a small HTTP+JSON protocol, and workers run
// any sweep.Backend locally, streaming shard-encoded group aggregates
// back. Leases are re-issued when a worker goes silent past the lease
// TTL, and speculatively duplicated — "stolen" — when a worker drains
// the queue early, so uneven cell costs never leave capacity idle.
//
// The coordinator accepts the first result per lease, discards
// duplicates, and folds every accepted upload into one running
// aggregate immediately (sweep.Accumulator), so its memory is bounded
// by the sweep's group structure and sample volume, not by the lease
// count. Because cell seeds derive from grid coordinates (see
// sweep.Grid.Points) and aggregates retain raw sample multisets, the
// merged result is byte-identical to a single-process sweep regardless
// of worker count, join order, steals, re-issues — or the order uploads
// were folded in.
//
// A coordinator is durable and long-lived: it checkpoints its state
// (sweep identity fingerprints, the lease ledger, the running
// aggregate) to a file after every accepted upload, so a coordinator
// killed mid-sweep restarts with Config.Resume and finishes from its
// last durable lease, still byte-identical to the single-process run.
// It also queues multiple sweeps on one listener, activating them in
// order, and reports progress over GET /v1/status.
//
// Protocol (endpoints rooted at /v1; all POST JSON except status):
//
//	/v1/join    worker introduces itself; the coordinator matches the
//	            worker's grid (structure fingerprint, cell count,
//	            backend name and content fingerprint) against its sweep
//	            queue and replies with the sweep index, seed and
//	            collapse axes — or "queued" if the matching sweep has
//	            not started yet (the worker polls until it has).
//	/v1/lease   worker asks for work on its sweep; the coordinator
//	            replies with a lease (id + cell indices), wait (poll
//	            again shortly), done (sweep complete) or abort (another
//	            worker failed).
//	/v1/result  worker uploads a lease's result as a shard-encoded
//	            Collapsed (sweep.WriteShard bytes), or reports the cell
//	            error that stopped it.
//	/v1/status  GET: queue-wide progress — per-sweep cells done/total
//	            and lease ledger, per-worker throughput, ETA.
package coord

import (
	"encoding/json"

	"hadooppreempt/internal/sweep"
)

// protocolVersion guards against coordinator/worker skew; bump it when
// the wire format changes. Version 2 added sweep queue indices to every
// request and the queued join status. Version 3 added the retry verdict
// on result acks (per-lease failure budget) and idempotent replay
// acknowledgement of duplicated uploads.
const protocolVersion = 3

// Join-response statuses.
const (
	joinOK     = "ok"
	joinQueued = "queued"
)

// Lease-response statuses.
const (
	statusLease = "lease"
	statusWait  = "wait"
	statusDone  = "done"
	statusAbort = "abort"
)

// joinRequest introduces a worker to the coordinator.
type joinRequest struct {
	Proto int `json:"proto"`
	// Backend is the worker's execution engine name ("sim", "replay",
	// "real").
	Backend string `json:"backend"`
	// Fingerprint is the worker's sweep.Grid.Fingerprint: proof the
	// worker enumerates the same cells with the same seeds.
	Fingerprint string `json:"fingerprint"`
	// BackendFP is the backend's content fingerprint (see
	// Fingerprinter), covering data the grid structure cannot — e.g.
	// the replay trace. Empty when the backend does not implement it.
	BackendFP string `json:"backend_fp,omitempty"`
	// Cells is the worker's grid size, a cheap cross-check.
	Cells int `json:"cells"`
}

// joinResponse hands the worker its identity and the sweep parameters
// the coordinator governs — or tells it the matching sweep is still
// queued, in which case the worker polls join again after RetryMS.
type joinResponse struct {
	Status   string   `json:"status"`
	Worker   string   `json:"worker,omitempty"`
	Sweep    int      `json:"sweep"`
	Seed     uint64   `json:"seed"`
	Collapse []string `json:"collapse,omitempty"`
	RetryMS  int      `json:"retry_ms,omitempty"`
}

// leaseRequest asks for the next work unit of the worker's sweep.
type leaseRequest struct {
	Worker string `json:"worker"`
	Sweep  int    `json:"sweep"`
}

// leaseResponse is one of: a lease, a wait hint, done, or abort.
type leaseResponse struct {
	Status  string `json:"status"`
	Lease   int    `json:"lease,omitempty"`
	Cells   []int  `json:"cells,omitempty"`
	RetryMS int    `json:"retry_ms,omitempty"`
	Error   string `json:"error,omitempty"`
}

// resultRequest uploads a lease's outcome: either the shard-encoded
// Collapsed bytes or the error that stopped the worker.
type resultRequest struct {
	Worker string `json:"worker"`
	Sweep  int    `json:"sweep"`
	Lease  int    `json:"lease"`
	// Attempt identifies one lease execution, so a report re-delivered
	// by retries or duplication (at-least-once transport) is charged
	// against the lease failure budget exactly once.
	Attempt string          `json:"attempt,omitempty"`
	Error   string          `json:"error,omitempty"`
	Shard   json.RawMessage `json:"shard,omitempty"`
}

// resultResponse acknowledges an upload. Accepted is false for
// duplicates (a stolen lease's losing copy) — not an error; a replayed
// upload from the worker whose copy already won is re-acknowledged with
// Accepted true (at-least-once delivery must converge on the same ack).
// Done tells the worker its sweep is complete so it need not poll
// again. Retry acknowledges a reported cell error that stayed within
// the lease failure budget: the lease is re-queued and the worker
// should keep serving rather than bail.
type resultResponse struct {
	Accepted bool `json:"accepted"`
	Done     bool `json:"done"`
	Retry    bool `json:"retry,omitempty"`
}

// errorResponse carries a protocol-level rejection (join refused,
// unknown lease).
type errorResponse struct {
	Error string `json:"error"`
}

// Fingerprinter lets a backend contribute a content signature to the
// join compatibility check. Grid fingerprints cover structure only; a
// backend whose cells depend on external data — the replay backend's
// trace file — should implement Fingerprint over that data so workers
// holding a different copy are rejected instead of silently corrupting
// the merge.
type Fingerprinter interface {
	Fingerprint() string
}

// BackendFingerprint returns the backend's content fingerprint, or ""
// when the backend does not implement Fingerprinter. It delegates to
// the sweep package's reflection of the same contract, so join checks
// and cell-cache keys always agree on a backend's content identity.
func BackendFingerprint(b sweep.Backend) string {
	return sweep.BackendFingerprint(b)
}

// Package coord turns the sweep harness into an elastic multi-machine
// grid engine. A coordinator serves lease-based work units — batches of
// grid cell indices — over a small HTTP+JSON protocol, and workers run
// any sweep.Backend locally, streaming shard-encoded group aggregates
// back. Leases are re-issued when a worker goes silent past the lease
// TTL, and speculatively duplicated — "stolen" — when a worker drains
// the queue early, so uneven cell costs never leave capacity idle.
//
// The coordinator accepts the first result per lease and discards
// duplicates. Because cell seeds derive from grid coordinates (see
// sweep.Grid.Points), the accepted result for a lease is identical no
// matter which worker ran it, and the final merge — sweep.MergeSubsets
// over raw per-group sample multisets, in lease order — is
// byte-identical to a single-process sweep regardless of worker count,
// join order, steals or re-issues.
//
// Protocol (all endpoints POST JSON, rooted at /v1):
//
//	/v1/join    worker introduces itself; the coordinator verifies the
//	            worker enumerates the same grid (structure fingerprint,
//	            cell count, backend name and content fingerprint) and
//	            replies with the sweep seed and collapse axes.
//	/v1/lease   worker asks for work; the coordinator replies with a
//	            lease (id + cell indices), wait (poll again shortly),
//	            done (sweep complete) or abort (another worker failed).
//	/v1/result  worker uploads a lease's result as a shard-encoded
//	            Collapsed (sweep.WriteShard bytes), or reports the cell
//	            error that stopped it.
package coord

import (
	"encoding/json"

	"hadooppreempt/internal/sweep"
)

// protocolVersion guards against coordinator/worker skew; bump it when
// the wire format changes.
const protocolVersion = 1

// Lease-response statuses.
const (
	statusLease = "lease"
	statusWait  = "wait"
	statusDone  = "done"
	statusAbort = "abort"
)

// joinRequest introduces a worker to the coordinator.
type joinRequest struct {
	Proto int `json:"proto"`
	// Backend is the worker's execution engine name ("sim", "replay",
	// "real").
	Backend string `json:"backend"`
	// Fingerprint is the worker's sweep.Grid.Fingerprint: proof the
	// worker enumerates the same cells with the same seeds.
	Fingerprint string `json:"fingerprint"`
	// BackendFP is the backend's content fingerprint (see
	// Fingerprinter), covering data the grid structure cannot — e.g.
	// the replay trace. Empty when the backend does not implement it.
	BackendFP string `json:"backend_fp,omitempty"`
	// Cells is the worker's grid size, a cheap cross-check.
	Cells int `json:"cells"`
}

// joinResponse hands the worker its identity and the sweep parameters
// the coordinator governs.
type joinResponse struct {
	Worker   string   `json:"worker"`
	Seed     uint64   `json:"seed"`
	Collapse []string `json:"collapse,omitempty"`
}

// leaseRequest asks for the next work unit.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseResponse is one of: a lease, a wait hint, done, or abort.
type leaseResponse struct {
	Status  string `json:"status"`
	Lease   int    `json:"lease,omitempty"`
	Cells   []int  `json:"cells,omitempty"`
	RetryMS int    `json:"retry_ms,omitempty"`
	Error   string `json:"error,omitempty"`
}

// resultRequest uploads a lease's outcome: either the shard-encoded
// Collapsed bytes or the error that stopped the worker.
type resultRequest struct {
	Worker string          `json:"worker"`
	Lease  int             `json:"lease"`
	Error  string          `json:"error,omitempty"`
	Shard  json.RawMessage `json:"shard,omitempty"`
}

// resultResponse acknowledges an upload. Accepted is false for
// duplicates (a stolen lease's losing copy) — not an error. Done tells
// the worker the whole sweep is complete so it need not poll again.
type resultResponse struct {
	Accepted bool `json:"accepted"`
	Done     bool `json:"done"`
}

// errorResponse carries a protocol-level rejection (join refused,
// unknown lease).
type errorResponse struct {
	Error string `json:"error"`
}

// Fingerprinter lets a backend contribute a content signature to the
// join compatibility check. Grid fingerprints cover structure only; a
// backend whose cells depend on external data — the replay backend's
// trace file — should implement Fingerprint over that data so workers
// holding a different copy are rejected instead of silently corrupting
// the merge.
type Fingerprinter interface {
	Fingerprint() string
}

// BackendFingerprint returns the backend's content fingerprint, or ""
// when the backend does not implement Fingerprinter.
func BackendFingerprint(b sweep.Backend) string {
	if f, ok := b.(Fingerprinter); ok {
		return f.Fingerprint()
	}
	return ""
}

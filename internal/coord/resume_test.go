package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hadooppreempt/internal/sim"
	"hadooppreempt/internal/sweep"
)

// TestCoordinatorKillResumeProperty is the coordinator-loss mirror of
// the worker-loss parity property: for random grids, collapse sets and
// kill points, a coordinator killed cold after k accepted uploads (no
// drain, no graceful shutdown — only what the checkpoint made durable)
// and restarted with Resume finishes the sweep byte-identically to a
// single-process run, without re-running the leases that were already
// durable.
func TestCoordinatorKillResumeProperty(t *testing.T) {
	rng := sim.NewRNG(20260807)
	for trial := 0; trial < 10; trial++ {
		g := randomGrid(rng)
		collapse := randomCollapse(rng, g)
		seed := rng.Uint64()
		want, err := sweep.RunBackend(&testBackend{g: g}, sweep.Options{Parallel: 4, Seed: seed}, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		ckpt := filepath.Join(t.TempDir(), "coord.ckpt")
		cfg := Config{
			Addr:       "127.0.0.1:0",
			LeaseCells: 1 + rng.Intn(3),
			LeaseTTL:   time.Minute,
			DoneGrace:  200 * time.Millisecond,
			Checkpoint: ckpt,
		}
		c1 := New(cfg)
		if err := c1.Start(g, seed, collapse...); err != nil {
			t.Fatal(err)
		}
		// Upload k leases through the first incarnation, then kill it
		// cold. The kill point ranges over the whole sweep, including
		// "before any upload" and "after the last one".
		leases := (g.Size() + cfg.LeaseCells - 1) / cfg.LeaseCells
		kill := rng.Intn(leases + 1)
		rc := newRawClient(t, c1, g)
		for k := 0; k < kill; k++ {
			lr := rc.lease()
			if lr.Status != statusLease {
				t.Fatalf("trial %d: upload %d got %q, want a lease", trial, k, lr.Status)
			}
			rc.upload(g, lr, 2)
		}
		c1.Close()

		cfg.Resume = true
		c2 := New(cfg)
		if err := c2.Start(g, seed, collapse...); err != nil {
			t.Fatalf("trial %d (kill=%d/%d): resume: %v", trial, kill, leases, err)
		}
		st := c2.Status()
		if st.Sweeps[0].LeasesDone != kill {
			t.Fatalf("trial %d: resumed with %d leases done, checkpoint had %d",
				trial, st.Sweeps[0].LeasesDone, kill)
		}
		if err := RunWorker(context.Background(), WorkerConfig{
			Addr: c2.Addr(), Backend: &testBackend{g: g}, Parallel: 2,
		}); err != nil {
			t.Fatalf("trial %d: worker after resume: %v", trial, err)
		}
		got, err := c2.Wait(context.Background())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c2.Drain()
		if encodeAll(t, got) != encodeAll(t, want) {
			t.Fatalf("trial %d (cells=%d kill=%d/%d): resumed output differs from single-process",
				trial, g.Size(), kill, leases)
		}
	}
}

// partialCheckpoint runs a coordinator through part of a sweep and
// kills it, returning the checkpoint path and the sweep parameters.
func partialCheckpoint(t *testing.T, dir string) (string, sweep.Grid, uint64) {
	t.Helper()
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(4))
	ckpt := filepath.Join(dir, "coord.ckpt")
	c := New(Config{
		Addr: "127.0.0.1:0", LeaseCells: 2, LeaseTTL: time.Minute, Checkpoint: ckpt,
	})
	if err := c.Start(g, 11, "rep"); err != nil {
		t.Fatal(err)
	}
	rc := newRawClient(t, c, g)
	lr := rc.lease()
	if lr.Status != statusLease {
		t.Fatalf("got %q, want a lease", lr.Status)
	}
	rc.upload(g, lr, 1)
	c.Close()
	return ckpt, g, 11
}

// resumeWith builds a fresh coordinator over the same sweep and tries
// to restore the given checkpoint file.
func resumeWith(t *testing.T, ckpt string, g sweep.Grid, seed uint64, leaseCells int) error {
	t.Helper()
	c := New(Config{Addr: "127.0.0.1:0", LeaseCells: leaseCells, LeaseTTL: time.Minute})
	if _, err := c.Enqueue(Sweep{Grid: g, Seed: seed, Collapse: []string{"rep"}}); err != nil {
		t.Fatal(err)
	}
	return c.Restore(ckpt)
}

// TestCheckpointRobustness: truncated, tampered and mismatched
// checkpoint files fail resume with clear errors instead of silently
// corrupting the sweep — the coordinator-state mirror of the shard
// hardening suite.
func TestCheckpointRobustness(t *testing.T) {
	dir := t.TempDir()
	ckpt, g, seed := partialCheckpoint(t, dir)
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// The untouched checkpoint restores cleanly.
	if err := resumeWith(t, ckpt, g, seed, 2); err != nil {
		t.Fatalf("pristine checkpoint failed resume: %v", err)
	}

	// Truncated file: a torn write must not half-parse.
	err = resumeWith(t, mutate("trunc.ckpt", raw[:len(raw)/2]), g, seed, 2)
	if err == nil || !strings.Contains(err.Error(), "truncated or corrupt") {
		t.Fatalf("truncated checkpoint: %v", err)
	}

	// Tampered state bytes: valid JSON, wrong checksum.
	tampered := bytes.Replace(raw, []byte(`"boot":0`), []byte(`"boot":7`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found in checkpoint")
	}
	err = resumeWith(t, mutate("tamper.ckpt", tampered), g, seed, 2)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("tampered checkpoint: %v", err)
	}

	// Unknown envelope version.
	var env checkpointEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	env.Version = 99
	reversioned, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	err = resumeWith(t, mutate("version.ckpt", reversioned), g, seed, 2)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future-version checkpoint: %v", err)
	}

	// A correctly re-signed checkpoint whose lease ledger disagrees
	// with its aggregate — the deep cross-check, past the checksum.
	var st checkpointState
	if err := json.Unmarshal(env.State, &st); err != nil {
		t.Fatal(err)
	}
	st.Sweeps[0].DoneLeases = append(st.Sweeps[0].DoneLeases, 1)
	forged := resign(t, st)
	err = resumeWith(t, mutate("ledger.ckpt", forged), g, seed, 2)
	if err == nil || !strings.Contains(err.Error(), "disagree with the lease ledger") {
		t.Fatalf("ledger-forged checkpoint: %v", err)
	}

	// Grid fingerprint mismatch: the checkpoint describes another sweep.
	other := sweep.NewGrid(sweep.Strings("a", "x", "z"), sweep.Reps(4))
	err = resumeWith(t, ckpt, other, seed, 2)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("foreign-grid resume: %v", err)
	}

	// Lease partition mismatch: lease ids would not line up.
	err = resumeWith(t, ckpt, g, seed, 3)
	if err == nil || !strings.Contains(err.Error(), "cells per lease") {
		t.Fatalf("repartitioned resume: %v", err)
	}

	// Resume flag without a checkpoint path configured.
	c := New(Config{Addr: "127.0.0.1:0", Resume: true})
	if err := c.Start(g, seed, "rep"); err == nil || !strings.Contains(err.Error(), "checkpoint path") {
		t.Fatalf("resume without path: %v", err)
	}

	// Missing file.
	if err := resumeWith(t, filepath.Join(dir, "absent.ckpt"), g, seed, 2); err == nil {
		t.Fatal("resume from a missing file succeeded")
	}
}

// resign re-marshals a mutated checkpoint state with a fresh valid
// checksum, modeling corruption beyond what the checksum can catch.
func resign(t *testing.T, st checkpointState) []byte {
	t.Helper()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(checkpointEnvelope{
		Version: checkpointVersion,
		Sum:     checksumHex(raw),
		State:   raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestCoordinatorMemoryOGroups asserts the incremental-merge memory
// bound: the coordinator's aggregate state depends only on the sweep's
// group structure and sample volume, never on how many leases the grid
// was cut into. A 64-cell sweep collapsed to one group is run once as
// 64 single-cell leases and once as a single 64-cell lease; the
// checkpointed aggregates must be byte-identical, and the whole
// checkpoint may differ only by the lease ledger.
func TestCoordinatorMemoryOGroups(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(32))
	aggregates := make([][]byte, 0, 2)
	outputs := make([]string, 0, 2)
	leases := []int{1, g.Size()}
	for _, leaseCells := range leases {
		ckpt := filepath.Join(t.TempDir(), "coord.ckpt")
		c := New(Config{
			Addr: "127.0.0.1:0", LeaseCells: leaseCells, LeaseTTL: time.Minute,
			DoneGrace: 100 * time.Millisecond, Checkpoint: ckpt,
		})
		if err := c.Start(g, 17, "rep", "a"); err != nil {
			t.Fatal(err)
		}
		if err := RunWorker(context.Background(), WorkerConfig{
			Addr: c.Addr(), Backend: &testBackend{g: g}, Parallel: 2,
		}); err != nil {
			t.Fatal(err)
		}
		got, err := c.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		c.Drain()
		raw, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		var env checkpointEnvelope
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatal(err)
		}
		var st checkpointState
		if err := json.Unmarshal(env.State, &st); err != nil {
			t.Fatal(err)
		}
		if n := len(st.Sweeps[0].DoneLeases); n != (g.Size()+leaseCells-1)/leaseCells {
			t.Fatalf("LeaseCells=%d: ledger has %d leases", leaseCells, n)
		}
		aggregates = append(aggregates, st.Sweeps[0].Aggregate)
		outputs = append(outputs, encodeAll(t, got))
	}
	// The two aggregates hold the same sample multiset (possibly in a
	// different raw order), so their serialized size is exactly equal:
	// state is O(groups + samples), with zero bytes per extra lease.
	if len(aggregates[0]) != len(aggregates[1]) {
		t.Fatalf("aggregate state depends on lease count: %d bytes with %d leases vs %d bytes with 1 lease",
			len(aggregates[0]), g.Size(), len(aggregates[1]))
	}
	// And they are semantically identical: each restores to the same
	// finalized result.
	restored := make([]string, 2)
	for i, agg := range aggregates {
		col, err := sweep.ReadShard(bytes.NewReader(agg))
		if err != nil {
			t.Fatal(err)
		}
		acc, err := sweep.NewAccumulator(g, 17, "rep", "a")
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Absorb(col); err != nil {
			t.Fatal(err)
		}
		merged, err := acc.Merged()
		if err != nil {
			t.Fatal(err)
		}
		restored[i] = encodeAll(t, merged)
	}
	if restored[0] != restored[1] {
		t.Fatal("checkpointed aggregates restore to different results")
	}
	if outputs[0] != outputs[1] || outputs[0] != restored[0] {
		t.Fatal("merged output depends on lease partition")
	}
}

// TestMultiSweepQueue: one server, two queued sweeps over different
// grids. Workers for the second sweep poll while the first runs, then
// are admitted when it activates; both results match their
// single-process references.
func TestMultiSweepQueue(t *testing.T) {
	g0 := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(3))
	g1 := sweep.NewGrid(sweep.Strings("b", "p", "q", "r"), sweep.Reps(2))
	want0, err := sweep.RunBackend(&testBackend{g: g0}, sweep.Options{Parallel: 2, Seed: 21}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	want1, err := sweep.RunBackend(&testBackend{g: g1}, sweep.Options{Parallel: 2, Seed: 22}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{Addr: "127.0.0.1:0", LeaseCells: 2, LeaseTTL: time.Minute, DoneGrace: 200 * time.Millisecond})
	if _, err := c.Enqueue(Sweep{Grid: g0, Seed: 21, Collapse: []string{"rep"}}); err != nil {
		t.Fatal(err)
	}
	if idx, err := c.Enqueue(Sweep{Grid: g1, Seed: 22, Collapse: []string{"rep"}}); err != nil || idx != 1 {
		t.Fatalf("second sweep enqueued as %d (%v), want 1", idx, err)
	}
	if err := c.Serve(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	// The second sweep's worker starts first: it must poll in "queued"
	// state until sweep 0 finishes, then run sweep 1.
	w1done := make(chan error, 1)
	go func() {
		w1done <- RunWorker(context.Background(), WorkerConfig{
			Addr: c.Addr(), Backend: &testBackend{g: g1}, Parallel: 2, JoinWindow: 10 * time.Second,
		})
	}()
	time.Sleep(50 * time.Millisecond)
	if err := RunWorker(context.Background(), WorkerConfig{
		Addr: c.Addr(), Backend: &testBackend{g: g0}, Parallel: 2,
	}); err != nil {
		t.Fatal(err)
	}
	got0, err := c.WaitSweep(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-w1done; err != nil {
		t.Fatal(err)
	}
	got1, err := c.WaitSweep(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Drain()
	if encodeAll(t, got0) != encodeAll(t, want0) {
		t.Fatal("sweep 0 output differs from single-process")
	}
	if encodeAll(t, got1) != encodeAll(t, want1) {
		t.Fatal("sweep 1 output differs from single-process")
	}
}

// TestStatusEndpoint exercises GET /v1/status mid-sweep and after
// completion: cell and lease progress, per-worker attribution, ETA
// transitions.
func TestStatusEndpoint(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(4))
	c := startCoordinator(t, Config{LeaseCells: 2, LeaseTTL: time.Minute}, g, 13, "rep")
	rc := newRawClient(t, c, g)
	lr := rc.lease()
	if lr.Status != statusLease {
		t.Fatalf("got %q, want a lease", lr.Status)
	}
	rc.upload(g, lr, 1)
	st, err := FetchStatus(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sweeps) != 1 {
		t.Fatalf("status lists %d sweeps, want 1", len(st.Sweeps))
	}
	ss := st.Sweeps[0]
	if ss.State != sweepActive || ss.Cells != g.Size() || ss.CellsDone != len(lr.Cells) ||
		ss.Leases != g.Size()/2 || ss.LeasesDone != 1 || ss.LeasesOutstanding != 0 ||
		ss.LeasesQueued != g.Size()/2-1 {
		t.Fatalf("mid-sweep status %+v", ss)
	}
	if ss.EtaMS < 0 {
		t.Fatalf("ETA unknown with %d cells done: %+v", ss.CellsDone, ss)
	}
	if len(st.Workers) != 1 || st.Workers[0].CellsDone != len(lr.Cells) {
		t.Fatalf("mid-sweep workers %+v", st.Workers)
	}
	if err := RunWorker(context.Background(), WorkerConfig{
		Addr: c.Addr(), Backend: &testBackend{g: g}, Parallel: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err = FetchStatus(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ss = st.Sweeps[0]
	if ss.State != sweepDone || ss.CellsDone != g.Size() || ss.LeasesDone != ss.Leases || ss.EtaMS != 0 {
		t.Fatalf("post-sweep status %+v", ss)
	}
}

// TestWorkerSurvivesCoordinatorRestart: a live worker keeps retrying
// with bounded backoff while its coordinator is down, then finishes
// the sweep against the resumed incarnation on the same address — no
// worker restart required, output still byte-identical.
func TestWorkerSurvivesCoordinatorRestart(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(8))
	want, err := sweep.RunBackend(&testBackend{g: g}, sweep.Options{Parallel: 2, Seed: 31}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "coord.ckpt")
	cfg := Config{
		Addr: "127.0.0.1:0", LeaseCells: 1, LeaseTTL: time.Minute,
		DoneGrace: 200 * time.Millisecond, Checkpoint: ckpt,
	}
	c1 := New(cfg)
	if err := c1.Start(g, 31, "rep"); err != nil {
		t.Fatal(err)
	}
	addr := c1.Addr()
	// retrying fires once the worker has actually hit the outage and
	// entered its backoff loop — the signal the restart should wait for
	// instead of sleeping a guessed duration.
	retrying := make(chan struct{})
	var once sync.Once
	wdone := make(chan error, 1)
	go func() {
		wdone <- RunWorker(context.Background(), WorkerConfig{
			Addr:    addr,
			Backend: &testBackend{g: g, delay: 5 * time.Millisecond},
			// Parallel 1 + per-cell delay keeps the worker mid-sweep
			// long enough to observe the outage.
			Parallel:    1,
			RetryWindow: 30 * time.Second,
			Logf: func(format string, args ...any) {
				if strings.Contains(format, "retrying") {
					once.Do(func() { close(retrying) })
				}
			},
		})
	}()
	// Kill the coordinator once at least one lease is durable but the
	// sweep is not done.
	for {
		st := c1.Status()
		if done := st.Sweeps[0].LeasesDone; done >= 1 && done < st.Sweeps[0].Leases {
			break
		}
		if st.Sweeps[0].State != sweepActive {
			t.Fatalf("sweep left active state early: %+v", st.Sweeps[0])
		}
		time.Sleep(2 * time.Millisecond)
	}
	c1.Close()
	// Restart only after the worker has observed the outage and begun
	// backing off.
	select {
	case <-retrying:
	case err := <-wdone:
		t.Fatalf("worker exited before observing the outage: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("worker never reported the outage")
	}
	cfg.Addr = addr
	cfg.Resume = true
	c2 := New(cfg)
	if err := c2.Start(g, 31, "rep"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	if err := <-wdone; err != nil {
		t.Fatalf("worker did not survive the restart: %v", err)
	}
	got, err := c2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c2.Drain()
	if encodeAll(t, got) != encodeAll(t, want) {
		t.Fatal("output differs after coordinator restart under a live worker")
	}
}

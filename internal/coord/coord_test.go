package coord

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hadooppreempt/internal/sim"
	"hadooppreempt/internal/sweep"
)

// testBackend is a deterministic synthetic backend: measurements derive
// purely from each cell's seed and coordinates, so every worker — and
// the single-process reference run — computes identical values.
type testBackend struct {
	g     sweep.Grid
	delay time.Duration
}

func (b *testBackend) Name() string              { return "test" }
func (b *testBackend) Grid() (sweep.Grid, error) { return b.g, nil }
func (b *testBackend) Cell(pt sweep.Point, rec *sweep.Recorder) error {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	rng := pt.RNG()
	rec.Observe("m0", float64(pt.Index)+rng.Float64())
	if pt.Seed%3 != 0 {
		rec.Observe("m1", rng.Float64()*1e9)
	}
	if pt.Seed%2 == 0 {
		rec.Label("flag", fmt.Sprintf("cell-%d", pt.Index))
	}
	return nil
}

// randomGrid mirrors the sweep package's property-test generator.
func randomGrid(rng *sim.RNG) sweep.Grid {
	axes := 1 + rng.Intn(3)
	g := sweep.Grid{}
	for a := 0; a < axes; a++ {
		name := fmt.Sprintf("ax%d", a)
		size := 1 + rng.Intn(4)
		labels := make([]string, size)
		for v := range labels {
			labels[v] = fmt.Sprintf("v%d", v)
		}
		g.Axes = append(g.Axes, sweep.Strings(name, labels...))
	}
	if rng.Intn(3) == 0 {
		g = g.Pair(g.Axes[rng.Intn(len(g.Axes))].Name)
	}
	return g
}

func randomCollapse(rng *sim.RNG, g sweep.Grid) []string {
	var out []string
	for _, a := range g.Axes {
		if rng.Intn(2) == 0 {
			out = append(out, a.Name)
		}
	}
	return out
}

// encodeAll renders a collapsed result in every output format.
func encodeAll(t *testing.T, c *sweep.Collapsed) string {
	t.Helper()
	var out bytes.Buffer
	for _, format := range []string{"csv", "json", "table", "series"} {
		if err := c.Write(&out, format); err != nil {
			if format == "series" && strings.Contains(err.Error(), "at least one surviving axis") {
				continue // fully collapsed grids have no series form
			}
			t.Fatal(err)
		}
	}
	return out.String()
}

// startCoordinator brings a coordinator up on a loopback port.
func startCoordinator(t *testing.T, cfg Config, g sweep.Grid, seed uint64, collapse ...string) *Coordinator {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.DoneGrace == 0 {
		cfg.DoneGrace = 200 * time.Millisecond
	}
	c := New(cfg)
	if err := c.Start(g, seed, collapse...); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestDistributedMatchesSingleProcessProperty is the acceptance
// criterion with everything randomized: for random grids, collapse
// sets, seeds, lease sizes, worker counts and join order, the
// coordinator's merged result renders byte-identically to a
// single-process sweep in every format.
func TestDistributedMatchesSingleProcessProperty(t *testing.T) {
	rng := sim.NewRNG(20260728)
	for trial := 0; trial < 12; trial++ {
		g := randomGrid(rng)
		collapse := randomCollapse(rng, g)
		seed := rng.Uint64()
		b := &testBackend{g: g}
		want, err := sweep.RunBackend(b, sweep.Options{Parallel: 4, Seed: seed}, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		c := startCoordinator(t, Config{
			LeaseCells:  1 + rng.Intn(3),
			LeaseTTL:    time.Minute,
			BackendName: "test",
		}, g, seed, collapse...)
		workers := 1 + rng.Intn(3)
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			delay := time.Duration(rng.Intn(20)) * time.Millisecond
			go func(w int) {
				defer wg.Done()
				time.Sleep(delay) // randomize join order
				errs[w] = RunWorker(context.Background(), WorkerConfig{
					Addr:     c.Addr(),
					Backend:  &testBackend{g: g},
					Parallel: 2,
				})
			}(w)
		}
		got, err := c.Wait(context.Background())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Workers still polling (or still joining) hear "done" while the
		// server is up; only then drain and stop it.
		wg.Wait()
		c.Drain()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("trial %d: worker %d: %v", trial, w, err)
			}
		}
		if encodeAll(t, got) != encodeAll(t, want) {
			t.Fatalf("trial %d (cells=%d workers=%d): distributed output differs from single-process",
				trial, g.Size(), workers)
		}
	}
}

// rawClient speaks the wire protocol directly so tests can act as a
// worker that misbehaves (takes a lease and goes silent, or reports
// very late).
type rawClient struct {
	t    *testing.T
	base string
	id   joinResponse
}

func newRawClient(t *testing.T, c *Coordinator, g sweep.Grid) *rawClient {
	t.Helper()
	rc := &rawClient{t: t, base: "http://" + c.Addr()}
	err := post(context.Background(), http.DefaultClient, rc.base+"/v1/join", joinRequest{
		Proto:       protocolVersion,
		Backend:     "test",
		Fingerprint: g.Fingerprint(),
		Cells:       g.Size(),
	}, &rc.id)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func (rc *rawClient) lease() leaseResponse {
	rc.t.Helper()
	var lr leaseResponse
	if err := post(context.Background(), http.DefaultClient, rc.base+"/v1/lease",
		leaseRequest{Worker: rc.id.Worker}, &lr); err != nil {
		rc.t.Fatal(err)
	}
	return lr
}

func (rc *rawClient) upload(g sweep.Grid, lr leaseResponse, parallel int) resultResponse {
	rc.t.Helper()
	b := &testBackend{g: g}
	col, err := sweep.RunCells(g, b.Cell, rc.id.Seed, parallel, lr.Cells, rc.id.Collapse...)
	if err != nil {
		rc.t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.WriteShard(&buf); err != nil {
		rc.t.Fatal(err)
	}
	var rr resultResponse
	if err := post(context.Background(), http.DefaultClient, rc.base+"/v1/result",
		resultRequest{Worker: rc.id.Worker, Lease: lr.Lease, Shard: buf.Bytes()}, &rr); err != nil {
		rc.t.Fatal(err)
	}
	return rr
}

// fakeClock is an injectable scheduling clock: tests advance it past
// lease TTLs instead of sleeping through them.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// setClock swaps the coordinator's scheduling clock.
func setClock(c *Coordinator, clk *fakeClock) {
	c.mu.Lock()
	c.now = clk.Now
	c.mu.Unlock()
}

// TestLeaseExpiryReissue: a worker takes a lease and vanishes; once the
// TTL passes (on the injected clock — no real sleep) the coordinator
// re-queues it, a healthy worker finishes the sweep, and the output is
// still byte-identical to single-process.
func TestLeaseExpiryReissue(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(4))
	want, err := sweep.RunBackend(&testBackend{g: g}, sweep.Options{Parallel: 2, Seed: 9}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	c := startCoordinator(t, Config{LeaseCells: 2, LeaseTTL: 100 * time.Millisecond}, g, 9, "rep")
	clk := &fakeClock{t: time.Now()}
	setClock(c, clk)
	dead := newRawClient(t, c, g)
	if lr := dead.lease(); lr.Status != statusLease {
		t.Fatalf("dead worker got %q, want a lease", lr.Status)
	}
	// The dead worker never reports. A healthy worker joins after the
	// TTL has expired the lease.
	clk.Advance(150 * time.Millisecond)
	if err := RunWorker(context.Background(), WorkerConfig{Addr: c.Addr(), Backend: &testBackend{g: g}, Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Reissues < 1 {
		t.Fatalf("expected at least one reissue, stats %+v", st)
	}
	if encodeAll(t, got) != encodeAll(t, want) {
		t.Fatal("output differs after lease reissue")
	}
}

// TestStealAndDuplicateDiscard: a slow worker holds a lease while a
// fast worker drains the queue; the fast worker steals the outstanding
// lease, and the slow worker's late upload is discarded without
// changing the output.
func TestStealAndDuplicateDiscard(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(3))
	want, err := sweep.RunBackend(&testBackend{g: g}, sweep.Options{Parallel: 2, Seed: 5}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	c := startCoordinator(t, Config{LeaseCells: 2, LeaseTTL: time.Minute}, g, 5, "rep")
	slow := newRawClient(t, c, g)
	held := slow.lease()
	if held.Status != statusLease {
		t.Fatalf("slow worker got %q, want a lease", held.Status)
	}
	// Fast worker drains the queue; with the held lease outstanding and
	// the TTL far away, finishing requires stealing it.
	if err := RunWorker(context.Background(), WorkerConfig{Addr: c.Addr(), Backend: &testBackend{g: g}, Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The slow worker finally reports its (correct) result — discarded.
	if rr := slow.upload(g, held, 1); rr.Accepted {
		t.Fatal("late duplicate result was accepted")
	}
	// A straggler's error for a lease someone else completed is equally
	// irrelevant: it must be discarded, not abort the finished sweep.
	var rr resultResponse
	if err := post(context.Background(), http.DefaultClient, slow.base+"/v1/result",
		resultRequest{Worker: slow.id.Worker, Lease: held.Lease, Error: "late transient failure"}, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Accepted {
		t.Fatal("late error was accepted")
	}
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatalf("late error for a done lease aborted the sweep: %v", err)
	}
	st := c.Stats()
	if st.Steals < 1 || st.Duplicates < 1 {
		t.Fatalf("expected a steal and a discarded duplicate, stats %+v", st)
	}
	if encodeAll(t, got) != encodeAll(t, want) {
		t.Fatal("output differs after steal + duplicate discard")
	}
}

// TestJoinRejectsMismatchedWorker: a worker sweeping a different grid
// (or a different backend) is refused at join, before any lease.
func TestJoinRejectsMismatchedWorker(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(2))
	c := startCoordinator(t, Config{BackendName: "test", LeaseTTL: time.Minute}, g, 1, "rep")
	other := sweep.NewGrid(sweep.Strings("a", "x", "z"), sweep.Reps(2))
	err := RunWorker(context.Background(), WorkerConfig{
		Addr: c.Addr(), Backend: &testBackend{g: other}, JoinWindow: time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched grid joined: %v", err)
	}
	c.fail(fmt.Errorf("test over"))
}

// failBackend errors on one cell.
type failBackend struct{ g sweep.Grid }

func (b *failBackend) Name() string              { return "test" }
func (b *failBackend) Grid() (sweep.Grid, error) { return b.g, nil }
func (b *failBackend) Cell(pt sweep.Point, rec *sweep.Recorder) error {
	if pt.Index == 1 {
		return fmt.Errorf("synthetic cell failure")
	}
	rec.Observe("m0", 1)
	return nil
}

// TestWorkerCellErrorAbortsSweep: a deterministic cell error stops the
// sweep with the error surfaced at the coordinator, and later workers
// are told to abort.
func TestWorkerCellErrorAbortsSweep(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(2))
	c := startCoordinator(t, Config{LeaseCells: 4, LeaseTTL: time.Minute}, g, 1, "rep")
	err := RunWorker(context.Background(), WorkerConfig{Addr: c.Addr(), Backend: &failBackend{g: g}, Parallel: 1})
	if err == nil || !strings.Contains(err.Error(), "synthetic cell failure") {
		t.Fatalf("worker error = %v, want the cell failure", err)
	}
	if _, err := c.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "synthetic cell failure") {
		t.Fatalf("coordinator error = %v, want the cell failure", err)
	}
	err = RunWorker(context.Background(), WorkerConfig{Addr: c.Addr(), Backend: &testBackend{g: g}, Parallel: 1})
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("late worker error = %v, want abort", err)
	}
}

// TestDispatchBackendViaCoordinator drives the coordinator through the
// same sweep.DispatchBackend entry point the facade uses.
func TestDispatchBackendViaCoordinator(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y", "z"), sweep.Reps(2))
	b := &testBackend{g: g}
	want, err := sweep.RunBackend(b, sweep.Options{Parallel: 2, Seed: 3}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	listening := make(chan string, 1)
	c := New(Config{
		Addr: "127.0.0.1:0", LeaseCells: 2, LeaseTTL: time.Minute,
		DoneGrace: 200 * time.Millisecond,
		OnListen:  func(addr string) { listening <- addr },
	})
	var got *sweep.Collapsed
	var dispatchErr error
	donec := make(chan struct{})
	go func() {
		defer close(donec)
		got, dispatchErr = sweep.DispatchBackend(b, c, 3, "rep")
	}()
	// OnListen delivers the bound address; no polling needed.
	var addr string
	select {
	case addr = <-listening:
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator never bound")
	}
	if err := RunWorker(context.Background(), WorkerConfig{Addr: addr, Backend: &testBackend{g: g}, Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	<-donec
	if dispatchErr != nil {
		t.Fatal(dispatchErr)
	}
	if encodeAll(t, got) != encodeAll(t, want) {
		t.Fatal("DispatchBackend output differs from RunBackend")
	}
}

// TestResultIdempotentReplay: at-least-once delivery of /v1/result. The
// winner's own re-delivered upload is re-acknowledged as accepted
// without double-absorbing into the aggregate; another worker's copy of
// the same lease stays a discarded duplicate.
func TestResultIdempotentReplay(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(2))
	want, err := sweep.RunBackend(&testBackend{g: g}, sweep.Options{Parallel: 2, Seed: 7}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	c := startCoordinator(t, Config{LeaseCells: 4, LeaseTTL: time.Minute}, g, 7, "rep")
	winner := newRawClient(t, c, g)
	lr := winner.lease()
	if lr.Status != statusLease {
		t.Fatalf("got %q, want a lease", lr.Status)
	}
	if rr := winner.upload(g, lr, 2); !rr.Accepted {
		t.Fatal("first upload rejected")
	}
	// Re-delivered upload from the winner (dropped ack, duplicated
	// request): same verdict, absorbed exactly once.
	if rr := winner.upload(g, lr, 2); !rr.Accepted {
		t.Fatal("winner's replayed upload not re-acknowledged as accepted")
	}
	// The same bytes from a different worker are a duplicate, not a
	// replay.
	other := newRawClient(t, c, g)
	if rr := other.upload(g, lr, 2); rr.Accepted {
		t.Fatal("another worker's duplicate upload was accepted")
	}
	got, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Replays != 1 || st.Duplicates != 1 {
		t.Fatalf("stats = %+v, want exactly 1 replay and 1 duplicate", st)
	}
	if encodeAll(t, got) != encodeAll(t, want) {
		t.Fatal("output differs after replayed upload (double-absorbed?)")
	}
}

// flakyBackend fails chosen cells a fixed number of times, then runs
// them clean — the shape of a transient infrastructure fault.
type flakyBackend struct {
	g     sweep.Grid
	fails int // failures per flaky cell before success

	mu       sync.Mutex
	attempts map[int]int
}

func (b *flakyBackend) Name() string              { return "test" }
func (b *flakyBackend) Grid() (sweep.Grid, error) { return b.g, nil }
func (b *flakyBackend) Cell(pt sweep.Point, rec *sweep.Recorder) error {
	if pt.Index%3 == 1 {
		b.mu.Lock()
		n := b.attempts[pt.Index]
		b.attempts[pt.Index] = n + 1
		b.mu.Unlock()
		if n < b.fails {
			return fmt.Errorf("transient failure %d of cell %d", n+1, pt.Index)
		}
	}
	return (&testBackend{g: b.g}).Cell(pt, rec)
}

// TestLeaseFailureBudget: cell errors within the per-lease budget
// re-queue the lease and the sweep completes byte-identically; a
// deterministic poison cell exhausts the budget and aborts the sweep
// with the lease's cells and the worker error in the diagnostics.
func TestLeaseFailureBudget(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(3))
	want, err := sweep.RunBackend(&testBackend{g: g}, sweep.Options{Parallel: 2, Seed: 11}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	c := startCoordinator(t, Config{LeaseCells: 2, LeaseTTL: time.Minute}, g, 11, "rep")
	flaky := &flakyBackend{g: g, fails: 1, attempts: make(map[int]int)}
	if err := RunWorker(context.Background(), WorkerConfig{Addr: c.Addr(), Backend: flaky, Parallel: 2}); err != nil {
		t.Fatalf("worker with in-budget flaky cells failed: %v", err)
	}
	got, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Failures < 1 {
		t.Fatalf("stats = %+v, want absorbed failures", st)
	}
	if encodeAll(t, got) != encodeAll(t, want) {
		t.Fatal("output differs after in-budget cell failures")
	}

	// Poison: the same cell fails every attempt; the budget (2) is
	// exhausted and the sweep aborts with diagnostics instead of
	// re-issuing forever.
	c2 := startCoordinator(t, Config{LeaseCells: 4, LeaseTTL: time.Minute, MaxLeaseFailures: 2}, g, 11, "rep")
	err = RunWorker(context.Background(), WorkerConfig{Addr: c2.Addr(), Backend: &failBackend{g: g}, Parallel: 1})
	if err == nil || !strings.Contains(err.Error(), "synthetic cell failure") {
		t.Fatalf("worker error = %v, want the cell failure", err)
	}
	_, err = c2.Wait(context.Background())
	if err == nil {
		t.Fatal("poison cell did not abort the sweep")
	}
	for _, frag := range []string{"poison cell", "budget 2", "cells [", "synthetic cell failure", `cell "`} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("abort diagnostics %q missing %q", err, frag)
		}
	}
}

package coord

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hadooppreempt/internal/chaos"
	"hadooppreempt/internal/sim"
	"hadooppreempt/internal/sweep"
)

// TestChaosInBudgetParityProperty is the tentpole acceptance property:
// for random grids, collapse sets and random seeded fault schedules
// within the lease failure budget — dropped/duplicated/truncated/
// delayed requests on both worker clients and the coordinator server,
// checkpoint write failures, and cells that transiently error or panic
// — the distributed output is byte-identical to a faultless
// single-process run. Every fault is drawn from per-site RNG streams,
// so any failing trial is replayable from the seeds logged below.
func TestChaosInBudgetParityProperty(t *testing.T) {
	rng := sim.NewRNG(20260807)
	for trial := 0; trial < 6; trial++ {
		g := randomGrid(rng)
		collapse := randomCollapse(rng, g)
		seed := rng.Uint64()
		b := &testBackend{g: g}
		want, err := sweep.RunBackend(b, sweep.Options{Parallel: 4, Seed: seed}, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		coordSeed, cellSeed := rng.Uint64(), rng.Uint64()
		workerSeeds := []uint64{rng.Uint64(), rng.Uint64()}
		t.Logf("trial %d: cells=%d seed=%d coordSeed=%d cellSeed=%d workerSeeds=%v",
			trial, g.Size(), seed, coordSeed, cellSeed, workerSeeds)
		transport := chaos.Config{
			DropRequest:  0.06,
			DropResponse: 0.06,
			Duplicate:    0.08,
			Truncate:     0.06,
			Delay:        0.15,
			MaxDelay:     2 * time.Millisecond,
		}
		coordCfg := transport
		coordCfg.Seed = coordSeed
		coordCfg.CheckpointFail = 0.3
		coordPlan := chaos.New(coordCfg)
		// Cell faults live in one shared plan: the failure ledger is
		// global across workers, so a faulty cell fails exactly once no
		// matter which worker (or how many, via steals) runs it — an
		// in-budget schedule by construction.
		cellPlan := chaos.New(chaos.Config{Seed: cellSeed, CellError: 0.08, CellPanic: 0.04})

		cfg := Config{
			Addr:       "127.0.0.1:0",
			LeaseCells: 1 + rng.Intn(3),
			// Short TTL so issues lost to duplicated lease requests are
			// reaped quickly once the steal allowance is exhausted.
			LeaseTTL:        500 * time.Millisecond,
			DoneGrace:       200 * time.Millisecond,
			BackendName:     "test",
			Checkpoint:      filepath.Join(t.TempDir(), "coord.ckpt"),
			Middleware:      func(next http.Handler) http.Handler { return coordPlan.Middleware("coord", next) },
			WriteCheckpoint: coordPlan.CheckpointWriter(WriteFileDurable),
		}
		c := New(cfg)
		if err := c.Start(g, seed, collapse...); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, len(workerSeeds))
		for w, wseed := range workerSeeds {
			wg.Add(1)
			wcfg := transport
			wcfg.Seed = wseed
			plan := chaos.New(wcfg)
			go func(w int, plan *chaos.Plan) {
				defer wg.Done()
				errs[w] = RunWorker(context.Background(), WorkerConfig{
					Addr:     c.Addr(),
					Backend:  cellPlan.WrapBackend(&testBackend{g: g}),
					Parallel: 2,
					Client: &http.Client{
						Timeout:   10 * time.Second,
						Transport: plan.Transport(fmt.Sprintf("worker%d", w), nil),
					},
					RetryBase:   2 * time.Millisecond,
					RetryWindow: 30 * time.Second,
				})
			}(w, plan)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		got, err := c.Wait(ctx)
		if err != nil {
			t.Fatalf("trial %d: sweep failed under in-budget chaos: %v", trial, err)
		}
		wg.Wait()
		cancel()
		c.Drain()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("trial %d: worker %d: %v", trial, w, err)
			}
		}
		if encodeAll(t, got) != encodeAll(t, want) {
			t.Fatalf("trial %d: chaotic distributed output differs from faultless single-process run", trial)
		}
	}
}

// TestChaosPoisonCellAbortsWithDiagnostics: an over-budget schedule — a
// cell that fails on every attempt — aborts the sweep cleanly, naming
// the lease's cells, the budget and the injected cell error; it does
// not re-issue forever and does not hang workers.
func TestChaosPoisonCellAbortsWithDiagnostics(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(8))
	// Find a chaos seed that marks at least one cell of this grid
	// faulty; deterministic given the RNG seed below.
	rng := sim.NewRNG(1)
	var plan *chaos.Plan
	for plan == nil {
		p := chaos.New(chaos.Config{Seed: rng.Uint64(), CellError: 0.1, CellFailures: chaos.PoisonForever})
		if len(p.FaultyCells(g.Size())) > 0 {
			plan = p
		}
	}
	poisoned := plan.FaultyCells(g.Size())[0]
	c := startCoordinator(t, Config{LeaseCells: 2, LeaseTTL: time.Minute, MaxLeaseFailures: 2}, g, 21, "rep")
	werr := RunWorker(context.Background(), WorkerConfig{
		Addr:     c.Addr(),
		Backend:  plan.WrapBackend(&testBackend{g: g}),
		Parallel: 1,
	})
	if werr == nil || !strings.Contains(werr.Error(), "chaos: injected error") {
		t.Fatalf("worker error = %v, want the injected cell error", werr)
	}
	_, err := c.Wait(context.Background())
	if err == nil {
		t.Fatal("poison cell did not abort the sweep")
	}
	for _, frag := range []string{
		"poison cell",
		"budget 2",
		fmt.Sprintf("chaos: injected error in cell %d", poisoned),
	} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("abort diagnostics %q missing %q", err, frag)
		}
	}
}

// TestChaosCheckpointFaultsStayResumable: with every checkpoint write
// failing at a random tear point, the sweep still completes correctly,
// and whatever checkpoint file survives on disk is the previous intact
// version — Restore never sees a torn file.
func TestChaosCheckpointFaultsStayResumable(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(4))
	want, err := sweep.RunBackend(&testBackend{g: g}, sweep.Options{Parallel: 2, Seed: 13}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "coord.ckpt")
	// Fail every write after the first, so a valid first checkpoint
	// exists and every later one tears against it.
	var writes int
	var mu sync.Mutex
	plan := chaos.New(chaos.Config{Seed: 77, CheckpointFail: 1})
	faulty := plan.CheckpointWriter(WriteFileDurable)
	writer := func(path string, data []byte) error {
		mu.Lock()
		writes++
		first := writes == 1
		mu.Unlock()
		if first {
			return WriteFileDurable(path, data)
		}
		return faulty(path, data)
	}
	c := startCoordinator(t, Config{
		LeaseCells: 1, LeaseTTL: time.Minute,
		Checkpoint: ckpt, WriteCheckpoint: writer,
	}, g, 13, "rep")
	if err := RunWorker(context.Background(), WorkerConfig{Addr: c.Addr(), Backend: &testBackend{g: g}, Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if encodeAll(t, got) != encodeAll(t, want) {
		t.Fatal("output differs under checkpoint write failures")
	}
	// The surviving file is the first (pre-fault) checkpoint, still
	// valid: a fresh coordinator must restore it without error.
	c2 := New(Config{LeaseCells: 1, LeaseTTL: time.Minute})
	if _, err := c2.Enqueue(Sweep{Grid: g, Seed: 13, Collapse: []string{"rep"}}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Restore(ckpt); err != nil {
		t.Fatalf("surviving checkpoint is not restorable: %v", err)
	}
}

package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"slices"
	"sync"
	"time"

	"hadooppreempt/internal/sweep"
)

// Config tunes a coordinator.
type Config struct {
	// Addr is the TCP listen address, e.g. ":9090" or "127.0.0.1:0".
	Addr string
	// LeaseCells is the number of grid cells per lease (default 8).
	// Smaller leases balance uneven cell costs better at the price of
	// more round trips. The value is part of the checkpoint identity: a
	// resumed coordinator must partition leases identically.
	LeaseCells int
	// LeaseTTL bounds how long a lease may stay outstanding without a
	// result before it is re-queued for another worker (default 30s).
	LeaseTTL time.Duration
	// MaxIssues caps how many workers may run one lease concurrently
	// via stealing (default 2: the original holder plus one thief).
	MaxIssues int
	// MaxLeaseFailures is the per-lease failure budget: how many worker
	// cell-error reports a lease absorbs (each one re-queues the lease
	// for another attempt) before the coordinator declares the lease
	// poisoned and aborts the sweep with the offending cell coordinates
	// and the worker's error (default 3).
	MaxLeaseFailures int
	// DoneGrace bounds how long Drain waits for workers to hear their
	// sweep is over before the server stops (default 2s).
	DoneGrace time.Duration
	// BackendName, when set, is the backend identity sweeps enqueued
	// via Start must match at join time.
	BackendName string
	// BackendFP, when set, is the backend content fingerprint for
	// sweeps enqueued via Start (see Fingerprinter).
	BackendFP string
	// Checkpoint, when set, is the path the coordinator persists its
	// state to — sweep fingerprints, the lease ledger and the running
	// aggregate — after every accepted upload, so a killed coordinator
	// can resume. Writes are atomic (temp file + rename).
	Checkpoint string
	// Cache, when set, is the persistent cell-result cache the
	// coordinator consults before issuing leases: a lease whose every
	// cell has a verified entry is absorbed directly (winner "cache")
	// and never reaches a worker. Consultation happens at Serve time,
	// after any Restore, so a resumed ledger is never double-absorbed.
	Cache *sweep.Cache
	// Resume makes Start restore state from Checkpoint instead of
	// beginning the sweep from scratch: leases the previous incarnation
	// accepted stay done, and the final output is byte-identical to an
	// uninterrupted run.
	Resume bool
	// Context, when set, cancels Dispatch (default context.Background).
	Context context.Context
	// Middleware, when set, wraps the coordinator's HTTP handler —
	// the hook the chaos harness uses to drop, duplicate, truncate or
	// delay requests at the server boundary.
	Middleware func(http.Handler) http.Handler
	// WriteCheckpoint, when set, replaces the atomic checkpoint writer
	// (temp file + fsync + rename). The chaos harness injects write
	// failures here; the coordinator treats a failed write as a
	// stale-but-valid checkpoint, never as a fatal error.
	WriteCheckpoint func(path string, data []byte) error
	// OnListen, when set, receives the bound listen address once the
	// server is up — the way to learn the port of an ":0" Addr.
	OnListen func(addr string)
	// Logf, when set, receives progress lines (joins, leases, steals,
	// re-issues, completions, checkpoints).
	Logf func(format string, args ...any)
}

// Stats counts scheduling events, for tests and operator logs. With a
// sweep queue, counters aggregate over every sweep.
type Stats struct {
	// Workers is the number of workers that joined.
	Workers int
	// Leases is the number of work units the grids were partitioned
	// into.
	Leases int
	// Reissues counts leases re-queued after their TTL expired with no
	// result (worker loss).
	Reissues int
	// Steals counts speculative duplicate issues of outstanding leases
	// to workers that drained the queue early.
	Steals int
	// Duplicates counts uploaded results discarded because another
	// worker completed the lease first.
	Duplicates int
	// Failures counts worker cell-error reports absorbed within the
	// lease failure budget (each one re-queued the lease).
	Failures int
	// Replays counts duplicated uploads re-acknowledged idempotently
	// because they came from the worker whose copy already won.
	Replays int
}

// Sweep declares one entry of the coordinator's queue: the grid to
// serve, its base seed and collapse axes, and the backend identity
// joining workers must prove.
type Sweep struct {
	Grid     sweep.Grid
	Seed     uint64
	Collapse []string
	// BackendName, when set, must match joining workers' backend name.
	BackendName string
	// BackendFP, when set, must match joining workers' backend content
	// fingerprint (see Fingerprinter).
	BackendFP string
}

// Sweep-state machine values (also serialized into checkpoints).
const (
	sweepQueued = "queued"
	sweepActive = "active"
	sweepDone   = "done"
	sweepFailed = "failed"
)

// lease is one work unit: a batch of grid cell indices. Accepted
// results are folded into the sweep's running aggregate immediately —
// a lease retains no result of its own.
type lease struct {
	id    int
	cells []int
	// expected holds the per-group cell counts a correct result must
	// report, precomputed from the grid geometry.
	expected map[int]int
	done     bool
	// issues holds the expiry times of the active issues of this lease
	// (one per worker currently running it).
	issues []time.Time
	queued bool
	// failures counts worker cell-error reports against this lease; the
	// sweep aborts when it exceeds Config.MaxLeaseFailures. reported
	// remembers which execution attempts already charged the budget, so
	// an error report re-delivered by at-least-once transport (retry
	// after a lost ack, duplication) counts once.
	failures int
	reported map[string]bool
	// winner is the worker whose upload completed the lease, the
	// idempotency key: a re-delivered upload from the winner is
	// re-acknowledged as accepted, anyone else's copy is a duplicate.
	winner string
}

// sweepState is one queue entry's runtime state.
type sweepState struct {
	index    int
	fp       string
	backend  string
	backFP   string
	seed     uint64
	collapse []string
	cells    int
	// grid is retained for cache replay: rebuilding a lease's cells
	// from cache entries needs the cells' coordinate-derived seeds.
	grid     sweep.Grid
	skeleton *sweep.Collapsed
	acc      *sweep.Accumulator
	leases   []*lease
	pending  []int
	// remaining counts leases without an accepted result.
	remaining int
	cellsDone int
	state     string
	merged    *sweep.Collapsed
	// aggBytes freezes the shard-encoded aggregate at completion time
	// (Merged consumes the accumulator), so later checkpoints can still
	// persist finished sweeps.
	aggBytes []byte
	failed   error
	stats    Stats
	started  time.Time
	finish   sync.Once
	done     chan struct{}
}

// terminal reports whether the sweep has finished, one way or another.
func (s *sweepState) terminal() bool {
	return s.state == sweepDone || s.state == sweepFailed
}

// workerInfo tracks one worker's progress for Drain and /v1/status.
// Workers register at join; workers of a previous coordinator
// incarnation (which joined before a crash) re-register lazily on
// their first request after a resume.
type workerInfo struct {
	sweep    int
	told     bool
	cells    int
	joinedAt time.Time
	lastAt   time.Time
}

// Coordinator serves lease-based work units for a queue of sweeps and
// folds the results as they arrive. Create with New, then either call
// Dispatch (it implements sweep.Dispatcher) for a single sweep or
// Enqueue/Serve/WaitSweep/Drain separately for a long-lived service.
type Coordinator struct {
	cfg Config
	// now is the scheduling clock (lease TTLs, worker liveness); tests
	// inject a fake to exercise expiry without real sleeps.
	now func() time.Time

	mu       sync.Mutex
	serving  bool
	restored bool
	boot     int
	sweeps   []*sweepState
	active   int
	workers  map[string]*workerInfo
	joined   int
	lastReq  time.Time
	ln       net.Listener
	srv      *http.Server
}

// New builds a coordinator; Enqueue and Serve (or Start, or Dispatch)
// bind it to its sweeps.
func New(cfg Config) *Coordinator {
	if cfg.LeaseCells < 1 {
		cfg.LeaseCells = 8
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxIssues < 1 {
		cfg.MaxIssues = 2
	}
	if cfg.DoneGrace <= 0 {
		cfg.DoneGrace = 2 * time.Second
	}
	if cfg.MaxLeaseFailures < 1 {
		cfg.MaxLeaseFailures = 3
	}
	return &Coordinator{
		cfg:     cfg,
		now:     time.Now,
		workers: make(map[string]*workerInfo),
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Enqueue appends a sweep to the queue, partitioning its grid into
// leases, and returns its queue index. Sweeps activate in order; the
// index is what WaitSweep takes and what workers are told at join.
func (c *Coordinator) Enqueue(sw Sweep) (int, error) {
	skel, err := sweep.Skeleton(sw.Grid, sw.Seed, sw.Collapse...)
	if err != nil {
		return 0, err
	}
	acc, err := sweep.NewAccumulator(sw.Grid, sw.Seed, sw.Collapse...)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &sweepState{
		index:    len(c.sweeps),
		fp:       sw.Grid.Fingerprint(),
		backend:  sw.BackendName,
		backFP:   sw.BackendFP,
		seed:     sw.Seed,
		collapse: append([]string(nil), sw.Collapse...),
		cells:    skel.Cells(),
		grid:     sw.Grid,
		skeleton: skel,
		acc:      acc,
		state:    sweepQueued,
		done:     make(chan struct{}),
	}
	for lo := 0; lo < s.cells; lo += c.cfg.LeaseCells {
		hi := min(lo+c.cfg.LeaseCells, s.cells)
		l := &lease{id: len(s.leases), expected: make(map[int]int)}
		for cell := lo; cell < hi; cell++ {
			l.cells = append(l.cells, cell)
			gi, _ := skel.GroupOfCell(cell)
			l.expected[gi]++
		}
		l.queued = true
		s.leases = append(s.leases, l)
		s.pending = append(s.pending, l.id)
	}
	s.remaining = len(s.leases)
	s.stats.Leases = len(s.leases)
	c.sweeps = append(c.sweeps, s)
	if c.serving {
		c.applyCache(s)
		c.advance()
	}
	c.logf("sweep %d enqueued: %d cells as %d leases of <=%d",
		s.index, s.cells, len(s.leases), c.cfg.LeaseCells)
	return s.index, nil
}

// advance promotes the first non-terminal sweep to active. Callers
// hold mu.
func (c *Coordinator) advance() {
	for c.active < len(c.sweeps) && c.sweeps[c.active].terminal() {
		c.active++
	}
	if c.active < len(c.sweeps) && c.sweeps[c.active].state == sweepQueued {
		s := c.sweeps[c.active]
		s.state = sweepActive
		s.started = c.now()
		c.logf("sweep %d active (%d cells, %d leases)", s.index, s.cells, len(s.leases))
	}
}

// Serve binds the listener and begins answering the protocol. It
// returns once the listener is bound (see Addr), so workers started
// afterwards cannot miss it. At least one sweep must be enqueued.
func (c *Coordinator) Serve() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.serving {
		return fmt.Errorf("coord: coordinator already serving")
	}
	if len(c.sweeps) == 0 {
		return fmt.Errorf("coord: no sweeps enqueued")
	}
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return fmt.Errorf("coord: listen %s: %w", c.cfg.Addr, err)
	}
	c.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join", c.handleJoin)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/result", c.handleResult)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	var handler http.Handler = mux
	if c.cfg.Middleware != nil {
		handler = c.cfg.Middleware(handler)
	}
	// All protocol bodies are small JSON documents (the largest, a shard
	// upload, is bounded by the sweep's group structure), so slow or
	// stalled clients get firm deadlines rather than a goroutine each:
	// headers within 5s, whole request within 2m, idle keep-alives
	// recycled after 2m.
	c.srv = &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go c.srv.Serve(ln)
	c.serving = true
	c.lastReq = c.now()
	// Consult the cell cache before the first lease can be issued —
	// and after any Restore, which runs before Serve, so a lease the
	// ledger already absorbed is skipped rather than absorbed twice.
	// Handlers block on mu until Serve returns, so no worker can slip
	// in between restore, cache replay and the first checkpoint.
	for _, s := range c.sweeps {
		c.applyCache(s)
	}
	c.advance()
	// An immediate checkpoint makes -resume valid from any kill point,
	// even one before the first accepted upload. It also covers leases
	// just retired from cache, so a resumed coordinator need not
	// re-consult them.
	c.saveCheckpoint()
	c.logf("serving %d sweep(s) on %s", len(c.sweeps), ln.Addr())
	if c.cfg.OnListen != nil {
		c.cfg.OnListen(ln.Addr().String())
	}
	return nil
}

// Start is the single-sweep entry point: enqueue the grid (under the
// Config's backend identity), restore from the checkpoint when
// Config.Resume is set, and serve.
func (c *Coordinator) Start(g sweep.Grid, seed uint64, collapse ...string) error {
	if _, err := c.Enqueue(Sweep{
		Grid: g, Seed: seed, Collapse: collapse,
		BackendName: c.cfg.BackendName, BackendFP: c.cfg.BackendFP,
	}); err != nil {
		return err
	}
	if c.cfg.Resume {
		if err := c.Restore(c.cfg.Checkpoint); err != nil {
			return err
		}
	}
	return c.Serve()
}

// Addr returns the bound listen address (useful with ":0").
func (c *Coordinator) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Stats returns a snapshot of the scheduling counters, aggregated over
// the sweep queue.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Stats{Workers: c.joined}
	for _, s := range c.sweeps {
		out.Leases += s.stats.Leases
		out.Reissues += s.stats.Reissues
		out.Steals += s.stats.Steals
		out.Duplicates += s.stats.Duplicates
		out.Failures += s.stats.Failures
		out.Replays += s.stats.Replays
	}
	return out
}

// Wait blocks until the first sweep of the queue has a result and
// returns its merged output; see WaitSweep.
func (c *Coordinator) Wait(ctx context.Context) (*sweep.Collapsed, error) {
	return c.WaitSweep(ctx, 0)
}

// WaitSweep blocks until the i-th enqueued sweep completes (or a
// worker reported a cell error, or ctx is cancelled) and returns its
// merged result, byte-identical to a single-process run. The server
// keeps answering "done" to stragglers until Drain or Close.
func (c *Coordinator) WaitSweep(ctx context.Context, i int) (*sweep.Collapsed, error) {
	c.mu.Lock()
	if i < 0 || i >= len(c.sweeps) {
		n := len(c.sweeps)
		c.mu.Unlock()
		return nil, fmt.Errorf("coord: sweep %d of a %d-sweep queue", i, n)
	}
	s := c.sweeps[i]
	c.mu.Unlock()
	select {
	case <-s.done:
	case <-ctx.Done():
		c.failSweep(s, fmt.Errorf("coord: %w", ctx.Err()))
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.failed != nil {
		return nil, s.failed
	}
	return s.merged, nil
}

// Drain waits until every known worker has been told its sweep is over
// and requests have gone quiet (capped by DoneGrace), then stops the
// server — so short-lived coordinator processes don't vanish mid-poll
// and turn clean worker exits into connection errors. The quiet window
// covers workers of a pre-crash incarnation, which the resumed
// coordinator only learns about when they poll.
func (c *Coordinator) Drain() {
	quiet := min(c.cfg.DoneGrace/4, 250*time.Millisecond)
	deadline := time.Now().Add(c.cfg.DoneGrace)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		all := time.Since(c.lastReq) >= quiet
		for _, w := range c.workers {
			if !w.told {
				all = false
			}
		}
		c.mu.Unlock()
		if all {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.Close()
}

// Close stops the server immediately.
func (c *Coordinator) Close() {
	c.mu.Lock()
	srv := c.srv
	c.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Dispatch implements sweep.Dispatcher: it serves the grid to workers
// and blocks until their merged result is ready. The run function is
// deliberately unused — cells execute on workers, which construct the
// same backend locally — but the signature lets distributed runs drive
// the exact facade path local and sharded runs use.
func (c *Coordinator) Dispatch(g sweep.Grid, run sweep.CellFunc, seed uint64, collapse ...string) (*sweep.Collapsed, error) {
	_ = run
	if err := c.Start(g, seed, collapse...); err != nil {
		return nil, err
	}
	ctx := c.cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	col, err := c.Wait(ctx)
	c.Drain()
	return col, err
}

// fail stops every unfinished sweep with the given error.
func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	states := append([]*sweepState(nil), c.sweeps...)
	c.mu.Unlock()
	for _, s := range states {
		c.failSweep(s, err)
	}
}

// failSweep records a sweep's first fatal error and releases its
// waiters; subsequent lease requests for it answer abort.
func (c *Coordinator) failSweep(s *sweepState, err error) {
	c.mu.Lock()
	if !s.terminal() {
		s.failed = err
		s.state = sweepFailed
		c.advance()
		c.saveCheckpoint()
	}
	c.mu.Unlock()
	s.finish.Do(func() { close(s.done) })
}

// completeSweep finalizes the active sweep's aggregate. Callers hold
// mu; the done channel is closed by the caller after unlocking.
func (c *Coordinator) completeSweep(s *sweepState) {
	var frozen bytes.Buffer
	if err := s.acc.WriteState(&frozen); err == nil {
		s.aggBytes = frozen.Bytes()
	}
	merged, err := s.acc.Merged()
	if err != nil {
		// Unreachable when lease validation holds; surface it rather
		// than trust a wrong merge.
		s.failed = fmt.Errorf("coord: finalizing sweep %d: %w", s.index, err)
		s.state = sweepFailed
	} else {
		s.merged = merged
		s.state = sweepDone
	}
	c.advance()
	c.saveCheckpoint()
	c.logf("sweep %d %s", s.index, s.state)
}

// applyCache retires every lease of the sweep whose cells all have
// verified cell-cache entries: the replayed result is validated and
// absorbed exactly like a worker upload, with "cache" as the winner.
// Replay is all-or-nothing per lease — a single missing or corrupt
// entry leaves the whole lease for workers — and any validation or
// absorb anomaly demotes the replay to a miss rather than failing the
// sweep: the cache is an accelerator, never a correctness dependency.
// Callers hold mu.
func (c *Coordinator) applyCache(s *sweepState) {
	if c.cfg.Cache == nil || s.terminal() || s.remaining == 0 {
		return
	}
	sc := c.cfg.Cache.Sweep(s.backend, s.backFP, s.grid, s.seed)
	if sc == nil {
		return
	}
	retired := 0
	for _, l := range s.leases {
		if l.done {
			continue
		}
		col, ok := sc.Replay(s.grid, l.cells, s.collapse...)
		if !ok {
			continue
		}
		if err := validateLeaseResult(s, l, col); err != nil {
			c.logf("sweep %d lease %d cached result rejected: %v", s.index, l.id, err)
			continue
		}
		if err := s.acc.Absorb(col); err != nil {
			c.logf("sweep %d lease %d cached result rejected: %v", s.index, l.id, err)
			continue
		}
		l.done = true
		l.winner = "cache"
		l.issues = nil
		l.queued = false
		s.remaining--
		s.cellsDone += len(l.cells)
		retired++
	}
	if retired == 0 {
		return
	}
	pending := s.pending[:0]
	for _, id := range s.pending {
		if !s.leases[id].done {
			pending = append(pending, id)
		}
	}
	s.pending = pending
	c.logf("sweep %d: %d/%d leases retired from cache (%d/%d cells)",
		s.index, len(s.leases)-s.remaining, len(s.leases), s.cellsDone, s.cells)
	if s.remaining == 0 {
		c.completeSweep(s)
		s.finish.Do(func() { close(s.done) })
	}
}

// touch registers (or refreshes) a worker seen on the wire. Callers
// hold mu.
func (c *Coordinator) touch(worker string, sweepIdx int) *workerInfo {
	c.lastReq = c.now()
	if worker == "" {
		return nil
	}
	w, ok := c.workers[worker]
	if !ok {
		w = &workerInfo{sweep: sweepIdx, joinedAt: c.now()}
		c.workers[worker] = w
	}
	w.sweep = sweepIdx
	w.lastAt = c.now()
	return w
}

func respond(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func reject(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

// matchSweep finds the queue entry a joining worker belongs to: the
// first non-terminal sweep whose identity the worker proves, falling
// back to a terminal match (so its workers hear done/abort through the
// normal lease path). Callers hold mu.
func (c *Coordinator) matchSweep(req joinRequest) *sweepState {
	var fallback *sweepState
	for _, s := range c.sweeps {
		if req.Fingerprint != s.fp || req.Cells != s.cells {
			continue
		}
		if s.backend != "" && req.Backend != s.backend {
			continue
		}
		if req.BackendFP != s.backFP {
			continue
		}
		if !s.terminal() {
			return s
		}
		if fallback == nil {
			fallback = s
		}
	}
	return fallback
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		reject(w, http.StatusBadRequest, "coord: join: %v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastReq = c.now()
	if req.Proto != protocolVersion {
		reject(w, http.StatusConflict, "coord: protocol %d, want %d", req.Proto, protocolVersion)
		return
	}
	s := c.matchSweep(req)
	if s == nil {
		// Diagnose against the sweep the worker most plausibly meant:
		// the active one (or the first, if the queue is spent).
		ref := c.sweeps[min(c.active, len(c.sweeps)-1)]
		switch {
		case req.Fingerprint != ref.fp:
			reject(w, http.StatusConflict,
				"coord: grid fingerprint matches no queued sweep: the worker enumerates a different sweep (check backend flags)")
		case req.Cells != ref.cells:
			reject(w, http.StatusConflict, "coord: worker grid has %d cells, coordinator %d", req.Cells, ref.cells)
		case ref.backend != "" && req.Backend != ref.backend:
			reject(w, http.StatusConflict, "coord: worker backend %q, coordinator %q", req.Backend, ref.backend)
		default:
			reject(w, http.StatusConflict,
				"coord: backend content fingerprint mismatch (e.g. a different trace file on the worker)")
		}
		return
	}
	if s.state == sweepQueued {
		respond(w, joinResponse{Status: joinQueued, Sweep: s.index, RetryMS: 500})
		return
	}
	c.joined++
	id := fmt.Sprintf("w%d", c.joined)
	if c.boot > 0 {
		// Keep resumed-incarnation ids distinct from pre-crash ones
		// still polling, so Drain and status never conflate them.
		id = fmt.Sprintf("w%d.%d", c.boot, c.joined)
	}
	c.touch(id, s.index)
	c.logf("worker %s joined sweep %d", id, s.index)
	respond(w, joinResponse{Status: joinOK, Worker: id, Sweep: s.index, Seed: s.seed, Collapse: s.collapse})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		reject(w, http.StatusBadRequest, "coord: lease: %v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Sweep < 0 || req.Sweep >= len(c.sweeps) {
		reject(w, http.StatusBadRequest, "coord: unknown sweep %d", req.Sweep)
		return
	}
	s := c.sweeps[req.Sweep]
	wi := c.touch(req.Worker, req.Sweep)
	switch {
	case s.state == sweepFailed:
		c.told(wi)
		respond(w, leaseResponse{Status: statusAbort, Error: s.failed.Error()})
		return
	case s.state == sweepDone:
		c.told(wi)
		respond(w, leaseResponse{Status: statusDone})
		return
	case s.state == sweepQueued:
		respond(w, leaseResponse{Status: statusWait, RetryMS: 500})
		return
	}
	c.reap(s, c.now())
	for len(s.pending) > 0 {
		l := s.leases[s.pending[0]]
		s.pending = s.pending[1:]
		if l.done || !l.queued {
			// Completed while waiting in the queue — e.g. a pre-crash
			// worker's upload landed after a resume re-queued the lease.
			continue
		}
		l.queued = false
		l.issues = append(l.issues, c.now().Add(c.cfg.LeaseTTL))
		c.logf("sweep %d lease %d (%d cells) -> %s", s.index, l.id, len(l.cells), req.Worker)
		respond(w, leaseResponse{Status: statusLease, Lease: l.id, Cells: l.cells})
		return
	}
	// The queue is dry but leases are still outstanding: steal — issue
	// a speculative duplicate of the least-duplicated, earliest-expiring
	// incomplete lease. The first uploaded result wins; both copies
	// compute identical bytes, so the race never affects output.
	var victim *lease
	for _, l := range s.leases {
		if l.done || len(l.issues) >= c.cfg.MaxIssues {
			continue
		}
		if victim == nil || len(l.issues) < len(victim.issues) ||
			(len(l.issues) == len(victim.issues) && l.issues[0].Before(victim.issues[0])) {
			victim = l
		}
	}
	if victim == nil {
		respond(w, leaseResponse{Status: statusWait, RetryMS: 200})
		return
	}
	victim.issues = append(victim.issues, c.now().Add(c.cfg.LeaseTTL))
	s.stats.Steals++
	c.logf("sweep %d lease %d stolen by %s (speculative duplicate %d)",
		s.index, victim.id, req.Worker, len(victim.issues))
	respond(w, leaseResponse{Status: statusLease, Lease: victim.id, Cells: victim.cells})
}

// reap drops expired issues and re-queues incomplete leases nobody is
// running anymore (worker loss). Callers hold mu.
func (c *Coordinator) reap(s *sweepState, now time.Time) {
	for _, l := range s.leases {
		if l.done {
			continue
		}
		live := l.issues[:0]
		for _, exp := range l.issues {
			if exp.After(now) {
				live = append(live, exp)
			}
		}
		expired := len(l.issues) - len(live)
		l.issues = live
		if expired > 0 && len(l.issues) == 0 && !l.queued {
			l.queued = true
			s.pending = append(s.pending, l.id)
			s.stats.Reissues++
			c.logf("sweep %d lease %d expired with no result, reissue", s.index, l.id)
		}
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		reject(w, http.StatusBadRequest, "coord: result: %v", err)
		return
	}
	c.mu.Lock()
	if req.Sweep < 0 || req.Sweep >= len(c.sweeps) {
		c.mu.Unlock()
		reject(w, http.StatusBadRequest, "coord: unknown sweep %d", req.Sweep)
		return
	}
	s := c.sweeps[req.Sweep]
	wi := c.touch(req.Worker, req.Sweep)
	if req.Lease < 0 || req.Lease >= len(s.leases) {
		c.mu.Unlock()
		reject(w, http.StatusBadRequest, "coord: unknown lease %d", req.Lease)
		return
	}
	l := s.leases[req.Lease]
	if req.Error != "" {
		if l.done || s.terminal() {
			// Another worker already completed this lease (steal or
			// reissue); a straggler's error for it is as irrelevant as
			// a straggler's duplicate result. Unless the sweep itself
			// has failed, the straggler should keep serving — its next
			// lease request will learn the sweep's real status — so a
			// benign discard must not read as a fatal verdict.
			c.logf("sweep %d lease %d late error from %s discarded", s.index, l.id, req.Worker)
			done := s.remaining == 0
			if done || s.terminal() {
				c.told(wi)
			}
			retry := s.failed == nil
			c.mu.Unlock()
			respond(w, resultResponse{Accepted: false, Done: done, Retry: retry})
			return
		}
		if req.Attempt != "" {
			if l.reported[req.Attempt] {
				// Re-delivered report of an attempt already charged:
				// repeat the in-budget verdict (had it exhausted the
				// budget, the sweep would be terminal and handled above).
				c.logf("sweep %d lease %d failure report %s re-delivered, same verdict", s.index, l.id, req.Attempt)
				c.mu.Unlock()
				respond(w, resultResponse{Accepted: false, Retry: true})
				return
			}
			if l.reported == nil {
				l.reported = make(map[string]bool)
			}
			l.reported[req.Attempt] = true
		}
		l.failures++
		if l.failures > c.cfg.MaxLeaseFailures {
			cells := append([]int(nil), l.cells...)
			c.mu.Unlock()
			c.failSweep(s, fmt.Errorf(
				"coord: sweep %d lease %d (cells %v) failed %d times, budget %d — poison cell; last worker %s: %s",
				s.index, req.Lease, cells, l.failures, c.cfg.MaxLeaseFailures, req.Worker, req.Error))
			respond(w, resultResponse{Accepted: false, Done: true})
			return
		}
		// Within budget: charge the failure, retire the reporting
		// worker's issue, and re-queue the lease for another attempt.
		// Which issue slot was the reporter's is unknowable (expiries
		// carry no worker identity), so retire the earliest — at worst a
		// thief's issue expires via TTL instead.
		s.stats.Failures++
		if len(l.issues) > 0 {
			l.issues = l.issues[1:]
		}
		if len(l.issues) == 0 && !l.queued {
			l.queued = true
			s.pending = append(s.pending, l.id)
		}
		c.logf("sweep %d lease %d failure %d/%d from %s, reissue: %s",
			s.index, l.id, l.failures, c.cfg.MaxLeaseFailures, req.Worker, req.Error)
		c.mu.Unlock()
		respond(w, resultResponse{Accepted: false, Retry: true})
		return
	}
	if s.terminal() || l.done {
		replay := l.done && req.Worker != "" && req.Worker == l.winner
		if replay {
			// At-least-once delivery: the winner's own upload arrived
			// again (dropped ack, duplicated request). It was already
			// absorbed exactly once; re-acknowledge it as accepted so
			// retries converge on the first verdict.
			s.stats.Replays++
			c.logf("sweep %d lease %d replay from winner %s re-acknowledged", s.index, l.id, req.Worker)
		} else if l.done {
			s.stats.Duplicates++
			c.logf("sweep %d lease %d duplicate from %s discarded", s.index, l.id, req.Worker)
		}
		done := s.remaining == 0
		if done || s.terminal() {
			c.told(wi)
		}
		c.mu.Unlock()
		respond(w, resultResponse{Accepted: replay, Done: done})
		return
	}
	col, err := sweep.ReadShard(bytes.NewReader(req.Shard))
	if err == nil {
		err = validateLeaseResult(s, l, col)
	}
	if err == nil {
		// The fold is the incremental merge: the upload is absorbed
		// into the running aggregate and never retained per lease, so
		// coordinator memory tracks groups and samples, not leases.
		err = s.acc.Absorb(col)
	}
	if err != nil {
		c.mu.Unlock()
		c.failSweep(s, fmt.Errorf("coord: worker %s, sweep %d lease %d: %v", req.Worker, s.index, req.Lease, err))
		respond(w, resultResponse{Accepted: false, Done: true})
		return
	}
	l.done = true
	l.winner = req.Worker
	l.issues = nil
	l.queued = false
	s.remaining--
	s.cellsDone += len(l.cells)
	if wi != nil {
		wi.cells += len(l.cells)
	}
	done := s.remaining == 0
	c.logf("sweep %d lease %d done by %s (%d/%d)",
		s.index, l.id, req.Worker, len(s.leases)-s.remaining, len(s.leases))
	if done {
		c.completeSweep(s)
		c.told(wi)
	} else {
		c.saveCheckpoint()
	}
	c.mu.Unlock()
	if done {
		s.finish.Do(func() { close(s.done) })
	}
	respond(w, resultResponse{Accepted: true, Done: done})
}

// validateLeaseResult checks an uploaded Collapsed describes this sweep
// and covers exactly the lease's cells. Callers hold mu.
func validateLeaseResult(s *sweepState, l *lease, col *sweep.Collapsed) error {
	if col.Seed != s.seed {
		return fmt.Errorf("result for seed %d, want %d", col.Seed, s.seed)
	}
	if col.Shard != (sweep.Shard{}) {
		return fmt.Errorf("result is a static shard slice %s, not a lease result", col.Shard)
	}
	if col.Cells() != s.cells {
		return fmt.Errorf("result grid has %d cells, want %d", col.Cells(), s.cells)
	}
	skel := s.skeleton
	if !slices.Equal(col.CollapsedAxes, skel.CollapsedAxes) || !slices.Equal(col.GroupAxes, skel.GroupAxes) {
		return fmt.Errorf("result collapses different axes")
	}
	if len(col.Groups) != len(skel.Groups) {
		return fmt.Errorf("result has %d groups, want %d", len(col.Groups), len(skel.Groups))
	}
	for gi, g := range col.Groups {
		if g.Key != skel.Groups[gi].Key {
			return fmt.Errorf("result group %d is %q, want %q", gi, g.Key, skel.Groups[gi].Key)
		}
		if g.Count != l.expected[gi] {
			return fmt.Errorf("result group %q ran %d cells, lease expects %d", g.Key, g.Count, l.expected[gi])
		}
	}
	return nil
}

// told marks a worker as having heard its sweep is over. Callers hold
// mu.
func (c *Coordinator) told(w *workerInfo) {
	if w != nil {
		w.told = true
	}
}

package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"slices"
	"sync"
	"time"

	"hadooppreempt/internal/sweep"
)

// Config tunes a coordinator.
type Config struct {
	// Addr is the TCP listen address, e.g. ":9090" or "127.0.0.1:0".
	Addr string
	// LeaseCells is the number of grid cells per lease (default 8).
	// Smaller leases balance uneven cell costs better at the price of
	// more round trips.
	LeaseCells int
	// LeaseTTL bounds how long a lease may stay outstanding without a
	// result before it is re-queued for another worker (default 30s).
	LeaseTTL time.Duration
	// MaxIssues caps how many workers may run one lease concurrently
	// via stealing (default 2: the original holder plus one thief).
	MaxIssues int
	// DoneGrace bounds how long Drain waits for joined workers to hear
	// the sweep is over before the server stops (default 2s).
	DoneGrace time.Duration
	// BackendName, when set, must match joining workers' backend name.
	BackendName string
	// BackendFP, when set, must match joining workers' backend content
	// fingerprint (see Fingerprinter).
	BackendFP string
	// Context, when set, cancels Dispatch (default context.Background).
	Context context.Context
	// OnListen, when set, receives the bound listen address once the
	// server is up — the way to learn the port of an ":0" Addr.
	OnListen func(addr string)
	// Logf, when set, receives progress lines (joins, leases, steals,
	// re-issues, completions).
	Logf func(format string, args ...any)
}

// Stats counts scheduling events, for tests and operator logs.
type Stats struct {
	// Workers is the number of workers that joined.
	Workers int
	// Leases is the number of work units the grid was partitioned into.
	Leases int
	// Reissues counts leases re-queued after their TTL expired with no
	// result (worker loss).
	Reissues int
	// Steals counts speculative duplicate issues of outstanding leases
	// to workers that drained the queue early.
	Steals int
	// Duplicates counts uploaded results discarded because another
	// worker completed the lease first.
	Duplicates int
}

// lease is one work unit: a batch of grid cell indices.
type lease struct {
	id    int
	cells []int
	// expected holds the per-group cell counts a correct result must
	// report, precomputed from the grid geometry.
	expected map[int]int
	done     bool
	result   *sweep.Collapsed
	// issues holds the expiry times of the active issues of this lease
	// (one per worker currently running it).
	issues []time.Time
	queued bool
}

// Coordinator serves lease-based work units for one sweep and merges
// the results. Create with New, then either call Dispatch (it
// implements sweep.Dispatcher) or Start/Wait/Drain separately.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	started   bool
	seed      uint64
	collapse  []string
	fp        string
	cells     int
	skeleton  *sweep.Collapsed
	leases    []*lease
	pending   []int
	remaining int
	workers   map[string]bool // worker id -> has been told the sweep is over
	stats     Stats
	failed    error
	finish    sync.Once
	done      chan struct{}
	ln        net.Listener
	srv       *http.Server
}

// New builds a coordinator; Start (or Dispatch) binds it to a grid.
func New(cfg Config) *Coordinator {
	if cfg.LeaseCells < 1 {
		cfg.LeaseCells = 8
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxIssues < 1 {
		cfg.MaxIssues = 2
	}
	if cfg.DoneGrace <= 0 {
		cfg.DoneGrace = 2 * time.Second
	}
	return &Coordinator{
		cfg:     cfg,
		workers: make(map[string]bool),
		done:    make(chan struct{}),
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Start partitions the grid into leases and begins serving the
// protocol. It returns once the listener is bound (see Addr), so
// workers started afterwards cannot miss it.
func (c *Coordinator) Start(g sweep.Grid, seed uint64, collapse ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("coord: coordinator already started")
	}
	// Both fallible steps come before any state mutation, so a failed
	// Start (bad grid, port in use) leaves the coordinator clean for a
	// retry instead of with doubled lease state.
	skel, err := sweep.Skeleton(g, seed, collapse...)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return fmt.Errorf("coord: listen %s: %w", c.cfg.Addr, err)
	}
	c.skeleton = skel
	c.seed = seed
	c.collapse = append([]string(nil), collapse...)
	c.fp = g.Fingerprint()
	c.cells = skel.Cells()
	for lo := 0; lo < c.cells; lo += c.cfg.LeaseCells {
		hi := lo + c.cfg.LeaseCells
		if hi > c.cells {
			hi = c.cells
		}
		l := &lease{id: len(c.leases), expected: make(map[int]int)}
		for cell := lo; cell < hi; cell++ {
			l.cells = append(l.cells, cell)
			gi, _ := skel.GroupOfCell(cell)
			l.expected[gi]++
		}
		l.queued = true
		c.leases = append(c.leases, l)
		c.pending = append(c.pending, l.id)
	}
	c.remaining = len(c.leases)
	c.stats.Leases = len(c.leases)
	c.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join", c.handleJoin)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/result", c.handleResult)
	c.srv = &http.Server{Handler: mux}
	go c.srv.Serve(ln)
	c.started = true
	c.logf("serving %d cells as %d leases of <=%d on %s",
		c.cells, len(c.leases), c.cfg.LeaseCells, ln.Addr())
	if c.cfg.OnListen != nil {
		c.cfg.OnListen(ln.Addr().String())
	}
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (c *Coordinator) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Stats returns a snapshot of the scheduling counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Wait blocks until every lease has a result (or a worker reported a
// cell error, or ctx is cancelled) and returns the merged sweep,
// byte-identical to a single-process run. The server keeps answering
// "done" to stragglers until Drain or Close.
func (c *Coordinator) Wait(ctx context.Context) (*sweep.Collapsed, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
		c.fail(fmt.Errorf("coord: %w", ctx.Err()))
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, c.failed
	}
	parts := make([]*sweep.Collapsed, len(c.leases))
	for i, l := range c.leases {
		parts[i] = l.result
	}
	merged, err := sweep.MergeSubsets(parts...)
	if err != nil {
		return nil, fmt.Errorf("coord: merging %d lease results: %w", len(parts), err)
	}
	return merged, nil
}

// Drain waits until every joined worker has been told the sweep is
// over (capped by DoneGrace) and then stops the server, so short-lived
// coordinator processes don't vanish mid-poll and turn clean worker
// exits into connection errors.
func (c *Coordinator) Drain() {
	deadline := time.Now().Add(c.cfg.DoneGrace)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		all := true
		for _, told := range c.workers {
			if !told {
				all = false
			}
		}
		c.mu.Unlock()
		if all {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.Close()
}

// Close stops the server immediately.
func (c *Coordinator) Close() {
	c.mu.Lock()
	srv := c.srv
	c.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Dispatch implements sweep.Dispatcher: it serves the grid to workers
// and blocks until their merged result is ready. The run function is
// deliberately unused — cells execute on workers, which construct the
// same backend locally — but the signature lets distributed runs drive
// the exact facade path local and sharded runs use.
func (c *Coordinator) Dispatch(g sweep.Grid, run sweep.CellFunc, seed uint64, collapse ...string) (*sweep.Collapsed, error) {
	_ = run
	if err := c.Start(g, seed, collapse...); err != nil {
		return nil, err
	}
	ctx := c.cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	col, err := c.Wait(ctx)
	c.Drain()
	return col, err
}

// fail records the first fatal error and releases Wait; subsequent
// lease requests answer abort.
func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	if c.failed == nil {
		c.failed = err
	}
	c.mu.Unlock()
	c.finish.Do(func() { close(c.done) })
}

func respond(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func reject(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		reject(w, http.StatusBadRequest, "coord: join: %v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case req.Proto != protocolVersion:
		reject(w, http.StatusConflict, "coord: protocol %d, want %d", req.Proto, protocolVersion)
		return
	case req.Fingerprint != c.fp:
		reject(w, http.StatusConflict,
			"coord: grid fingerprint mismatch: the worker enumerates a different sweep (check backend flags)")
		return
	case req.Cells != c.cells:
		reject(w, http.StatusConflict, "coord: worker grid has %d cells, coordinator %d", req.Cells, c.cells)
		return
	case c.cfg.BackendName != "" && req.Backend != c.cfg.BackendName:
		reject(w, http.StatusConflict, "coord: worker backend %q, coordinator %q", req.Backend, c.cfg.BackendName)
		return
	case req.BackendFP != c.cfg.BackendFP:
		reject(w, http.StatusConflict,
			"coord: backend content fingerprint mismatch (e.g. a different trace file on the worker)")
		return
	}
	c.stats.Workers++
	id := fmt.Sprintf("w%d", c.stats.Workers)
	c.workers[id] = false
	c.logf("worker %s joined", id)
	respond(w, joinResponse{Worker: id, Seed: c.seed, Collapse: c.collapse})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		reject(w, http.StatusBadRequest, "coord: lease: %v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		c.told(req.Worker)
		respond(w, leaseResponse{Status: statusAbort, Error: c.failed.Error()})
		return
	}
	c.reap(time.Now())
	if c.remaining == 0 {
		c.told(req.Worker)
		respond(w, leaseResponse{Status: statusDone})
		return
	}
	if len(c.pending) > 0 {
		l := c.leases[c.pending[0]]
		c.pending = c.pending[1:]
		l.queued = false
		l.issues = append(l.issues, time.Now().Add(c.cfg.LeaseTTL))
		c.logf("lease %d (%d cells) -> %s", l.id, len(l.cells), req.Worker)
		respond(w, leaseResponse{Status: statusLease, Lease: l.id, Cells: l.cells})
		return
	}
	// The queue is dry but leases are still outstanding: steal — issue
	// a speculative duplicate of the least-duplicated, earliest-expiring
	// incomplete lease. The first uploaded result wins; both copies
	// compute identical bytes, so the race never affects output.
	var victim *lease
	for _, l := range c.leases {
		if l.done || len(l.issues) >= c.cfg.MaxIssues {
			continue
		}
		if victim == nil || len(l.issues) < len(victim.issues) ||
			(len(l.issues) == len(victim.issues) && l.issues[0].Before(victim.issues[0])) {
			victim = l
		}
	}
	if victim == nil {
		respond(w, leaseResponse{Status: statusWait, RetryMS: 200})
		return
	}
	victim.issues = append(victim.issues, time.Now().Add(c.cfg.LeaseTTL))
	c.stats.Steals++
	c.logf("lease %d stolen by %s (speculative duplicate %d)", victim.id, req.Worker, len(victim.issues))
	respond(w, leaseResponse{Status: statusLease, Lease: victim.id, Cells: victim.cells})
}

// reap drops expired issues and re-queues incomplete leases nobody is
// running anymore (worker loss). Callers hold mu.
func (c *Coordinator) reap(now time.Time) {
	for _, l := range c.leases {
		if l.done {
			continue
		}
		live := l.issues[:0]
		for _, exp := range l.issues {
			if exp.After(now) {
				live = append(live, exp)
			}
		}
		expired := len(l.issues) - len(live)
		l.issues = live
		if expired > 0 && len(l.issues) == 0 && !l.queued {
			l.queued = true
			c.pending = append(c.pending, l.id)
			c.stats.Reissues++
			c.logf("lease %d expired with no result, reissue", l.id)
		}
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		reject(w, http.StatusBadRequest, "coord: result: %v", err)
		return
	}
	c.mu.Lock()
	if req.Lease < 0 || req.Lease >= len(c.leases) {
		c.mu.Unlock()
		reject(w, http.StatusBadRequest, "coord: unknown lease %d", req.Lease)
		return
	}
	l := c.leases[req.Lease]
	if req.Error != "" {
		if l.done {
			// Another worker already completed this lease (steal or
			// reissue); a straggler's error for it is as irrelevant as
			// a straggler's duplicate result.
			c.logf("lease %d late error from %s discarded (lease already done)", l.id, req.Worker)
			done := c.remaining == 0
			if done {
				c.told(req.Worker)
			}
			c.mu.Unlock()
			respond(w, resultResponse{Accepted: false, Done: done})
			return
		}
		c.mu.Unlock()
		c.fail(fmt.Errorf("coord: worker %s, lease %d: %s", req.Worker, req.Lease, req.Error))
		respond(w, resultResponse{Accepted: false, Done: true})
		return
	}
	if c.failed != nil || l.done {
		if l.done {
			c.stats.Duplicates++
			c.logf("lease %d duplicate from %s discarded", l.id, req.Worker)
		}
		done := c.remaining == 0
		if done || c.failed != nil {
			c.told(req.Worker)
		}
		c.mu.Unlock()
		respond(w, resultResponse{Accepted: false, Done: done})
		return
	}
	col, err := sweep.ReadShard(bytes.NewReader(req.Shard))
	if err == nil {
		err = c.validateLeaseResult(l, col)
	}
	if err != nil {
		c.mu.Unlock()
		c.fail(fmt.Errorf("coord: worker %s, lease %d: %v", req.Worker, req.Lease, err))
		respond(w, resultResponse{Accepted: false, Done: true})
		return
	}
	l.done = true
	l.result = col
	l.issues = nil
	l.queued = false
	c.remaining--
	done := c.remaining == 0
	c.logf("lease %d done by %s (%d/%d)", l.id, req.Worker, len(c.leases)-c.remaining, len(c.leases))
	if done {
		c.told(req.Worker)
	}
	c.mu.Unlock()
	if done {
		c.finish.Do(func() { close(c.done) })
	}
	respond(w, resultResponse{Accepted: true, Done: done})
}

// validateLeaseResult checks an uploaded Collapsed describes this sweep
// and covers exactly the lease's cells. Callers hold mu.
func (c *Coordinator) validateLeaseResult(l *lease, col *sweep.Collapsed) error {
	if col.Seed != c.seed {
		return fmt.Errorf("result for seed %d, want %d", col.Seed, c.seed)
	}
	if col.Shard != (sweep.Shard{}) {
		return fmt.Errorf("result is a static shard slice %s, not a lease result", col.Shard)
	}
	if col.Cells() != c.cells {
		return fmt.Errorf("result grid has %d cells, want %d", col.Cells(), c.cells)
	}
	skel := c.skeleton
	if !slices.Equal(col.CollapsedAxes, skel.CollapsedAxes) || !slices.Equal(col.GroupAxes, skel.GroupAxes) {
		return fmt.Errorf("result collapses different axes")
	}
	if len(col.Groups) != len(skel.Groups) {
		return fmt.Errorf("result has %d groups, want %d", len(col.Groups), len(skel.Groups))
	}
	for gi, g := range col.Groups {
		if g.Key != skel.Groups[gi].Key {
			return fmt.Errorf("result group %d is %q, want %q", gi, g.Key, skel.Groups[gi].Key)
		}
		if g.Count != l.expected[gi] {
			return fmt.Errorf("result group %q ran %d cells, lease expects %d", g.Key, g.Count, l.expected[gi])
		}
	}
	return nil
}

// told marks a worker as having heard the sweep is over. Callers hold
// mu.
func (c *Coordinator) told(worker string) {
	if _, ok := c.workers[worker]; ok {
		c.workers[worker] = true
	}
}

package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hadooppreempt/internal/sweep"
)

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// Backend is the locally constructed execution backend. Its grid
	// must fingerprint-match the coordinator's; the coordinator's seed
	// and collapse axes govern.
	Backend sweep.Backend
	// Parallel bounds the worker's in-process pool per lease.
	Parallel int
	// JoinWindow bounds how long the worker retries the initial join
	// while the coordinator is still coming up (default 10s).
	JoinWindow time.Duration
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// protocolError is a rejection the coordinator chose to send (join
// refused, unknown lease) as opposed to a transport failure; the join
// retry loop fails fast on it.
type protocolError struct {
	status int
	msg    string
}

func (e *protocolError) Error() string { return e.msg }

// RunWorker joins the coordinator at cfg.Addr and executes leased cell
// batches through the backend until the coordinator reports the sweep
// is done. Lease results are uploaded as shard-encoded aggregates;
// whether this worker's copy of a stolen lease wins or is discarded
// never changes the merged output.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Backend == nil {
		return fmt.Errorf("coord: worker needs a backend")
	}
	if cfg.JoinWindow <= 0 {
		cfg.JoinWindow = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	g, err := cfg.Backend.Grid()
	if err != nil {
		return err
	}
	base := "http://" + cfg.Addr
	join := joinRequest{
		Proto:       protocolVersion,
		Backend:     cfg.Backend.Name(),
		Fingerprint: g.Fingerprint(),
		BackendFP:   BackendFingerprint(cfg.Backend),
		Cells:       g.Size(),
	}
	var id joinResponse
	deadline := time.Now().Add(cfg.JoinWindow)
	for {
		err = post(ctx, client, base+"/v1/join", join, &id)
		if err == nil {
			break
		}
		var pe *protocolError
		if errors.As(err, &pe) {
			return fmt.Errorf("coord: join %s: %w", cfg.Addr, err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coord: join %s: %w", cfg.Addr, err)
		}
		if err := sleep(ctx, 100*time.Millisecond); err != nil {
			return err
		}
	}
	logf("joined %s as %s (seed %d)", cfg.Addr, id.Worker, id.Seed)
	for {
		var lr leaseResponse
		if err := post(ctx, client, base+"/v1/lease", leaseRequest{Worker: id.Worker}, &lr); err != nil {
			return fmt.Errorf("coord: lease from %s: %w", cfg.Addr, err)
		}
		switch lr.Status {
		case statusDone:
			logf("sweep done, exiting")
			return nil
		case statusAbort:
			return fmt.Errorf("coord: sweep aborted: %s", lr.Error)
		case statusWait:
			retry := time.Duration(lr.RetryMS) * time.Millisecond
			if retry <= 0 {
				retry = 200 * time.Millisecond
			}
			if err := sleep(ctx, retry); err != nil {
				return err
			}
		case statusLease:
			logf("lease %d: %d cells", lr.Lease, len(lr.Cells))
			res := resultRequest{Worker: id.Worker, Lease: lr.Lease}
			col, err := sweep.RunCells(g, cfg.Backend.Cell, id.Seed, cfg.Parallel, lr.Cells, id.Collapse...)
			if err != nil {
				res.Error = err.Error()
				var rr resultResponse
				post(ctx, client, base+"/v1/result", res, &rr) // best effort before bailing
				return err
			}
			var buf bytes.Buffer
			if err := col.WriteShard(&buf); err != nil {
				return err
			}
			res.Shard = buf.Bytes()
			var rr resultResponse
			if err := post(ctx, client, base+"/v1/result", res, &rr); err != nil {
				return fmt.Errorf("coord: upload lease %d: %w", lr.Lease, err)
			}
			if !rr.Accepted {
				logf("lease %d result discarded (another worker won)", lr.Lease)
			}
			if rr.Done {
				logf("sweep done, exiting")
				return nil
			}
		default:
			return fmt.Errorf("coord: unknown lease status %q", lr.Status)
		}
	}
}

// post sends one JSON request and decodes the JSON response. Non-200
// statuses become protocolErrors carrying the server's error message.
func post(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &er) != nil || er.Error == "" {
			er.Error = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return &protocolError{status: resp.StatusCode, msg: er.Error}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleep waits d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hadooppreempt/internal/sim"
	"hadooppreempt/internal/sweep"
)

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// Backend is the locally constructed execution backend. Its grid
	// must fingerprint-match the coordinator's; the coordinator's seed
	// and collapse axes govern.
	Backend sweep.Backend
	// Parallel bounds the worker's in-process pool per lease.
	Parallel int
	// Cache, when set, memoizes leased cell results persistently: a
	// verified entry answers the cell without executing it, misses are
	// stored. Keys include the backend identity the worker proves at
	// join time, so a warm worker produces byte-identical uploads.
	// Volatile backends (see sweep.Volatile) bypass it.
	Cache *sweep.Cache
	// JoinWindow bounds how long the worker retries the initial join
	// while the coordinator is still coming up (default 10s).
	JoinWindow time.Duration
	// RetryWindow bounds how long the worker retries transient
	// transport errors mid-sweep — connection refused while a crashed
	// coordinator restarts with -resume — before giving up (default
	// 15s). Backoff is bounded: RetryBase doubling to a 2s cap, with
	// deterministic per-worker jitter so a restarted coordinator is not
	// hit by every worker in lockstep.
	RetryWindow time.Duration
	// RetryBase is the initial retry backoff (default 100ms); tests and
	// chaos runs shrink it to keep fault-heavy schedules fast.
	RetryBase time.Duration
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// protocolError is a rejection the coordinator chose to send (join
// refused, unknown lease) as opposed to a transport failure; retry
// loops fail fast on it.
type protocolError struct {
	msg string
}

func (e *protocolError) Error() string { return e.msg }

// RunWorker joins the coordinator at cfg.Addr and executes leased cell
// batches through the backend until the coordinator reports the sweep
// is done. Lease results are uploaded as shard-encoded aggregates;
// whether this worker's copy of a stolen lease wins or is discarded
// never changes the merged output. A coordinator that goes briefly
// unreachable mid-sweep (killed and restarted with -resume) does not
// strand the worker: requests retry with bounded backoff for
// RetryWindow, and the restarted coordinator re-registers the worker
// on its next request.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Backend == nil {
		return fmt.Errorf("coord: worker needs a backend")
	}
	if cfg.JoinWindow <= 0 {
		cfg.JoinWindow = 10 * time.Second
	}
	if cfg.RetryWindow <= 0 {
		cfg.RetryWindow = 15 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	g, err := cfg.Backend.Grid()
	if err != nil {
		return err
	}
	w := &worker{ctx: ctx, cfg: cfg, client: client, logf: logf, base: "http://" + cfg.Addr}
	join := joinRequest{
		Proto:       protocolVersion,
		Backend:     cfg.Backend.Name(),
		Fingerprint: g.Fingerprint(),
		BackendFP:   BackendFingerprint(cfg.Backend),
		Cells:       g.Size(),
	}
	var id joinResponse
	deadline := time.Now().Add(cfg.JoinWindow)
	for {
		err = post(ctx, client, w.base+"/v1/join", join, &id)
		if err == nil && id.Status == joinQueued {
			// The matching sweep is enqueued but not active yet; poll.
			logf("sweep %d queued, polling", id.Sweep)
			deadline = time.Now().Add(cfg.JoinWindow)
			err = fmt.Errorf("sweep %d queued", id.Sweep)
			if serr := sleep(ctx, retryHint(id.RetryMS, 500*time.Millisecond)); serr != nil {
				return serr
			}
			continue
		}
		if err == nil {
			break
		}
		var pe *protocolError
		if errors.As(err, &pe) {
			return fmt.Errorf("coord: join %s: %w", cfg.Addr, err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coord: join %s: %w", cfg.Addr, err)
		}
		if err := sleep(ctx, cfg.RetryBase); err != nil {
			return err
		}
	}
	logf("joined %s as %s for sweep %d (seed %d)", cfg.Addr, id.Worker, id.Sweep, id.Seed)
	// Jitter stream: deterministic per (sweep seed, worker id), so two
	// workers never back off in lockstep yet a re-run of the same
	// schedule replays the same waits.
	w.jitter = sim.NewRNG(id.Seed).Stream("backoff/" + id.Worker)
	// Bind the cell cache to the identity just proven at join — the
	// same fingerprints the coordinator verified, so a cached entry can
	// only ever answer the exact sweep it was recorded under. The seed
	// comes from the coordinator, so the binding waits until here.
	var sc *sweep.SweepCache
	if cfg.Cache != nil {
		if sweep.IsVolatile(cfg.Backend) {
			sc = cfg.Cache.BypassSweep()
		} else {
			sc = cfg.Cache.Sweep(join.Backend, join.BackendFP, g, id.Seed)
		}
	}
	runCell := sc.WrapCell(cfg.Backend.Cell)
	attempts := 0
	for {
		var lr leaseResponse
		if err := w.post("/v1/lease", leaseRequest{Worker: id.Worker, Sweep: id.Sweep}, &lr); err != nil {
			return fmt.Errorf("coord: lease from %s: %w", cfg.Addr, err)
		}
		switch lr.Status {
		case statusDone:
			logf("sweep done, exiting")
			return nil
		case statusAbort:
			return fmt.Errorf("coord: sweep aborted: %s", lr.Error)
		case statusWait:
			if err := sleep(ctx, retryHint(lr.RetryMS, 200*time.Millisecond)); err != nil {
				return err
			}
		case statusLease:
			logf("lease %d: %d cells", lr.Lease, len(lr.Cells))
			// One attempt id per lease execution: re-sent copies of this
			// result (lost ack, duplicated request) are idempotent at
			// the coordinator, while a genuine re-execution is not.
			attempts++
			res := resultRequest{
				Worker: id.Worker, Sweep: id.Sweep, Lease: lr.Lease,
				Attempt: fmt.Sprintf("%s/%d/%d", id.Worker, lr.Lease, attempts),
			}
			col, err := sweep.RunCells(g, runCell, id.Seed, cfg.Parallel, lr.Cells, id.Collapse...)
			if err != nil {
				res.Error = err.Error()
				var rr resultResponse
				if perr := w.post("/v1/result", res, &rr); perr != nil {
					// Best effort before bailing — but say so: a silent
					// discard here would leave the coordinator to learn of
					// the loss only via the lease TTL.
					logf("lease %d: error report undelivered (%v), coordinator will reap via TTL", lr.Lease, perr)
					return err
				}
				if rr.Retry {
					// The coordinator absorbed the failure into the
					// lease's budget and re-queued it; keep serving.
					logf("lease %d failed within budget, reissued: %v", lr.Lease, err)
					continue
				}
				return err
			}
			var buf bytes.Buffer
			if err := col.WriteShard(&buf); err != nil {
				return err
			}
			res.Shard = buf.Bytes()
			var rr resultResponse
			if err := w.post("/v1/result", res, &rr); err != nil {
				return fmt.Errorf("coord: upload lease %d: %w", lr.Lease, err)
			}
			if !rr.Accepted {
				logf("lease %d result discarded (another worker won)", lr.Lease)
			}
			if rr.Done {
				logf("sweep done, exiting")
				return nil
			}
		default:
			return fmt.Errorf("coord: unknown lease status %q", lr.Status)
		}
	}
}

// worker bundles the per-run transport state so mid-sweep requests
// share one retry policy.
type worker struct {
	ctx    context.Context
	cfg    WorkerConfig
	client *http.Client
	logf   func(string, ...any)
	base   string
	jitter *sim.RNG
}

// post sends one mid-sweep request, retrying transient transport
// failures with bounded backoff (RetryBase doubling to a 2s cap) for up
// to cfg.RetryWindow — so a coordinator killed and restarted with
// -resume does not strand live workers. Each wait is jittered into
// [backoff/2, backoff] from the worker's deterministic stream, so a
// fleet that lost its coordinator simultaneously does not reconnect
// simultaneously. Protocol-level rejections fail fast.
func (w *worker) post(path string, in, out any) error {
	deadline := time.Now().Add(w.cfg.RetryWindow)
	backoff := w.cfg.RetryBase
	for {
		err := post(w.ctx, w.client, w.base+path, in, out)
		if err == nil {
			return nil
		}
		var pe *protocolError
		if errors.As(err, &pe) || time.Now().After(deadline) {
			return err
		}
		wait := backoff
		if w.jitter != nil && backoff > 1 {
			wait = backoff/2 + time.Duration(w.jitter.Int63n(int64(backoff/2)+1))
		}
		w.logf("coordinator unreachable (%v), retrying in %v", err, wait)
		if serr := sleep(w.ctx, wait); serr != nil {
			return serr
		}
		backoff = min(backoff*2, 2*time.Second)
	}
}

// retryHint converts a server retry hint to a duration, with a default
// for absent hints.
func retryHint(ms int, def time.Duration) time.Duration {
	if ms <= 0 {
		return def
	}
	return time.Duration(ms) * time.Millisecond
}

// post sends one JSON request and decodes the JSON response. Non-200
// statuses become protocolErrors carrying the server's error message.
func post(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &er) != nil || er.Error == "" {
			er.Error = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return &protocolError{msg: er.Error}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleep waits d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package coord

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"hadooppreempt/internal/sweep"
)

// Status is the GET /v1/status payload: queue-wide progress of a
// running coordinator.
type Status struct {
	Sweeps  []StatusSweep  `json:"sweeps"`
	Workers []StatusWorker `json:"workers,omitempty"`
	// Cache reports the coordinator-side cell-cache counters when a
	// cache is configured (workers keep their own counters; they are
	// not aggregated here).
	Cache *sweep.CacheCounters `json:"cache,omitempty"`
}

// StatusSweep is one queue entry's progress.
type StatusSweep struct {
	Sweep     int    `json:"sweep"`
	State     string `json:"state"`
	Cells     int    `json:"cells"`
	CellsDone int    `json:"cells_done"`
	Leases    int    `json:"leases"`
	// LeasesDone counts leases with an accepted result; Outstanding
	// counts leases issued to workers and still awaited; Queued counts
	// leases waiting to be issued.
	LeasesDone        int `json:"leases_done"`
	LeasesOutstanding int `json:"leases_outstanding"`
	LeasesQueued      int `json:"leases_queued"`
	// ElapsedMS is the active time so far; EtaMS estimates the time to
	// completion from the observed cell throughput (-1 when unknown:
	// the sweep has not started or no cell has finished yet).
	ElapsedMS int64  `json:"elapsed_ms"`
	EtaMS     int64  `json:"eta_ms"`
	Error     string `json:"error,omitempty"`
}

// StatusWorker is one worker's contribution.
type StatusWorker struct {
	Worker string `json:"worker"`
	Sweep  int    `json:"sweep"`
	// CellsDone counts grid cells this worker completed (first-accepted
	// results only).
	CellsDone int `json:"cells_done"`
	// CellsPerSec is the worker's observed throughput since it joined.
	CellsPerSec float64 `json:"cells_per_sec"`
	LastSeenMS  int64   `json:"last_seen_ms"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	st := c.statusLocked()
	c.lastReq = time.Now()
	c.mu.Unlock()
	respond(w, st)
}

// Status snapshots the coordinator's progress, the same view GET
// /v1/status serves.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

// statusLocked builds the progress snapshot. Callers hold mu.
func (c *Coordinator) statusLocked() Status {
	now := time.Now()
	st := Status{Sweeps: make([]StatusSweep, 0, len(c.sweeps))}
	for _, s := range c.sweeps {
		ss := StatusSweep{
			Sweep:        s.index,
			State:        s.state,
			Cells:        s.cells,
			CellsDone:    s.cellsDone,
			Leases:       len(s.leases),
			LeasesQueued: len(s.pending),
			EtaMS:        -1,
		}
		for _, l := range s.leases {
			switch {
			case l.done:
				ss.LeasesDone++
			case len(l.issues) > 0:
				ss.LeasesOutstanding++
			}
		}
		if s.failed != nil {
			ss.Error = s.failed.Error()
		}
		if !s.started.IsZero() {
			elapsed := now.Sub(s.started)
			ss.ElapsedMS = elapsed.Milliseconds()
			if s.state == sweepActive && s.cellsDone > 0 && elapsed > 0 {
				perCell := elapsed / time.Duration(s.cellsDone)
				ss.EtaMS = (perCell * time.Duration(s.cells-s.cellsDone)).Milliseconds()
			}
			if s.state == sweepDone {
				ss.EtaMS = 0
			}
		}
		st.Sweeps = append(st.Sweeps, ss)
	}
	for id, w := range c.workers {
		sw := StatusWorker{
			Worker:     id,
			Sweep:      w.sweep,
			CellsDone:  w.cells,
			LastSeenMS: now.Sub(w.lastAt).Milliseconds(),
		}
		if age := now.Sub(w.joinedAt).Seconds(); age > 0 {
			sw.CellsPerSec = float64(w.cells) / age
		}
		st.Workers = append(st.Workers, sw)
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Worker < st.Workers[j].Worker })
	if c.cfg.Cache != nil {
		cc := c.cfg.Cache.Counters()
		st.Cache = &cc
	}
	return st
}

// FetchStatus queries a running coordinator's GET /v1/status endpoint.
// Addr is the coordinator's host:port (as given to workers).
func FetchStatus(addr string) (*Status, error) {
	resp, err := http.Get("http://" + addr + "/v1/status")
	if err != nil {
		return nil, fmt.Errorf("coord: status %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error != "" {
			return nil, fmt.Errorf("coord: status %s: %s", addr, e.Error)
		}
		return nil, fmt.Errorf("coord: status %s: HTTP %d", addr, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("coord: status %s: %w", addr, err)
	}
	return &st, nil
}

package coord

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"hadooppreempt/internal/atomicio"
	"hadooppreempt/internal/sweep"
)

// checkpointVersion guards the on-disk format; bump it when the layout
// changes so a resume against an old file fails loudly.
const checkpointVersion = 1

// checkpointEnvelope wraps the state with a content checksum so a
// truncated or tampered file fails resume instead of silently
// corrupting a sweep.
type checkpointEnvelope struct {
	Version int             `json:"version"`
	Sum     string          `json:"sum"`
	State   json.RawMessage `json:"state"`
}

// checkpointState is everything a coordinator needs to resume:
// protocol and partition identity, the sweep queue's ledgers and
// running aggregates, and a boot counter that keeps worker ids of the
// next incarnation distinct from pre-crash ones still polling.
type checkpointState struct {
	Proto      int               `json:"proto"`
	LeaseCells int               `json:"lease_cells"`
	Boot       int               `json:"boot"`
	Sweeps     []checkpointSweep `json:"sweeps"`
}

// checkpointSweep is one queue entry: identity fields a resumed
// coordinator must re-derive identically, the ledger of accepted
// leases, and the running aggregate in shard-file encoding.
type checkpointSweep struct {
	Fingerprint string   `json:"fingerprint"`
	Backend     string   `json:"backend,omitempty"`
	BackendFP   string   `json:"backend_fp,omitempty"`
	Seed        uint64   `json:"seed"`
	Collapse    []string `json:"collapse,omitempty"`
	Cells       int      `json:"cells"`
	State       string   `json:"state"`
	Fail        string   `json:"fail,omitempty"`
	DoneLeases  []int    `json:"done_leases,omitempty"`
	// Aggregate is the sweep.WriteShard encoding of the running
	// aggregate over exactly the DoneLeases cells (raw samples
	// included), which is what makes resume byte-exact.
	Aggregate json.RawMessage `json:"aggregate"`
}

// saveCheckpoint persists the coordinator's state atomically (temp
// file + rename). Callers hold mu. Without a configured checkpoint
// path it is a no-op.
func (c *Coordinator) saveCheckpoint() {
	if c.cfg.Checkpoint == "" {
		return
	}
	st := checkpointState{
		Proto:      protocolVersion,
		LeaseCells: c.cfg.LeaseCells,
		Boot:       c.boot,
	}
	for _, s := range c.sweeps {
		cs := checkpointSweep{
			Fingerprint: s.fp,
			Backend:     s.backend,
			BackendFP:   s.backFP,
			Seed:        s.seed,
			Collapse:    s.collapse,
			Cells:       s.cells,
			State:       s.state,
		}
		if s.failed != nil {
			cs.Fail = s.failed.Error()
		}
		for _, l := range s.leases {
			if l.done {
				cs.DoneLeases = append(cs.DoneLeases, l.id)
			}
		}
		agg := s.aggBytes
		if agg == nil {
			var buf bytes.Buffer
			if err := s.acc.WriteState(&buf); err != nil {
				c.logf("checkpoint: serializing sweep %d aggregate: %v", s.index, err)
				return
			}
			agg = buf.Bytes()
		}
		cs.Aggregate = json.RawMessage(agg)
		st.Sweeps = append(st.Sweeps, cs)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		c.logf("checkpoint: encode: %v", err)
		return
	}
	env, err := json.Marshal(checkpointEnvelope{
		Version: checkpointVersion,
		Sum:     checksumHex(raw),
		State:   raw,
	})
	if err != nil {
		c.logf("checkpoint: encode: %v", err)
		return
	}
	write := c.cfg.WriteCheckpoint
	if write == nil {
		write = WriteFileDurable
	}
	if err := write(c.cfg.Checkpoint, append(env, '\n')); err != nil {
		// Non-fatal by design: the atomic writer guarantees the previous
		// checkpoint file is still intact, so the coordinator runs on
		// with a stale-but-valid ledger (a resume replays a little more
		// work, never wrong work).
		c.logf("checkpoint: %v", err)
		return
	}
	c.logf("checkpoint saved to %s", filepath.Base(c.cfg.Checkpoint))
}

// WriteFileDurable atomically replaces path with data (temp file +
// fsync + rename + directory fsync; see atomicio.WriteFileDurable).
// Without the syncs a crash right after the coordinator acked an upload
// could lose the checkpoint that justified the ack — the rename would
// exist only in the page cache. It is the default checkpoint writer
// (see Config.WriteCheckpoint) and the inner writer a chaos wrapper
// should delegate to.
func WriteFileDurable(path string, data []byte) error {
	return atomicio.WriteFileDurable(path, data)
}

// Restore loads a checkpoint written by a previous incarnation of this
// coordinator and applies it to the enqueued sweeps: accepted leases
// stay done, their aggregate is re-absorbed, and only the remaining
// leases will be issued — so the finished sweep's output is
// byte-identical to an uninterrupted run. The same sweeps must have
// been enqueued first (in the same order, with the same LeaseCells
// partition); Restore rejects a checkpoint whose identity fingerprints
// disagree. Call it before Serve.
func (c *Coordinator) Restore(path string) error {
	if path == "" {
		return fmt.Errorf("coord: resume requested without a checkpoint path")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("coord: resume: %w", err)
	}
	var env checkpointEnvelope
	if err := strictDecode(raw, &env); err != nil {
		return fmt.Errorf("coord: resume %s: truncated or corrupt checkpoint: %v", path, err)
	}
	if env.Version != checkpointVersion {
		return fmt.Errorf("coord: resume %s: checkpoint version %d, want %d", path, env.Version, checkpointVersion)
	}
	if checksumHex(env.State) != env.Sum {
		return fmt.Errorf("coord: resume %s: checkpoint checksum mismatch (file tampered or torn)", path)
	}
	var st checkpointState
	if err := strictDecode(env.State, &st); err != nil {
		return fmt.Errorf("coord: resume %s: corrupt checkpoint state: %v", path, err)
	}
	if st.Proto != protocolVersion {
		return fmt.Errorf("coord: resume %s: checkpoint from protocol %d, want %d", path, st.Proto, protocolVersion)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.serving {
		return fmt.Errorf("coord: Restore after Serve")
	}
	if c.restored {
		return fmt.Errorf("coord: Restore called twice")
	}
	if st.LeaseCells != c.cfg.LeaseCells {
		return fmt.Errorf("coord: resume %s: checkpoint partitioned %d cells per lease, this coordinator %d",
			path, st.LeaseCells, c.cfg.LeaseCells)
	}
	if len(st.Sweeps) != len(c.sweeps) {
		return fmt.Errorf("coord: resume %s: checkpoint has %d sweeps, %d enqueued", path, len(st.Sweeps), len(c.sweeps))
	}
	for i, cs := range st.Sweeps {
		s := c.sweeps[i]
		switch {
		case cs.Fingerprint != s.fp:
			return fmt.Errorf("coord: resume %s: sweep %d grid fingerprint mismatch — checkpoint describes a different sweep", path, i)
		case cs.Cells != s.cells:
			return fmt.Errorf("coord: resume %s: sweep %d has %d cells, checkpoint %d", path, i, s.cells, cs.Cells)
		case cs.Seed != s.seed:
			return fmt.Errorf("coord: resume %s: sweep %d seed %d, checkpoint %d", path, i, s.seed, cs.Seed)
		case !slices.Equal(cs.Collapse, s.collapse):
			return fmt.Errorf("coord: resume %s: sweep %d collapses different axes than checkpoint", path, i)
		case cs.Backend != s.backend || cs.BackendFP != s.backFP:
			return fmt.Errorf("coord: resume %s: sweep %d backend fingerprint mismatch", path, i)
		}
	}
	for i, cs := range st.Sweeps {
		if err := c.restoreSweep(c.sweeps[i], cs); err != nil {
			return fmt.Errorf("coord: resume %s: sweep %d: %w", path, i, err)
		}
	}
	c.boot = st.Boot + 1
	c.restored = true
	c.logf("restored from %s (incarnation %d)", path, c.boot)
	return nil
}

// restoreSweep applies one checkpointed sweep's ledger and aggregate.
// Callers hold mu.
func (c *Coordinator) restoreSweep(s *sweepState, cs checkpointSweep) error {
	col, err := sweep.ReadShard(bytes.NewReader(cs.Aggregate))
	if err != nil {
		return fmt.Errorf("corrupt aggregate: %v", err)
	}
	if err := s.acc.Absorb(col); err != nil {
		return fmt.Errorf("aggregate does not match the enqueued sweep: %v", err)
	}
	done := make(map[int]bool, len(cs.DoneLeases))
	expected := make([]int, len(s.skeleton.Groups))
	for _, id := range cs.DoneLeases {
		if id < 0 || id >= len(s.leases) {
			return fmt.Errorf("ledger lease %d out of range (grid has %d leases)", id, len(s.leases))
		}
		if done[id] {
			return fmt.Errorf("ledger lists lease %d twice", id)
		}
		done[id] = true
		for gi, n := range s.leases[id].expected {
			expected[gi] += n
		}
	}
	if got := s.acc.GroupCounts(); !slices.Equal(got, expected) {
		return fmt.Errorf("aggregate cell counts disagree with the lease ledger (file tampered or from a different run)")
	}
	pending := s.pending[:0]
	for _, l := range s.leases {
		if done[l.id] {
			l.done = true
			l.queued = false
			s.remaining--
			s.cellsDone += len(l.cells)
		} else {
			pending = append(pending, l.id)
		}
	}
	s.pending = pending
	switch cs.State {
	case sweepFailed:
		s.failed = fmt.Errorf("coord: %s", cs.Fail)
		s.state = sweepFailed
		s.finish.Do(func() { close(s.done) })
	case sweepDone:
		if s.remaining != 0 {
			return fmt.Errorf("checkpoint marks the sweep done with %d leases missing", s.remaining)
		}
		c.completeSweep(s)
		s.finish.Do(func() { close(s.done) })
	case sweepActive, sweepQueued:
		if s.remaining == 0 {
			// Every lease was durable before the crash; the sweep just
			// never got to record its completion.
			c.completeSweep(s)
			s.finish.Do(func() { close(s.done) })
		}
	default:
		return fmt.Errorf("unknown sweep state %q", cs.State)
	}
	c.logf("sweep %d restored: %d/%d leases done", s.index, len(done), len(s.leases))
	return nil
}

// checksumHex is the checkpoint content checksum: hex sha256.
func checksumHex(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// strictDecode unmarshals exactly one JSON value and rejects trailing
// data, so a torn concatenation of two checkpoints cannot half-parse.
func strictDecode(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return fmt.Errorf("trailing data after checkpoint")
	}
	return nil
}

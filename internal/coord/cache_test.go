package coord

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hadooppreempt/internal/sweep"
)

// countingTestBackend is the synthetic test backend plus an execution
// counter, so cache tests can tell replayed cells from executed ones.
type countingTestBackend struct {
	testBackend
	executed atomic.Int64
}

func (b *countingTestBackend) Cell(pt sweep.Point, rec *sweep.Recorder) error {
	b.executed.Add(1)
	return b.testBackend.Cell(pt, rec)
}

// fillCache runs the sweep single-process with the cache attached, so
// every cell has a verified entry, and returns the reference rendering.
func fillCache(t *testing.T, cache *sweep.Cache, g sweep.Grid, seed uint64, collapse ...string) string {
	t.Helper()
	want, err := sweep.RunBackend(&testBackend{g: g},
		sweep.Options{Parallel: 2, Seed: seed, Cache: cache}, collapse...)
	if err != nil {
		t.Fatal(err)
	}
	return encodeAll(t, want)
}

// TestCoordinatorRetiresWarmSweepWithoutWorkers: with every cell of the
// sweep cached, the coordinator retires all leases at Serve time and
// completes with no worker ever joining — and the replayed result is
// byte-identical to the run that filled the cache.
func TestCoordinatorRetiresWarmSweepWithoutWorkers(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("mode", "a", "b"), sweep.Floats("x", 1, 2, 3), sweep.Reps(2))
	seed := uint64(11)
	cache, err := sweep.NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	want := fillCache(t, cache, g, seed, sweep.RepAxis)

	c := startCoordinator(t, Config{
		LeaseCells:  3,
		LeaseTTL:    time.Minute,
		BackendName: "test",
		Cache:       cache,
	}, g, seed, sweep.RepAxis)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if encodeAll(t, got) != want {
		t.Fatal("cache-retired sweep differs from the run that filled the cache")
	}
	st := c.Status()
	if st.Cache == nil || st.Cache.Hits != int64(g.Size()) {
		t.Fatalf("status cache counters = %+v, want %d hits", st.Cache, g.Size())
	}
	for _, ss := range st.Sweeps {
		if ss.CellsDone != ss.Cells || ss.LeasesDone != ss.Leases {
			t.Fatalf("sweep %d not fully retired: %+v", ss.Sweep, ss)
		}
	}
}

// TestCoordinatorPartialCacheUsesWorkersForTheRest: with only some
// leases fully cached, the coordinator retires those and leases the
// remainder to a worker; the merged output is still byte-identical, and
// the worker executes only the uncached cells.
func TestCoordinatorPartialCacheUsesWorkersForTheRest(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("mode", "a", "b"), sweep.Floats("x", 1, 2, 3), sweep.Reps(2))
	seed := uint64(13)
	want, err := sweep.RunBackend(&testBackend{g: g}, sweep.Options{Parallel: 2, Seed: seed}, sweep.RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := sweep.NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	// Cache the first half of the grid by hand: with LeaseCells 3, the
	// first two leases are fully covered and the rest are not.
	sc := cache.Sweep("test", "", g, seed)
	points, err := g.Points(seed)
	if err != nil {
		t.Fatal(err)
	}
	b := &testBackend{g: g}
	cached := g.Size() / 2
	for _, pt := range points[:cached] {
		rec := &sweep.Recorder{}
		if err := b.Cell(pt, rec); err != nil {
			t.Fatal(err)
		}
		sc.Store(pt.Index, rec)
	}

	c := startCoordinator(t, Config{
		LeaseCells:  3,
		LeaseTTL:    time.Minute,
		BackendName: "test",
		Cache:       cache,
	}, g, seed, sweep.RepAxis)
	wb := &countingTestBackend{testBackend: testBackend{g: g}}
	werrc := make(chan error, 1)
	go func() {
		werrc <- RunWorker(context.Background(), WorkerConfig{
			Addr:     c.Addr(),
			Backend:  wb,
			Parallel: 2,
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-werrc; err != nil {
		t.Fatal(err)
	}
	c.Drain()
	if encodeAll(t, got) != encodeAll(t, want) {
		t.Fatal("partially cached distributed output differs from single-process")
	}
	if n := wb.executed.Load(); n != int64(g.Size()-cached) {
		t.Fatalf("worker executed %d cells, want the %d uncached", n, g.Size()-cached)
	}
}

// TestWorkerSkipsCachedCells: a worker given a warm cache uploads real
// results without executing a single cell, and the coordinator accepts
// them as usual.
func TestWorkerSkipsCachedCells(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("mode", "a", "b"), sweep.Reps(3))
	seed := uint64(17)
	cache, err := sweep.NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	want := fillCache(t, cache, g, seed, sweep.RepAxis)

	// Coordinator has no cache; only the worker replays.
	c := startCoordinator(t, Config{
		LeaseCells:  2,
		LeaseTTL:    time.Minute,
		BackendName: "test",
	}, g, seed, sweep.RepAxis)
	wb := &countingTestBackend{testBackend: testBackend{g: g}}
	werrc := make(chan error, 1)
	go func() {
		werrc <- RunWorker(context.Background(), WorkerConfig{
			Addr:     c.Addr(),
			Backend:  wb,
			Parallel: 2,
			Cache:    cache,
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-werrc; err != nil {
		t.Fatal(err)
	}
	c.Drain()
	if encodeAll(t, got) != want {
		t.Fatal("worker cache replay differs from the run that filled the cache")
	}
	if n := wb.executed.Load(); n != 0 {
		t.Fatalf("worker executed %d cells with a warm cache", n)
	}
}

// TestResumeThenCacheNeverDoubleAbsorbs: a checkpointed coordinator
// that already accepted results restores them on -resume and must skip
// those leases during cache replay — the restored accumulator plus the
// cache-retired remainder still renders byte-identically.
func TestResumeThenCacheNeverDoubleAbsorbs(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("mode", "a", "b"), sweep.Floats("x", 1, 2, 3), sweep.Reps(2))
	seed := uint64(19)
	cache, err := sweep.NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	want := fillCache(t, cache, g, seed, sweep.RepAxis)
	ckpt := filepath.Join(t.TempDir(), "state.ckpt")

	// First incarnation: no cache. A raw worker uploads exactly one
	// lease, which the checkpoint makes durable, then the coordinator
	// dies.
	c1 := startCoordinator(t, Config{
		LeaseCells:  3,
		LeaseTTL:    time.Minute,
		BackendName: "test",
		Checkpoint:  ckpt,
	}, g, seed, sweep.RepAxis)
	rc := newRawClient(t, c1, g)
	lr := rc.lease()
	if lr.Status != statusLease {
		t.Fatalf("lease status %q", lr.Status)
	}
	if rr := rc.upload(g, lr, 2); !rr.Accepted {
		t.Fatal("upload not accepted")
	}
	c1.Close()

	// Second incarnation: resume the ledger, then retire the remaining
	// leases from cache. The uploaded lease must not be replayed again.
	c2 := startCoordinator(t, Config{
		LeaseCells:  3,
		LeaseTTL:    time.Minute,
		BackendName: "test",
		Checkpoint:  ckpt,
		Resume:      true,
		Cache:       cache,
	}, g, seed, sweep.RepAxis)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := c2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if encodeAll(t, got) != want {
		t.Fatal("resume-plus-cache output differs: a lease was double-absorbed or lost")
	}
	if st := c2.Status(); st.Cache == nil || st.Cache.Hits != int64(g.Size()-len(lr.Cells)) {
		t.Fatalf("cache hits = %+v, want exactly the %d non-restored cells",
			st.Cache, g.Size()-len(lr.Cells))
	}
}

// Package scheduler provides job/task schedulers for the simulated Hadoop
// engine: the paper's trigger-driven dummy scheduler used for the
// comparative evaluation, a FIFO baseline, a FAIR scheduler with
// starvation-triggered preemption, and an HFSP-style size-based scheduler
// (the paper's §VI outlook).
package scheduler

import (
	"fmt"
	"sort"

	"hadooppreempt/internal/mapreduce"
)

// TriggerEvent selects what a dummy-scheduler trigger fires on.
type TriggerEvent int

// Trigger events.
const (
	// OnProgress fires when the named job's progress reaches Threshold.
	OnProgress TriggerEvent = iota + 1
	// OnComplete fires when the named job succeeds.
	OnComplete
	// OnSubmit fires when the named job is submitted.
	OnSubmit
)

// String names the event.
func (e TriggerEvent) String() string {
	switch e {
	case OnProgress:
		return "on-progress"
	case OnComplete:
		return "on-complete"
	case OnSubmit:
		return "on-submit"
	default:
		return fmt.Sprintf("TriggerEvent(%d)", int(e))
	}
}

// Trigger is one rule of the dummy scheduler: when the event condition is
// met for the job (matched by JobConf name), Do runs once.
type Trigger struct {
	Event     TriggerEvent
	Job       string
	Threshold float64 // OnProgress only
	Do        func()

	fired bool
}

// Dummy is the paper's evaluation scheduler (§III-B): it "dictates task
// eviction according to static configuration files", expressed here as
// triggers. Slot assignment is by job priority (then submission order),
// which lets the high-priority task th claim a slot the moment the
// preempted tl releases it.
type Dummy struct {
	jt       *mapreduce.JobTracker
	triggers []*Trigger
}

var _ mapreduce.Scheduler = (*Dummy)(nil)

// NewDummy creates the trigger scheduler. Install it with SetScheduler
// before submitting jobs.
func NewDummy(jt *mapreduce.JobTracker) *Dummy {
	return &Dummy{jt: jt}
}

// AddTrigger registers a rule.
func (d *Dummy) AddTrigger(t Trigger) {
	tt := t
	d.triggers = append(d.triggers, &tt)
}

// JobSubmitted implements mapreduce.Scheduler.
func (d *Dummy) JobSubmitted(job *mapreduce.Job) {
	d.fire(OnSubmit, job.Conf().Name, 1)
}

// JobCompleted implements mapreduce.Scheduler.
func (d *Dummy) JobCompleted(job *mapreduce.Job) {
	d.fire(OnComplete, job.Conf().Name, 1)
}

// TaskProgressed implements mapreduce.Scheduler.
func (d *Dummy) TaskProgressed(task *mapreduce.Task, progress float64) {
	d.fire(OnProgress, task.Job().Conf().Name, task.Job().Progress())
}

// fire runs matching triggers once.
func (d *Dummy) fire(ev TriggerEvent, job string, value float64) {
	for _, t := range d.triggers {
		if t.fired || t.Event != ev || t.Job != job {
			continue
		}
		if ev == OnProgress && value < t.Threshold {
			continue
		}
		t.fired = true
		if t.Do != nil {
			t.Do()
		}
	}
}

// Assign implements mapreduce.Scheduler: pending tasks ordered by job
// priority (descending), then submission order.
func (d *Dummy) Assign(tt mapreduce.TaskTrackerInfo) []mapreduce.Assignment {
	pending := d.jt.PendingTasks()
	sort.SliceStable(pending, func(i, j int) bool {
		pi := pending[i].Job().Conf().Priority
		pj := pending[j].Job().Conf().Priority
		return pi > pj
	})
	var out []mapreduce.Assignment
	free := tt.FreeMapSlots
	for _, t := range pending {
		if free <= 0 {
			break
		}
		if t.ID().Type == mapreduce.ReduceTask && !mapsDone(t.Job()) {
			continue
		}
		out = append(out, mapreduce.Assignment{Task: t.ID()})
		free--
	}
	return out
}

// mapsDone reports whether all map tasks of a job succeeded.
func mapsDone(j *mapreduce.Job) bool {
	for _, t := range j.MapTasks() {
		if t.State() != mapreduce.TaskSucceeded {
			return false
		}
	}
	return true
}

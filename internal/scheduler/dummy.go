// Package scheduler provides job/task schedulers for the simulated Hadoop
// engine: the paper's trigger-driven dummy scheduler used for the
// comparative evaluation, a FIFO baseline, a FAIR scheduler with
// starvation-triggered preemption, and an HFSP-style size-based scheduler
// (the paper's §VI outlook).
package scheduler

import (
	"fmt"
	"slices"
	"sync"

	"hadooppreempt/internal/mapreduce"
)

// TriggerEvent selects what a dummy-scheduler trigger fires on.
type TriggerEvent int

// Trigger events.
const (
	// OnProgress fires when the named job's progress reaches Threshold.
	OnProgress TriggerEvent = iota + 1
	// OnComplete fires when the named job succeeds.
	OnComplete
	// OnSubmit fires when the named job is submitted.
	OnSubmit
)

// String names the event.
func (e TriggerEvent) String() string {
	switch e {
	case OnProgress:
		return "on-progress"
	case OnComplete:
		return "on-complete"
	case OnSubmit:
		return "on-submit"
	default:
		return fmt.Sprintf("TriggerEvent(%d)", int(e))
	}
}

// Trigger is one rule of the dummy scheduler: when the event condition is
// met for the job (matched by JobConf name), Do runs once.
type Trigger struct {
	Event     TriggerEvent
	Job       string
	Threshold float64 // OnProgress only
	Do        func()

	fired bool
}

// Dummy is the paper's evaluation scheduler (§III-B): it "dictates task
// eviction according to static configuration files", expressed here as
// triggers. Slot assignment is by job priority (then submission order),
// which lets the high-priority task th claim a slot the moment the
// preempted tl releases it.
type Dummy struct {
	jt *mapreduce.JobTracker
	// triggers holds the rules by value; fire flips the fired flag by
	// index, so registering a rule never heap-allocates a Trigger.
	triggers []Trigger
	// unfired counts triggers that have not fired yet, so the
	// per-progress-event dispatch is a single comparison once every rule
	// has run.
	unfired int

	// Scratch buffers reused across Assign rounds (the JobTracker consumes
	// the returned assignments before the next round).
	pending []*mapreduce.Task
	assigns []mapreduce.Assignment
}

var _ mapreduce.Scheduler = (*Dummy)(nil)

// dummyPool recycles Dummy shells (trigger and scratch capacity) across the
// per-cell teardown/rebuild churn of a sweep.
var dummyPool = sync.Pool{New: func() any { return &Dummy{} }}

// NewDummy creates the trigger scheduler. Install it with SetScheduler
// before submitting jobs. Call Release when the cell is torn down to
// recycle the scheduler's buffers.
func NewDummy(jt *mapreduce.JobTracker) *Dummy {
	d := dummyPool.Get().(*Dummy)
	d.jt = jt
	return d
}

// Release returns the scheduler's buffers to a shared arena for reuse by a
// future NewDummy. The scheduler must not be used afterwards.
func (d *Dummy) Release() {
	d.jt = nil
	clear(d.triggers) // drop the Do closures
	d.triggers = d.triggers[:0]
	d.unfired = 0
	clear(d.pending)
	d.pending = d.pending[:0]
	d.assigns = d.assigns[:0]
	dummyPool.Put(d)
}

// AddTrigger registers a rule.
func (d *Dummy) AddTrigger(t Trigger) {
	d.triggers = append(d.triggers, t)
	if !t.fired {
		d.unfired++
	}
}

// JobSubmitted implements mapreduce.Scheduler.
func (d *Dummy) JobSubmitted(job *mapreduce.Job) {
	d.fire(OnSubmit, job.Name(), 1)
}

// JobCompleted implements mapreduce.Scheduler.
func (d *Dummy) JobCompleted(job *mapreduce.Job) {
	d.fire(OnComplete, job.Name(), 1)
}

// TaskProgressed implements mapreduce.Scheduler.
func (d *Dummy) TaskProgressed(task *mapreduce.Task, progress float64) {
	if d.unfired == 0 {
		return
	}
	d.fire(OnProgress, task.Job().Name(), task.Job().Progress())
}

// fire runs matching triggers once.
func (d *Dummy) fire(ev TriggerEvent, job string, value float64) {
	if d.unfired == 0 {
		return
	}
	for i := range d.triggers {
		t := &d.triggers[i]
		if t.fired || t.Event != ev || t.Job != job {
			continue
		}
		if ev == OnProgress && value < t.Threshold {
			continue
		}
		t.fired = true
		d.unfired--
		if t.Do != nil {
			t.Do()
		}
	}
}

// Assign implements mapreduce.Scheduler: pending tasks ordered by job
// priority (descending), then submission order.
func (d *Dummy) Assign(tt mapreduce.TaskTrackerInfo) []mapreduce.Assignment {
	pending := d.jt.PendingTasksInto(d.pending[:0])
	d.pending = pending
	slices.SortStableFunc(pending, func(a, b *mapreduce.Task) int {
		return b.Job().Priority() - a.Job().Priority()
	})
	out := d.assigns[:0]
	free := tt.FreeMapSlots
	for _, t := range pending {
		if free <= 0 {
			break
		}
		if t.ID().Type == mapreduce.ReduceTask && !mapsDone(t.Job()) {
			continue
		}
		out = append(out, mapreduce.Assignment{Task: t.ID()})
		free--
	}
	d.assigns = out
	return out
}

// mapsDone reports whether all map tasks of a job succeeded.
func mapsDone(j *mapreduce.Job) bool {
	for i, n := 0, j.NumTasks(); i < n; i++ {
		t := j.TaskAt(i)
		if t.ID().Type == mapreduce.MapTask && t.State() != mapreduce.TaskSucceeded {
			return false
		}
	}
	return true
}

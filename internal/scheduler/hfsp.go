package scheduler

import (
	"fmt"
	"time"

	"hadooppreempt/internal/advisor"
	"hadooppreempt/internal/core"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/sim"
)

// HFSPConfig parameterizes the size-based scheduler.
type HFSPConfig struct {
	// CheckInterval is the period of the preemption check.
	CheckInterval time.Duration
	// PreemptionDelay is how long a smaller job must be starved before a
	// bigger job's task is preempted. Keeping it above zero avoids
	// suspend/resume churn, the thrashing concern of §III-A.
	PreemptionDelay time.Duration
	// Resident optionally reports a task's resident memory for the
	// eviction policy.
	Resident func(mapreduce.TaskID) int64
}

// DefaultHFSPConfig returns moderate parameters.
func DefaultHFSPConfig() HFSPConfig {
	return HFSPConfig{
		CheckInterval:   time.Second,
		PreemptionDelay: 5 * time.Second,
	}
}

// HFSP is a size-based scheduler in the spirit of the authors' HFSP [24]:
// jobs are ordered by remaining (virtual) size — input bytes scaled by
// measured progress — and smaller jobs preempt the tasks of bigger ones
// using the configured preemption primitive. The paper's §VI reports
// preliminary results of exactly this combination.
type HFSP struct {
	eng       *sim.Engine
	jt        *mapreduce.JobTracker
	cfg       HFSPConfig
	preemptor *core.Preemptor
	adv       advisor.Advisor

	jobs []*mapreduce.Job
	// starvedSince tracks when the currently smallest job started waiting.
	starvedSince map[mapreduce.JobID]time.Duration
	suspended    map[mapreduce.TaskID]mapreduce.JobID

	// Scratch for check's victim selection, reused so a preemption
	// decision allocates nothing; candTasks parallels cands.
	cands     []advisor.Candidate
	candTasks []*mapreduce.Task

	preemptions int
	resumes     int
}

var _ mapreduce.Scheduler = (*HFSP)(nil)

// NewHFSP creates the scheduler and starts its check loop. The advisor
// decides victims on the preemption path; the zero Advisor selects the
// default (smallest-memory, forced to the preemptor's primitive —
// §V-A's minimal-paging strategy).
func NewHFSP(eng *sim.Engine, jt *mapreduce.JobTracker, preemptor *core.Preemptor,
	adv advisor.Advisor, cfg HFSPConfig) (*HFSP, error) {
	if cfg.CheckInterval <= 0 {
		return nil, fmt.Errorf("scheduler: hfsp needs positive CheckInterval")
	}
	adv, err := schedulerAdvisor(adv, advisor.SmallestMemory, preemptor)
	if err != nil {
		return nil, err
	}
	h := &HFSP{
		eng:          eng,
		jt:           jt,
		cfg:          cfg,
		preemptor:    preemptor,
		adv:          adv,
		starvedSince: make(map[mapreduce.JobID]time.Duration),
		suspended:    make(map[mapreduce.TaskID]mapreduce.JobID),
	}
	eng.Schedule(cfg.CheckInterval, h.check)
	return h, nil
}

// Preemptions reports issued preemptions.
func (h *HFSP) Preemptions() int { return h.preemptions }

// Resumes reports issued resumes.
func (h *HFSP) Resumes() int { return h.resumes }

// JobSubmitted implements mapreduce.Scheduler.
func (h *HFSP) JobSubmitted(job *mapreduce.Job) { h.jobs = append(h.jobs, job) }

// JobCompleted implements mapreduce.Scheduler.
func (h *HFSP) JobCompleted(*mapreduce.Job) {}

// TaskProgressed implements mapreduce.Scheduler.
func (h *HFSP) TaskProgressed(*mapreduce.Task, float64) {}

// remainingSize estimates a job's remaining virtual size in bytes.
func (h *HFSP) remainingSize(job *mapreduce.Job) float64 {
	var total int64
	for _, t := range job.MapTasks() {
		total += t.Block().Size
	}
	rem := float64(total) * (1 - job.Progress())
	if rem < 0 {
		rem = 0
	}
	return rem
}

// ordered returns live jobs ordered by remaining size (smallest first,
// ties by submission).
func (h *HFSP) ordered() []*mapreduce.Job {
	var live []*mapreduce.Job
	for _, j := range h.jobs {
		if j.State() == mapreduce.JobPending || j.State() == mapreduce.JobRunning {
			live = append(live, j)
		}
	}
	// Stable insertion sort by remaining size.
	for i := 1; i < len(live); i++ {
		for k := i; k > 0 && h.remainingSize(live[k]) < h.remainingSize(live[k-1]); k-- {
			live[k], live[k-1] = live[k-1], live[k]
		}
	}
	return live
}

// Assign implements mapreduce.Scheduler: slots go to the smallest job
// first; its suspended tasks on this tracker resume before new launches.
func (h *HFSP) Assign(tt mapreduce.TaskTrackerInfo) []mapreduce.Assignment {
	free := tt.FreeMapSlots
	ordered := h.ordered()
	rank := make(map[mapreduce.JobID]int, len(ordered))
	for i, j := range ordered {
		rank[j.ID()] = i
	}

	// Resume suspended tasks of the highest-ranked (smallest) jobs first.
	bestRank := len(ordered)
	var bestResume mapreduce.TaskID
	for _, tid := range tt.SuspendedTasks {
		if jid, ok := h.suspended[tid]; ok {
			if r, live := rank[jid]; live && r < bestRank {
				bestRank = r
				bestResume = tid
			}
		}
	}
	if bestResume != (mapreduce.TaskID{}) && free > 0 {
		// Only resume if no smaller job is waiting for this slot.
		if !h.smallerJobWaiting(ordered, bestRank) {
			if err := h.jt.ResumeTask(bestResume); err == nil {
				h.resumes++
				free--
				delete(h.suspended, bestResume)
			}
		}
	}

	var out []mapreduce.Assignment
	taken := make(map[mapreduce.TaskID]bool)
	for _, job := range ordered {
		if free <= 0 {
			break
		}
		for _, t := range job.Tasks() {
			if free <= 0 {
				break
			}
			if t.State() != mapreduce.TaskPending || taken[t.ID()] {
				continue
			}
			if t.ID().Type == mapreduce.ReduceTask && !mapsDone(job) {
				continue
			}
			taken[t.ID()] = true
			out = append(out, mapreduce.Assignment{Task: t.ID()})
			free--
		}
	}
	return out
}

// smallerJobWaiting reports whether a job ranked above r has pending
// tasks.
func (h *HFSP) smallerJobWaiting(ordered []*mapreduce.Job, r int) bool {
	for i := 0; i < r && i < len(ordered); i++ {
		for _, t := range ordered[i].Tasks() {
			if t.State() == mapreduce.TaskPending {
				return true
			}
		}
	}
	return false
}

// check preempts tasks of larger jobs when a smaller job has been starved
// past the delay.
func (h *HFSP) check() {
	defer h.eng.Schedule(h.cfg.CheckInterval, h.check)
	now := h.eng.Now()
	ordered := h.ordered()
	if len(ordered) < 2 {
		return
	}
	// Find the smallest job with pending work.
	var starved *mapreduce.Job
	starvedRank := -1
	for i, j := range ordered {
		for _, t := range j.Tasks() {
			if t.State() == mapreduce.TaskPending {
				starved = j
				starvedRank = i
				break
			}
		}
		if starved != nil {
			break
		}
	}
	if starved == nil {
		return
	}
	since, ok := h.starvedSince[starved.ID()]
	if !ok {
		h.starvedSince[starved.ID()] = now
		return
	}
	if now-since < h.cfg.PreemptionDelay {
		return
	}
	// Victims: running tasks of jobs ranked below the starved job. The
	// candidate slices are reused scratch: one decision allocates
	// nothing.
	h.cands = h.cands[:0]
	h.candTasks = h.candTasks[:0]
	for i := starvedRank + 1; i < len(ordered); i++ {
		for _, t := range ordered[i].Tasks() {
			if t.State() != mapreduce.TaskRunning {
				continue
			}
			var resident int64
			if h.cfg.Resident != nil {
				resident = h.cfg.Resident(t.ID())
			}
			h.cands = append(h.cands, advisor.Candidate{
				ID:            t.IDString(),
				Progress:      t.Progress(),
				ResidentBytes: resident,
				StartedAt:     t.FirstLaunchAt(),
			})
			h.candTasks = append(h.candTasks, t)
		}
	}
	d := h.adv.Decide(advisor.Request{Candidates: h.cands})
	if d.Victim == advisor.NoVictim {
		return
	}
	vt := h.candTasks[d.Victim]
	if _, err := h.preemptor.Preempt(vt.ID()); err != nil {
		return
	}
	h.preemptions++
	delete(h.starvedSince, starved.ID())
	if h.preemptor.Primitive() == core.Suspend || h.preemptor.Primitive() == core.Checkpoint {
		h.suspended[vt.ID()] = vt.Job().ID()
	}
}

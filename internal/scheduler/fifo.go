package scheduler

import (
	"hadooppreempt/internal/mapreduce"
)

// FIFO is Hadoop's default scheduler: tasks are assigned in job submission
// order with no preemption. It is the "wait" world: a high-priority job
// simply queues behind running work.
type FIFO struct {
	jt *mapreduce.JobTracker
}

var _ mapreduce.Scheduler = (*FIFO)(nil)

// NewFIFO creates a FIFO scheduler.
func NewFIFO(jt *mapreduce.JobTracker) *FIFO {
	return &FIFO{jt: jt}
}

// JobSubmitted implements mapreduce.Scheduler.
func (f *FIFO) JobSubmitted(*mapreduce.Job) {}

// JobCompleted implements mapreduce.Scheduler.
func (f *FIFO) JobCompleted(*mapreduce.Job) {}

// TaskProgressed implements mapreduce.Scheduler.
func (f *FIFO) TaskProgressed(*mapreduce.Task, float64) {}

// Assign implements mapreduce.Scheduler.
func (f *FIFO) Assign(tt mapreduce.TaskTrackerInfo) []mapreduce.Assignment {
	var out []mapreduce.Assignment
	free := tt.FreeMapSlots
	for _, t := range f.jt.PendingTasks() {
		if free <= 0 {
			break
		}
		if t.ID().Type == mapreduce.ReduceTask && !mapsDone(t.Job()) {
			continue
		}
		out = append(out, mapreduce.Assignment{Task: t.ID()})
		free--
	}
	return out
}

package scheduler

import (
	"fmt"
	"sort"
	"time"

	"hadooppreempt/internal/advisor"
	"hadooppreempt/internal/core"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/sim"
)

// FairConfig parameterizes the FAIR scheduler.
type FairConfig struct {
	// TotalSlots is the cluster-wide map slot count (used to compute fair
	// shares).
	TotalSlots int
	// PreemptionTimeout is how long a pool must be starved before the
	// scheduler preempts tasks of over-share pools, mirroring the Hadoop
	// fair scheduler's minSharePreemptionTimeout.
	PreemptionTimeout time.Duration
	// CheckInterval is the period of the preemption check loop.
	CheckInterval time.Duration
	// ResumeLocalityTimeout bounds how long a suspended task may wait for
	// a slot on its own tracker before it is killed and restarted
	// elsewhere — the "delayed kill" fallback of §V-A's resume-locality
	// discussion. Zero disables the fallback.
	ResumeLocalityTimeout time.Duration
	// Resident optionally reports a task's resident memory for eviction
	// policies; nil reports zero.
	Resident func(mapreduce.TaskID) int64
	// LocalityWaitSkips implements delay scheduling (Zaharia et al.,
	// which §V-A reuses for resume locality): a map task declines this
	// many non-local slot offers before accepting a remote one. Zero
	// disables the delay.
	LocalityWaitSkips int
}

// DefaultFairConfig returns moderate timeouts.
func DefaultFairConfig(totalSlots int) FairConfig {
	return FairConfig{
		TotalSlots:        totalSlots,
		PreemptionTimeout: 15 * time.Second,
		CheckInterval:     time.Second,
		// Resume locality: wait up to 30 s for the home slot, then fall
		// back to a delayed kill.
		ResumeLocalityTimeout: 30 * time.Second,
		// Data locality: decline a few non-local offers first.
		LocalityWaitSkips: 3,
	}
}

// Fair is a two-level fair-share scheduler over pools, using a preemption
// primitive to enforce shares: when a pool is starved beyond the timeout,
// tasks of over-share pools are preempted (suspended, killed or
// checkpointed depending on the configured Preemptor) and restored when
// capacity returns.
type Fair struct {
	eng       *sim.Engine
	jt        *mapreduce.JobTracker
	cfg       FairConfig
	preemptor *core.Preemptor
	adv       advisor.Advisor

	pools map[string]*fairPool
	// suspended tracks preempted-but-restorable tasks.
	suspended map[mapreduce.TaskID]*suspendedTask
	// skips counts declined non-local offers per task (delay
	// scheduling).
	skips map[mapreduce.TaskID]int

	// Scratch for preemptFor, reused across checks so a preemption
	// decision allocates nothing; candTasks/candPools parallel cands.
	cands     []advisor.Candidate
	candTasks []*mapreduce.Task
	candPools []*fairPool

	preemptions int
	resumes     int
	killApplied int
}

type fairPool struct {
	name         string
	jobs         []*mapreduce.Job
	starvedSince time.Duration
	starved      bool
}

type suspendedTask struct {
	id          mapreduce.TaskID
	pool        string
	suspendedAt time.Duration
}

var _ mapreduce.Scheduler = (*Fair)(nil)

// NewFair creates the scheduler and starts its periodic preemption check.
// The advisor decides victims on the preemption path; the zero Advisor
// selects the default (most-progress, forced to the preemptor's
// primitive — the paper's Natjam-style configuration).
func NewFair(eng *sim.Engine, jt *mapreduce.JobTracker, preemptor *core.Preemptor,
	adv advisor.Advisor, cfg FairConfig) (*Fair, error) {
	if cfg.TotalSlots <= 0 {
		return nil, fmt.Errorf("scheduler: fair needs positive TotalSlots")
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = time.Second
	}
	adv, err := schedulerAdvisor(adv, advisor.MostProgress, preemptor)
	if err != nil {
		return nil, err
	}
	f := &Fair{
		eng:       eng,
		jt:        jt,
		cfg:       cfg,
		preemptor: preemptor,
		adv:       adv,
		pools:     make(map[string]*fairPool),
		suspended: make(map[mapreduce.TaskID]*suspendedTask),
		skips:     make(map[mapreduce.TaskID]int),
	}
	eng.Schedule(cfg.CheckInterval, f.check)
	return f, nil
}

// schedulerAdvisor resolves the advisor a scheduler preempts with: the
// zero value becomes defaultPolicy forced to the preemptor's primitive,
// and a caller-supplied advisor must agree with the wired preemptor —
// the scheduler can only apply that one primitive.
func schedulerAdvisor(adv advisor.Advisor, defaultPolicy advisor.Policy,
	preemptor *core.Preemptor) (advisor.Advisor, error) {
	if !adv.Valid() {
		return advisor.New(advisor.Config{
			Policy:    defaultPolicy,
			Primitive: preemptor.Primitive(),
		})
	}
	if got := adv.Config().Primitive; got != preemptor.Primitive() {
		return advisor.Advisor{}, fmt.Errorf(
			"scheduler: advisor primitive %v does not match the preemptor's %v",
			got, preemptor.Primitive())
	}
	return adv, nil
}

// Preemptions reports how many preemptions the scheduler issued.
func (f *Fair) Preemptions() int { return f.preemptions }

// Resumes reports how many restores the scheduler issued.
func (f *Fair) Resumes() int { return f.resumes }

// DelayedKills reports resume-locality fallbacks.
func (f *Fair) DelayedKills() int { return f.killApplied }

// poolOf returns the pool for a job, creating it on demand.
func (f *Fair) poolOf(job *mapreduce.Job) *fairPool {
	name := job.Conf().Pool
	if name == "" {
		name = "default"
	}
	p, ok := f.pools[name]
	if !ok {
		p = &fairPool{name: name}
		f.pools[name] = p
	}
	return p
}

// JobSubmitted implements mapreduce.Scheduler.
func (f *Fair) JobSubmitted(job *mapreduce.Job) {
	p := f.poolOf(job)
	p.jobs = append(p.jobs, job)
}

// JobCompleted implements mapreduce.Scheduler.
func (f *Fair) JobCompleted(job *mapreduce.Job) {}

// TaskProgressed implements mapreduce.Scheduler.
func (f *Fair) TaskProgressed(*mapreduce.Task, float64) {}

// poolStats counts a pool's running tasks and total demand.
func (f *Fair) poolStats(p *fairPool) (running, demand int) {
	for _, job := range p.jobs {
		for _, t := range job.Tasks() {
			switch t.State() {
			case mapreduce.TaskRunning, mapreduce.TaskMustSuspend:
				running++
				demand++
			case mapreduce.TaskMustResume, mapreduce.TaskSuspended:
				demand++
			case mapreduce.TaskPending:
				demand++
			}
		}
	}
	return running, demand
}

// activePools returns pools with live demand, sorted by name.
func (f *Fair) activePools() []*fairPool {
	var out []*fairPool
	for _, p := range f.pools {
		_, demand := f.poolStats(p)
		if demand > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// share computes the per-pool fair share.
func (f *Fair) share(active int) float64 {
	if active == 0 {
		return float64(f.cfg.TotalSlots)
	}
	return float64(f.cfg.TotalSlots) / float64(active)
}

// Assign implements mapreduce.Scheduler: resume suspended tasks of
// under-share pools first (resume locality: only on their own tracker),
// then hand remaining slots to the most-starved pools' pending tasks,
// preferring node-local maps.
func (f *Fair) Assign(tt mapreduce.TaskTrackerInfo) []mapreduce.Assignment {
	active := f.activePools()
	share := f.share(len(active))
	free := tt.FreeMapSlots

	// 1. Resume suspended tasks stranded on this tracker when their pool
	// is below its share.
	for _, tid := range tt.SuspendedTasks {
		if free <= 0 {
			break
		}
		st, ok := f.suspended[tid]
		if !ok {
			continue
		}
		task, ok := f.jt.Task(tid)
		if !ok || task.State() != mapreduce.TaskSuspended {
			continue
		}
		pool := f.pools[st.pool]
		running, demand := f.poolStats(pool)
		if float64(running) < share && demand > running {
			if err := f.jt.ResumeTask(tid); err == nil {
				f.resumes++
				free--
				delete(f.suspended, tid)
			}
		}
	}

	// 2. Fill remaining slots: repeatedly give the pool furthest below
	// its share one task. Picks made this round are tracked locally,
	// since task states only change when the JobTracker processes the
	// assignments.
	var out []mapreduce.Assignment
	taken := make(map[mapreduce.TaskID]bool)
	extra := make(map[*fairPool]int)
	skip := make(map[*fairPool]bool)
	for free > 0 {
		p := f.neediestPool(active, share, extra, skip)
		if p == nil {
			break
		}
		t := f.pickTask(p, tt, taken)
		if t == nil {
			// Pool has pending work but nothing runnable here.
			skip[p] = true
			continue
		}
		taken[t.ID()] = true
		extra[p]++
		out = append(out, mapreduce.Assignment{Task: t.ID()})
		free--
	}
	return out
}

// neediestPool picks the active pool furthest below its share with
// pending work, accounting for picks already made this round.
func (f *Fair) neediestPool(active []*fairPool, share float64, extra map[*fairPool]int, skip map[*fairPool]bool) *fairPool {
	var best *fairPool
	bestGap := 0.0
	for _, p := range active {
		if skip[p] {
			continue
		}
		running, demand := f.poolStats(p)
		running += extra[p]
		pending := demand - running - f.suspendedCount(p.name)
		if pending <= 0 {
			continue
		}
		gap := share - float64(running)
		if gap > bestGap {
			best = p
			bestGap = gap
		}
	}
	return best
}

// suspendedCount counts tasks of a pool currently suspended.
func (f *Fair) suspendedCount(pool string) int {
	n := 0
	for _, st := range f.suspended {
		if st.pool == pool {
			n++
		}
	}
	return n
}

// pickTask chooses a pending task of the pool for the tracker, preferring
// node-local map input and skipping tasks already picked this round.
// Non-local candidates use delay scheduling: they decline up to
// LocalityWaitSkips offers before running remotely.
func (f *Fair) pickTask(p *fairPool, tt mapreduce.TaskTrackerInfo, taken map[mapreduce.TaskID]bool) *mapreduce.Task {
	var fallback *mapreduce.Task
	for _, job := range p.jobs {
		for _, t := range job.Tasks() {
			if t.State() != mapreduce.TaskPending || taken[t.ID()] {
				continue
			}
			if t.ID().Type == mapreduce.ReduceTask {
				if !mapsDone(job) {
					continue
				}
				return t
			}
			if f.isLocal(t, tt.Node) {
				delete(f.skips, t.ID())
				return t
			}
			if fallback == nil {
				fallback = t
			}
		}
	}
	if fallback != nil && f.cfg.LocalityWaitSkips > 0 {
		if f.skips[fallback.ID()] < f.cfg.LocalityWaitSkips {
			f.skips[fallback.ID()]++
			return nil // decline this offer, wait for a local slot
		}
		delete(f.skips, fallback.ID())
	}
	return fallback
}

// isLocal reports whether the task's block has a replica on the node.
func (f *Fair) isLocal(t *mapreduce.Task, node string) bool {
	for _, r := range t.Block().Replicas {
		if string(r) == node {
			return true
		}
	}
	return false
}

// check is the periodic preemption loop: detect starved pools, preempt
// over-share pools after the timeout, and apply the resume-locality
// delayed-kill fallback.
func (f *Fair) check() {
	defer f.eng.Schedule(f.cfg.CheckInterval, f.check)
	now := f.eng.Now()
	active := f.activePools()
	share := f.share(len(active))

	for _, p := range active {
		running, demand := f.poolStats(p)
		want := share
		if float64(demand) < want {
			want = float64(demand)
		}
		if float64(running) >= want {
			p.starved = false
			continue
		}
		if !p.starved {
			p.starved = true
			p.starvedSince = now
			continue
		}
		if now-p.starvedSince < f.cfg.PreemptionTimeout {
			continue
		}
		// Starved past the timeout: preempt one task from the most
		// over-share pool.
		f.preemptFor(p, active, share)
		p.starvedSince = now // rate-limit: at most one victim per timeout
	}

	// Resume-locality fallback: suspended too long waiting for its home
	// slot -> delayed kill so it can restart anywhere.
	if f.cfg.ResumeLocalityTimeout > 0 {
		for tid, st := range f.suspended {
			task, ok := f.jt.Task(tid)
			if !ok || task.State() != mapreduce.TaskSuspended {
				continue
			}
			if now-st.suspendedAt > f.cfg.ResumeLocalityTimeout {
				if err := f.jt.KillTaskAttempt(tid, true); err == nil {
					f.killApplied++
					delete(f.suspended, tid)
				}
			}
		}
	}
}

// preemptFor finds a victim in over-share pools and preempts it. The
// candidate slices are reused scratch: one decision allocates nothing.
func (f *Fair) preemptFor(starved *fairPool, active []*fairPool, share float64) {
	f.cands = f.cands[:0]
	f.candTasks = f.candTasks[:0]
	f.candPools = f.candPools[:0]
	for _, p := range active {
		if p == starved {
			continue
		}
		running, _ := f.poolStats(p)
		if float64(running) <= share {
			continue
		}
		for _, job := range p.jobs {
			for _, t := range job.Tasks() {
				if t.State() != mapreduce.TaskRunning {
					continue
				}
				var resident int64
				if f.cfg.Resident != nil {
					resident = f.cfg.Resident(t.ID())
				}
				f.cands = append(f.cands, advisor.Candidate{
					ID:            t.IDString(),
					Progress:      t.Progress(),
					ResidentBytes: resident,
					StartedAt:     t.FirstLaunchAt(),
				})
				f.candTasks = append(f.candTasks, t)
				f.candPools = append(f.candPools, p)
			}
		}
	}
	d := f.adv.Decide(advisor.Request{Candidates: f.cands})
	if d.Victim == advisor.NoVictim {
		return
	}
	vt := f.candTasks[d.Victim]
	if _, err := f.preemptor.Preempt(vt.ID()); err != nil {
		return
	}
	f.preemptions++
	if f.preemptor.Primitive() == core.Suspend || f.preemptor.Primitive() == core.Checkpoint {
		f.suspended[vt.ID()] = &suspendedTask{
			id:          vt.ID(),
			pool:        f.candPools[d.Victim].name,
			suspendedAt: f.eng.Now(),
		}
	}
}

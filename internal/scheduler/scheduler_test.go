package scheduler_test

import (
	"testing"
	"time"

	"hadooppreempt/internal/advisor"
	"hadooppreempt/internal/core"
	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/scheduler"
)

// testClusterWith builds a small cluster with no scheduler installed.
func testClusterWith(t *testing.T, nodes, slots int) *mapreduce.Cluster {
	t.Helper()
	cfg := mapreduce.DefaultClusterConfig()
	cfg.Nodes = nodes
	cfg.Node.MapSlots = slots
	cfg.Node.Memory.PageSize = 1 << 20
	cfg.Engine.HeartbeatInterval = time.Second
	c, err := mapreduce.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// quickJob is a small job: 64 MB input at 32 MB/s (~2 s of parsing).
func quickJob(name, input string) mapreduce.JobConf {
	return mapreduce.JobConf{
		Name:         name,
		InputPath:    input,
		MapParseRate: 32e6,
		JVMBaseBytes: 64 << 20,
	}
}

func preemptorFor(t *testing.T, c *mapreduce.Cluster, prim core.Primitive) *core.Preemptor {
	t.Helper()
	deviceFor := func(tracker string) *disk.Device {
		for _, n := range c.Nodes() {
			if n.Tracker.Name() == tracker {
				return n.Device
			}
		}
		return nil
	}
	p, err := core.NewPreemptor(c.Engine(), c.JobTracker(), prim, deviceFor, core.CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDummyTriggersFireOnce(t *testing.T) {
	c := testClusterWith(t, 1, 1)
	d := scheduler.NewDummy(c.JobTracker())
	c.JobTracker().SetScheduler(d)
	c.CreateInput("/in", 256<<20)

	fires := 0
	d.AddTrigger(scheduler.Trigger{
		Event: scheduler.OnProgress, Job: "j", Threshold: 0.3,
		Do: func() { fires++ },
	})
	completions := 0
	d.AddTrigger(scheduler.Trigger{
		Event: scheduler.OnComplete, Job: "j",
		Do: func() { completions++ },
	})
	submits := 0
	d.AddTrigger(scheduler.Trigger{
		Event: scheduler.OnSubmit, Job: "j",
		Do: func() { submits++ },
	})
	c.JobTracker().Submit(quickJob("j", "/in"))
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatal("job did not finish")
	}
	if fires != 1 || completions != 1 || submits != 1 {
		t.Fatalf("fires/completions/submits = %d/%d/%d, want 1/1/1", fires, completions, submits)
	}
}

func TestDummyPriorityOrdering(t *testing.T) {
	c := testClusterWith(t, 1, 1)
	d := scheduler.NewDummy(c.JobTracker())
	c.JobTracker().SetScheduler(d)
	c.CreateInput("/lo", 128<<20)
	c.CreateInput("/hi", 128<<20)
	lo := quickJob("lo", "/lo")
	lo.Priority = 0
	hi := quickJob("hi", "/hi")
	hi.Priority = 10
	// Submit low first; both pending at the first heartbeat. High must
	// win the single slot.
	jlo, _ := c.JobTracker().Submit(lo)
	jhi, _ := c.JobTracker().Submit(hi)
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatal("jobs did not finish")
	}
	if jhi.CompletedAt() >= jlo.CompletedAt() {
		t.Fatalf("priority violated: hi at %v, lo at %v", jhi.CompletedAt(), jlo.CompletedAt())
	}
}

func TestFIFOOrdering(t *testing.T) {
	c := testClusterWith(t, 1, 1)
	c.JobTracker().SetScheduler(scheduler.NewFIFO(c.JobTracker()))
	c.CreateInput("/a", 128<<20)
	c.CreateInput("/b", 128<<20)
	ja, _ := c.JobTracker().Submit(quickJob("a", "/a"))
	jb, _ := c.JobTracker().Submit(quickJob("b", "/b"))
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatal("jobs did not finish")
	}
	if ja.CompletedAt() >= jb.CompletedAt() {
		t.Fatalf("FIFO violated: a at %v, b at %v", ja.CompletedAt(), jb.CompletedAt())
	}
}

func TestFairPreemptsForStarvedPool(t *testing.T) {
	c := testClusterWith(t, 1, 2)
	jt := c.JobTracker()
	pre := preemptorFor(t, c, core.Suspend)
	fcfg := scheduler.DefaultFairConfig(2)
	fcfg.PreemptionTimeout = 5 * time.Second
	fcfg.ResumeLocalityTimeout = 0 // keep suspended tasks in place
	adv, err := advisor.New(advisor.Config{Policy: advisor.MostProgress, Primitive: core.Suspend})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := scheduler.NewFair(c.Engine(), jt, pre, adv, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	jt.SetScheduler(fair)

	// Pool "batch" grabs both slots with long tasks.
	c.CreateInput("/b1", 512<<20)
	c.CreateInput("/b2", 512<<20)
	b1 := quickJob("b1", "/b1")
	b1.Pool = "batch"
	b1.MapParseRate = 8e6 // ~64 s
	b2 := quickJob("b2", "/b2")
	b2.Pool = "batch"
	b2.MapParseRate = 8e6
	jt.Submit(b1)
	jt.Submit(b2)
	c.RunUntil(20 * time.Second)

	// Pool "prod" arrives and is entitled to one slot.
	c.CreateInput("/p", 64<<20)
	p := quickJob("prod", "/p")
	p.Pool = "prod"
	jp, _ := jt.Submit(p)

	if !c.RunUntilJobsDone(30 * time.Minute) {
		t.Fatalf("jobs did not finish (prod=%v)", jp.State())
	}
	if fair.Preemptions() == 0 {
		t.Fatal("fair scheduler should have preempted a batch task")
	}
	if fair.Resumes() == 0 {
		t.Fatal("suspended batch task should have been resumed")
	}
	if jp.State() != mapreduce.JobSucceeded {
		t.Fatalf("prod job state = %v", jp.State())
	}
	// The production job must not have waited for a 64 s batch task.
	sojourn := jp.CompletedAt() - jp.SubmittedAt()
	if sojourn > 40*time.Second {
		t.Fatalf("prod sojourn = %v, want < 40 s with preemption", sojourn)
	}
}

func TestFairNoPreemptionWhenSharesMet(t *testing.T) {
	c := testClusterWith(t, 1, 2)
	jt := c.JobTracker()
	pre := preemptorFor(t, c, core.Suspend)
	fair, err := scheduler.NewFair(c.Engine(), jt, pre, advisor.Advisor{}, scheduler.DefaultFairConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	jt.SetScheduler(fair)
	c.CreateInput("/a", 128<<20)
	c.CreateInput("/b", 128<<20)
	a := quickJob("a", "/a")
	a.Pool = "p1"
	b := quickJob("b", "/b")
	b.Pool = "p2"
	jt.Submit(a)
	jt.Submit(b)
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatal("jobs did not finish")
	}
	if fair.Preemptions() != 0 {
		t.Fatalf("preemptions = %d, want 0 (both pools at share)", fair.Preemptions())
	}
}

func TestFairResumeLocalityDelayedKill(t *testing.T) {
	c := testClusterWith(t, 1, 1)
	jt := c.JobTracker()
	pre := preemptorFor(t, c, core.Suspend)
	fcfg := scheduler.DefaultFairConfig(1)
	fcfg.PreemptionTimeout = 3 * time.Second
	fcfg.ResumeLocalityTimeout = 10 * time.Second
	fair, err := scheduler.NewFair(c.Engine(), jt, pre, advisor.Advisor{}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	jt.SetScheduler(fair)
	// One long batch job holds the only slot; prod pool starves it out;
	// with one slot, the suspended batch task waits long enough to hit
	// the delayed-kill fallback while prod work keeps the slot busy.
	c.CreateInput("/b", 512<<20)
	b := quickJob("b", "/b")
	b.Pool = "batch"
	b.MapParseRate = 8e6
	jb, _ := jt.Submit(b)
	c.RunUntil(10 * time.Second)
	for i := 0; i < 4; i++ {
		path := "/p" + string(rune('0'+i))
		c.CreateInput(path, 128<<20)
		p := quickJob("prod"+string(rune('0'+i)), path)
		p.Pool = "prod"
		jt.Submit(p)
	}
	if !c.RunUntilJobsDone(30 * time.Minute) {
		t.Fatalf("jobs did not finish (batch=%v)", jb.State())
	}
	if fair.DelayedKills() == 0 {
		t.Skip("delayed kill did not trigger in this schedule (timing-sensitive)")
	}
	if jb.State() != mapreduce.JobSucceeded {
		t.Fatalf("batch job state = %v", jb.State())
	}
}

func TestHFSPSmallJobPreemptsBig(t *testing.T) {
	c := testClusterWith(t, 1, 1)
	jt := c.JobTracker()
	pre := preemptorFor(t, c, core.Suspend)
	hcfg := scheduler.DefaultHFSPConfig()
	hcfg.PreemptionDelay = 3 * time.Second
	h, err := scheduler.NewHFSP(c.Engine(), jt, pre, advisor.Advisor{}, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	jt.SetScheduler(h)

	c.CreateInput("/big", 512<<20)
	big := quickJob("big", "/big")
	big.MapParseRate = 8e6 // ~64 s
	jbig, _ := jt.Submit(big)
	c.RunUntil(10 * time.Second)

	c.CreateInput("/small", 64<<20)
	small := quickJob("small", "/small")
	jsmall, _ := jt.Submit(small)

	if !c.RunUntilJobsDone(30 * time.Minute) {
		t.Fatalf("jobs did not finish (big=%v small=%v)", jbig.State(), jsmall.State())
	}
	if h.Preemptions() == 0 {
		t.Fatal("HFSP should preempt the big job for the small one")
	}
	if h.Resumes() == 0 {
		t.Fatal("HFSP should resume the big job afterwards")
	}
	if jsmall.CompletedAt() >= jbig.CompletedAt() {
		t.Fatalf("small job should finish first: small=%v big=%v",
			jsmall.CompletedAt(), jbig.CompletedAt())
	}
}

func TestHFSPNoPreemptionForSingleJob(t *testing.T) {
	c := testClusterWith(t, 1, 1)
	jt := c.JobTracker()
	pre := preemptorFor(t, c, core.Suspend)
	h, err := scheduler.NewHFSP(c.Engine(), jt, pre, advisor.Advisor{}, scheduler.DefaultHFSPConfig())
	if err != nil {
		t.Fatal(err)
	}
	jt.SetScheduler(h)
	c.CreateInput("/in", 128<<20)
	jt.Submit(quickJob("solo", "/in"))
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatal("job did not finish")
	}
	if h.Preemptions() != 0 {
		t.Fatalf("preemptions = %d, want 0", h.Preemptions())
	}
}

func TestFairConfigValidation(t *testing.T) {
	if _, err := scheduler.NewFair(nil, nil, nil, advisor.Advisor{}, scheduler.FairConfig{TotalSlots: 0}); err == nil {
		t.Fatal("zero slots should fail")
	}
}

func TestHFSPConfigValidation(t *testing.T) {
	if _, err := scheduler.NewHFSP(nil, nil, nil, advisor.Advisor{}, scheduler.HFSPConfig{CheckInterval: 0}); err == nil {
		t.Fatal("zero check interval should fail")
	}
}

func TestTriggerEventStrings(t *testing.T) {
	if scheduler.OnProgress.String() != "on-progress" ||
		scheduler.OnComplete.String() != "on-complete" ||
		scheduler.OnSubmit.String() != "on-submit" {
		t.Fatal("trigger event strings wrong")
	}
}

package scheduler_test

import (
	"testing"
	"time"

	"hadooppreempt/internal/advisor"
	"hadooppreempt/internal/core"
	"hadooppreempt/internal/hdfs"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/scheduler"
)

// TestFairDelaySchedulingPrefersLocalSlot pins a single-replica block on
// node02 and checks the fair scheduler declines node01's offers until
// node02's heartbeat arrives.
func TestFairDelaySchedulingPrefersLocalSlot(t *testing.T) {
	cfg := mapreduce.DefaultClusterConfig()
	cfg.Nodes = 2
	cfg.Node.MapSlots = 1
	cfg.HDFS.Replication = 1
	cfg.Engine.HeartbeatInterval = time.Second
	c, err := mapreduce.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jt := c.JobTracker()
	pre := preemptorFor(t, c, core.Suspend)
	fcfg := scheduler.DefaultFairConfig(2)
	fcfg.LocalityWaitSkips = 3
	fair, err := scheduler.NewFair(c.Engine(), jt, pre, advisor.Advisor{}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	jt.SetScheduler(fair)

	// Single replica pinned to node02 via the writer hint.
	if _, err := c.FileSystem().Create("/pinned", 64<<20, hdfs.NodeID("node02")); err != nil {
		t.Fatal(err)
	}
	job, err := jt.Submit(quickJob("pinned", "/pinned"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatal("job did not finish")
	}
	task := job.MapTasks()[0]
	if task.Tracker() != "tracker_node02" {
		t.Fatalf("task ran on %s, want tracker_node02 (delay scheduling should wait for the local slot)",
			task.Tracker())
	}
}

// TestFairDelaySchedulingEventuallyGoesRemote occupies the local node so
// the task must exhaust its skips and accept a remote slot.
func TestFairDelaySchedulingEventuallyGoesRemote(t *testing.T) {
	cfg := mapreduce.DefaultClusterConfig()
	cfg.Nodes = 2
	cfg.Node.MapSlots = 1
	cfg.HDFS.Replication = 1
	cfg.Engine.HeartbeatInterval = time.Second
	c, err := mapreduce.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jt := c.JobTracker()
	pre := preemptorFor(t, c, core.Suspend)
	fcfg := scheduler.DefaultFairConfig(2)
	fcfg.LocalityWaitSkips = 2
	fcfg.PreemptionTimeout = time.Hour // no preemption in this test
	fair, err := scheduler.NewFair(c.Engine(), jt, pre, advisor.Advisor{}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	jt.SetScheduler(fair)

	// A long job pinned to node02 occupies the only local slot.
	if _, err := c.FileSystem().Create("/hog", 512<<20, hdfs.NodeID("node02")); err != nil {
		t.Fatal(err)
	}
	hog := quickJob("hog", "/hog")
	hog.MapParseRate = 4e6 // ~128 s
	hog.Pool = "same"
	if _, err := jt.Submit(hog); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(5 * time.Second)

	// The pinned job wants node02 but it is busy; after the skips it
	// must run on node01.
	if _, err := c.FileSystem().Create("/pinned", 64<<20, hdfs.NodeID("node02")); err != nil {
		t.Fatal(err)
	}
	pinned := quickJob("pinned", "/pinned")
	pinned.Pool = "same"
	job, err := jt.Submit(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilJobsDone(30 * time.Minute) {
		t.Fatal("jobs did not finish")
	}
	task := job.MapTasks()[0]
	if task.Tracker() != "tracker_node01" {
		t.Fatalf("task ran on %s, want remote tracker_node01 after exhausting skips", task.Tracker())
	}
	// It must have gone remote quickly (a few skipped heartbeats), not
	// waited for the 128 s hog.
	if task.FirstLaunchAt() > 60*time.Second {
		t.Fatalf("remote fallback too slow: launched at %v", task.FirstLaunchAt())
	}
}

// Package metrics aggregates experiment measurements: sojourn times,
// makespans, swap traffic, and summary statistics over repeated runs.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary holds order statistics over a set of samples.
type Summary struct {
	Count int
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	Std   float64
}

// Summarize computes statistics over samples. An empty input yields a zero
// Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	n := float64(len(sorted))
	mean := sum / n
	// Two-pass variance: accumulating deviations from the mean avoids
	// the catastrophic cancellation of sumSq/n - mean² when samples sit
	// on a large offset. Summing in sorted order keeps the result
	// independent of sample arrival order, so aggregates merged from
	// shards reproduce the single-pass value bit for bit.
	var sumSq float64
	for _, v := range sorted {
		d := v - mean
		sumSq += d * d
	}
	variance := sumSq / n
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count: len(sorted),
		Mean:  mean,
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   percentile(sorted, 0.50),
		P95:   percentile(sorted, 0.95),
		Std:   math.Sqrt(variance),
	}
}

// percentile interpolates the p-quantile of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// DurationSummary is Summarize over durations, reported in seconds.
func DurationSummary(ds []time.Duration) Summary {
	samples := make([]float64, len(ds))
	for i, d := range ds {
		samples[i] = d.Seconds()
	}
	return Summarize(samples)
}

// SpreadWithin reports whether all samples are within frac of the mean,
// the property the paper states for its error bars ("minimum and maximum
// values measured are within 5% of the average").
func SpreadWithin(samples []float64, frac float64) bool {
	s := Summarize(samples)
	if s.Count == 0 || s.Mean == 0 {
		return true
	}
	return s.Max <= s.Mean*(1+frac) && s.Min >= s.Mean*(1-frac)
}

// JobMetrics captures the outcome of one job in one run.
type JobMetrics struct {
	Job          string
	SubmittedAt  time.Duration
	CompletedAt  time.Duration
	FirstLaunch  time.Duration
	WastedWork   time.Duration // CPU time of killed attempts
	Suspensions  int
	SwapOutBytes int64
	SwapInBytes  int64
}

// Sojourn is the time between submission and completion.
func (j JobMetrics) Sojourn() time.Duration { return j.CompletedAt - j.SubmittedAt }

// RunMetrics captures one experiment run.
type RunMetrics struct {
	Jobs map[string]*JobMetrics
}

// NewRunMetrics returns an empty run record.
func NewRunMetrics() *RunMetrics {
	return &RunMetrics{Jobs: make(map[string]*JobMetrics)}
}

// Job returns (creating if needed) the record for a job.
func (r *RunMetrics) Job(name string) *JobMetrics {
	j, ok := r.Jobs[name]
	if !ok {
		j = &JobMetrics{Job: name}
		r.Jobs[name] = j
	}
	return j
}

// Makespan is the time between the earliest submission and the latest
// completion across all jobs.
func (r *RunMetrics) Makespan() time.Duration {
	var first time.Duration = math.MaxInt64
	var last time.Duration
	for _, j := range r.Jobs {
		if j.SubmittedAt < first {
			first = j.SubmittedAt
		}
		if j.CompletedAt > last {
			last = j.CompletedAt
		}
	}
	if first == math.MaxInt64 {
		return 0
	}
	return last - first
}

// TotalWastedWork sums CPU time thrown away by kills across jobs.
func (r *RunMetrics) TotalWastedWork() time.Duration {
	var total time.Duration
	for _, j := range r.Jobs {
		total += j.WastedWork
	}
	return total
}

// Series is a labelled sequence of (x, y) points, one experiment curve.
type Series struct {
	Label  string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String formats the series as aligned rows.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (%s vs %s)\n", s.Label, s.YLabel, s.XLabel)
	for i := range s.X {
		fmt.Fprintf(&b, "%10.2f %12.3f\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// YAt returns the y value for the given x, if present.
func (s *Series) YAt(x float64) (float64, bool) {
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

package metrics

import (
	"reflect"
	"testing"
)

func TestCollectorObserveAndNames(t *testing.T) {
	c := NewCollector()
	c.Observe("b", 1)
	c.Observe("a", 2)
	c.Observe("b", 3)
	if got := c.Names(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("names = %v, want first-seen order [b a]", got)
	}
	if c.Count("b") != 2 || c.Count("a") != 1 {
		t.Fatalf("counts = %d, %d", c.Count("b"), c.Count("a"))
	}
	if s := c.Summary("b"); s.Mean != 2 {
		t.Fatalf("b mean = %v, want 2", s.Mean)
	}
}

// TestCollectorMergeExact is the merge contract: collectors fed
// disjoint subsets of a sample set combine — in any order — into the
// same summaries as one collector observing everything, including
// order statistics and on offset-heavy samples.
func TestCollectorMergeExact(t *testing.T) {
	samples := []float64{1e9 + 3, 1e9 - 2, 1e9 + 7, 1e9, 1e9 - 5, 1e9 + 1, 1e9 - 9}
	single := NewCollector()
	for _, v := range samples {
		single.Observe("x", v)
		single.Observe("y", -v)
	}
	split := func(order []int) *Collector {
		parts := make([]*Collector, 3)
		for i := range parts {
			parts[i] = NewCollector()
		}
		for i, v := range samples {
			parts[i%3].Observe("x", v)
			parts[i%3].Observe("y", -v)
		}
		merged := NewCollector()
		for _, i := range order {
			merged.Merge(parts[i])
		}
		return merged
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		merged := split(order)
		if !reflect.DeepEqual(merged.Summaries(), single.Summaries()) {
			t.Fatalf("merge order %v: summaries differ\nmerged: %+v\nsingle: %+v",
				order, merged.Summaries(), single.Summaries())
		}
	}
}

func TestCollectorMergeNewNamesKeepOrder(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	a.Observe("m", 1)
	b.Observe("n", 2)
	b.Observe("o", 3)
	a.Merge(b)
	if got := a.Names(); !reflect.DeepEqual(got, []string{"m", "n", "o"}) {
		t.Fatalf("names after merge = %v", got)
	}
}

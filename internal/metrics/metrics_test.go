package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min, s.Max)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("Std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.P50 != 7 || s.P95 != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

// TestSummarizeOffsetStability is the regression test for the
// catastrophic cancellation of the old sumSq/n - mean² variance: on a
// large offset, that formula subtracted two ~1e18 quantities and could
// return 0 (or noise) for a sample set with real spread. The two-pass
// form keeps full precision.
func TestSummarizeOffsetStability(t *testing.T) {
	const offset = 1e9
	s := Summarize([]float64{offset - 1, offset, offset + 1})
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.Std-want) > 1e-9 {
		t.Fatalf("Std at offset %g = %v, want %v", offset, s.Std, want)
	}
	// Near-identical large samples: std must be ~0, not the sqrt of a
	// cancellation residue (the old formula returned ~1e-6 here).
	s = Summarize([]float64{4.503599627370496e6, 4.503599627370496e6, 4.503599627370496e6})
	if s.Std != 0 {
		t.Fatalf("Std of identical samples = %v, want exactly 0", s.Std)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.P50 != 5 {
		t.Fatalf("P50 of {0,10} = %v, want 5", s.P50)
	}
	if math.Abs(s.P95-9.5) > 1e-9 {
		t.Fatalf("P95 of {0,10} = %v, want 9.5", s.P95)
	}
}

func TestDurationSummary(t *testing.T) {
	s := DurationSummary([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2 {
		t.Fatalf("Mean = %v s, want 2", s.Mean)
	}
}

func TestSpreadWithin(t *testing.T) {
	if !SpreadWithin([]float64{100, 102, 98}, 0.05) {
		t.Fatal("samples within 5% should pass")
	}
	if SpreadWithin([]float64{100, 120}, 0.05) {
		t.Fatal("20% spread should fail")
	}
	if !SpreadWithin(nil, 0.05) {
		t.Fatal("empty samples trivially pass")
	}
}

func TestJobMetricsSojourn(t *testing.T) {
	j := JobMetrics{SubmittedAt: 2 * time.Second, CompletedAt: 10 * time.Second}
	if j.Sojourn() != 8*time.Second {
		t.Fatalf("Sojourn = %v, want 8s", j.Sojourn())
	}
}

func TestRunMetricsMakespan(t *testing.T) {
	r := NewRunMetrics()
	tl := r.Job("tl")
	tl.SubmittedAt = 0
	tl.CompletedAt = 100 * time.Second
	th := r.Job("th")
	th.SubmittedAt = 30 * time.Second
	th.CompletedAt = 80 * time.Second
	if r.Makespan() != 100*time.Second {
		t.Fatalf("Makespan = %v, want 100s", r.Makespan())
	}
}

func TestRunMetricsMakespanEmpty(t *testing.T) {
	if NewRunMetrics().Makespan() != 0 {
		t.Fatal("empty makespan should be 0")
	}
}

func TestJobCreatesOnce(t *testing.T) {
	r := NewRunMetrics()
	a := r.Job("x")
	b := r.Job("x")
	if a != b {
		t.Fatal("Job should return the same record")
	}
}

func TestTotalWastedWork(t *testing.T) {
	r := NewRunMetrics()
	r.Job("a").WastedWork = 10 * time.Second
	r.Job("b").WastedWork = 5 * time.Second
	if r.TotalWastedWork() != 15*time.Second {
		t.Fatalf("TotalWastedWork = %v, want 15s", r.TotalWastedWork())
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Label: "susp", XLabel: "progress", YLabel: "sojourn"}
	s.Add(10, 85)
	s.Add(20, 86)
	if y, ok := s.YAt(10); !ok || y != 85 {
		t.Fatalf("YAt(10) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Fatal("YAt(99) should miss")
	}
	str := s.String()
	if len(str) == 0 || str[0] != '#' {
		t.Fatalf("String() = %q", str)
	}
}

// Property: summaries are order-invariant and bounded by min/max.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v)
		}
		s := Summarize(samples)
		reversed := make([]float64, len(samples))
		for i, v := range samples {
			reversed[len(samples)-1-i] = v
		}
		s2 := Summarize(reversed)
		if s != s2 {
			return false
		}
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.Max &&
			s.P50 <= s.P95 && s.P95 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package metrics

import "sort"

// Collector accumulates named scalar samples across repeated runs and
// summarizes each name with order statistics. It is the merge point the
// sweep harness feeds per-run outcomes into.
//
// A Collector is not safe for concurrent use; the harness merges results
// sequentially in deterministic grid order.
type Collector struct {
	names   []string
	samples map[string][]float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{samples: make(map[string][]float64)}
}

// Observe records one sample under name.
func (c *Collector) Observe(name string, v float64) {
	if _, ok := c.samples[name]; !ok {
		c.names = append(c.names, name)
	}
	c.samples[name] = append(c.samples[name], v)
}

// ObserveAll records every entry of values, in sorted key order so that
// first-seen name ordering stays deterministic.
func (c *Collector) ObserveAll(values map[string]float64) {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.Observe(k, values[k])
	}
}

// Merge folds every sample recorded in other into c. Names other
// introduces keep their first-seen order after c's own. The merge is
// exact: because Summarize orders the sample multiset before computing
// anything, collectors built from disjoint subsets of a sample set
// combine — in any order — into the same summaries as one collector
// observing every sample directly.
func (c *Collector) Merge(other *Collector) {
	for _, n := range other.names {
		if _, ok := c.samples[n]; !ok {
			c.names = append(c.names, n)
		}
		c.samples[n] = append(c.samples[n], other.samples[n]...)
	}
}

// Names returns the observed metric names in first-seen order.
func (c *Collector) Names() []string {
	return append([]string(nil), c.names...)
}

// Count returns the number of samples recorded under name.
func (c *Collector) Count(name string) int {
	return len(c.samples[name])
}

// Samples returns a copy of the samples recorded under name.
func (c *Collector) Samples(name string) []float64 {
	return append([]float64(nil), c.samples[name]...)
}

// Summary summarizes the samples recorded under name.
func (c *Collector) Summary(name string) Summary {
	return Summarize(c.samples[name])
}

// Summaries summarizes every observed name.
func (c *Collector) Summaries() map[string]Summary {
	out := make(map[string]Summary, len(c.names))
	for _, n := range c.names {
		out[n] = Summarize(c.samples[n])
	}
	return out
}

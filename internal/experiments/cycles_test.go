package experiments

import (
	"testing"
	"time"
)

func TestRunCyclesZeroIsPlainRun(t *testing.T) {
	res, err := RunCycles(DefaultCycleParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 {
		t.Fatalf("cycles = %d, want 0", res.Cycles)
	}
	if res.TLSwapOut != 0 || res.TLSwapIn != 0 {
		t.Fatal("no preemption should mean no swap")
	}
}

func TestRunCyclesCountsSuspensions(t *testing.T) {
	res, err := RunCycles(DefaultCycleParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 2 || res.Cycles > 3 {
		t.Fatalf("cycles = %d, want ~3 (thresholds may collapse)", res.Cycles)
	}
	if res.TLSwapOut == 0 || res.TLSwapIn == 0 {
		t.Fatal("worst-case cycles should swap")
	}
	if res.PeakSwapRate <= 0 {
		t.Fatal("thrashing detector should observe swap traffic")
	}
}

func TestCycleSojournGrowsPerCycle(t *testing.T) {
	// §III-A: the moderate cost of a suspend-resume cycle is multiplied
	// by the number of cycles. tl's sojourn must grow roughly linearly.
	res, err := CycleSweep(4, false, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].TLSojourn <= res[i-1].TLSojourn {
			t.Fatalf("sojourn did not grow at cycle %d: %v -> %v",
				i, res[i-1].TLSojourn, res[i].TLSojourn)
		}
	}
	// Per-cycle increments beyond the high-priority jobs' own runtime
	// should be bounded (a few seconds), not runaway thrashing: pages go
	// out and in at most once per cycle.
	first := res[1].TLSojourn - res[0].TLSojourn
	last := res[len(res)-1].TLSojourn - res[len(res)-2].TLSojourn
	if last > 3*first {
		t.Fatalf("per-cycle cost exploding: first %v vs last %v", first, last)
	}
}

func TestCycleSwapAmortizedForColdState(t *testing.T) {
	// Cold (write-once) state keeps a valid swap slot between cycles, so
	// repeated suspensions do not multiply write traffic — the §III-A
	// guarantee that pages go to swap at most once.
	res, err := CycleSweep(5, false, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	one := res[1].TLSwapOut
	five := res[5].TLSwapOut
	if five > one*2 {
		t.Fatalf("cold-state swap writes should amortize: 1 cycle %d MB, 5 cycles %d MB",
			one>>20, five>>20)
	}
}

func TestRunCyclesValidation(t *testing.T) {
	p := DefaultCycleParams(0)
	p.Cycles = -1
	if _, err := RunCycles(p); err == nil {
		t.Fatal("negative cycles should fail")
	}
}

func TestCycleResultPlausible(t *testing.T) {
	res, err := RunCycles(DefaultCycleParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.TLSojourn < 90*time.Second || res.TLSojourn > 10*time.Minute {
		t.Fatalf("implausible sojourn %v", res.TLSojourn)
	}
}

package experiments

import (
	"strings"
	"testing"
	"time"

	"hadooppreempt/internal/core"
)

func TestRunTwoJobValidation(t *testing.T) {
	p := DefaultTwoJobParams()
	p.PreemptAt = 0
	if _, err := RunTwoJob(p); err == nil {
		t.Fatal("PreemptAt 0 should fail")
	}
	p = DefaultTwoJobParams()
	p.InputBytes = 0
	if _, err := RunTwoJob(p); err == nil {
		t.Fatal("zero input should fail")
	}
}

func TestRunTwoJobDeterministic(t *testing.T) {
	p := DefaultTwoJobParams()
	p.Primitive = core.Suspend
	a, err := RunTwoJob(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTwoJob(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.SojournTH != b.SojournTH || a.Makespan != b.Makespan {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v",
			a.SojournTH, a.Makespan, b.SojournTH, b.Makespan)
	}
}

func TestRunTwoJobSeedVariesHeartbeatPhase(t *testing.T) {
	p := DefaultTwoJobParams()
	q := p
	q.Seed = 99
	a, _ := RunTwoJob(p)
	b, _ := RunTwoJob(q)
	// Different heartbeat phases shift the trigger slightly; identical
	// results for all metrics would suggest the seed is ignored.
	if a.THSubmittedAt == b.THSubmittedAt {
		t.Log("th submitted at identical times for different seeds (possible but unlikely)")
	}
}

// TestFigure2Shapes validates the qualitative claims of Figure 2 with one
// repetition per point.
func TestFigure2Shapes(t *testing.T) {
	res, err := Figure2(Config{Reps: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wait := res.Sojourn["wait"]
	kill := res.Sojourn["kill"]
	susp := res.Sojourn["susp"]

	// Wait's sojourn decreases with r (less of tl remains).
	first, _ := wait.YAt(10)
	last, _ := wait.YAt(90)
	if first <= last {
		t.Fatalf("wait sojourn should decrease: %v at 10%% vs %v at 90%%", first, last)
	}
	// Kill and susp are ~flat and far below wait at small r.
	kill10, _ := kill.YAt(10)
	susp10, _ := susp.YAt(10)
	if kill10 >= first || susp10 >= first {
		t.Fatalf("kill (%v) and susp (%v) should beat wait (%v) at r=10%%", kill10, susp10, first)
	}
	// Susp outperforms kill at every r (kill pays the cleanup attempt) —
	// the paper's headline for Figure 2a.
	for _, r := range ProgressSweep() {
		k, _ := kill.YAt(r)
		s, _ := susp.YAt(r)
		if s >= k {
			t.Fatalf("at r=%v%% susp sojourn (%v) should beat kill (%v)", r, s, k)
		}
	}
	// Susp even beats wait at r=90% (the paper highlights this).
	susp90, _ := susp.YAt(90)
	wait90, _ := wait.YAt(90)
	if susp90 >= wait90 {
		t.Fatalf("susp (%v) should beat wait (%v) even at r=90%%", susp90, wait90)
	}

	// Makespan: kill grows with r (wasted work); wait and susp ~flat and
	// close.
	mkill := res.Makespan["kill"]
	mwait := res.Makespan["wait"]
	msusp := res.Makespan["susp"]
	k10, _ := mkill.YAt(10)
	k90, _ := mkill.YAt(90)
	if k90 <= k10 {
		t.Fatalf("kill makespan should grow with r: %v -> %v", k10, k90)
	}
	for _, r := range ProgressSweep() {
		w, _ := mwait.YAt(r)
		s, _ := msusp.YAt(r)
		k, _ := mkill.YAt(r)
		if s > w*1.05 {
			t.Fatalf("at r=%v%% susp makespan (%v) should be within 5%% of wait (%v)", r, s, w)
		}
		if r >= 20 && k <= s {
			t.Fatalf("at r=%v%% kill makespan (%v) should exceed susp (%v)", r, k, s)
		}
	}
}

// TestFigure3Shapes validates the worst-case ordering: susp pays visible
// paging overhead but stays between the two extremes on both metrics.
func TestFigure3Shapes(t *testing.T) {
	res, err := Figure3(Config{Reps: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{30, 50, 70} {
		wait, _ := res.Sojourn["wait"].YAt(r)
		kill, _ := res.Sojourn["kill"].YAt(r)
		susp, _ := res.Sojourn["susp"].YAt(r)
		// Paper: kill achieves slightly lower sojourn than susp in the
		// worst case; both far below wait.
		if !(kill <= susp && susp < wait) {
			t.Fatalf("r=%v%%: want kill (%v) <= susp (%v) < wait (%v)", r, kill, susp, wait)
		}
		mwait, _ := res.Makespan["wait"].YAt(r)
		mkill, _ := res.Makespan["kill"].YAt(r)
		msusp, _ := res.Makespan["susp"].YAt(r)
		// Paper: wait achieves slightly smaller makespan; kill is worst.
		if !(mwait <= msusp && msusp < mkill) {
			t.Fatalf("r=%v%%: want wait (%v) <= susp (%v) < kill (%v)", r, mwait, msusp, mkill)
		}
	}
}

// TestFigure4Shapes validates the overhead analysis: no swap below the
// memory threshold, superlinear growth past it, overhead correlated with
// swapped volume.
func TestFigure4Shapes(t *testing.T) {
	res, err := Figure4(Config{Reps: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	if pts[0].PagedMB != 0 {
		t.Fatalf("th=0: paged %v MB, want 0", pts[0].PagedMB)
	}
	last := pts[len(pts)-1]
	if last.PagedMB < 500 {
		t.Fatalf("th=2.5GB: paged %v MB, want substantial swap", last.PagedMB)
	}
	// Monotone non-decreasing swap volume.
	for i := 1; i < len(pts); i++ {
		if pts[i].PagedMB < pts[i-1].PagedMB {
			t.Fatalf("paged bytes decreased at point %d: %v -> %v", i, pts[i-1].PagedMB, pts[i].PagedMB)
		}
	}
	// Overheads grow once swapping starts.
	if last.SojournOverheadSec <= pts[0].SojournOverheadSec {
		t.Fatal("sojourn overhead should grow with th memory")
	}
	if last.MakespanOverheadSec <= pts[0].MakespanOverheadSec {
		t.Fatal("makespan overhead should grow with th memory")
	}
	// The paper reports worst-case degradations of ~20% (sojourn) and
	// ~12% (makespan); ours must be in a credible band, not runaway.
	if last.SojournOverheadFrac < 0.02 || last.SojournOverheadFrac > 0.5 {
		t.Fatalf("worst-case sojourn degradation %v, want a visible but bounded fraction", last.SojournOverheadFrac)
	}
	if last.MakespanOverheadFrac < 0.02 || last.MakespanOverheadFrac > 0.5 {
		t.Fatalf("worst-case makespan degradation %v, want a visible but bounded fraction", last.MakespanOverheadFrac)
	}
}

func TestFigure1GanttCharts(t *testing.T) {
	res, err := Figure1(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, prim := range []string{"wait", "kill", "susp"} {
		g, ok := res.Gantt[prim]
		if !ok || len(g) == 0 {
			t.Fatalf("missing gantt for %s", prim)
		}
		if !strings.Contains(g, "tl") || !strings.Contains(g, "th") {
			t.Fatalf("%s gantt missing rows:\n%s", prim, g)
		}
	}
	if !strings.Contains(res.Gantt["susp"], "=") {
		t.Fatalf("susp gantt should show a suspended span:\n%s", res.Gantt["susp"])
	}
	if !strings.Contains(res.Gantt["kill"], "c") {
		t.Fatalf("kill gantt should show a cleanup span:\n%s", res.Gantt["kill"])
	}
}

func TestNatjamAblation(t *testing.T) {
	res, err := NatjamAblation(Config{Reps: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// OS-assisted suspension has negligible makespan overhead vs wait;
	// checkpointing pays serialization/deserialization every time.
	if res.SuspendOverheadFrac > 0.03 {
		t.Fatalf("suspend overhead %v, want negligible (< 3%%)", res.SuspendOverheadFrac)
	}
	if res.CheckpointOverheadFrac <= res.SuspendOverheadFrac {
		t.Fatalf("checkpoint overhead (%v) should exceed suspend (%v)",
			res.CheckpointOverheadFrac, res.SuspendOverheadFrac)
	}
}

func TestComparisonFormatting(t *testing.T) {
	res, err := Figure2(Config{Reps: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatComparison("Figure 2", res)
	if !strings.Contains(out, "sojourn") || !strings.Contains(out, "makespan") {
		t.Fatalf("formatted output incomplete:\n%s", out)
	}
	for _, col := range []string{"wait", "kill", "susp"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %s", col)
		}
	}
}

func TestPaperErrorBarClaim(t *testing.T) {
	// The paper: "minimum and maximum values measured are within 5% of
	// the average". Check our suspend runs behave similarly across seeds.
	var sojourns []float64
	for seed := uint64(1); seed <= 5; seed++ {
		p := DefaultTwoJobParams()
		p.Seed = seed
		out, err := RunTwoJob(p)
		if err != nil {
			t.Fatal(err)
		}
		sojourns = append(sojourns, out.SojournTH.Seconds())
	}
	max, min := sojourns[0], sojourns[0]
	for _, s := range sojourns {
		if s > max {
			max = s
		}
		if s < min {
			min = s
		}
	}
	if (max-min)/min > 0.10 {
		t.Fatalf("sojourn spread too wide across seeds: min=%v max=%v", min, max)
	}
}

func TestTwoJobTraceSpans(t *testing.T) {
	p := DefaultTwoJobParams()
	out, err := RunTwoJob(p)
	if err != nil {
		t.Fatal(err)
	}
	spans := out.Trace.Spans()
	if len(spans) < 3 {
		t.Fatalf("trace has %d spans, want tl running, tl suspended, th running at least", len(spans))
	}
	makespan := out.Trace.Makespan()
	if makespan <= 0 || makespan > 10*time.Minute {
		t.Fatalf("trace makespan %v implausible", makespan)
	}
}

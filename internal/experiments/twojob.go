// Package experiments reproduces the paper's evaluation (§IV): the
// two-job scenario of Figure 1, the light-weight comparison of Figure 2,
// the memory-hungry worst case of Figure 3, the memory-footprint overhead
// analysis of Figure 4, and the Natjam-style checkpoint ablation of the
// §IV-C discussion.
package experiments

import (
	"fmt"
	"time"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/scheduler"
	"hadooppreempt/internal/trace"
)

// TwoJobParams configures one run of the paper's experimental setup: a
// low-priority single-task map-only job tl is preempted at r% progress in
// favour of a high-priority job th; tl is restored once th completes.
type TwoJobParams struct {
	// Primitive is the preemption primitive under test.
	Primitive core.Primitive
	// PreemptAt is r: th arrives when tl reaches this progress fraction.
	PreemptAt float64
	// InputBytes is each job's single-block input size (512 MB in the
	// paper).
	InputBytes int64
	// MapParseRate is the synthetic mapper's parse throughput.
	MapParseRate float64
	// TLExtraMemory and THExtraMemory are the worst-case state
	// allocations (0 for light-weight tasks, 2 GB in Figure 3).
	TLExtraMemory int64
	THExtraMemory int64
	// Seed makes runs reproducible; vary it across repetitions.
	Seed uint64
	// Cluster optionally overrides the cluster configuration; nil uses
	// the paper's single-node 4 GB setup.
	Cluster *mapreduce.ClusterConfig
}

// DefaultTwoJobParams returns the paper's baseline setup.
func DefaultTwoJobParams() TwoJobParams {
	return TwoJobParams{
		Primitive:    core.Suspend,
		PreemptAt:    0.5,
		InputBytes:   512 << 20,
		MapParseRate: 6.5e6, // 512 MB in ~82 s of parse CPU
		Seed:         1,
	}
}

// TwoJobResult is the outcome of one run.
type TwoJobResult struct {
	// SojournTH is th's submission-to-completion time (Figures 2a, 3a).
	SojournTH time.Duration
	// Makespan spans tl's submission to the completion of both jobs
	// (Figures 2b, 3b).
	Makespan time.Duration
	// THSubmittedAt is when the progress trigger fired.
	THSubmittedAt time.Duration
	// SwapOutTL / SwapInTL are the bytes swapped by the process executing
	// tl (Figure 4's "paged bytes").
	SwapOutTL int64
	SwapInTL  int64
	// SwapOutTH / SwapInTH are th's own paging traffic.
	SwapOutTH int64
	SwapInTH  int64
	// TLSuspensions counts suspend cycles observed by tl.
	TLSuspensions int
	// TLAttempts counts tl's attempts (2 under kill).
	TLAttempts int
	// WastedWork is CPU time discarded by kills.
	WastedWork time.Duration
	// Trace holds the execution schedule (Figure 1).
	Trace *trace.Recorder
}

// RunTwoJob executes the scenario once.
func RunTwoJob(p TwoJobParams) (*TwoJobResult, error) {
	if p.PreemptAt <= 0 || p.PreemptAt >= 1 {
		return nil, fmt.Errorf("experiments: PreemptAt %v outside (0,1)", p.PreemptAt)
	}
	if p.InputBytes <= 0 || p.MapParseRate <= 0 {
		return nil, fmt.Errorf("experiments: input size and parse rate must be positive")
	}
	var ccfg mapreduce.ClusterConfig
	if p.Cluster != nil {
		ccfg = *p.Cluster
	} else {
		ccfg = mapreduce.DefaultClusterConfig()
	}
	ccfg.Seed = p.Seed
	cluster, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	eng := cluster.Engine()
	jt := cluster.JobTracker()
	dummy := scheduler.NewDummy(jt)
	defer dummy.Release()
	jt.SetScheduler(dummy)

	devices := make(map[string]*disk.Device, cluster.NumNodes())
	for i := 0; i < cluster.NumNodes(); i++ {
		n := cluster.Node(i)
		devices[n.Tracker.Name()] = n.Device
	}
	deviceFor := func(tracker string) *disk.Device { return devices[tracker] }
	preemptor, err := core.NewPreemptor(eng, jt, p.Primitive, deviceFor, core.CheckpointConfig{})
	if err != nil {
		return nil, err
	}

	if err := cluster.CreateInput("/input/tl", p.InputBytes); err != nil {
		return nil, err
	}
	if err := cluster.CreateInput("/input/th", p.InputBytes); err != nil {
		return nil, err
	}

	tlConf := mapreduce.JobConf{
		Name:             "tl",
		InputPath:        "/input/tl",
		Priority:         0,
		MapParseRate:     p.MapParseRate,
		ExtraMemoryBytes: p.TLExtraMemory,
	}
	thConf := mapreduce.JobConf{
		Name:             "th",
		InputPath:        "/input/th",
		Priority:         10,
		MapParseRate:     p.MapParseRate,
		ExtraMemoryBytes: p.THExtraMemory,
	}

	rec := &trace.Recorder{}
	jt.AddListener(&traceListener{rec: rec})

	tlJob, err := jt.Submit(tlConf)
	if err != nil {
		return nil, err
	}
	tlTask := tlJob.TaskAt(0).ID() // maps come first

	var thJob *mapreduce.Job
	var thSubmitted time.Duration
	dummy.AddTrigger(scheduler.Trigger{
		Event:     scheduler.OnProgress,
		Job:       "tl",
		Threshold: p.PreemptAt,
		Do: func() {
			thSubmitted = eng.Now()
			j, err := jt.Submit(thConf)
			if err != nil {
				panic(fmt.Sprintf("experiments: submit th: %v", err))
			}
			thJob = j
			// Wait is "no primitive": th just queues behind tl.
			if _, err := preemptor.Preempt(tlTask); err != nil {
				panic(fmt.Sprintf("experiments: preempt tl: %v", err))
			}
		},
	})
	dummy.AddTrigger(scheduler.Trigger{
		Event: scheduler.OnComplete,
		Job:   "th",
		Do: func() {
			if err := preemptor.Restore(tlTask); err != nil {
				panic(fmt.Sprintf("experiments: restore tl: %v", err))
			}
		},
	})

	if !cluster.RunUntilJobsDone(2 * time.Hour) {
		return nil, fmt.Errorf("experiments: run did not converge (primitive=%v r=%v)",
			p.Primitive, p.PreemptAt)
	}
	if thJob == nil {
		return nil, fmt.Errorf("experiments: progress trigger never fired")
	}
	rec.CloseAll(eng.Now())

	tl, _ := jt.Task(tlTask)
	thTask := thJob.TaskAt(0)
	res := &TwoJobResult{
		SojournTH:     thJob.CompletedAt() - thJob.SubmittedAt(),
		THSubmittedAt: thSubmitted,
		SwapOutTL:     tl.SwapOutBytes(),
		SwapInTL:      tl.SwapInBytes(),
		SwapOutTH:     thTask.SwapOutBytes(),
		SwapInTH:      thTask.SwapInBytes(),
		TLSuspensions: tl.Suspensions(),
		TLAttempts:    tl.Attempts(),
		WastedWork:    tl.WastedWork(),
		Trace:         rec,
	}
	end := tlJob.CompletedAt()
	if thJob.CompletedAt() > end {
		end = thJob.CompletedAt()
	}
	res.Makespan = end - tlJob.SubmittedAt()
	return res, nil
}

// traceListener feeds engine events into a trace recorder. Rows are the
// job names (tl / th).
type traceListener struct {
	mapreduce.NopListener
	rec *trace.Recorder
}

func (l *traceListener) TaskStateChanged(t *mapreduce.Task, from, to mapreduce.TaskState, at time.Duration) {
	row := t.Job().Name()
	switch to {
	case mapreduce.TaskRunning:
		l.rec.Begin(row, trace.SpanRunning, at)
	case mapreduce.TaskSuspended:
		l.rec.Begin(row, trace.SpanSuspended, at)
	case mapreduce.TaskSucceeded, mapreduce.TaskFailed:
		l.rec.End(row, at)
	case mapreduce.TaskPending:
		if from.Live() || from == mapreduce.TaskKilled {
			l.rec.Begin(row, trace.SpanWaiting, at)
		}
	}
}

func (l *traceListener) CleanupSpan(task mapreduce.TaskID, tracker string, start, end time.Duration) {
	l.rec.Add(trace.Span{Row: "cleanup", Kind: trace.SpanCleanup, Start: start, End: end})
}

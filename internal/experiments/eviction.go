package experiments

import (
	"fmt"
	"time"

	"hadooppreempt/internal/advisor"
	"hadooppreempt/internal/core"
	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/scheduler"
	"hadooppreempt/internal/sweep"
)

// EvictionResult is the outcome of one eviction-policy comparison run.
type EvictionResult struct {
	Policy string
	// Victim is the job whose task was suspended.
	Victim string
	// Makespan covers all three jobs.
	Makespan time.Duration
	// SojournTH is the high-priority job's latency.
	SojournTH time.Duration
	// VictimSwap is the victim's total swap traffic (out + in).
	VictimSwap int64
}

// RunEvictionComparison implements the §V-A discussion: when the
// high-priority task needs a slot and several tasks are candidates for
// eviction, which one should the scheduler suspend? Two low-priority
// jobs run on a two-slot node — one light (engine memory only), one
// memory-hungry (2 GB of state) — and a memory-hungry high-priority job
// arrives. The named policy picks the victim; suspending the smaller
// footprint should minimize paging overhead (the paper's reading of its
// Figure 4).
func RunEvictionComparison(policyName string, seed uint64) (*EvictionResult, error) {
	policy, err := advisor.PolicyByName(policyName)
	if err != nil {
		return nil, err
	}
	// The scenario always suspends, so the advisor's primitive is forced;
	// only its victim choice varies with the policy under test.
	adv, err := advisor.New(advisor.Config{Policy: policy, Primitive: core.Suspend})
	if err != nil {
		return nil, err
	}
	ccfg := mapreduce.DefaultClusterConfig()
	ccfg.Node.MapSlots = 2
	ccfg.Seed = seed
	cluster, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	eng := cluster.Engine()
	jt := cluster.JobTracker()
	dummy := scheduler.NewDummy(jt)
	defer dummy.Release()
	jt.SetScheduler(dummy)
	deviceFor := func(tracker string) *disk.Device {
		for _, n := range cluster.Nodes() {
			if n.Tracker.Name() == tracker {
				return n.Device
			}
		}
		return nil
	}
	preemptor, err := core.NewPreemptor(eng, jt, core.Suspend, deviceFor, core.CheckpointConfig{})
	if err != nil {
		return nil, err
	}

	for _, path := range []string{"/ev/light", "/ev/heavy", "/ev/th"} {
		if err := cluster.CreateInput(path, 512<<20); err != nil {
			return nil, err
		}
	}
	light, err := jt.Submit(mapreduce.JobConf{
		Name: "light", InputPath: "/ev/light", MapParseRate: 6.5e6,
	})
	if err != nil {
		return nil, err
	}
	heavy, err := jt.Submit(mapreduce.JobConf{
		Name: "heavy", InputPath: "/ev/heavy", MapParseRate: 6.5e6,
		ExtraMemoryBytes: 2 << 30,
	})
	if err != nil {
		return nil, err
	}
	thConf := mapreduce.JobConf{
		Name: "th", InputPath: "/ev/th", Priority: 10, MapParseRate: 6.5e6,
		ExtraMemoryBytes: 2 << 30,
	}

	var victim *mapreduce.Task
	var thJob *mapreduce.Job
	dummy.AddTrigger(scheduler.Trigger{
		Event: scheduler.OnProgress, Job: "light", Threshold: 0.5,
		Do: func() {
			j, err := jt.Submit(thConf)
			if err != nil {
				panic(fmt.Sprintf("experiments: submit th: %v", err))
			}
			thJob = j
			// Build the candidate set from the running low-priority
			// tasks, as a scheduler would.
			var candidates []advisor.Candidate
			var tasks []*mapreduce.Task
			for _, job := range []*mapreduce.Job{light, heavy} {
				for _, task := range job.MapTasks() {
					if task.State() != mapreduce.TaskRunning {
						continue
					}
					candidates = append(candidates, advisor.Candidate{
						ID:            task.IDString(),
						Progress:      task.Progress(),
						ResidentBytes: task.ResidentBytes(),
						StartedAt:     task.FirstLaunchAt(),
					})
					tasks = append(tasks, task)
				}
			}
			d := adv.Decide(advisor.Request{Candidates: candidates})
			if d.Victim == advisor.NoVictim {
				panic("experiments: no eviction candidate")
			}
			victim = tasks[d.Victim]
			if _, err := preemptor.Preempt(victim.ID()); err != nil {
				panic(fmt.Sprintf("experiments: preempt victim: %v", err))
			}
		},
	})
	dummy.AddTrigger(scheduler.Trigger{
		Event: scheduler.OnComplete, Job: "th",
		Do: func() {
			if err := preemptor.Restore(victim.ID()); err != nil {
				panic(fmt.Sprintf("experiments: restore victim: %v", err))
			}
		},
	})

	if !cluster.RunUntilJobsDone(6 * time.Hour) {
		return nil, fmt.Errorf("experiments: eviction run did not converge (policy=%s)", policyName)
	}
	var last time.Duration
	for _, j := range jt.Jobs() {
		if j.CompletedAt() > last {
			last = j.CompletedAt()
		}
	}
	return &EvictionResult{
		Policy:     policyName,
		Victim:     victim.Job().Conf().Name,
		Makespan:   last,
		SojournTH:  thJob.CompletedAt() - thJob.SubmittedAt(),
		VictimSwap: victim.SwapOutBytes() + victim.SwapInBytes(),
	}, nil
}

// EvictionSweep compares victim-selection policies through the harness.
// The policy axis is seed-paired: every policy faces the identical
// contention scenario, so outcome differences are pure policy effect.
func EvictionSweep(policies []string, cfg Config) ([]*EvictionResult, error) {
	g := sweep.NewGrid(sweep.Strings("policy", policies...)).Pair("policy")
	res, err := sweep.Run(g, func(pt sweep.Point) (sweep.Outcome, error) {
		r, err := RunEvictionComparison(pt.Label("policy"), pt.Seed)
		if err != nil {
			return sweep.Outcome{}, err
		}
		return sweep.Outcome{
			Values: map[string]float64{
				"makespan_s":     r.Makespan.Seconds(),
				"sojourn_th_s":   r.SojournTH.Seconds(),
				"victim_swap_mb": float64(r.VictimSwap) / float64(1<<20),
			},
			Labels: map[string]string{"victim": r.Victim},
			Extra:  r,
		}, nil
	}, cfg.options())
	if err != nil {
		return nil, err
	}
	out := make([]*EvictionResult, 0, len(res.Points))
	for _, pr := range res.Points {
		out = append(out, pr.Outcome.Extra.(*EvictionResult))
	}
	return out, nil
}

// AdvisorResult compares advisor-chosen primitives against fixed ones
// across the progress sweep.
type AdvisorResult struct {
	// R is tl's progress at th's arrival.
	R float64
	// Chosen is the primitive the advisor picked.
	Chosen core.Primitive
	// Makespans per strategy ("advisor", "wait", "kill", "susp").
	Makespans map[string]time.Duration
}

// RunAdvisorSweep evaluates §V-A's cost model: kill freshly started
// victims, wait for nearly-done ones, suspend the rest. For each r it
// runs all three fixed primitives through the harness (seed-paired on
// the primitive axis) and attaches the advisor's choice.
func RunAdvisorSweep(rs []float64, cfg Config) ([]*AdvisorResult, error) {
	g := sweep.NewGrid(
		sweep.Floats("r", rs...),
		sweep.Stringers("prim", core.Primitives()...),
	).Pair("prim")
	res, err := sweep.Run(g, func(pt sweep.Point) (sweep.Outcome, error) {
		p := DefaultTwoJobParams()
		p.Primitive = pt.Value("prim").(core.Primitive)
		p.PreemptAt = pt.Float("r")
		p.Seed = pt.Seed
		run, err := RunTwoJob(p)
		if err != nil {
			return sweep.Outcome{}, err
		}
		return sweep.Outcome{Values: map[string]float64{
			"makespan_s": run.Makespan.Seconds(),
		}}, nil
	}, cfg.options())
	if err != nil {
		return nil, err
	}
	adv, err := advisor.New(advisor.DefaultConfig())
	if err != nil {
		return nil, err
	}
	byR := make(map[float64]*AdvisorResult)
	var out []*AdvisorResult
	for _, pr := range res.Points {
		r := pr.Point.Float("r")
		ar, ok := byR[r]
		if !ok {
			ar = &AdvisorResult{R: r, Makespans: make(map[string]time.Duration)}
			byR[r] = ar
			out = append(out, ar)
		}
		mk := time.Duration(pr.Outcome.Values["makespan_s"] * float64(time.Second))
		ar.Makespans[pr.Point.Label("prim")] = mk
	}
	victim := make([]advisor.Candidate, 1)
	for _, ar := range out {
		victim[0] = advisor.Candidate{ID: "tl", Progress: ar.R}
		ar.Chosen = adv.Decide(advisor.Request{Candidates: victim}).Primitive
		ar.Makespans["advisor"] = ar.Makespans[ar.Chosen.String()]
	}
	return out, nil
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/metrics"
	"hadooppreempt/internal/sweep"
)

// WorstCaseMemory is the 2 GB allocation of the Figure 3 experiments.
const WorstCaseMemory int64 = 2 << 30

// Figure4TLMemory is tl's fixed 2.5 GB allocation in Figure 4.
const Figure4TLMemory int64 = 2560 << 20

// DefaultRepetitions matches the paper's 20-run averages; benchmarks use
// fewer for speed.
const DefaultRepetitions = 20

// Config controls how the figure generators execute their scenario
// grids through the sweep harness.
type Config struct {
	// Reps is the repetitions per data point (the paper averages 20).
	Reps int
	// Seed is the base seed; every cell derives its own stream from it.
	Seed uint64
	// Parallel bounds the harness worker pool; values below 1 run
	// serially. Results are identical at any level.
	Parallel int
}

// options converts the config to harness options, defaulting Reps to 1.
func (c Config) options() sweep.Options {
	return sweep.Options{Parallel: c.Parallel, Seed: c.Seed}
}

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 1
	}
	return c.Reps
}

// ProgressSweep returns the x-axis of Figures 2 and 3: tl progress at
// launch of th, 10%..90%.
func ProgressSweep() []float64 {
	out := make([]float64, 0, 9)
	for r := 10; r <= 90; r += 10 {
		out = append(out, float64(r))
	}
	return out
}

// ComparisonResult holds one figure pair: a sojourn-time series and a
// makespan series per primitive, averaged over repetitions.
type ComparisonResult struct {
	// Sojourn maps primitive name to th's sojourn time (seconds) vs tl
	// progress (%).
	Sojourn map[string]*metrics.Series
	// Makespan maps primitive name to workload makespan (seconds).
	Makespan map[string]*metrics.Series
}

// TwoJobGrid is the scenario grid behind Figures 2 and 3 and the CLI's
// "twojob" sweep: primitive x preemption point x repetition, with the
// primitive axis seed-paired so the three primitives face identical
// randomness at each point.
func TwoJobGrid(reps int) sweep.Grid {
	return sweep.NewGrid(
		sweep.Stringers("prim", core.Primitives()...),
		sweep.Floats("r", ProgressSweep()...),
		sweep.Reps(reps),
	).Pair("prim")
}

// twoJobParams builds the run parameters for one two-job cell — the
// point must carry the "prim" and "r" axes of TwoJobGrid.
func twoJobParams(pt sweep.Point, tlMem, thMem int64) TwoJobParams {
	p := DefaultTwoJobParams()
	p.Primitive = pt.Value("prim").(core.Primitive)
	p.PreemptAt = pt.Float("r") / 100
	p.TLExtraMemory = tlMem
	p.THExtraMemory = thMem
	p.Seed = pt.Seed
	return p
}

// recordTwoJob reports the standard two-job outcome values ("paged_mb"
// is tl's swap-out volume, Figure 4's y-axis; the swap totals cover
// both jobs).
func recordTwoJob(rec *sweep.Recorder, out *TwoJobResult) {
	rec.Observe("sojourn_th_s", out.SojournTH.Seconds())
	rec.Observe("makespan_s", out.Makespan.Seconds())
	rec.Observe("paged_mb", float64(out.SwapOutTL)/float64(1<<20))
	rec.Observe("swap_out_mb", float64(out.SwapOutTL+out.SwapOutTH)/float64(1<<20))
	rec.Observe("swap_in_mb", float64(out.SwapInTL+out.SwapInTH)/float64(1<<20))
	rec.Observe("tl_suspensions", float64(out.TLSuspensions))
	rec.Observe("tl_attempts", float64(out.TLAttempts))
	rec.Observe("wasted_cpu_s", out.WastedWork.Seconds())
}

// TwoJobCellInto runs one two-job scenario cell on the streaming path,
// recording the standard outcome values without per-cell maps.
func TwoJobCellInto(pt sweep.Point, tlMem, thMem int64, rec *sweep.Recorder) error {
	out, err := RunTwoJob(twoJobParams(pt, tlMem, thMem))
	if err != nil {
		return err
	}
	recordTwoJob(rec, out)
	return nil
}

// TwoJobCell is the materializing form of TwoJobCellInto, for harness
// paths that retain per-cell outcomes; Extra carries the raw result.
func TwoJobCell(pt sweep.Point, tlMem, thMem int64) (sweep.Outcome, error) {
	out, err := RunTwoJob(twoJobParams(pt, tlMem, thMem))
	if err != nil {
		return sweep.Outcome{}, err
	}
	var rec sweep.Recorder
	recordTwoJob(&rec, out)
	o := rec.Outcome()
	o.Extra = out
	return o, nil
}

// runComparison sweeps r for every primitive with the given memory
// configuration — the shared engine behind Figures 2 and 3. It streams
// cell outcomes straight into per-(prim, r) aggregates.
func runComparison(tlMem, thMem int64, cfg Config) (*ComparisonResult, error) {
	col, err := sweep.RunCollapsed(TwoJobGrid(cfg.reps()), func(pt sweep.Point, rec *sweep.Recorder) error {
		return TwoJobCellInto(pt, tlMem, thMem, rec)
	}, cfg.options(), sweep.RepAxis)
	if err != nil {
		return nil, err
	}
	out := &ComparisonResult{
		Sojourn:  make(map[string]*metrics.Series),
		Makespan: make(map[string]*metrics.Series),
	}
	for _, g := range col.Groups {
		prim := g.Labels["prim"]
		sj, ok := out.Sojourn[prim]
		if !ok {
			sj = &metrics.Series{Label: prim, XLabel: "tl progress at launch of th (%)", YLabel: "sojourn time th (s)"}
			out.Sojourn[prim] = sj
			out.Makespan[prim] = &metrics.Series{Label: prim, XLabel: "tl progress at launch of th (%)", YLabel: "makespan (s)"}
		}
		r := g.First.Float("r")
		sj.Add(r, g.Metrics["sojourn_th_s"].Mean)
		out.Makespan[prim].Add(r, g.Metrics["makespan_s"].Mean)
	}
	return out, nil
}

// Figure2 reproduces the baseline (light-weight tasks) comparison:
// Figure 2a (sojourn time of th) and Figure 2b (makespan).
func Figure2(cfg Config) (*ComparisonResult, error) {
	return runComparison(0, 0, cfg)
}

// Figure3 reproduces the worst-case comparison with memory-hungry tasks
// (both allocate 2 GB): Figure 3a and Figure 3b.
func Figure3(cfg Config) (*ComparisonResult, error) {
	return runComparison(WorstCaseMemory, WorstCaseMemory, cfg)
}

// Figure4Point is one x-position of Figure 4.
type Figure4Point struct {
	// THMemoryBytes is the memory allocated by th (x-axis).
	THMemoryBytes int64
	// PagedMB is the swap traffic of tl's process in MB (left y-axis).
	PagedMB float64
	// SojournOverheadSec is susp's th sojourn minus kill's (right
	// y-axis).
	SojournOverheadSec float64
	// MakespanOverheadSec is susp's makespan minus wait's.
	MakespanOverheadSec float64
	// SojournOverheadFrac and MakespanOverheadFrac are the relative
	// degradations the paper quotes (up to ~20% and ~12%).
	SojournOverheadFrac  float64
	MakespanOverheadFrac float64
}

// Figure4Result is the full overhead-vs-memory-footprint analysis.
type Figure4Result struct {
	Points []Figure4Point
}

// Figure4Sweep returns the paper's x-axis: memory allocated by th, 0 to
// 2.5 GB in 625 MB steps.
func Figure4Sweep() []int64 {
	step := int64(625) << 20
	out := make([]int64, 0, 5)
	for m := int64(0); m <= Figure4TLMemory; m += step {
		out = append(out, m)
	}
	return out
}

// Figure4 reproduces the overhead analysis: tl allocates 2.5 GB, th's
// allocation sweeps 0..2.5 GB; for each point we measure tl's swap
// traffic under susp and the sojourn/makespan degradation relative to
// kill and wait respectively. The primitive axis is seed-paired so the
// overheads are paired differences, as in the paper.
func Figure4(cfg Config) (*Figure4Result, error) {
	thMems := Figure4Sweep()
	mems := make([]int, len(thMems))
	for i, m := range thMems {
		mems[i] = int(m >> 20)
	}
	g := sweep.NewGrid(
		sweep.Ints("th_mem_mb", mems...),
		sweep.Stringers("prim", core.Primitives()...),
		sweep.Reps(cfg.reps()),
	).Pair("prim")
	col, err := sweep.RunCollapsed(g, func(pt sweep.Point, rec *sweep.Recorder) error {
		p := DefaultTwoJobParams()
		p.Primitive = pt.Value("prim").(core.Primitive)
		p.PreemptAt = 0.5
		p.TLExtraMemory = Figure4TLMemory
		p.THExtraMemory = int64(pt.Int("th_mem_mb")) << 20
		p.Seed = pt.Seed
		out, err := RunTwoJob(p)
		if err != nil {
			return err
		}
		rec.Observe("sojourn_th_s", out.SojournTH.Seconds())
		rec.Observe("makespan_s", out.Makespan.Seconds())
		rec.Observe("paged_mb", float64(out.SwapOutTL)/float64(1<<20))
		return nil
	}, cfg.options(), sweep.RepAxis)
	if err != nil {
		return nil, err
	}
	byCell := make(map[string]map[string]metrics.Summary)
	for _, g := range col.Groups {
		key := g.Labels["th_mem_mb"] + "/" + g.Labels["prim"]
		byCell[key] = g.Metrics
	}
	out := &Figure4Result{}
	for i, thMem := range thMems {
		cell := func(prim core.Primitive) map[string]metrics.Summary {
			return byCell[fmt.Sprintf("%d/%s", mems[i], prim)]
		}
		susp, kill, wait := cell(core.Suspend), cell(core.Kill), cell(core.Wait)
		pt := Figure4Point{
			THMemoryBytes:       thMem,
			PagedMB:             susp["paged_mb"].Mean,
			SojournOverheadSec:  susp["sojourn_th_s"].Mean - kill["sojourn_th_s"].Mean,
			MakespanOverheadSec: susp["makespan_s"].Mean - wait["makespan_s"].Mean,
		}
		if k := kill["sojourn_th_s"].Mean; k > 0 {
			pt.SojournOverheadFrac = pt.SojournOverheadSec / k
		}
		if w := wait["makespan_s"].Mean; w > 0 {
			pt.MakespanOverheadFrac = pt.MakespanOverheadSec / w
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Figure1Result holds the three schedule charts of Figure 1.
type Figure1Result struct {
	// Gantt maps primitive name to its rendered schedule.
	Gantt map[string]string
}

// Figure1 renders the task execution schedules for the three primitives
// at r=50%.
func Figure1(cfg Config) (*Figure1Result, error) {
	g := sweep.NewGrid(sweep.Stringers("prim", core.Primitives()...)).Pair("prim")
	res, err := sweep.Run(g, func(pt sweep.Point) (sweep.Outcome, error) {
		p := DefaultTwoJobParams()
		p.Primitive = pt.Value("prim").(core.Primitive)
		p.PreemptAt = 0.5
		p.Seed = pt.Seed
		out, err := RunTwoJob(p)
		if err != nil {
			return sweep.Outcome{}, err
		}
		return sweep.Outcome{Extra: out.Trace.Gantt(72)}, nil
	}, cfg.options())
	if err != nil {
		return nil, err
	}
	out := &Figure1Result{Gantt: make(map[string]string)}
	for _, pr := range res.Points {
		out.Gantt[pr.Point.Label("prim")] = pr.Outcome.Extra.(string)
	}
	return out, nil
}

// NatjamResult is the checkpoint-vs-suspend ablation of §IV-C: the paper
// notes Natjam reported ~7% makespan overhead where the OS-assisted
// primitive's is negligible.
type NatjamResult struct {
	MakespanWait       time.Duration
	MakespanSuspend    time.Duration
	MakespanCheckpoint time.Duration
	// SuspendOverheadFrac and CheckpointOverheadFrac are relative to
	// wait (the no-extra-work floor).
	SuspendOverheadFrac    float64
	CheckpointOverheadFrac float64
}

// NatjamAblation runs the light-weight setup with suspend and checkpoint.
func NatjamAblation(cfg Config) (*NatjamResult, error) {
	prims := []core.Primitive{core.Wait, core.Suspend, core.Checkpoint}
	g := sweep.NewGrid(sweep.Stringers("prim", prims...), sweep.Reps(cfg.reps())).Pair("prim")
	col, err := sweep.RunCollapsed(g, func(pt sweep.Point, rec *sweep.Recorder) error {
		p := DefaultTwoJobParams()
		p.Primitive = pt.Value("prim").(core.Primitive)
		p.PreemptAt = 0.5
		p.Seed = pt.Seed
		out, err := RunTwoJob(p)
		if err != nil {
			return err
		}
		rec.Observe("makespan_s", out.Makespan.Seconds())
		return nil
	}, cfg.options(), sweep.RepAxis)
	if err != nil {
		return nil, err
	}
	mean := make(map[string]time.Duration)
	for _, g := range col.Groups {
		mean[g.Labels["prim"]] = time.Duration(g.Metrics["makespan_s"].Mean * float64(time.Second))
	}
	out := &NatjamResult{
		MakespanWait:       mean[core.Wait.String()],
		MakespanSuspend:    mean[core.Suspend.String()],
		MakespanCheckpoint: mean[core.Checkpoint.String()],
	}
	if out.MakespanWait > 0 {
		out.SuspendOverheadFrac = float64(out.MakespanSuspend-out.MakespanWait) / float64(out.MakespanWait)
		out.CheckpointOverheadFrac = float64(out.MakespanCheckpoint-out.MakespanWait) / float64(out.MakespanWait)
	}
	return out, nil
}

// FormatComparison renders a ComparisonResult as the rows the paper
// plots.
func FormatComparison(title string, res *ComparisonResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	b.WriteString("-- sojourn time of th (s) --\n")
	b.WriteString(formatSeriesTable(res.Sojourn))
	b.WriteString("-- makespan (s) --\n")
	b.WriteString(formatSeriesTable(res.Makespan))
	return b.String()
}

func formatSeriesTable(series map[string]*metrics.Series) string {
	prims := []string{"wait", "kill", "susp"}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "r(%)")
	for _, p := range prims {
		fmt.Fprintf(&b, "%10s", p)
	}
	b.WriteString("\n")
	for _, r := range ProgressSweep() {
		fmt.Fprintf(&b, "%8.0f", r)
		for _, p := range prims {
			if s, ok := series[p]; ok {
				if y, found := s.YAt(r); found {
					fmt.Fprintf(&b, "%10.1f", y)
					continue
				}
			}
			fmt.Fprintf(&b, "%10s", "-")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure4 renders the overhead analysis.
func FormatFigure4(res *Figure4Result) string {
	var b strings.Builder
	b.WriteString("== Figure 4: overheads when varying memory usage ==\n")
	fmt.Fprintf(&b, "%14s %12s %16s %18s %12s %12s\n",
		"th mem", "paged (MB)", "sojourn ovh (s)", "makespan ovh (s)", "sojourn %", "makespan %")
	for _, pt := range res.Points {
		fmt.Fprintf(&b, "%14s %12.1f %16.2f %18.2f %11.1f%% %11.1f%%\n",
			formatBytes(pt.THMemoryBytes), pt.PagedMB, pt.SojournOverheadSec,
			pt.MakespanOverheadSec, pt.SojournOverheadFrac*100, pt.MakespanOverheadFrac*100)
	}
	return b.String()
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%d GB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%d MB", b>>20)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/metrics"
)

// WorstCaseMemory is the 2 GB allocation of the Figure 3 experiments.
const WorstCaseMemory int64 = 2 << 30

// Figure4TLMemory is tl's fixed 2.5 GB allocation in Figure 4.
const Figure4TLMemory int64 = 2560 << 20

// DefaultRepetitions matches the paper's 20-run averages; benchmarks use
// fewer for speed.
const DefaultRepetitions = 20

// ProgressSweep returns the x-axis of Figures 2 and 3: tl progress at
// launch of th, 10%..90%.
func ProgressSweep() []float64 {
	out := make([]float64, 0, 9)
	for r := 10; r <= 90; r += 10 {
		out = append(out, float64(r))
	}
	return out
}

// ComparisonResult holds one figure pair: a sojourn-time series and a
// makespan series per primitive, averaged over repetitions.
type ComparisonResult struct {
	// Sojourn maps primitive name to th's sojourn time (seconds) vs tl
	// progress (%).
	Sojourn map[string]*metrics.Series
	// Makespan maps primitive name to workload makespan (seconds).
	Makespan map[string]*metrics.Series
}

// runComparison sweeps r for every primitive with the given memory
// configuration — the shared engine behind Figures 2 and 3.
func runComparison(tlMem, thMem int64, reps int, seedBase uint64) (*ComparisonResult, error) {
	if reps <= 0 {
		reps = 1
	}
	res := &ComparisonResult{
		Sojourn:  make(map[string]*metrics.Series),
		Makespan: make(map[string]*metrics.Series),
	}
	for _, prim := range core.Primitives() {
		sj := &metrics.Series{Label: prim.String(), XLabel: "tl progress at launch of th (%)", YLabel: "sojourn time th (s)"}
		ms := &metrics.Series{Label: prim.String(), XLabel: "tl progress at launch of th (%)", YLabel: "makespan (s)"}
		for _, r := range ProgressSweep() {
			var sojourns, makespans []time.Duration
			for rep := 0; rep < reps; rep++ {
				p := DefaultTwoJobParams()
				p.Primitive = prim
				p.PreemptAt = r / 100
				p.TLExtraMemory = tlMem
				p.THExtraMemory = thMem
				p.Seed = seedBase + uint64(rep)*1000 + uint64(r)
				out, err := RunTwoJob(p)
				if err != nil {
					return nil, fmt.Errorf("r=%v prim=%v rep=%d: %w", r, prim, rep, err)
				}
				sojourns = append(sojourns, out.SojournTH)
				makespans = append(makespans, out.Makespan)
			}
			sj.Add(r, metrics.DurationSummary(sojourns).Mean)
			ms.Add(r, metrics.DurationSummary(makespans).Mean)
		}
		res.Sojourn[prim.String()] = sj
		res.Makespan[prim.String()] = ms
	}
	return res, nil
}

// Figure2 reproduces the baseline (light-weight tasks) comparison:
// Figure 2a (sojourn time of th) and Figure 2b (makespan).
func Figure2(reps int, seedBase uint64) (*ComparisonResult, error) {
	return runComparison(0, 0, reps, seedBase)
}

// Figure3 reproduces the worst-case comparison with memory-hungry tasks
// (both allocate 2 GB): Figure 3a and Figure 3b.
func Figure3(reps int, seedBase uint64) (*ComparisonResult, error) {
	return runComparison(WorstCaseMemory, WorstCaseMemory, reps, seedBase)
}

// Figure4Point is one x-position of Figure 4.
type Figure4Point struct {
	// THMemoryBytes is the memory allocated by th (x-axis).
	THMemoryBytes int64
	// PagedMB is the swap traffic of tl's process in MB (left y-axis).
	PagedMB float64
	// SojournOverheadSec is susp's th sojourn minus kill's (right
	// y-axis).
	SojournOverheadSec float64
	// MakespanOverheadSec is susp's makespan minus wait's.
	MakespanOverheadSec float64
	// SojournOverheadFrac and MakespanOverheadFrac are the relative
	// degradations the paper quotes (up to ~20% and ~12%).
	SojournOverheadFrac  float64
	MakespanOverheadFrac float64
}

// Figure4Result is the full overhead-vs-memory-footprint analysis.
type Figure4Result struct {
	Points []Figure4Point
}

// Figure4Sweep returns the paper's x-axis: memory allocated by th, 0 to
// 2.5 GB in 625 MB steps.
func Figure4Sweep() []int64 {
	step := int64(625) << 20
	out := make([]int64, 0, 5)
	for m := int64(0); m <= Figure4TLMemory; m += step {
		out = append(out, m)
	}
	return out
}

// Figure4 reproduces the overhead analysis: tl allocates 2.5 GB, th's
// allocation sweeps 0..2.5 GB; for each point we measure tl's swap
// traffic under susp and the sojourn/makespan degradation relative to
// kill and wait respectively.
func Figure4(reps int, seedBase uint64) (*Figure4Result, error) {
	if reps <= 0 {
		reps = 1
	}
	const r = 0.5
	res := &Figure4Result{}
	for _, thMem := range Figure4Sweep() {
		var paged, sojSusp, sojKill, mkSusp, mkWait []float64
		for rep := 0; rep < reps; rep++ {
			seed := seedBase + uint64(rep)*1000 + uint64(thMem>>20)
			base := DefaultTwoJobParams()
			base.PreemptAt = r
			base.TLExtraMemory = Figure4TLMemory
			base.THExtraMemory = thMem
			base.Seed = seed

			susp := base
			susp.Primitive = core.Suspend
			outS, err := RunTwoJob(susp)
			if err != nil {
				return nil, fmt.Errorf("fig4 susp thMem=%d: %w", thMem, err)
			}
			kill := base
			kill.Primitive = core.Kill
			outK, err := RunTwoJob(kill)
			if err != nil {
				return nil, fmt.Errorf("fig4 kill thMem=%d: %w", thMem, err)
			}
			wait := base
			wait.Primitive = core.Wait
			outW, err := RunTwoJob(wait)
			if err != nil {
				return nil, fmt.Errorf("fig4 wait thMem=%d: %w", thMem, err)
			}
			// The paper plots "paged bytes": the data swapped out of tl's
			// process (its state written to the swap area).
			paged = append(paged, float64(outS.SwapOutTL)/float64(1<<20))
			sojSusp = append(sojSusp, outS.SojournTH.Seconds())
			sojKill = append(sojKill, outK.SojournTH.Seconds())
			mkSusp = append(mkSusp, outS.Makespan.Seconds())
			mkWait = append(mkWait, outW.Makespan.Seconds())
		}
		mPaged := metrics.Summarize(paged).Mean
		mSojS := metrics.Summarize(sojSusp).Mean
		mSojK := metrics.Summarize(sojKill).Mean
		mMkS := metrics.Summarize(mkSusp).Mean
		mMkW := metrics.Summarize(mkWait).Mean
		pt := Figure4Point{
			THMemoryBytes:       thMem,
			PagedMB:             mPaged,
			SojournOverheadSec:  mSojS - mSojK,
			MakespanOverheadSec: mMkS - mMkW,
		}
		if mSojK > 0 {
			pt.SojournOverheadFrac = (mSojS - mSojK) / mSojK
		}
		if mMkW > 0 {
			pt.MakespanOverheadFrac = (mMkS - mMkW) / mMkW
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Figure1Result holds the three schedule charts of Figure 1.
type Figure1Result struct {
	// Gantt maps primitive name to its rendered schedule.
	Gantt map[string]string
}

// Figure1 renders the task execution schedules for the three primitives
// at r=50%.
func Figure1(seed uint64) (*Figure1Result, error) {
	res := &Figure1Result{Gantt: make(map[string]string)}
	for _, prim := range core.Primitives() {
		p := DefaultTwoJobParams()
		p.Primitive = prim
		p.PreemptAt = 0.5
		p.Seed = seed
		out, err := RunTwoJob(p)
		if err != nil {
			return nil, err
		}
		res.Gantt[prim.String()] = out.Trace.Gantt(72)
	}
	return res, nil
}

// NatjamResult is the checkpoint-vs-suspend ablation of §IV-C: the paper
// notes Natjam reported ~7% makespan overhead where the OS-assisted
// primitive's is negligible.
type NatjamResult struct {
	MakespanWait       time.Duration
	MakespanSuspend    time.Duration
	MakespanCheckpoint time.Duration
	// SuspendOverheadFrac and CheckpointOverheadFrac are relative to
	// wait (the no-extra-work floor).
	SuspendOverheadFrac    float64
	CheckpointOverheadFrac float64
}

// NatjamAblation runs the light-weight setup with suspend and checkpoint.
func NatjamAblation(reps int, seedBase uint64) (*NatjamResult, error) {
	if reps <= 0 {
		reps = 1
	}
	const r = 0.5
	run := func(prim core.Primitive) (time.Duration, error) {
		var samples []time.Duration
		for rep := 0; rep < reps; rep++ {
			p := DefaultTwoJobParams()
			p.Primitive = prim
			p.PreemptAt = r
			p.Seed = seedBase + uint64(rep)
			out, err := RunTwoJob(p)
			if err != nil {
				return 0, err
			}
			samples = append(samples, out.Makespan)
		}
		return time.Duration(metrics.DurationSummary(samples).Mean * float64(time.Second)), nil
	}
	wait, err := run(core.Wait)
	if err != nil {
		return nil, err
	}
	susp, err := run(core.Suspend)
	if err != nil {
		return nil, err
	}
	ckpt, err := run(core.Checkpoint)
	if err != nil {
		return nil, err
	}
	res := &NatjamResult{
		MakespanWait:       wait,
		MakespanSuspend:    susp,
		MakespanCheckpoint: ckpt,
	}
	if wait > 0 {
		res.SuspendOverheadFrac = float64(susp-wait) / float64(wait)
		res.CheckpointOverheadFrac = float64(ckpt-wait) / float64(wait)
	}
	return res, nil
}

// FormatComparison renders a ComparisonResult as the rows the paper
// plots.
func FormatComparison(title string, res *ComparisonResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	b.WriteString("-- sojourn time of th (s) --\n")
	b.WriteString(formatSeriesTable(res.Sojourn))
	b.WriteString("-- makespan (s) --\n")
	b.WriteString(formatSeriesTable(res.Makespan))
	return b.String()
}

func formatSeriesTable(series map[string]*metrics.Series) string {
	prims := []string{"wait", "kill", "susp"}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "r(%)")
	for _, p := range prims {
		fmt.Fprintf(&b, "%10s", p)
	}
	b.WriteString("\n")
	for _, r := range ProgressSweep() {
		fmt.Fprintf(&b, "%8.0f", r)
		for _, p := range prims {
			if s, ok := series[p]; ok {
				if y, found := s.YAt(r); found {
					fmt.Fprintf(&b, "%10.1f", y)
					continue
				}
			}
			fmt.Fprintf(&b, "%10s", "-")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure4 renders the overhead analysis.
func FormatFigure4(res *Figure4Result) string {
	var b strings.Builder
	b.WriteString("== Figure 4: overheads when varying memory usage ==\n")
	fmt.Fprintf(&b, "%14s %12s %16s %18s %12s %12s\n",
		"th mem", "paged (MB)", "sojourn ovh (s)", "makespan ovh (s)", "sojourn %", "makespan %")
	for _, pt := range res.Points {
		fmt.Fprintf(&b, "%14s %12.1f %16.2f %18.2f %11.1f%% %11.1f%%\n",
			formatBytes(pt.THMemoryBytes), pt.PagedMB, pt.SojournOverheadSec,
			pt.MakespanOverheadSec, pt.SojournOverheadFrac*100, pt.MakespanOverheadFrac*100)
	}
	return b.String()
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%d GB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%d MB", b>>20)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

package experiments

import (
	"fmt"
	"time"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/scheduler"
	"hadooppreempt/internal/sweep"
)

// CycleParams configures the suspend/resume cycle-cost experiment of
// §III-A: "Thrashing could only happen if a given job is continuously
// suspended and resumed by the scheduling mechanism: the moderate cost
// of a suspend-resume cycle can be thus multiplied by the number of
// cycles."
//
// A long low-priority job tl is preempted once per arriving
// high-priority job; each cycle pages tl's state out and back in.
type CycleParams struct {
	// Cycles is the number of suspend/resume cycles tl endures.
	Cycles int
	// TLExtraMemory is tl's state allocation (the paged volume per
	// cycle).
	TLExtraMemory int64
	// THExtraMemory is each high-priority job's allocation (it creates
	// the pressure).
	THExtraMemory int64
	// Stateful makes tl re-dirty its state while processing, so every
	// cycle pays the paging cost again (without it, pages go out and in
	// at most once, §III-A's benign case).
	Stateful bool
	// Seed drives randomness.
	Seed uint64
}

// DefaultCycleParams uses the worst-case 2 GB allocations.
func DefaultCycleParams(cycles int) CycleParams {
	return CycleParams{
		Cycles:        cycles,
		TLExtraMemory: WorstCaseMemory,
		THExtraMemory: WorstCaseMemory,
		Seed:          1,
	}
}

// CycleResult is the outcome of a cycle-cost run.
type CycleResult struct {
	// Cycles is the suspend count actually observed.
	Cycles int
	// TLSojourn is tl's submission-to-completion time.
	TLSojourn time.Duration
	// TLSwapOut / TLSwapIn accumulate tl's paging traffic across all
	// cycles.
	TLSwapOut int64
	TLSwapIn  int64
	// PeakSwapRate is the highest observed swap traffic over a 10 s
	// window (bytes/s) — the §III-A thrashing indicator.
	PeakSwapRate float64
}

// RunCycles executes the experiment once.
func RunCycles(p CycleParams) (*CycleResult, error) {
	if p.Cycles < 0 {
		return nil, fmt.Errorf("experiments: negative cycle count")
	}
	ccfg := mapreduce.DefaultClusterConfig()
	ccfg.Seed = p.Seed
	cluster, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	eng := cluster.Engine()
	jt := cluster.JobTracker()
	dummy := scheduler.NewDummy(jt)
	defer dummy.Release()
	jt.SetScheduler(dummy)
	deviceFor := func(tracker string) *disk.Device {
		for _, n := range cluster.Nodes() {
			if n.Tracker.Name() == tracker {
				return n.Device
			}
		}
		return nil
	}
	preemptor, err := core.NewPreemptor(eng, jt, core.Suspend, deviceFor, core.CheckpointConfig{})
	if err != nil {
		return nil, err
	}

	if err := cluster.CreateInput("/cycles/tl", 512<<20); err != nil {
		return nil, err
	}
	tlJob, err := jt.Submit(mapreduce.JobConf{
		Name:             "tl",
		InputPath:        "/cycles/tl",
		MapParseRate:     6.5e6,
		ExtraMemoryBytes: p.TLExtraMemory,
		StatefulMapper:   p.Stateful,
	})
	if err != nil {
		return nil, err
	}
	tlTask := tlJob.MapTasks()[0].ID()

	// Sample the peak swap rate as the run progresses.
	mem := cluster.Node(0).Memory
	peak := 0.0
	var sample func()
	sample = func() {
		if r := mem.SwapRate(10 * time.Second); r > peak {
			peak = r
		}
		eng.Schedule(2*time.Second, sample)
	}
	eng.Schedule(2*time.Second, sample)

	// Chain the cycles: the k-th high-priority job arrives when tl
	// crosses an evenly spaced progress threshold; tl is suspended for
	// it and resumed when it completes.
	for k := 0; k < p.Cycles; k++ {
		name := fmt.Sprintf("th%02d", k)
		path := "/cycles/" + name
		if err := cluster.CreateInput(path, 64<<20); err != nil {
			return nil, err
		}
		threshold := 0.15 + 0.7*float64(k)/float64(p.Cycles)
		conf := mapreduce.JobConf{
			Name:             name,
			InputPath:        path,
			Priority:         10,
			MapParseRate:     6.5e6, // ~10 s high-priority job
			ExtraMemoryBytes: p.THExtraMemory,
		}
		dummy.AddTrigger(scheduler.Trigger{
			Event: scheduler.OnProgress, Job: "tl", Threshold: threshold,
			Do: func() {
				if _, err := jt.Submit(conf); err != nil {
					panic(fmt.Sprintf("experiments: submit %s: %v", name, err))
				}
				// A coarse progress report can cross two thresholds at
				// once; overlapping cycles collapse into one suspension,
				// so a failed (redundant) preempt is fine.
				_, _ = preemptor.Preempt(tlTask)
			},
		})
		dummy.AddTrigger(scheduler.Trigger{
			Event: scheduler.OnComplete, Job: name,
			Do: func() {
				// Redundant restores (collapsed cycles) are fine too.
				_ = preemptor.Restore(tlTask)
			},
		})
	}

	if !cluster.RunUntilJobsDone(6 * time.Hour) {
		return nil, fmt.Errorf("experiments: cycle run did not converge")
	}
	tl, _ := jt.Task(tlTask)
	return &CycleResult{
		Cycles:       tl.Suspensions(),
		TLSojourn:    tlJob.CompletedAt() - tlJob.SubmittedAt(),
		TLSwapOut:    tl.SwapOutBytes(),
		TLSwapIn:     tl.SwapInBytes(),
		PeakSwapRate: peak,
	}, nil
}

// CycleSweep runs 0..maxCycles through the harness and returns one
// result per count, demonstrating that per-cycle cost is roughly
// constant (so total cost scales with the number of cycles, the
// scheduler-design warning of §III-A). With stateful set, the victim
// re-dirties its pages between cycles and the paging volume itself
// multiplies; without, pages go out and in at most once. The cycle axis
// is seed-paired: every count faces identical cluster randomness, so
// differences are pure cycle cost.
func CycleSweep(maxCycles int, stateful bool, cfg Config) ([]*CycleResult, error) {
	counts := make([]int, 0, maxCycles+1)
	for n := 0; n <= maxCycles; n++ {
		counts = append(counts, n)
	}
	g := sweep.NewGrid(sweep.Ints("cycles", counts...)).Pair("cycles")
	res, err := sweep.Run(g, func(pt sweep.Point) (sweep.Outcome, error) {
		p := DefaultCycleParams(pt.Int("cycles"))
		p.Stateful = stateful
		p.Seed = pt.Seed
		r, err := RunCycles(p)
		if err != nil {
			return sweep.Outcome{}, err
		}
		return sweep.Outcome{Values: map[string]float64{
			"cycles":         float64(r.Cycles),
			"tl_sojourn_s":   r.TLSojourn.Seconds(),
			"tl_swap_out_mb": float64(r.TLSwapOut) / float64(1<<20),
			"tl_swap_in_mb":  float64(r.TLSwapIn) / float64(1<<20),
		}, Extra: r}, nil
	}, cfg.options())
	if err != nil {
		return nil, err
	}
	out := make([]*CycleResult, 0, len(res.Points))
	for _, pr := range res.Points {
		out = append(out, pr.Outcome.Extra.(*CycleResult))
	}
	return out, nil
}

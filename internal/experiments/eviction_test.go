package experiments

import (
	"testing"

	"hadooppreempt/internal/core"
)

func TestEvictionSmallestMemoryPicksLightJob(t *testing.T) {
	res, err := RunEvictionComparison("smallest-memory", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim != "light" {
		t.Fatalf("victim = %s, want light", res.Victim)
	}
	// Suspending the light task leaves almost nothing to page.
	if res.VictimSwap > 512<<20 {
		t.Fatalf("light victim swapped %d MB, want little", res.VictimSwap>>20)
	}
}

func TestEvictionLargestMemoryPicksHeavyJob(t *testing.T) {
	res, err := RunEvictionComparison("largest-memory", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim != "heavy" {
		t.Fatalf("victim = %s, want heavy", res.Victim)
	}
}

func TestEvictionSmallestMemoryReducesPaging(t *testing.T) {
	small, err := RunEvictionComparison("smallest-memory", 1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunEvictionComparison("largest-memory", 1)
	if err != nil {
		t.Fatal(err)
	}
	// §V-A: suspending the smaller footprint reduces suspension overhead.
	if small.VictimSwap >= large.VictimSwap {
		t.Fatalf("smallest-memory victim swap (%d MB) should be below largest-memory (%d MB)",
			small.VictimSwap>>20, large.VictimSwap>>20)
	}
}

func TestEvictionUnknownPolicyFails(t *testing.T) {
	if _, err := RunEvictionComparison("bogus", 1); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestAdvisorSweepPicksByProgress(t *testing.T) {
	res, err := RunAdvisorSweep([]float64{0.02, 0.5, 0.97}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Chosen != core.Kill {
		t.Fatalf("at r=2%% advisor chose %v, want kill", res[0].Chosen)
	}
	if res[1].Chosen != core.Suspend {
		t.Fatalf("at r=50%% advisor chose %v, want suspend", res[1].Chosen)
	}
	if res[2].Chosen != core.Wait {
		t.Fatalf("at r=97%% advisor chose %v, want wait", res[2].Chosen)
	}
	// The advisor must never be much worse than the best fixed primitive
	// on makespan.
	for _, r := range res {
		best := r.Makespans["wait"]
		for _, prim := range []string{"kill", "susp"} {
			if r.Makespans[prim] < best {
				best = r.Makespans[prim]
			}
		}
		adv := r.Makespans["advisor"]
		if float64(adv) > float64(best)*1.10 {
			t.Fatalf("r=%v: advisor makespan %v more than 10%% above best fixed %v", r.R, adv, best)
		}
	}
}

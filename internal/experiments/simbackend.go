package experiments

import (
	"fmt"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/sweep"
)

// SimBackendName is the name every simulator-driven backend reports, so
// sim results are labelled consistently across scenario grids.
const SimBackendName = "sim"

// PressureGrid is the scenario grid behind the CLI's "pressure" sweep
// and the Figures 3/4 regime: primitive x th allocation x preemption
// point x repetition, with the primitive axis seed-paired.
func PressureGrid(reps int) sweep.Grid {
	return sweep.NewGrid(
		sweep.Stringers("prim", core.Primitives()...),
		sweep.Ints("th_mem_mb", 0, 1024, 2048),
		sweep.Floats("r", 25, 50, 75),
		sweep.Reps(reps),
	).Pair("prim")
}

// PressureCellInto runs one memory-pressure cell on the streaming path:
// the two-job scenario with worst-case tl memory and the cell's th
// allocation.
func PressureCellInto(pt sweep.Point, rec *sweep.Recorder) error {
	return TwoJobCellInto(pt, WorstCaseMemory, int64(pt.Int("th_mem_mb"))<<20, rec)
}

// SimBackend returns the simulator execution backend for a named
// scenario grid. It is the existing sweep path behind Figures 2-4
// repackaged behind the sweep.Backend interface: cell wiring and seed
// derivation are unchanged, so its output stays byte-identical to the
// pre-backend harness at any parallelism level.
//
// Scenarios: "twojob" (primitive x preemption point) and "pressure"
// (primitive x th memory x preemption point). The cluster-scale
// scenarios need facade wiring and are assembled there.
func SimBackend(scenario string, reps int) (sweep.Backend, error) {
	switch scenario {
	case "twojob":
		return sweep.FuncBackend{
			Engine: SimBackendName,
			G:      TwoJobGrid(reps),
			Run: func(pt sweep.Point, rec *sweep.Recorder) error {
				return TwoJobCellInto(pt, 0, 0, rec)
			},
		}, nil
	case "pressure":
		return sweep.FuncBackend{
			Engine: SimBackendName,
			G:      PressureGrid(reps),
			Run:    PressureCellInto,
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown sim scenario %q (want twojob or pressure)", scenario)
	}
}

package hdfs

import (
	"testing"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/memory"
	"hadooppreempt/internal/sim"
)

type testCluster struct {
	eng *sim.Engine
	fs  *FileSystem
	mem map[NodeID]*memory.Manager
}

// newTestCluster builds nodes n1..n4 across racks r1, r2 with 100 MB/s
// disks and 64 MB blocks.
func newTestCluster(t *testing.T, nodes int) *testCluster {
	t.Helper()
	eng := sim.New()
	fs, err := New(eng, sim.NewRNG(1), Config{
		BlockSize:          64 << 20,
		Replication:        3,
		RackLocalBandwidth: 100e6,
		OffRackBandwidth:   50e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{eng: eng, fs: fs, mem: make(map[NodeID]*memory.Manager)}
	racks := []string{"r1", "r2"}
	for i := 0; i < nodes; i++ {
		id := NodeID(string(rune('a'+i)) + "1")
		d := disk.New(eng, string(id), disk.Config{
			SeekTime: time.Millisecond, ReadBandwidth: 100e6, WriteBandwidth: 100e6,
		})
		m, err := memory.New(eng, d, memory.Config{
			PageSize: 64 << 10, RAMBytes: 512 << 20, SwapBytes: 1 << 30,
			PageClusterPages: 8, MinorFaultCost: time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.mem[id] = m
		if _, err := fs.AddDataNode(id, racks[i%2], d, m); err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

func TestCreateSplitsIntoBlocks(t *testing.T) {
	tc := newTestCluster(t, 4)
	locs, err := tc.fs.Create("/input", 200<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	// 200 MB at 64 MB blocks = 4 blocks (3 full + 1 of 8 MB).
	if len(locs) != 4 {
		t.Fatalf("blocks = %d, want 4", len(locs))
	}
	var total int64
	for _, l := range locs {
		total += l.Size
		if len(l.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", l.Block, len(l.Replicas))
		}
	}
	if total != 200<<20 {
		t.Fatalf("total size = %d, want %d", total, 200<<20)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	tc := newTestCluster(t, 2)
	if _, err := tc.fs.Create("/f", 1<<20, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.fs.Create("/f", 1<<20, ""); err == nil {
		t.Fatal("duplicate create should fail")
	}
}

func TestReplicasAreDistinctNodes(t *testing.T) {
	tc := newTestCluster(t, 4)
	locs, _ := tc.fs.Create("/f", 64<<20, "")
	seen := make(map[NodeID]bool)
	for _, r := range locs[0].Replicas {
		if seen[r] {
			t.Fatalf("replica %s repeated", r)
		}
		seen[r] = true
	}
}

func TestPlacementSpansRacks(t *testing.T) {
	tc := newTestCluster(t, 4)
	locs, _ := tc.fs.Create("/f", 64<<20, "")
	racks := make(map[string]bool)
	for _, r := range locs[0].Replicas {
		dn, _ := tc.fs.DataNode(r)
		racks[dn.Rack()] = true
	}
	if len(racks) < 2 {
		t.Fatalf("replicas all in one rack: %v", locs[0].Replicas)
	}
}

func TestWriterHintPins(t *testing.T) {
	tc := newTestCluster(t, 4)
	locs, _ := tc.fs.Create("/f", 64<<20, "a1")
	if locs[0].Replicas[0] != "a1" {
		t.Fatalf("first replica = %s, want writer a1", locs[0].Replicas[0])
	}
}

func TestReplicationCappedAtClusterSize(t *testing.T) {
	tc := newTestCluster(t, 2)
	locs, _ := tc.fs.Create("/f", 1<<20, "")
	if len(locs[0].Replicas) != 2 {
		t.Fatalf("replicas = %d, want 2 (cluster size)", len(locs[0].Replicas))
	}
}

func TestLocalityLevels(t *testing.T) {
	tc := newTestCluster(t, 4)
	locs, _ := tc.fs.Create("/f", 64<<20, "a1")
	block := locs[0].Block
	loc, err := tc.fs.Locality("a1", block)
	if err != nil {
		t.Fatal(err)
	}
	if loc != NodeLocal {
		t.Fatalf("locality on writer = %v, want node-local", loc)
	}
	// Some node must see it non-locally.
	replicaSet := make(map[NodeID]bool)
	for _, r := range locs[0].Replicas {
		replicaSet[r] = true
	}
	for _, n := range []NodeID{"a1", "b1", "c1", "d1"} {
		if !replicaSet[n] {
			loc, _ := tc.fs.Locality(n, block)
			if loc == NodeLocal {
				t.Fatalf("node %s without replica reports node-local", n)
			}
		}
	}
}

func TestReadLocalUsesDiskBandwidth(t *testing.T) {
	tc := newTestCluster(t, 4)
	locs, _ := tc.fs.Create("/f", 64<<20, "a1")
	done, loc, err := tc.fs.Read("a1", locs[0].Block, 0, 64<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loc != NodeLocal {
		t.Fatalf("locality = %v, want node-local", loc)
	}
	// 64 MiB (67.1e6 bytes) at 100e6 B/s = ~671 ms + 1 ms seek.
	want := 672 * time.Millisecond
	if done < want-2*time.Millisecond || done > want+2*time.Millisecond {
		t.Fatalf("done at %v, want ~%v", done, want)
	}
}

func TestReadRemoteIsSlower(t *testing.T) {
	tc := newTestCluster(t, 4)
	locs, _ := tc.fs.Create("/f", 64<<20, "a1")
	// Find a non-replica node to read from.
	replicaSet := make(map[NodeID]bool)
	for _, r := range locs[0].Replicas {
		replicaSet[r] = true
	}
	var reader NodeID
	for _, n := range []NodeID{"a1", "b1", "c1", "d1"} {
		if !replicaSet[n] {
			reader = n
			break
		}
	}
	if reader == "" {
		t.Skip("all nodes hold replicas")
	}
	doneRemote, loc, err := tc.fs.Read(reader, locs[0].Block, 0, 64<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loc == NodeLocal {
		t.Fatal("expected non-local read")
	}
	if loc == OffRack {
		// 50 MB/s network: 64 MB takes ~1.28 s > 0.64 s disk time.
		if doneRemote < 1200*time.Millisecond {
			t.Fatalf("off-rack read done at %v, want >= 1.2s", doneRemote)
		}
	}
}

func TestReadOutOfRangeFails(t *testing.T) {
	tc := newTestCluster(t, 2)
	locs, _ := tc.fs.Create("/f", 64<<20, "")
	if _, _, err := tc.fs.Read("a1", locs[0].Block, 0, 65<<20, 1); err == nil {
		t.Fatal("read beyond block should fail")
	}
	if _, _, err := tc.fs.Read("a1", BlockID(999), 0, 1, 1); err == nil {
		t.Fatal("read of unknown block should fail")
	}
}

func TestReadFillsReaderCache(t *testing.T) {
	tc := newTestCluster(t, 4)
	locs, _ := tc.fs.Create("/f", 64<<20, "a1")
	before := tc.mem["a1"].CacheBytes()
	tc.fs.Read("a1", locs[0].Block, 0, 64<<20, 1)
	after := tc.mem["a1"].CacheBytes()
	if after <= before {
		t.Fatalf("cache should grow on read: %d -> %d", before, after)
	}
}

func TestDelete(t *testing.T) {
	tc := newTestCluster(t, 2)
	locs, _ := tc.fs.Create("/f", 64<<20, "")
	if err := tc.fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if tc.fs.Exists("/f") {
		t.Fatal("file should be gone")
	}
	if _, _, err := tc.fs.Read("a1", locs[0].Block, 0, 1, 1); err == nil {
		t.Fatal("blocks should be gone")
	}
	if err := tc.fs.Delete("/f"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestBlocksUnknownFileFails(t *testing.T) {
	tc := newTestCluster(t, 2)
	if _, err := tc.fs.Blocks("/nope"); err == nil {
		t.Fatal("want error")
	}
}

func TestBlocksReturnsCopy(t *testing.T) {
	tc := newTestCluster(t, 4)
	tc.fs.Create("/f", 64<<20, "")
	locs1, _ := tc.fs.Blocks("/f")
	locs1[0].Replicas[0] = "mutated"
	locs2, _ := tc.fs.Blocks("/f")
	if locs2[0].Replicas[0] == "mutated" {
		t.Fatal("Blocks must return defensive copies")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	bad := []Config{
		{BlockSize: 0, Replication: 1, RackLocalBandwidth: 1, OffRackBandwidth: 1},
		{BlockSize: 1, Replication: 0, RackLocalBandwidth: 1, OffRackBandwidth: 1},
		{BlockSize: 1, Replication: 1, RackLocalBandwidth: 0, OffRackBandwidth: 1},
	}
	for i, cfg := range bad {
		if _, err := New(eng, sim.NewRNG(1), cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestCreateWithNoDataNodesFails(t *testing.T) {
	eng := sim.New()
	fs, _ := New(eng, sim.NewRNG(1), DefaultConfig())
	if _, err := fs.Create("/f", 1<<20, ""); err == nil {
		t.Fatal("create without datanodes should fail")
	}
}

func TestLocalityString(t *testing.T) {
	if NodeLocal.String() != "node-local" || RackLocal.String() != "rack-local" || OffRack.String() != "off-rack" {
		t.Fatal("locality strings wrong")
	}
}

// Package hdfs models the distributed filesystem substrate the paper's
// evaluation jobs read from: files split into large blocks, replicated
// across DataNodes, with locality-aware reads.
//
// The model captures what matters for the evaluation: block size (512 MB
// single-block inputs), sequential disk bandwidth on the serving node, the
// network penalty of non-local reads, and the fact that streaming a block
// through a node populates its file-system cache (which, at swappiness 0,
// is the first thing the memory manager reclaims under pressure).
package hdfs

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/memory"
	"hadooppreempt/internal/sim"
)

// NodeID identifies a cluster node.
type NodeID string

// BlockID identifies a stored block.
type BlockID int64

// Locality classifies a read path, mirroring Hadoop's locality levels.
type Locality int

// Locality levels.
const (
	// NodeLocal means a replica lives on the reading node.
	NodeLocal Locality = iota + 1
	// RackLocal means a replica lives in the reading node's rack.
	RackLocal
	// OffRack means every replica is in another rack.
	OffRack
)

// String returns the Hadoop-style name of the locality level.
func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case RackLocal:
		return "rack-local"
	case OffRack:
		return "off-rack"
	default:
		return fmt.Sprintf("Locality(%d)", int(l))
	}
}

// Config holds filesystem parameters.
type Config struct {
	// BlockSize is the split size for new files. The paper stores each
	// job's input in a single 512 MB block.
	BlockSize int64
	// Replication is the number of replicas per block.
	Replication int
	// RackLocalBandwidth is the network bandwidth (bytes/s) for reads
	// served within the rack.
	RackLocalBandwidth float64
	// OffRackBandwidth is the network bandwidth (bytes/s) for cross-rack
	// reads.
	OffRackBandwidth float64
}

// DefaultConfig mirrors the paper's setup: 512 MB blocks, replication 3,
// gigabit network in-rack and half of it across racks.
func DefaultConfig() Config {
	return Config{
		BlockSize:          512 << 20,
		Replication:        3,
		RackLocalBandwidth: 117e6, // ~1 GbE after framing overhead
		OffRackBandwidth:   58e6,
	}
}

// DataNode stores block replicas on a node's disk.
type DataNode struct {
	id     NodeID
	rack   string
	device *disk.Device
	mem    *memory.Manager // may be nil; used to model cache fill on reads
	blocks map[BlockID]int64
}

// ID returns the node identifier.
func (dn *DataNode) ID() NodeID { return dn.id }

// Rack returns the rack name.
func (dn *DataNode) Rack() string { return dn.rack }

// Blocks returns the number of replicas stored.
func (dn *DataNode) Blocks() int { return len(dn.blocks) }

// BlockLocation describes one block of a file and where its replicas are.
type BlockLocation struct {
	Block    BlockID
	Size     int64
	Replicas []NodeID
}

// FileSystem is the NameNode plus the set of DataNodes.
type FileSystem struct {
	eng       *sim.Engine
	cfg       Config
	rng       *sim.RNG
	nodes     map[NodeID]*DataNode
	nodeOrder []NodeID // deterministic iteration
	files     map[string][]BlockID
	blocks    map[BlockID]*blockMeta
	nextBlock BlockID
	// lastBlock/lastMeta memoise the most recent lookup: a mapper streams
	// one block in many chunked reads, so consecutive Read calls hit the
	// same entry and skip the map.
	lastBlock BlockID
	lastMeta  *blockMeta
	// lastServe/lastRead memoise the node records of the most recent Read:
	// chunked streaming hits the same server and reader every call, so the
	// string-keyed node lookups collapse to an ID comparison. Nodes are
	// never removed individually, so release is the only invalidation
	// point.
	lastServeID NodeID
	lastServeDN *DataNode
	lastReadID  NodeID
	lastReadDN  *DataNode
	// candScratch is reused across placeReplicas calls.
	candScratch []NodeID
}

type blockMeta struct {
	size     int64
	replicas []NodeID
}

// New creates an empty filesystem.
func New(eng *sim.Engine, rng *sim.RNG, cfg Config) (*FileSystem, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("hdfs: block size %d must be positive", cfg.BlockSize)
	}
	if cfg.Replication <= 0 {
		return nil, fmt.Errorf("hdfs: replication %d must be positive", cfg.Replication)
	}
	if cfg.RackLocalBandwidth <= 0 || cfg.OffRackBandwidth <= 0 {
		return nil, fmt.Errorf("hdfs: bandwidths must be positive")
	}
	fs := fsPool.Get().(*FileSystem)
	fs.eng, fs.cfg, fs.rng = eng, cfg, rng
	fs.nextBlock = 1
	if fs.nodes == nil {
		fs.nodes = make(map[NodeID]*DataNode)
		fs.files = make(map[string][]BlockID)
		fs.blocks = make(map[BlockID]*blockMeta)
	}
	return fs, nil
}

// fsPool and dataNodePool recycle shells released with Release, keeping
// their map storage warm across the cluster rebuilds of a sweep cell.
var (
	fsPool       = sync.Pool{New: func() any { return &FileSystem{} }}
	dataNodePool = sync.Pool{New: func() any { return &DataNode{} }}
)

// Release returns the filesystem's internal storage (and its DataNodes') to
// a shared arena for reuse by a future New. The filesystem must not be used
// afterwards.
func (fs *FileSystem) Release() {
	for _, dn := range fs.nodes {
		dn.device, dn.mem = nil, nil
		clear(dn.blocks)
		dataNodePool.Put(dn)
	}
	clear(fs.nodes)
	clear(fs.files)
	clear(fs.blocks)
	fs.nodeOrder = fs.nodeOrder[:0]
	fs.lastBlock, fs.lastMeta = 0, nil
	fs.lastServeID, fs.lastServeDN = "", nil
	fs.lastReadID, fs.lastReadDN = "", nil
	fs.eng, fs.rng = nil, nil
	fsPool.Put(fs)
}

// Config returns the filesystem parameters.
func (fs *FileSystem) Config() Config { return fs.cfg }

// AddDataNode registers a node's storage. mem may be nil when cache
// modelling is not wanted.
func (fs *FileSystem) AddDataNode(id NodeID, rack string, device *disk.Device, mem *memory.Manager) (*DataNode, error) {
	if _, ok := fs.nodes[id]; ok {
		return nil, fmt.Errorf("hdfs: datanode %q already registered", id)
	}
	dn := dataNodePool.Get().(*DataNode)
	dn.id, dn.rack, dn.device, dn.mem = id, rack, device, mem
	if dn.blocks == nil {
		dn.blocks = make(map[BlockID]int64)
	}
	fs.nodes[id] = dn
	fs.nodeOrder = append(fs.nodeOrder, id)
	sort.Slice(fs.nodeOrder, func(i, j int) bool { return fs.nodeOrder[i] < fs.nodeOrder[j] })
	return dn, nil
}

// DataNode returns the datanode with the given id.
func (fs *FileSystem) DataNode(id NodeID) (*DataNode, bool) {
	dn, ok := fs.nodes[id]
	return dn, ok
}

// Create writes a file of the given size, splitting it into blocks and
// placing replicas with the HDFS default policy: first replica on a random
// node (or the hinted writer), second on a node in a different rack, third
// on another node in the second replica's rack.
func (fs *FileSystem) Create(path string, size int64, writerHint NodeID) ([]BlockLocation, error) {
	if _, ok := fs.files[path]; ok {
		return nil, fmt.Errorf("hdfs: file %q exists", path)
	}
	if size <= 0 {
		return nil, fmt.Errorf("hdfs: file size %d must be positive", size)
	}
	if len(fs.nodes) == 0 {
		return nil, fmt.Errorf("hdfs: no datanodes")
	}
	var ids []BlockID
	var locs []BlockLocation
	for off := int64(0); off < size; off += fs.cfg.BlockSize {
		bsize := fs.cfg.BlockSize
		if off+bsize > size {
			bsize = size - off
		}
		replicas := fs.placeReplicas(writerHint)
		id := fs.nextBlock
		fs.nextBlock++
		fs.blocks[id] = &blockMeta{size: bsize, replicas: replicas}
		for _, nid := range replicas {
			fs.nodes[nid].blocks[id] = bsize
		}
		ids = append(ids, id)
		locs = append(locs, BlockLocation{Block: id, Size: bsize, Replicas: replicas})
	}
	fs.files[path] = ids
	return locs, nil
}

// placeReplicas implements the default placement policy.
func (fs *FileSystem) placeReplicas(writerHint NodeID) []NodeID {
	want := fs.cfg.Replication
	if want > len(fs.nodeOrder) {
		want = len(fs.nodeOrder)
	}
	// chosen escapes into the block metadata, so it is freshly allocated;
	// it doubles as the "already used" set (membership is a short scan).
	chosen := make([]NodeID, 0, want)
	pick := func(pred func(*DataNode) bool) bool {
		// Collect candidates deterministically, then pick one at random.
		cands := fs.candScratch[:0]
		for _, id := range fs.nodeOrder {
			if !slices.Contains(chosen, id) && (pred == nil || pred(fs.nodes[id])) {
				cands = append(cands, id)
			}
		}
		fs.candScratch = cands
		if len(cands) == 0 {
			return false
		}
		chosen = append(chosen, cands[fs.rng.Intn(len(cands))])
		return true
	}
	// First replica: the writer if known, else random.
	if writerHint != "" {
		if _, ok := fs.nodes[writerHint]; ok {
			chosen = append(chosen, writerHint)
		}
	}
	if len(chosen) == 0 {
		pick(nil)
	}
	firstRack := fs.nodes[chosen[0]].rack
	// Second replica: different rack if possible.
	if len(chosen) < want {
		if !pick(func(dn *DataNode) bool { return dn.rack != firstRack }) {
			pick(nil)
		}
	}
	// Third replica: same rack as the second, different node.
	if len(chosen) < want && len(chosen) >= 2 {
		secondRack := fs.nodes[chosen[1]].rack
		if !pick(func(dn *DataNode) bool { return dn.rack == secondRack }) {
			pick(nil)
		}
	}
	for len(chosen) < want {
		if !pick(nil) {
			break
		}
	}
	return chosen
}

// Blocks returns the block locations of a file.
func (fs *FileSystem) Blocks(path string) ([]BlockLocation, error) {
	ids, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", path)
	}
	locs := make([]BlockLocation, 0, len(ids))
	for _, id := range ids {
		meta := fs.blocks[id]
		locs = append(locs, BlockLocation{
			Block:    id,
			Size:     meta.size,
			Replicas: append([]NodeID(nil), meta.replicas...),
		})
	}
	return locs, nil
}

// BlocksInto appends the block locations of a file to dst and returns the
// extended slice. Unlike Blocks, the Replicas slices alias the filesystem's
// internal replica lists and must be treated as read-only.
func (fs *FileSystem) BlocksInto(path string, dst []BlockLocation) ([]BlockLocation, error) {
	ids, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", path)
	}
	for _, id := range ids {
		meta := fs.blocks[id]
		dst = append(dst, BlockLocation{
			Block:    id,
			Size:     meta.size,
			Replicas: meta.replicas,
		})
	}
	return dst, nil
}

// Locality reports the best locality level a reader on the given node can
// achieve for the block.
func (fs *FileSystem) Locality(reader NodeID, block BlockID) (Locality, error) {
	meta, ok := fs.blocks[block]
	if !ok {
		return 0, fmt.Errorf("hdfs: no such block %d", block)
	}
	readerRack := ""
	if dn, ok := fs.nodes[reader]; ok {
		readerRack = dn.rack
	}
	best := OffRack
	for _, nid := range meta.replicas {
		if nid == reader {
			return NodeLocal, nil
		}
		if readerRack != "" && fs.nodes[nid].rack == readerRack {
			best = RackLocal
		}
	}
	return best, nil
}

// Read simulates reading [offset, offset+length) of a block from the best
// replica for the reader. It returns the absolute virtual time at which
// the data is available and the locality level used. The serving disk is
// occupied for the transfer; non-local reads are additionally bounded by
// network bandwidth. The reading node's page cache absorbs the data.
func (fs *FileSystem) Read(reader NodeID, block BlockID, offset, length int64, stream disk.StreamID) (time.Duration, Locality, error) {
	meta := fs.lastMeta
	if block != fs.lastBlock || meta == nil {
		var ok bool
		meta, ok = fs.blocks[block]
		if !ok {
			return 0, 0, fmt.Errorf("hdfs: no such block %d", block)
		}
		fs.lastBlock, fs.lastMeta = block, meta
	}
	if offset < 0 || length < 0 || offset+length > meta.size {
		return 0, 0, fmt.Errorf("hdfs: read [%d,%d) outside block of %d bytes", offset, offset+length, meta.size)
	}
	server, loc := fs.chooseReplica(reader, meta)
	dn := fs.lastServeDN
	if server != fs.lastServeID || dn == nil {
		dn = fs.nodes[server]
		fs.lastServeID, fs.lastServeDN = server, dn
	}
	done := dn.device.Submit(disk.Read, length, stream)
	// Non-local reads stream over the network; the slower of disk and
	// network dominates, so extend the completion time if the network is
	// the bottleneck.
	var netBW float64
	switch loc {
	case RackLocal:
		netBW = fs.cfg.RackLocalBandwidth
	case OffRack:
		netBW = fs.cfg.OffRackBandwidth
	}
	if netBW > 0 {
		netTime := time.Duration(float64(length) / netBW * float64(time.Second))
		if start := fs.eng.Now(); start+netTime > done {
			done = start + netTime
		}
	}
	// The reader's page cache absorbs the streamed data (clean pages,
	// reclaimed first under pressure). Node-local reads (the common case)
	// reuse the server's record instead of a second map lookup.
	rdn := dn
	if server != reader {
		rdn = fs.lastReadDN
		if reader != fs.lastReadID || rdn == nil {
			rdn = fs.nodes[reader]
			fs.lastReadID, fs.lastReadDN = reader, rdn
		}
	}
	if rdn != nil && rdn.mem != nil {
		rdn.mem.CacheFill(length)
	}
	return done, loc, nil
}

// chooseReplica picks the closest replica for the reader.
func (fs *FileSystem) chooseReplica(reader NodeID, meta *blockMeta) (NodeID, Locality) {
	// The reader's rack is only needed once a non-local replica shows up;
	// resolving it lazily keeps the node-local fast path lookup-free.
	readerRack := ""
	rackKnown := false
	var rackChoice, anyChoice NodeID
	for _, nid := range meta.replicas {
		if nid == reader {
			return nid, NodeLocal
		}
		if !rackKnown {
			rackKnown = true
			if dn, ok := fs.nodes[reader]; ok {
				readerRack = dn.rack
			}
		}
		if rackChoice == "" && readerRack != "" && fs.nodes[nid].rack == readerRack {
			rackChoice = nid
		}
		if anyChoice == "" {
			anyChoice = nid
		}
	}
	if rackChoice != "" {
		return rackChoice, RackLocal
	}
	return anyChoice, OffRack
}

// Delete removes a file and its blocks.
func (fs *FileSystem) Delete(path string) error {
	ids, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("hdfs: no such file %q", path)
	}
	for _, id := range ids {
		meta := fs.blocks[id]
		for _, nid := range meta.replicas {
			delete(fs.nodes[nid].blocks, id)
		}
		delete(fs.blocks, id)
		if id == fs.lastBlock {
			fs.lastBlock, fs.lastMeta = 0, nil
		}
	}
	delete(fs.files, path)
	return nil
}

// Exists reports whether a file exists.
func (fs *FileSystem) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

package hdfs

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/sim"
)

// TestPropertyPlacementInvariants creates files of random sizes on random
// cluster shapes and verifies placement invariants: block count and sizes
// partition the file, replicas are distinct live nodes, replication meets
// min(cluster size, configured factor), and multi-rack clusters spread
// replicas across at least two racks when possible.
func TestPropertyPlacementInvariants(t *testing.T) {
	f := func(nodes, racks uint8, sizeMB uint16, seed uint64) bool {
		n := int(nodes%8) + 1
		r := int(racks%3) + 1
		size := (int64(sizeMB%512) + 1) << 20
		eng := sim.New()
		fs, err := New(eng, sim.NewRNG(seed), Config{
			BlockSize:          64 << 20,
			Replication:        3,
			RackLocalBandwidth: 100e6,
			OffRackBandwidth:   50e6,
		})
		if err != nil {
			return false
		}
		rackNames := make([]string, 0, n)
		for i := 0; i < n; i++ {
			id := NodeID(fmt.Sprintf("n%02d", i))
			rack := fmt.Sprintf("rack%d", i%r)
			dev := disk.New(eng, string(id), disk.Config{
				SeekTime: time.Millisecond, ReadBandwidth: 100e6, WriteBandwidth: 100e6,
			})
			if _, err := fs.AddDataNode(id, rack, dev, nil); err != nil {
				return false
			}
			rackNames = append(rackNames, rack)
		}
		locs, err := fs.Create("/f", size, "")
		if err != nil {
			return false
		}
		var total int64
		for _, l := range locs {
			total += l.Size
			if l.Size <= 0 || l.Size > 64<<20 {
				t.Logf("block size %d out of range", l.Size)
				return false
			}
			want := 3
			if n < want {
				want = n
			}
			if len(l.Replicas) != want {
				t.Logf("replicas %d, want %d (nodes=%d)", len(l.Replicas), want, n)
				return false
			}
			seen := make(map[NodeID]bool)
			replicaRacks := make(map[string]bool)
			for _, rep := range l.Replicas {
				if seen[rep] {
					t.Logf("duplicate replica %s", rep)
					return false
				}
				seen[rep] = true
				dn, ok := fs.DataNode(rep)
				if !ok {
					t.Logf("replica on unknown node %s", rep)
					return false
				}
				replicaRacks[dn.Rack()] = true
			}
			// With >= 2 racks and >= 2 replicas, placement must span
			// racks (the default policy guarantees it).
			distinctRacks := make(map[string]bool)
			for _, rn := range rackNames {
				distinctRacks[rn] = true
			}
			if len(distinctRacks) >= 2 && len(l.Replicas) >= 2 && len(replicaRacks) < 2 {
				t.Logf("replicas all in one rack despite %d racks", len(distinctRacks))
				return false
			}
		}
		if total != size {
			t.Logf("blocks sum to %d, want %d", total, size)
			return false
		}
		// Every block readable from every node.
		for _, l := range locs {
			for i := 0; i < n; i++ {
				reader := NodeID(fmt.Sprintf("n%02d", i))
				if _, _, err := fs.Read(reader, l.Block, 0, l.Size, 1); err != nil {
					t.Logf("read from %s failed: %v", reader, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Package atomicio provides atomic file replacement for the durable
// state the harness persists — coordinator checkpoints and cell-result
// cache entries. Both writers guarantee a reader never observes a torn
// file: the data lands in a temp file in the target directory first and
// is renamed over the destination, so the destination either holds the
// previous complete contents or the new complete contents.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileDurable atomically replaces path with data: write a temp
// file, fsync it, rename it over path, then fsync the parent directory
// so the rename itself is durable. Without the syncs a crash right
// after the caller acted on the write (e.g. a coordinator acking an
// upload) could lose the file that justified the action — the rename
// would exist only in the page cache. The temp name is fixed
// (path+".tmp"), so concurrent writers of the same path need external
// serialization; the coordinator holds its mutex across checkpoints.
func WriteFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("write %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("rename: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		// Directory fsync can fail on exotic filesystems; the rename is
		// already visible, so degrade to pre-sync durability silently.
		dir.Sync()
		dir.Close()
	}
	return nil
}

// WriteFileAtomic atomically replaces path with data through a uniquely
// named temp file, so any number of concurrent writers — goroutines or
// separate processes racing on the same cache entry — each land a
// complete file and the last rename wins. Unlike WriteFileDurable it
// does not fsync: a crash may lose the write entirely or leave bytes
// the filesystem never flushed, which is acceptable for callers (the
// cell-result cache) that checksum entries on read and treat any
// anomaly as a miss.
func WriteFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("write %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("rename: %w", err)
	}
	return nil
}

package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"time"
)

// errDropped is what a chaos Transport returns for a dropped request
// or response: indistinguishable from a network failure, so callers
// exercise their real retry path.
var errDropped = errors.New("chaos: injected network fault")

// Transport wraps a client-side RoundTripper with the plan's transport
// faults for the named site (one RNG stream per site, so two workers
// with distinct site labels draw independent schedules):
//
//   - drop-request: the request never reaches base.
//   - drop-response: base completes the round trip (the server processed
//     it) but the caller sees a transport error — at-least-once delivery.
//   - duplicate: the request is sent twice; the first response is
//     discarded and the caller sees the second.
//   - truncate-response: the caller receives only half the response body
//     before an unexpected EOF.
//   - delay: the request is held up to MaxDelay before sending.
//
// Requests must have replayable bodies (GetBody set, as all bodies built
// from byte slices do) for duplication to work; without GetBody the
// duplicate downgrades to a normal send.
func (p *Plan) Transport(site string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{plan: p, site: site, base: base}
}

type transport struct {
	plan *Plan
	site string
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	fault, delay := t.plan.drawTransport(t.site)
	if delay > 0 {
		t.plan.logf("chaos[%s]: delay %v %s %s", t.site, delay, req.Method, req.URL.Path)
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if fault != faultNone {
		t.plan.logf("chaos[%s]: %s %s %s", t.site, fault, req.Method, req.URL.Path)
	}
	switch fault {
	case faultDropRequest:
		return nil, errDropped
	case faultDropResponse:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server saw and processed the request; the client must not.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errDropped
	case faultDuplicate:
		if req.GetBody != nil {
			clone := req.Clone(req.Context())
			body, err := req.GetBody()
			if err == nil {
				clone.Body = body
				if resp, err := t.base.RoundTrip(clone); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if body, err := req.GetBody(); err == nil {
					req.Body = body
				}
			}
		}
		return t.base.RoundTrip(req)
	case faultTruncate:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		cut := truncatedBody{bytes.NewReader(data[:len(data)/2])}
		resp.Body = cut
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

// truncatedBody ends with io.ErrUnexpectedEOF rather than io.EOF, the
// way a connection severed mid-body surfaces to a JSON decoder.
type truncatedBody struct {
	r io.Reader
}

func (b truncatedBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (truncatedBody) Close() error { return nil }

// Middleware wraps a server-side handler with the plan's transport
// faults for the named site. Server-side drops sever the connection via
// http.ErrAbortHandler so the client sees a transport error, not a
// status code: drop-request severs before next runs, drop-response
// after next ran (the request took effect but the ack is lost).
// Duplicate runs next twice against the same replayed body — the
// at-least-once case an idempotent handler must absorb. Truncate sends
// half the response body and severs.
func (p *Plan) Middleware(site string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fault, delay := p.drawTransport(site)
		if delay > 0 {
			p.logf("chaos[%s]: delay %v %s %s", site, delay, r.Method, r.URL.Path)
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-r.Context().Done():
				timer.Stop()
				return
			}
		}
		if fault != faultNone {
			p.logf("chaos[%s]: %s %s %s", site, fault, r.Method, r.URL.Path)
		}
		switch fault {
		case faultDropRequest:
			panic(http.ErrAbortHandler)
		case faultDropResponse:
			rec := newResponseBuffer()
			next.ServeHTTP(rec, r)
			panic(http.ErrAbortHandler)
		case faultDuplicate:
			body, err := io.ReadAll(r.Body)
			if err != nil {
				panic(http.ErrAbortHandler)
			}
			first := r.Clone(r.Context())
			first.Body = io.NopCloser(bytes.NewReader(body))
			next.ServeHTTP(newResponseBuffer(), first)
			r.Body = io.NopCloser(bytes.NewReader(body))
			next.ServeHTTP(w, r)
		case faultTruncate:
			rec := newResponseBuffer()
			next.ServeHTTP(rec, r)
			for k, vs := range rec.header {
				if k == "Content-Length" {
					continue
				}
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.status)
			data := rec.body.Bytes()
			w.Write(data[:len(data)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// responseBuffer captures a handler's response so the middleware can
// run the handler for effect (drop-response, the discarded half of a
// duplicate) or replay a mutilated copy (truncate).
type responseBuffer struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newResponseBuffer() *responseBuffer {
	return &responseBuffer{header: make(http.Header), status: http.StatusOK}
}

func (b *responseBuffer) Header() http.Header         { return b.header }
func (b *responseBuffer) WriteHeader(status int)      { b.status = status }
func (b *responseBuffer) Write(p []byte) (int, error) { return b.body.Write(p) }

package chaos

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hadooppreempt/internal/sweep"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,drop=0.1,drop-resp=0.05,dup=0.15,trunc=0.2,delay=0.3,delay-max=50ms,ckpt=0.25,cell-err=0.1,cell-panic=0.05,cell-fails=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, DropRequest: 0.1, DropResponse: 0.05, Duplicate: 0.15,
		Truncate: 0.2, Delay: 0.3, MaxDelay: 50 * time.Millisecond,
		CheckpointFail: 0.25, CellError: 0.1, CellPanic: 0.05, CellFailures: 2,
	}
	if fmt.Sprintf("%+v", cfg) != fmt.Sprintf("%+v", want) {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec("cell-fails=poison"); err != nil || cfg.CellFailures != PoisonForever {
		t.Fatalf("cell-fails=poison = (%+v, %v)", cfg, err)
	}
	if cfg, err := ParseSpec(""); err != nil || fmt.Sprintf("%+v", cfg) != fmt.Sprintf("%+v", Config{}) {
		t.Fatalf("empty spec = (%+v, %v), want zero config", cfg, err)
	}
	for _, bad := range []string{"drop=2", "drop=x", "seed=-1", "delay-max=0s", "cell-fails=0", "nope=1", "justakey"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestTransportScheduleDeterminism: same seed, same per-site request
// sequence → identical fault schedule; distinct sites draw independent
// streams.
func TestTransportScheduleDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, DropRequest: 0.2, DropResponse: 0.2, Duplicate: 0.2, Truncate: 0.2}
	draw := func(p *Plan, site string) []transportFault {
		out := make([]transportFault, 64)
		for i := range out {
			out[i], _ = p.drawTransport(site)
		}
		return out
	}
	a := draw(New(cfg), "w1")
	b := draw(New(cfg), "w1")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, same site: schedules diverge at request %d (%v vs %v)", i, a[i], b[i])
		}
	}
	c := draw(New(cfg), "w2")
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("distinct sites drew identical schedules")
	}
}

// TestTransportFaults exercises each client-side fault against a real
// HTTP server, pinning observable behavior: what the server saw and
// what the client got.
func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"ok":true,"pad":"0123456789012345678901234567890123456789"}`))
	}))
	defer srv.Close()
	get := func(p *Plan) (*http.Response, error) {
		client := &http.Client{Transport: p.Transport("w", nil)}
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		return client.Do(req)
	}
	// All-probability configs force the chosen fault on every request.
	t.Run("drop-request", func(t *testing.T) {
		hits.Store(0)
		if _, err := get(New(Config{Seed: 1, DropRequest: 1})); err == nil {
			t.Fatal("dropped request returned no error")
		}
		if hits.Load() != 0 {
			t.Fatalf("server saw %d requests, want 0", hits.Load())
		}
	})
	t.Run("drop-response", func(t *testing.T) {
		hits.Store(0)
		if _, err := get(New(Config{Seed: 1, DropResponse: 1})); err == nil {
			t.Fatal("dropped response returned no error")
		}
		if hits.Load() != 1 {
			t.Fatalf("server saw %d requests, want 1 (processed, ack lost)", hits.Load())
		}
	})
	t.Run("truncate", func(t *testing.T) {
		hits.Store(0)
		resp, err := get(New(Config{Seed: 1, Truncate: 1}))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		n := 0
		var rerr error
		for rerr == nil {
			var m int
			m, rerr = resp.Body.Read(buf[n:])
			n += m
		}
		if rerr.Error() != "unexpected EOF" {
			t.Fatalf("truncated body ended with %v, want unexpected EOF", rerr)
		}
		if n == 0 || n >= 60 {
			t.Fatalf("read %d bytes of a ~60-byte body, want a strict prefix", n)
		}
	})
}

// TestTransportDuplicatePost: a duplicated POST reaches the server
// twice with the same body.
func TestTransportDuplicatePost(t *testing.T) {
	var hits atomic.Int64
	bodies := make(chan string, 4)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		b := make([]byte, 64)
		n, _ := r.Body.Read(b)
		bodies <- string(b[:n])
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	client := &http.Client{Transport: New(Config{Seed: 1, Duplicate: 1}).Transport("w", nil)}
	resp, err := client.Post(srv.URL, "application/json", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
	if a, b := <-bodies, <-bodies; a != `{"x":1}` || a != b {
		t.Fatalf("duplicate bodies %q and %q, want identical originals", a, b)
	}
}

// TestMiddlewareDuplicate: the server-side duplicate runs the handler
// twice while the client sees one normal response — the at-least-once
// case an idempotent handler must absorb.
func TestMiddlewareDuplicate(t *testing.T) {
	var hits atomic.Int64
	p := New(Config{Seed: 1, Duplicate: 1})
	srv := httptest.NewServer(p.Middleware("coord", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{}`))
	})))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if hits.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2", hits.Load())
	}
}

// TestMiddlewareDropSeversConnection: server-side drops surface to the
// client as transport errors (severed connection), never as an HTTP
// status a protocol layer would treat as a rejection.
func TestMiddlewareDropSeversConnection(t *testing.T) {
	for _, mode := range []Config{
		{Seed: 1, DropRequest: 1},
		{Seed: 1, DropResponse: 1},
	} {
		var hits atomic.Int64
		srv := httptest.NewServer(New(mode).Middleware("coord", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			w.Write([]byte(`{}`))
		})))
		resp, err := http.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
			t.Fatalf("%+v: dropped exchange returned status %d, want a transport error", mode, resp.StatusCode)
		}
		wantHits := int64(0)
		if mode.DropResponse > 0 {
			wantHits = 1
		}
		if hits.Load() != wantHits {
			t.Fatalf("%+v: handler ran %d times, want %d", mode, hits.Load(), wantHits)
		}
		srv.Close()
	}
}

// TestCellFaultsDeterministicAndBudgeted: faultiness is a pure function
// of (seed, index) — identical across plans — and a faulty cell fails
// exactly CellFailures times before running clean.
func TestCellFaultsDeterministicAndBudgeted(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(16))
	cfg := Config{Seed: 99, CellError: 0.3}
	faulty := New(cfg).FaultyCells(g.Size())
	if len(faulty) == 0 || len(faulty) == g.Size() {
		t.Fatalf("faulty cells = %v of %d, want a strict subset", faulty, g.Size())
	}
	for trial := 0; trial < 3; trial++ {
		again := New(cfg).FaultyCells(g.Size())
		if len(again) != len(faulty) {
			t.Fatalf("faulty set changed across plans: %v vs %v", again, faulty)
		}
		for i := range faulty {
			if faulty[i] != again[i] {
				t.Fatalf("faulty set changed across plans: %v vs %v", again, faulty)
			}
		}
	}
	inner := sweep.FuncBackend{Engine: "test", G: g, Run: func(pt sweep.Point, rec *sweep.Recorder) error {
		rec.Observe("m0", float64(pt.Index))
		return nil
	}}
	b := New(cfg).WrapBackend(inner)
	rec := &sweep.Recorder{}
	pts, err := g.Points(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range faulty {
		if err := b.Cell(pts[i], rec); err == nil {
			t.Fatalf("faulty cell %d ran clean on first attempt", i)
		}
		if err := b.Cell(pts[i], rec); err != nil {
			t.Fatalf("faulty cell %d still failing after its budget: %v", i, err)
		}
	}
}

// TestCellPanicMode: panic-mode cells panic with the cell named, and
// the sweep harness converts that into a structured cell error.
func TestCellPanicMode(t *testing.T) {
	g := sweep.NewGrid(sweep.Strings("a", "x", "y"), sweep.Reps(8))
	cfg := Config{Seed: 5, CellPanic: 0.3}
	p := New(cfg)
	faulty := p.FaultyCells(g.Size())
	if len(faulty) == 0 {
		t.Fatalf("no faulty cells at CellPanic=0.3 over %d cells", g.Size())
	}
	b := p.WrapBackend(sweep.FuncBackend{Engine: "test", G: g, Run: func(pt sweep.Point, rec *sweep.Recorder) error {
		rec.Observe("m0", 1)
		return nil
	}})
	_, err := sweep.RunCells(g, b.Cell, 1, 4, nil)
	if err == nil || !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "chaos: injected panic") {
		t.Fatalf("panicking cell surfaced as %v, want a structured panic error", err)
	}
}

// TestCheckpointWriterFaults: every fault mode leaves the destination
// file's previous content intact, and a clean draw delegates to the
// inner writer.
func TestCheckpointWriterFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	inner := func(p string, data []byte) error { return os.WriteFile(p, data, 0o644) }
	failing := New(Config{Seed: 3, CheckpointFail: 1}).CheckpointWriter(inner)
	for i := 0; i < 12; i++ {
		if err := failing(path, []byte("next")); err == nil {
			t.Fatalf("write %d: CheckpointFail=1 did not fail", i)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != "previous" {
			t.Fatalf("write %d: destination corrupted: %q, %v", i, got, err)
		}
	}
	clean := New(Config{Seed: 3}).CheckpointWriter(inner)
	if err := clean(path, []byte("next")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "next" {
		t.Fatalf("clean write left %q", got)
	}
}

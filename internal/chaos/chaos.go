// Package chaos is a seeded, deterministic fault-injection layer for
// the distributed sweep path. A Plan derives one RNG stream per
// injection site from a single seed, so a fault schedule that breaks a
// run is a replayable artifact: re-running with the same seed injects
// the same faults at the same sites, in the same order per site.
//
// Faults are injected at the three trust boundaries of the distributed
// engine:
//
//   - HTTP transport: Transport wraps a worker's http.RoundTripper and
//     Middleware wraps the coordinator's handler. Either side can drop
//     a request before it is processed, drop the response after it was
//     processed (forcing at-least-once delivery), deliver a request
//     twice, truncate a response mid-body, or delay it.
//   - Checkpoint I/O: CheckpointWriter wraps the coordinator's atomic
//     checkpoint writer and can fail before writing, tear the temp
//     file mid-write, or "die" between the temp write and the rename —
//     always leaving the previous checkpoint intact, exactly like a
//     crash against a correct atomic writer.
//   - Cell execution: WrapBackend makes deterministically chosen grid
//     cells panic or error for their first CellFailures attempts
//     before succeeding (or forever, for poison-cell schedules).
//
// The harness contract under chaos: as long as the schedule stays
// within the coordinator's per-lease failure budget, the merged output
// is byte-identical to a faultless single-process run — transport
// faults are absorbed by retries and idempotent result handling,
// checkpoint faults by atomicity, and cell faults by lease re-issue.
// Schedules beyond the budget abort cleanly with the offending cell's
// coordinates in the error.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"hadooppreempt/internal/sim"
)

// Config declares a fault schedule. All probabilities are per event in
// [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed derives every injection site's RNG stream. Equal seeds and
	// equal per-site event sequences inject identical faults.
	Seed uint64

	// Transport faults, drawn once per request passing a Transport or
	// Middleware site. At most one of the four fault kinds fires per
	// request; Delay is drawn independently and may combine with any.
	DropRequest  float64 // request lost before the server processes it
	DropResponse float64 // request processed, response lost (at-least-once)
	Duplicate    float64 // request delivered and processed twice
	Truncate     float64 // response body cut mid-byte
	Delay        float64 // request delayed by up to MaxDelay
	MaxDelay     time.Duration

	// CheckpointFail is the probability one atomic checkpoint write
	// fails (mode drawn among fail-open, torn temp file, and lost
	// rename). The destination file always keeps its previous content.
	CheckpointFail float64

	// CellPanic and CellError mark grid cells as faulty, with the named
	// failure mode. Faultiness is a pure function of (Seed, cell index),
	// so the same cells fail no matter which worker runs them.
	CellPanic float64
	CellError float64
	// CellFailures is how many attempts of a faulty cell fail before it
	// succeeds (counted per Plan, i.e. per process). PoisonForever makes
	// faulty cells fail on every attempt — the over-budget schedule.
	CellFailures int

	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// PoisonForever is a CellFailures value that never lets a faulty cell
// succeed, driving the coordinator's lease failure budget to abort.
const PoisonForever = int(^uint(0) >> 1)

// Plan is an active fault schedule: per-site RNG streams plus the
// cell attempt ledger. One Plan serves one process; methods are safe
// for concurrent use.
type Plan struct {
	cfg Config

	mu       sync.Mutex
	root     *sim.RNG
	sites    map[string]*sim.RNG
	attempts map[int]int
}

// New builds a plan for the schedule. MaxDelay defaults to 20ms and
// CellFailures to 1 (a faulty cell fails once, then succeeds).
func New(cfg Config) *Plan {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	if cfg.CellFailures == 0 {
		cfg.CellFailures = 1
	}
	return &Plan{
		cfg:      cfg,
		root:     sim.NewRNG(cfg.Seed),
		sites:    make(map[string]*sim.RNG),
		attempts: make(map[int]int),
	}
}

// Seed returns the plan's seed, for replay diagnostics.
func (p *Plan) Seed() uint64 { return p.cfg.Seed }

func (p *Plan) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// site returns the injection site's RNG stream, creating it on first
// use. Callers hold mu.
func (p *Plan) site(label string) *sim.RNG {
	rng, ok := p.sites[label]
	if !ok {
		rng = p.root.Stream(label)
		p.sites[label] = rng
	}
	return rng
}

// transportFault is one request's drawn fate.
type transportFault int

const (
	faultNone transportFault = iota
	faultDropRequest
	faultDropResponse
	faultDuplicate
	faultTruncate
)

func (f transportFault) String() string {
	switch f {
	case faultDropRequest:
		return "drop-request"
	case faultDropResponse:
		return "drop-response"
	case faultDuplicate:
		return "duplicate"
	case faultTruncate:
		return "truncate-response"
	}
	return "none"
}

// drawTransport draws one request's fault and delay from the site's
// stream. The draw order per site is fixed (delay, then fault), so a
// site's schedule depends only on the seed and how many requests have
// passed through it.
func (p *Plan) drawTransport(site string) (transportFault, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rng := p.site("transport/" + site)
	var delay time.Duration
	if p.cfg.Delay > 0 && rng.Float64() < p.cfg.Delay {
		delay = time.Duration(1 + rng.Int63n(int64(p.cfg.MaxDelay)))
	}
	r := rng.Float64()
	for _, c := range []struct {
		prob  float64
		fault transportFault
	}{
		{p.cfg.DropRequest, faultDropRequest},
		{p.cfg.DropResponse, faultDropResponse},
		{p.cfg.Duplicate, faultDuplicate},
		{p.cfg.Truncate, faultTruncate},
	} {
		if r < c.prob {
			return c.fault, delay
		}
		r -= c.prob
	}
	return faultNone, delay
}

// ParseSpec parses a -chaos flag value: comma-separated key=value
// pairs. Keys (all optional): seed, drop, drop-resp, dup, trunc, delay
// (probabilities in [0,1]), delay-max (duration), ckpt (checkpoint
// fault probability), cell-err, cell-panic (cell fault probabilities),
// cell-fails (attempts a faulty cell fails; "poison" = forever).
//
//	seed=7,drop=0.1,dup=0.15,trunc=0.05,delay=0.1,delay-max=20ms,ckpt=0.3,cell-err=0.1,cell-fails=1
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: %q is not key=value", field)
		}
		prob := func(dst *float64) error {
			v, err := strconv.ParseFloat(value, 64)
			if err != nil || v < 0 || v > 1 {
				return fmt.Errorf("chaos: %s=%q is not a probability in [0,1]", key, value)
			}
			*dst = v
			return nil
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(value, 10, 64)
			if err != nil {
				err = fmt.Errorf("chaos: seed=%q is not an unsigned integer", value)
			}
		case "drop":
			err = prob(&cfg.DropRequest)
		case "drop-resp":
			err = prob(&cfg.DropResponse)
		case "dup":
			err = prob(&cfg.Duplicate)
		case "trunc":
			err = prob(&cfg.Truncate)
		case "delay":
			err = prob(&cfg.Delay)
		case "delay-max":
			cfg.MaxDelay, err = time.ParseDuration(value)
			if err == nil && cfg.MaxDelay <= 0 {
				err = fmt.Errorf("chaos: delay-max=%q is not positive", value)
			}
		case "ckpt":
			err = prob(&cfg.CheckpointFail)
		case "cell-err":
			err = prob(&cfg.CellError)
		case "cell-panic":
			err = prob(&cfg.CellPanic)
		case "cell-fails":
			if value == "poison" {
				cfg.CellFailures = PoisonForever
			} else {
				cfg.CellFailures, err = strconv.Atoi(value)
				if err != nil || cfg.CellFailures < 1 {
					err = fmt.Errorf("chaos: cell-fails=%q is not a positive count or \"poison\"", value)
				}
			}
		default:
			err = fmt.Errorf("chaos: unknown key %q (want seed, drop, drop-resp, dup, trunc, delay, delay-max, ckpt, cell-err, cell-panic or cell-fails)", key)
		}
		if err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

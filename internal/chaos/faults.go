package chaos

import (
	"fmt"
	"os"

	"hadooppreempt/internal/sim"
	"hadooppreempt/internal/sweep"
)

// WrapBackend returns the backend with the plan's cell faults layered
// over Cell. Which cells are faulty — and whether they panic or error —
// is a pure function of (plan seed, cell index), so the same cells
// misbehave no matter which worker or lease executes them. A faulty
// cell fails its first CellFailures attempts in this process, then runs
// clean; successful attempts never touch the recorder state, so an
// in-budget chaotic run produces bytes identical to a faultless one.
func (p *Plan) WrapBackend(b sweep.Backend) sweep.Backend {
	return &faultyBackend{plan: p, inner: b}
}

type faultyBackend struct {
	plan  *Plan
	inner sweep.Backend
}

func (b *faultyBackend) Name() string              { return b.inner.Name() }
func (b *faultyBackend) Grid() (sweep.Grid, error) { return b.inner.Grid() }

// Fingerprint forwards the inner backend's content fingerprint (see
// coord.Fingerprinter): injecting faults never changes what the backend
// would compute, so it must not change its identity either.
func (b *faultyBackend) Fingerprint() string {
	if f, ok := b.inner.(interface{ Fingerprint() string }); ok {
		return f.Fingerprint()
	}
	return ""
}

// CacheVolatile forwards the inner backend's volatility (see
// sweep.Volatile): injected faults never change what a successful cell
// reports, so wrapping must not change whether results are cacheable.
func (b *faultyBackend) CacheVolatile() bool { return sweep.IsVolatile(b.inner) }

func (b *faultyBackend) Cell(pt sweep.Point, rec *sweep.Recorder) error {
	mode := b.plan.cellFault(pt.Index)
	if mode != cellClean && b.plan.takeCellFailure(pt.Index) {
		b.plan.logf("chaos[cell]: %s cell %d (%s)", mode, pt.Index, pt.Key())
		if mode == cellPanic {
			panic(fmt.Sprintf("chaos: injected panic in cell %d (%s)", pt.Index, pt.Key()))
		}
		return fmt.Errorf("chaos: injected error in cell %d (%s)", pt.Index, pt.Key())
	}
	return b.inner.Cell(pt, rec)
}

type cellFaultMode int

const (
	cellClean cellFaultMode = iota
	cellPanic
	cellError
)

func (m cellFaultMode) String() string {
	switch m {
	case cellPanic:
		return "panic"
	case cellError:
		return "error"
	}
	return "clean"
}

// cellFault decides a cell's failure mode from the seed alone — no
// shared stream, so the verdict is independent of execution order.
func (p *Plan) cellFault(index int) cellFaultMode {
	if p.cfg.CellPanic <= 0 && p.cfg.CellError <= 0 {
		return cellClean
	}
	rng := sim.NewRNG(p.cfg.Seed).Stream(fmt.Sprintf("cell/%d", index))
	r := rng.Float64()
	switch {
	case r < p.cfg.CellPanic:
		return cellPanic
	case r < p.cfg.CellPanic+p.cfg.CellError:
		return cellError
	}
	return cellClean
}

// takeCellFailure consumes one of the cell's budgeted failures,
// reporting whether this attempt should fail.
func (p *Plan) takeCellFailure(index int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.attempts[index] >= p.cfg.CellFailures {
		return false
	}
	p.attempts[index]++
	return true
}

// FaultyCells lists the grid cells the plan marks faulty, for
// diagnostics and tests.
func (p *Plan) FaultyCells(n int) []int {
	var cells []int
	for i := 0; i < n; i++ {
		if p.cellFault(i) != cellClean {
			cells = append(cells, i)
		}
	}
	return cells
}

// CheckpointWriter wraps an atomic write-file function (write temp,
// rename over dst) with checkpoint I/O faults. Each call draws from the
// plan's "checkpoint" stream; a faulting call fails in one of three
// ways — before writing anything, after a torn half-write of the temp
// file, or after writing the temp file but before the rename (a crash
// in the commit window). All three leave dst's previous content intact,
// which is exactly the contract an atomic writer must keep: the
// coordinator continues on a stale-but-valid checkpoint.
func (p *Plan) CheckpointWriter(write func(path string, data []byte) error) func(path string, data []byte) error {
	return func(path string, data []byte) error {
		mode := func() int {
			p.mu.Lock()
			defer p.mu.Unlock()
			rng := p.site("checkpoint")
			if p.cfg.CheckpointFail <= 0 || rng.Float64() >= p.cfg.CheckpointFail {
				return 0
			}
			return 1 + rng.Intn(3)
		}()
		switch mode {
		case 1: // fail before writing
			p.logf("chaos[checkpoint]: write failed before any I/O")
			return fmt.Errorf("chaos: injected checkpoint write failure")
		case 2: // torn temp file
			p.logf("chaos[checkpoint]: torn write of temp file")
			os.WriteFile(path+".tmp", data[:len(data)/2], 0o644)
			return fmt.Errorf("chaos: injected torn checkpoint write")
		case 3: // temp written, rename lost
			p.logf("chaos[checkpoint]: crash between write and rename")
			os.WriteFile(path+".tmp", data, 0o644)
			return fmt.Errorf("chaos: injected crash before checkpoint rename")
		}
		return write(path, data)
	}
}

package config

import (
	"strings"
	"testing"
	"time"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/mapreduce"
)

const sampleConfig = `
# The paper's two-job experiment at r = 50%.
primitive susp
input /input/tl 512M
input /input/th 512M
job tl /input/tl priority=0 rate=6.5e6
job th /input/th priority=10 rate=6.5e6 mem=0
submit tl
on progress tl 0.5 submit th
on progress tl 0.5 preempt tl
on complete th restore tl
`

func TestParseSample(t *testing.T) {
	exp, err := Parse(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Primitive != core.Suspend {
		t.Fatalf("primitive = %v, want susp", exp.Primitive)
	}
	if len(exp.Inputs) != 2 || exp.Inputs[0].Size != 512<<20 {
		t.Fatalf("inputs = %+v", exp.Inputs)
	}
	if len(exp.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(exp.Jobs))
	}
	if exp.Jobs["th"].Priority != 10 {
		t.Fatalf("th priority = %d", exp.Jobs["th"].Priority)
	}
	if len(exp.Submits) != 1 || exp.Submits[0] != "tl" {
		t.Fatalf("submits = %v", exp.Submits)
	}
	if len(exp.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(exp.Rules))
	}
	if exp.Rules[0].Threshold != 0.5 || exp.Rules[0].Action != ActionSubmit {
		t.Fatalf("rule 0 = %+v", exp.Rules[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frobnicate x",
		"bad primitive":     "primitive banana\njob a /x\nsubmit a",
		"bad size":          "input /x 12Q\njob a /x\nsubmit a",
		"dup job":           "job a /x\njob a /y\nsubmit a",
		"undefined submit":  "submit ghost",
		"bad threshold":     "job a /x\nsubmit a\non progress a 1.5 preempt a",
		"undefined target":  "job a /x\nsubmit a\non progress a 0.5 preempt ghost",
		"no submit":         "job a /x",
		"bad option":        "job a /x bogus=1\nsubmit a",
		"bad rate":          "job a /x rate=-2\nsubmit a",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(text)); err == nil {
				t.Fatalf("config should be rejected:\n%s", text)
			}
		})
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"512M": 512 << 20,
		"2G":   2 << 30,
		"2.5G": 2560 << 20,
		"16k":  16 << 10,
		"1024": 1024,
		"0":    0,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-5", "12Q4"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) should fail", bad)
		}
	}
}

func TestFormatBytesRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1024, 512 << 20, 2 << 30, 12345} {
		got, err := ParseBytes(FormatBytes(v))
		if err != nil || got != v {
			t.Errorf("round trip %d -> %q -> %d, %v", v, FormatBytes(v), got, err)
		}
	}
}

func TestRunnerExecutesExperiment(t *testing.T) {
	exp, err := Parse(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := mapreduce.NewCluster(mapreduce.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(exp, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	jobs := runner.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	tl, th := jobs["tl"], jobs["th"]
	if tl.State() != mapreduce.JobSucceeded || th.State() != mapreduce.JobSucceeded {
		t.Fatalf("states: tl=%v th=%v", tl.State(), th.State())
	}
	// tl was suspended for th: th finishes first.
	if th.CompletedAt() >= tl.CompletedAt() {
		t.Fatalf("th (%v) should finish before resumed tl (%v)",
			th.CompletedAt(), tl.CompletedAt())
	}
	// Trace should show tl suspended.
	gantt := runner.Trace().Gantt(60)
	if !strings.Contains(gantt, "=") {
		t.Fatalf("gantt missing suspension:\n%s", gantt)
	}
	if tlTask := tl.MapTasks()[0]; tlTask.Suspensions() != 1 {
		t.Fatalf("tl suspensions = %d, want 1", tlTask.Suspensions())
	}
}

func TestRunnerKillPrimitive(t *testing.T) {
	text := strings.Replace(sampleConfig, "primitive susp", "primitive kill", 1)
	exp, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := mapreduce.NewCluster(mapreduce.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(exp, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	tl := runner.Jobs()["tl"]
	if tl.MapTasks()[0].Attempts() != 2 {
		t.Fatalf("tl attempts = %d, want 2 under kill", tl.MapTasks()[0].Attempts())
	}
}

// Package config parses the static configuration files that drive the
// dummy scheduler — §III-B: "a new scheduling component for Hadoop ...
// which dictates task eviction according to static configuration files.
// This allows to specify, using a series of simple triggers, which
// jobs/tasks are run in the cluster and which are preempted."
//
// The format is line-oriented; '#' starts a comment. Example:
//
//	primitive susp
//	input /input/tl 512M
//	input /input/th 512M
//	job tl /input/tl priority=0 rate=6.5e6 mem=0
//	job th /input/th priority=10 rate=6.5e6 mem=2G
//	submit tl
//	on progress tl 0.5 submit th
//	on progress tl 0.5 preempt tl
//	on complete th restore tl
package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/mapreduce"
)

// InputSpec declares a synthetic HDFS input file.
type InputSpec struct {
	Path string
	Size int64
}

// RuleAction is what a trigger does.
type RuleAction int

// Rule actions.
const (
	// ActionSubmit submits the named job.
	ActionSubmit RuleAction = iota + 1
	// ActionPreempt applies the experiment's primitive to the named
	// job's first map task.
	ActionPreempt
	// ActionRestore undoes the preemption (resume for suspend-like
	// primitives).
	ActionRestore
)

// String names the action.
func (a RuleAction) String() string {
	switch a {
	case ActionSubmit:
		return "submit"
	case ActionPreempt:
		return "preempt"
	case ActionRestore:
		return "restore"
	default:
		return fmt.Sprintf("RuleAction(%d)", int(a))
	}
}

// Rule is one trigger line.
type Rule struct {
	// Event and EventJob select the condition ("progress tl 0.5" or
	// "complete th").
	Event     string // "progress" or "complete" or "submit"
	EventJob  string
	Threshold float64 // progress only
	// Action and ActionJob are the effect.
	Action    RuleAction
	ActionJob string
}

// Experiment is a parsed configuration file.
type Experiment struct {
	Primitive core.Primitive
	Inputs    []InputSpec
	Jobs      map[string]mapreduce.JobConf
	JobOrder  []string
	// Submits lists jobs submitted at time zero.
	Submits []string
	Rules   []Rule
}

// Parse reads an experiment description.
func Parse(r io.Reader) (*Experiment, error) {
	exp := &Experiment{
		Primitive: core.Suspend,
		Jobs:      make(map[string]mapreduce.JobConf),
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if err := exp.parseLine(fields); err != nil {
			return nil, fmt.Errorf("config: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if len(exp.Submits) == 0 {
		return nil, fmt.Errorf("config: no job submitted at start")
	}
	return exp, nil
}

func (e *Experiment) parseLine(fields []string) error {
	switch fields[0] {
	case "primitive":
		if len(fields) != 2 {
			return fmt.Errorf("usage: primitive <wait|kill|susp|checkpoint>")
		}
		p, err := core.ParsePrimitive(fields[1])
		if err != nil {
			return err
		}
		e.Primitive = p
		return nil

	case "input":
		if len(fields) != 3 {
			return fmt.Errorf("usage: input <path> <size>")
		}
		size, err := ParseBytes(fields[2])
		if err != nil {
			return err
		}
		e.Inputs = append(e.Inputs, InputSpec{Path: fields[1], Size: size})
		return nil

	case "job":
		if len(fields) < 3 {
			return fmt.Errorf("usage: job <name> <input-path> [key=value ...]")
		}
		name := fields[1]
		if _, dup := e.Jobs[name]; dup {
			return fmt.Errorf("job %q defined twice", name)
		}
		conf := mapreduce.JobConf{
			Name:         name,
			InputPath:    fields[2],
			MapParseRate: 6.5e6,
		}
		for _, kv := range fields[3:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad option %q, want key=value", kv)
			}
			switch k {
			case "priority":
				p, err := strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("bad priority %q", v)
				}
				conf.Priority = p
			case "rate":
				r, err := strconv.ParseFloat(v, 64)
				if err != nil || r <= 0 {
					return fmt.Errorf("bad rate %q", v)
				}
				conf.MapParseRate = r
			case "mem":
				m, err := ParseBytes(v)
				if err != nil {
					return err
				}
				conf.ExtraMemoryBytes = m
			case "pool":
				conf.Pool = v
			case "reduces":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return fmt.Errorf("bad reduces %q", v)
				}
				conf.NumReduces = n
			default:
				return fmt.Errorf("unknown job option %q", k)
			}
		}
		e.Jobs[name] = conf
		e.JobOrder = append(e.JobOrder, name)
		return nil

	case "submit":
		if len(fields) != 2 {
			return fmt.Errorf("usage: submit <job>")
		}
		if _, ok := e.Jobs[fields[1]]; !ok {
			return fmt.Errorf("submit of undefined job %q", fields[1])
		}
		e.Submits = append(e.Submits, fields[1])
		return nil

	case "on":
		return e.parseRule(fields[1:])

	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

func (e *Experiment) parseRule(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("usage: on <progress|complete|submit> <job> [threshold] <action> <job>")
	}
	rule := Rule{Event: fields[0], EventJob: fields[1]}
	rest := fields[2:]
	switch rule.Event {
	case "progress":
		if len(rest) < 3 {
			return fmt.Errorf("usage: on progress <job> <threshold> <action> <job>")
		}
		th, err := strconv.ParseFloat(rest[0], 64)
		if err != nil || th <= 0 || th >= 1 {
			return fmt.Errorf("bad threshold %q (want 0 < r < 1)", rest[0])
		}
		rule.Threshold = th
		rest = rest[1:]
	case "complete", "submit":
	default:
		return fmt.Errorf("unknown event %q", rule.Event)
	}
	if len(rest) != 2 {
		return fmt.Errorf("trailing rule needs <action> <job>")
	}
	switch rest[0] {
	case "submit":
		rule.Action = ActionSubmit
	case "preempt":
		rule.Action = ActionPreempt
	case "restore":
		rule.Action = ActionRestore
	default:
		return fmt.Errorf("unknown action %q", rest[0])
	}
	rule.ActionJob = rest[1]
	if _, ok := e.Jobs[rule.ActionJob]; !ok {
		return fmt.Errorf("rule targets undefined job %q", rule.ActionJob)
	}
	if _, ok := e.Jobs[rule.EventJob]; !ok {
		return fmt.Errorf("rule watches undefined job %q", rule.EventJob)
	}
	e.Rules = append(e.Rules, rule)
	return nil
}

// ParseBytes parses sizes like "512M", "2G", "100K", "42" (bytes) or
// "2.5G".
func ParseBytes(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'M', 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'G', 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// FormatBytes renders a byte count in the same syntax ParseBytes accepts.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dG", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dK", b>>10)
	default:
		return strconv.FormatInt(b, 10)
	}
}

package config

import (
	"fmt"
	"time"

	"hadooppreempt/internal/core"
	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/scheduler"
	"hadooppreempt/internal/trace"
)

// Runner executes a parsed experiment on a cluster.
type Runner struct {
	exp       *Experiment
	cluster   *mapreduce.Cluster
	dummy     *scheduler.Dummy
	preemptor *core.Preemptor
	jobs      map[string]*mapreduce.Job
	rec       *trace.Recorder
}

// NewRunner wires the experiment onto the cluster: inputs are created,
// the dummy scheduler installed, the primitive prepared, and rules
// translated into triggers.
func NewRunner(exp *Experiment, cluster *mapreduce.Cluster) (*Runner, error) {
	jt := cluster.JobTracker()
	dummy := scheduler.NewDummy(jt)
	jt.SetScheduler(dummy)
	deviceFor := func(tracker string) *disk.Device {
		for _, n := range cluster.Nodes() {
			if n.Tracker.Name() == tracker {
				return n.Device
			}
		}
		return nil
	}
	preemptor, err := core.NewPreemptor(cluster.Engine(), jt, exp.Primitive, deviceFor, core.CheckpointConfig{})
	if err != nil {
		return nil, err
	}
	for _, in := range exp.Inputs {
		if err := cluster.CreateInput(in.Path, in.Size); err != nil {
			return nil, err
		}
	}
	r := &Runner{
		exp:       exp,
		cluster:   cluster,
		dummy:     dummy,
		preemptor: preemptor,
		jobs:      make(map[string]*mapreduce.Job),
		rec:       &trace.Recorder{},
	}
	jt.AddListener(&ganttListener{rec: r.rec})
	for _, rule := range exp.Rules {
		rule := rule
		trig := scheduler.Trigger{
			Job: rule.EventJob,
			Do:  func() { r.applyAction(rule) },
		}
		switch rule.Event {
		case "progress":
			trig.Event = scheduler.OnProgress
			trig.Threshold = rule.Threshold
		case "complete":
			trig.Event = scheduler.OnComplete
		case "submit":
			trig.Event = scheduler.OnSubmit
		default:
			return nil, fmt.Errorf("config: unknown event %q", rule.Event)
		}
		dummy.AddTrigger(trig)
	}
	return r, nil
}

// Run submits the initial jobs and drives the cluster until all submitted
// jobs finish or the deadline passes.
func (r *Runner) Run(deadline time.Duration) error {
	for _, name := range r.exp.Submits {
		if err := r.submit(name); err != nil {
			return err
		}
	}
	if !r.cluster.RunUntilJobsDone(deadline) {
		return fmt.Errorf("config: experiment did not finish before %v", deadline)
	}
	r.rec.CloseAll(r.cluster.Engine().Now())
	return nil
}

// Jobs returns the submitted jobs by configured name.
func (r *Runner) Jobs() map[string]*mapreduce.Job { return r.jobs }

// Trace returns the recorded schedule.
func (r *Runner) Trace() *trace.Recorder { return r.rec }

func (r *Runner) submit(name string) error {
	conf, ok := r.exp.Jobs[name]
	if !ok {
		return fmt.Errorf("config: submit of undefined job %q", name)
	}
	job, err := r.cluster.JobTracker().Submit(conf)
	if err != nil {
		return err
	}
	r.jobs[name] = job
	return nil
}

// applyAction executes a rule body.
func (r *Runner) applyAction(rule Rule) {
	switch rule.Action {
	case ActionSubmit:
		if err := r.submit(rule.ActionJob); err != nil {
			panic(fmt.Sprintf("config: %v", err))
		}
	case ActionPreempt:
		task, ok := r.firstMapTask(rule.ActionJob)
		if !ok {
			return
		}
		if _, err := r.preemptor.Preempt(task); err != nil {
			panic(fmt.Sprintf("config: preempt %s: %v", rule.ActionJob, err))
		}
	case ActionRestore:
		task, ok := r.firstMapTask(rule.ActionJob)
		if !ok {
			return
		}
		if err := r.preemptor.Restore(task); err != nil {
			panic(fmt.Sprintf("config: restore %s: %v", rule.ActionJob, err))
		}
	}
}

func (r *Runner) firstMapTask(job string) (mapreduce.TaskID, bool) {
	j, ok := r.jobs[job]
	if !ok {
		return mapreduce.TaskID{}, false
	}
	maps := j.MapTasks()
	if len(maps) == 0 {
		return mapreduce.TaskID{}, false
	}
	return maps[0].ID(), true
}

// ganttListener mirrors the experiments trace listener for config-driven
// runs.
type ganttListener struct {
	mapreduce.NopListener
	rec *trace.Recorder
}

func (l *ganttListener) TaskStateChanged(t *mapreduce.Task, from, to mapreduce.TaskState, at time.Duration) {
	row := t.Job().Name()
	switch to {
	case mapreduce.TaskRunning:
		l.rec.Begin(row, trace.SpanRunning, at)
	case mapreduce.TaskSuspended:
		l.rec.Begin(row, trace.SpanSuspended, at)
	case mapreduce.TaskSucceeded, mapreduce.TaskFailed:
		l.rec.End(row, at)
	case mapreduce.TaskPending:
		if from.Live() || from == mapreduce.TaskKilled {
			l.rec.Begin(row, trace.SpanWaiting, at)
		}
	}
}

func (l *ganttListener) CleanupSpan(task mapreduce.TaskID, tracker string, start, end time.Duration) {
	l.rec.Add(trace.Span{Row: "cleanup", Kind: trace.SpanCleanup, Start: start, End: end})
}

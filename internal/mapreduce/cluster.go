package mapreduce

import (
	"fmt"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/hdfs"
	"hadooppreempt/internal/memory"
	"hadooppreempt/internal/ossim"
	"hadooppreempt/internal/sim"
)

// NodeConfig describes one worker node.
type NodeConfig struct {
	// Cores is the CPU count.
	Cores int
	// MapSlots is the number of concurrent task slots.
	MapSlots int
	// Memory configures the node's memory manager.
	Memory memory.Config
	// Disk configures the node's (single) disk.
	Disk disk.Config
}

// DefaultNodeConfig mirrors the paper's testbed: a 4-core node with 4 GB
// of RAM and one map slot, so the two experiment tasks contend for it.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		Cores:    4,
		MapSlots: 1,
		Memory:   memory.DefaultConfig(),
		Disk:     disk.DefaultConfig(),
	}
}

// ClusterConfig describes a whole simulated cluster.
type ClusterConfig struct {
	// Nodes is the worker count.
	Nodes int
	// NodesPerRack controls rack topology (0 = single rack).
	NodesPerRack int
	// Node is the per-node hardware configuration.
	Node NodeConfig
	// Engine is the MapReduce engine configuration.
	Engine EngineConfig
	// HDFS is the filesystem configuration.
	HDFS hdfs.Config
	// Seed drives all randomized choices (replica placement, heartbeat
	// phases); runs with equal seeds are identical.
	Seed uint64
}

// DefaultClusterConfig returns the paper's single-node evaluation setup.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Nodes:        1,
		NodesPerRack: 0,
		Node:         DefaultNodeConfig(),
		Engine:       DefaultEngineConfig(),
		HDFS:         hdfs.DefaultConfig(),
		Seed:         1,
	}
}

// Node bundles the per-node substrates.
type Node struct {
	Name    string
	Kernel  *ossim.Kernel
	Device  *disk.Device
	Memory  *memory.Manager
	Tracker *TaskTracker
}

// Cluster is a fully assembled simulated Hadoop cluster.
type Cluster struct {
	eng   *sim.Engine
	rng   *sim.RNG
	fs    *hdfs.FileSystem
	jt    *JobTracker
	nodes []*Node
}

// NewCluster builds engine, filesystem, nodes (disk + memory + kernel +
// datanode + tasktracker) and the JobTracker. Trackers are started with
// staggered heartbeat phases. The caller must install a Scheduler before
// running.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("mapreduce: cluster needs at least one node")
	}
	eng := sim.New()
	rng := sim.NewRNG(cfg.Seed)
	fs, err := hdfs.New(eng, rng.Fork(), cfg.HDFS)
	if err != nil {
		return nil, err
	}
	jt, err := NewJobTracker(eng, cfg.Engine, fs)
	if err != nil {
		return nil, err
	}
	c := &Cluster{eng: eng, rng: rng, fs: fs, jt: jt}
	hbJitter := rng.Fork()
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node%02d", i+1)
		rack := "rack1"
		if cfg.NodesPerRack > 0 {
			rack = fmt.Sprintf("rack%d", i/cfg.NodesPerRack+1)
		}
		dev := disk.New(eng, name+"/sda", cfg.Node.Disk)
		mem, err := memory.New(eng, dev, cfg.Node.Memory)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: node %s: %w", name, err)
		}
		kernel := ossim.NewKernel(eng, name, cfg.Node.Cores, mem)
		if _, err := fs.AddDataNode(hdfs.NodeID(name), rack, dev, mem); err != nil {
			return nil, err
		}
		tt, err := NewTaskTracker(jt, "tracker_"+name, hdfs.NodeID(name), kernel, dev, fs, cfg.Node.MapSlots)
		if err != nil {
			return nil, err
		}
		// Stagger heartbeats uniformly over the interval.
		phase := time.Duration(hbJitter.Int63n(int64(cfg.Engine.HeartbeatInterval)))
		tt.Start(phase)
		c.nodes = append(c.nodes, &Node{
			Name: name, Kernel: kernel, Device: dev, Memory: mem, Tracker: tt,
		})
	}
	return c, nil
}

// Engine returns the simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// FileSystem returns the HDFS substrate.
func (c *Cluster) FileSystem() *hdfs.FileSystem { return c.fs }

// JobTracker returns the JobTracker.
func (c *Cluster) JobTracker() *JobTracker { return c.jt }

// Nodes returns a copy of the worker node list. Hot-path callers should
// use NumNodes and Node instead, which do not allocate.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// NumNodes returns the worker count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns a worker by index.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// CreateInput stores a synthetic input file.
func (c *Cluster) CreateInput(path string, size int64) error {
	_, err := c.fs.Create(path, size, "")
	return err
}

// RunUntil advances virtual time to the deadline.
func (c *Cluster) RunUntil(deadline time.Duration) { c.eng.RunUntil(deadline) }

// RunUntilJobsDone advances virtual time until every submitted job is in a
// terminal state or the deadline passes. It reports whether all jobs
// finished. The termination check runs between every pair of events, so it
// must not allocate (see JobTracker.allJobsTerminal).
func (c *Cluster) RunUntilJobsDone(deadline time.Duration) bool {
	return c.RunUntilPlannedJobsDone(1, deadline)
}

// RunUntilPlannedJobsDone is RunUntilJobsDone for workloads whose
// submissions are deferred (Engine().At): it does not stop before at
// least planned jobs have actually been submitted, so an early quiet
// period — every submitted job terminal while later submissions are
// still scheduled — is not mistaken for completion.
func (c *Cluster) RunUntilPlannedJobsDone(planned int, deadline time.Duration) bool {
	if planned < 1 {
		planned = 1
	}
	done := func() bool {
		return len(c.jt.jobOrder) >= planned && c.jt.allJobsTerminal()
	}
	for c.eng.Now() < deadline {
		if done() {
			return true
		}
		if !c.eng.StepUntil(deadline) {
			break
		}
	}
	return done()
}

// Close releases the cluster's resources back to their arenas: the memory
// managers' extent tables and stacks, the trackers' and kernels' tables,
// the filesystem's block maps and the engine's event storage. Call it once
// a run's results have been extracted; the cluster and everything reached
// through it must not be used afterwards. Sweep cells call it between
// repetitions so a worker reuses one set of buffers instead of
// reallocating per cell.
func (c *Cluster) Close() {
	if c.eng == nil {
		return // already closed
	}
	for _, n := range c.nodes {
		n.Tracker.release()
		n.Kernel.Release()
		n.Memory.Release()
	}
	c.jt.release()
	c.fs.Release()
	c.eng.Release()
	c.nodes = nil
	c.jt, c.fs, c.eng, c.rng = nil, nil, nil, nil
}

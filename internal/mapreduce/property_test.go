package mapreduce

import (
	"testing"
	"testing/quick"
	"time"
)

// TestPropertyRandomControlNeverCorruptsEngine fires random control
// actions (suspend/resume/kill-requeue/kill-terminal) at random times
// into a running two-job cluster and verifies global invariants: the
// simulation always converges, slot accounting returns to zero, and no
// task ends in a transition state.
func TestPropertyRandomControlNeverCorruptsEngine(t *testing.T) {
	type action struct {
		AtSec  uint8 // virtual second, mod 120
		Victim bool  // which job
		Kind   uint8 // suspend / resume / kill-requeue / kill-terminal
	}
	f := func(actions []action) bool {
		if len(actions) > 24 {
			actions = actions[:24]
		}
		cfg := DefaultClusterConfig()
		cfg.Node.MapSlots = 2
		cfg.Node.Memory.PageSize = 1 << 20
		cfg.Engine.HeartbeatInterval = time.Second
		c, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		jt := c.JobTracker()
		jt.SetScheduler(&fifoTestScheduler{jt: jt})
		c.CreateInput("/a", 256<<20)
		c.CreateInput("/b", 256<<20)
		ja, _ := jt.Submit(lightJobConf("a", "/a"))
		jb, _ := jt.Submit(lightJobConf("b", "/b"))
		jobs := []*Job{ja, jb}
		terminalKill := false
		for _, a := range actions {
			a := a
			job := jobs[0]
			if a.Victim {
				job = jobs[1]
			}
			task := job.MapTasks()[0].ID()
			if a.Kind%4 == 3 {
				terminalKill = true
			}
			c.Engine().Schedule(time.Duration(a.AtSec%120)*time.Second, func() {
				// Errors are expected for invalid-state commands; the
				// engine must simply reject them.
				switch a.Kind % 4 {
				case 0:
					jt.SuspendTask(task)
				case 1:
					jt.ResumeTask(task)
				case 2:
					jt.KillTaskAttempt(task, true)
				case 3:
					jt.KillTaskAttempt(task, false)
				}
			})
		}
		// A suspended task whose resume never comes would hang the run;
		// issue a final catch-all resume wave.
		c.Engine().Schedule(130*time.Second, func() {
			for _, job := range jobs {
				for _, task := range job.MapTasks() {
					jt.ResumeTask(task.ID())
				}
			}
		})
		c.RunUntil(time.Hour)
		for _, job := range jobs {
			for _, task := range job.MapTasks() {
				switch task.State() {
				case TaskSucceeded, TaskKilled:
				default:
					t.Logf("task %s stuck in %v", task.ID(), task.State())
					return false
				}
			}
			switch job.State() {
			case JobSucceeded:
			case JobFailed:
				if !terminalKill {
					t.Logf("job %s failed without terminal kill", job.ID())
					return false
				}
			default:
				t.Logf("job %s stuck in %v", job.ID(), job.State())
				return false
			}
		}
		if free := c.Node(0).Tracker.FreeMapSlots(); free != 2 {
			t.Logf("slot accounting leaked: free=%d", free)
			return false
		}
		if c.Node(0).Kernel.Processes() != 0 {
			t.Logf("process table leaked: %d live", c.Node(0).Kernel.Processes())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package mapreduce

import (
	"fmt"
	"sync"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/hdfs"
	"hadooppreempt/internal/ossim"
	"hadooppreempt/internal/sim"
)

// rpcDelay models the cost of a heartbeat RPC exchange.
const rpcDelay = 10 * time.Millisecond

// TaskTracker runs task attempts as child processes of its node's OS and
// exchanges heartbeats with the JobTracker.
type TaskTracker struct {
	eng    *sim.Engine
	jt     *JobTracker
	cfg    *EngineConfig
	name   string
	node   hdfs.NodeID
	kernel *ossim.Kernel
	device *disk.Device
	fs     *hdfs.FileSystem

	mapSlots  int
	slotsUsed int

	// attempts holds live attempts sorted by attempt id. A tracker runs at
	// most a few attempts (slots + suspended), so a sorted slice beats a
	// map: heartbeats iterate it in order directly and lookups are a short
	// linear scan instead of hashing an AttemptID.
	attempts  []*liveAttempt
	completed []AttemptID
	failed    []AttemptID

	hbTimer    sim.Timer
	started    bool
	nextStream disk.StreamID
	heartbeats int
	// heartbeatFn is tt.heartbeat bound once; passing a method value to
	// Schedule allocates a fresh closure per call, and heartbeats are the
	// engine's hottest event.
	heartbeatFn func()

	// reports is reused across heartbeats (the JobTracker does not retain
	// it).
	reports []AttemptReport

	// Program shells recycled across attempts. A program dies with its
	// process and never escapes the tracker, so the state machines can be
	// reused instead of allocated per attempt.
	mapProgFree     []*mapProgram
	redProgFree     []*reduceProgram
	cleanupProgFree []*cleanupProgram

	// Quiescence bookkeeping, owned by the JobTracker (stored here to
	// avoid a parallel per-tracker table). jtCmdDirty is set when a task
	// on this tracker enters a command state (MUST_SUSPEND, MUST_RESUME,
	// KILLED) and cleared once a heartbeat's command scan has drained it.
	// jtSuspended counts tasks in {SUSPENDED, MUST_RESUME} whose attempt
	// lives here (resume locality makes these tracker-bound). jtOn caches
	// the sorted tasksOn list; jtOnValid is dropped on any state change
	// of a task bound to this tracker.
	jtCmdDirty  bool
	jtSuspended int
	jtOn        []*Task
	jtOnValid   bool
}

// liveAttempt is a task attempt with a live process on this tracker.
type liveAttempt struct {
	id   AttemptID
	task *Task // JobTracker-side record, resolved once at launch
	proc *ossim.Process
	// rt points at rtVal; embedding the runtime saves an allocation per
	// attempt.
	rt        *taskRuntime
	rtVal     taskRuntime
	prog      ossim.Program
	suspended bool
	// killed marks a TT-initiated SIGKILL whose exit must not be reported
	// as a failure.
	killed bool
	// suspendAckDelay is how long the SIGTSTP handler takes (closing
	// external connections); the slot frees and the suspension is
	// acknowledged only after it completes.
	suspendAckDelay time.Duration
}

// NewTaskTracker creates and registers a tracker for the given node.
func NewTaskTracker(jt *JobTracker, name string, node hdfs.NodeID, kernel *ossim.Kernel,
	device *disk.Device, fs *hdfs.FileSystem, mapSlots int) (*TaskTracker, error) {
	if mapSlots <= 0 {
		return nil, fmt.Errorf("mapreduce: tracker %s needs at least one slot", name)
	}
	tt := ttPool.Get().(*TaskTracker)
	tt.eng, tt.jt, tt.cfg = jt.eng, jt, jt.cfg
	tt.name, tt.node = name, node
	tt.kernel, tt.device, tt.fs = kernel, device, fs
	tt.mapSlots = mapSlots
	tt.nextStream = disk.StreamID(1)
	if tt.heartbeatFn == nil {
		tt.heartbeatFn = tt.heartbeat
	}
	if err := jt.registerTracker(tt); err != nil {
		return nil, err
	}
	return tt, nil
}

// ttPool recycles TaskTracker shells released with release, keeping the
// attempt and report buffers warm across the cluster rebuilds of a sweep
// cell.
var ttPool = sync.Pool{New: func() any { return &TaskTracker{} }}

// release returns the tracker's buffers to a shared arena for reuse by a
// future NewTaskTracker. Called by Cluster.Close.
func (tt *TaskTracker) release() {
	tt.eng, tt.jt, tt.cfg = nil, nil, nil
	tt.kernel, tt.device, tt.fs = nil, nil, nil
	tt.slotsUsed = 0
	clear(tt.attempts)
	tt.attempts = tt.attempts[:0]
	clear(tt.completed)
	tt.completed = tt.completed[:0]
	clear(tt.failed)
	tt.failed = tt.failed[:0]
	clear(tt.reports)
	tt.reports = tt.reports[:0]
	tt.hbTimer = sim.Timer{}
	tt.started = false
	tt.heartbeats = 0
	tt.jtCmdDirty = false
	tt.jtSuspended = 0
	clear(tt.jtOn)
	tt.jtOn = tt.jtOn[:0]
	tt.jtOnValid = false
	ttPool.Put(tt)
}

// Name returns the tracker name.
func (tt *TaskTracker) Name() string { return tt.name }

// Node returns the HDFS node the tracker runs on.
func (tt *TaskTracker) Node() hdfs.NodeID { return tt.node }

// FreeMapSlots returns currently free map slots.
func (tt *TaskTracker) FreeMapSlots() int { return tt.mapSlots - tt.slotsUsed }

// Heartbeats returns the number of heartbeats sent.
func (tt *TaskTracker) Heartbeats() int { return tt.heartbeats }

// Start begins the heartbeat loop. The phase offset staggers trackers so
// they do not all report at the same instant.
func (tt *TaskTracker) Start(phase time.Duration) {
	if tt.started {
		return
	}
	tt.started = true
	if phase < 0 {
		phase = 0
	}
	tt.hbTimer = tt.eng.Schedule(phase, tt.heartbeatFn)
}

// requestOOBHeartbeat schedules an immediate out-of-band heartbeat, used
// when a slot frees up (task exit, suspension, cleanup completion).
func (tt *TaskTracker) requestOOBHeartbeat() {
	if !tt.cfg.OutOfBandHeartbeats || !tt.started {
		return
	}
	tt.hbTimer.Cancel()
	tt.hbTimer = tt.eng.Schedule(rpcDelay, tt.heartbeatFn)
}

// heartbeat performs one status/response exchange with the JobTracker and
// executes the piggybacked actions.
func (tt *TaskTracker) heartbeat() {
	tt.heartbeats++
	status := HeartbeatStatus{
		TaskTracker:  tt.name,
		FreeMapSlots: tt.mapSlots - tt.slotsUsed,
		Completed:    tt.completed,
		Failed:       tt.failed,
	}
	// The JobTracker consumes the completed/failed lists synchronously in
	// jt.Heartbeat below, so the backing arrays can be reused immediately.
	tt.completed = tt.completed[:0]
	tt.failed = tt.failed[:0]
	tt.reports = tt.reports[:0]
	for _, att := range tt.attempts {
		tt.reports = append(tt.reports, AttemptReport{
			Attempt:   att.id,
			Suspended: att.suspended,
			Progress:  att.rt.progress(),
			task:      att.task,
		})
		att.task.residentBytes = tt.kernel.Memory().ResidentBytes(att.proc.PID())
	}
	status.Attempts = tt.reports
	actions := tt.jt.Heartbeat(status)
	// Schedule the next regular heartbeat before executing actions, so an
	// action that frees a slot (suspend) can replace it with an immediate
	// out-of-band heartbeat.
	tt.hbTimer.Cancel()
	tt.hbTimer = tt.eng.Schedule(tt.cfg.HeartbeatInterval, tt.heartbeatFn)
	for _, a := range actions {
		tt.execute(a)
	}
}

// findAttempt returns the slice index of aid, or -1 if it is not live.
func (tt *TaskTracker) findAttempt(aid AttemptID) int {
	for i, att := range tt.attempts {
		if att.id == aid {
			return i
		}
	}
	return -1
}

// insertAttempt places att at its sorted (attempt id order) position.
func (tt *TaskTracker) insertAttempt(att *liveAttempt) {
	i := len(tt.attempts)
	tt.attempts = append(tt.attempts, att)
	for i > 0 && compareAttemptIDs(att.id, tt.attempts[i-1].id) < 0 {
		tt.attempts[i] = tt.attempts[i-1]
		i--
	}
	tt.attempts[i] = att
}

// removeAttempt deletes the attempt at index i, preserving order.
func (tt *TaskTracker) removeAttempt(i int) {
	tt.attempts = append(tt.attempts[:i], tt.attempts[i+1:]...)
}

// execute runs one piggybacked action.
func (tt *TaskTracker) execute(a Action) {
	switch a.Kind {
	case ActionLaunch:
		tt.launch(a.Attempt)
	case ActionSuspend:
		tt.suspend(a.Attempt)
	case ActionResume:
		tt.resume(a.Attempt)
	case ActionKill:
		tt.kill(a.Attempt, a.Cleanup)
	default:
		panic(fmt.Sprintf("mapreduce: unknown action kind %d", a.Kind))
	}
}

// launch spawns the child JVM for an attempt.
func (tt *TaskTracker) launch(aid AttemptID) {
	task, ok := tt.jt.Task(aid.Task)
	if !ok {
		return
	}
	conf := &task.job.conf // read-only after submit; no defensive copy
	att := &liveAttempt{id: aid, task: task}
	att.rt = &att.rtVal
	stream := tt.nextStream
	tt.nextStream++
	switch aid.Task.Type {
	case MapTask:
		mp := tt.getMapProg()
		initMapProgram(mp, tt.eng, tt.cfg, conf, tt.fs, tt.node, tt.device, task.block, att.rt, stream)
		att.prog = mp
	case ReduceTask:
		shuffle := tt.shuffleBytes(task.job)
		rp := tt.getRedProg()
		initReduceProgram(rp, tt.eng, tt.cfg, conf, tt.device, att.rt, stream, shuffle,
			tt.fs.Config().RackLocalBandwidth)
		att.prog = rp
	default:
		return
	}
	memBytes := conf.JVMBaseBytes + conf.ExtraMemoryBytes
	proc, err := tt.kernel.Spawn(aid.String(), memBytes, att.prog, func(p *ossim.Process, code int) {
		tt.attemptExited(att, code)
	})
	if err != nil {
		tt.recycleProg(att.prog)
		att.prog = nil
		tt.failed = append(tt.failed, aid)
		return
	}
	// §V-B: tasks with external state handle SIGTSTP (close connections
	// before stopping) and SIGCONT (reopen them before resuming) — the
	// reason the primitive uses SIGTSTP rather than the unhandleable
	// SIGSTOP.
	if n := conf.ExternalConnections; n > 0 {
		teardown := time.Duration(n) * tt.cfg.ConnectionTeardownCost
		setup := time.Duration(n) * tt.cfg.ConnectionSetupCost
		proc.Handle(ossim.SIGTSTP, func(*ossim.Process) time.Duration { return teardown })
		proc.Handle(ossim.SIGCONT, func(*ossim.Process) time.Duration { return setup })
		att.suspendAckDelay = teardown
	}
	att.proc = proc
	tt.insertAttempt(att)
	tt.slotsUsed++
}

// shuffleBytes computes a reduce task's input volume.
func (tt *TaskTracker) shuffleBytes(job *Job) int64 {
	var mapInput int64
	for _, t := range job.tasks {
		if t.id.Type == MapTask {
			mapInput += t.block.Size
		}
	}
	total := int64(float64(mapInput) * job.conf.MapOutputRatio)
	if job.conf.NumReduces <= 0 {
		return 0
	}
	return total / int64(job.conf.NumReduces)
}

// getMapProg pops a recycled map-program shell or allocates a fresh one.
func (tt *TaskTracker) getMapProg() *mapProgram {
	if n := len(tt.mapProgFree); n > 0 {
		mp := tt.mapProgFree[n-1]
		tt.mapProgFree = tt.mapProgFree[:n-1]
		return mp
	}
	return &mapProgram{}
}

// getRedProg pops a recycled reduce-program shell or allocates a fresh one.
func (tt *TaskTracker) getRedProg() *reduceProgram {
	if n := len(tt.redProgFree); n > 0 {
		rp := tt.redProgFree[n-1]
		tt.redProgFree = tt.redProgFree[:n-1]
		return rp
	}
	return &reduceProgram{}
}

// recycleProg returns an attempt's program shell to the tracker freelist.
// Safe once the owning process has exited: the kernel never calls Next on
// an exited process, so nothing reads the shell again.
func (tt *TaskTracker) recycleProg(prog ossim.Program) {
	switch p := prog.(type) {
	case *mapProgram:
		*p = mapProgram{} // drop engine/fs references while parked
		tt.mapProgFree = append(tt.mapProgFree, p)
	case *reduceProgram:
		*p = reduceProgram{}
		tt.redProgFree = append(tt.redProgFree, p)
	}
}

// attemptExited handles child process termination.
func (tt *TaskTracker) attemptExited(att *liveAttempt, code int) {
	if att.prog != nil {
		tt.recycleProg(att.prog)
		att.prog = nil
	}
	i := tt.findAttempt(att.id)
	if i < 0 {
		return // already handled (e.g. kill path removed it)
	}
	tt.removeAttempt(i)
	ms := att.proc.MemoryStats()
	tt.jt.noteSwap(att.id.Task, ms.PagedOutBytes, ms.PagedInBytes)
	if att.killed {
		// TT-initiated kill: the JobTracker already moved the task; the
		// slot is handed to the cleanup attempt by kill().
		return
	}
	if !att.suspended {
		tt.slotsUsed--
	}
	if code == ossim.ExitOK {
		tt.completed = append(tt.completed, att.id)
	} else {
		tt.failed = append(tt.failed, att.id)
	}
	tt.requestOOBHeartbeat()
}

// suspend delivers SIGTSTP and frees the slot; the suspension is
// acknowledged on the next heartbeat (out-of-band, so the freed slot is
// visible quickly). Tasks with external connections delay the slot
// release until their SIGTSTP handler has closed them.
func (tt *TaskTracker) suspend(aid AttemptID) {
	i := tt.findAttempt(aid)
	if i < 0 || tt.attempts[i].suspended {
		return
	}
	att := tt.attempts[i]
	if err := tt.kernel.Signal(att.proc.PID(), ossim.SIGTSTP); err != nil {
		return
	}
	finish := func() {
		if tt.findAttempt(aid) < 0 || att.killed || att.suspended {
			return
		}
		att.suspended = true
		tt.slotsUsed--
		tt.requestOOBHeartbeat()
	}
	if att.suspendAckDelay > 0 {
		tt.eng.Schedule(att.suspendAckDelay, finish)
		return
	}
	finish()
}

// resume delivers SIGCONT, taking a slot again.
func (tt *TaskTracker) resume(aid AttemptID) {
	i := tt.findAttempt(aid)
	if i < 0 || !tt.attempts[i].suspended {
		return
	}
	att := tt.attempts[i]
	if err := tt.kernel.Signal(att.proc.PID(), ossim.SIGCONT); err != nil {
		return
	}
	att.suspended = false
	tt.slotsUsed++
	tt.requestOOBHeartbeat()
}

// kill delivers SIGKILL and runs the cleanup attempt that removes the
// killed task's temporary output, occupying the slot for CleanupCost.
func (tt *TaskTracker) kill(aid AttemptID, cleanup bool) {
	i := tt.findAttempt(aid)
	if i < 0 {
		return
	}
	att := tt.attempts[i]
	att.killed = true
	tt.jt.noteWasted(aid.Task, att.proc.CPUTime())
	ms := att.proc.MemoryStats()
	tt.jt.noteSwap(aid.Task, ms.PagedOutBytes, ms.PagedInBytes)
	wasSuspended := att.suspended
	tt.removeAttempt(i)
	if err := tt.kernel.Signal(att.proc.PID(), ossim.SIGKILL); err != nil {
		return
	}
	if !cleanup {
		if !wasSuspended {
			tt.slotsUsed--
		}
		tt.requestOOBHeartbeat()
		return
	}
	// The cleanup attempt takes over the slot (or claims one if the
	// victim was suspended and held none).
	if wasSuspended {
		tt.slotsUsed++
	}
	start := tt.eng.Now()
	var prog *cleanupProgram
	if n := len(tt.cleanupProgFree); n > 0 {
		prog = tt.cleanupProgFree[n-1]
		tt.cleanupProgFree = tt.cleanupProgFree[:n-1]
		*prog = cleanupProgram{cfg: tt.cfg}
	} else {
		prog = &cleanupProgram{cfg: tt.cfg}
	}
	_, err := tt.kernel.Spawn("cleanup_"+aid.String(), 16<<20, prog, func(p *ossim.Process, code int) {
		prog.cfg = nil
		tt.cleanupProgFree = append(tt.cleanupProgFree, prog)
		tt.slotsUsed--
		tt.jt.noteCleanup(aid.Task, tt.name, start, tt.eng.Now())
		tt.requestOOBHeartbeat()
	})
	if err != nil {
		prog.cfg = nil
		tt.cleanupProgFree = append(tt.cleanupProgFree, prog)
		tt.slotsUsed--
		tt.requestOOBHeartbeat()
	}
}

package mapreduce

import (
	"fmt"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/hdfs"
	"hadooppreempt/internal/ossim"
	"hadooppreempt/internal/sim"
)

// rpcDelay models the cost of a heartbeat RPC exchange.
const rpcDelay = 10 * time.Millisecond

// TaskTracker runs task attempts as child processes of its node's OS and
// exchanges heartbeats with the JobTracker.
type TaskTracker struct {
	eng    *sim.Engine
	jt     *JobTracker
	cfg    *EngineConfig
	name   string
	node   hdfs.NodeID
	kernel *ossim.Kernel
	device *disk.Device
	fs     *hdfs.FileSystem

	mapSlots  int
	slotsUsed int

	attempts  map[AttemptID]*liveAttempt
	completed []AttemptID
	failed    []AttemptID

	hbTimer    sim.Timer
	started    bool
	nextStream disk.StreamID
	heartbeats int

	// attScratch and reports are reused across heartbeats (the JobTracker
	// does not retain either).
	attScratch []*liveAttempt
	reports    []AttemptReport
}

// liveAttempt is a task attempt with a live process on this tracker.
type liveAttempt struct {
	id        AttemptID
	proc      *ossim.Process
	rt        *taskRuntime
	suspended bool
	// killed marks a TT-initiated SIGKILL whose exit must not be reported
	// as a failure.
	killed bool
	// suspendAckDelay is how long the SIGTSTP handler takes (closing
	// external connections); the slot frees and the suspension is
	// acknowledged only after it completes.
	suspendAckDelay time.Duration
}

// NewTaskTracker creates and registers a tracker for the given node.
func NewTaskTracker(jt *JobTracker, name string, node hdfs.NodeID, kernel *ossim.Kernel,
	device *disk.Device, fs *hdfs.FileSystem, mapSlots int) (*TaskTracker, error) {
	if mapSlots <= 0 {
		return nil, fmt.Errorf("mapreduce: tracker %s needs at least one slot", name)
	}
	tt := &TaskTracker{
		eng:        jt.eng,
		jt:         jt,
		cfg:        jt.cfg,
		name:       name,
		node:       node,
		kernel:     kernel,
		device:     device,
		fs:         fs,
		mapSlots:   mapSlots,
		attempts:   make(map[AttemptID]*liveAttempt),
		nextStream: disk.StreamID(1),
	}
	if err := jt.registerTracker(tt); err != nil {
		return nil, err
	}
	return tt, nil
}

// Name returns the tracker name.
func (tt *TaskTracker) Name() string { return tt.name }

// Node returns the HDFS node the tracker runs on.
func (tt *TaskTracker) Node() hdfs.NodeID { return tt.node }

// FreeMapSlots returns currently free map slots.
func (tt *TaskTracker) FreeMapSlots() int { return tt.mapSlots - tt.slotsUsed }

// Heartbeats returns the number of heartbeats sent.
func (tt *TaskTracker) Heartbeats() int { return tt.heartbeats }

// Start begins the heartbeat loop. The phase offset staggers trackers so
// they do not all report at the same instant.
func (tt *TaskTracker) Start(phase time.Duration) {
	if tt.started {
		return
	}
	tt.started = true
	if phase < 0 {
		phase = 0
	}
	tt.hbTimer = tt.eng.Schedule(phase, tt.heartbeat)
}

// requestOOBHeartbeat schedules an immediate out-of-band heartbeat, used
// when a slot frees up (task exit, suspension, cleanup completion).
func (tt *TaskTracker) requestOOBHeartbeat() {
	if !tt.cfg.OutOfBandHeartbeats || !tt.started {
		return
	}
	tt.hbTimer.Cancel()
	tt.hbTimer = tt.eng.Schedule(rpcDelay, tt.heartbeat)
}

// heartbeat performs one status/response exchange with the JobTracker and
// executes the piggybacked actions.
func (tt *TaskTracker) heartbeat() {
	tt.heartbeats++
	status := HeartbeatStatus{
		TaskTracker:  tt.name,
		FreeMapSlots: tt.mapSlots - tt.slotsUsed,
		Completed:    tt.completed,
		Failed:       tt.failed,
	}
	tt.completed = nil
	tt.failed = nil
	tt.reports = tt.reports[:0]
	for _, att := range tt.attemptList() {
		tt.reports = append(tt.reports, AttemptReport{
			Attempt:   att.id,
			Suspended: att.suspended,
			Progress:  att.rt.progress(),
		})
		tt.jt.noteResident(att.id.Task, tt.kernel.Memory().ResidentBytes(att.proc.PID()))
	}
	status.Attempts = tt.reports
	actions := tt.jt.Heartbeat(status)
	// Schedule the next regular heartbeat before executing actions, so an
	// action that frees a slot (suspend) can replace it with an immediate
	// out-of-band heartbeat.
	tt.hbTimer.Cancel()
	tt.hbTimer = tt.eng.Schedule(tt.cfg.HeartbeatInterval, tt.heartbeat)
	for _, a := range actions {
		tt.execute(a)
	}
}

// attemptList returns live attempts in deterministic order.
func (tt *TaskTracker) attemptList() []*liveAttempt {
	out := tt.attScratch[:0]
	for _, att := range tt.attempts {
		out = append(out, att)
	}
	// Sort by attempt id string order for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && compareAttemptIDs(out[j].id, out[j-1].id) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	tt.attScratch = out
	return out
}

// execute runs one piggybacked action.
func (tt *TaskTracker) execute(a Action) {
	switch act := a.(type) {
	case LaunchAction:
		tt.launch(act.Attempt)
	case SuspendAction:
		tt.suspend(act.Attempt)
	case ResumeAction:
		tt.resume(act.Attempt)
	case KillAction:
		tt.kill(act.Attempt, act.Cleanup)
	default:
		panic(fmt.Sprintf("mapreduce: unknown action %T", a))
	}
}

// launch spawns the child JVM for an attempt.
func (tt *TaskTracker) launch(aid AttemptID) {
	task, ok := tt.jt.Task(aid.Task)
	if !ok {
		return
	}
	conf := task.job.conf
	rt := &taskRuntime{}
	stream := tt.nextStream
	tt.nextStream++
	var prog ossim.Program
	switch aid.Task.Type {
	case MapTask:
		prog = newMapProgram(tt.eng, tt.cfg, &conf, tt.fs, tt.node, tt.device, task.block, rt, stream)
	case ReduceTask:
		shuffle := tt.shuffleBytes(task.job)
		prog = newReduceProgram(tt.eng, tt.cfg, &conf, tt.device, rt, stream, shuffle,
			tt.fs.Config().RackLocalBandwidth)
	default:
		return
	}
	memBytes := conf.JVMBaseBytes + conf.ExtraMemoryBytes
	att := &liveAttempt{id: aid, rt: rt}
	proc, err := tt.kernel.Spawn(aid.String(), memBytes, prog, func(p *ossim.Process, code int) {
		tt.attemptExited(att, code)
	})
	if err != nil {
		tt.failed = append(tt.failed, aid)
		return
	}
	// §V-B: tasks with external state handle SIGTSTP (close connections
	// before stopping) and SIGCONT (reopen them before resuming) — the
	// reason the primitive uses SIGTSTP rather than the unhandleable
	// SIGSTOP.
	if n := conf.ExternalConnections; n > 0 {
		teardown := time.Duration(n) * tt.cfg.ConnectionTeardownCost
		setup := time.Duration(n) * tt.cfg.ConnectionSetupCost
		proc.Handle(ossim.SIGTSTP, func(*ossim.Process) time.Duration { return teardown })
		proc.Handle(ossim.SIGCONT, func(*ossim.Process) time.Duration { return setup })
		att.suspendAckDelay = teardown
	}
	att.proc = proc
	tt.attempts[aid] = att
	tt.slotsUsed++
}

// shuffleBytes computes a reduce task's input volume.
func (tt *TaskTracker) shuffleBytes(job *Job) int64 {
	var mapInput int64
	for _, t := range job.tasks {
		if t.id.Type == MapTask {
			mapInput += t.block.Size
		}
	}
	total := int64(float64(mapInput) * job.conf.MapOutputRatio)
	if job.conf.NumReduces <= 0 {
		return 0
	}
	return total / int64(job.conf.NumReduces)
}

// attemptExited handles child process termination.
func (tt *TaskTracker) attemptExited(att *liveAttempt, code int) {
	if _, ok := tt.attempts[att.id]; !ok {
		return // already handled (e.g. kill path removed it)
	}
	delete(tt.attempts, att.id)
	ms := att.proc.MemoryStats()
	tt.jt.noteSwap(att.id.Task, ms.PagedOutBytes, ms.PagedInBytes)
	if att.killed {
		// TT-initiated kill: the JobTracker already moved the task; the
		// slot is handed to the cleanup attempt by kill().
		return
	}
	if !att.suspended {
		tt.slotsUsed--
	}
	if code == ossim.ExitOK {
		tt.completed = append(tt.completed, att.id)
	} else {
		tt.failed = append(tt.failed, att.id)
	}
	tt.requestOOBHeartbeat()
}

// suspend delivers SIGTSTP and frees the slot; the suspension is
// acknowledged on the next heartbeat (out-of-band, so the freed slot is
// visible quickly). Tasks with external connections delay the slot
// release until their SIGTSTP handler has closed them.
func (tt *TaskTracker) suspend(aid AttemptID) {
	att, ok := tt.attempts[aid]
	if !ok || att.suspended {
		return
	}
	if err := tt.kernel.Signal(att.proc.PID(), ossim.SIGTSTP); err != nil {
		return
	}
	finish := func() {
		if _, live := tt.attempts[aid]; !live || att.killed || att.suspended {
			return
		}
		att.suspended = true
		tt.slotsUsed--
		tt.requestOOBHeartbeat()
	}
	if att.suspendAckDelay > 0 {
		tt.eng.Schedule(att.suspendAckDelay, finish)
		return
	}
	finish()
}

// resume delivers SIGCONT, taking a slot again.
func (tt *TaskTracker) resume(aid AttemptID) {
	att, ok := tt.attempts[aid]
	if !ok || !att.suspended {
		return
	}
	if err := tt.kernel.Signal(att.proc.PID(), ossim.SIGCONT); err != nil {
		return
	}
	att.suspended = false
	tt.slotsUsed++
	tt.requestOOBHeartbeat()
}

// kill delivers SIGKILL and runs the cleanup attempt that removes the
// killed task's temporary output, occupying the slot for CleanupCost.
func (tt *TaskTracker) kill(aid AttemptID, cleanup bool) {
	att, ok := tt.attempts[aid]
	if !ok {
		return
	}
	att.killed = true
	tt.jt.noteWasted(aid.Task, att.proc.CPUTime())
	ms := att.proc.MemoryStats()
	tt.jt.noteSwap(aid.Task, ms.PagedOutBytes, ms.PagedInBytes)
	wasSuspended := att.suspended
	delete(tt.attempts, att.id)
	if err := tt.kernel.Signal(att.proc.PID(), ossim.SIGKILL); err != nil {
		return
	}
	if !cleanup {
		if !wasSuspended {
			tt.slotsUsed--
		}
		tt.requestOOBHeartbeat()
		return
	}
	// The cleanup attempt takes over the slot (or claims one if the
	// victim was suspended and held none).
	if wasSuspended {
		tt.slotsUsed++
	}
	start := tt.eng.Now()
	prog := &cleanupProgram{cfg: tt.cfg}
	_, err := tt.kernel.Spawn("cleanup_"+aid.String(), 16<<20, prog, func(p *ossim.Process, code int) {
		tt.slotsUsed--
		tt.jt.noteCleanup(aid.Task, tt.name, start, tt.eng.Now())
		tt.requestOOBHeartbeat()
	})
	if err != nil {
		tt.slotsUsed--
		tt.requestOOBHeartbeat()
	}
}

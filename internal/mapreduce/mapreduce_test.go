package mapreduce

import (
	"testing"
	"time"
)

// fifoTestScheduler assigns pending tasks in submission order; it performs
// no preemption on its own.
type fifoTestScheduler struct {
	jt *JobTracker
}

func (s *fifoTestScheduler) JobSubmitted(*Job)             {}
func (s *fifoTestScheduler) JobCompleted(*Job)             {}
func (s *fifoTestScheduler) TaskProgressed(*Task, float64) {}

func (s *fifoTestScheduler) Assign(tt TaskTrackerInfo) []Assignment {
	var out []Assignment
	free := tt.FreeMapSlots
	for _, t := range s.jt.PendingTasks() {
		if free <= 0 {
			break
		}
		// Reduce tasks wait for all maps of their job.
		if t.ID().Type == ReduceTask && !mapsDone(t.Job()) {
			continue
		}
		out = append(out, Assignment{Task: t.ID()})
		free--
	}
	return out
}

func mapsDone(j *Job) bool {
	for _, t := range j.MapTasks() {
		if t.State() != TaskSucceeded {
			return false
		}
	}
	return true
}

// lightJobConf returns a small, fast job for tests: 64 MB input at
// 32 MB/s parse rate (~2 s of map compute).
func lightJobConf(name, input string) JobConf {
	return JobConf{
		Name:         name,
		InputPath:    input,
		MapParseRate: 32e6,
		JVMBaseBytes: 64 << 20,
	}
}

// testCluster builds a single-node cluster with fast parameters and small
// memory pages to keep tests quick.
func newCluster(t *testing.T, nodes, slots int) *Cluster {
	t.Helper()
	cfg := DefaultClusterConfig()
	cfg.Nodes = nodes
	cfg.Node.MapSlots = slots
	cfg.Node.Memory.PageSize = 1 << 20
	cfg.Engine.HeartbeatInterval = time.Second
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.JobTracker().SetScheduler(&fifoTestScheduler{jt: c.JobTracker()})
	return c
}

func TestSingleJobRunsToCompletion(t *testing.T) {
	c := newCluster(t, 1, 2)
	if err := c.CreateInput("/in", 64<<20); err != nil {
		t.Fatal(err)
	}
	job, err := c.JobTracker().Submit(lightJobConf("wc", "/in"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatalf("job did not finish; state=%v", job.State())
	}
	if job.State() != JobSucceeded {
		t.Fatalf("job state = %v, want SUCCEEDED", job.State())
	}
	for _, task := range job.Tasks() {
		if task.State() != TaskSucceeded {
			t.Fatalf("task %s state = %v", task.ID(), task.State())
		}
	}
	// 64 MB input: JVM start 1.2s + alloc + read+parse ~2s + commit.
	dur := job.CompletedAt() - job.SubmittedAt()
	if dur < 2*time.Second || dur > 30*time.Second {
		t.Fatalf("job took %v, want a few seconds", dur)
	}
}

func TestMultiBlockJobCreatesOneMapPerBlock(t *testing.T) {
	c := newCluster(t, 2, 2)
	// 5 blocks of 512 MB HDFS default block size => use small file with
	// small blocks instead.
	cfg := c.FileSystem().Config()
	if err := c.CreateInput("/in", 3*cfg.BlockSize); err != nil {
		t.Fatal(err)
	}
	job, err := c.JobTracker().Submit(lightJobConf("multi", "/in"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(job.MapTasks()); got != 3 {
		t.Fatalf("map tasks = %d, want 3", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newCluster(t, 1, 1)
	if _, err := c.JobTracker().Submit(JobConf{Name: "x", InputPath: "/missing", MapParseRate: 1e6}); err == nil {
		t.Fatal("submit with missing input should fail")
	}
	if _, err := c.JobTracker().Submit(JobConf{Name: "", InputPath: "/in", MapParseRate: 1e6}); err == nil {
		t.Fatal("submit without name should fail")
	}
}

func TestJobWithReduces(t *testing.T) {
	c := newCluster(t, 1, 2)
	if err := c.CreateInput("/in", 64<<20); err != nil {
		t.Fatal(err)
	}
	conf := lightJobConf("sortjob", "/in")
	conf.NumReduces = 1
	conf.MapOutputRatio = 0.5
	conf.ReduceRate = 32e6
	conf.ShuffleSortRate = 32e6
	job, err := c.JobTracker().Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatalf("job did not finish; state=%v progress=%v", job.State(), job.Progress())
	}
	if job.State() != JobSucceeded {
		t.Fatalf("job state = %v", job.State())
	}
}

func TestSuspendResumeProtocol(t *testing.T) {
	c := newCluster(t, 1, 1)
	if err := c.CreateInput("/in", 256<<20); err != nil { // ~8s of parsing
		t.Fatal(err)
	}
	job, _ := c.JobTracker().Submit(lightJobConf("tl", "/in"))
	task := job.MapTasks()[0]
	jt := c.JobTracker()

	var states []TaskState
	jt.AddListener(&stateRecorder{states: &states})

	// Let it run a bit, then suspend.
	c.RunUntil(4 * time.Second)
	if task.State() != TaskRunning {
		t.Fatalf("state at 4s = %v, want RUNNING", task.State())
	}
	if err := jt.SuspendTask(task.ID()); err != nil {
		t.Fatal(err)
	}
	if task.State() != TaskMustSuspend {
		t.Fatalf("state after SuspendTask = %v, want MUST_SUSPEND", task.State())
	}
	// Within two heartbeat intervals the ack must arrive.
	c.RunUntil(7 * time.Second)
	if task.State() != TaskSuspended {
		t.Fatalf("state at 7s = %v, want SUSPENDED", task.State())
	}
	progressAtSuspend := task.Progress()
	if progressAtSuspend <= 0 || progressAtSuspend >= 1 {
		t.Fatalf("progress at suspend = %v, want in (0,1)", progressAtSuspend)
	}
	// Stay suspended: no progress.
	c.RunUntil(12 * time.Second)
	if task.Progress() > progressAtSuspend+0.05 {
		t.Fatalf("progress grew while suspended: %v -> %v", progressAtSuspend, task.Progress())
	}
	// Resume and finish.
	if err := jt.ResumeTask(task.ID()); err != nil {
		t.Fatal(err)
	}
	if task.State() != TaskMustResume {
		t.Fatalf("state after ResumeTask = %v, want MUST_RESUME", task.State())
	}
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatalf("job did not finish after resume; state=%v", task.State())
	}
	if task.Suspensions() != 1 {
		t.Fatalf("suspensions = %d, want 1", task.Suspensions())
	}
	// The state sequence must include the paper's protocol states in
	// order.
	wantSeq := []TaskState{TaskRunning, TaskMustSuspend, TaskSuspended, TaskMustResume, TaskRunning, TaskSucceeded}
	if !containsSubsequence(states, wantSeq) {
		t.Fatalf("state sequence %v missing %v", states, wantSeq)
	}
}

type stateRecorder struct {
	NopListener
	states *[]TaskState
}

func (r *stateRecorder) TaskStateChanged(task *Task, from, to TaskState, at time.Duration) {
	*r.states = append(*r.states, to)
}

func containsSubsequence(have, want []TaskState) bool {
	i := 0
	for _, s := range have {
		if i < len(want) && s == want[i] {
			i++
		}
	}
	return i == len(want)
}

func TestSuspendInvalidStates(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.CreateInput("/in", 64<<20)
	job, _ := c.JobTracker().Submit(lightJobConf("j", "/in"))
	task := job.MapTasks()[0]
	jt := c.JobTracker()
	// Pending task cannot be suspended.
	if err := jt.SuspendTask(task.ID()); err == nil {
		t.Fatal("suspending a pending task should fail")
	}
	// Unknown task.
	if err := jt.SuspendTask(TaskID{Job: "nope", Type: MapTask}); err == nil {
		t.Fatal("suspending unknown task should fail")
	}
	// Running task cannot be resumed.
	c.RunUntil(4 * time.Second)
	if err := jt.ResumeTask(task.ID()); err == nil {
		t.Fatal("resuming a running task should fail")
	}
}

func TestKillRequeuesAndRestartsFromScratch(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.CreateInput("/in", 256<<20)
	job, _ := c.JobTracker().Submit(lightJobConf("victim", "/in"))
	task := job.MapTasks()[0]
	jt := c.JobTracker()

	c.RunUntil(5 * time.Second)
	progressBefore := task.Progress()
	if progressBefore <= 0 {
		t.Fatal("task should have progressed before the kill")
	}
	if err := jt.KillTaskAttempt(task.ID(), true); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatalf("job did not finish after kill; state=%v", task.State())
	}
	if task.Attempts() != 2 {
		t.Fatalf("attempts = %d, want 2 (restart from scratch)", task.Attempts())
	}
	if task.WastedWork() == 0 {
		t.Fatal("kill should record wasted work")
	}
	if job.State() != JobSucceeded {
		t.Fatalf("job state = %v", job.State())
	}
}

func TestKillRunsCleanupSpan(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.CreateInput("/in", 256<<20)
	job, _ := c.JobTracker().Submit(lightJobConf("victim", "/in"))
	task := job.MapTasks()[0]
	jt := c.JobTracker()
	var cleanups []time.Duration
	jt.AddListener(&cleanupRecorder{spans: &cleanups})
	c.RunUntil(5 * time.Second)
	jt.KillTaskAttempt(task.ID(), true)
	c.RunUntilJobsDone(10 * time.Minute)
	if len(cleanups) != 1 {
		t.Fatalf("cleanup spans = %d, want 1", len(cleanups))
	}
	if cleanups[0] < jt.Config().CleanupCost {
		t.Fatalf("cleanup span %v shorter than CleanupCost %v", cleanups[0], jt.Config().CleanupCost)
	}
}

type cleanupRecorder struct {
	NopListener
	spans *[]time.Duration
}

func (r *cleanupRecorder) CleanupSpan(task TaskID, tracker string, start, end time.Duration) {
	*r.spans = append(*r.spans, end-start)
}

func TestTerminalKill(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.CreateInput("/in", 256<<20)
	job, _ := c.JobTracker().Submit(lightJobConf("doomed", "/in"))
	task := job.MapTasks()[0]
	c.RunUntil(5 * time.Second)
	if err := c.JobTracker().KillTaskAttempt(task.ID(), false); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(30 * time.Second)
	if task.State() != TaskKilled {
		t.Fatalf("state = %v, want KILLED (terminal)", task.State())
	}
	if task.Attempts() != 1 {
		t.Fatalf("attempts = %d, want 1 (no requeue)", task.Attempts())
	}
}

func TestTwoSlotsRunTwoJobsConcurrently(t *testing.T) {
	c := newCluster(t, 1, 2)
	c.CreateInput("/a", 128<<20)
	c.CreateInput("/b", 128<<20)
	ja, _ := c.JobTracker().Submit(lightJobConf("a", "/a"))
	jb, _ := c.JobTracker().Submit(lightJobConf("b", "/b"))
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatal("jobs did not finish")
	}
	// Both ran concurrently: completion times within a few seconds of
	// each other (disk contention allowed).
	da := ja.CompletedAt()
	db := jb.CompletedAt()
	diff := da - db
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*time.Second {
		t.Fatalf("completions far apart: %v vs %v", da, db)
	}
}

func TestOneSlotSerializesJobs(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.CreateInput("/a", 128<<20)
	c.CreateInput("/b", 128<<20)
	ja, _ := c.JobTracker().Submit(lightJobConf("a", "/a"))
	jb, _ := c.JobTracker().Submit(lightJobConf("b", "/b"))
	if !c.RunUntilJobsDone(10 * time.Minute) {
		t.Fatal("jobs did not finish")
	}
	if jb.CompletedAt() <= ja.CompletedAt() {
		t.Fatalf("FIFO violated: b at %v, a at %v", jb.CompletedAt(), ja.CompletedAt())
	}
}

func TestProgressEventsFlow(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.CreateInput("/in", 256<<20)
	c.JobTracker().Submit(lightJobConf("j", "/in"))
	var updates []float64
	c.JobTracker().AddListener(&progressRecorder{updates: &updates})
	c.RunUntilJobsDone(10 * time.Minute)
	if len(updates) < 3 {
		t.Fatalf("progress updates = %d, want several", len(updates))
	}
	for i := 1; i < len(updates); i++ {
		if updates[i] < updates[i-1] {
			t.Fatalf("progress went backwards: %v", updates)
		}
	}
}

type progressRecorder struct {
	NopListener
	updates *[]float64
}

func (r *progressRecorder) TaskProgressed(task *Task, p float64, at time.Duration) {
	*r.updates = append(*r.updates, p)
}

func TestMultiNodeClusterSpreadsTasks(t *testing.T) {
	c := newCluster(t, 4, 1)
	cfg := c.FileSystem().Config()
	if err := c.CreateInput("/in", 4*cfg.BlockSize); err != nil {
		t.Fatal(err)
	}
	job, _ := c.JobTracker().Submit(lightJobConf("spread", "/in"))
	if !c.RunUntilJobsDone(60 * time.Minute) {
		t.Fatal("job did not finish")
	}
	trackers := make(map[string]bool)
	for _, task := range job.MapTasks() {
		trackers[task.Tracker()] = true
	}
	if len(trackers) < 2 {
		t.Fatalf("tasks used %d trackers, want spread across several", len(trackers))
	}
}

func TestHeartbeatsKeepFlowing(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.RunUntil(30 * time.Second)
	hb := c.Node(0).Tracker.Heartbeats()
	// One per second for 30 s, +- startup phase.
	if hb < 25 || hb > 35 {
		t.Fatalf("heartbeats = %d, want ~30", hb)
	}
}

func TestClusterValidation(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Nodes = 0
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("0 nodes should fail")
	}
}

func TestTaskIDStrings(t *testing.T) {
	id := TaskID{Job: "job_x_0001", Type: MapTask, Index: 3}
	if id.String() != "job_x_0001_m_000003" {
		t.Fatalf("TaskID string = %q", id.String())
	}
	aid := AttemptID{Task: id, Attempt: 2}
	if aid.String() != "attempt_job_x_0001_m_000003_2" {
		t.Fatalf("AttemptID string = %q", aid.String())
	}
}

func TestStateStringsAndPredicates(t *testing.T) {
	if TaskMustSuspend.String() != "MUST_SUSPEND" || TaskSuspended.String() != "SUSPENDED" ||
		TaskMustResume.String() != "MUST_RESUME" {
		t.Fatal("paper state names wrong")
	}
	if !TaskSucceeded.Terminal() || TaskRunning.Terminal() {
		t.Fatal("Terminal predicate wrong")
	}
	for _, s := range []TaskState{TaskRunning, TaskMustSuspend, TaskSuspended, TaskMustResume} {
		if !s.Live() {
			t.Fatalf("%v should be live", s)
		}
	}
	if TaskPending.Live() || TaskSucceeded.Live() {
		t.Fatal("Live predicate wrong")
	}
}

func TestCompletionRaceBeatsSuspend(t *testing.T) {
	// Suspend a task that is about to finish: the completion must win and
	// the task end SUCCEEDED, as §III-B describes.
	c := newCluster(t, 1, 1)
	c.CreateInput("/in", 64<<20)
	job, _ := c.JobTracker().Submit(lightJobConf("fast", "/in"))
	task := job.MapTasks()[0]
	// Suspend very late in the task's life; exact timing depends on when
	// progress reports land, so poll until progress is high.
	for c.Engine().Now() < 10*time.Minute {
		c.Engine().Step()
		if task.State() == TaskRunning && task.Progress() > 0.9 {
			break
		}
	}
	if task.Progress() <= 0.9 {
		t.Skip("never observed >90% progress while running")
	}
	c.JobTracker().SuspendTask(task.ID())
	c.RunUntilJobsDone(10 * time.Minute)
	if task.State() != TaskSucceeded {
		t.Fatalf("state = %v, want SUCCEEDED (completion wins the race)", task.State())
	}
}

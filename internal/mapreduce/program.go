package mapreduce

import (
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/hdfs"
	"hadooppreempt/internal/ossim"
	"hadooppreempt/internal/sim"
)

// taskRuntime is shared between a task program and its TaskTracker; the
// tracker reads progress from it when building heartbeats.
type taskRuntime struct {
	inputBytes     int64
	processedBytes int64
}

// progress returns the completed fraction of the input.
func (rt *taskRuntime) progress() float64 {
	if rt.inputBytes <= 0 {
		return 1
	}
	p := float64(rt.processedBytes) / float64(rt.inputBytes)
	if p > 1 {
		p = 1
	}
	return p
}

// Address-space layout of a task process:
//
//	[0, JVMBaseBytes)                      execution engine (heap, buffers)
//	[JVMBaseBytes, JVMBase+ExtraMemory)    task state (worst-case jobs)
//
// The engine region is written once at startup (heap initialisation) and a
// rotating buffer window inside it stays hot during processing. The extra
// region is written at startup and read back at finalization, matching the
// paper's worst-case stateful tasks.
type mapProgram struct {
	eng    *sim.Engine
	cfg    *EngineConfig
	conf   *JobConf
	fs     *hdfs.FileSystem
	node   hdfs.NodeID
	nodeDV *disk.Device
	block  hdfs.BlockLocation
	rt     *taskRuntime
	stream disk.StreamID

	stage        int // 0 spawn, 1 alloc, 2 process, 3 finalize, 4 commit, 5 done
	allocDone    int64
	finalDone    int64
	bufCursor    int64
	pendingChunk int64 // bytes of the chunk whose completion is unrecorded

	// memOp and ioOp are reused across Next calls: the kernel consumes an
	// Op synchronously, so handing out the same buffers avoids a heap
	// allocation per chunk on the hottest loop of the simulation.
	memOp ossim.MemOp
	ioOp  ossim.IOOp

	// chunkParse/chunkTouch cache the compute cost of one full ChunkBytes
	// chunk at the job's parse rate and the engine's memory-touch rate;
	// only the final partial chunk of a stage recomputes the division.
	chunkParse time.Duration
	chunkTouch time.Duration
}

// Program stages.
const (
	stageSpawn = iota
	stageAlloc
	stageProcess
	stageFinalize
	stageCommit
	stageDone
)

func newMapProgram(eng *sim.Engine, cfg *EngineConfig, conf *JobConf, fs *hdfs.FileSystem,
	node hdfs.NodeID, dev *disk.Device, block hdfs.BlockLocation, rt *taskRuntime, stream disk.StreamID) *mapProgram {
	mp := &mapProgram{}
	initMapProgram(mp, eng, cfg, conf, fs, node, dev, block, rt, stream)
	return mp
}

// initMapProgram resets mp (which may be a recycled shell) for a fresh
// attempt.
func initMapProgram(mp *mapProgram, eng *sim.Engine, cfg *EngineConfig, conf *JobConf, fs *hdfs.FileSystem,
	node hdfs.NodeID, dev *disk.Device, block hdfs.BlockLocation, rt *taskRuntime, stream disk.StreamID) {
	rt.inputBytes = block.Size
	*mp = mapProgram{
		eng: eng, cfg: cfg, conf: conf, fs: fs, node: node, nodeDV: dev,
		block: block, rt: rt, stream: stream,
		chunkParse: time.Duration(float64(cfg.ChunkBytes) / conf.MapParseRate * float64(time.Second)),
		chunkTouch: time.Duration(float64(cfg.ChunkBytes) / cfg.MemTouchRate * float64(time.Second)),
	}
}

// totalMemory returns the full address-space size.
func (mp *mapProgram) totalMemory() int64 {
	return mp.conf.JVMBaseBytes + mp.conf.ExtraMemoryBytes
}

// Next implements ossim.Program as a resumable state machine. Each call
// means the previous op completed.
func (mp *mapProgram) Next(p *ossim.Process, op *ossim.Op) {
	// Record completion of the previously returned processing chunk.
	if mp.pendingChunk > 0 {
		mp.rt.processedBytes += mp.pendingChunk
		mp.pendingChunk = 0
	}
	switch mp.stage {
	case stageSpawn:
		mp.stage = stageAlloc
		*op = ossim.Op{Label: "jvm-start", Sleep: mp.cfg.JVMStartup}
		return

	case stageAlloc:
		// Write the engine heap and the extra state region, chunk by
		// chunk, at memory bandwidth. Page faults add their own latency.
		total := mp.totalMemory()
		if mp.allocDone < total {
			chunk := mp.cfg.ChunkBytes
			if mp.allocDone+chunk > total {
				chunk = total - mp.allocDone
			}
			touch := mp.chunkTouch
			if chunk != mp.cfg.ChunkBytes {
				touch = time.Duration(float64(chunk) / mp.cfg.MemTouchRate * float64(time.Second))
			}
			mp.memOp = ossim.MemOp{Offset: mp.allocDone, Length: chunk, Write: true}
			*op = ossim.Op{
				Label:   "alloc",
				Mem:     &mp.memOp,
				Compute: touch,
			}
			mp.allocDone += chunk
			return
		}
		mp.stage = stageProcess
		fallthrough

	case stageProcess:
		if mp.rt.processedBytes < mp.block.Size {
			chunk := mp.cfg.ChunkBytes
			if mp.rt.processedBytes+chunk > mp.block.Size {
				chunk = mp.block.Size - mp.rt.processedBytes
			}
			// Stream the chunk from HDFS; the read may be remote.
			done, _, err := mp.fs.Read(mp.node, mp.block.Block, mp.rt.processedBytes, chunk, mp.stream)
			var ioWait time.Duration
			if err == nil {
				if wait := done - mp.eng.Now(); wait > 0 {
					ioWait = wait
				}
			}
			// Keep a rotating window of memory hot. For plain mappers it
			// is the engine region (record and sort buffers); stateful
			// mappers instead sweep their extra state region, re-dirtying
			// it as in-mapper aggregation structures are updated.
			var mem *ossim.MemOp
			if mp.conf.StatefulMapper && mp.conf.ExtraMemoryBytes > 0 {
				win := mp.conf.ExtraMemoryBytes
				off := mp.bufCursor % win
				length := chunk * 4 // state updates touch widely
				if off+length > win {
					length = win - off
				}
				mp.memOp = ossim.MemOp{Offset: mp.conf.JVMBaseBytes + off, Length: length, Write: true}
				mem = &mp.memOp
				mp.bufCursor += length
			} else if mp.cfg.BufferBytes > 0 && mp.conf.JVMBaseBytes > 0 {
				win := mp.cfg.BufferBytes
				if win > mp.conf.JVMBaseBytes {
					win = mp.conf.JVMBaseBytes
				}
				off := mp.bufCursor % win
				length := chunk
				if off+length > win {
					length = win - off
				}
				mp.memOp = ossim.MemOp{Offset: off, Length: length, Write: true}
				mem = &mp.memOp
				mp.bufCursor += length
			}
			parse := mp.chunkParse
			if chunk != mp.cfg.ChunkBytes {
				parse = time.Duration(float64(chunk) / mp.conf.MapParseRate * float64(time.Second))
			}
			mp.pendingChunk = chunk
			*op = ossim.Op{
				Label:   "map-chunk",
				Sleep:   ioWait,
				Mem:     mem,
				Compute: parse,
			}
			return
		}
		mp.stage = stageFinalize
		fallthrough

	case stageFinalize:
		// Read back the extra state region (the paper's worst-case tasks
		// read their memory when finalizing), faulting in anything that
		// was paged out.
		if mp.conf.ExtraMemoryBytes > 0 && mp.finalDone < mp.conf.ExtraMemoryBytes {
			chunk := mp.cfg.ChunkBytes
			if mp.finalDone+chunk > mp.conf.ExtraMemoryBytes {
				chunk = mp.conf.ExtraMemoryBytes - mp.finalDone
			}
			touch := mp.chunkTouch
			if chunk != mp.cfg.ChunkBytes {
				touch = time.Duration(float64(chunk) / mp.cfg.MemTouchRate * float64(time.Second))
			}
			mp.memOp = ossim.MemOp{Offset: mp.conf.JVMBaseBytes + mp.finalDone, Length: chunk, Write: false}
			*op = ossim.Op{
				Label:   "finalize",
				Mem:     &mp.memOp,
				Compute: touch,
			}
			mp.finalDone += chunk
			return
		}
		mp.stage = stageCommit
		fallthrough

	case stageCommit:
		mp.stage = stageDone
		*op = ossim.Op{Label: "commit", Sleep: mp.cfg.CommitCost}
		if mp.conf.MapOutputRatio > 0 {
			out := int64(float64(mp.block.Size) * mp.conf.MapOutputRatio)
			mp.ioOp = ossim.IOOp{Device: mp.nodeDV, Kind: disk.Write, Bytes: out, Stream: mp.stream}
			op.IO = &mp.ioOp
		}
		return

	default:
		*op = ossim.Op{Done: true, ExitCode: ossim.ExitOK}
	}
}

// reduceProgram models shuffle → sort → reduce. Shuffle bytes are the
// job's aggregate map output divided across reduces.
type reduceProgram struct {
	eng          *sim.Engine
	cfg          *EngineConfig
	conf         *JobConf
	nodeDV       *disk.Device
	rt           *taskRuntime
	stream       disk.StreamID
	shuffleBytes int64
	netBandwidth float64

	stage        int
	allocDone    int64
	shuffled     int64
	reduced      int64
	pendingChunk int64
	pendingPhase int // which counter pendingChunk belongs to: 1 shuffle, 2 reduce

	memOp ossim.MemOp
	ioOp  ossim.IOOp
}

func newReduceProgram(eng *sim.Engine, cfg *EngineConfig, conf *JobConf, dev *disk.Device,
	rt *taskRuntime, stream disk.StreamID, shuffleBytes int64, netBandwidth float64) *reduceProgram {
	rp := &reduceProgram{}
	initReduceProgram(rp, eng, cfg, conf, dev, rt, stream, shuffleBytes, netBandwidth)
	return rp
}

// initReduceProgram resets rp (which may be a recycled shell) for a fresh
// attempt.
func initReduceProgram(rp *reduceProgram, eng *sim.Engine, cfg *EngineConfig, conf *JobConf, dev *disk.Device,
	rt *taskRuntime, stream disk.StreamID, shuffleBytes int64, netBandwidth float64) {
	// Progress of a reduce: shuffle+sort is 2/3, reduce 1/3 (Hadoop uses
	// thirds); we expose bytes so approximate with total work volume.
	rt.inputBytes = 2 * shuffleBytes
	*rp = reduceProgram{
		eng: eng, cfg: cfg, conf: conf, nodeDV: dev, rt: rt, stream: stream,
		shuffleBytes: shuffleBytes, netBandwidth: netBandwidth,
	}
}

// Next implements ossim.Program.
func (rp *reduceProgram) Next(p *ossim.Process, op *ossim.Op) {
	if rp.pendingChunk > 0 {
		rp.rt.processedBytes += rp.pendingChunk
		rp.pendingChunk = 0
	}
	switch rp.stage {
	case stageSpawn:
		rp.stage = stageAlloc
		*op = ossim.Op{Label: "jvm-start", Sleep: rp.cfg.JVMStartup}
		return

	case stageAlloc:
		total := rp.conf.JVMBaseBytes + rp.conf.ExtraMemoryBytes
		if rp.allocDone < total {
			chunk := rp.cfg.ChunkBytes
			if rp.allocDone+chunk > total {
				chunk = total - rp.allocDone
			}
			rp.memOp = ossim.MemOp{Offset: rp.allocDone, Length: chunk, Write: true}
			*op = ossim.Op{
				Label:   "alloc",
				Mem:     &rp.memOp,
				Compute: time.Duration(float64(chunk) / rp.cfg.MemTouchRate * float64(time.Second)),
			}
			rp.allocDone += chunk
			return
		}
		rp.stage = stageProcess
		fallthrough

	case stageProcess: // shuffle + sort
		if rp.shuffled < rp.shuffleBytes {
			chunk := rp.cfg.ChunkBytes
			if rp.shuffled+chunk > rp.shuffleBytes {
				chunk = rp.shuffleBytes - rp.shuffled
			}
			rp.shuffled += chunk
			rp.pendingChunk = chunk
			// Fetch over the network, spill to local disk, charge sort
			// CPU.
			netTime := time.Duration(float64(chunk) / rp.netBandwidth * float64(time.Second))
			rp.ioOp = ossim.IOOp{Device: rp.nodeDV, Kind: disk.Write, Bytes: chunk, Stream: rp.stream}
			*op = ossim.Op{
				Label:   "shuffle",
				Sleep:   netTime,
				IO:      &rp.ioOp,
				Compute: time.Duration(float64(chunk) / rp.conf.ShuffleSortRate * float64(time.Second)),
			}
			return
		}
		rp.stage = stageFinalize
		fallthrough

	case stageFinalize: // reduce phase
		if rp.reduced < rp.shuffleBytes {
			chunk := rp.cfg.ChunkBytes
			if rp.reduced+chunk > rp.shuffleBytes {
				chunk = rp.shuffleBytes - rp.reduced
			}
			rp.reduced += chunk
			rp.pendingChunk = chunk
			rp.ioOp = ossim.IOOp{Device: rp.nodeDV, Kind: disk.Read, Bytes: chunk, Stream: rp.stream}
			*op = ossim.Op{
				Label:   "reduce",
				IO:      &rp.ioOp,
				Compute: time.Duration(float64(chunk) / rp.conf.ReduceRate * float64(time.Second)),
			}
			return
		}
		rp.stage = stageCommit
		fallthrough

	case stageCommit:
		rp.stage = stageDone
		*op = ossim.Op{Label: "commit", Sleep: rp.cfg.CommitCost}
		return

	default:
		*op = ossim.Op{Done: true, ExitCode: ossim.ExitOK}
	}
}

// cleanupProgram removes the temporary output of a killed attempt. It is
// what makes the kill primitive pay latency beyond rescheduling.
type cleanupProgram struct {
	cfg  *EngineConfig
	done bool
}

// Next implements ossim.Program.
func (cp *cleanupProgram) Next(p *ossim.Process, op *ossim.Op) {
	if cp.done {
		*op = ossim.Op{Done: true, ExitCode: ossim.ExitOK}
		return
	}
	cp.done = true
	*op = ossim.Op{Label: "cleanup", Sleep: cp.cfg.CleanupCost}
}

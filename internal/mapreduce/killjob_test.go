package mapreduce

import (
	"testing"
	"time"
)

func TestKillJobStopsRunningTasks(t *testing.T) {
	c := newCluster(t, 1, 2)
	c.CreateInput("/in", 512<<20)
	conf := lightJobConf("victim", "/in")
	conf.MapParseRate = 8e6 // long enough to kill mid-flight
	job, err := c.JobTracker().Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(10 * time.Second)
	if job.State() != JobRunning {
		t.Fatalf("setup: job state = %v", job.State())
	}
	if err := c.JobTracker().KillJob(job.ID()); err != nil {
		t.Fatal(err)
	}
	if job.State() != JobFailed {
		t.Fatalf("state = %v, want FAILED", job.State())
	}
	// Let the kill actions flow; the slot must come back.
	c.RunUntil(20 * time.Second)
	if free := c.Node(0).Tracker.FreeMapSlots(); free != 2 {
		t.Fatalf("free slots = %d, want 2 after job kill", free)
	}
	for _, task := range job.Tasks() {
		if task.State() != TaskKilled {
			t.Fatalf("task %s state = %v, want KILLED", task.ID(), task.State())
		}
	}
}

func TestKillJobOnPendingJob(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.CreateInput("/a", 512<<20)
	c.CreateInput("/b", 64<<20)
	long := lightJobConf("long", "/a")
	long.MapParseRate = 8e6
	c.JobTracker().Submit(long)
	queued, _ := c.JobTracker().Submit(lightJobConf("queued", "/b"))
	c.RunUntil(5 * time.Second)
	if err := c.JobTracker().KillJob(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if queued.State() != JobFailed {
		t.Fatalf("state = %v, want FAILED", queued.State())
	}
	// The killed pending job must never launch.
	c.RunUntil(30 * time.Second)
	if queued.MapTasks()[0].Attempts() != 0 {
		t.Fatal("killed pending task should never launch")
	}
}

func TestKillJobErrors(t *testing.T) {
	c := newCluster(t, 1, 1)
	if err := c.JobTracker().KillJob("ghost"); err == nil {
		t.Fatal("unknown job should fail")
	}
	c.CreateInput("/in", 64<<20)
	job, _ := c.JobTracker().Submit(lightJobConf("j", "/in"))
	c.RunUntilJobsDone(10 * time.Minute)
	if err := c.JobTracker().KillJob(job.ID()); err == nil {
		t.Fatal("killing a finished job should fail")
	}
}

func TestKillJobWithSuspendedTask(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.CreateInput("/in", 512<<20)
	conf := lightJobConf("v", "/in")
	conf.MapParseRate = 8e6
	job, _ := c.JobTracker().Submit(conf)
	task := job.MapTasks()[0]
	c.RunUntil(10 * time.Second)
	if err := c.JobTracker().SuspendTask(task.ID()); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(15 * time.Second)
	if task.State() != TaskSuspended {
		t.Fatalf("setup: state = %v", task.State())
	}
	if err := c.JobTracker().KillJob(job.ID()); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(25 * time.Second)
	if free := c.Node(0).Tracker.FreeMapSlots(); free != 1 {
		t.Fatalf("free slots = %d, want 1 (suspended victim cleaned up)", free)
	}
}

package mapreduce

import (
	"testing"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/hdfs"
	"hadooppreempt/internal/ossim"
	"hadooppreempt/internal/sim"
)

// progHarness drives a task program op by op, as the kernel would.
type progHarness struct {
	eng   *sim.Engine
	fs    *hdfs.FileSystem
	dev   *disk.Device
	block hdfs.BlockLocation
}

func newProgHarness(t *testing.T, inputBytes int64) *progHarness {
	t.Helper()
	eng := sim.New()
	fs, err := hdfs.New(eng, sim.NewRNG(1), hdfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := disk.New(eng, "sda", disk.DefaultConfig())
	if _, err := fs.AddDataNode("n1", "r1", dev, nil); err != nil {
		t.Fatal(err)
	}
	locs, err := fs.Create("/in", inputBytes, "n1")
	if err != nil {
		t.Fatal(err)
	}
	return &progHarness{eng: eng, fs: fs, dev: dev, block: locs[0]}
}

// runProgram pulls ops until Done, returning labels in order. Programs
// take *ossim.Process but never dereference it, so unit tests pass nil.
func runProgram(t *testing.T, next func() (label string, done bool), maxOps int) []string {
	t.Helper()
	var labels []string
	for i := 0; i < maxOps; i++ {
		label, done := next()
		if done {
			return labels
		}
		labels = append(labels, label)
	}
	t.Fatalf("program did not finish within %d ops (labels so far: %v)", maxOps, labels)
	return nil
}

func TestMapProgramOpSequenceLightweight(t *testing.T) {
	h := newProgHarness(t, 64<<20)
	cfg := DefaultEngineConfig()
	conf := &JobConf{Name: "j", InputPath: "/in", MapParseRate: 8e6, JVMBaseBytes: 64 << 20}
	rt := &taskRuntime{}
	mp := newMapProgram(h.eng, &cfg, conf, h.fs, "n1", h.dev, h.block, rt, 1)
	labels := runProgram(t, func() (string, bool) {
		var op ossim.Op
		mp.Next(nil, &op)
		return op.Label, op.Done
	}, 1000)
	if labels[0] != "jvm-start" {
		t.Fatalf("first op = %q, want jvm-start", labels[0])
	}
	counts := map[string]int{}
	for _, l := range labels {
		counts[l]++
	}
	// 64 MB JVM base at 8 MB chunks = 8 alloc ops; 64 MB input = 8 map
	// chunks; no finalize (no extra memory); one commit.
	if counts["alloc"] != 8 {
		t.Fatalf("alloc ops = %d, want 8", counts["alloc"])
	}
	if counts["map-chunk"] != 8 {
		t.Fatalf("map-chunk ops = %d, want 8", counts["map-chunk"])
	}
	if counts["finalize"] != 0 {
		t.Fatalf("finalize ops = %d, want 0 for stateless task", counts["finalize"])
	}
	if counts["commit"] != 1 {
		t.Fatalf("commit ops = %d, want 1", counts["commit"])
	}
	if rt.progress() != 1 {
		t.Fatalf("final progress = %v, want 1", rt.progress())
	}
}

func TestMapProgramFinalizeReadsExtraState(t *testing.T) {
	h := newProgHarness(t, 16<<20)
	cfg := DefaultEngineConfig()
	conf := &JobConf{
		Name: "j", InputPath: "/in", MapParseRate: 8e6,
		JVMBaseBytes: 16 << 20, ExtraMemoryBytes: 32 << 20,
	}
	rt := &taskRuntime{}
	mp := newMapProgram(h.eng, &cfg, conf, h.fs, "n1", h.dev, h.block, rt, 1)
	sawFinalizeRead := false
	for i := 0; i < 1000; i++ {
		var op ossim.Op
		mp.Next(nil, &op)
		if op.Done {
			break
		}
		if op.Label == "finalize" {
			if op.Mem == nil || op.Mem.Write {
				t.Fatal("finalize must be a read of the extra region")
			}
			if op.Mem.Offset < conf.JVMBaseBytes {
				t.Fatalf("finalize touches offset %d inside the JVM region", op.Mem.Offset)
			}
			sawFinalizeRead = true
		}
		if op.Label == "alloc" && (op.Mem == nil || !op.Mem.Write) {
			t.Fatal("alloc must write")
		}
	}
	if !sawFinalizeRead {
		t.Fatal("stateful task never finalized")
	}
}

func TestMapProgramProgressMonotone(t *testing.T) {
	h := newProgHarness(t, 64<<20)
	cfg := DefaultEngineConfig()
	conf := &JobConf{Name: "j", InputPath: "/in", MapParseRate: 8e6, JVMBaseBytes: 16 << 20}
	rt := &taskRuntime{}
	mp := newMapProgram(h.eng, &cfg, conf, h.fs, "n1", h.dev, h.block, rt, 1)
	prev := 0.0
	for i := 0; i < 1000; i++ {
		var op ossim.Op
		mp.Next(nil, &op)
		if op.Done {
			break
		}
		p := rt.progress()
		if p < prev {
			t.Fatalf("progress regressed %v -> %v", prev, p)
		}
		prev = p
	}
}

func TestMapProgramOutputWrite(t *testing.T) {
	h := newProgHarness(t, 16<<20)
	cfg := DefaultEngineConfig()
	conf := &JobConf{
		Name: "j", InputPath: "/in", MapParseRate: 8e6,
		JVMBaseBytes: 16 << 20, MapOutputRatio: 0.5,
	}
	rt := &taskRuntime{}
	mp := newMapProgram(h.eng, &cfg, conf, h.fs, "n1", h.dev, h.block, rt, 1)
	for i := 0; i < 1000; i++ {
		var op ossim.Op
		mp.Next(nil, &op)
		if op.Done {
			break
		}
		if op.Label == "commit" {
			if op.IO == nil || op.IO.Kind != disk.Write {
				t.Fatal("commit with output ratio must write to disk")
			}
			if op.IO.Bytes != 8<<20 {
				t.Fatalf("output bytes = %d, want half the input", op.IO.Bytes)
			}
			return
		}
	}
	t.Fatal("no commit op seen")
}

func TestReduceProgramPhases(t *testing.T) {
	h := newProgHarness(t, 16<<20)
	cfg := DefaultEngineConfig()
	conf := &JobConf{
		Name: "j", InputPath: "/in", MapParseRate: 8e6,
		JVMBaseBytes: 16 << 20, NumReduces: 1,
		ReduceRate: 8e6, ShuffleSortRate: 8e6,
	}
	rt := &taskRuntime{}
	rp := newReduceProgram(h.eng, &cfg, conf, h.dev, rt, 1, 32<<20, 100e6)
	var labels []string
	for i := 0; i < 1000; i++ {
		var op ossim.Op
		rp.Next(nil, &op)
		if op.Done {
			break
		}
		labels = append(labels, op.Label)
	}
	counts := map[string]int{}
	order := map[string]int{}
	for i, l := range labels {
		counts[l]++
		if _, seen := order[l]; !seen {
			order[l] = i
		}
	}
	if counts["shuffle"] != 4 || counts["reduce"] != 4 {
		t.Fatalf("shuffle/reduce ops = %d/%d, want 4/4 for 32 MB at 8 MB chunks",
			counts["shuffle"], counts["reduce"])
	}
	if !(order["jvm-start"] < order["shuffle"] && order["shuffle"] < order["reduce"] &&
		order["reduce"] < order["commit"]) {
		t.Fatalf("phase order wrong: %v", order)
	}
	if rt.progress() != 1 {
		t.Fatalf("final progress = %v, want 1", rt.progress())
	}
}

func TestCleanupProgramSingleOp(t *testing.T) {
	cfg := DefaultEngineConfig()
	cp := &cleanupProgram{cfg: &cfg}
	var op ossim.Op
	cp.Next(nil, &op)
	if op.Done || op.Sleep != cfg.CleanupCost {
		t.Fatalf("first op = %+v, want sleep of CleanupCost", op)
	}
	cp.Next(nil, &op)
	if !op.Done {
		t.Fatal("second op should be Done")
	}
}

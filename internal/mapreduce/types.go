// Package mapreduce implements a Hadoop-1-style MapReduce engine on the
// simulated substrates: a JobTracker that tracks cluster state and task
// scheduling, and TaskTrackers that run Map/Reduce tasks as child
// processes of the simulated node OS.
//
// The engine mirrors the pieces §III-B of the paper modifies:
//
//   - tasks are ordinary OS processes, controlled with POSIX signals;
//   - TaskTrackers exchange heartbeats with the JobTracker at a fixed
//     interval plus out-of-band heartbeats when slots free up;
//   - preemption commands (suspend/resume/kill) ride heartbeat responses,
//     and acknowledgements ride the following heartbeat;
//   - the JobTracker task state machine carries the paper's new states:
//     MUST_SUSPEND, SUSPENDED and MUST_RESUME.
package mapreduce

import (
	"bytes"
	"fmt"
	"strconv"
	"time"
)

// JobID identifies a submitted job.
type JobID string

// TaskType distinguishes map, reduce, and cleanup work.
type TaskType int

// Task types.
const (
	// MapTask processes one input block.
	MapTask TaskType = iota + 1
	// ReduceTask shuffles, sorts and reduces map outputs.
	ReduceTask
)

// String returns the Hadoop-style short tag ("m" / "r").
func (t TaskType) String() string {
	switch t {
	case MapTask:
		return "m"
	case ReduceTask:
		return "r"
	default:
		return fmt.Sprintf("TaskType(%d)", int(t))
	}
}

// TaskID identifies a task within a job.
type TaskID struct {
	Job   JobID
	Type  TaskType
	Index int
}

// String renders the Hadoop-style task id, e.g. "job1_m_000000".
func (id TaskID) String() string {
	var buf [48]byte
	return string(appendTaskID(buf[:0], id))
}

// AttemptID identifies one execution attempt of a task.
type AttemptID struct {
	Task    TaskID
	Attempt int
}

// String renders the Hadoop-style attempt id.
func (id AttemptID) String() string {
	var buf [64]byte
	b := append(buf[:0], "attempt_"...)
	b = appendTaskID(b, id.Task)
	b = append(b, '_')
	b = strconv.AppendInt(b, int64(id.Attempt), 10)
	return string(b)
}

// appendTaskID renders id exactly as String does, into buf.
func appendTaskID(buf []byte, id TaskID) []byte {
	buf = append(buf, id.Job...)
	buf = append(buf, '_')
	buf = append(buf, id.Type.String()...)
	buf = append(buf, '_')
	return appendPadded(buf, id.Index, 6)
}

// appendPadded renders n zero-padded to at least width digits, like
// strconv.AppendInt with a %0*d format but without fmt.
func appendPadded(buf []byte, n, width int) []byte {
	var tmp [20]byte
	digits := strconv.AppendInt(tmp[:0], int64(n), 10)
	for pad := width - len(digits); pad > 0; pad-- {
		buf = append(buf, '0')
	}
	return append(buf, digits...)
}

// compareTaskIDs orders task ids exactly like comparing their String
// renderings, without allocating (hot: every heartbeat sorts with it).
func compareTaskIDs(a, b TaskID) int {
	var ba, bb [48]byte
	return bytes.Compare(appendTaskID(ba[:0], a), appendTaskID(bb[:0], b))
}

// compareAttemptIDs orders attempt ids exactly like comparing their
// String renderings ("attempt_<task>_<n>"), without allocating. The
// shared "attempt_" prefix never changes the ordering and is skipped.
func compareAttemptIDs(a, b AttemptID) int {
	var ba, bb [64]byte
	sa := appendTaskID(ba[:0], a.Task)
	sa = append(sa, '_')
	sa = strconv.AppendInt(sa, int64(a.Attempt), 10)
	sb := appendTaskID(bb[:0], b.Task)
	sb = append(sb, '_')
	sb = strconv.AppendInt(sb, int64(b.Attempt), 10)
	return bytes.Compare(sa, sb)
}

// TaskState is the JobTracker-side state of a task. The preemption states
// (TaskMustSuspend, TaskSuspended, TaskMustResume) are the paper's
// additions to the Hadoop state machine.
type TaskState int

// Task states.
const (
	// TaskPending means the task waits for a slot.
	TaskPending TaskState = iota + 1
	// TaskRunning means an attempt is executing on a TaskTracker.
	TaskRunning
	// TaskMustSuspend means a suspend command was issued and will be
	// piggybacked on the TaskTracker's next heartbeat.
	TaskMustSuspend
	// TaskSuspended means the TaskTracker acknowledged the suspension.
	TaskSuspended
	// TaskMustResume means a resume command was issued and will be
	// piggybacked on the TaskTracker's next heartbeat.
	TaskMustResume
	// TaskSucceeded is terminal success.
	TaskSucceeded
	// TaskKilled means the current attempt was killed; the task either
	// requeued (back to TaskPending) or is terminally killed.
	TaskKilled
	// TaskFailed is terminal failure (e.g. OOM-killed too many times).
	TaskFailed
)

// String returns the paper's naming for the state.
func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "PENDING"
	case TaskRunning:
		return "RUNNING"
	case TaskMustSuspend:
		return "MUST_SUSPEND"
	case TaskSuspended:
		return "SUSPENDED"
	case TaskMustResume:
		return "MUST_RESUME"
	case TaskSucceeded:
		return "SUCCEEDED"
	case TaskKilled:
		return "KILLED"
	case TaskFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s TaskState) Terminal() bool {
	return s == TaskSucceeded || s == TaskFailed
}

// Live reports whether the task currently has a live process on a
// TaskTracker (running or suspended, possibly in a transition state).
func (s TaskState) Live() bool {
	switch s {
	case TaskRunning, TaskMustSuspend, TaskSuspended, TaskMustResume:
		return true
	default:
		return false
	}
}

// JobState is the lifecycle state of a job.
type JobState int

// Job states.
const (
	// JobPending means no task has launched yet.
	JobPending JobState = iota + 1
	// JobRunning means at least one task launched.
	JobRunning
	// JobSucceeded means all tasks succeeded.
	JobSucceeded
	// JobFailed means a task failed terminally.
	JobFailed
)

// String returns a readable name.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "PENDING"
	case JobRunning:
		return "RUNNING"
	case JobSucceeded:
		return "SUCCEEDED"
	case JobFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// AttemptReport is the per-attempt portion of a heartbeat.
type AttemptReport struct {
	Attempt   AttemptID
	Suspended bool
	Progress  float64
	// task is the JobTracker-side record, resolved by the tracker at
	// launch so per-heartbeat processing skips the TaskID map lookup. It
	// is a cache only: when nil (reports built outside a TaskTracker) the
	// JobTracker falls back to the map.
	task *Task
}

// HeartbeatStatus is what a TaskTracker sends the JobTracker.
type HeartbeatStatus struct {
	TaskTracker  string
	FreeMapSlots int
	// Attempts reports every live attempt (running or suspended).
	Attempts []AttemptReport
	// Completed and Failed list attempts that ended since the last
	// heartbeat. Wasted carries the CPU time thrown away by kills.
	Completed []AttemptID
	Failed    []AttemptID
}

// ActionKind selects the command carried by an Action.
type ActionKind uint8

// Action kinds.
const (
	// ActionLaunch starts a new attempt of a task.
	ActionLaunch ActionKind = iota + 1
	// ActionSuspend stops a running attempt with SIGTSTP.
	ActionSuspend
	// ActionResume resumes a suspended attempt with SIGCONT; it consumes
	// a slot on the TaskTracker.
	ActionResume
	// ActionKill kills an attempt with SIGKILL.
	ActionKill
)

// verb names the command for String.
func (k ActionKind) verb() string {
	switch k {
	case ActionLaunch:
		return "launch "
	case ActionSuspend:
		return "suspend "
	case ActionResume:
		return "resume "
	case ActionKill:
		return "kill "
	default:
		return fmt.Sprintf("ActionKind(%d) ", int(k))
	}
}

// Action is a command piggybacked on a heartbeat response. It is a plain
// value rather than an interface so building the per-heartbeat action list
// never boxes (boxing was a measurable allocation on the sweep hot path).
type Action struct {
	Kind    ActionKind
	Attempt AttemptID
	// Cleanup applies to ActionKill: the TaskTracker runs a cleanup
	// attempt that occupies the slot briefly to remove temporary outputs,
	// as Hadoop does for killed tasks.
	Cleanup bool
}

// String describes the action.
func (a Action) String() string { return a.Kind.verb() + a.Attempt.String() }

// TaskTrackerInfo is the scheduler's view of one TaskTracker during an
// assignment round.
type TaskTrackerInfo struct {
	Name         string
	Node         string // HDFS node id
	FreeMapSlots int
	// SuspendedTasks lists tasks suspended on this tracker (resume
	// locality: they can only be resumed here).
	SuspendedTasks []TaskID
}

// Assignment is a scheduler decision for one free slot: launch a new
// attempt of the task on the reporting tracker. (Resumes of suspended
// tasks flow through JobTracker.ResumeTask instead, because the suspended
// process is pinned to its tracker — resume locality, §V-A.)
type Assignment struct {
	Task TaskID
}

// Scheduler is the pluggable job/task scheduler consulted by the
// JobTracker. Implementations decide task placement and drive preemption
// through the JobTracker's control API (SuspendTask / ResumeTask /
// KillTaskAttempt).
type Scheduler interface {
	// JobSubmitted is called when a job enters the system.
	JobSubmitted(job *Job)
	// JobCompleted is called when a job reaches a terminal state.
	JobCompleted(job *Job)
	// TaskProgressed is called when a heartbeat updates task progress.
	TaskProgressed(task *Task, progress float64)
	// Assign picks tasks for the tracker's free slots.
	Assign(tt TaskTrackerInfo) []Assignment
}

// Listener observes engine events; all methods are optional via the
// embedded NopListener.
type Listener interface {
	TaskStateChanged(task *Task, from, to TaskState, at time.Duration)
	TaskProgressed(task *Task, progress float64, at time.Duration)
	JobStateChanged(job *Job, from, to JobState, at time.Duration)
	CleanupSpan(task TaskID, tracker string, start, end time.Duration)
}

// NopListener implements Listener with no-ops; embed it to implement only
// the methods of interest.
type NopListener struct{}

// TaskStateChanged implements Listener.
func (NopListener) TaskStateChanged(*Task, TaskState, TaskState, time.Duration) {}

// TaskProgressed implements Listener.
func (NopListener) TaskProgressed(*Task, float64, time.Duration) {}

// JobStateChanged implements Listener.
func (NopListener) JobStateChanged(*Job, JobState, JobState, time.Duration) {}

// CleanupSpan implements Listener.
func (NopListener) CleanupSpan(TaskID, string, time.Duration, time.Duration) {}

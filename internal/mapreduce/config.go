package mapreduce

import (
	"fmt"
	"sync/atomic"
	"time"
)

// JobConf describes a job at submission time. Rates are expressed as
// throughputs so task durations derive from input sizes, like the paper's
// synthetic mappers that "read and parse the randomly generated input".
type JobConf struct {
	// Name is the display name; the JobID derives from it.
	Name string
	// InputPath is the HDFS file the map tasks read. One map task is
	// created per block.
	InputPath string
	// NumReduces is the reduce task count (0 for map-only jobs, as in the
	// paper's evaluation).
	NumReduces int
	// Priority orders jobs for priority-aware schedulers (higher wins).
	Priority int
	// Pool assigns the job to a fair-scheduler pool ("default" if empty).
	Pool string

	// MapParseRate is the CPU-bound record parsing throughput of the
	// synthetic mapper, bytes/second. The paper's 512 MB tasks run ~80 s,
	// i.e. ~6.7 MB/s.
	MapParseRate float64
	// MapOutputRatio is output bytes per input byte (0 for the paper's
	// synthetic jobs).
	MapOutputRatio float64

	// JVMBaseBytes is the memory footprint of the task execution engine
	// itself (JVM heap, I/O buffers, sort buffers). "Light-weight" tasks
	// allocate only this.
	JVMBaseBytes int64
	// ExtraMemoryBytes is the additional state allocated at task startup
	// and read back at finalization — the worst-case stateful tasks of
	// §IV-C write random values to this much memory at startup and read
	// them back when finalizing.
	ExtraMemoryBytes int64
	// StatefulMapper makes the task continuously update its extra state
	// while processing (in-mapper aggregation over in-heap structures,
	// the pattern of Lin & Dyer the paper cites). Such tasks re-dirty
	// their pages between suspensions, so every suspend/resume cycle
	// pays the paging cost again (§III-A's thrashing discussion).
	StatefulMapper bool
	// ExternalConnections is the number of connections to external
	// systems the task holds (§V-B: network connections, Hadoop
	// Streaming pipes). SIGTSTP is used instead of SIGSTOP precisely so
	// a handler can close them before stopping and reopen them on
	// SIGCONT; both directions cost latency per connection.
	ExternalConnections int

	// ReduceRate is the reduce-phase throughput in bytes/second.
	ReduceRate float64
	// ShuffleSortRate is the shuffle+sort throughput in bytes/second.
	ShuffleSortRate float64
}

// Validate checks the configuration, applying defaults where documented.
func (c *JobConf) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("mapreduce: job needs a name")
	}
	if c.InputPath == "" {
		return fmt.Errorf("mapreduce: job %s needs an input path", c.Name)
	}
	if c.MapParseRate <= 0 {
		return fmt.Errorf("mapreduce: job %s needs a positive map parse rate", c.Name)
	}
	if c.NumReduces < 0 {
		return fmt.Errorf("mapreduce: job %s has negative reduce count", c.Name)
	}
	if c.NumReduces > 0 && (c.ReduceRate <= 0 || c.ShuffleSortRate <= 0) {
		return fmt.Errorf("mapreduce: job %s with reduces needs reduce and shuffle rates", c.Name)
	}
	if c.MapOutputRatio < 0 {
		return fmt.Errorf("mapreduce: job %s has negative output ratio", c.Name)
	}
	if c.JVMBaseBytes < 0 || c.ExtraMemoryBytes < 0 {
		return fmt.Errorf("mapreduce: job %s has negative memory size", c.Name)
	}
	if c.JVMBaseBytes == 0 {
		c.JVMBaseBytes = 200 << 20
	}
	return nil
}

// EngineConfig holds cluster-wide engine parameters.
type EngineConfig struct {
	// HeartbeatInterval is the regular TaskTracker heartbeat period
	// (Hadoop 1 floor: 3 s).
	HeartbeatInterval time.Duration
	// OutOfBandHeartbeats enables an immediate heartbeat when a slot
	// frees up (mapreduce.tasktracker.outofband.heartbeat).
	OutOfBandHeartbeats bool
	// JVMStartup is the cost of spawning a task JVM.
	JVMStartup time.Duration
	// CommitCost is the latency of committing task output.
	CommitCost time.Duration
	// CleanupCost is the duration the cleanup attempt of a killed task
	// occupies a slot.
	CleanupCost time.Duration
	// ChunkBytes is the processing granularity of a task: progress is
	// updated and suspension can take effect at chunk boundaries.
	ChunkBytes int64
	// MemTouchRate is the memory write/read bandwidth used when tasks
	// allocate (write) and finalize (read back) their extra state.
	MemTouchRate float64
	// BufferBytes is the size of the rotating I/O/record buffer window a
	// task keeps hot while processing (part of JVMBaseBytes).
	BufferBytes int64
	// MaxTaskAttempts bounds retries before a task fails terminally.
	MaxTaskAttempts int
	// ConnectionTeardownCost is the SIGTSTP handler's latency per
	// external connection (flushing and closing it).
	ConnectionTeardownCost time.Duration
	// ConnectionSetupCost is the SIGCONT handler's latency per external
	// connection (re-establishing it).
	ConnectionSetupCost time.Duration
	// DisableQuiescentHeartbeats turns off the JobTracker's heartbeat
	// fast path (see JobTracker.Heartbeat). The fast path skips command
	// scanning and scheduler consultation when both are provably no-ops,
	// so disabling it changes nothing but speed; the zero value keeps it
	// on. The knob exists so determinism tests can compare both paths.
	DisableQuiescentHeartbeats bool
}

// quiescentHeartbeatsOff is the process-wide default that
// DefaultEngineConfig copies into DisableQuiescentHeartbeats. Sweep
// cells build their cluster configs internally, so the determinism
// tests flip this to run whole sweeps down the slow path.
var quiescentHeartbeatsOff atomic.Bool

// SetQuiescentHeartbeats sets the process-wide default for the
// heartbeat fast path picked up by DefaultEngineConfig. It exists for
// determinism tests; both settings produce identical results.
func SetQuiescentHeartbeats(on bool) { quiescentHeartbeatsOff.Store(!on) }

// DefaultEngineConfig mirrors a 2014 Hadoop 1 deployment with out-of-band
// heartbeats on.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		HeartbeatInterval:      3 * time.Second,
		OutOfBandHeartbeats:    true,
		JVMStartup:             1200 * time.Millisecond,
		CommitCost:             300 * time.Millisecond,
		CleanupCost:            1500 * time.Millisecond,
		ChunkBytes:             8 << 20,
		MemTouchRate:           2e9,
		BufferBytes:            64 << 20,
		MaxTaskAttempts:        4,
		ConnectionTeardownCost: 30 * time.Millisecond,
		ConnectionSetupCost:    60 * time.Millisecond,

		DisableQuiescentHeartbeats: quiescentHeartbeatsOff.Load(),
	}
}

// Validate checks engine parameters.
func (c *EngineConfig) Validate() error {
	if c.HeartbeatInterval <= 0 {
		return fmt.Errorf("mapreduce: heartbeat interval must be positive")
	}
	if c.ChunkBytes <= 0 {
		return fmt.Errorf("mapreduce: chunk size must be positive")
	}
	if c.MemTouchRate <= 0 {
		return fmt.Errorf("mapreduce: memory touch rate must be positive")
	}
	if c.MaxTaskAttempts <= 0 {
		return fmt.Errorf("mapreduce: max task attempts must be positive")
	}
	if c.BufferBytes < 0 {
		return fmt.Errorf("mapreduce: negative buffer size")
	}
	return nil
}

package mapreduce

import (
	"testing"
	"time"
)

// TestExternalConnectionsDelaySuspensionAck verifies §V-B behaviour: a
// task holding external connections runs a SIGTSTP handler that closes
// them before the suspension takes effect, delaying the slot release.
func TestExternalConnectionsDelaySuspensionAck(t *testing.T) {
	suspendAt := func(conns int) time.Duration {
		cfg := DefaultClusterConfig()
		cfg.Node.Memory.PageSize = 1 << 20
		cfg.Engine.HeartbeatInterval = time.Second
		cfg.Engine.ConnectionTeardownCost = 200 * time.Millisecond
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.JobTracker().SetScheduler(&fifoTestScheduler{jt: c.JobTracker()})
		c.CreateInput("/in", 256<<20)
		conf := lightJobConf("j", "/in")
		conf.ExternalConnections = conns
		job, _ := c.JobTracker().Submit(conf)
		task := job.MapTasks()[0]
		c.RunUntil(4 * time.Second)
		if err := c.JobTracker().SuspendTask(task.ID()); err != nil {
			t.Fatal(err)
		}
		// Step until the SUSPENDED ack lands.
		for c.Engine().Now() < 60*time.Second {
			if task.State() == TaskSuspended {
				return c.Engine().Now()
			}
			if !c.Engine().Step() {
				break
			}
		}
		t.Fatalf("task never acknowledged suspension (conns=%d, state=%v)", conns, task.State())
		return 0
	}
	plain := suspendAt(0)
	withConns := suspendAt(10) // 10 x 200ms = 2s of teardown
	delay := withConns - plain
	if delay < 1500*time.Millisecond {
		t.Fatalf("connection teardown should delay the ack by ~2s, got %v", delay)
	}
}

// TestExternalConnectionsDelayResume verifies the SIGCONT handler's
// reconnection latency postpones the task's completion.
func TestExternalConnectionsDelayResume(t *testing.T) {
	completeAt := func(conns int) time.Duration {
		cfg := DefaultClusterConfig()
		cfg.Node.Memory.PageSize = 1 << 20
		cfg.Engine.HeartbeatInterval = time.Second
		cfg.Engine.ConnectionTeardownCost = 0
		cfg.Engine.ConnectionSetupCost = 500 * time.Millisecond
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.JobTracker().SetScheduler(&fifoTestScheduler{jt: c.JobTracker()})
		c.CreateInput("/in", 256<<20)
		conf := lightJobConf("j", "/in")
		conf.ExternalConnections = conns
		job, _ := c.JobTracker().Submit(conf)
		task := job.MapTasks()[0]
		c.RunUntil(4 * time.Second)
		if err := c.JobTracker().SuspendTask(task.ID()); err != nil {
			t.Fatal(err)
		}
		c.RunUntil(10 * time.Second)
		if task.State() != TaskSuspended {
			t.Fatalf("state = %v, want SUSPENDED", task.State())
		}
		if err := c.JobTracker().ResumeTask(task.ID()); err != nil {
			t.Fatal(err)
		}
		if !c.RunUntilJobsDone(10 * time.Minute) {
			t.Fatal("job did not finish")
		}
		return job.CompletedAt()
	}
	plain := completeAt(0)
	withConns := completeAt(8) // 8 x 500ms = 4s of reconnection
	delay := withConns - plain
	if delay < 3*time.Second {
		t.Fatalf("reconnection should delay completion by ~4s, got %v", delay)
	}
}

// TestStatefulMapperRedirtiesState checks that a stateful mapper keeps
// writing its extra region while processing (so suspension under
// pressure pays paging on every cycle).
func TestStatefulMapperRedirtiesState(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Engine.HeartbeatInterval = time.Second
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.JobTracker().SetScheduler(&fifoTestScheduler{jt: c.JobTracker()})
	c.CreateInput("/in", 256<<20)
	conf := JobConf{
		Name:             "stateful",
		InputPath:        "/in",
		MapParseRate:     16e6,
		ExtraMemoryBytes: 1 << 30,
		StatefulMapper:   true,
	}
	job, err := c.JobTracker().Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilJobsDone(20 * time.Minute) {
		t.Fatalf("job did not finish: %v", job.State())
	}
	if job.State() != JobSucceeded {
		t.Fatalf("state = %v", job.State())
	}
}

package mapreduce

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"hadooppreempt/internal/hdfs"
	"hadooppreempt/internal/sim"
)

// Job is the JobTracker's record of a submitted job.
type Job struct {
	id    JobID
	conf  JobConf
	state JobState

	tasks []*Task // maps first, then reduces

	submittedAt time.Duration
	completedAt time.Duration
}

// ID returns the job id.
func (j *Job) ID() JobID { return j.id }

// Conf returns the job configuration.
func (j *Job) Conf() JobConf { return j.conf }

// Name returns the job's configured name without copying the whole conf;
// schedulers match triggers against it on every progress event.
func (j *Job) Name() string { return j.conf.Name }

// Priority returns the job's configured priority.
func (j *Job) Priority() int { return j.conf.Priority }

// State returns the job state.
func (j *Job) State() JobState { return j.state }

// SubmittedAt returns the submission time.
func (j *Job) SubmittedAt() time.Duration { return j.submittedAt }

// CompletedAt returns the completion time (valid once terminal).
func (j *Job) CompletedAt() time.Duration { return j.completedAt }

// Tasks returns the job's tasks (maps first, then reduces).
func (j *Job) Tasks() []*Task { return append([]*Task(nil), j.tasks...) }

// NumTasks returns the task count without copying the task slice.
func (j *Job) NumTasks() int { return len(j.tasks) }

// TaskAt returns the i-th task (maps first, then reduces) without
// copying; schedulers use it on the assignment hot path.
func (j *Job) TaskAt(i int) *Task { return j.tasks[i] }

// MapTasks returns only the map tasks.
func (j *Job) MapTasks() []*Task {
	var out []*Task
	for _, t := range j.tasks {
		if t.id.Type == MapTask {
			out = append(out, t)
		}
	}
	return out
}

// Progress is the mean progress over all tasks.
func (j *Job) Progress() float64 {
	if len(j.tasks) == 0 {
		return 1
	}
	var sum float64
	for _, t := range j.tasks {
		if t.state == TaskSucceeded {
			sum += 1
		} else {
			sum += t.progress
		}
	}
	return sum / float64(len(j.tasks))
}

// Task is the JobTracker's record of one task.
type Task struct {
	id TaskID
	// idStr caches id.String() so per-decision consumers (the scheduler
	// preemption paths) never re-render it.
	idStr string
	job   *Job
	state TaskState

	attempts int       // attempts started so far
	attempt  AttemptID // current (or last) attempt
	tracker  string    // TaskTracker of the current/last attempt

	progress float64
	block    hdfs.BlockLocation // input block for maps

	// signalled marks that the pending MUST_* command was already
	// piggybacked to the tracker and awaits acknowledgement.
	signalled bool
	// killRequeue records whether the in-flight kill should requeue the
	// task (preemption) or end it (terminal kill).
	killRequeue bool

	firstLaunchAt time.Duration
	completedAt   time.Duration
	suspensions   int
	wastedWork    time.Duration
	swapOutBytes  int64
	swapInBytes   int64
	residentBytes int64 // last observed resident set
}

// ID returns the task id.
func (t *Task) ID() TaskID { return t.id }

// IDString returns the cached String rendering of the task id, for
// hot paths that would otherwise allocate one per call.
func (t *Task) IDString() string { return t.idStr }

// Job returns the owning job.
func (t *Task) Job() *Job { return t.job }

// State returns the JobTracker-side state.
func (t *Task) State() TaskState { return t.state }

// Progress returns the last reported progress in [0,1].
func (t *Task) Progress() float64 { return t.progress }

// Tracker returns the TaskTracker of the current or last attempt.
func (t *Task) Tracker() string { return t.tracker }

// Attempts returns how many attempts have started.
func (t *Task) Attempts() int { return t.attempts }

// Suspensions returns how many times the task was suspended.
func (t *Task) Suspensions() int { return t.suspensions }

// WastedWork returns CPU time lost to killed attempts.
func (t *Task) WastedWork() time.Duration { return t.wastedWork }

// SwapOutBytes returns paging traffic out of the task's processes.
func (t *Task) SwapOutBytes() int64 { return t.swapOutBytes }

// SwapInBytes returns paging traffic into the task's processes.
func (t *Task) SwapInBytes() int64 { return t.swapInBytes }

// ResidentBytes returns the last observed resident set size.
func (t *Task) ResidentBytes() int64 { return t.residentBytes }

// FirstLaunchAt returns when the first attempt launched.
func (t *Task) FirstLaunchAt() time.Duration { return t.firstLaunchAt }

// CompletedAt returns when the task succeeded.
func (t *Task) CompletedAt() time.Duration { return t.completedAt }

// Block returns the input block of a map task.
func (t *Task) Block() hdfs.BlockLocation { return t.block }

// JobTracker is the centralized coordinator: it tracks jobs and tasks,
// exchanges heartbeats with TaskTrackers, consults the pluggable Scheduler
// for assignments, and exposes the preemption control API (§III-B).
type JobTracker struct {
	eng       *sim.Engine
	cfg       *EngineConfig
	fs        *hdfs.FileSystem
	scheduler Scheduler
	listeners []Listener

	jobs     map[JobID]*Job
	jobOrder []JobID
	// jobList mirrors jobOrder with resolved pointers so per-heartbeat
	// walks skip the map lookups.
	jobList  []*Job
	tasks    map[TaskID]*Task
	trackers map[string]*TaskTracker
	nextJob  int
	// liveJobs counts submitted jobs not yet terminal, so the per-event
	// termination check is a comparison instead of a map walk.
	liveJobs int
	// pendingTasks counts tasks in TaskPending across all jobs. Together
	// with the per-tracker quiescence flags it lets a heartbeat prove the
	// scheduler has nothing to do without consulting it.
	pendingTasks int

	// Scratch buffers reused across heartbeats; their contents are only
	// valid until the next Heartbeat call.
	onScratch     []*Task
	suspScratch   []TaskID
	actionScratch []Action
	// blockScratch backs the block-location lookup in Submit; tasks copy
	// the locations by value, so the slice is reusable per submission.
	blockScratch []hdfs.BlockLocation
}

// NewJobTracker creates a JobTracker. The scheduler may be set later with
// SetScheduler but must be non-nil before the first heartbeat.
func NewJobTracker(eng *sim.Engine, cfg EngineConfig, fs *hdfs.FileSystem) (*JobTracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	jt := jtPool.Get().(*JobTracker)
	jt.eng, jt.cfg, jt.fs = eng, &cfg, fs
	if jt.jobs == nil {
		jt.jobs = make(map[JobID]*Job)
		jt.tasks = make(map[TaskID]*Task)
		jt.trackers = make(map[string]*TaskTracker)
	}
	return jt, nil
}

// jtPool recycles JobTracker shells released with release, keeping the job
// and task tables and the heartbeat scratch buffers warm across the cluster
// rebuilds of a sweep cell.
var jtPool = sync.Pool{New: func() any { return &JobTracker{} }}

// release returns the tracker's internal storage to a shared arena for
// reuse by a future NewJobTracker. Called by Cluster.Close.
func (jt *JobTracker) release() {
	clear(jt.jobs)
	clear(jt.tasks)
	clear(jt.trackers)
	clear(jt.jobOrder)
	jt.jobOrder = jt.jobOrder[:0]
	clear(jt.jobList)
	jt.jobList = jt.jobList[:0]
	jt.listeners = nil
	jt.scheduler = nil
	jt.eng, jt.cfg, jt.fs = nil, nil, nil
	jt.nextJob, jt.liveJobs, jt.pendingTasks = 0, 0, 0
	clear(jt.onScratch)
	clear(jt.suspScratch)
	clear(jt.actionScratch)
	clear(jt.blockScratch)
	jt.blockScratch = jt.blockScratch[:0]
	jtPool.Put(jt)
}

// SetScheduler installs the job/task scheduler.
func (jt *JobTracker) SetScheduler(s Scheduler) { jt.scheduler = s }

// AddListener subscribes an event listener.
func (jt *JobTracker) AddListener(l Listener) { jt.listeners = append(jt.listeners, l) }

// Config returns the engine configuration.
func (jt *JobTracker) Config() EngineConfig { return *jt.cfg }

// Engine returns the simulation engine.
func (jt *JobTracker) Engine() *sim.Engine { return jt.eng }

// registerTracker is called by TaskTrackers when they start.
func (jt *JobTracker) registerTracker(tt *TaskTracker) error {
	if _, ok := jt.trackers[tt.name]; ok {
		return fmt.Errorf("mapreduce: tracker %q already registered", tt.name)
	}
	jt.trackers[tt.name] = tt
	return nil
}

// Submit creates a job from conf: one map task per input block, plus the
// configured reduce tasks.
func (jt *JobTracker) Submit(conf JobConf) (*Job, error) {
	if err := conf.Validate(); err != nil {
		return nil, err
	}
	blocks, err := jt.fs.BlocksInto(conf.InputPath, jt.blockScratch[:0])
	if err != nil {
		return nil, fmt.Errorf("mapreduce: submit %s: %w", conf.Name, err)
	}
	jt.blockScratch = blocks
	jt.nextJob++
	buf := make([]byte, 0, len("job_")+len(conf.Name)+8)
	buf = append(buf, "job_"...)
	buf = append(buf, conf.Name...)
	buf = append(buf, '_')
	buf = appendPadded(buf, jt.nextJob, 4)
	id := JobID(buf)
	job := &Job{
		id:          id,
		conf:        conf,
		state:       JobPending,
		submittedAt: jt.eng.Now(),
	}
	for i, b := range blocks {
		t := &Task{
			id:    TaskID{Job: id, Type: MapTask, Index: i},
			job:   job,
			state: TaskPending,
			block: b,
		}
		t.idStr = t.id.String()
		job.tasks = append(job.tasks, t)
		jt.tasks[t.id] = t
	}
	for i := 0; i < conf.NumReduces; i++ {
		t := &Task{
			id:    TaskID{Job: id, Type: ReduceTask, Index: i},
			job:   job,
			state: TaskPending,
		}
		t.idStr = t.id.String()
		job.tasks = append(job.tasks, t)
		jt.tasks[t.id] = t
	}
	jt.jobs[id] = job
	jt.jobOrder = append(jt.jobOrder, id)
	jt.jobList = append(jt.jobList, job)
	jt.liveJobs++
	jt.pendingTasks += len(job.tasks)
	if jt.scheduler != nil {
		jt.scheduler.JobSubmitted(job)
	}
	return job, nil
}

// Job returns a submitted job.
func (jt *JobTracker) Job(id JobID) (*Job, bool) {
	j, ok := jt.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (jt *JobTracker) Jobs() []*Job {
	return append([]*Job(nil), jt.jobList...)
}

// Task returns a task record.
func (jt *JobTracker) Task(id TaskID) (*Task, bool) {
	t, ok := jt.tasks[id]
	return t, ok
}

// PendingTasks returns tasks awaiting a slot, in (job submission, index)
// order.
func (jt *JobTracker) PendingTasks() []*Task {
	return jt.PendingTasksInto(nil)
}

// PendingTasksInto appends the pending tasks to dst and returns it,
// letting schedulers reuse one buffer across assignment rounds.
func (jt *JobTracker) PendingTasksInto(dst []*Task) []*Task {
	for _, j := range jt.jobList {
		for _, t := range j.tasks {
			if t.state == TaskPending {
				dst = append(dst, t)
			}
		}
	}
	return dst
}

// setTaskState transitions a task and notifies listeners.
func (jt *JobTracker) setTaskState(t *Task, to TaskState) {
	from := t.state
	if from == to {
		return
	}
	t.state = to
	jt.noteTaskTransition(t, from, to)
	now := jt.eng.Now()
	for _, l := range jt.listeners {
		l.TaskStateChanged(t, from, to, now)
	}
}

// noteTaskTransition maintains the quiescence bookkeeping on every task
// state change: the global pending count, and — for tasks bound to a
// registered tracker — the tracker's command-dirty flag, suspended
// count and tasksOn cache validity.
func (jt *JobTracker) noteTaskTransition(t *Task, from, to TaskState) {
	if from == TaskPending {
		jt.pendingTasks--
	}
	if to == TaskPending {
		jt.pendingTasks++
	}
	if t.tracker == "" {
		return
	}
	tt, ok := jt.trackers[t.tracker]
	if !ok {
		return
	}
	tt.jtOnValid = false
	switch to {
	case TaskMustSuspend, TaskMustResume, TaskKilled:
		tt.jtCmdDirty = true
	}
	fromSusp := from == TaskSuspended || from == TaskMustResume
	toSusp := to == TaskSuspended || to == TaskMustResume
	if fromSusp != toSusp {
		if toSusp {
			tt.jtSuspended++
		} else {
			tt.jtSuspended--
		}
	}
}

// setJobState transitions a job and notifies listeners and the scheduler.
func (jt *JobTracker) setJobState(j *Job, to JobState) {
	from := j.state
	if from == to {
		return
	}
	j.state = to
	fromTerminal := from == JobSucceeded || from == JobFailed
	toTerminal := to == JobSucceeded || to == JobFailed
	if !fromTerminal && toTerminal {
		jt.liveJobs--
	} else if fromTerminal && !toTerminal {
		jt.liveJobs++
	}
	now := jt.eng.Now()
	for _, l := range jt.listeners {
		l.JobStateChanged(j, from, to, now)
	}
	if toTerminal {
		j.completedAt = now
		if jt.scheduler != nil {
			jt.scheduler.JobCompleted(j)
		}
	}
}

// SuspendTask marks a running task MUST_SUSPEND; the suspend command is
// piggybacked on the task's tracker's next heartbeat, and the SUSPENDED
// state is entered when the following heartbeat acknowledges it.
func (jt *JobTracker) SuspendTask(id TaskID) error {
	t, ok := jt.tasks[id]
	if !ok {
		return fmt.Errorf("mapreduce: no such task %s", id)
	}
	if t.state != TaskRunning {
		return fmt.Errorf("mapreduce: cannot suspend task %s in state %s", id, t.state)
	}
	t.signalled = false
	jt.setTaskState(t, TaskMustSuspend)
	return nil
}

// ResumeTask marks a suspended task MUST_RESUME. The resume command is
// piggybacked on the next heartbeat of the tracker holding the suspended
// process (resume locality) and consumes a slot there.
func (jt *JobTracker) ResumeTask(id TaskID) error {
	t, ok := jt.tasks[id]
	if !ok {
		return fmt.Errorf("mapreduce: no such task %s", id)
	}
	if t.state != TaskSuspended {
		return fmt.Errorf("mapreduce: cannot resume task %s in state %s", id, t.state)
	}
	t.signalled = false
	jt.setTaskState(t, TaskMustResume)
	return nil
}

// KillJob terminally kills a job: live attempts are killed on their
// trackers, pending tasks are cancelled, and the job moves to JobFailed.
func (jt *JobTracker) KillJob(id JobID) error {
	job, ok := jt.jobs[id]
	if !ok {
		return fmt.Errorf("mapreduce: no such job %s", id)
	}
	if job.state == JobSucceeded || job.state == JobFailed {
		return fmt.Errorf("mapreduce: job %s already finished", id)
	}
	for _, t := range job.tasks {
		switch {
		case t.state.Live():
			t.killRequeue = false
			t.signalled = false
			jt.setTaskState(t, TaskKilled)
		case t.state == TaskPending:
			jt.setTaskState(t, TaskKilled)
		}
	}
	jt.setJobState(job, JobFailed)
	return nil
}

// KillTaskAttempt kills the live attempt of a task. With requeue the task
// returns to TaskPending and is rescheduled from scratch (the preemption
// kill primitive); without, the task is terminally killed.
func (jt *JobTracker) KillTaskAttempt(id TaskID, requeue bool) error {
	t, ok := jt.tasks[id]
	if !ok {
		return fmt.Errorf("mapreduce: no such task %s", id)
	}
	if !t.state.Live() {
		return fmt.Errorf("mapreduce: cannot kill task %s in state %s", id, t.state)
	}
	t.killRequeue = requeue
	t.signalled = false
	jt.setTaskState(t, TaskKilled)
	if !requeue {
		// A terminally killed task can never succeed, so the job cannot
		// either.
		jt.setJobState(t.job, JobFailed)
	}
	return nil
}

// Heartbeat processes a TaskTracker status report and returns the actions
// to piggyback on the response. This is the paper's communication path:
// commands flow JobTracker → TaskTracker in responses, acknowledgements
// flow back in the next status report.
func (jt *JobTracker) Heartbeat(status HeartbeatStatus) []Action {
	if jt.scheduler == nil {
		panic("mapreduce: heartbeat before SetScheduler")
	}
	now := jt.eng.Now()

	// 1. Completed / failed attempts.
	for _, aid := range status.Completed {
		jt.attemptCompleted(aid)
	}
	for _, aid := range status.Failed {
		jt.attemptFailed(aid)
	}

	// 2. Progress and suspension acknowledgements.
	for _, rep := range status.Attempts {
		t := rep.task
		if t == nil {
			var ok bool
			if t, ok = jt.tasks[rep.Attempt.Task]; !ok {
				continue
			}
		}
		if t.attempt != rep.Attempt {
			continue // stale report of a superseded attempt
		}
		if rep.Progress > t.progress {
			t.progress = rep.Progress
			for _, l := range jt.listeners {
				l.TaskProgressed(t, rep.Progress, now)
			}
			jt.scheduler.TaskProgressed(t, rep.Progress)
		}
		switch {
		case t.state == TaskMustSuspend && rep.Suspended:
			t.suspensions++
			jt.setTaskState(t, TaskSuspended)
		case t.state == TaskMustResume && !rep.Suspended:
			jt.setTaskState(t, TaskRunning)
		}
	}

	// Quiescent fast path: skip the command scan (step 3) and scheduler
	// consultation (step 4) when both are provably no-ops — no task on
	// this tracker has an undelivered command, and either no slot is free
	// or there is neither a pending task anywhere nor a suspended task
	// here to resume. Every scheduler's Assign is side-effect-free and
	// empty under those conditions, so skipping it is invisible: the
	// heartbeat timer, progress reports and acknowledgements above are
	// untouched, and output stays byte-identical with the path disabled.
	tt := jt.trackers[status.TaskTracker]
	if tt != nil && !jt.cfg.DisableQuiescentHeartbeats && !tt.jtCmdDirty &&
		(status.FreeMapSlots == 0 || (jt.pendingTasks == 0 && tt.jtSuspended == 0)) {
		jt.actionScratch = jt.actionScratch[:0]
		return jt.actionScratch
	}

	// 3. Pending commands for this tracker. tasksOn is computed once per
	// heartbeat; step 4 re-filters it by current state rather than walking
	// the jobs again.
	on := jt.tasksOn(status.TaskTracker)
	actions := jt.actionScratch[:0]
	resumes := 0
	for _, t := range on {
		switch t.state {
		case TaskMustSuspend:
			if !t.signalled {
				t.signalled = true
				actions = append(actions, Action{Kind: ActionSuspend, Attempt: t.attempt})
			}
		case TaskMustResume:
			if !t.signalled {
				t.signalled = true
				resumes++
				actions = append(actions, Action{Kind: ActionResume, Attempt: t.attempt})
			}
		case TaskKilled:
			if !t.signalled {
				t.signalled = true
				actions = append(actions, Action{Kind: ActionKill, Attempt: t.attempt, Cleanup: true})
				if t.killRequeue {
					// Rescheduled from scratch after the preempting task:
					// back to the pending queue with progress lost.
					jt.requeue(t)
				}
			}
		}
	}

	// The command scan above signalled every outstanding command for this
	// tracker, so its dirty flag can drop. Cleared before step 4: Assign
	// may issue new commands (ResumeTask) that must re-dirty it.
	if tt != nil {
		tt.jtCmdDirty = false
	}

	// 4. New assignments from the scheduler. Resumes issued above consume
	// slots on execution, so they reduce what the scheduler may fill.
	free := status.FreeMapSlots - resumes
	if free < 0 {
		free = 0
	}
	info := TaskTrackerInfo{
		Name:         status.TaskTracker,
		FreeMapSlots: free,
	}
	if tt != nil {
		info.Node = string(tt.node)
		// Requeues in step 3 moved tasks to TaskPending, which the state
		// filter below excludes — same result as recomputing tasksOn.
		susp := jt.suspScratch[:0]
		for _, t := range on {
			if t.state == TaskSuspended || t.state == TaskMustResume {
				susp = append(susp, t.id)
			}
		}
		jt.suspScratch = susp
		info.SuspendedTasks = susp
	}
	for _, a := range jt.scheduler.Assign(info) {
		t, ok := jt.tasks[a.Task]
		if !ok {
			continue
		}
		if t.state != TaskPending || free <= 0 {
			continue
		}
		free--
		t.attempts++
		t.attempt = AttemptID{Task: t.id, Attempt: t.attempts}
		t.tracker = status.TaskTracker
		t.progress = 0
		if t.attempts == 1 {
			t.firstLaunchAt = now
		}
		actions = append(actions, Action{Kind: ActionLaunch, Attempt: t.attempt})
		jt.setTaskState(t, TaskRunning)
		if t.job.state == JobPending {
			jt.setJobState(t.job, JobRunning)
		}
	}
	jt.actionScratch = actions
	return actions
}

// tasksOn returns live tasks whose current attempt is on the tracker, in
// deterministic order. For registered trackers the sorted list is cached
// and invalidated incrementally on task state changes (noteTaskTransition),
// so back-to-back heartbeats with unchanged task state skip the job walk
// and the sort. The returned slice is valid until the next call or state
// change.
func (jt *JobTracker) tasksOn(tracker string) []*Task {
	tt := jt.trackers[tracker]
	if tt != nil && tt.jtOnValid {
		return tt.jtOn
	}
	out := jt.onScratch[:0]
	for _, j := range jt.jobList {
		for _, t := range j.tasks {
			if t.tracker == tracker && (t.state.Live() || t.state == TaskKilled) {
				out = append(out, t)
			}
		}
	}
	if len(out) > 1 {
		slices.SortFunc(out, func(a, b *Task) int { return compareTaskIDs(a.id, b.id) })
	}
	jt.onScratch = out
	if tt != nil {
		tt.jtOn = append(tt.jtOn[:0], out...)
		tt.jtOnValid = true
		return tt.jtOn
	}
	return out
}

// allJobsTerminal reports whether every submitted job reached a terminal
// state. The cluster run loop calls it between every pair of events.
func (jt *JobTracker) allJobsTerminal() bool {
	return jt.liveJobs == 0
}

// SuspendedOn lists tasks suspended on the tracker (resume locality).
func (jt *JobTracker) SuspendedOn(tracker string) []TaskID {
	var out []TaskID
	for _, j := range jt.jobList {
		for _, t := range j.tasks {
			if t.tracker != tracker {
				continue
			}
			if t.state == TaskSuspended || t.state == TaskMustResume {
				out = append(out, t.id)
			}
		}
	}
	slices.SortFunc(out, compareTaskIDs)
	return out
}

// requeue returns a killed task to the pending queue, losing its work.
func (jt *JobTracker) requeue(t *Task) {
	t.progress = 0
	jt.setTaskState(t, TaskPending)
}

// attemptCompleted handles a successful attempt report.
func (jt *JobTracker) attemptCompleted(aid AttemptID) {
	t, ok := jt.tasks[aid.Task]
	if !ok || t.attempt != aid || t.state.Terminal() {
		return
	}
	// The paper notes the race: a task may complete between the suspend
	// command and its acknowledgement; completion wins.
	t.progress = 1
	t.completedAt = jt.eng.Now()
	jt.setTaskState(t, TaskSucceeded)
	jt.checkJobCompletion(t.job)
}

// attemptFailed handles a failed attempt (e.g. OOM kill).
func (jt *JobTracker) attemptFailed(aid AttemptID) {
	t, ok := jt.tasks[aid.Task]
	if !ok || t.attempt != aid || t.state.Terminal() {
		return
	}
	if t.state == TaskKilled && !t.killRequeue {
		return // deliberate terminal kill
	}
	if t.attempts >= jt.cfg.MaxTaskAttempts {
		jt.setTaskState(t, TaskFailed)
		jt.setJobState(t.job, JobFailed)
		return
	}
	jt.requeue(t)
}

// noteWasted records CPU time lost when an attempt was killed.
func (jt *JobTracker) noteWasted(id TaskID, cpu time.Duration) {
	if t, ok := jt.tasks[id]; ok {
		t.wastedWork += cpu
	}
}

// noteSwap accumulates an attempt's paging traffic into the task record
// (Figure 4 plots the bytes swapped by the process executing tl).
func (jt *JobTracker) noteSwap(id TaskID, out, in int64) {
	if t, ok := jt.tasks[id]; ok {
		t.swapOutBytes += out
		t.swapInBytes += in
	}
}

// noteResident records the last observed resident set of the task's
// process, used by memory-aware eviction policies.
func (jt *JobTracker) noteResident(id TaskID, bytes int64) {
	if t, ok := jt.tasks[id]; ok {
		t.residentBytes = bytes
	}
}

// noteCleanup forwards cleanup spans to listeners.
func (jt *JobTracker) noteCleanup(id TaskID, tracker string, start, end time.Duration) {
	for _, l := range jt.listeners {
		l.CleanupSpan(id, tracker, start, end)
	}
}

// checkJobCompletion promotes a job to SUCCEEDED when all tasks are done.
func (jt *JobTracker) checkJobCompletion(j *Job) {
	for _, t := range j.tasks {
		if t.state != TaskSucceeded {
			return
		}
	}
	jt.setJobState(j, JobSucceeded)
}

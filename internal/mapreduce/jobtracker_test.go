package mapreduce

import (
	"testing"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/hdfs"
	"hadooppreempt/internal/sim"
)

// newTestDevice returns a default disk for protocol tests.
func newTestDevice(eng *sim.Engine) *disk.Device {
	return disk.New(eng, "sda", disk.DefaultConfig())
}

// protoHarness drives the JobTracker protocol directly, without real
// TaskTrackers, to exercise heartbeat edge cases.
type protoHarness struct {
	eng *sim.Engine
	jt  *JobTracker
	job *Job
}

// stubScheduler assigns every pending task to whoever asks.
type stubScheduler struct{ jt *JobTracker }

func (s *stubScheduler) JobSubmitted(*Job)             {}
func (s *stubScheduler) JobCompleted(*Job)             {}
func (s *stubScheduler) TaskProgressed(*Task, float64) {}
func (s *stubScheduler) Assign(tt TaskTrackerInfo) []Assignment {
	var out []Assignment
	for _, t := range s.jt.PendingTasks() {
		out = append(out, Assignment{Task: t.ID()})
	}
	return out
}

func newProtoHarness(t *testing.T) *protoHarness {
	t.Helper()
	eng := sim.New()
	fs, err := hdfs.New(eng, sim.NewRNG(1), hdfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := newTestDevice(eng)
	if _, err := fs.AddDataNode("n1", "r1", dev, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/in", 512<<20, ""); err != nil {
		t.Fatal(err)
	}
	jt, err := NewJobTracker(eng, DefaultEngineConfig(), fs)
	if err != nil {
		t.Fatal(err)
	}
	jt.SetScheduler(&stubScheduler{jt: jt})
	job, err := jt.Submit(JobConf{Name: "j", InputPath: "/in", MapParseRate: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	return &protoHarness{eng: eng, jt: jt, job: job}
}

func (h *protoHarness) task() *Task { return h.job.MapTasks()[0] }

// hb sends a heartbeat from "tt1" with the given report fields.
func (h *protoHarness) hb(status HeartbeatStatus) []Action {
	status.TaskTracker = "tt1"
	return h.jt.Heartbeat(status)
}

func TestProtocolLaunchViaHeartbeat(t *testing.T) {
	h := newProtoHarness(t)
	actions := h.hb(HeartbeatStatus{FreeMapSlots: 1})
	if len(actions) != 1 {
		t.Fatalf("actions = %v, want one launch", actions)
	}
	la := actions[0]
	if la.Kind != ActionLaunch {
		t.Fatalf("action = %v, want a launch", la)
	}
	if la.Attempt.Attempt != 1 {
		t.Fatalf("attempt number = %d, want 1", la.Attempt.Attempt)
	}
	if h.task().State() != TaskRunning {
		t.Fatalf("state = %v, want RUNNING", h.task().State())
	}
}

func TestProtocolNoLaunchWithoutSlots(t *testing.T) {
	h := newProtoHarness(t)
	actions := h.hb(HeartbeatStatus{FreeMapSlots: 0})
	if len(actions) != 0 {
		t.Fatalf("actions = %v, want none", actions)
	}
	if h.task().State() != TaskPending {
		t.Fatalf("state = %v, want PENDING", h.task().State())
	}
}

func TestProtocolSuspendPiggybackedOnce(t *testing.T) {
	h := newProtoHarness(t)
	h.hb(HeartbeatStatus{FreeMapSlots: 1})
	aid := AttemptID{Task: h.task().ID(), Attempt: 1}
	if err := h.jt.SuspendTask(h.task().ID()); err != nil {
		t.Fatal(err)
	}
	// First heartbeat carries the suspend command.
	actions := h.hb(HeartbeatStatus{
		Attempts: []AttemptReport{{Attempt: aid, Progress: 0.4}},
	})
	if len(actions) != 1 {
		t.Fatalf("actions = %v, want one suspend", actions)
	}
	if actions[0].Kind != ActionSuspend {
		t.Fatalf("action = %v, want a suspend", actions[0])
	}
	// Second heartbeat (not yet acknowledging) must NOT repeat it.
	actions = h.hb(HeartbeatStatus{
		Attempts: []AttemptReport{{Attempt: aid, Progress: 0.4}},
	})
	if len(actions) != 0 {
		t.Fatalf("suspend repeated: %v", actions)
	}
	if h.task().State() != TaskMustSuspend {
		t.Fatalf("state = %v, want MUST_SUSPEND", h.task().State())
	}
	// Acknowledgement moves the state.
	h.hb(HeartbeatStatus{
		Attempts: []AttemptReport{{Attempt: aid, Suspended: true, Progress: 0.4}},
	})
	if h.task().State() != TaskSuspended {
		t.Fatalf("state = %v, want SUSPENDED", h.task().State())
	}
}

func TestProtocolStaleAttemptReportsIgnored(t *testing.T) {
	h := newProtoHarness(t)
	h.hb(HeartbeatStatus{FreeMapSlots: 1})
	stale := AttemptID{Task: h.task().ID(), Attempt: 99}
	h.hb(HeartbeatStatus{
		Attempts: []AttemptReport{{Attempt: stale, Progress: 0.9}},
	})
	if h.task().Progress() != 0 {
		t.Fatalf("stale report changed progress to %v", h.task().Progress())
	}
	// Stale completion must not complete the task.
	h.hb(HeartbeatStatus{Completed: []AttemptID{stale}})
	if h.task().State() == TaskSucceeded {
		t.Fatal("stale completion accepted")
	}
}

func TestProtocolProgressNeverRegresses(t *testing.T) {
	h := newProtoHarness(t)
	h.hb(HeartbeatStatus{FreeMapSlots: 1})
	aid := AttemptID{Task: h.task().ID(), Attempt: 1}
	h.hb(HeartbeatStatus{Attempts: []AttemptReport{{Attempt: aid, Progress: 0.6}}})
	h.hb(HeartbeatStatus{Attempts: []AttemptReport{{Attempt: aid, Progress: 0.5}}})
	if h.task().Progress() != 0.6 {
		t.Fatalf("progress = %v, want 0.6 (no regression)", h.task().Progress())
	}
}

func TestProtocolCompletionWinsOverSuspend(t *testing.T) {
	h := newProtoHarness(t)
	h.hb(HeartbeatStatus{FreeMapSlots: 1})
	aid := AttemptID{Task: h.task().ID(), Attempt: 1}
	h.jt.SuspendTask(h.task().ID())
	// The task completed before the suspend was delivered (§III-B race).
	h.hb(HeartbeatStatus{Completed: []AttemptID{aid}})
	if h.task().State() != TaskSucceeded {
		t.Fatalf("state = %v, want SUCCEEDED", h.task().State())
	}
	if h.job.State() != JobSucceeded {
		t.Fatalf("job state = %v, want SUCCEEDED", h.job.State())
	}
}

func TestProtocolResumeConsumesSlotBudget(t *testing.T) {
	h := newProtoHarness(t)
	h.hb(HeartbeatStatus{FreeMapSlots: 2})
	aid := AttemptID{Task: h.task().ID(), Attempt: 1}
	h.jt.SuspendTask(h.task().ID())
	h.hb(HeartbeatStatus{Attempts: []AttemptReport{{Attempt: aid, Progress: 0.4}}})
	h.hb(HeartbeatStatus{Attempts: []AttemptReport{{Attempt: aid, Suspended: true, Progress: 0.4}}})
	h.jt.ResumeTask(h.task().ID())
	// Submit a second job so there is pending work competing with the
	// resume for the single free slot.
	if _, err := h.jt.Submit(JobConf{Name: "k", InputPath: "/in", MapParseRate: 1e6}); err != nil {
		t.Fatal(err)
	}
	actions := h.hb(HeartbeatStatus{
		FreeMapSlots: 1,
		Attempts:     []AttemptReport{{Attempt: aid, Suspended: true, Progress: 0.4}},
	})
	resumes, launches := 0, 0
	for _, a := range actions {
		switch a.Kind {
		case ActionResume:
			resumes++
		case ActionLaunch:
			launches++
		}
	}
	if resumes != 1 {
		t.Fatalf("resumes = %d, want 1", resumes)
	}
	if launches != 0 {
		t.Fatalf("launches = %d, want 0 (the resume took the slot)", launches)
	}
}

func TestProtocolFailureRequeuesUntilLimit(t *testing.T) {
	h := newProtoHarness(t)
	max := h.jt.Config().MaxTaskAttempts
	for i := 1; i <= max; i++ {
		actions := h.hb(HeartbeatStatus{FreeMapSlots: 1})
		if len(actions) != 1 {
			t.Fatalf("round %d: actions = %v", i, actions)
		}
		aid := AttemptID{Task: h.task().ID(), Attempt: i}
		h.hb(HeartbeatStatus{Failed: []AttemptID{aid}})
	}
	if h.task().State() != TaskFailed {
		t.Fatalf("state after %d failures = %v, want FAILED", max, h.task().State())
	}
	if h.job.State() != JobFailed {
		t.Fatalf("job state = %v, want FAILED", h.job.State())
	}
}

func TestProtocolKillSuspendedTask(t *testing.T) {
	h := newProtoHarness(t)
	h.hb(HeartbeatStatus{FreeMapSlots: 1})
	aid := AttemptID{Task: h.task().ID(), Attempt: 1}
	h.jt.SuspendTask(h.task().ID())
	h.hb(HeartbeatStatus{Attempts: []AttemptReport{{Attempt: aid, Progress: 0.4}}})
	h.hb(HeartbeatStatus{Attempts: []AttemptReport{{Attempt: aid, Suspended: true, Progress: 0.4}}})
	if err := h.jt.KillTaskAttempt(h.task().ID(), true); err != nil {
		t.Fatalf("killing a suspended task should work: %v", err)
	}
	actions := h.hb(HeartbeatStatus{})
	foundKill := false
	for _, a := range actions {
		if a.Kind == ActionKill {
			foundKill = true
		}
	}
	if !foundKill {
		t.Fatalf("no kill action in %v", actions)
	}
	if h.task().State() != TaskPending {
		t.Fatalf("state = %v, want PENDING (requeued)", h.task().State())
	}
}

func TestJobProgressAggregates(t *testing.T) {
	h := newProtoHarness(t)
	h.hb(HeartbeatStatus{FreeMapSlots: 1})
	aid := AttemptID{Task: h.task().ID(), Attempt: 1}
	h.hb(HeartbeatStatus{Attempts: []AttemptReport{{Attempt: aid, Progress: 0.5}}})
	if got := h.job.Progress(); got != 0.5 {
		t.Fatalf("job progress = %v, want 0.5", got)
	}
}

func TestActionStrings(t *testing.T) {
	aid := AttemptID{Task: TaskID{Job: "j", Type: MapTask, Index: 0}, Attempt: 1}
	for _, k := range []ActionKind{ActionLaunch, ActionSuspend, ActionResume, ActionKill} {
		a := Action{Kind: k, Attempt: aid}
		if a.String() == "" {
			t.Fatalf("kind %d has empty String()", k)
		}
	}
}

package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// synthCell is the streaming twin of synthRun: identical measurements,
// recorded without per-cell maps.
func synthCell(pt Point, rec *Recorder) error {
	rng := pt.RNG()
	base := pt.Float("r") + 100*float64(len(pt.Label("prim")))
	// Note the insertion order differs from synthRun's sorted map
	// replay on purpose: summaries must not depend on it.
	rec.Observe("sojourn_s", base+rng.Float64())
	rec.Observe("makespan_s", 2*base+rng.Float64())
	return nil
}

// encodeAll renders a collapsed result in every format.
func encodeAll(t *testing.T, c *Collapsed) string {
	t.Helper()
	var out bytes.Buffer
	for _, format := range []string{"csv", "json", "table"} {
		if err := c.Write(&out, format); err != nil {
			t.Fatal(err)
		}
	}
	return out.String()
}

// TestStreamingMatchesMaterializedPath is the refactor's core
// guarantee: the streaming-collapse path produces byte-identical output
// to Run + Collapse through every encoder.
func TestStreamingMatchesMaterializedPath(t *testing.T) {
	g := testGrid(3)
	res, err := Run(g, synthRun, Options{Parallel: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	legacy := encodeAll(t, res.Collapsed(RepAxis))
	for _, parallel := range []int{1, 4} {
		col, err := RunCollapsed(testGrid(3), synthCell, Options{Parallel: parallel, Seed: 7}, RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeAll(t, col); got != legacy {
			t.Fatalf("streaming output (parallel=%d) differs from materialized path", parallel)
		}
	}
}

// TestOutcomeCellAdapter checks the RunFunc adapter feeds the streaming
// path the same data as the native recorder.
func TestOutcomeCellAdapter(t *testing.T) {
	direct, err := RunCollapsed(testGrid(2), synthCell, Options{Seed: 3}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := RunCollapsed(testGrid(2), OutcomeCell(synthRun), Options{Seed: 3}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	if encodeAll(t, direct) != encodeAll(t, adapted) {
		t.Fatal("OutcomeCell adapter output differs from native recorder")
	}
}

// TestRunCollapsedGroups checks group structure: grid order, labels,
// counts, first-cell extras and typed access through First.
func TestRunCollapsedGroups(t *testing.T) {
	g := NewGrid(Strings("variant", "a", "b"), Reps(4))
	cell := func(pt Point, rec *Recorder) error {
		v := float64(pt.Int(RepAxis))
		if pt.Label("variant") == "b" {
			v *= 2
		}
		rec.Observe("x", v)
		rec.Label("tag", "first-of-"+pt.Label("variant"))
		return nil
	}
	col, err := RunCollapsed(g, cell, Options{Parallel: 2, Seed: 1}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(col.Groups))
	}
	a, b := col.Groups[0], col.Groups[1]
	if a.Key != "variant=a" || b.Key != "variant=b" {
		t.Fatalf("group keys = %q, %q", a.Key, b.Key)
	}
	if a.Count != 4 || b.Count != 4 {
		t.Fatalf("counts = %d, %d, want 4, 4", a.Count, b.Count)
	}
	if got := a.Metrics["x"]; got.Mean != 1.5 || got.Min != 0 || got.Max != 3 {
		t.Fatalf("variant a summary = %+v", got)
	}
	if got := b.Metrics["x"].Mean; got != 3.0 {
		t.Fatalf("variant b mean = %v, want 3", got)
	}
	if a.Extra["tag"] != "first-of-a" || b.Extra["tag"] != "first-of-b" {
		t.Fatalf("extras = %v, %v", a.Extra, b.Extra)
	}
	if a.First.Label("variant") != "a" || b.First.Label("variant") != "b" {
		t.Fatal("First point does not carry the group's coordinates")
	}
}

// TestRunCollapsedErrorNamesFirstFailingCell mirrors the Run error
// contract on the streaming path.
func TestRunCollapsedErrorNamesFirstFailingCell(t *testing.T) {
	cell := func(pt Point, rec *Recorder) error {
		if pt.Label("prim") == "kill" {
			return fmt.Errorf("boom at r=%v", pt.Float("r"))
		}
		return nil
	}
	_, err := RunCollapsed(testGrid(1), cell, Options{Parallel: 4, Seed: 1}, RepAxis)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), `cell "prim=kill r=10 rep=0"`) {
		t.Fatalf("error %q does not name the first failing cell", err)
	}
}

// allocRun / allocCell derive measurements from the seed bits alone, so
// the allocation comparison measures pure harness overhead rather than
// scenario cost.
func allocRun(pt Point) (Outcome, error) {
	v := float64(pt.Seed >> 12)
	return Outcome{Values: map[string]float64{
		"sojourn_s":  v,
		"makespan_s": 2 * v,
	}}, nil
}

func allocCell(pt Point, rec *Recorder) error {
	v := float64(pt.Seed >> 12)
	rec.Observe("sojourn_s", v)
	rec.Observe("makespan_s", 2*v)
	return nil
}

// TestStreamingCollapseAllocRatio is the perf acceptance criterion:
// the streaming path must allocate at least 3x less per cell than the
// materialize-then-collapse path on a synthetic grid (where harness
// overhead, not simulation, dominates).
func TestStreamingCollapseAllocRatio(t *testing.T) {
	g := func() Grid { return testGrid(100) }
	cells := float64(g().Size())
	legacy := testing.AllocsPerRun(10, func() {
		res, err := Run(g(), allocRun, Options{Seed: 1})
		if err != nil {
			panic(err)
		}
		res.Collapse(RepAxis)
	})
	stream := testing.AllocsPerRun(10, func() {
		if _, err := RunCollapsed(g(), allocCell, Options{Seed: 1}, RepAxis); err != nil {
			panic(err)
		}
	})
	t.Logf("allocs/cell: legacy %.2f, streaming %.2f (%.1fx)",
		legacy/cells, stream/cells, legacy/stream)
	if stream*3 > legacy {
		t.Fatalf("streaming path allocates %.0f (%.2f/cell), want <= 1/3 of legacy %.0f (%.2f/cell)",
			stream, stream/cells, legacy, legacy/cells)
	}
}

package sweep

import (
	"bytes"
	"fmt"
	"testing"

	"hadooppreempt/internal/sim"
)

// accumTestCell mirrors the shard property tests' synthetic cell:
// measurements derive purely from the cell's seed and coordinates.
func accumTestCell(p Point, rec *Recorder) error {
	rng := p.RNG()
	rec.Observe("m0", float64(p.Index)+rng.Float64())
	if p.Seed%3 != 0 {
		rec.Observe("m1", rng.Float64()*1e9)
	}
	if p.Seed%2 == 0 {
		rec.Label("flag", fmt.Sprintf("cell-%d", p.Index))
	}
	return nil
}

// renderAllFormats encodes a result in every format that applies.
func renderAllFormats(t *testing.T, c *Collapsed) string {
	t.Helper()
	var out bytes.Buffer
	for _, format := range []string{"csv", "json", "table", "series"} {
		if err := c.Write(&out, format); err != nil {
			if format == "series" && len(c.GroupAxes) == 0 {
				continue
			}
			t.Fatal(err)
		}
	}
	return out.String()
}

// splitCells partitions the cell indices of an n-cell grid into random
// contiguous batches, mimicking a coordinator's lease partition.
func splitCells(rng *sim.RNG, n int) [][]int {
	var batches [][]int
	for lo := 0; lo < n; {
		hi := lo + 1 + rng.Intn(3)
		if hi > n {
			hi = n
		}
		batch := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			batch = append(batch, i)
		}
		batches = append(batches, batch)
		lo = hi
	}
	return batches
}

// TestAccumulatorMatchesMergeSubsets is the incremental-merge property:
// for random grids, collapse sets and batch partitions, absorbing the
// batch results one at a time — in a random order, with a serialize/
// deserialize round trip in the middle (the checkpoint path) — renders
// byte-identically to MergeSubsets over all parts and to a direct
// single-process run.
func TestAccumulatorMatchesMergeSubsets(t *testing.T) {
	rng := sim.NewRNG(20260807)
	for trial := 0; trial < 20; trial++ {
		g := Grid{}
		axes := 1 + rng.Intn(3)
		for a := 0; a < axes; a++ {
			size := 1 + rng.Intn(4)
			labels := make([]string, size)
			for v := range labels {
				labels[v] = fmt.Sprintf("v%d", v)
			}
			g.Axes = append(g.Axes, Strings(fmt.Sprintf("ax%d", a), labels...))
		}
		var collapse []string
		for _, a := range g.Axes {
			if rng.Intn(2) == 0 {
				collapse = append(collapse, a.Name)
			}
		}
		seed := rng.Uint64()
		want, err := RunCollapsed(g, accumTestCell, Options{Parallel: 4, Seed: seed}, collapse...)
		if err != nil {
			t.Fatal(err)
		}

		batches := splitCells(rng, g.Size())
		parts := make([]*Collapsed, len(batches))
		for i, cells := range batches {
			if parts[i], err = RunCells(g, accumTestCell, seed, 2, cells, collapse...); err != nil {
				t.Fatal(err)
			}
		}
		ref, err := MergeSubsets(parts...)
		if err != nil {
			t.Fatal(err)
		}

		acc, err := NewAccumulator(g, seed, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		order := rng.Perm(len(parts))
		for k, i := range order {
			if err := acc.Absorb(parts[i]); err != nil {
				t.Fatalf("trial %d: absorb part %d: %v", trial, i, err)
			}
			if k == len(order)/2 {
				// Checkpoint round trip mid-stream: the running state
				// serializes, reloads, and absorbs the rest identically.
				var buf bytes.Buffer
				if err := acc.WriteState(&buf); err != nil {
					t.Fatal(err)
				}
				loaded, err := ReadShard(&buf)
				if err != nil {
					t.Fatal(err)
				}
				if acc, err = NewAccumulator(g, seed, collapse...); err != nil {
					t.Fatal(err)
				}
				if err := acc.Absorb(loaded); err != nil {
					t.Fatalf("trial %d: absorb reloaded state: %v", trial, err)
				}
			}
		}
		if acc.CellRuns() != g.Size() {
			t.Fatalf("trial %d: %d cell runs absorbed, want %d", trial, acc.CellRuns(), g.Size())
		}
		got, err := acc.Merged()
		if err != nil {
			t.Fatal(err)
		}
		if renderAllFormats(t, got) != renderAllFormats(t, want) {
			t.Fatalf("trial %d: accumulated output differs from single-process run", trial)
		}
		if renderAllFormats(t, ref) != renderAllFormats(t, want) {
			t.Fatalf("trial %d: MergeSubsets output differs from single-process run", trial)
		}
	}
}

// TestAccumulatorRejectsOverlapAndForeignParts: absorbing a part of a
// different sweep, or one that re-runs a group's first cell, fails
// loudly instead of corrupting the aggregate.
func TestAccumulatorRejectsOverlapAndForeignParts(t *testing.T) {
	g := NewGrid(Strings("a", "x", "y"), Reps(2))
	part, err := RunCells(g, accumTestCell, 7, 1, []int{0, 1}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAccumulator(g, 7, "rep")
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Absorb(part); err != nil {
		t.Fatal(err)
	}
	if err := acc.Absorb(part); err == nil {
		t.Fatal("absorbing the same part twice succeeded")
	}
	foreign, err := RunCells(g, accumTestCell, 8, 1, []int{2, 3}, "rep")
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Absorb(foreign); err == nil {
		t.Fatal("absorbing a different-seed part succeeded")
	}
	if _, err := acc.Merged(); err == nil {
		t.Fatal("Merged with missing cells succeeded")
	}
}

package sweep

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// One dispatch abstraction drives every execution mode of the harness.
// A Dispatcher owns placement and parallelism — which process runs
// which cells, and when — while the collapse engine owns measurement
// semantics (coordinate-derived seeds, streaming group folds, exact
// merges). The in-process worker pool, the static -shard slicer, and
// the distributed coordinator (internal/coord) are three dispatchers
// behind one entry point, so local, sharded and multi-machine sweeps
// share every determinism guarantee.

// Dispatcher executes a scenario grid through a cell function and
// returns the result collapsed over the named axes. Implementations
// must preserve the harness contract: every cell they claim to cover
// runs exactly once with its coordinate-derived seed, so output is
// byte-identical no matter how execution was placed.
type Dispatcher interface {
	Dispatch(g Grid, run CellFunc, seed uint64, collapse ...string) (*Collapsed, error)
}

// CacheBinding names the backend identity a dispatcher keys cell-result
// cache lookups under. The grid and seed complete the key at dispatch
// time — binding there rather than at construction means a dispatcher
// can never consult entries of a different grid than the one it was
// handed. The zero value disables caching.
type CacheBinding struct {
	// Cache is the store; nil disables caching.
	Cache *Cache
	// Backend and FP are the backend's name and content fingerprint.
	Backend string
	FP      string
	// Bypass runs every cell and counts it as bypassed (volatile
	// backends; see Volatile).
	Bypass bool
}

// bind resolves the binding against the dispatched grid and seed.
func (cb CacheBinding) bind(g Grid, seed uint64) *SweepCache {
	if cb.Cache == nil {
		return nil
	}
	if cb.Bypass {
		return cb.Cache.BypassSweep()
	}
	return cb.Cache.Sweep(cb.Backend, cb.FP, g, seed)
}

// PoolDispatcher runs every cell of the grid through an in-process
// worker pool of Parallel goroutines (values below 1 run serially),
// consulting the bound cell-result cache — when one is configured —
// before executing each cell.
type PoolDispatcher struct {
	Parallel int
	Cache    CacheBinding
}

// Dispatch implements Dispatcher.
func (d PoolDispatcher) Dispatch(g Grid, run CellFunc, seed uint64, collapse ...string) (*Collapsed, error) {
	return RunCells(g, d.Cache.bind(g, seed).WrapCell(run), seed, d.Parallel, nil, collapse...)
}

// ShardDispatcher runs the seed-stable slice of the grid selected by
// Shard through an in-process worker pool, producing a partial result
// that merges with its sibling shards (see Merge) into output
// byte-identical to an unsharded run.
type ShardDispatcher struct {
	Shard    Shard
	Parallel int
	Cache    CacheBinding
}

// Dispatch implements Dispatcher.
func (d ShardDispatcher) Dispatch(g Grid, run CellFunc, seed uint64, collapse ...string) (*Collapsed, error) {
	if err := d.Shard.validate(); err != nil {
		return nil, err
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	size := g.Size()
	cells := make([]int, 0, size/max(d.Shard.Count, 1)+1)
	for i := 0; i < size; i++ {
		if d.Shard.owns(i) {
			cells = append(cells, i)
		}
	}
	c, err := RunCells(g, d.Cache.bind(g, seed).WrapCell(run), seed, d.Parallel, cells, collapse...)
	if err != nil {
		return nil, err
	}
	c.Shard = d.Shard
	return c, nil
}

// dispatcher resolves the options to the in-process dispatcher they
// describe: the static shard slicer when a shard is set, the plain
// worker pool otherwise. The cache binding carries the store only; the
// backend identity is filled in by RunBackend, which knows the backend
// (grid-level entry points cache under an empty backend name).
func (o Options) dispatcher() Dispatcher {
	cb := CacheBinding{Cache: o.Cache}
	if o.Shard != (Shard{}) {
		return ShardDispatcher{Shard: o.Shard, Parallel: o.Parallel, Cache: cb}
	}
	return PoolDispatcher{Parallel: o.Parallel, Cache: cb}
}

// RunCells executes the given grid cell indices through a worker pool
// of parallel goroutines, folding outcomes into group aggregates as
// cells complete. A nil cells slice runs the whole grid; an explicit
// slice runs exactly those cells (each at most once), which is how the
// distributed worker executes a leased batch. Every group of the grid
// is present in the result even if none of its cells ran, so partial
// results align for merging (see Merge and MergeSubsets).
func RunCells(g Grid, run CellFunc, seed uint64, parallel int, cells []int, collapse ...string) (*Collapsed, error) {
	points, err := g.Points(seed)
	if err != nil {
		return nil, err
	}
	if cells == nil {
		cells = make([]int, len(points))
		for i := range cells {
			cells[i] = i
		}
	} else {
		seen := make(map[int]bool, len(cells))
		for _, i := range cells {
			if i < 0 || i >= len(points) {
				return nil, fmt.Errorf("sweep: cell %d outside grid of %d cells", i, len(points))
			}
			if seen[i] {
				return nil, fmt.Errorf("sweep: cell %d dispatched twice", i)
			}
			seen[i] = true
		}
	}
	c := newCollapsed(&g, seed, collapse)
	var mu sync.Mutex
	err = runPool(points, cells, parallel, func() func(int) error {
		rec := &Recorder{}
		return func(i int) error {
			rec.reset()
			if err := run(points[i], rec); err != nil {
				return err
			}
			mu.Lock()
			c.fold(points[i], rec)
			mu.Unlock()
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	c.finalize()
	return c, nil
}

// runPool is the worker-pool loop shared by every in-process execution
// path (Run, RunCells and therefore every dispatcher). It fans the
// given cell indices out across a bounded pool; newWorker is called
// once per goroutine so each worker can own reusable state (a
// Recorder), and the returned function executes one cell. The first
// error in grid order — not completion order — wins; remaining
// in-flight cells still finish.
func runPool(points []Point, cells []int, parallel int, newWorker func() func(int) error) error {
	workers := parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	errs := make([]error, len(points))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn := newWorker()
			for i := range next {
				if err := runCell(fn, i); err != nil {
					errs[i] = fmt.Errorf("sweep: cell %q: %w", points[i].Key(), err)
				}
			}
		}()
	}
	for _, i := range cells {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCell executes one cell, converting a panic in the cell function
// into a structured error. Backends run arbitrary engine code (replay
// parsers, process supervisors — or injected chaos), and a panicking
// cell must surface as that cell's failure, not kill the whole worker
// process mid-lease.
func runCell(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return fn(i)
}

// Skeleton returns the empty collapsed-result skeleton of the grid —
// every group present, no cells folded. The distributed coordinator
// uses it to validate uploaded lease results against the sweep's group
// structure without running any cell itself.
func Skeleton(g Grid, seed uint64, collapse ...string) (*Collapsed, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	c := newCollapsed(&g, seed, collapse)
	c.finalize()
	return c, nil
}

package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
)

// Cross-process sharding: cell seeds derive from grid coordinates, so
// slicing a grid across processes is pure partitioning — a shard runs
// its cells with the exact seeds they have in the full sweep, writes
// its partial aggregates (raw sample multisets, so percentiles merge
// exactly) to a shard file, and Merge combines any permutation of the
// shard files into a result byte-identical to a single-process run.

// Shard selects the i-th of n seed-stable slices of a grid. Cells are
// assigned round-robin by grid index, which balances repetitions across
// shards. The zero value selects the whole grid.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// NewShard returns the i-th of n shards, validating the pair.
func NewShard(i, n int) (Shard, error) {
	s := Shard{Index: i, Count: n}
	if err := s.validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// ParseShard parses an "i/n" specification, e.g. "0/3".
func ParseShard(spec string) (Shard, error) {
	i, n, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: shard %q: want i/n", spec)
	}
	idx, err1 := strconv.Atoi(i)
	cnt, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("sweep: shard %q: want integer i/n", spec)
	}
	if cnt < 1 {
		return Shard{}, fmt.Errorf("sweep: shard %q: need at least one shard", spec)
	}
	return NewShard(idx, cnt)
}

// String renders the "i/n" form.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

func (s Shard) validate() error {
	if s.Count < 0 || s.Index < 0 {
		return fmt.Errorf("sweep: negative shard %s", s)
	}
	if s.Index >= s.Count && s.Index > 0 {
		return fmt.Errorf("sweep: shard index %d out of range of %d shards", s.Index, s.Count)
	}
	return nil
}

// owns reports whether the shard runs the given grid cell.
func (s Shard) owns(cell int) bool {
	return s.Count <= 1 || cell%s.Count == s.Index
}

// shardFile is the serialized form of a Collapsed result. It carries
// the raw sample multisets rather than summaries: order statistics do
// not merge, sample sets do. Float values round-trip exactly through
// JSON (Go emits the shortest representation that parses back to the
// same float64), so merged output is byte-identical to an unsharded
// run.
type shardFile struct {
	Version   int          `json:"version"`
	Seed      uint64       `json:"seed"`
	Cells     int          `json:"cells"`
	Collapse  []string     `json:"collapse,omitempty"`
	GroupAxes []string     `json:"group_axes"`
	Shard     Shard        `json:"shard"`
	Metrics   []string     `json:"metrics"`
	Groups    []shardGroup `json:"groups"`
}

const shardFileVersion = 1

type shardGroup struct {
	Key      string            `json:"key"`
	Labels   map[string]string `json:"labels"`
	Count    int               `json:"count"`
	First    int               `json:"first"`
	HasFirst bool              `json:"has_first,omitempty"`
	Extra    map[string]string `json:"extra,omitempty"`
	// Samples is indexed like Metrics; groups missing a metric carry
	// null/short rows.
	Samples [][]float64 `json:"samples"`
}

// WriteShard serializes the result — raw samples included — so another
// process can merge it with its sibling shards.
func (c *Collapsed) WriteShard(w io.Writer) error {
	f := shardFile{
		Version:   shardFileVersion,
		Seed:      c.Seed,
		Cells:     c.cells,
		Collapse:  c.CollapsedAxes,
		GroupAxes: c.GroupAxes,
		Shard:     c.Shard,
		Metrics:   c.names,
		Groups:    make([]shardGroup, len(c.Groups)),
	}
	for i, g := range c.Groups {
		f.Groups[i] = shardGroup{
			Key:      g.Key,
			Labels:   g.Labels,
			Count:    g.Count,
			First:    g.firstIndex,
			HasFirst: g.hasFirst,
			Extra:    g.Extra,
			Samples:  g.samples,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ReadShard deserializes a shard file written by WriteShard. Truncated
// or corrupt input — short streams, trailing garbage, duplicate group
// keys, sample rows without cells, out-of-range first-cell indices —
// fails with an error rather than silently mis-merging downstream.
func ReadShard(r io.Reader) (*Collapsed, error) {
	var f shardFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("sweep: shard file: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("sweep: shard file: trailing data after result (two shards in one file?)")
	}
	if f.Version != shardFileVersion {
		return nil, fmt.Errorf("sweep: shard file version %d, want %d", f.Version, shardFileVersion)
	}
	if f.Cells < 1 {
		return nil, fmt.Errorf("sweep: shard file: grid of %d cells", f.Cells)
	}
	if err := f.Shard.validate(); err != nil {
		return nil, err
	}
	c := &Collapsed{
		Seed:          f.Seed,
		CollapsedAxes: f.Collapse,
		GroupAxes:     f.GroupAxes,
		Shard:         f.Shard,
		cells:         f.Cells,
		names:         f.Metrics,
		ids:           make(map[string]int, len(f.Metrics)),
	}
	for id, n := range f.Metrics {
		if _, ok := c.ids[n]; ok {
			return nil, fmt.Errorf("sweep: shard file: metric %q listed twice", n)
		}
		c.ids[n] = id
	}
	c.Groups = make([]*Group, len(f.Groups))
	keys := make(map[string]bool, len(f.Groups))
	for i, g := range f.Groups {
		if keys[g.Key] {
			return nil, fmt.Errorf("sweep: shard file: duplicate group %q", g.Key)
		}
		keys[g.Key] = true
		if len(g.Samples) > len(f.Metrics) {
			return nil, fmt.Errorf("sweep: shard file: group %d has %d sample rows for %d metrics",
				i, len(g.Samples), len(f.Metrics))
		}
		if g.Count < 0 {
			return nil, fmt.Errorf("sweep: shard file: group %d has negative count", i)
		}
		if g.Count == 0 {
			for _, row := range g.Samples {
				if len(row) > 0 {
					return nil, fmt.Errorf("sweep: shard file: group %d has samples but ran no cells", i)
				}
			}
		}
		if g.First < 0 || g.First >= f.Cells {
			return nil, fmt.Errorf("sweep: shard file: group %d first cell %d outside grid of %d cells",
				i, g.First, f.Cells)
		}
		c.Groups[i] = &Group{
			Key:        g.Key,
			Labels:     g.Labels,
			Count:      g.Count,
			Extra:      g.Extra,
			firstIndex: g.First,
			hasFirst:   g.HasFirst,
			samples:    g.Samples,
		}
	}
	c.finalize()
	return c, nil
}

// Merge combines the shards of one sweep into the full result. It
// accepts the shards in any order and produces — via the shared
// Summarize path, which orders sample multisets before computing — the
// byte-identical output of a single-process run for every encoder. All
// shards of the split must be present exactly once; a single unsharded
// result passes through unchanged.
func Merge(shards ...*Collapsed) (*Collapsed, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("sweep: merge of no shards")
	}
	first := shards[0]
	if len(shards) == 1 {
		if first.Shard.Count > 1 {
			return nil, fmt.Errorf("sweep: shard %s merged alone (want all %d shards)",
				first.Shard, first.Shard.Count)
		}
		return first, nil
	}
	seen := make([]bool, len(shards))
	for _, s := range shards {
		if s.Shard.Count != len(shards) {
			return nil, fmt.Errorf("sweep: shard %s in a merge of %d files", s.Shard, len(shards))
		}
		if seen[s.Shard.Index] {
			return nil, fmt.Errorf("sweep: shard %d/%d present twice", s.Shard.Index, s.Shard.Count)
		}
		seen[s.Shard.Index] = true
	}
	return mergeParts(shards)
}

// MergeSubsets combines disjoint partial results of one sweep — e.g.
// the lease results a distributed coordinator collects from its
// workers — into the full result. Unlike Merge it does not require the
// parts to form an i/n shard partition: any set of RunCells results
// covering every grid cell exactly once merges — in any order — into
// output byte-identical to a single-process run.
//
// Validation is necessarily partial: a Collapsed does not record which
// cells it ran, so MergeSubsets checks that the parts describe the
// same sweep, that the total number of cell runs equals the grid size,
// and that at most one part ran each group's first cell. A pathological
// overlap balanced by an equal-sized gap within one group passes those
// checks; callers that hand out the cell partition (the coordinator
// validates every lease result's per-group counts) own true
// disjointness.
func MergeSubsets(parts ...*Collapsed) (*Collapsed, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("sweep: merge of no parts")
	}
	for _, p := range parts {
		if p.Shard.Count > 1 {
			return nil, fmt.Errorf("sweep: subset merge of shard slice %s (use Merge)", p.Shard)
		}
	}
	out := parts[0]
	if len(parts) > 1 {
		var err error
		if out, err = mergeParts(parts); err != nil {
			return nil, err
		}
	}
	ran := 0
	for _, g := range out.Groups {
		ran += g.Count
	}
	if ran != out.cells {
		return nil, fmt.Errorf("sweep: subset merge covers %d cell runs of a %d-cell grid", ran, out.cells)
	}
	return out, nil
}

// mergeParts combines per-group counts, sample multisets and
// first-cell extras of parts describing the same sweep. Callers
// validate how the parts partition the grid; mergeParts itself rejects
// parts of different sweeps and parts that both ran a group's first
// cell (a sure sign of overlap).
func mergeParts(parts []*Collapsed) (*Collapsed, error) {
	first := parts[0]
	for _, s := range parts {
		if s.Seed != first.Seed || s.cells != first.cells ||
			!slices.Equal(s.CollapsedAxes, first.CollapsedAxes) ||
			!slices.Equal(s.GroupAxes, first.GroupAxes) ||
			len(s.Groups) != len(first.Groups) {
			return nil, fmt.Errorf("sweep: part %s is not a slice of the same sweep", s.Shard)
		}
	}
	out := &Collapsed{
		Seed:          first.Seed,
		CollapsedAxes: first.CollapsedAxes,
		GroupAxes:     first.GroupAxes,
		cells:         first.cells,
		cellStride:    first.cellStride,
		ids:           make(map[string]int),
	}
	out.Groups = make([]*Group, len(first.Groups))
	for gi, fg := range first.Groups {
		g := &Group{Key: fg.Key, Labels: fg.Labels, firstIndex: fg.firstIndex}
		for _, s := range parts {
			sg := s.Groups[gi]
			if sg.Key != fg.Key || sg.firstIndex != fg.firstIndex {
				return nil, fmt.Errorf("sweep: part %s group %d is %q, want %q",
					s.Shard, gi, sg.Key, fg.Key)
			}
			g.Count += sg.Count
			for id, samples := range sg.samples {
				if len(samples) == 0 {
					continue
				}
				name := s.names[id]
				oid, ok := out.ids[name]
				if !ok {
					oid = len(out.names)
					out.ids[name] = oid
					out.names = append(out.names, name)
				}
				for oid >= len(g.samples) {
					g.samples = append(g.samples, nil)
				}
				g.samples[oid] = append(g.samples[oid], samples...)
			}
			if sg.hasFirst {
				if g.hasFirst {
					return nil, fmt.Errorf("sweep: group %d first cell present in two parts (overlapping slices)", gi)
				}
				g.hasFirst = true
				g.Extra = sg.Extra
				g.First = sg.First
			}
		}
		out.Groups[gi] = g
	}
	out.finalize()
	return out, nil
}

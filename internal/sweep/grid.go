package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"hadooppreempt/internal/sim"
)

// RepAxis is the conventional name of the repetition axis. Collapsing a
// result over RepAxis yields the per-cell aggregates the figures plot.
const RepAxis = "rep"

// Value is one setting of an axis: a stable label (used in keys, seed
// derivation and output) plus the underlying value handed to the run
// function.
type Value struct {
	Label string
	V     any
}

// Axis is one dimension of a scenario grid.
type Axis struct {
	Name   string
	Values []Value
}

// Strings builds an axis of string values labelled by themselves.
func Strings(name string, vs ...string) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, Value{Label: v, V: v})
	}
	return a
}

// Floats builds an axis of float64 values.
func Floats(name string, vs ...float64) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, Value{Label: formatFloat(v), V: v})
	}
	return a
}

// Ints builds an axis of int values.
func Ints(name string, vs ...int) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, Value{Label: fmt.Sprintf("%d", v), V: v})
	}
	return a
}

// Stringers builds an axis from values that label themselves.
func Stringers[T fmt.Stringer](name string, vs ...T) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, Value{Label: v.String(), V: v})
	}
	return a
}

// Reps returns the repetition axis with n values (at least one).
func Reps(n int) Axis {
	if n < 1 {
		n = 1
	}
	a := Axis{Name: RepAxis}
	for i := 0; i < n; i++ {
		a.Values = append(a.Values, Value{Label: fmt.Sprintf("%d", i), V: i})
	}
	return a
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// Grid declares a scenario sweep: the cross product of its axes, executed
// cell by cell. Cells are ordered row-major with the last axis varying
// fastest.
type Grid struct {
	Axes []Axis
	// Paired lists axes that do not contribute to per-cell seed
	// derivation: cells differing only in paired axes share a seed, so
	// e.g. the preemption primitives are compared under identical arrival
	// randomness — the paper's paired-comparison methodology.
	Paired []string
}

// NewGrid builds a grid over the given axes.
func NewGrid(axes ...Axis) Grid { return Grid{Axes: axes} }

// Pair marks the named axes as seed-paired and returns the grid.
func (g Grid) Pair(axes ...string) Grid {
	g.Paired = append(g.Paired, axes...)
	return g
}

// Fingerprint returns a stable hex signature of the grid's structure:
// axis names and value labels in order, plus the seed-paired axis set.
// Two grids with equal fingerprints enumerate the same cells with the
// same coordinate-derived seeds, which is what a distributed worker
// must prove to its coordinator before any work is leased. The
// fingerprint deliberately excludes the base seed (the coordinator
// hands that to workers) and axis values' Go representations (labels
// alone drive keys and seeds).
func (g Grid) Fingerprint() string {
	h := sha256.New()
	for _, a := range g.Axes {
		fmt.Fprintf(h, "axis %q", a.Name)
		for _, v := range a.Values {
			fmt.Fprintf(h, " %q", v.Label)
		}
		io.WriteString(h, "\n")
	}
	paired := append([]string(nil), g.Paired...)
	sort.Strings(paired)
	for _, p := range paired {
		fmt.Fprintf(h, "paired %q\n", p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Size is the number of cells (0 if any axis is empty).
func (g Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	if len(g.Axes) == 0 {
		return 0
	}
	return n
}

// validate reports structural problems: no axes, empty axes, duplicate
// axis names, duplicate value labels within an axis, or a paired name
// that matches no axis.
func (g Grid) validate() error {
	if len(g.Axes) == 0 {
		return fmt.Errorf("sweep: grid has no axes")
	}
	seen := make(map[string]bool, len(g.Axes))
	for _, a := range g.Axes {
		if a.Name == "" {
			return fmt.Errorf("sweep: axis with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("sweep: axis %q has no values", a.Name)
		}
		labels := make(map[string]bool, len(a.Values))
		for _, v := range a.Values {
			if labels[v.Label] {
				return fmt.Errorf("sweep: axis %q has duplicate label %q", a.Name, v.Label)
			}
			labels[v.Label] = true
		}
	}
	for _, p := range g.Paired {
		if !seen[p] {
			return fmt.Errorf("sweep: paired axis %q not in grid", p)
		}
	}
	return nil
}

// Points enumerates every cell in grid order, deriving each cell's seed
// from baseSeed and the cell's unpaired coordinates. The derivation is
// positional-order-free: it depends only on the axis names and value
// labels, never on which worker reaches the cell first.
//
// Seeds are derived by hashing the cell's unpaired key incrementally
// (the same bytes keyWhere would produce) and coordinate slices share
// one backing array, so enumeration costs O(1) allocations per cell.
func (g Grid) Points(baseSeed uint64) ([]Point, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(baseSeed)
	paired := make(map[string]bool, len(g.Paired))
	for _, p := range g.Paired {
		paired[p] = true
	}
	grid := &g
	axes := len(g.Axes)
	points := make([]Point, g.Size())
	backing := make([]int, len(points)*axes)
	idx := make([]int, axes)
	for i := range points {
		w := backing[i*axes : (i+1)*axes : (i+1)*axes]
		copy(w, idx)
		h := sim.NewStreamHash()
		first := true
		for d, a := range g.Axes {
			if paired[a.Name] {
				continue
			}
			if !first {
				h.AddByte(' ')
			}
			first = false
			h.AddString(a.Name)
			h.AddByte('=')
			h.AddString(a.Values[idx[d]].Label)
		}
		points[i] = Point{Index: i, Seed: root.SeedFor(h), grid: grid, idx: w}
		// Advance the odometer: last axis fastest.
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < len(g.Axes[d].Values) {
				break
			}
			idx[d] = 0
		}
	}
	return points, nil
}

// Point is one cell of a grid.
type Point struct {
	// Index is the cell's position in row-major grid order.
	Index int
	// Seed is the cell's deterministic seed, derived from the sweep seed
	// and the cell's unpaired coordinates.
	Seed uint64

	grid *Grid
	idx  []int
}

// RNG returns a fresh generator seeded for this cell.
func (p Point) RNG() *sim.RNG { return sim.NewRNG(p.Seed) }

// Value returns the cell's value on the named axis. It panics on an
// unknown axis: that is a scenario-definition bug, not a runtime
// condition.
func (p Point) Value(axis string) any {
	v, _ := p.lookup(axis)
	return v.V
}

// Label returns the cell's value label on the named axis.
func (p Point) Label(axis string) string {
	v, _ := p.lookup(axis)
	return v.Label
}

// Float returns the cell's value on the named axis as a float64 (the
// axis must hold float64 or int values).
func (p Point) Float(axis string) float64 {
	switch v := p.Value(axis).(type) {
	case float64:
		return v
	case int:
		return float64(v)
	default:
		panic(fmt.Sprintf("sweep: axis %q holds %T, not a number", axis, v))
	}
}

// Int returns the cell's value on the named axis as an int.
func (p Point) Int(axis string) int {
	v, ok := p.Value(axis).(int)
	if !ok {
		panic(fmt.Sprintf("sweep: axis %q does not hold int values", axis))
	}
	return v
}

// Key identifies the cell: "axis=label" pairs joined in axis order.
func (p Point) Key() string {
	return p.keyWhere(func(string) bool { return true })
}

// KeyWithout is Key with the named axes omitted (used to group cells
// when collapsing).
func (p Point) KeyWithout(axes ...string) string {
	drop := make(map[string]bool, len(axes))
	for _, a := range axes {
		drop[a] = true
	}
	return p.keyWhere(func(name string) bool { return !drop[name] })
}

func (p Point) keyWhere(keep func(string) bool) string {
	var b strings.Builder
	for d, a := range p.grid.Axes {
		if !keep(a.Name) {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Name)
		b.WriteByte('=')
		b.WriteString(a.Values[p.idx[d]].Label)
	}
	return b.String()
}

func (p Point) lookup(axis string) (Value, int) {
	for d, a := range p.grid.Axes {
		if a.Name == axis {
			return a.Values[p.idx[d]], d
		}
	}
	panic(fmt.Sprintf("sweep: unknown axis %q", axis))
}

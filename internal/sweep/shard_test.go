package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hadooppreempt/internal/sim"
)

// randomGrid builds a random 1-4 axis grid (sizes 1-4, occasionally a
// paired axis) from the trial's generator.
func randomGrid(rng *sim.RNG) Grid {
	axes := 1 + rng.Intn(4)
	g := Grid{}
	for a := 0; a < axes; a++ {
		name := fmt.Sprintf("ax%d", a)
		size := 1 + rng.Intn(4)
		ax := Axis{Name: name}
		for v := 0; v < size; v++ {
			ax.Values = append(ax.Values, Value{Label: fmt.Sprintf("v%d", v), V: v})
		}
		g.Axes = append(g.Axes, ax)
	}
	if rng.Intn(3) == 0 {
		g = g.Pair(g.Axes[rng.Intn(len(g.Axes))].Name)
	}
	return g
}

// randomCollapse picks a random (possibly empty) subset of axes to
// collapse.
func randomCollapse(rng *sim.RNG, g Grid) []string {
	var out []string
	for _, a := range g.Axes {
		if rng.Intn(2) == 0 {
			out = append(out, a.Name)
		}
	}
	return out
}

// propertyCell derives measurements purely from the cell's seed and
// coordinates, so every shard run reproduces them. Some cells skip the
// second metric and some record labels, to exercise sparse metrics and
// first-cell extras.
func propertyCell(pt Point, rec *Recorder) error {
	rng := pt.RNG()
	rec.Observe("m0", float64(pt.Index)+rng.Float64())
	if pt.Seed%3 != 0 {
		rec.Observe("m1", rng.Float64()*1e9)
	}
	if pt.Seed%2 == 0 {
		rec.Label("flag", fmt.Sprintf("cell-%d", pt.Index))
	}
	return nil
}

// TestShardMergePropertyByteIdentical is the sharding contract, tested
// over random grids: for any grid, collapse set and shard count, the
// shards — serialized through the shard-file form and merged in any
// permutation — render byte-identically to the unsharded sweep in
// every encoder.
func TestShardMergePropertyByteIdentical(t *testing.T) {
	rng := sim.NewRNG(20260728)
	for trial := 0; trial < 40; trial++ {
		g := randomGrid(rng)
		collapse := randomCollapse(rng, g)
		seed := rng.Uint64()
		n := 1 + rng.Intn(4)
		full, err := RunCollapsed(g, propertyCell, Options{Parallel: 4, Seed: seed}, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		want := encodeAll(t, full)
		shards := make([]*Collapsed, n)
		for i := 0; i < n; i++ {
			col, err := RunCollapsed(g, propertyCell,
				Options{Parallel: 2, Seed: seed, Shard: Shard{Index: i, Count: n}}, collapse...)
			if err != nil {
				t.Fatal(err)
			}
			var file bytes.Buffer
			if err := col.WriteShard(&file); err != nil {
				t.Fatal(err)
			}
			if shards[i], err = ReadShard(&file); err != nil {
				t.Fatal(err)
			}
		}
		perm := rng.Perm(n)
		ordered := make([]*Collapsed, n)
		for i, p := range perm {
			ordered[i] = shards[p]
		}
		merged, err := Merge(ordered...)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeAll(t, merged); got != want {
			t.Fatalf("trial %d (axes=%d collapse=%v shards=%d perm=%v): merged output differs\nwant:\n%s\ngot:\n%s",
				trial, len(g.Axes), collapse, n, perm, want, got)
		}
	}
}

// TestMergeValidation rejects merges that are not exactly the full
// shard set of one sweep.
func TestMergeValidation(t *testing.T) {
	g := testGrid(2)
	shard := func(i, n int, seed uint64) *Collapsed {
		col, err := RunCollapsed(g, synthCell, Options{Seed: seed, Shard: Shard{Index: i, Count: n}}, RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := Merge(shard(0, 3, 1)); err == nil {
		t.Fatal("lone shard of 3 accepted")
	}
	if _, err := Merge(shard(0, 3, 1), shard(1, 3, 1)); err == nil {
		t.Fatal("incomplete shard set accepted")
	}
	if _, err := Merge(shard(0, 2, 1), shard(0, 2, 1)); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := Merge(shard(0, 2, 1), shard(1, 2, 2)); err == nil {
		t.Fatal("mixed-seed shards accepted")
	}
	if _, err := Merge(shard(0, 2, 1), shard(1, 2, 1)); err != nil {
		t.Fatalf("valid shard set rejected: %v", err)
	}
}

// validShardBytes serializes one real shard of the test grid.
func validShardBytes(t *testing.T) []byte {
	t.Helper()
	col, err := RunCollapsed(testGrid(2), synthCell,
		Options{Seed: 1, Shard: Shard{Index: 0, Count: 2}}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.WriteShard(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadShardRejectsMalformedFiles checks malformed input — hand-
// crafted corruption and mutations of a real shard file — fails with
// an error, never a panic and never a silent mis-merge.
func TestReadShardRejectsMalformedFiles(t *testing.T) {
	valid := validShardBytes(t)
	cases := map[string]string{
		"empty":            ``,
		"not json":         `{`,
		"truncated":        string(valid[:len(valid)/2]),
		"trailing data":    string(valid) + string(valid),
		"wrong version":    `{"version":99}`,
		"no cells":         `{"version":1,"cells":0,"metrics":[],"groups":[]}`,
		"negative cells":   `{"version":1,"cells":-4,"metrics":[],"groups":[]}`,
		"bad shard spec":   `{"version":1,"cells":2,"shard":{"index":5,"count":2},"metrics":[],"groups":[]}`,
		"duplicate metric": `{"version":1,"cells":2,"metrics":["m0","m0"],"groups":[]}`,
		"duplicate group": `{"version":1,"cells":2,"metrics":[],"groups":[` +
			`{"key":"k","count":1,"samples":[]},{"key":"k","count":1,"samples":[]}]}`,
		"excess samples": `{"version":1,"cells":2,"metrics":["m0"],"groups":[{"key":"k","count":1,"samples":[[1],[2]]}]}`,
		"negative count": `{"version":1,"cells":2,"metrics":[],"groups":[{"key":"k","count":-1,"samples":[]}]}`,
		"samples without cells": `{"version":1,"cells":2,"metrics":["m0"],"groups":[` +
			`{"key":"k","count":0,"samples":[[1]]}]}`,
		"first out of range": `{"version":1,"cells":2,"metrics":[],"groups":[` +
			`{"key":"k","count":1,"first":7,"samples":[]}]}`,
	}
	for name, raw := range cases {
		if _, err := ReadShard(strings.NewReader(raw)); err == nil {
			t.Fatalf("%s: malformed shard file accepted", name)
		}
	}
	if _, err := ReadShard(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid shard file rejected: %v", err)
	}
}

// TestMergeRejectsTamperedShards: shard files that individually parse
// but disagree structurally must fail the merge, not mis-merge.
func TestMergeRejectsTamperedShards(t *testing.T) {
	g := testGrid(2)
	shard := func(i, n int) *Collapsed {
		col, err := RunCollapsed(g, synthCell, Options{Seed: 1, Shard: Shard{Index: i, Count: n}}, RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := col.WriteShard(&buf); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	// A shard of a different grid shape (extra repetition) aligned into
	// the same shard count.
	otherGrid, err := RunCollapsed(testGrid(3), synthCell,
		Options{Seed: 1, Shard: Shard{Index: 1, Count: 2}}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(shard(0, 2), otherGrid); err == nil {
		t.Fatal("shards of different grids merged")
	}
	// Both halves claiming the same slice (duplicate-group content for
	// every group that ran): rejected by the shard-set check.
	if _, err := Merge(shard(0, 2), shard(0, 2)); err == nil {
		t.Fatal("duplicate slice merged")
	}
	// Same sweep sliced under different collapse sets.
	collapsed, err := RunCollapsed(g, synthCell, Options{Seed: 1, Shard: Shard{Index: 1, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(shard(0, 2), collapsed); err == nil {
		t.Fatal("mixed collapse sets merged")
	}
}

// TestShardSpec covers parsing and cell ownership.
func TestShardSpec(t *testing.T) {
	s, err := ParseShard("1/3")
	if err != nil || s.Index != 1 || s.Count != 3 {
		t.Fatalf("ParseShard(1/3) = %v, %v", s, err)
	}
	for _, bad := range []string{"", "3", "3/1", "-1/2", "a/b", "1/-2", "1/0", "0/0", "1/1"} {
		if _, err := ParseShard(bad); err == nil {
			t.Fatalf("ParseShard(%q) accepted", bad)
		}
	}
	if _, err := ParseShard("0/1"); err != nil {
		t.Fatalf("ParseShard(0/1) rejected: %v", err)
	}
	var whole Shard
	owned := 0
	for i := 0; i < 9; i++ {
		if whole.owns(i) {
			owned++
		}
	}
	if owned != 9 {
		t.Fatal("zero shard must own every cell")
	}
	for i := 0; i < 9; i++ {
		owners := 0
		for k := 0; k < 3; k++ {
			if (Shard{Index: k, Count: 3}).owns(i) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("cell %d owned by %d of 3 shards", i, owners)
		}
	}
}

package sweep

import (
	"bytes"
	"fmt"
	"testing"
)

// testBackend is a deterministic backend over a 2-axis grid.
func testBackend(reps int) FuncBackend {
	return FuncBackend{
		Engine: "test",
		G:      NewGrid(Strings("mode", "a", "b"), Floats("x", 1, 2, 3), Reps(reps)),
		Run: func(p Point, rec *Recorder) error {
			rng := p.RNG()
			rec.Observe("value", p.Float("x")*10+rng.Float64())
			rec.Observe("cells", 1)
			return nil
		},
	}
}

// TestRunBackendMatchesRunCollapsed proves the backend path is a pure
// repackaging of the streaming harness: same grid, same cells, same
// bytes.
func TestRunBackendMatchesRunCollapsed(t *testing.T) {
	b := testBackend(3)
	opts := Options{Parallel: 4, Seed: 11}
	viaBackend, err := RunBackend(b, opts, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunCollapsed(b.G, b.Run, opts, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"csv", "json", "table", "series"} {
		var got, want bytes.Buffer
		if err := viaBackend.Write(&got, format); err != nil {
			t.Fatal(err)
		}
		if err := direct.Write(&want, format); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("format %s: backend output differs from direct RunCollapsed", format)
		}
	}
	if b.Name() != "test" {
		t.Errorf("Name() = %q, want test", b.Name())
	}
}

// TestRunBackendShardsMerge runs a backend as shards and merges the
// serialized shard files back into the single-process result.
func TestRunBackendShardsMerge(t *testing.T) {
	b := testBackend(2)
	full, err := RunBackend(b, Options{Parallel: 2, Seed: 3}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	parts := make([]*Collapsed, n)
	for i := 0; i < n; i++ {
		col, err := RunBackend(b, Options{Parallel: 2, Seed: 3, Shard: Shard{Index: i, Count: n}}, RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		var file bytes.Buffer
		if err := col.WriteShard(&file); err != nil {
			t.Fatal(err)
		}
		if parts[i], err = ReadShard(&file); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(parts[1], parts[2], parts[0])
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := merged.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if err := full.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("merged backend shards differ from the unsharded run")
	}
}

// TestRunBackendGridError propagates grid construction failures.
func TestRunBackendGridError(t *testing.T) {
	b := errBackend{}
	if _, err := RunBackend(b, Options{}); err == nil {
		t.Fatal("expected grid error to propagate")
	}
}

type errBackend struct{}

func (errBackend) Name() string                { return "err" }
func (errBackend) Grid() (Grid, error)         { return Grid{}, fmt.Errorf("boom") }
func (errBackend) Cell(Point, *Recorder) error { return nil }

package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hadooppreempt/internal/sim"
)

// countingBackend wraps the property cell with an execution counter, so
// tests can tell replayed cells from re-executed ones.
func countingBackend(g Grid, executed *atomic.Int64) FuncBackend {
	return FuncBackend{
		Engine: "prop",
		G:      g,
		Run: func(p Point, rec *Recorder) error {
			executed.Add(1)
			return propertyCell(p, rec)
		},
	}
}

// TestCachePropertyByteIdentical is the cache contract, tested over
// random grids: a cold cached run renders byte-identically to an
// uncached run in every format, and a warm rerun — at any parallelism
// or shard split — replays every cell from cache and still renders the
// same bytes.
func TestCachePropertyByteIdentical(t *testing.T) {
	rng := sim.NewRNG(20260807)
	for trial := 0; trial < 12; trial++ {
		g := randomGrid(rng)
		collapse := randomCollapse(rng, g)
		seed := rng.Uint64()
		var uncachedRuns, coldRuns, warmRuns atomic.Int64
		plain, err := RunBackend(countingBackend(g, &uncachedRuns),
			Options{Parallel: 2, Seed: seed}, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		want := encodeAll(t, plain)
		cells := int64(plain.Cells())

		cache, err := NewCache(filepath.Join(t.TempDir(), "cache"))
		if err != nil {
			t.Fatal(err)
		}
		cold, err := RunBackend(countingBackend(g, &coldRuns),
			Options{Parallel: 2, Seed: seed, Cache: cache}, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeAll(t, cold); got != want {
			t.Fatalf("trial %d: cold cached output differs\nwant:\n%s\ngot:\n%s", trial, want, got)
		}
		if coldRuns.Load() != cells {
			t.Fatalf("trial %d: cold run executed %d of %d cells", trial, coldRuns.Load(), cells)
		}
		if cc := cache.Counters(); cc.Hits != 0 || cc.Misses != cells || cc.Writes != cells {
			t.Fatalf("trial %d: cold counters = %+v, want %d misses and writes", trial, cc, cells)
		}

		// Warm reruns at both parallelism levels replay every cell.
		for _, parallel := range []int{1, 4} {
			warm, err := RunBackend(countingBackend(g, &warmRuns),
				Options{Parallel: parallel, Seed: seed, Cache: cache}, collapse...)
			if err != nil {
				t.Fatal(err)
			}
			if got := encodeAll(t, warm); got != want {
				t.Fatalf("trial %d parallel %d: warm output differs", trial, parallel)
			}
		}
		if warmRuns.Load() != 0 {
			t.Fatalf("trial %d: warm reruns executed %d cells", trial, warmRuns.Load())
		}

		// A warm sharded run merges back to the same bytes without
		// executing anything either.
		n := 2 + rng.Intn(3)
		shards := make([]*Collapsed, n)
		for i := 0; i < n; i++ {
			shards[i], err = RunBackend(countingBackend(g, &warmRuns),
				Options{Parallel: 2, Seed: seed, Cache: cache, Shard: Shard{Index: i, Count: n}},
				collapse...)
			if err != nil {
				t.Fatal(err)
			}
		}
		merged, err := Merge(shards...)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeAll(t, merged); got != want {
			t.Fatalf("trial %d: warm sharded merge differs", trial)
		}
		if warmRuns.Load() != 0 {
			t.Fatalf("trial %d: warm shards executed %d cells", trial, warmRuns.Load())
		}
	}
}

// cacheEntryFiles lists every entry file under the cache root.
func cacheEntryFiles(t *testing.T, cache *Cache) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(cache.Dir(), func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasPrefix(filepath.Base(path), "cell-") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestCacheCorruptEntriesAreSilentMisses damages stored entries in
// every representative way — truncation, bit flips, a wrong version, an
// empty file — and checks a warm rerun still produces byte-identical
// output by re-executing exactly the damaged cells.
func TestCacheCorruptEntriesAreSilentMisses(t *testing.T) {
	g := NewGrid(Strings("mode", "a", "b"), Floats("x", 1, 2), Reps(2))
	seed := uint64(9)
	var runs atomic.Int64
	b := countingBackend(g, &runs)
	plain, err := RunBackend(b, Options{Seed: seed}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeAll(t, plain)

	corrupt := map[string]func(raw []byte) []byte{
		"truncated":     func(raw []byte) []byte { return raw[:len(raw)/2] },
		"bit flip":      func(raw []byte) []byte { raw[len(raw)/2] ^= 0x40; return raw },
		"empty":         func([]byte) []byte { return nil },
		"wrong version": func([]byte) []byte { return []byte(`{"version":99,"key":"","cell":0,"sum":"","payload":{}}`) },
		"trailing data": func(raw []byte) []byte { return append(raw, raw...) },
	}
	damaged := 0
	for name, mutate := range corrupt {
		cache, err := NewCache(filepath.Join(t.TempDir(), "cache"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunBackend(b, Options{Seed: seed, Cache: cache}, RepAxis); err != nil {
			t.Fatal(err)
		}
		files := cacheEntryFiles(t, cache)
		if len(files) != plain.Cells() {
			t.Fatalf("%s: cold run wrote %d entries, want %d", name, len(files), plain.Cells())
		}
		// Damage two entries, leave the rest verified.
		for _, path := range files[:2] {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		runs.Store(0)
		warm, err := RunBackend(b, Options{Seed: seed, Cache: cache}, RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeAll(t, warm); got != want {
			t.Fatalf("%s: warm output differs after corruption", name)
		}
		if runs.Load() != 2 {
			t.Fatalf("%s: re-executed %d cells, want exactly the 2 damaged", name, runs.Load())
		}
		damaged++
	}
	if damaged != len(corrupt) {
		t.Fatal("not every corruption case ran")
	}
}

// TestCacheKeyspaceIsolation: sweeps differing in grid, backend
// fingerprint or seed never observe each other's entries.
func TestCacheKeyspaceIsolation(t *testing.T) {
	cache, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	g1 := NewGrid(Strings("mode", "a", "b"), Reps(2))
	g2 := NewGrid(Strings("mode", "a", "b", "c"), Reps(2))
	fill := func(sc *SweepCache, g Grid, tag string) {
		points, err := g.Points(7)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range points {
			rec := &Recorder{}
			rec.Observe("m", float64(p.Index))
			rec.Label("src", tag)
			sc.Store(p.Index, rec)
		}
	}
	sc1 := cache.Sweep("sim", "fp-one", g1, 7)
	sc2 := cache.Sweep("sim", "fp-one", g2, 7)
	scFP := cache.Sweep("sim", "fp-two", g1, 7)
	scSeed := cache.Sweep("sim", "fp-one", g1, 8)
	fill(sc1, g1, "one")

	for name, sc := range map[string]*SweepCache{"other grid": sc2, "other fingerprint": scFP, "other seed": scSeed} {
		rec := &Recorder{}
		if sc.Load(0, rec) {
			t.Fatalf("%s: hit an entry of a different sweep identity", name)
		}
	}
	rec := &Recorder{}
	if !sc1.Load(0, rec) {
		t.Fatal("own entry missed")
	}
	if len(rec.labelVals) != 1 || rec.labelVals[0] != "one" {
		t.Fatalf("own entry payload = %v, want the stored label", rec.labelVals)
	}

	// Even with colliding directories the stored key would reject the
	// foreign entry; simulate by copying an entry file across keyspaces.
	src := sc1.entryPath(1)
	dst := scFP.entryPath(1)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if scFP.Load(1, &Recorder{}) {
		t.Fatal("entry copied across keyspaces accepted: key check failed")
	}
}

// TestCacheConcurrentSameKeyWriters hammers one keyspace from many
// goroutines — every cell written and read concurrently — and requires
// every load that succeeds to return the one true payload.
func TestCacheConcurrentSameKeyWriters(t *testing.T) {
	cache, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(Strings("mode", "a"), Reps(4))
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := cache.Sweep("sim", "fp", g, 3)
			for cell := 0; cell < 4; cell++ {
				rec := &Recorder{}
				rec.Observe("m", float64(cell)*10)
				sc.Store(cell, rec)
				got := &Recorder{}
				if sc.Load(cell, got) {
					if len(got.vals) != 1 || got.vals[0] != float64(cell)*10 {
						t.Errorf("cell %d: concurrent load returned %v", cell, got.vals)
					}
				}
			}
		}()
	}
	wg.Wait()
	sc := cache.Sweep("sim", "fp", g, 3)
	for cell := 0; cell < 4; cell++ {
		rec := &Recorder{}
		if !sc.Load(cell, rec) {
			t.Fatalf("cell %d unreadable after concurrent writes", cell)
		}
	}
	// No temp files may survive the races.
	for _, f := range cacheEntryFiles(t, cache) {
		if strings.Contains(f, ".tmp") {
			t.Fatalf("leftover temp file %s", f)
		}
	}
}

// volatileBackend marks its cells non-reproducible, like the real-
// process backend.
type volatileBackend struct {
	FuncBackend
}

func (volatileBackend) CacheVolatile() bool { return true }

// TestCacheVolatileBackendBypasses: a volatile backend executes every
// cell on every run, writes no entries, and the counters say so.
func TestCacheVolatileBackendBypasses(t *testing.T) {
	g := NewGrid(Strings("mode", "a", "b"), Reps(2))
	var runs atomic.Int64
	b := volatileBackend{countingBackend(g, &runs)}
	if !IsVolatile(b) {
		t.Fatal("volatile backend not detected")
	}
	cache, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		if _, err := RunBackend(b, Options{Seed: 1, Cache: cache}, RepAxis); err != nil {
			t.Fatal(err)
		}
	}
	if runs.Load() != 8 {
		t.Fatalf("volatile backend executed %d cells, want 8 (no replay)", runs.Load())
	}
	cc := cache.Counters()
	if cc.Bypassed != 8 || cc.Hits != 0 || cc.Writes != 0 {
		t.Fatalf("counters = %+v, want 8 bypassed and nothing else", cc)
	}
	if files := cacheEntryFiles(t, cache); len(files) != 0 {
		t.Fatalf("volatile backend wrote %d entries", len(files))
	}
}

// TestCacheReplay: a fully cached lease replays to the same Collapsed a
// RunCells would produce; one missing cell makes the whole replay
// refuse.
func TestCacheReplay(t *testing.T) {
	g := NewGrid(Strings("mode", "a", "b"), Floats("x", 1, 2), Reps(2))
	seed := uint64(5)
	cache, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	b := FuncBackend{Engine: "prop", G: g, Run: propertyCell}
	if _, err := RunBackend(b, Options{Seed: seed, Cache: cache}, RepAxis); err != nil {
		t.Fatal(err)
	}
	sc := cache.Sweep("prop", "", g, seed)
	cells := []int{0, 3, 5}
	direct, err := RunCells(g, propertyCell, seed, 1, cells, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	replayed, ok := sc.Replay(g, cells, RepAxis)
	if !ok {
		t.Fatal("fully cached replay refused")
	}
	var got, want strings.Builder
	if err := replayed.WriteShard(&got); err != nil {
		t.Fatal(err)
	}
	if err := direct.WriteShard(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("replayed shard differs from executed shard")
	}
	if err := os.Remove(sc.entryPath(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.Replay(g, cells, RepAxis); ok {
		t.Fatal("replay with a missing cell accepted")
	}
	if _, ok := sc.Replay(g, []int{0, direct.Cells() * 10}, RepAxis); ok {
		t.Fatal("replay with an out-of-range cell accepted")
	}
}

// TestCacheNilSafety: nil caches and nil bindings run cells unwrapped.
func TestCacheNilSafety(t *testing.T) {
	var c *Cache
	if c.Dir() != "" {
		t.Fatal("nil cache has a dir")
	}
	if cc := c.Counters(); cc != (CacheCounters{}) {
		t.Fatal("nil cache has counters")
	}
	if sc := c.Sweep("sim", "", NewGrid(Reps(1)), 1); sc != nil {
		t.Fatal("nil cache produced a binding")
	}
	if sc := c.BypassSweep(); sc != nil {
		t.Fatal("nil cache produced a bypass binding")
	}
	var sc *SweepCache
	ran := false
	run := sc.WrapCell(func(p Point, rec *Recorder) error { ran = true; return nil })
	if err := run(Point{}, &Recorder{}); err != nil || !ran {
		t.Fatal("nil binding did not pass the cell through")
	}
	if sc.Load(0, &Recorder{}) {
		t.Fatal("nil binding hit")
	}
	sc.Store(0, &Recorder{})
	if _, ok := sc.Replay(NewGrid(Reps(1)), nil); ok {
		t.Fatal("nil binding replayed")
	}
	if _, err := NewCache(""); err == nil {
		t.Fatal("empty cache dir accepted")
	}
}

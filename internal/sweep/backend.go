package sweep

// A Backend binds a scenario grid to an execution engine. The harness is
// engine-agnostic: the same grid machinery (coordinate-derived seeds,
// worker pool, streaming collapse, sharding and exact merges) drives the
// discrete-event simulator, a trace replayer, or real OS processes —
// whatever the backend's Cell does with the Point it is handed.
type Backend interface {
	// Name identifies the execution engine (e.g. "sim", "replay", "real").
	Name() string
	// Grid declares the scenario grid the backend executes.
	Grid() (Grid, error)
	// Cell executes one grid cell, reporting measurements through rec.
	// Like CellFunc implementations, Cell must build isolated state from
	// p.Seed: the harness calls it from multiple goroutines and shares
	// nothing between cells.
	Cell(p Point, rec *Recorder) error
}

// FuncBackend adapts a (grid, cell-function) pair to the Backend
// interface.
type FuncBackend struct {
	// Engine is the backend name reported by Name.
	Engine string
	// G is the scenario grid.
	G Grid
	// Run executes one cell.
	Run CellFunc
}

// Name implements Backend.
func (b FuncBackend) Name() string { return b.Engine }

// Grid implements Backend.
func (b FuncBackend) Grid() (Grid, error) { return b.G, nil }

// Cell implements Backend.
func (b FuncBackend) Cell(p Point, rec *Recorder) error { return b.Run(p, rec) }

// RunBackend executes the backend's grid — or the shard of it selected
// by opts.Shard — on the streaming-collapse path, collapsing the named
// axes. Because seeds derive from grid coordinates, every Backend
// inherits the harness guarantees: results are identical at any
// opts.Parallel, and shard results merge (see Merge) into output
// byte-identical to an unsharded run. When opts.Cache is set, cell
// lookups are keyed under the backend's name and content fingerprint
// (see BackendFingerprint) — and skipped entirely for volatile
// backends (see Volatile), whose measurements are not reproducible.
func RunBackend(b Backend, opts Options, collapse ...string) (*Collapsed, error) {
	d := opts.dispatcher()
	if opts.Cache != nil {
		cb := CacheBinding{
			Cache:   opts.Cache,
			Backend: b.Name(),
			FP:      BackendFingerprint(b),
			Bypass:  IsVolatile(b),
		}
		switch dd := d.(type) {
		case PoolDispatcher:
			dd.Cache = cb
			d = dd
		case ShardDispatcher:
			dd.Cache = cb
			d = dd
		}
	}
	return DispatchBackend(b, d, opts.Seed, collapse...)
}

// BackendFingerprint returns the backend's content fingerprint — the
// signature of data the grid structure cannot cover, e.g. a replay
// backend's trace file — or "" when the backend does not provide one.
// It is the same `Fingerprint() string` contract the distributed
// coordinator verifies at join time (coord.Fingerprinter), reflected
// here so cache keys and join checks can never disagree about what
// identifies a backend's content.
func BackendFingerprint(b Backend) string {
	if f, ok := b.(interface{ Fingerprint() string }); ok {
		return f.Fingerprint()
	}
	return ""
}

// DispatchBackend executes the backend's grid through an arbitrary
// dispatcher — the in-process pool, the static shard slicer, or the
// distributed coordinator — collapsing the named axes. It is the one
// entry point behind local, sharded and multi-machine sweeps.
func DispatchBackend(b Backend, d Dispatcher, seed uint64, collapse ...string) (*Collapsed, error) {
	g, err := b.Grid()
	if err != nil {
		return nil, err
	}
	return d.Dispatch(g, b.Cell, seed, collapse...)
}

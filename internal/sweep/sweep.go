// Package sweep is a parallel experiment harness for the simulation
// engine: it fans a declarative grid of scenarios (preemption primitive,
// scheduler, cluster size, memory pressure, workload mix, ...) out across
// a bounded worker pool, hands every cell an isolated deterministic seed,
// and merges the per-run outcomes into aggregates in grid order.
//
// Because cell seeds derive from the cell's coordinates rather than from
// execution order (see sim.RNG.Stream), a sweep produces identical
// results at any parallelism level; output encoders are deterministic so
// -parallel 8 and -parallel 1 runs are byte-identical.
package sweep

import (
	"hadooppreempt/internal/metrics"
)

// Outcome is what one run reports back to the harness.
type Outcome struct {
	// Values are named scalar measurements; collapsing summarizes them
	// per remaining cell across the collapsed axes.
	Values map[string]float64
	// Labels are named categorical results (e.g. the chosen victim).
	Labels map[string]string
	// Extra carries a scenario-specific payload (trace, raw result);
	// the harness passes it through untouched.
	Extra any
}

// RunFunc executes one scenario cell. Implementations must build their
// own isolated simulation state (engine, cluster, ...) seeded from
// p.Seed or p.RNG(): the harness calls RunFunc from multiple goroutines
// and shares nothing between cells.
type RunFunc func(p Point) (Outcome, error)

// Options tunes sweep execution.
type Options struct {
	// Parallel bounds the worker pool; values below 1 run serially.
	Parallel int
	// Seed is the sweep-level base seed every cell seed derives from.
	Seed uint64
	// Shard restricts a RunCollapsed execution to one seed-stable slice
	// of the grid (the zero value runs every cell). Run ignores it.
	Shard Shard
	// Cache, when set, memoizes cell results persistently: cells whose
	// verified entry exists replay it instead of executing, and misses
	// are stored for future runs. Keys cover the grid fingerprint, the
	// backend identity (via RunBackend), the base seed and the cell
	// index, so warm reruns are byte-identical to cold ones. Run
	// ignores it; RunCollapsed caches under an empty backend identity.
	Cache *Cache
}

// PointResult pairs a cell with its outcome.
type PointResult struct {
	Point   Point
	Outcome Outcome
}

// Result is a completed sweep, in grid order regardless of the order
// cells finished in.
type Result struct {
	Grid   Grid
	Seed   uint64
	Points []PointResult
}

// Run executes every cell of the grid through the shared worker-pool
// loop (see runPool) with opts.Parallel goroutines and returns the
// outcomes in grid order. The first error (in grid order, not
// completion order) aborts the sweep's result; remaining in-flight
// cells still finish.
func Run(g Grid, run RunFunc, opts Options) (*Result, error) {
	points, err := g.Points(opts.Seed)
	if err != nil {
		return nil, err
	}
	cells := make([]int, len(points))
	for i := range cells {
		cells[i] = i
	}
	outcomes := make([]Outcome, len(points))
	err = runPool(points, cells, opts.Parallel, func() func(int) error {
		return func(i int) error {
			o, err := run(points[i])
			if err != nil {
				return err
			}
			outcomes[i] = o
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Grid: g, Seed: opts.Seed, Points: make([]PointResult, len(points))}
	for i := range points {
		res.Points[i] = PointResult{Point: points[i], Outcome: outcomes[i]}
	}
	return res, nil
}

// Aggregate is one group of cells after collapsing axes (typically the
// repetition axis).
type Aggregate struct {
	// Key identifies the group: the cells' shared coordinates.
	Key string
	// Labels maps each remaining axis name to the group's value label.
	Labels map[string]string
	// Count is the number of cells merged into the group.
	Count int
	// Metrics summarizes each outcome value across the group.
	Metrics map[string]metrics.Summary
	// First is the group's first cell in grid order, for typed axis
	// access and scenario payloads that do not aggregate.
	First PointResult
}

// Collapse groups the result over the named axes and summarizes every
// outcome value per group with metrics order statistics. Groups are
// returned in grid order. Collapsing no axes yields one group per cell.
// It shares the grouping engine of the streaming path (see Collapsed),
// so both produce identical aggregates.
func (r *Result) Collapse(axes ...string) []*Aggregate {
	c := r.Collapsed(axes...)
	out := make([]*Aggregate, len(c.Groups))
	for i, g := range c.Groups {
		out[i] = &Aggregate{
			Key:     g.Key,
			Labels:  g.Labels,
			Count:   g.Count,
			Metrics: g.Metrics,
			First:   r.Points[g.firstIndex],
		}
	}
	return out
}

// MetricNames returns every outcome value name observed across the
// result, in first-seen grid order.
func (r *Result) MetricNames() []string {
	c := metrics.NewCollector()
	for _, pr := range r.Points {
		c.ObserveAll(pr.Outcome.Values)
	}
	return c.Names()
}

package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"hadooppreempt/internal/atomicio"
)

// The cell-result cache memoizes finished cells on disk, keyed by
// everything that determines a cell's bytes: the grid structure
// fingerprint, the backend's name and content fingerprint, the sweep
// base seed and the cell index. Because cell seeds derive from grid
// coordinates (see Grid.Points), a cell's result is a pure function of
// that key, so replaying cached entries — at any parallelism, shard
// split or worker placement — produces output byte-identical to
// re-executing the cells.
//
// The cache is safe against every failure mode short of a wrong entry
// under a right key: entries are written atomically (unique temp file +
// rename), carry a version and a content checksum, and any anomaly on
// read — missing file, truncation, bit flips, version or key mismatch —
// is a silent miss that falls back to execution, never an error.

// cacheVersion guards the entry layout; bump it when the payload or
// envelope changes so stale entries read as misses, not garbage.
const cacheVersion = 1

// Cache is a persistent content-addressed store of cell results rooted
// at one directory. One Cache may serve many sweeps (each gets its own
// subdirectory derived from its identity) and many processes at once:
// writers never tear entries and readers never trust unverified bytes.
// A nil *Cache is valid and caches nothing.
type Cache struct {
	dir string

	hits     atomic.Int64
	misses   atomic.Int64
	bypassed atomic.Int64
	writes   atomic.Int64
}

// NewCache opens (creating if needed) the cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root directory ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// CacheCounters snapshots a cache's lookup statistics.
type CacheCounters struct {
	// Hits counts lookups answered from a verified entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that fell back to execution — absent
	// entries and entries rejected as corrupt, truncated or mismatched.
	Misses int64 `json:"misses"`
	// Bypassed counts cells that skipped the cache entirely because the
	// backend declared itself volatile (see Volatile).
	Bypassed int64 `json:"bypassed"`
	// Writes counts entries stored after a miss.
	Writes int64 `json:"writes"`
}

// Counters snapshots the cache's lookup statistics (zero for nil).
func (c *Cache) Counters() CacheCounters {
	if c == nil {
		return CacheCounters{}
	}
	return CacheCounters{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Bypassed: c.bypassed.Load(),
		Writes:   c.writes.Load(),
	}
}

// Volatile lets a backend opt out of caching. Backends whose cells are
// not pure functions of their seed — the real-process backend measures
// wall-clock time — must report true, or a warm rerun would replay
// stale measurements as if they were fresh.
type Volatile interface {
	CacheVolatile() bool
}

// IsVolatile reports whether the backend declares its cell results
// non-reproducible (see Volatile). Wrappers that forward an inner
// backend's cells should forward this too.
func IsVolatile(b any) bool {
	v, ok := b.(Volatile)
	return ok && v.CacheVolatile()
}

// Sweep binds the cache to one sweep identity: the backend's name and
// content fingerprint plus the grid's structure fingerprint and base
// seed. Entries live under a subdirectory derived from that identity,
// so sweeps never observe each other's cells — a different trace file,
// scenario, seed or axis layout lands in a different keyspace. A nil
// cache (or a grid that fails validation) yields a nil *SweepCache,
// which is valid and caches nothing.
func (c *Cache) Sweep(backend, backendFP string, g Grid, seed uint64) *SweepCache {
	if c == nil {
		return nil
	}
	if err := g.validate(); err != nil {
		return nil
	}
	key := cacheKey(backend, backendFP, g.Fingerprint(), seed)
	sum := sha256.Sum256([]byte(key))
	return &SweepCache{
		cache: c,
		dir:   filepath.Join(c.dir, hex.EncodeToString(sum[:])[:24]),
		key:   key,
		seed:  seed,
	}
}

// BypassSweep returns a binding that runs every cell and counts it as
// bypassed — the wiring for volatile backends, so operators can see a
// configured cache deliberately standing aside rather than silently
// missing.
func (c *Cache) BypassSweep() *SweepCache {
	if c == nil {
		return nil
	}
	return &SweepCache{cache: c, bypass: true}
}

// cacheKey is the full human-readable identity of one sweep's keyspace;
// it is stored in every entry and verified on read, so even a hash
// collision between two sweeps' directories could not cross-feed them.
func cacheKey(backend, backendFP, gridFP string, seed uint64) string {
	return "v" + strconv.Itoa(cacheVersion) +
		"\nbackend " + backend +
		"\nbackend_fp " + backendFP +
		"\ngrid " + gridFP +
		"\nseed " + strconv.FormatUint(seed, 10)
}

// SweepCache is a Cache bound to one sweep's identity. The zero of its
// pointer type (nil) is valid and caches nothing, so call sites wire it
// unconditionally.
type SweepCache struct {
	cache  *Cache
	dir    string
	key    string
	seed   uint64
	bypass bool
}

// cacheEntry is the on-disk envelope of one cell result. Sum is the
// hex sha256 of Payload, so bit flips and truncation inside the payload
// are detected; Key and Cell re-state the identity, so a file copied or
// renamed across keyspaces is rejected.
type cacheEntry struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Cell    int             `json:"cell"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// cachePayload is the serialized Recorder: exactly what a cell reported,
// in report order, so replaying it through the fold is indistinguishable
// from re-running the cell.
type cachePayload struct {
	Names     []string  `json:"names,omitempty"`
	Vals      []float64 `json:"vals,omitempty"`
	LabelKeys []string  `json:"label_keys,omitempty"`
	LabelVals []string  `json:"label_vals,omitempty"`
}

// entryPath names the cell's entry file.
func (sc *SweepCache) entryPath(cell int) string {
	return filepath.Join(sc.dir, "cell-"+strconv.Itoa(cell)+".json")
}

// Load fills rec with the cell's cached result and reports whether a
// verified entry was found. Any anomaly — missing file, truncated or
// corrupt JSON, checksum, version, key or cell mismatch — is a miss.
func (sc *SweepCache) Load(cell int, rec *Recorder) bool {
	if sc == nil {
		return false
	}
	if sc.bypass {
		sc.cache.bypassed.Add(1)
		return false
	}
	raw, err := os.ReadFile(sc.entryPath(cell))
	if err != nil {
		sc.cache.misses.Add(1)
		return false
	}
	var e cacheEntry
	if err := strictDecodeJSON(raw, &e); err != nil ||
		e.Version != cacheVersion || e.Key != sc.key || e.Cell != cell ||
		checksumHex(e.Payload) != e.Sum {
		sc.cache.misses.Add(1)
		return false
	}
	var p cachePayload
	if err := strictDecodeJSON(e.Payload, &p); err != nil ||
		len(p.Names) != len(p.Vals) || len(p.LabelKeys) != len(p.LabelVals) {
		sc.cache.misses.Add(1)
		return false
	}
	rec.names = append(rec.names, p.Names...)
	rec.vals = append(rec.vals, p.Vals...)
	rec.labelKeys = append(rec.labelKeys, p.LabelKeys...)
	rec.labelVals = append(rec.labelVals, p.LabelVals...)
	sc.cache.hits.Add(1)
	return true
}

// Store persists the cell's result. Failures are deliberately silent:
// the cache is an accelerator, and a full disk or permission problem
// must never fail a sweep that just computed a perfectly good result.
func (sc *SweepCache) Store(cell int, rec *Recorder) {
	if sc == nil || sc.bypass {
		return
	}
	payload, err := json.Marshal(cachePayload{
		Names:     rec.names,
		Vals:      rec.vals,
		LabelKeys: rec.labelKeys,
		LabelVals: rec.labelVals,
	})
	if err != nil {
		return
	}
	raw, err := json.Marshal(cacheEntry{
		Version: cacheVersion,
		Key:     sc.key,
		Cell:    cell,
		Sum:     checksumHex(payload),
		Payload: payload,
	})
	if err != nil {
		return
	}
	if err := os.MkdirAll(sc.dir, 0o755); err != nil {
		return
	}
	if atomicio.WriteFileAtomic(sc.entryPath(cell), append(raw, '\n')) == nil {
		sc.cache.writes.Add(1)
	}
}

// WrapCell layers the cache around a cell function: a verified entry
// answers the cell without executing it, a miss executes and stores. A
// nil receiver returns run unchanged; a bypass binding executes every
// cell and counts it.
func (sc *SweepCache) WrapCell(run CellFunc) CellFunc {
	if sc == nil {
		return run
	}
	return func(p Point, rec *Recorder) error {
		if sc.Load(p.Index, rec) {
			return nil
		}
		if err := run(p, rec); err != nil {
			return err
		}
		sc.Store(p.Index, rec)
		return nil
	}
}

// Replay builds the Collapsed a RunCells over exactly the given cells
// would produce, entirely from verified cache entries, collapsing the
// named axes. It reports ok=false — leaving nothing half-absorbed — if
// any cell lacks a verified entry. The distributed coordinator uses it
// to retire whole leases before issuing them to workers.
func (sc *SweepCache) Replay(g Grid, cells []int, collapse ...string) (*Collapsed, bool) {
	if sc == nil || sc.bypass {
		return nil, false
	}
	points, err := g.Points(sc.seed)
	if err != nil {
		return nil, false
	}
	c := newCollapsed(&g, sc.seed, collapse)
	rec := &Recorder{}
	for _, i := range cells {
		if i < 0 || i >= len(points) {
			return nil, false
		}
		rec.reset()
		if !sc.Load(i, rec) {
			return nil, false
		}
		c.fold(points[i], rec)
	}
	c.finalize()
	return c, true
}

// checksumHex is the entry content checksum: hex sha256.
func checksumHex(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// strictDecodeJSON unmarshals exactly one JSON value and rejects
// trailing data, so a torn concatenation of two entries cannot
// half-parse into a plausible result.
func strictDecodeJSON(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return fmt.Errorf("trailing data after entry")
	}
	return nil
}

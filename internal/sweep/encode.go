package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hadooppreempt/internal/metrics"
)

// Encoders render a collapsed result deterministically: rows follow grid
// order, metric names are sorted, and floats use a fixed format, so runs
// at different -parallel levels — and merges of shard files in any order
// — produce byte-identical output.

func formatStat(v float64) string {
	return strconv.FormatFloat(v, 'g', 9, 64)
}

// WriteCSV writes the result as long-form CSV: one row per (cell group,
// metric) with summary-statistic columns.
func (c *Collapsed) WriteCSV(w io.Writer) error {
	names := c.MetricNames()
	cw := csv.NewWriter(w)
	header := append(append([]string{}, c.GroupAxes...),
		"metric", "count", "mean", "std", "min", "p50", "p95", "max")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, g := range c.Groups {
		for _, name := range names {
			s, ok := g.Metrics[name]
			if !ok {
				continue
			}
			row := make([]string, 0, len(header))
			for _, a := range c.GroupAxes {
				row = append(row, g.Labels[a])
			}
			row = append(row, name, strconv.Itoa(s.Count),
				formatStat(s.Mean), formatStat(s.Std), formatStat(s.Min),
				formatStat(s.P50), formatStat(s.P95), formatStat(s.Max))
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonAggregate is the serialized form of one cell group.
type jsonAggregate struct {
	Key     string                     `json:"key"`
	Labels  map[string]string          `json:"labels"`
	Count   int                        `json:"count"`
	Metrics map[string]metrics.Summary `json:"metrics"`
	Extra   map[string]string          `json:"extra,omitempty"`
}

// WriteJSON writes the result as an indented JSON document.
func (c *Collapsed) WriteJSON(w io.Writer) error {
	out := struct {
		Seed  uint64          `json:"seed"`
		Cells []jsonAggregate `json:"cells"`
	}{Seed: c.Seed}
	for _, g := range c.Groups {
		ja := jsonAggregate{
			Key:     g.Key,
			Labels:  g.Labels,
			Count:   g.Count,
			Metrics: g.Metrics,
		}
		if len(g.Extra) > 0 {
			ja.Extra = g.Extra
		}
		out.Cells = append(out.Cells, ja)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteTable writes the result as an aligned text table with one row
// per cell group and one mean column per metric.
func (c *Collapsed) WriteTable(w io.Writer) error {
	names := c.MetricNames()
	var b strings.Builder
	for _, a := range c.GroupAxes {
		fmt.Fprintf(&b, "%-12s", a)
	}
	fmt.Fprintf(&b, "%6s", "runs")
	for _, n := range names {
		fmt.Fprintf(&b, " %18s", n)
	}
	b.WriteByte('\n')
	for _, g := range c.Groups {
		for _, a := range c.GroupAxes {
			fmt.Fprintf(&b, "%-12s", g.Labels[a])
		}
		fmt.Fprintf(&b, "%6d", g.Count)
		for _, n := range names {
			if s, ok := g.Metrics[n]; ok {
				fmt.Fprintf(&b, " %18.3f", s.Mean)
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Write renders the result in the named format: "csv", "json" or
// "table".
func (c *Collapsed) Write(w io.Writer, format string) error {
	switch format {
	case "csv":
		return c.WriteCSV(w)
	case "json":
		return c.WriteJSON(w)
	case "table":
		return c.WriteTable(w)
	default:
		return fmt.Errorf("sweep: unknown format %q (want table, csv or json)", format)
	}
}

// WriteCSV writes the materialized result collapsed over the given axes
// as long-form CSV.
func WriteCSV(w io.Writer, r *Result, collapse ...string) error {
	return r.Collapsed(collapse...).WriteCSV(w)
}

// WriteJSON writes the materialized result collapsed over the given
// axes as an indented JSON document.
func WriteJSON(w io.Writer, r *Result, collapse ...string) error {
	return r.Collapsed(collapse...).WriteJSON(w)
}

// WriteTable writes the materialized result collapsed over the given
// axes as an aligned text table.
func WriteTable(w io.Writer, r *Result, collapse ...string) error {
	return r.Collapsed(collapse...).WriteTable(w)
}

package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hadooppreempt/internal/metrics"
)

// Encoders render a collapsed result deterministically: rows follow grid
// order, metric names are sorted, and floats use a fixed format, so runs
// at different -parallel levels — and merges of shard files in any order
// — produce byte-identical output.

func formatStat(v float64) string {
	return strconv.FormatFloat(v, 'g', 9, 64)
}

// WriteCSV writes the result as long-form CSV: one row per (cell group,
// metric) with summary-statistic columns.
func (c *Collapsed) WriteCSV(w io.Writer) error {
	names := c.MetricNames()
	cw := csv.NewWriter(w)
	header := append(append([]string{}, c.GroupAxes...),
		"metric", "count", "mean", "std", "min", "p50", "p95", "max")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, g := range c.Groups {
		for _, name := range names {
			s, ok := g.Metrics[name]
			if !ok {
				continue
			}
			row := make([]string, 0, len(header))
			for _, a := range c.GroupAxes {
				row = append(row, g.Labels[a])
			}
			row = append(row, name, strconv.Itoa(s.Count),
				formatStat(s.Mean), formatStat(s.Std), formatStat(s.Min),
				formatStat(s.P50), formatStat(s.P95), formatStat(s.Max))
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonAggregate is the serialized form of one cell group.
type jsonAggregate struct {
	Key     string                     `json:"key"`
	Labels  map[string]string          `json:"labels"`
	Count   int                        `json:"count"`
	Metrics map[string]metrics.Summary `json:"metrics"`
	Extra   map[string]string          `json:"extra,omitempty"`
}

// WriteJSON writes the result as an indented JSON document.
func (c *Collapsed) WriteJSON(w io.Writer) error {
	out := struct {
		Seed  uint64          `json:"seed"`
		Cells []jsonAggregate `json:"cells"`
	}{Seed: c.Seed}
	for _, g := range c.Groups {
		ja := jsonAggregate{
			Key:     g.Key,
			Labels:  g.Labels,
			Count:   g.Count,
			Metrics: g.Metrics,
		}
		if len(g.Extra) > 0 {
			ja.Extra = g.Extra
		}
		out.Cells = append(out.Cells, ja)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteTable writes the result as an aligned text table with one row
// per cell group and one mean column per metric.
func (c *Collapsed) WriteTable(w io.Writer) error {
	names := c.MetricNames()
	var b strings.Builder
	for _, a := range c.GroupAxes {
		fmt.Fprintf(&b, "%-12s", a)
	}
	fmt.Fprintf(&b, "%6s", "runs")
	for _, n := range names {
		fmt.Fprintf(&b, " %18s", n)
	}
	b.WriteByte('\n')
	for _, g := range c.Groups {
		for _, a := range c.GroupAxes {
			fmt.Fprintf(&b, "%-12s", g.Labels[a])
		}
		fmt.Fprintf(&b, "%6d", g.Count)
		for _, n := range names {
			if s, ok := g.Metrics[n]; ok {
				fmt.Fprintf(&b, " %18.3f", s.Mean)
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteSeries writes the result as plot-ready CSV: one block per
// metric, with the last surviving axis as the x column and one series
// column per combination of the remaining axes, cells holding group
// means. Blocks are introduced by a "# metric NAME" comment line and
// separated by a blank line — a layout gnuplot ("set datafile
// commentschars") and pandas consume without manual massaging.
func (c *Collapsed) WriteSeries(w io.Writer) error {
	if len(c.GroupAxes) == 0 {
		return fmt.Errorf("sweep: series format needs at least one surviving axis")
	}
	xAxis := c.GroupAxes[len(c.GroupAxes)-1]
	seriesAxes := c.GroupAxes[:len(c.GroupAxes)-1]
	seriesKey := func(g *Group) string {
		if len(seriesAxes) == 0 {
			return "mean"
		}
		var b strings.Builder
		for _, a := range seriesAxes {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(a)
			b.WriteByte('=')
			b.WriteString(g.Labels[a])
		}
		return b.String()
	}
	// Column and row orders follow the groups' grid order, so output is
	// deterministic at any parallelism and across merges.
	var xs, series []string
	seenX := make(map[string]int)
	seenSeries := make(map[string]int)
	type coord struct{ s, x int }
	cells := make(map[coord]*Group, len(c.Groups))
	for _, g := range c.Groups {
		x := g.Labels[xAxis]
		xi, ok := seenX[x]
		if !ok {
			xi = len(xs)
			seenX[x] = xi
			xs = append(xs, x)
		}
		sk := seriesKey(g)
		si, ok := seenSeries[sk]
		if !ok {
			si = len(series)
			seenSeries[sk] = si
			series = append(series, sk)
		}
		cells[coord{si, xi}] = g
	}
	names := c.MetricNames()
	for mi, name := range names {
		if mi > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# metric %s\n", name); err != nil {
			return err
		}
		cw := csv.NewWriter(w)
		if err := cw.Write(append([]string{xAxis}, series...)); err != nil {
			return err
		}
		row := make([]string, 1+len(series))
		for xi, x := range xs {
			row[0] = x
			for si := range series {
				row[1+si] = ""
				if g, ok := cells[coord{si, xi}]; ok {
					if s, ok := g.Metrics[name]; ok {
						row[1+si] = formatStat(s.Mean)
					}
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}

// Write renders the result in the named format: "csv", "json", "table"
// or "series".
func (c *Collapsed) Write(w io.Writer, format string) error {
	switch format {
	case "csv":
		return c.WriteCSV(w)
	case "json":
		return c.WriteJSON(w)
	case "table":
		return c.WriteTable(w)
	case "series":
		return c.WriteSeries(w)
	default:
		return fmt.Errorf("sweep: unknown format %q (want table, csv, json or series)", format)
	}
}

// WriteCSV writes the materialized result collapsed over the given axes
// as long-form CSV.
func WriteCSV(w io.Writer, r *Result, collapse ...string) error {
	return r.Collapsed(collapse...).WriteCSV(w)
}

// WriteJSON writes the materialized result collapsed over the given
// axes as an indented JSON document.
func WriteJSON(w io.Writer, r *Result, collapse ...string) error {
	return r.Collapsed(collapse...).WriteJSON(w)
}

// WriteTable writes the materialized result collapsed over the given
// axes as an aligned text table.
func WriteTable(w io.Writer, r *Result, collapse ...string) error {
	return r.Collapsed(collapse...).WriteTable(w)
}

// WriteSeries writes the materialized result collapsed over the given
// axes as plot-ready per-series CSV blocks.
func WriteSeries(w io.Writer, r *Result, collapse ...string) error {
	return r.Collapsed(collapse...).WriteSeries(w)
}

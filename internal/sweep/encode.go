package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hadooppreempt/internal/metrics"
)

// Encoders render a collapsed result deterministically: rows follow grid
// order, metric names are sorted, and floats use a fixed format, so runs
// at different -parallel levels produce byte-identical output.

// sortedMetricNames returns the union of metric names across aggregates,
// sorted.
func sortedMetricNames(aggs []*Aggregate) []string {
	seen := make(map[string]bool)
	var names []string
	for _, a := range aggs {
		for n := range a.Metrics {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// groupAxes returns the axis names that survive collapsing, in grid
// order.
func groupAxes(g Grid, collapse []string) []string {
	drop := make(map[string]bool, len(collapse))
	for _, a := range collapse {
		drop[a] = true
	}
	var names []string
	for _, a := range g.Axes {
		if !drop[a.Name] {
			names = append(names, a.Name)
		}
	}
	return names
}

func formatStat(v float64) string {
	return strconv.FormatFloat(v, 'g', 9, 64)
}

// WriteCSV writes the result collapsed over the given axes as long-form
// CSV: one row per (cell group, metric) with summary-statistic columns.
func WriteCSV(w io.Writer, r *Result, collapse ...string) error {
	axes := groupAxes(r.Grid, collapse)
	aggs := r.Collapse(collapse...)
	names := sortedMetricNames(aggs)
	cw := csv.NewWriter(w)
	header := append(append([]string{}, axes...),
		"metric", "count", "mean", "std", "min", "p50", "p95", "max")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, agg := range aggs {
		for _, name := range names {
			s, ok := agg.Metrics[name]
			if !ok {
				continue
			}
			row := make([]string, 0, len(header))
			for _, a := range axes {
				row = append(row, agg.Labels[a])
			}
			row = append(row, name, strconv.Itoa(s.Count),
				formatStat(s.Mean), formatStat(s.Std), formatStat(s.Min),
				formatStat(s.P50), formatStat(s.P95), formatStat(s.Max))
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonAggregate is the serialized form of an Aggregate (without the raw
// First payload, which need not be serializable).
type jsonAggregate struct {
	Key     string                     `json:"key"`
	Labels  map[string]string          `json:"labels"`
	Count   int                        `json:"count"`
	Metrics map[string]metrics.Summary `json:"metrics"`
	Extra   map[string]string          `json:"extra,omitempty"`
}

// WriteJSON writes the collapsed result as an indented JSON document.
func WriteJSON(w io.Writer, r *Result, collapse ...string) error {
	aggs := r.Collapse(collapse...)
	out := struct {
		Seed  uint64          `json:"seed"`
		Cells []jsonAggregate `json:"cells"`
	}{Seed: r.Seed}
	for _, agg := range aggs {
		ja := jsonAggregate{
			Key:     agg.Key,
			Labels:  agg.Labels,
			Count:   agg.Count,
			Metrics: agg.Metrics,
		}
		if len(agg.First.Outcome.Labels) > 0 {
			ja.Extra = agg.First.Outcome.Labels
		}
		out.Cells = append(out.Cells, ja)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteTable writes the collapsed result as an aligned text table with
// one row per cell group and one mean column per metric.
func WriteTable(w io.Writer, r *Result, collapse ...string) error {
	axes := groupAxes(r.Grid, collapse)
	aggs := r.Collapse(collapse...)
	names := sortedMetricNames(aggs)
	var b strings.Builder
	for _, a := range axes {
		fmt.Fprintf(&b, "%-12s", a)
	}
	fmt.Fprintf(&b, "%6s", "runs")
	for _, n := range names {
		fmt.Fprintf(&b, " %18s", n)
	}
	b.WriteByte('\n')
	for _, agg := range aggs {
		for _, a := range axes {
			fmt.Fprintf(&b, "%-12s", agg.Labels[a])
		}
		fmt.Fprintf(&b, "%6d", agg.Count)
		for _, n := range names {
			if s, ok := agg.Metrics[n]; ok {
				fmt.Fprintf(&b, " %18.3f", s.Mean)
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// seriesResult builds a small deterministic collapsed result: two
// series (mode a/b) over three x positions.
func seriesResult(t *testing.T) *Collapsed {
	t.Helper()
	g := NewGrid(Strings("mode", "a", "b"), Ints("x", 1, 2, 3), Reps(2))
	col, err := RunCollapsed(g, func(p Point, rec *Recorder) error {
		base := float64(p.Int("x")) * 10
		if p.Label("mode") == "b" {
			base += 100
		}
		rec.Observe("metric_one", base+float64(p.Int(RepAxis)))
		return nil
	}, Options{Parallel: 2, Seed: 1}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// TestWriteSeriesLayout checks the plot-ready shape: a comment header
// per metric, x in the first column, one column per series, means in
// the cells.
func TestWriteSeriesLayout(t *testing.T) {
	col := seriesResult(t)
	var out bytes.Buffer
	if err := col.WriteSeries(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	want := []string{
		"# metric metric_one",
		"x,mode=a,mode=b",
		"1,10.5,110.5",
		"2,20.5,120.5",
		"3,30.5,130.5",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), out.String())
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestWriteSeriesMultiMetricBlocks separates metrics with blank lines.
func TestWriteSeriesMultiMetricBlocks(t *testing.T) {
	g := NewGrid(Ints("x", 1, 2), Reps(1))
	col, err := RunCollapsed(g, func(p Point, rec *Recorder) error {
		rec.Observe("beta", 2)
		rec.Observe("alpha", 1)
		return nil
	}, Options{Seed: 1}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := col.WriteSeries(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# metric alpha\n") || !strings.Contains(s, "\n\n# metric beta\n") {
		t.Fatalf("expected sorted metric blocks separated by a blank line:\n%s", s)
	}
	// Single surviving axis: the lone series column is named "mean".
	if !strings.Contains(s, "x,mean\n") {
		t.Fatalf("expected x,mean header for a single-axis result:\n%s", s)
	}
}

// TestWriteSeriesParallelismByteIdentical extends the determinism
// guarantee to the series encoder.
func TestWriteSeriesParallelismByteIdentical(t *testing.T) {
	render := func(parallel int) string {
		g := NewGrid(Strings("mode", "a", "b"), Ints("x", 1, 2, 3), Reps(3))
		col, err := RunCollapsed(g, func(p Point, rec *Recorder) error {
			rec.Observe("v", p.RNG().Float64())
			return nil
		}, Options{Parallel: parallel, Seed: 9}, RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := col.WriteSeries(&out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if render(1) != render(8) {
		t.Fatal("series output differs between -parallel 1 and -parallel 8")
	}
}

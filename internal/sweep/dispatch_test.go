package sweep

import (
	"strings"
	"testing"

	"hadooppreempt/internal/sim"
)

// TestRunCellsRecoversPanic: a panicking cell function becomes that
// cell's structured error — named by its coordinates, carrying the
// panic value — instead of killing the process. Backends run arbitrary
// engine code (and injected chaos), so a worker must survive any cell.
func TestRunCellsRecoversPanic(t *testing.T) {
	g := NewGrid(Strings("a", "x", "y"), Reps(3))
	run := func(pt Point, rec *Recorder) error {
		if pt.Index == 2 {
			panic("synthetic cell panic")
		}
		rec.Observe("m0", float64(pt.Index))
		return nil
	}
	_, err := RunCells(g, run, 1, 4, nil)
	if err == nil {
		t.Fatal("panicking cell did not surface an error")
	}
	for _, frag := range []string{`sweep: cell "`, "panic: synthetic cell panic"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q missing %q", err, frag)
		}
	}
	// The panic error carries a stack trace for diagnosis.
	if !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("error %q missing the stack trace", err)
	}
}

// TestDispatchersMatchRunCollapsed checks, over random grids, that the
// pool and shard dispatchers used directly produce output byte-identical
// to the Options-driven entry points they back.
func TestDispatchersMatchRunCollapsed(t *testing.T) {
	rng := sim.NewRNG(7)
	for trial := 0; trial < 20; trial++ {
		g := randomGrid(rng)
		collapse := randomCollapse(rng, g)
		seed := rng.Uint64()
		want, err := RunCollapsed(g, propertyCell, Options{Parallel: 3, Seed: seed}, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := PoolDispatcher{Parallel: 3}.Dispatch(g, propertyCell, seed, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		if encodeAll(t, pool) != encodeAll(t, want) {
			t.Fatalf("trial %d: PoolDispatcher output differs from RunCollapsed", trial)
		}
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			sh := Shard{Index: i, Count: n}
			viaOpts, err := RunCollapsed(g, propertyCell, Options{Parallel: 2, Seed: seed, Shard: sh}, collapse...)
			if err != nil {
				t.Fatal(err)
			}
			viaDispatch, err := ShardDispatcher{Shard: sh, Parallel: 2}.Dispatch(g, propertyCell, seed, collapse...)
			if err != nil {
				t.Fatal(err)
			}
			if encodeAll(t, viaDispatch) != encodeAll(t, viaOpts) {
				t.Fatalf("trial %d shard %s: ShardDispatcher output differs from Options.Shard", trial, sh)
			}
			if viaDispatch.Shard != sh {
				t.Fatalf("trial %d: ShardDispatcher result carries shard %s, want %s", trial, viaDispatch.Shard, sh)
			}
		}
	}
}

// TestRunCellsSubsetsMerge is the distributed-execution contract with
// the network removed: any partition of the grid's cells into RunCells
// batches merges (via MergeSubsets, in any batch order) into output
// byte-identical to a single-process sweep.
func TestRunCellsSubsetsMerge(t *testing.T) {
	rng := sim.NewRNG(99)
	for trial := 0; trial < 20; trial++ {
		g := randomGrid(rng)
		collapse := randomCollapse(rng, g)
		seed := rng.Uint64()
		full, err := RunCollapsed(g, propertyCell, Options{Parallel: 4, Seed: seed}, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		want := encodeAll(t, full)
		cells := rng.Perm(g.Size())
		var parts []*Collapsed
		for len(cells) > 0 {
			n := 1 + rng.Intn(len(cells))
			batch, rest := cells[:n], cells[n:]
			part, err := RunCells(g, propertyCell, seed, 2, batch, collapse...)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, part)
			cells = rest
		}
		perm := rng.Perm(len(parts))
		shuffled := make([]*Collapsed, len(parts))
		for i, p := range perm {
			shuffled[i] = parts[p]
		}
		merged, err := MergeSubsets(shuffled...)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeAll(t, merged); got != want {
			t.Fatalf("trial %d (%d parts): merged subset output differs\nwant:\n%s\ngot:\n%s",
				trial, len(parts), want, got)
		}
	}
}

// TestRunCellsValidation rejects out-of-range and duplicate cell
// indices instead of silently mis-counting.
func TestRunCellsValidation(t *testing.T) {
	g := testGrid(2)
	if _, err := RunCells(g, synthCell, 1, 1, []int{0, g.Size()}, RepAxis); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	if _, err := RunCells(g, synthCell, 1, 1, []int{-1}, RepAxis); err == nil {
		t.Fatal("negative cell accepted")
	}
	if _, err := RunCells(g, synthCell, 1, 1, []int{1, 1}, RepAxis); err == nil {
		t.Fatal("duplicate cell accepted")
	}
	empty, err := RunCells(g, synthCell, 1, 1, []int{}, RepAxis)
	if err != nil {
		t.Fatalf("empty cell list rejected: %v", err)
	}
	for _, grp := range empty.Groups {
		if grp.Count != 0 {
			t.Fatal("empty run folded cells")
		}
	}
}

// TestMergeSubsetsValidation rejects overlapping, incomplete and
// shard-sliced parts.
func TestMergeSubsetsValidation(t *testing.T) {
	g := testGrid(2)
	part := func(cells ...int) *Collapsed {
		c, err := RunCells(g, synthCell, 1, 1, cells, RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	all := make([]int, g.Size())
	for i := range all {
		all[i] = i
	}
	if _, err := MergeSubsets(); err == nil {
		t.Fatal("empty subset merge accepted")
	}
	if _, err := MergeSubsets(part(all[:2]...)); err == nil {
		t.Fatal("incomplete single part accepted")
	}
	if _, err := MergeSubsets(part(all[:2]...), part(all[1:]...)); err == nil {
		t.Fatal("overlapping parts accepted")
	}
	if _, err := MergeSubsets(part(all[:2]...), part(all[3:]...)); err == nil {
		t.Fatal("gapped parts accepted")
	}
	sharded, err := RunCollapsed(g, synthCell, Options{Seed: 1, Shard: Shard{Index: 0, Count: 2}}, RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSubsets(sharded); err == nil {
		t.Fatal("shard slice accepted by subset merge")
	}
	if _, err := MergeSubsets(part(all[:2]...), part(all[2:]...)); err != nil {
		t.Fatalf("valid subset partition rejected: %v", err)
	}
	if _, err := MergeSubsets(part(all...)); err != nil {
		t.Fatalf("full single part rejected: %v", err)
	}
}

// TestGridFingerprint: equal structure hashes equally; any change to
// axis names, labels, order or pairing changes the fingerprint.
func TestGridFingerprint(t *testing.T) {
	base := NewGrid(Strings("a", "x", "y"), Ints("n", 1, 2)).Pair("a")
	if base.Fingerprint() != NewGrid(Strings("a", "x", "y"), Ints("n", 1, 2)).Pair("a").Fingerprint() {
		t.Fatal("identical grids fingerprint differently")
	}
	variants := []Grid{
		NewGrid(Strings("a", "x", "y"), Ints("n", 1, 2)),                // pairing dropped
		NewGrid(Strings("a", "x", "z"), Ints("n", 1, 2)).Pair("a"),      // label changed
		NewGrid(Strings("b", "x", "y"), Ints("n", 1, 2)).Pair("b"),      // axis renamed
		NewGrid(Ints("n", 1, 2), Strings("a", "x", "y")).Pair("a"),      // axis order swapped
		NewGrid(Strings("a", "x", "y"), Ints("n", 1, 2, 3)).Pair("a"),   // value added
		NewGrid(Strings("a", "x", "y", "z"), Ints("n", 1, 2)).Pair("a"), // value added to paired axis
	}
	seen := map[string]bool{base.Fingerprint(): true}
	for i, v := range variants {
		fp := v.Fingerprint()
		if seen[fp] {
			t.Fatalf("variant %d collides with an earlier fingerprint", i)
		}
		seen[fp] = true
	}
	if len(base.Fingerprint()) != 64 || strings.ToLower(base.Fingerprint()) != base.Fingerprint() {
		t.Fatal("fingerprint is not lowercase hex sha256")
	}
}

// TestGroupOfCell checks the cell-to-group arithmetic against the fold
// path: running exactly one cell must increment exactly the group
// GroupOfCell names.
func TestGroupOfCell(t *testing.T) {
	rng := sim.NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		g := randomGrid(rng)
		collapse := randomCollapse(rng, g)
		skel, err := Skeleton(g, 1, collapse...)
		if err != nil {
			t.Fatal(err)
		}
		for cell := 0; cell < g.Size(); cell++ {
			want, ok := skel.GroupOfCell(cell)
			if !ok {
				t.Fatalf("trial %d: GroupOfCell(%d) unavailable on skeleton", trial, cell)
			}
			one, err := RunCells(g, propertyCell, 1, 1, []int{cell}, collapse...)
			if err != nil {
				t.Fatal(err)
			}
			for gi, grp := range one.Groups {
				if (grp.Count == 1) != (gi == want) {
					t.Fatalf("trial %d cell %d: fold hit group %d, GroupOfCell says %d", trial, cell, gi, want)
				}
			}
		}
		if _, ok := skel.GroupOfCell(-1); ok {
			t.Fatal("negative cell mapped")
		}
		if _, ok := skel.GroupOfCell(g.Size()); ok {
			t.Fatal("out-of-range cell mapped")
		}
	}
}

package sweep

import (
	"sort"
	"strings"

	"hadooppreempt/internal/metrics"
)

// The streaming-collapse engine folds outcomes into per-group aggregates
// as cells complete, instead of materializing every cell's Outcome and
// regrouping afterwards. Metric names are interned to dense ids, group
// membership is arithmetic on grid coordinates, and each worker reuses
// one Recorder across its cells, so a full 20-repetition grid runs with
// near-constant allocation per cell. Aggregates retain the raw sample
// multiset per (group, metric); because Summarize orders samples before
// computing anything, aggregates built from disjoint cell subsets merge
// — in any order — into results byte-identical to a single pass, which
// is what makes cross-process sharding pure partitioning.

// Recorder receives one cell's measurements in the streaming-collapse
// path. The worker that owns it reuses it across cells, so a steady
// cell records without allocating; implementations must not retain it
// past the cell call.
type Recorder struct {
	names     []string
	vals      []float64
	labelKeys []string
	labelVals []string
}

// Observe records one scalar measurement under name.
func (r *Recorder) Observe(name string, v float64) {
	r.names = append(r.names, name)
	r.vals = append(r.vals, v)
}

// Label records a categorical result (e.g. the chosen victim). Labels
// are retained for the group's first cell in grid order, mirroring the
// Aggregate.First semantics of the materializing path.
func (r *Recorder) Label(key, value string) {
	r.labelKeys = append(r.labelKeys, key)
	r.labelVals = append(r.labelVals, value)
}

// Outcome converts the recording into the materializing path's map
// form. Only the compatibility adapters need it; the streaming path
// never builds these maps.
func (r *Recorder) Outcome() Outcome {
	o := Outcome{}
	if len(r.names) > 0 {
		o.Values = make(map[string]float64, len(r.names))
		for i, n := range r.names {
			o.Values[n] = r.vals[i]
		}
	}
	if len(r.labelKeys) > 0 {
		o.Labels = make(map[string]string, len(r.labelKeys))
		for i, k := range r.labelKeys {
			o.Labels[k] = r.labelVals[i]
		}
	}
	return o
}

func (r *Recorder) reset() {
	r.names = r.names[:0]
	r.vals = r.vals[:0]
	r.labelKeys = r.labelKeys[:0]
	r.labelVals = r.labelVals[:0]
}

// record replays an Outcome into the recorder in sorted key order, so
// adapted map-based runs stay deterministic.
func (r *Recorder) record(o Outcome) {
	keys := make([]string, 0, len(o.Values))
	for k := range o.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.Observe(k, o.Values[k])
	}
	keys = keys[:0]
	for k := range o.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.Label(k, o.Labels[k])
	}
}

// CellFunc executes one scenario cell, reporting measurements through
// rec. Like RunFunc, implementations must build isolated state from
// p.Seed: the harness calls them from multiple goroutines.
type CellFunc func(p Point, rec *Recorder) error

// OutcomeCell adapts a map-based RunFunc to the streaming interface.
// The adapter still pays the per-cell map allocations of the legacy
// path; native CellFunc implementations avoid them.
func OutcomeCell(run RunFunc) CellFunc {
	return func(p Point, rec *Recorder) error {
		o, err := run(p)
		if err != nil {
			return err
		}
		rec.record(o)
		return nil
	}
}

// Group is one cell group of a Collapsed result: the cells sharing
// coordinates on every non-collapsed axis.
type Group struct {
	// Key identifies the group: the shared "axis=label" coordinates.
	Key string
	// Labels maps each remaining axis name to the group's value label.
	Labels map[string]string
	// Count is the number of cells folded into the group so far.
	Count int
	// Metrics summarizes each recorded value across the group; it is
	// populated when the run (or merge) completes.
	Metrics map[string]metrics.Summary
	// Extra carries the categorical labels recorded by the group's
	// first cell in grid order (empty until that cell ran).
	Extra map[string]string
	// First is the group's first cell in grid order, for typed axis
	// access. It is only valid for in-process runs that executed that
	// cell; results read back from shard files carry a zero Point.
	First Point

	// firstIndex is the grid index of the group's first cell, used to
	// decide which shard contributes Extra/First.
	firstIndex int
	// hasFirst reports whether this result actually ran the first cell.
	hasFirst bool
	// samples holds the raw sample multiset per interned metric id —
	// the state that makes merges exact, including percentiles.
	samples [][]float64
}

// Collapsed is a sweep aggregated over collapsed axes as cells
// complete. Memory is bounded by groups x metrics x samples rather than
// by cells x outcome maps, and disjoint Collapsed results of the same
// sweep merge into the single-process result exactly.
type Collapsed struct {
	// Seed is the sweep-level base seed.
	Seed uint64
	// CollapsedAxes are the axes folded away (typically RepAxis).
	CollapsedAxes []string
	// GroupAxes are the surviving axes, in grid order.
	GroupAxes []string
	// Groups lists every cell group in grid order — all of them, even
	// ones a shard ran no cells of, so shard results align for merging.
	Groups []*Group
	// Shard is the slice of the grid this result covers (Count <= 1
	// means the whole grid).
	Shard Shard

	// cells is the grid size, recorded for shard validation.
	cells int
	// groupStride maps axis position to the group-index stride (0 for
	// collapsed axes): group lookup is arithmetic, not string keys.
	groupStride []int
	// cellStride maps axis position to the cell-index stride, kept so
	// results built from a grid in this process can map cell indices to
	// groups (see GroupOfCell); results read back from shard files do
	// not carry it.
	cellStride []int
	// names and ids intern metric names to dense sample-slice indices.
	names []string
	ids   map[string]int
}

// newCollapsed builds the full group skeleton for a grid in grid order.
// Group enumeration is row-major over the surviving axes, which equals
// the first-appearance order of groups under row-major cell iteration.
func newCollapsed(g *Grid, seed uint64, collapse []string) *Collapsed {
	drop := make(map[string]bool, len(collapse))
	for _, a := range collapse {
		drop[a] = true
	}
	c := &Collapsed{
		Seed:          seed,
		CollapsedAxes: append([]string(nil), collapse...),
		ids:           make(map[string]int),
		groupStride:   make([]int, len(g.Axes)),
	}
	cellStride := make([]int, len(g.Axes))
	stride := 1
	for d := len(g.Axes) - 1; d >= 0; d-- {
		cellStride[d] = stride
		stride *= len(g.Axes[d].Values)
	}
	c.cells = stride
	c.cellStride = cellStride
	groups := 1
	for d := len(g.Axes) - 1; d >= 0; d-- {
		if drop[g.Axes[d].Name] {
			continue
		}
		c.groupStride[d] = groups
		groups *= len(g.Axes[d].Values)
	}
	for _, a := range g.Axes {
		if !drop[a.Name] {
			c.GroupAxes = append(c.GroupAxes, a.Name)
		}
	}
	c.Groups = make([]*Group, groups)
	idx := make([]int, len(g.Axes)) // collapsed axes stay at 0
	for gi := range c.Groups {
		labels := make(map[string]string, len(c.GroupAxes))
		var key strings.Builder
		first := 0
		for d, a := range g.Axes {
			if drop[a.Name] {
				continue
			}
			label := a.Values[idx[d]].Label
			labels[a.Name] = label
			if key.Len() > 0 {
				key.WriteByte(' ')
			}
			key.WriteString(a.Name)
			key.WriteByte('=')
			key.WriteString(label)
			first += idx[d] * cellStride[d]
		}
		c.Groups[gi] = &Group{Key: key.String(), Labels: labels, firstIndex: first}
		for d := len(g.Axes) - 1; d >= 0; d-- {
			if drop[g.Axes[d].Name] {
				continue
			}
			idx[d]++
			if idx[d] < len(g.Axes[d].Values) {
				break
			}
			idx[d] = 0
		}
	}
	return c
}

// fold streams one completed cell into its group. Callers serialize
// access; the fold itself is a handful of appends.
func (c *Collapsed) fold(p Point, rec *Recorder) {
	gi := 0
	for d, s := range c.groupStride {
		gi += p.idx[d] * s
	}
	g := c.Groups[gi]
	g.Count++
	for k, name := range rec.names {
		id, ok := c.ids[name]
		if !ok {
			id = len(c.names)
			c.ids[name] = id
			c.names = append(c.names, name)
		}
		for id >= len(g.samples) {
			g.samples = append(g.samples, nil)
		}
		g.samples[id] = append(g.samples[id], rec.vals[k])
	}
	if p.Index == g.firstIndex {
		g.First = p
		g.hasFirst = true
		if len(rec.labelKeys) > 0 {
			g.Extra = make(map[string]string, len(rec.labelKeys))
			for k := range rec.labelKeys {
				g.Extra[rec.labelKeys[k]] = rec.labelVals[k]
			}
		}
	}
}

// finalize computes every group's summaries from its sample multisets.
func (c *Collapsed) finalize() {
	for _, g := range c.Groups {
		g.Metrics = make(map[string]metrics.Summary, len(g.samples))
		for id, s := range g.samples {
			if len(s) == 0 {
				continue
			}
			g.Metrics[c.names[id]] = metrics.Summarize(s)
		}
	}
}

// MetricNames returns every metric name observed across the result,
// sorted (first-seen order is not deterministic under parallelism).
func (c *Collapsed) MetricNames() []string {
	names := append([]string(nil), c.names...)
	sort.Strings(names)
	return names
}

// Cells returns the size of the grid the result describes (the full
// grid, not the subset of cells this result ran).
func (c *Collapsed) Cells() int { return c.cells }

// GroupOfCell maps a grid cell index to the index of the group the
// cell folds into. It is only available on results built from a Grid
// in this process (Skeleton, RunCells, RunCollapsed); results read
// back from shard files do not carry the grid geometry and report
// ok=false, as do out-of-range cell indices.
func (c *Collapsed) GroupOfCell(cell int) (gi int, ok bool) {
	if len(c.cellStride) == 0 || cell < 0 || cell >= c.cells {
		return 0, false
	}
	prev := c.cells
	for d, s := range c.cellStride {
		size := prev / s
		gi += (cell / s) % size * c.groupStride[d]
		prev = s
	}
	return gi, true
}

// RunCollapsed executes the grid (or the shard of it selected by
// opts.Shard) through the in-process dispatcher the options describe
// and folds every outcome into group aggregates as cells complete,
// collapsing the named axes. The result is identical at any
// parallelism level, and shard results merge (see Merge) into output
// byte-identical to an unsharded run.
func RunCollapsed(g Grid, run CellFunc, opts Options, collapse ...string) (*Collapsed, error) {
	return opts.dispatcher().Dispatch(g, run, opts.Seed, collapse...)
}

// Collapsed folds the materialized result into the streaming aggregate
// form, grouping over the named axes. It exists so the legacy
// Run+Collapse path and the streaming path share one grouping and
// encoding implementation (and therefore produce identical bytes).
func (r *Result) Collapsed(collapse ...string) *Collapsed {
	c := newCollapsed(&r.Grid, r.Seed, collapse)
	rec := &Recorder{}
	for i := range r.Points {
		pr := &r.Points[i]
		rec.reset()
		rec.record(pr.Outcome)
		c.fold(pr.Point, rec)
	}
	c.finalize()
	return c
}

package sweep

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testGrid(reps int) Grid {
	return NewGrid(
		Strings("prim", "wait", "kill", "susp"),
		Floats("r", 10, 50, 90),
		Reps(reps),
	).Pair("prim")
}

// synthRun is a deterministic stand-in for a simulation: it derives its
// outcome purely from the cell seed and coordinates.
func synthRun(pt Point) (Outcome, error) {
	rng := pt.RNG()
	base := pt.Float("r") + 100*float64(len(pt.Label("prim")))
	return Outcome{Values: map[string]float64{
		"sojourn_s":  base + rng.Float64(),
		"makespan_s": 2*base + rng.Float64(),
	}}, nil
}

func TestGridEnumeration(t *testing.T) {
	g := testGrid(2)
	if g.Size() != 3*3*2 {
		t.Fatalf("size = %d, want 18", g.Size())
	}
	points, err := g.Points(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 18 {
		t.Fatalf("points = %d, want 18", len(points))
	}
	// Row-major: last axis (rep) varies fastest, first axis slowest.
	if got := points[0].Key(); got != "prim=wait r=10 rep=0" {
		t.Fatalf("first key = %q", got)
	}
	if got := points[1].Key(); got != "prim=wait r=10 rep=1" {
		t.Fatalf("second key = %q", got)
	}
	if got := points[17].Key(); got != "prim=susp r=90 rep=1" {
		t.Fatalf("last key = %q", got)
	}
	for i, p := range points {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
	}
}

func TestGridValidation(t *testing.T) {
	cases := []Grid{
		{},
		NewGrid(Axis{Name: "empty"}),
		NewGrid(Strings("a", "x"), Strings("a", "y")),
		NewGrid(Strings("a", "x", "x")),
		NewGrid(Strings("a", "x")).Pair("nope"),
	}
	for i, g := range cases {
		if _, err := g.Points(1); err == nil {
			t.Fatalf("case %d: invalid grid accepted", i)
		}
	}
}

func TestSeedPairing(t *testing.T) {
	points, err := testGrid(2).Points(1)
	if err != nil {
		t.Fatal(err)
	}
	bySuffix := make(map[string][]uint64)
	for _, p := range points {
		bySuffix[p.KeyWithout("prim")] = append(bySuffix[p.KeyWithout("prim")], p.Seed)
	}
	// All primitives at the same (r, rep) share a seed.
	for key, seeds := range bySuffix {
		for _, s := range seeds {
			if s != seeds[0] {
				t.Fatalf("paired cell %q has diverging seeds %v", key, seeds)
			}
		}
	}
	// Different (r, rep) cells get different seeds.
	seen := make(map[uint64]string)
	for key, seeds := range bySuffix {
		if prev, dup := seen[seeds[0]]; dup {
			t.Fatalf("cells %q and %q share seed %d", prev, key, seeds[0])
		}
		seen[seeds[0]] = key
	}
}

func TestSeedsIgnoreAxisOrderOfOtherCells(t *testing.T) {
	// A cell's seed depends only on its own coordinates and the base
	// seed — growing the grid must not reshuffle existing cells' seeds.
	small, err := NewGrid(Strings("p", "a"), Floats("r", 1, 2)).Points(9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewGrid(Strings("p", "a", "b"), Floats("r", 1, 2, 3)).Points(9)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make(map[string]uint64)
	for _, p := range big {
		seeds[p.Key()] = p.Seed
	}
	for _, p := range small {
		if seeds[p.Key()] != p.Seed {
			t.Fatalf("cell %q changed seed when the grid grew", p.Key())
		}
	}
}

// TestDeterministicAcrossParallelism is the harness's core guarantee:
// the same grid and seed produce identical aggregates and identical
// encoded output at any worker pool size.
func TestDeterministicAcrossParallelism(t *testing.T) {
	outputs := make(map[int]string)
	for _, parallel := range []int{1, 4, 16} {
		res, err := Run(testGrid(3), synthRun, Options{Parallel: parallel, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var csv, js bytes.Buffer
		if err := WriteCSV(&csv, res, RepAxis); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&js, res, RepAxis); err != nil {
			t.Fatal(err)
		}
		outputs[parallel] = csv.String() + js.String()
	}
	if outputs[1] != outputs[4] || outputs[1] != outputs[16] {
		t.Fatal("output differs across parallelism levels")
	}
}

func TestWorkerPoolBounds(t *testing.T) {
	const parallel = 3
	var active, peak, total int64
	var mu sync.Mutex
	run := func(pt Point) (Outcome, error) {
		n := atomic.AddInt64(&active, 1)
		defer atomic.AddInt64(&active, -1)
		atomic.AddInt64(&total, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return Outcome{}, nil
	}
	if _, err := Run(testGrid(2), run, Options{Parallel: parallel, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if total != 18 {
		t.Fatalf("ran %d cells, want 18", total)
	}
	if peak > parallel {
		t.Fatalf("observed %d concurrent cells, pool bound is %d", peak, parallel)
	}
	if peak < 2 {
		t.Fatalf("observed %d concurrent cells, expected the pool to actually run in parallel", peak)
	}
}

func TestRunErrorNamesFirstFailingCell(t *testing.T) {
	run := func(pt Point) (Outcome, error) {
		if pt.Label("prim") == "kill" {
			return Outcome{}, fmt.Errorf("boom at r=%v", pt.Float("r"))
		}
		return Outcome{}, nil
	}
	_, err := Run(testGrid(1), run, Options{Parallel: 4, Seed: 1})
	if err == nil {
		t.Fatal("expected error")
	}
	// Grid order: the first kill cell is kill/r=10/rep=0.
	if !strings.Contains(err.Error(), `cell "prim=kill r=10 rep=0"`) {
		t.Fatalf("error %q does not name the first failing cell", err)
	}
}

func TestCollapseAggregates(t *testing.T) {
	g := NewGrid(Strings("variant", "a", "b"), Reps(4))
	run := func(pt Point) (Outcome, error) {
		// variant a reports its rep index, variant b twice that.
		v := float64(pt.Int(RepAxis))
		if pt.Label("variant") == "b" {
			v *= 2
		}
		return Outcome{Values: map[string]float64{"x": v}}, nil
	}
	res, err := Run(g, run, Options{Parallel: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	aggs := res.Collapse(RepAxis)
	if len(aggs) != 2 {
		t.Fatalf("groups = %d, want 2", len(aggs))
	}
	a, b := aggs[0], aggs[1]
	if a.Key != "variant=a" || b.Key != "variant=b" {
		t.Fatalf("group keys = %q, %q", a.Key, b.Key)
	}
	if a.Count != 4 || b.Count != 4 {
		t.Fatalf("counts = %d, %d, want 4, 4", a.Count, b.Count)
	}
	// reps 0..3: mean 1.5 for a, 3.0 for b.
	if got := a.Metrics["x"]; got.Mean != 1.5 || got.Min != 0 || got.Max != 3 {
		t.Fatalf("variant a summary = %+v", got)
	}
	if got := b.Metrics["x"].Mean; got != 3.0 {
		t.Fatalf("variant b mean = %v, want 3", got)
	}
	if !reflect.DeepEqual(a.Labels, map[string]string{"variant": "a"}) {
		t.Fatalf("labels = %v", a.Labels)
	}
}

func TestCollapseNothingYieldsOneGroupPerCell(t *testing.T) {
	res, err := Run(testGrid(1), synthRun, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	aggs := res.Collapse()
	if len(aggs) != len(res.Points) {
		t.Fatalf("groups = %d, want %d", len(aggs), len(res.Points))
	}
}

func TestWriteCSVShape(t *testing.T) {
	res, err := Run(testGrid(2), synthRun, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res, RepAxis); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "prim,r,metric,count,mean,std,min,p50,p95,max" {
		t.Fatalf("header = %q", lines[0])
	}
	// 9 groups x 2 metrics + header.
	if len(lines) != 1+9*2 {
		t.Fatalf("rows = %d, want 19", len(lines))
	}
	if !strings.HasPrefix(lines[1], "wait,10,makespan_s,2,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestWriteJSONIncludesOutcomeLabels(t *testing.T) {
	g := NewGrid(Strings("policy", "small", "large"))
	run := func(pt Point) (Outcome, error) {
		return Outcome{
			Values: map[string]float64{"x": 1},
			Labels: map[string]string{"victim": "victim-of-" + pt.Label("policy")},
		}, nil
	}
	res, err := Run(g, run, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"victim": "victim-of-small"`, `"policy": "large"`, `"seed": 1`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON missing %q:\n%s", want, buf.String())
		}
	}
}

func TestWriteTableAligned(t *testing.T) {
	res, err := Run(testGrid(1), synthRun, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, res, RepAxis); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+9 {
		t.Fatalf("rows = %d, want 10", len(lines))
	}
	if !strings.Contains(lines[0], "prim") || !strings.Contains(lines[0], "sojourn_s") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestPointAccessors(t *testing.T) {
	points, err := NewGrid(Strings("s", "x"), Floats("f", 2.5), Ints("i", 7)).Points(1)
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Value("s").(string) != "x" || p.Label("s") != "x" {
		t.Fatal("string axis accessor broken")
	}
	if p.Float("f") != 2.5 || p.Label("f") != "2.5" {
		t.Fatal("float axis accessor broken")
	}
	if p.Int("i") != 7 || p.Float("i") != 7 {
		t.Fatal("int axis accessor broken")
	}
	for _, fn := range []func(){
		func() { p.Value("nope") },
		func() { p.Int("f") },
		func() { p.Float("s") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

package sweep

import (
	"fmt"
	"io"
	"slices"
)

// Accumulator folds disjoint partial results of one sweep into a single
// running aggregate as they arrive, instead of retaining every part
// until one final merge. The distributed coordinator absorbs each
// accepted lease upload immediately, so its memory is bounded by the
// sweep's group structure and sample volume — O(groups + cells x
// metrics) — rather than by the number of leases.
//
// Because group aggregates retain raw sample multisets and Summarize
// orders samples before computing anything, absorb order never affects
// the finalized result: absorbing parts as they arrive renders
// byte-identically to MergeSubsets over the same parts in lease order,
// for every encoder. The running state serializes with WriteShard,
// which is what makes a coordinator checkpoint both durable and exact —
// a restarted coordinator resumes from the deserialized aggregate and
// still produces the single-process bytes.
type Accumulator struct {
	c   *Collapsed
	ran int
}

// NewAccumulator builds an empty running aggregate for the grid: every
// group present, no cells absorbed.
func NewAccumulator(g Grid, seed uint64, collapse ...string) (*Accumulator, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	return &Accumulator{c: newCollapsed(&g, seed, collapse)}, nil
}

// Absorb folds one partial result of the sweep into the running
// aggregate. The part must describe the same sweep (seed, grid size,
// axis sets, group identities); Absorb validates that and rejects a
// part that re-runs a group's first cell the aggregate already holds —
// the same overlap tripwire mergeParts uses. Callers that hand out the
// cell partition own true disjointness, exactly as with MergeSubsets.
func (a *Accumulator) Absorb(part *Collapsed) error {
	if part.Shard.Count > 1 {
		return fmt.Errorf("sweep: absorb of shard slice %s (use Merge)", part.Shard)
	}
	c := a.c
	if part.Seed != c.Seed || part.cells != c.cells ||
		!slices.Equal(part.CollapsedAxes, c.CollapsedAxes) ||
		!slices.Equal(part.GroupAxes, c.GroupAxes) ||
		len(part.Groups) != len(c.Groups) {
		return fmt.Errorf("sweep: part is not a slice of the same sweep")
	}
	ran := 0
	for gi, pg := range part.Groups {
		g := c.Groups[gi]
		if pg.Key != g.Key || pg.firstIndex != g.firstIndex {
			return fmt.Errorf("sweep: part group %d is %q, want %q", gi, pg.Key, g.Key)
		}
		if pg.hasFirst && g.hasFirst {
			return fmt.Errorf("sweep: group %d first cell present twice (overlapping parts)", gi)
		}
		ran += pg.Count
	}
	for gi, pg := range part.Groups {
		g := c.Groups[gi]
		g.Count += pg.Count
		for id, samples := range pg.samples {
			if len(samples) == 0 {
				continue
			}
			name := part.names[id]
			oid, ok := c.ids[name]
			if !ok {
				oid = len(c.names)
				c.ids[name] = oid
				c.names = append(c.names, name)
			}
			for oid >= len(g.samples) {
				g.samples = append(g.samples, nil)
			}
			g.samples[oid] = append(g.samples[oid], samples...)
		}
		if pg.hasFirst {
			g.hasFirst = true
			g.Extra = pg.Extra
			g.First = pg.First
		}
	}
	a.ran += ran
	return nil
}

// CellRuns returns the number of cell runs absorbed so far.
func (a *Accumulator) CellRuns() int { return a.ran }

// Cells returns the size of the grid the aggregate describes.
func (a *Accumulator) Cells() int { return a.c.cells }

// GroupCounts returns the per-group cell-run counts absorbed so far, in
// group (grid) order.
func (a *Accumulator) GroupCounts() []int {
	counts := make([]int, len(a.c.Groups))
	for i, g := range a.c.Groups {
		counts[i] = g.Count
	}
	return counts
}

// WriteState serializes the running aggregate — raw samples included —
// in the shard-file format, so a coordinator checkpoint can persist it
// and a restarted coordinator can restore it with ReadShard + Absorb.
func (a *Accumulator) WriteState(w io.Writer) error {
	return a.c.WriteShard(w)
}

// Merged validates that the absorbed parts cover every grid cell
// exactly once in aggregate, finalizes the summaries and returns the
// full result — byte-identical, for every encoder, to a single-process
// run of the sweep. The accumulator must not be used afterwards.
func (a *Accumulator) Merged() (*Collapsed, error) {
	if a.ran != a.c.cells {
		return nil, fmt.Errorf("sweep: accumulated parts cover %d cell runs of a %d-cell grid", a.ran, a.c.cells)
	}
	a.c.finalize()
	return a.c, nil
}

// Package genload generates seeded preemption scenarios: synthetic
// workloads shaped to exercise the schedulers' preemption paths, not
// just their happy paths. The SWIM-style generator in
// internal/workload draws a realistic job mix, but its jobs all land
// in one pool, so the fair scheduler — which only preempts on behalf
// of a starved pool — never fires in the canned sweeps. This package
// closes that gap: jobs arrive in pool-alternating bursts, sized and
// timed so an earlier burst's pool holds every slot when the next
// pool's burst lands, which starves it past the scenario's timeout and
// forces a preemption decision.
//
// Randomness is split into one sim.RNG stream per axis (arrival
// jitter, input sizes, memory skew), so turning one knob never shifts
// another axis's draws: a scenario with memory skew enabled sees the
// identical arrival times and input sizes as its uniform twin. That is
// what keeps seed-paired sweep comparisons pure and makes the
// generator usable as a fuzzer — Randomize draws arbitrary valid
// scenarios whose invariants a property test can check.
package genload

import (
	"fmt"
	"time"

	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/sim"
	"hadooppreempt/internal/workload"
)

// Scenario describes one generated preemption scenario.
type Scenario struct {
	// Jobs is the number of jobs to generate.
	Jobs int
	// Pools is how many fair-scheduler pools the bursts cycle through.
	// Bursts alternate pools round-robin, so with Pools >= 2 some pool is
	// always waiting behind another's running tasks — the structure fair
	// preemption needs. 1 collapses to single-pool (FIFO-like) load.
	Pools int
	// BurstSize is how many jobs arrive back to back in one burst; 1
	// degenerates to a steady Poisson arrival process.
	BurstSize int
	// BurstGap separates consecutive bursts' start times.
	BurstGap time.Duration
	// MeanJitter is the mean of the exponential jitter between jobs
	// inside a burst (and the mean inter-arrival gap when BurstSize is 1).
	MeanJitter time.Duration
	// SizeMu and SizeSigma parameterize the log-normal input size
	// distribution; MinInputBytes floors the draw.
	SizeMu        float64
	SizeSigma     float64
	MinInputBytes int64
	// MapParseRate is the mappers' throughput (bytes/s). Together with
	// the sizes it sets task runtimes; keep runtimes above
	// StarvationTimeout or the victim finishes before preemption fires.
	MapParseRate float64
	// HeavyFrac is the probability that a job carries HeavyMemBytes of
	// extra per-task state — the memory skew that differentiates the
	// smallest/largest-memory eviction policies. Zero disables the skew.
	HeavyFrac     float64
	HeavyMemBytes int64
	// StarvationTimeout is the preemption timeout the scenario is tuned
	// for (fair's pool-starvation timeout, HFSP's preemption delay). The
	// sweep passes it through to the scheduler it boots.
	StarvationTimeout time.Duration
}

// Default returns the tuned default scenario: two pools, bursts of
// four ~108 MB jobs (one 512 MB-block map task each, ~27 s at 4 MB/s)
// every 10 s, and a 5 s starvation timeout. The tuning is deliberate:
// the burst gap sits well below the ~24 s minimum task runtime, so on
// the sweep's 2x2-slot cluster burst b's pool still holds all four
// slots when burst b+1's pool arrives, which starves it past the
// timeout while the victims have runtime left — the fair scheduler
// demonstrably preempts (a regression test pins this).
func Default() Scenario {
	return Scenario{
		Jobs:              8,
		Pools:             2,
		BurstSize:         4,
		BurstGap:          10 * time.Second,
		MeanJitter:        500 * time.Millisecond,
		SizeMu:            18.5, // ~108 MB median
		SizeSigma:         0.3,
		MinInputBytes:     96 << 20,
		MapParseRate:      4e6,
		HeavyFrac:         0,
		HeavyMemBytes:     1 << 30,
		StarvationTimeout: 5 * time.Second,
	}
}

// Validate reports the first invalid knob.
func (s Scenario) Validate() error {
	switch {
	case s.Jobs <= 0:
		return fmt.Errorf("genload: Jobs must be positive (got %d)", s.Jobs)
	case s.Pools <= 0:
		return fmt.Errorf("genload: Pools must be positive (got %d)", s.Pools)
	case s.BurstSize <= 0:
		return fmt.Errorf("genload: BurstSize must be positive (got %d)", s.BurstSize)
	case s.BurstGap < 0:
		return fmt.Errorf("genload: BurstGap must be non-negative (got %v)", s.BurstGap)
	case s.MeanJitter <= 0:
		return fmt.Errorf("genload: MeanJitter must be positive (got %v)", s.MeanJitter)
	case s.SizeSigma < 0:
		return fmt.Errorf("genload: SizeSigma must be non-negative (got %v)", s.SizeSigma)
	case s.MinInputBytes <= 0:
		return fmt.Errorf("genload: MinInputBytes must be positive (got %d)", s.MinInputBytes)
	case s.MapParseRate <= 0:
		return fmt.Errorf("genload: MapParseRate must be positive (got %v)", s.MapParseRate)
	case s.HeavyFrac < 0 || s.HeavyFrac > 1:
		return fmt.Errorf("genload: HeavyFrac must be in [0,1] (got %v)", s.HeavyFrac)
	case s.HeavyFrac > 0 && s.HeavyMemBytes <= 0:
		return fmt.Errorf("genload: HeavyFrac > 0 needs positive HeavyMemBytes")
	case s.StarvationTimeout <= 0:
		return fmt.Errorf("genload: StarvationTimeout must be positive (got %v)", s.StarvationTimeout)
	}
	return nil
}

// PoolName returns the pool label of burst index b.
func (s Scenario) PoolName(b int) string {
	return fmt.Sprintf("pool%d", b%s.Pools)
}

// Generate samples the scenario's workload. Equal (scenario, seed)
// pairs yield identical traces. Each randomness axis draws from its
// own substream of the seed — "arrival", "size", "mem" — so changing
// one knob (say, enabling memory skew) never shifts the other axes'
// draws.
func (s Scenario) Generate(seed uint64) ([]workload.JobSpec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(seed)
	arrival := root.Stream("genload/arrival")
	size := root.Stream("genload/size")
	mem := root.Stream("genload/mem")

	specs := make([]workload.JobSpec, 0, s.Jobs)
	var offset time.Duration
	for i := 0; i < s.Jobs; i++ {
		burst := i / s.BurstSize
		// Jitter accumulates within a burst so its jobs stay ordered but
		// not simultaneous; each burst restarts from its own base. A
		// steady process (BurstSize 1) degenerates to Poisson arrivals at
		// the burst cadence plus jitter.
		if i%s.BurstSize == 0 {
			offset = 0
		}
		offset += time.Duration(arrival.ExpFloat64() * float64(s.MeanJitter))
		at := time.Duration(burst)*s.BurstGap + offset
		bytes := int64(size.LogNormal(s.SizeMu, s.SizeSigma))
		if bytes < s.MinInputBytes {
			bytes = s.MinInputBytes
		}
		var extra int64
		if s.HeavyFrac > 0 && mem.Float64() < s.HeavyFrac {
			extra = s.HeavyMemBytes
		}
		pool := s.PoolName(burst)
		name := fmt.Sprintf("gen-%s-%03d", pool, i)
		specs = append(specs, workload.JobSpec{
			SubmitAt:   at,
			Class:      pool,
			InputBytes: bytes,
			Conf: mapreduce.JobConf{
				Name:             name,
				InputPath:        "/genload/" + name,
				Pool:             pool,
				MapParseRate:     s.MapParseRate,
				ExtraMemoryBytes: extra,
			},
		})
	}
	return specs, nil
}

// Randomize draws an arbitrary valid scenario — the fuzzer side of the
// generator. The ranges are wide enough to cover degenerate shapes
// (single pool, steady arrivals, no skew, heavy skew) while every
// returned scenario passes Validate.
func Randomize(rng *sim.RNG) Scenario {
	s := Scenario{
		Jobs:              1 + rng.Intn(16),
		Pools:             1 + rng.Intn(4),
		BurstSize:         1 + rng.Intn(6),
		BurstGap:          time.Duration(rng.Intn(91)) * time.Second,
		MeanJitter:        time.Duration(1+rng.Intn(5000)) * time.Millisecond,
		SizeMu:            rng.Uniform(17, 21),
		SizeSigma:         rng.Uniform(0, 1),
		MinInputBytes:     int64(1+rng.Intn(256)) << 20,
		MapParseRate:      rng.Uniform(1e6, 16e6),
		HeavyFrac:         rng.Float64(),
		HeavyMemBytes:     int64(1+rng.Intn(4)) << 30,
		StarvationTimeout: time.Duration(1+rng.Intn(30)) * time.Second,
	}
	if rng.Float64() < 0.3 {
		s.HeavyFrac = 0
	}
	return s
}

package genload_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"hadooppreempt/internal/genload"
	"hadooppreempt/internal/sim"
)

// TestGenerateProperties is the randomized-scenario property test: for
// arbitrary valid scenarios (the fuzzer side of the generator), the
// trace respects every structural invariant.
func TestGenerateProperties(t *testing.T) {
	rng := sim.NewRNG(3)
	for trial := 0; trial < 300; trial++ {
		s := genload.Randomize(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: Randomize produced invalid scenario: %v", trial, err)
		}
		seed := rng.Uint64()
		specs, err := s.Generate(seed)
		if err != nil {
			t.Fatalf("trial %d: Generate: %v", trial, err)
		}
		if len(specs) != s.Jobs {
			t.Fatalf("trial %d: %d specs, want %d", trial, len(specs), s.Jobs)
		}
		names := make(map[string]bool)
		var prev time.Duration
		for i, sp := range specs {
			burst := i / s.BurstSize
			if sp.Conf.Pool != s.PoolName(burst) {
				t.Fatalf("trial %d job %d: pool %q, want %q", trial, i, sp.Conf.Pool, s.PoolName(burst))
			}
			if sp.InputBytes < s.MinInputBytes {
				t.Fatalf("trial %d job %d: input %d below floor %d", trial, i, sp.InputBytes, s.MinInputBytes)
			}
			if sp.Conf.ExtraMemoryBytes != 0 && sp.Conf.ExtraMemoryBytes != s.HeavyMemBytes {
				t.Fatalf("trial %d job %d: extra memory %d, want 0 or %d", trial, i, sp.Conf.ExtraMemoryBytes, s.HeavyMemBytes)
			}
			if s.HeavyFrac == 0 && sp.Conf.ExtraMemoryBytes != 0 {
				t.Fatalf("trial %d job %d: memory skew with HeavyFrac 0", trial, i)
			}
			if names[sp.Conf.Name] {
				t.Fatalf("trial %d job %d: duplicate name %q", trial, i, sp.Conf.Name)
			}
			names[sp.Conf.Name] = true
			if !strings.HasPrefix(sp.Conf.InputPath, "/genload/") {
				t.Fatalf("trial %d job %d: input path %q", trial, i, sp.Conf.InputPath)
			}
			// Within a burst, arrivals are strictly increasing.
			if i%s.BurstSize != 0 && sp.SubmitAt <= prev {
				t.Fatalf("trial %d job %d: arrival %v not after predecessor %v", trial, i, sp.SubmitAt, prev)
			}
			prev = sp.SubmitAt
		}
	}
}

// TestGenerateDeterministic pins seed determinism: equal (scenario,
// seed) pairs yield identical traces, different seeds differ.
func TestGenerateDeterministic(t *testing.T) {
	s := genload.Default()
	a, err := s.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same scenario and seed produced different traces")
	}
	c, err := s.Generate(43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestGenerateAxisStreams pins the per-axis stream contract: toggling
// the memory-skew knob must not move arrival times or input sizes.
func TestGenerateAxisStreams(t *testing.T) {
	uniform := genload.Default()
	skewed := uniform
	skewed.HeavyFrac = 0.5
	a, err := uniform.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := skewed.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	sawSkew := false
	for i := range a {
		if a[i].SubmitAt != b[i].SubmitAt {
			t.Fatalf("job %d: memory knob moved arrival %v -> %v", i, a[i].SubmitAt, b[i].SubmitAt)
		}
		if a[i].InputBytes != b[i].InputBytes {
			t.Fatalf("job %d: memory knob moved size %d -> %d", i, a[i].InputBytes, b[i].InputBytes)
		}
		if b[i].Conf.ExtraMemoryBytes > 0 {
			sawSkew = true
		}
	}
	if !sawSkew {
		t.Fatal("skewed scenario produced no heavy job (seed 7)")
	}
}

// TestDefaultShape pins the tuned default's preemption-forcing
// structure: multiple pools, task runtimes comfortably above the
// starvation timeout.
func TestDefaultShape(t *testing.T) {
	s := genload.Default()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Pools < 2 {
		t.Fatalf("default must span at least 2 pools for fair preemption, got %d", s.Pools)
	}
	minRuntime := time.Duration(float64(s.MinInputBytes) / s.MapParseRate * float64(time.Second))
	if minRuntime < 2*s.StarvationTimeout {
		t.Fatalf("shortest task runtime %v must exceed twice the starvation timeout %v, or victims finish before preemption fires",
			minRuntime, s.StarvationTimeout)
	}
	specs, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	pools := make(map[string]bool)
	for _, sp := range specs {
		pools[sp.Conf.Pool] = true
	}
	if len(pools) < 2 {
		t.Fatalf("default trace uses %d pool(s), want >= 2", len(pools))
	}
}

// TestValidateRejects covers each knob's guard.
func TestValidateRejects(t *testing.T) {
	mutations := []func(*genload.Scenario){
		func(s *genload.Scenario) { s.Jobs = 0 },
		func(s *genload.Scenario) { s.Pools = 0 },
		func(s *genload.Scenario) { s.BurstSize = 0 },
		func(s *genload.Scenario) { s.BurstGap = -time.Second },
		func(s *genload.Scenario) { s.MeanJitter = 0 },
		func(s *genload.Scenario) { s.SizeSigma = -1 },
		func(s *genload.Scenario) { s.MinInputBytes = 0 },
		func(s *genload.Scenario) { s.MapParseRate = 0 },
		func(s *genload.Scenario) { s.HeavyFrac = 1.5 },
		func(s *genload.Scenario) { s.HeavyFrac = 0.5; s.HeavyMemBytes = 0 },
		func(s *genload.Scenario) { s.StarvationTimeout = 0 },
	}
	for i, mutate := range mutations {
		s := genload.Default()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid scenario %+v", i, s)
		}
		if _, err := s.Generate(1); err == nil {
			t.Errorf("mutation %d: Generate accepted invalid scenario", i)
		}
	}
}

package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunAdvancesClock(t *testing.T) {
	e := New()
	var fired []time.Duration
	e.Schedule(10*time.Second, func() { fired = append(fired, e.Now()) })
	e.Schedule(5*time.Second, func() { fired = append(fired, e.Now()) })
	e.Schedule(20*time.Second, func() { fired = append(fired, e.Now()) })
	e.Run()
	want := []time.Duration{5 * time.Second, 10 * time.Second, 20 * time.Second}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, fired[i], want[i])
		}
	}
	if e.Now() != 20*time.Second {
		t.Errorf("final Now() = %v, want 20s", e.Now())
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO within a timestamp)", i, v, i)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New()
	e.Schedule(time.Second, func() {
		fired := false
		e.Schedule(-5*time.Second, func() {
			fired = true
			if e.Now() != time.Second {
				t.Errorf("clamped event fired at %v, want 1s", e.Now())
			}
		})
		_ = fired
	})
	e.Run()
	if e.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", e.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := New()
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before cancel")
	}
	if !tm.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	if tm.Pending() {
		t.Fatal("timer should not be pending after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireReturnsFalse(t *testing.T) {
	e := New()
	tm := e.Schedule(time.Second, func() {})
	e.Run()
	if tm.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestCancelZeroTimer(t *testing.T) {
	var tm Timer
	if tm.Cancel() {
		t.Fatal("Cancel on zero timer should report false")
	}
	if tm.Pending() {
		t.Fatal("zero timer should not be pending")
	}
}

// Pending must report only live events: cancelled-but-unpopped entries do
// not count (regression: it used to report the raw queue length).
func TestPendingExcludesCancelled(t *testing.T) {
	e := New()
	a := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	a.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending() after cancel = %d, want 1 (cancelled event still queued)", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() after run = %d, want 0", e.Pending())
	}
}

// A stale Timer whose slot has been recycled for a newer event must not
// cancel the newer event.
func TestStaleTimerDoesNotCancelRecycledSlot(t *testing.T) {
	e := New()
	old := e.Schedule(time.Second, func() {})
	e.Run() // fires and releases the slot
	fired := false
	fresh := e.Schedule(time.Second, func() { fired = true })
	if old.Cancel() {
		t.Fatal("stale timer Cancel should report false")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer should still be pending")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled-slot event should have fired")
	}
}

// The hot path must not allocate per event: slots and heap entries are
// recycled across schedule/dispatch cycles.
func TestScheduleStepDoesNotAllocate(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm up the arena and heap capacity.
	for i := 0; i < 64; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(time.Millisecond, fn)
		e.Step()
	})
	if avg > 0.01 {
		t.Fatalf("Schedule+Step allocates %.3f objects/op, want 0", avg)
	}
}

func TestEventsScheduledDuringRunAreDispatched(t *testing.T) {
	e := New()
	var hits int
	var recurse func()
	recurse = func() {
		hits++
		if hits < 5 {
			e.Schedule(time.Second, recurse)
		}
	}
	e.Schedule(time.Second, recurse)
	e.Run()
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", e.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("after Run fired %d events, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockWithNoEvents(t *testing.T) {
	e := New()
	e.RunUntil(42 * time.Second)
	if e.Now() != 42*time.Second {
		t.Fatalf("Now() = %v, want 42s", e.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	e := New()
	e.RunUntil(10 * time.Second)
	e.RunFor(5 * time.Second)
	if e.Now() != 15*time.Second {
		t.Fatalf("Now() = %v, want 15s", e.Now())
	}
}

func TestNextEventAt(t *testing.T) {
	e := New()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("NextEventAt on empty queue should report false")
	}
	tm := e.Schedule(7*time.Second, func() {})
	e.Schedule(9*time.Second, func() {})
	if at, ok := e.NextEventAt(); !ok || at != 7*time.Second {
		t.Fatalf("NextEventAt = %v, %v; want 7s, true", at, ok)
	}
	tm.Cancel()
	if at, ok := e.NextEventAt(); !ok || at != 9*time.Second {
		t.Fatalf("NextEventAt after cancel = %v, %v; want 9s, true", at, ok)
	}
}

func TestAtClampsPastTimes(t *testing.T) {
	e := New()
	e.RunUntil(10 * time.Second)
	fired := time.Duration(-1)
	e.At(5*time.Second, func() { fired = e.Now() })
	e.Run()
	if fired != 10*time.Second {
		t.Fatalf("past event fired at %v, want clamp to 10s", fired)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine should report false")
	}
}

func TestTimerWhen(t *testing.T) {
	e := New()
	tm := e.Schedule(3*time.Second, func() {})
	if tm.When() != 3*time.Second {
		t.Fatalf("When() = %v, want 3s", tm.When())
	}
}

// Property: regardless of the order in which delays are scheduled, events
// fire in non-decreasing timestamp order and the engine dispatches exactly
// the non-cancelled ones.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		e := New()
		var firedAt []time.Duration
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			dur := time.Duration(d) * time.Millisecond
			timers[i] = e.Schedule(dur, func() {
				firedAt = append(firedAt, e.Now())
			})
		}
		cancelled := 0
		for i, tm := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				if tm.Cancel() {
					cancelled++
				}
			}
		}
		e.Run()
		if len(firedAt) != len(delays)-cancelled {
			return false
		}
		for i := 1; i < len(firedAt); i++ {
			if firedAt[i] < firedAt[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical values across different seeds", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Uniform(5,8) = %v out of range", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.97 || mean > 1.03 {
		t.Fatalf("exponential mean = %v, want ~1.0", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(9)
	child := parent.Fork()
	// The child stream must not simply mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork mirrors parent: %d/100 identical", same)
	}
}

func TestRNGStreamReproducible(t *testing.T) {
	a := NewRNG(9).Stream("cell-1")
	b := NewRNG(9).Stream("cell-1")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same label diverged at draw %d", i)
		}
	}
}

func TestRNGStreamDoesNotAdvanceParent(t *testing.T) {
	plain := NewRNG(9)
	tapped := NewRNG(9)
	tapped.Stream("x")
	tapped.Stream("y")
	for i := 0; i < 10; i++ {
		if plain.Uint64() != tapped.Uint64() {
			t.Fatalf("Stream perturbed the parent at draw %d", i)
		}
	}
}

func TestRNGStreamOrderIndependent(t *testing.T) {
	// Substreams depend only on (state, label), not on the order or
	// number of other Stream calls — the property that makes parallel
	// sweep execution reproducible.
	p1 := NewRNG(9)
	p2 := NewRNG(9)
	p2.Stream("other")
	p2.Stream("another")
	if p1.Stream("cell").Uint64() != p2.Stream("cell").Uint64() {
		t.Fatal("substream depends on sibling Stream calls")
	}
}

func TestRNGStreamLabelsDecorrelated(t *testing.T) {
	parent := NewRNG(9)
	a := parent.Stream("a")
	b := parent.Stream("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("labels a/b correlated: %d/100 identical", same)
	}
}

package sim

import (
	"math"
)

// RNG is a small deterministic pseudo-random number generator based on
// splitmix64. It is used instead of math/rand so that experiment results
// are stable across Go releases (math/rand's stream is not guaranteed to
// stay identical between versions for all helpers).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Uniform returns a uniformly distributed value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1). Scale by the desired mean.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal value using the Box-Muller
// transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal distribution.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new generator whose stream is independent from (but fully
// determined by) the parent's current state. Useful for giving subsystems
// their own streams without coupling their consumption order.
//
// Fork advances the parent, so the substream a call yields depends on how
// many values the parent produced before it. When substreams must be
// reproducible regardless of creation order — experiment cells executed by
// a parallel worker pool — use Stream instead.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xdeadbeefcafef00d)
}

// Stream returns the substream named label, derived from the generator's
// current state without advancing it. Equal (state, label) pairs always
// yield the same substream, and distinct labels yield decorrelated ones,
// so a sweep can hand every scenario cell its own reproducible stream no
// matter which worker reaches the cell first.
func (r *RNG) Stream(label string) *RNG {
	h := NewStreamHash()
	h.AddString(label)
	return NewRNG(r.streamState(h))
}

// StreamHash accumulates a stream label incrementally, so callers that
// assemble labels from parts (a sweep cell's coordinates, say) can
// derive substream seeds without building the label string. Hashing the
// same bytes in any chunking yields the same substream as Stream.
type StreamHash struct {
	// FNV-1a running hash; the splitmix64 finalizer in streamState mixes
	// it with the parent state so nearby labels land far apart.
	h uint64
}

// NewStreamHash returns the hash of the empty label.
func NewStreamHash() StreamHash {
	return StreamHash{h: 14695981039346656037}
}

// AddString folds s into the label hash.
func (s *StreamHash) AddString(str string) {
	h := s.h
	for i := 0; i < len(str); i++ {
		h ^= uint64(str[i])
		h *= 1099511628211
	}
	s.h = h
}

// AddByte folds one byte into the label hash.
func (s *StreamHash) AddByte(b byte) {
	s.h = (s.h ^ uint64(b)) * 1099511628211
}

// streamState mixes a finished label hash with the generator's state
// into the substream's initial state.
func (r *RNG) streamState(h StreamHash) uint64 {
	z := r.state ^ (h.h + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeedFor returns the first value of the substream named by the hashed
// label — identical to Stream(label).Uint64() — without allocating a
// generator.
func (r *RNG) SeedFor(h StreamHash) uint64 {
	s := RNG{state: r.streamState(h)}
	return s.Uint64()
}

package sim

import "testing"

// TestSeedForMatchesStream pins the incremental hashing path to the
// string path: chunked StreamHash writes must derive the exact seed
// Stream(label).Uint64() yields, since sweep cell seeds (and therefore
// every committed golden) depend on it.
func TestSeedForMatchesStream(t *testing.T) {
	r := NewRNG(42)
	labels := []string{"", "prim=wait r=10", "prim=susp r=90 rep=19", "a=b"}
	for _, label := range labels {
		want := r.Stream(label).Uint64()
		h := NewStreamHash()
		h.AddString(label)
		if got := r.SeedFor(h); got != want {
			t.Fatalf("SeedFor(%q) = %d, want %d", label, got, want)
		}
	}
	// Chunked writes hash the same bytes.
	h := NewStreamHash()
	h.AddString("prim=wait")
	h.AddByte(' ')
	h.AddString("r=10")
	if got, want := r.SeedFor(h), r.Stream("prim=wait r=10").Uint64(); got != want {
		t.Fatalf("chunked SeedFor = %d, want %d", got, want)
	}
	// Deriving a seed must not advance the parent stream.
	before := *r
	h2 := NewStreamHash()
	h2.AddString("x")
	r.SeedFor(h2)
	if *r != before {
		t.Fatal("SeedFor advanced the parent generator")
	}
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// All higher-level substrates (disk, memory manager, OS processes, HDFS,
// MapReduce engine) are built as event-driven state machines on top of this
// kernel. Virtual time is represented as time.Duration offsets from the
// start of the simulation; two events scheduled for the same instant fire
// in scheduling order, which makes every run fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a discrete-event simulator. The zero value is not usable; call
// New.
type Engine struct {
	now   time.Duration
	seq   uint64
	queue eventHeap
	// fired counts events that have been dispatched, for diagnostics.
	fired uint64
}

// New returns an empty simulation engine positioned at virtual time zero.
func New() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Timer is a handle to a scheduled event. It can be used to cancel the
// event before it fires.
type Timer struct {
	ev *event
}

// Cancel prevents the event from firing. It reports whether the event was
// still pending (a second Cancel, or cancelling an already-fired event,
// returns false). Cancel on a nil Timer is a no-op returning false.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	t.ev.fn = nil
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// When reports the virtual time at which the timer fires (meaningful only
// while Pending).
func (t *Timer) When() time.Duration {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// Schedule arranges for fn to run after delay. Negative delays are clamped
// to zero (the event fires at the current time, after already-queued events
// for that time).
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to the current time.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// Step dispatches the next pending event, advancing the clock to its
// timestamp. It reports whether an event was dispatched.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		if ev.at < e.now {
			// Cannot happen: At clamps to now. Guard anyway.
			panic(fmt.Sprintf("sim: event at %v is before current time %v", ev.at, e.now))
		}
		e.now = ev.at
		ev.fired = true
		e.fired++
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with timestamps <= deadline and then advances
// the clock to deadline. Events scheduled for after the deadline remain
// queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor dispatches events for d of virtual time starting from Now.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		return ev
	}
	return nil
}

// NextEventAt reports the timestamp of the next pending event. The second
// result is false when the queue is empty.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// All higher-level substrates (disk, memory manager, OS processes, HDFS,
// MapReduce engine) are built as event-driven state machines on top of this
// kernel. Virtual time is represented as time.Duration offsets from the
// start of the simulation; two events scheduled for the same instant fire
// in scheduling order, which makes every run fully reproducible.
//
// The kernel is allocation-free on the hot path: events live in a reusable
// slot arena indexed by a value heap, and Timer handles are plain values
// carrying a (slot, generation) pair, so Schedule/At never heap-allocate
// per call. Generation counters make a stale Timer (one whose event fired
// or whose slot was recycled) safely inert.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// slot lifecycle states.
const (
	slotFree uint8 = iota
	slotPending
	slotCancelled
)

// eventSlot is one arena entry. Slots are recycled: gen increments every
// time a slot is released, invalidating Timers issued for earlier uses.
type eventSlot struct {
	fn    func()
	at    time.Duration
	gen   uint32
	state uint8
}

// heapEntry is a value-typed heap element ordered by (at, seq). Keeping
// the ordering key inline avoids chasing the slot arena during sifts.
type heapEntry struct {
	at   time.Duration
	seq  uint64
	slot int32
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// New.
type Engine struct {
	now  time.Duration
	seq  uint64
	heap []heapEntry
	// slots is the event arena; freeSlots indexes released entries.
	slots     []eventSlot
	freeSlots []int32
	// live counts scheduled events that are neither fired nor cancelled.
	live int
	// fired counts events that have been dispatched, for diagnostics.
	fired uint64
}

// enginePool recycles Engine shells released with Release, so a sweep cell
// that tears down and rebuilds its cluster per repetition reuses the slot
// arena and heap storage instead of regrowing them.
var enginePool = sync.Pool{New: func() any { return &Engine{} }}

// New returns an empty simulation engine positioned at virtual time zero.
func New() *Engine {
	e := enginePool.Get().(*Engine)
	// Hand out recycled slots in ascending index order, exactly as a fresh
	// engine would grow its arena.
	for i := len(e.slots) - 1; i >= 0; i-- {
		e.freeSlots = append(e.freeSlots, int32(i))
	}
	return e
}

// Release returns the engine's event storage to a shared arena for reuse by
// a future New. Outstanding Timers become inert; the caller must drop every
// reference to the engine (and anything scheduled on it) afterwards.
func (e *Engine) Release() {
	for i := range e.slots {
		s := &e.slots[i]
		s.fn = nil
		s.state = slotFree
		s.gen++
	}
	e.heap = e.heap[:0]
	e.freeSlots = e.freeSlots[:0]
	e.now, e.seq = 0, 0
	e.live, e.fired = 0, 0
	enginePool.Put(e)
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending reports the number of events currently scheduled, excluding
// cancelled events that have not yet been removed from the queue.
func (e *Engine) Pending() int { return e.live }

// Fired reports the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Timer is a handle to a scheduled event. It can be used to cancel the
// event before it fires. The zero Timer is valid and refers to no event:
// Cancel and Pending on it report false.
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// valid reports whether the timer still refers to its original pending
// event (the slot has not been recycled for a newer one).
func (t Timer) valid() (*eventSlot, bool) {
	if t.eng == nil || int(t.slot) >= len(t.eng.slots) {
		return nil, false
	}
	s := &t.eng.slots[t.slot]
	if s.gen != t.gen || s.state != slotPending {
		return nil, false
	}
	return s, true
}

// Cancel prevents the event from firing. It reports whether the event was
// still pending (a second Cancel, or cancelling an already-fired event,
// returns false). Cancel on the zero Timer is a no-op returning false.
func (t Timer) Cancel() bool {
	s, ok := t.valid()
	if !ok {
		return false
	}
	s.state = slotCancelled
	s.fn = nil
	t.eng.live--
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	_, ok := t.valid()
	return ok
}

// When reports the virtual time at which the timer fires (meaningful only
// while Pending).
func (t Timer) When() time.Duration {
	s, ok := t.valid()
	if !ok {
		return 0
	}
	return s.at
}

// Schedule arranges for fn to run after delay. Negative delays are clamped
// to zero (the event fires at the current time, after already-queued events
// for that time).
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to the current time.
func (e *Engine) At(t time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	var slot int32
	if n := len(e.freeSlots); n > 0 {
		slot = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
	} else {
		e.slots = append(e.slots, eventSlot{})
		slot = int32(len(e.slots) - 1)
	}
	s := &e.slots[slot]
	s.fn = fn
	s.at = t
	s.state = slotPending
	e.push(heapEntry{at: t, seq: e.seq, slot: slot})
	e.seq++
	e.live++
	return Timer{eng: e, slot: slot, gen: s.gen}
}

// release returns a slot to the arena, invalidating outstanding Timers.
func (e *Engine) release(slot int32) {
	s := &e.slots[slot]
	s.fn = nil
	s.state = slotFree
	s.gen++
	e.freeSlots = append(e.freeSlots, slot)
}

// Step dispatches the next pending event, advancing the clock to its
// timestamp. It reports whether an event was dispatched.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		he := e.pop()
		s := &e.slots[he.slot]
		if s.state == slotCancelled {
			e.release(he.slot)
			continue
		}
		if he.at < e.now {
			// Cannot happen: At clamps to now. Guard anyway.
			panic(fmt.Sprintf("sim: event at %v is before current time %v", he.at, e.now))
		}
		e.now = he.at
		fn := s.fn
		e.release(he.slot)
		e.live--
		e.fired++
		fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// StepUntil dispatches the next event if it fires at or before deadline,
// reporting whether one was dispatched. It fuses the peek and pop root
// inspections the run loops would otherwise do back to back.
func (e *Engine) StepUntil(deadline time.Duration) bool {
	for len(e.heap) > 0 {
		he := e.heap[0]
		s := &e.slots[he.slot]
		if s.state == slotCancelled {
			e.pop()
			e.release(he.slot)
			continue
		}
		if he.at > deadline {
			return false
		}
		e.pop()
		e.now = he.at
		fn := s.fn
		e.release(he.slot)
		e.live--
		e.fired++
		fn()
		return true
	}
	return false
}

// RunUntil dispatches events with timestamps <= deadline and then advances
// the clock to deadline. Events scheduled for after the deadline remain
// queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	for e.StepUntil(deadline) {
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor dispatches events for d of virtual time starting from Now.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

// peek reports the timestamp of the next non-cancelled event, pruning
// cancelled entries from the top of the heap as it goes.
func (e *Engine) peek() (time.Duration, bool) {
	for len(e.heap) > 0 {
		he := e.heap[0]
		if e.slots[he.slot].state == slotCancelled {
			e.pop()
			e.release(he.slot)
			continue
		}
		return he.at, true
	}
	return 0, false
}

// NextEventAt reports the timestamp of the next pending event. The second
// result is false when the queue is empty.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	return e.peek()
}

// less orders heap entries by (timestamp, schedule order).
func (a heapEntry) less(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts an entry into the binary heap (sift-up).
func (e *Engine) push(he heapEntry) {
	h := append(e.heap, he)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the minimum entry (sift-down).
func (e *Engine) pop() heapEntry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h[right].less(h[left]) {
			least = right
		}
		if !h[least].less(h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	e.heap = h
	return top
}

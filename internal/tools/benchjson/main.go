// Command benchjson converts `go test -bench` text output into a JSON
// report and guards the figure metrics against drift.
//
// The figure benchmarks attach the paper's headline numbers (sojourn,
// makespan, paged MB, ...) as custom benchmark metrics. Those values are
// fully deterministic — they derive from seeded simulations — so CI runs
// the benchmarks, converts the output with this tool, uploads the JSON as
// the BENCH_sweep artifact, and fails if any figure metric moved from the
// committed goldens. ns/op is recorded but never compared: timing varies,
// physics must not.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFigure -benchtime 3x -count 3 . \
//	    | go run ./internal/tools/benchjson -golden goldens/bench_metrics.json \
//	    > BENCH_sweep.json
//
// Pass -update to rewrite the golden file from the observed metrics.
// Benchmarks matching -volatile still land in the JSON report but are
// exempt from golden comparison and the cross-run determinism check —
// for metrics worth tracking that the environment may legitimately move
// (allocation counts, say), as opposed to simulation physics.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's aggregate over repeated -count runs.
type benchResult struct {
	// NsPerOp lists the timing of every repetition (informational only).
	NsPerOp []float64 `json:"ns_per_op"`
	// Metrics maps unit name to the reported value, rendered exactly as
	// `go test` printed it so comparisons are bit-exact.
	Metrics map[string]string `json:"metrics,omitempty"`
}

func main() {
	golden := flag.String("golden", "", "golden metrics file to compare against")
	update := flag.Bool("update", false, "rewrite the golden file instead of comparing")
	volatilePat := flag.String("volatile", "", "regexp of benchmarks reported but not gated")
	flag.Parse()

	volatile := func(string) bool { return false }
	if *volatilePat != "" {
		re, err := regexp.Compile(*volatilePat)
		if err != nil {
			fatal(fmt.Errorf("-volatile: %w", err))
		}
		volatile = re.MatchString
	}

	results, err := parse(os.Stdin, volatile)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}

	if *golden == "" {
		return
	}
	observed := make(map[string]map[string]string, len(results))
	for name, r := range results {
		if len(r.Metrics) > 0 && !volatile(name) {
			observed[name] = r.Metrics
		}
	}
	if *update {
		data, err := json.MarshalIndent(observed, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*golden, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *golden)
		return
	}
	data, err := os.ReadFile(*golden)
	if err != nil {
		fatal(err)
	}
	var want map[string]map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		fatal(fmt.Errorf("golden %s: %w", *golden, err))
	}
	if err := compare(want, observed); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "benchjson: figure metrics match goldens")
}

// parse consumes `go test -bench` output. Repeated runs of one benchmark
// (-count > 1) must report identical metrics; a mismatch is a
// determinism bug and fails immediately, except for volatile benchmarks
// (their first observation wins).
func parse(f *os.File, volatile func(string) bool) (map[string]*benchResult, error) {
	results := make(map[string]*benchResult)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the GOMAXPROCS suffix.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := results[name]
		if r == nil {
			r = &benchResult{Metrics: map[string]string{}}
			results[name] = r
		}
		// fields: name, iterations, then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			value, unit := fields[i], fields[i+1]
			if unit == "ns/op" {
				ns, err := strconv.ParseFloat(value, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q for %s", value, name)
				}
				r.NsPerOp = append(r.NsPerOp, ns)
				continue
			}
			if prev, ok := r.Metrics[unit]; ok && prev != value {
				if !volatile(name) {
					return nil, fmt.Errorf("%s metric %s not deterministic across runs: %s vs %s",
						name, unit, prev, value)
				}
				continue
			}
			r.Metrics[unit] = value
		}
	}
	return results, sc.Err()
}

// compare reports every metric drift between goldens and observation.
func compare(want, got map[string]map[string]string) error {
	var drift []string
	for _, name := range sortedKeys(want) {
		gm, ok := got[name]
		if !ok {
			drift = append(drift, fmt.Sprintf("%s: missing from run", name))
			continue
		}
		for _, unit := range sortedKeys(want[name]) {
			w := want[name][unit]
			g, ok := gm[unit]
			if !ok {
				drift = append(drift, fmt.Sprintf("%s/%s: metric missing", name, unit))
			} else if g != w {
				drift = append(drift, fmt.Sprintf("%s/%s: golden %s, got %s", name, unit, w, g))
			}
		}
	}
	for _, name := range sortedKeys(got) {
		if _, ok := want[name]; !ok {
			drift = append(drift, fmt.Sprintf("%s: not in goldens (run benchjson -update)", name))
		}
	}
	if len(drift) > 0 {
		return fmt.Errorf("figure metrics drifted from goldens:\n  %s", strings.Join(drift, "\n  "))
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

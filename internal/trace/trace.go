// Package trace records per-task execution intervals and renders them as
// ASCII Gantt charts, reproducing the schedule illustrations of Figure 1.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanKind classifies what a task was doing during an interval.
type SpanKind int

// Span kinds.
const (
	// SpanRunning marks active execution.
	SpanRunning SpanKind = iota + 1
	// SpanSuspended marks time spent suspended (SIGTSTP .. SIGCONT).
	SpanSuspended
	// SpanCleanup marks a cleanup attempt after a kill.
	SpanCleanup
	// SpanWaiting marks time between submission and first launch.
	SpanWaiting
)

// String returns a short name.
func (k SpanKind) String() string {
	switch k {
	case SpanRunning:
		return "running"
	case SpanSuspended:
		return "suspended"
	case SpanCleanup:
		return "cleanup"
	case SpanWaiting:
		return "waiting"
	default:
		return fmt.Sprintf("SpanKind(%d)", int(k))
	}
}

// glyph is the character used to draw the span in a Gantt chart.
func (k SpanKind) glyph() byte {
	switch k {
	case SpanRunning:
		return '#'
	case SpanSuspended:
		return '='
	case SpanCleanup:
		return 'c'
	case SpanWaiting:
		return '.'
	default:
		return '?'
	}
}

// Span is one interval in a task's life.
type Span struct {
	Row   string // display row, e.g. "tl (attempt 1)"
	Kind  SpanKind
	Start time.Duration
	End   time.Duration
}

// Recorder accumulates spans. The zero value is ready to use.
type Recorder struct {
	spans []Span
	open  map[string]openSpan
}

type openSpan struct {
	kind  SpanKind
	start time.Duration
}

// Begin opens a span on the given row, closing any previously open span on
// that row at the same instant.
func (r *Recorder) Begin(row string, kind SpanKind, at time.Duration) {
	if r.open == nil {
		r.open = make(map[string]openSpan)
	}
	r.End(row, at)
	r.open[row] = openSpan{kind: kind, start: at}
}

// End closes the currently open span on the row, if any. Zero-length spans
// are dropped.
func (r *Recorder) End(row string, at time.Duration) {
	os, ok := r.open[row]
	if !ok {
		return
	}
	delete(r.open, row)
	if at > os.start {
		r.spans = append(r.spans, Span{Row: row, Kind: os.kind, Start: os.start, End: at})
	}
}

// Add appends a closed span directly.
func (r *Recorder) Add(s Span) {
	if s.End > s.Start {
		r.spans = append(r.spans, s)
	}
}

// CloseAll closes every open span at the given time.
func (r *Recorder) CloseAll(at time.Duration) {
	rows := make([]string, 0, len(r.open))
	for row := range r.open {
		rows = append(rows, row)
	}
	sort.Strings(rows)
	for _, row := range rows {
		r.End(row, at)
	}
}

// Spans returns a copy of the recorded spans, ordered by start time then
// row.
func (r *Recorder) Spans() []Span {
	out := append([]Span(nil), r.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Row < out[j].Row
	})
	return out
}

// Rows returns the distinct row labels in first-appearance order.
func (r *Recorder) Rows() []string {
	seen := make(map[string]bool)
	var rows []string
	for _, s := range r.spans {
		if !seen[s.Row] {
			seen[s.Row] = true
			rows = append(rows, s.Row)
		}
	}
	return rows
}

// Makespan returns the end of the last span.
func (r *Recorder) Makespan() time.Duration {
	var end time.Duration
	for _, s := range r.spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// Gantt renders the recorded spans as an ASCII chart of the given width
// (number of time columns). Legend: '#' running, '=' suspended,
// 'c' cleanup, '.' waiting.
func (r *Recorder) Gantt(width int) string {
	if width <= 0 {
		width = 60
	}
	total := r.Makespan()
	if total == 0 || len(r.spans) == 0 {
		return "(empty trace)\n"
	}
	rows := r.Rows()
	labelWidth := 0
	for _, row := range rows {
		if len(row) > labelWidth {
			labelWidth = len(row)
		}
	}
	var b strings.Builder
	scale := float64(width) / float64(total)
	for _, row := range rows {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for _, s := range r.spans {
			if s.Row != row {
				continue
			}
			lo := int(float64(s.Start) * scale)
			hi := int(float64(s.End) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			for i := lo; i < hi; i++ {
				line[i] = s.Kind.glyph()
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelWidth, row, line)
	}
	fmt.Fprintf(&b, "%-*s  0%*s\n", labelWidth, "", width, formatDur(total))
	return b.String()
}

func formatDur(d time.Duration) string {
	return d.Round(100 * time.Millisecond).String()
}

package trace

import (
	"strings"
	"testing"
	"time"
)

func TestBeginEndRecordsSpan(t *testing.T) {
	var r Recorder
	r.Begin("tl", SpanRunning, 0)
	r.End("tl", 10*time.Second)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Row != "tl" || s.Kind != SpanRunning || s.Start != 0 || s.End != 10*time.Second {
		t.Fatalf("unexpected span %+v", s)
	}
}

func TestBeginClosesPreviousSpan(t *testing.T) {
	var r Recorder
	r.Begin("tl", SpanRunning, 0)
	r.Begin("tl", SpanSuspended, 4*time.Second)
	r.End("tl", 9*time.Second)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Kind != SpanRunning || spans[0].End != 4*time.Second {
		t.Fatalf("first span %+v", spans[0])
	}
	if spans[1].Kind != SpanSuspended || spans[1].Start != 4*time.Second {
		t.Fatalf("second span %+v", spans[1])
	}
}

func TestEndWithoutBeginIsNoop(t *testing.T) {
	var r Recorder
	r.End("x", time.Second)
	if len(r.Spans()) != 0 {
		t.Fatal("no span expected")
	}
}

func TestZeroLengthSpansDropped(t *testing.T) {
	var r Recorder
	r.Begin("tl", SpanRunning, time.Second)
	r.End("tl", time.Second)
	if len(r.Spans()) != 0 {
		t.Fatal("zero-length span should be dropped")
	}
}

func TestCloseAll(t *testing.T) {
	var r Recorder
	r.Begin("a", SpanRunning, 0)
	r.Begin("b", SpanSuspended, time.Second)
	r.CloseAll(5 * time.Second)
	if len(r.Spans()) != 2 {
		t.Fatalf("spans = %d, want 2", len(r.Spans()))
	}
	if r.Makespan() != 5*time.Second {
		t.Fatalf("makespan = %v, want 5s", r.Makespan())
	}
}

func TestRowsFirstAppearanceOrder(t *testing.T) {
	var r Recorder
	r.Add(Span{Row: "th", Kind: SpanRunning, Start: 2 * time.Second, End: 3 * time.Second})
	r.Add(Span{Row: "tl", Kind: SpanRunning, Start: 0, End: time.Second})
	rows := r.Rows()
	if len(rows) != 2 || rows[0] != "th" || rows[1] != "tl" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGanttRendersGlyphs(t *testing.T) {
	var r Recorder
	r.Add(Span{Row: "tl", Kind: SpanRunning, Start: 0, End: 5 * time.Second})
	r.Add(Span{Row: "tl", Kind: SpanSuspended, Start: 5 * time.Second, End: 10 * time.Second})
	r.Add(Span{Row: "th", Kind: SpanRunning, Start: 5 * time.Second, End: 10 * time.Second})
	g := r.Gantt(20)
	if !strings.Contains(g, "#") {
		t.Fatal("missing running glyph")
	}
	if !strings.Contains(g, "=") {
		t.Fatal("missing suspended glyph")
	}
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 { // two rows + axis
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), g)
	}
}

func TestGanttEmpty(t *testing.T) {
	var r Recorder
	if g := r.Gantt(20); !strings.Contains(g, "empty") {
		t.Fatalf("empty gantt = %q", g)
	}
}

func TestSpanKindStrings(t *testing.T) {
	for kind, want := range map[SpanKind]string{
		SpanRunning: "running", SpanSuspended: "suspended",
		SpanCleanup: "cleanup", SpanWaiting: "waiting",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", kind, kind.String(), want)
		}
	}
}

func TestSpansSorted(t *testing.T) {
	var r Recorder
	r.Add(Span{Row: "b", Kind: SpanRunning, Start: 3 * time.Second, End: 4 * time.Second})
	r.Add(Span{Row: "a", Kind: SpanRunning, Start: time.Second, End: 2 * time.Second})
	spans := r.Spans()
	if spans[0].Row != "a" {
		t.Fatalf("spans not sorted by start: %+v", spans)
	}
}

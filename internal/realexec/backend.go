package realexec

import (
	"fmt"
	"time"

	"hadooppreempt/internal/sweep"
)

// BackendName is the name the real-process backend reports to the sweep
// harness.
const BackendName = "real"

// SweepConfig configures the real-process execution backend.
type SweepConfig struct {
	// Rs are the preemption points in percent (th arrives when tl
	// reaches this progress; default 25, 50, 75).
	Rs []float64
	// Reps repeats every cell (default 1). Real runs measure wall-clock
	// time, so repetitions average true scheduling noise rather than
	// seeded randomness.
	Reps int
	// Steps is the number of progress reports over a worker's life
	// (default 20).
	Steps int
	// UnitsPerStep is the CPU work per step in busy-loop iterations
	// (default 2e6, a sub-second worker on current hardware).
	UnitsPerStep int64
	// MemBytes is the state each worker dirties at startup, like the
	// paper's worst-case tasks (default 0).
	MemBytes int64
	// StepTimeout bounds each wait on a worker (default 2m).
	StepTimeout time.Duration
}

// Backend runs the paper's two-job scenario on real OS processes: every
// cell spawns a low-priority worker, preempts it at the cell's progress
// point with the cell's primitive (an actual SIGTSTP, SIGKILL, or
// nothing for wait), runs a high-priority worker to completion, then
// restores the victim. It records the same metric names as the
// simulator's two-job cells, so sim-vs-real aggregates line up in one
// table.
//
// Unlike the sim and replay backends, cells measure wall-clock time:
// output is NOT deterministic and -parallel changes contention. Shard
// files still merge, but only over runs that actually executed.
type Backend struct {
	cfg SweepConfig
}

// NewBackend validates the configuration and builds the backend. On
// non-unix platforms construction succeeds but every cell fails: the
// suspension primitive needs SIGTSTP/SIGCONT.
func NewBackend(cfg SweepConfig) (*Backend, error) {
	if len(cfg.Rs) == 0 {
		cfg.Rs = []float64{25, 50, 75}
	}
	for _, r := range cfg.Rs {
		if r <= 0 || r >= 100 {
			return nil, fmt.Errorf("realexec: preemption point %v%% outside (0,100)", r)
		}
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 20
	}
	if cfg.UnitsPerStep <= 0 {
		cfg.UnitsPerStep = 2_000_000
	}
	if cfg.StepTimeout <= 0 {
		cfg.StepTimeout = 2 * time.Minute
	}
	return &Backend{cfg: cfg}, nil
}

// Name implements sweep.Backend.
func (b *Backend) Name() string { return BackendName }

// Grid implements sweep.Backend: primitive x preemption point x
// repetition, mirroring the simulator's two-job grid so the two
// backends' aggregates compare cell by cell.
func (b *Backend) Grid() (sweep.Grid, error) {
	return sweep.NewGrid(
		sweep.Strings("prim", "wait", "kill", "susp"),
		sweep.Floats("r", b.cfg.Rs...),
		sweep.Reps(b.cfg.Reps),
	).Pair("prim"), nil
}

// Cell implements sweep.Backend.
func (b *Backend) Cell(pt sweep.Point, rec *sweep.Recorder) error {
	return b.runCell(pt, rec)
}

// CacheVolatile implements sweep.Volatile: real-process cells measure
// wall-clock time of live OS processes, so their results are not pure
// functions of the cell seed and must never be replayed from a cell
// cache — a warm rerun would report stale measurements as fresh.
func (b *Backend) CacheVolatile() bool { return true }

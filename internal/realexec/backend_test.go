//go:build unix

package realexec

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"hadooppreempt/internal/sweep"
)

// waitForProgress polls until the worker reports progress above the
// floor or the deadline passes; it reports the last observed value.
func waitForProgress(w *Worker, floor float64, deadline time.Duration) float64 {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if p := w.Progress(); p > floor {
			return p
		}
		if w.State() != StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return w.Progress()
}

// TestConcurrentSuspendFreezesOnlyVictims runs several workers at once,
// stops half of them, and checks that a stopped process makes no
// progress while its running siblings do — the per-PID signal targeting
// the paper's TaskTracker modification relies on. Flake-hardening: the
// test skips (rather than fails) when the sandbox forbids fork/exec or
// the machine is too loaded for the running workers to advance, and the
// freeze check tolerates the in-flight pipe line that may land right
// after SIGTSTP.
func TestConcurrentSuspendFreezesOnlyVictims(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skipf("flake-hardened only on linux (GOOS=%s)", runtime.GOOS)
	}
	const workers = 4
	ws := make([]*Worker, workers)
	for i := range ws {
		ws[i] = spawn(t, Spec{Name: "conc", Steps: 400, UnitsPerStep: 2_000_000})
	}
	for _, w := range ws {
		if waitForProgress(w, 0, 20*time.Second) == 0 {
			t.Skip("workers made no progress in time (loaded machine)")
		}
	}
	// Suspend the even workers concurrently, as a scheduler sweeping a
	// node would.
	var wg sync.WaitGroup
	for i := 0; i < workers; i += 2 {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			if err := w.Suspend(); err != nil {
				t.Errorf("suspend: %v", err)
			}
		}(ws[i])
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Let in-flight pipe data drain before sampling the frozen value.
	time.Sleep(300 * time.Millisecond)
	frozen := []float64{ws[0].Progress(), ws[2].Progress()}
	running := []float64{ws[1].Progress(), ws[3].Progress()}
	time.Sleep(700 * time.Millisecond)
	if p := ws[0].Progress(); p != frozen[0] {
		t.Errorf("suspended worker 0 advanced: %v -> %v", frozen[0], p)
	}
	if p := ws[2].Progress(); p != frozen[1] {
		t.Errorf("suspended worker 2 advanced: %v -> %v", frozen[1], p)
	}
	// The untouched workers must keep moving (skip, not fail, if the
	// machine stalls them — we only assert the contrast when visible).
	moved := ws[1].Progress() > running[0] || ws[3].Progress() > running[1] ||
		ws[1].State() == StateDone || ws[3].State() == StateDone
	if !moved {
		t.Skip("running workers made no progress during the freeze window (loaded machine)")
	}
	// Resume and verify both victims move again.
	for _, i := range []int{0, 2} {
		if err := ws[i].Resume(); err != nil {
			t.Fatalf("resume worker %d: %v", i, err)
		}
	}
	for _, i := range []int{0, 2} {
		before := frozen[i/2]
		if waitForProgress(ws[i], before, 30*time.Second) <= before && ws[i].State() == StateRunning {
			t.Errorf("worker %d made no progress after resume", i)
		}
	}
}

// TestBackendGrid checks the real backend's grid mirrors the two-job
// scenario shape.
func TestBackendGrid(t *testing.T) {
	b, err := NewBackend(SweepConfig{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != BackendName {
		t.Errorf("Name() = %q, want %q", b.Name(), BackendName)
	}
	g, err := b.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3*3*2 {
		t.Errorf("grid size = %d, want 18 (prim x r x rep)", g.Size())
	}
	if _, err := NewBackend(SweepConfig{Rs: []float64{150}}); err == nil {
		t.Error("out-of-range preemption point should fail")
	}
}

// TestBackendCellSmoke executes one real suspend cell end to end with a
// tiny workload. Skipped where fork/exec is forbidden.
func TestBackendCellSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process cell in -short mode")
	}
	if _, err := SpawnSelf(Spec{Name: "probe", Steps: 1, UnitsPerStep: 1}); err != nil {
		t.Skipf("cannot spawn real processes here: %v", err)
	}
	// Steps long enough (~10ms each) that the preemption point lands
	// mid-flight rather than after the worker already finished.
	b, err := NewBackend(SweepConfig{Rs: []float64{50}, Steps: 10, UnitsPerStep: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	col, err := sweep.RunBackend(b, sweep.Options{Parallel: 1, Seed: 1}, sweep.RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Groups) != 3 {
		t.Fatalf("groups = %d, want one per primitive", len(col.Groups))
	}
	for _, g := range col.Groups {
		if g.Metrics["sojourn_th_s"].Mean <= 0 || g.Metrics["makespan_s"].Mean <= 0 {
			t.Errorf("%s: non-positive timings: %+v", g.Key, g.Metrics)
		}
		attempts := g.Metrics["tl_attempts"].Mean
		switch g.Labels["prim"] {
		case "kill":
			if attempts != 2 {
				t.Errorf("kill cell reported %v attempts, want 2", attempts)
			}
		default:
			if attempts != 1 {
				t.Errorf("%s cell reported %v attempts, want 1", g.Labels["prim"], attempts)
			}
		}
		if g.Labels["prim"] == "susp" && g.Metrics["tl_suspensions"].Mean != 1 {
			t.Errorf("susp cell reported %v suspensions, want 1", g.Metrics["tl_suspensions"].Mean)
		}
	}
}

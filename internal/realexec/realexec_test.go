//go:build unix

package realexec

import (
	"os"
	"testing"
	"time"
)

// TestMain routes worker invocations of the test binary to WorkerMain,
// the standard re-exec pattern.
func TestMain(m *testing.M) {
	if IsWorkerInvocation() {
		WorkerMain()
	}
	os.Exit(m.Run())
}

// spawn starts a quick worker or skips if the sandbox forbids fork/exec.
func spawn(t *testing.T, spec Spec) *Worker {
	t.Helper()
	w, err := SpawnSelf(spec)
	if err != nil {
		t.Skipf("cannot spawn real processes here: %v", err)
	}
	t.Cleanup(func() { w.Kill(); w.Wait(5 * time.Second) })
	return w
}

func TestWorkerRunsToCompletion(t *testing.T) {
	w := spawn(t, Spec{Name: "quick", Steps: 5, UnitsPerStep: 1_000_000})
	if !w.Wait(30 * time.Second) {
		t.Fatal("worker did not finish")
	}
	if w.State() != StateDone {
		t.Fatalf("state = %v, want done (err: %v)", w.State(), w.Err())
	}
	if w.Progress() != 1 {
		t.Fatalf("progress = %v, want 1", w.Progress())
	}
}

func TestSuspendStopsProgress(t *testing.T) {
	// A deliberately long worker so suspension lands mid-flight.
	w := spawn(t, Spec{Name: "long", Steps: 200, UnitsPerStep: 5_000_000})
	// Wait for some progress.
	deadline := time.Now().Add(20 * time.Second)
	for w.Progress() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if w.Progress() == 0 {
		t.Skip("worker made no progress in time (loaded machine)")
	}
	if err := w.Suspend(); err != nil {
		t.Fatal(err)
	}
	// Allow in-flight pipe data to drain, then progress must freeze.
	time.Sleep(200 * time.Millisecond)
	p1 := w.Progress()
	time.Sleep(500 * time.Millisecond)
	p2 := w.Progress()
	if p2 != p1 {
		t.Fatalf("progress advanced while stopped: %v -> %v", p1, p2)
	}
	if w.State() != StateSuspended {
		t.Fatalf("state = %v, want suspended", w.State())
	}
	if err := w.Resume(); err != nil {
		t.Fatal(err)
	}
	// After resume it must advance again.
	deadline = time.Now().Add(30 * time.Second)
	for w.Progress() <= p2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if w.Progress() <= p2 {
		t.Fatal("no progress after resume")
	}
}

func TestSuspendedWorkerCanBeKilled(t *testing.T) {
	w := spawn(t, Spec{Name: "victim", Steps: 1000, UnitsPerStep: 5_000_000})
	time.Sleep(100 * time.Millisecond)
	if err := w.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := w.Kill(); err != nil {
		t.Fatal(err)
	}
	if !w.Wait(10 * time.Second) {
		t.Fatal("killed worker did not exit")
	}
	if w.State() != StateKilled {
		t.Fatalf("state = %v, want killed", w.State())
	}
}

func TestInvalidTransitions(t *testing.T) {
	w := spawn(t, Spec{Name: "x", Steps: 1000, UnitsPerStep: 5_000_000})
	if err := w.Resume(); err == nil {
		t.Fatal("resume of a running worker should fail")
	}
	if err := w.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := w.Suspend(); err == nil {
		t.Fatal("double suspend should fail")
	}
}

func TestStateStrings(t *testing.T) {
	if StateRunning.String() != "running" || StateSuspended.String() != "suspended" ||
		StateDone.String() != "done" || StateKilled.String() != "killed" {
		t.Fatal("state strings wrong")
	}
}

//go:build !unix

package realexec

import (
	"fmt"

	"hadooppreempt/internal/sweep"
)

// The real-process backend needs POSIX job-control signals; on other
// platforms the package still compiles (so the facade and CLI build
// everywhere) but cells report a clear error.

// IsWorkerInvocation reports whether the current process was started as
// a worker; never true off unix.
func IsWorkerInvocation() bool { return false }

// WorkerMain is the child-side entry point; it cannot be reached off
// unix because IsWorkerInvocation never reports true.
func WorkerMain() {}

func (b *Backend) runCell(sweep.Point, *sweep.Recorder) error {
	return fmt.Errorf("realexec: the real-process backend needs a unix platform (SIGTSTP/SIGCONT)")
}

//go:build unix

// Package realexec demonstrates the paper's preemption primitive on real
// operating-system processes: workers are ordinary child processes, and
// suspension/resumption uses the actual POSIX SIGTSTP and SIGCONT
// signals, exactly as the paper's TaskTracker modification does. Under
// memory pressure the real kernel pages the stopped worker out — the
// behaviour the simulation models.
//
// Workers report progress over a pipe ("P <fraction>" lines, then
// "DONE"), mirroring the TaskTracker's view of task progress.
package realexec

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Env variables of the self-exec worker protocol.
const (
	envWorker = "HADOOPPREEMPT_WORKER"
	envSteps  = "HADOOPPREEMPT_STEPS"
	envUnits  = "HADOOPPREEMPT_UNITS"
	envMem    = "HADOOPPREEMPT_MEM_BYTES"
)

// State is a worker's lifecycle state as seen by the parent.
type State int

// Worker states.
const (
	// StateRunning means the child process is executing.
	StateRunning State = iota + 1
	// StateSuspended means SIGTSTP was delivered.
	StateSuspended
	// StateDone means the worker finished successfully.
	StateDone
	// StateKilled means the worker was killed.
	StateKilled
)

// String returns a readable name.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateDone:
		return "done"
	case StateKilled:
		return "killed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Worker controls one real child process.
type Worker struct {
	name string
	cmd  *exec.Cmd

	mu       sync.Mutex
	state    State
	progress float64
	err      error

	done chan struct{}
	wg   sync.WaitGroup
}

// Spec configures a synthetic worker.
type Spec struct {
	// Name labels the worker in logs.
	Name string
	// Steps is the number of progress reports over the worker's life.
	Steps int
	// UnitsPerStep is the CPU work per step, in busy-loop iterations
	// (progress therefore advances only when the process is scheduled —
	// a stopped process makes none, unlike wall-clock sleeps).
	UnitsPerStep int64
	// MemBytes is written (dirtied) by the worker at startup and read
	// back before finishing, like the paper's worst-case tasks.
	MemBytes int64
}

// IsWorkerInvocation reports whether the current process was started as a
// worker and should call WorkerMain instead of its normal main.
func IsWorkerInvocation() bool {
	return os.Getenv(envWorker) == "1"
}

// WorkerMain is the child-side entry point: it performs the synthetic
// work and reports progress on stdout. It never returns; it exits the
// process.
func WorkerMain() {
	steps, _ := strconv.Atoi(os.Getenv(envSteps))
	units, _ := strconv.ParseInt(os.Getenv(envUnits), 10, 64)
	memBytes, _ := strconv.ParseInt(os.Getenv(envMem), 10, 64)
	if steps <= 0 {
		steps = 10
	}
	if units <= 0 {
		units = 20_000_000
	}
	var state []byte
	if memBytes > 0 {
		state = make([]byte, memBytes)
		for i := range state {
			state[i] = byte(i * 2654435761)
		}
	}
	sink := uint64(0)
	out := bufio.NewWriter(os.Stdout)
	for s := 1; s <= steps; s++ {
		for i := int64(0); i < units; i++ {
			sink = sink*6364136223846793005 + 1442695040888963407
		}
		fmt.Fprintf(out, "P %.4f\n", float64(s)/float64(steps))
		out.Flush()
	}
	// Read the state back (forces page-ins if we were swapped while
	// stopped).
	var check uint64
	for _, b := range state {
		check += uint64(b)
	}
	fmt.Fprintf(out, "DONE %d %d\n", sink, check)
	out.Flush()
	os.Exit(0)
}

// SpawnSelf re-executes the current binary as a worker. The caller's main
// must route worker invocations to WorkerMain.
func SpawnSelf(spec Spec) (*Worker, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("realexec: cannot locate executable: %w", err)
	}
	if spec.Steps <= 0 {
		spec.Steps = 10
	}
	if spec.UnitsPerStep <= 0 {
		spec.UnitsPerStep = 20_000_000
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(),
		envWorker+"=1",
		fmt.Sprintf("%s=%d", envSteps, spec.Steps),
		fmt.Sprintf("%s=%d", envUnits, spec.UnitsPerStep),
		fmt.Sprintf("%s=%d", envMem, spec.MemBytes),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("realexec: stdout pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("realexec: start worker: %w", err)
	}
	w := &Worker{
		name:  spec.Name,
		cmd:   cmd,
		state: StateRunning,
		done:  make(chan struct{}),
	}
	w.wg.Add(1)
	go w.readLoop(stdout)
	return w, nil
}

// readLoop follows the progress pipe until the child exits.
func (w *Worker) readLoop(r io.Reader) {
	defer w.wg.Done()
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "P "):
			if v, err := strconv.ParseFloat(strings.TrimPrefix(line, "P "), 64); err == nil {
				w.mu.Lock()
				w.progress = v
				w.mu.Unlock()
			}
		case strings.HasPrefix(line, "DONE"):
			w.mu.Lock()
			w.progress = 1
			w.mu.Unlock()
		}
	}
	err := w.cmd.Wait()
	w.mu.Lock()
	if w.state != StateKilled {
		if err != nil {
			w.state = StateKilled
			w.err = err
		} else {
			w.state = StateDone
		}
	}
	w.mu.Unlock()
	close(w.done)
}

// Name returns the worker label.
func (w *Worker) Name() string { return w.name }

// PID returns the child process id.
func (w *Worker) PID() int { return w.cmd.Process.Pid }

// Progress returns the last reported completion fraction.
func (w *Worker) Progress() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.progress
}

// State returns the parent-side view of the worker state.
func (w *Worker) State() State {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// Suspend delivers SIGTSTP — the paper's suspension primitive.
func (w *Worker) Suspend() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state != StateRunning {
		return fmt.Errorf("realexec: cannot suspend %s in state %v", w.name, w.state)
	}
	if err := w.cmd.Process.Signal(syscall.SIGTSTP); err != nil {
		return fmt.Errorf("realexec: SIGTSTP: %w", err)
	}
	w.state = StateSuspended
	return nil
}

// Resume delivers SIGCONT.
func (w *Worker) Resume() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state != StateSuspended {
		return fmt.Errorf("realexec: cannot resume %s in state %v", w.name, w.state)
	}
	if err := w.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		return fmt.Errorf("realexec: SIGCONT: %w", err)
	}
	w.state = StateRunning
	return nil
}

// Kill delivers SIGKILL.
func (w *Worker) Kill() error {
	w.mu.Lock()
	if w.state == StateDone || w.state == StateKilled {
		w.mu.Unlock()
		return nil
	}
	w.state = StateKilled
	w.mu.Unlock()
	// A stopped process still dies on SIGKILL.
	return w.cmd.Process.Kill()
}

// Wait blocks until the worker exits or the timeout elapses; it reports
// whether the worker exited.
func (w *Worker) Wait(timeout time.Duration) bool {
	select {
	case <-w.done:
		w.wg.Wait()
		return true
	case <-time.After(timeout):
		return false
	}
}

// Err returns the terminal error, if any.
func (w *Worker) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

//go:build unix

package realexec

import (
	"fmt"
	"time"

	"hadooppreempt/internal/sweep"
)

// runCell executes one real-process cell: the paper's two-job scenario
// with actual signals, timed by the wall clock.
func (b *Backend) runCell(pt sweep.Point, rec *sweep.Recorder) error {
	prim := pt.Label("prim")
	r := pt.Float("r") / 100
	spec := Spec{
		Steps:        b.cfg.Steps,
		UnitsPerStep: b.cfg.UnitsPerStep,
		MemBytes:     b.cfg.MemBytes,
	}
	start := time.Now()
	tlAttempts, tlSuspensions := 1, 0

	tlSpec := spec
	tlSpec.Name = "tl-" + pt.Key()
	tl, err := SpawnSelf(tlSpec)
	if err != nil {
		return fmt.Errorf("realexec: spawn tl: %w", err)
	}
	defer tl.Kill()

	// Let tl reach the cell's progress point (or finish, for coarse
	// step counts at high r).
	poll := time.NewTicker(2 * time.Millisecond)
	defer poll.Stop()
	waitDeadline := time.Now().Add(b.cfg.StepTimeout)
	for tl.Progress() < r && tl.State() == StateRunning {
		if time.Now().After(waitDeadline) {
			return fmt.Errorf("realexec: tl stuck at %.0f%% before preemption point", tl.Progress()*100)
		}
		<-poll.C
	}

	// th arrives: apply the primitive to tl.
	thStart := time.Now()
	switch prim {
	case "susp":
		if tl.State() == StateRunning {
			if err := tl.Suspend(); err != nil {
				return err
			}
			tlSuspensions++
		}
	case "kill":
		if tl.State() == StateRunning {
			if err := tl.Kill(); err != nil {
				return err
			}
		}
	case "wait":
		if !tl.Wait(b.cfg.StepTimeout) {
			return fmt.Errorf("realexec: tl did not finish under wait")
		}
	default:
		return fmt.Errorf("realexec: unknown primitive %q", prim)
	}

	thSpec := spec
	thSpec.Name = "th-" + pt.Key()
	th, err := SpawnSelf(thSpec)
	if err != nil {
		return fmt.Errorf("realexec: spawn th: %w", err)
	}
	defer th.Kill()
	if !th.Wait(b.cfg.StepTimeout) {
		return fmt.Errorf("realexec: th did not finish")
	}
	sojournTH := time.Since(thStart)

	// Restore tl: resume the suspended victim, or restart the killed one
	// from scratch (its work is lost — the cost the paper measures).
	switch prim {
	case "susp":
		if tl.State() == StateSuspended {
			if err := tl.Resume(); err != nil {
				return err
			}
		}
	case "kill":
		if tl.State() == StateKilled {
			retry := spec
			retry.Name = tlSpec.Name + "-retry"
			tl, err = SpawnSelf(retry)
			if err != nil {
				return fmt.Errorf("realexec: respawn tl: %w", err)
			}
			defer tl.Kill()
			tlAttempts++
		}
	}
	if tl.State() != StateDone && !tl.Wait(b.cfg.StepTimeout) {
		return fmt.Errorf("realexec: tl did not finish (state %v)", tl.State())
	}
	if err := tl.Err(); err != nil {
		return fmt.Errorf("realexec: tl failed: %w", err)
	}
	makespan := time.Since(start)

	rec.Observe("sojourn_th_s", sojournTH.Seconds())
	rec.Observe("makespan_s", makespan.Seconds())
	rec.Observe("tl_attempts", float64(tlAttempts))
	rec.Observe("tl_suspensions", float64(tlSuspensions))
	return nil
}

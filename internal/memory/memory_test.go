package memory

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/sim"
)

// testSetup builds a manager with a tiny, fully controllable geometry:
// 1 KiB pages, 64 KiB of RAM (64 frames), no reserved memory, an optional
// cache, and 128 KiB of swap.
func testSetup(t *testing.T, cacheBytes int64) (*sim.Engine, *Manager) {
	t.Helper()
	eng := sim.New()
	d := disk.New(eng, "swap", disk.Config{
		SeekTime:       time.Millisecond,
		ReadBandwidth:  1 << 20, // 1 MiB/s: 1 KiB page = ~1ms
		WriteBandwidth: 1 << 20,
	})
	m, err := New(eng, d, Config{
		PageSize:          1024,
		RAMBytes:          64 << 10,
		ReservedBytes:     0,
		InitialCacheBytes: cacheBytes,
		SwapBytes:         128 << 10,
		Swappiness:        0,
		PageClusterPages:  4,
		MinorFaultCost:    time.Microsecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, m
}

func mustRegister(t *testing.T, m *Manager, pid PID, bytes int64) *Space {
	t.Helper()
	s, err := m.Register(pid, bytes)
	if err != nil {
		t.Fatalf("Register(%d, %d): %v", pid, bytes, err)
	}
	return s
}

func mustTouch(t *testing.T, m *Manager, pid PID, off, n int64, write bool) time.Duration {
	t.Helper()
	d, err := m.Touch(pid, off, n, write)
	if err != nil {
		t.Fatalf("Touch(%d, %d, %d, %v): %v", pid, off, n, write, err)
	}
	return d
}

func checkInv(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.checkInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestRegisterAndTouchMakesResident(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 8<<10)
	mustTouch(t, m, 1, 0, 8<<10, true)
	if got := m.ResidentBytes(1); got != 8<<10 {
		t.Fatalf("ResidentBytes = %d, want %d", got, 8<<10)
	}
	if got := m.FreeBytes(); got != 56<<10 {
		t.Fatalf("FreeBytes = %d, want %d", got, 56<<10)
	}
	checkInv(t, m)
}

func TestRegisterTwicefails(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 1024)
	if _, err := m.Register(1, 1024); err == nil {
		t.Fatal("second Register should fail")
	}
}

func TestTouchOutOfRangeFails(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 4096)
	if _, err := m.Touch(1, 0, 8192, false); err == nil {
		t.Fatal("touch beyond space should fail")
	}
	if _, err := m.Touch(1, -1024, 512, false); err == nil {
		t.Fatal("negative offset should fail")
	}
}

func TestTouchUnregisteredFails(t *testing.T) {
	_, m := testSetup(t, 0)
	if _, err := m.Touch(42, 0, 1024, false); err == nil {
		t.Fatal("touch by unknown pid should fail")
	}
}

func TestZeroLengthTouchIsFree(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 4096)
	d := mustTouch(t, m, 1, 0, 0, true)
	if d != 0 {
		t.Fatalf("zero-length touch cost %v, want 0", d)
	}
	if m.ResidentBytes(1) != 0 {
		t.Fatal("zero-length touch should not fault pages in")
	}
}

func TestMinorFaultCostCharged(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 4<<10)
	d := mustTouch(t, m, 1, 0, 4<<10, true)
	// 4 pages x 1us minor fault cost, no disk involved.
	if want := 4 * time.Microsecond; d != want {
		t.Fatalf("touch cost %v, want %v", d, want)
	}
	if m.Stats().MinorFaults != 4 {
		t.Fatalf("MinorFaults = %d, want 4", m.Stats().MinorFaults)
	}
}

func TestRetouchResidentIsFree(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 4<<10)
	mustTouch(t, m, 1, 0, 4<<10, true)
	d := mustTouch(t, m, 1, 0, 4<<10, false)
	if d != 0 {
		t.Fatalf("re-touch cost %v, want 0", d)
	}
}

func TestCacheEvictedFirstAtSwappinessZero(t *testing.T) {
	_, m := testSetup(t, 16<<10) // 16 KiB cache, 48 KiB free
	mustRegister(t, m, 1, 56<<10)
	// Touching 56 KiB needs 8 KiB beyond the 48 KiB free: the cache must
	// shrink, and nothing must be swapped.
	mustTouch(t, m, 1, 0, 56<<10, true)
	if got := m.CacheBytes(); got > 8<<10 {
		t.Fatalf("CacheBytes = %d, want <= 8 KiB after reclaim", got)
	}
	if m.Stats().PagedOutBytes != 0 {
		t.Fatalf("PagedOutBytes = %d, want 0 (cache should cover the deficit)", m.Stats().PagedOutBytes)
	}
	if m.SwapUsedBytes() != 0 {
		t.Fatalf("SwapUsedBytes = %d, want 0", m.SwapUsedBytes())
	}
	checkInv(t, m)
}

func TestDirtyEvictionWritesToSwap(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 48<<10)
	mustTouch(t, m, 1, 0, 48<<10, true) // dirty all of p1
	m.MarkStopped(1)
	mustRegister(t, m, 2, 48<<10)
	d := mustTouch(t, m, 2, 0, 48<<10, true)
	if d <= 0 {
		t.Fatal("touch under pressure should pay reclaim latency")
	}
	if m.Stats().PagedOutBytes == 0 {
		t.Fatal("dirty eviction should write to swap")
	}
	if m.SwappedBytes(1) == 0 {
		t.Fatal("p1 (stopped) should have pages in swap")
	}
	s1 := m.Space(1).Stats()
	if s1.PagedOutBytes == 0 {
		t.Fatal("per-space PagedOutBytes should track tl's eviction")
	}
	checkInv(t, m)
}

func TestCleanPagesDroppedForFree(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 48<<10)
	mustTouch(t, m, 1, 0, 48<<10, false) // read-only: clean pages
	m.MarkStopped(1)
	mustRegister(t, m, 2, 48<<10)
	mustTouch(t, m, 2, 0, 48<<10, true)
	if m.Stats().PagedOutBytes != 0 {
		t.Fatalf("clean pages should not be written to swap, got %d bytes", m.Stats().PagedOutBytes)
	}
	if m.SwapUsedBytes() != 0 {
		t.Fatalf("SwapUsedBytes = %d, want 0", m.SwapUsedBytes())
	}
	checkInv(t, m)
}

func TestStoppedProcessEvictedBeforeRunning(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 30<<10)
	mustTouch(t, m, 1, 0, 30<<10, true)
	mustRegister(t, m, 2, 30<<10)
	mustTouch(t, m, 2, 0, 30<<10, true)
	m.MarkStopped(1)
	// A third process needs memory; the stopped process's pages must go
	// first even though p2's are equally old.
	mustRegister(t, m, 3, 16<<10)
	mustTouch(t, m, 3, 0, 16<<10, true)
	if m.SwappedBytes(1) == 0 {
		t.Fatal("stopped p1 should lose pages")
	}
	if m.SwappedBytes(2) > m.SwappedBytes(1) {
		t.Fatalf("running p2 lost more (%d) than stopped p1 (%d)",
			m.SwappedBytes(2), m.SwappedBytes(1))
	}
	checkInv(t, m)
}

func TestPageInChargesMajorFaults(t *testing.T) {
	eng, m := testSetup(t, 0)
	mustRegister(t, m, 1, 48<<10)
	mustTouch(t, m, 1, 0, 48<<10, true)
	m.MarkStopped(1)
	mustRegister(t, m, 2, 48<<10)
	mustTouch(t, m, 2, 0, 48<<10, true)
	if m.SwappedBytes(1) == 0 {
		t.Fatal("setup: p1 must have swapped pages")
	}
	// Resume p1: unregister p2 to free frames, then touch p1's memory.
	m.Unregister(2)
	m.MarkRunning(1)
	eng.RunUntil(10 * time.Second) // let the swap device drain its queue
	before := m.Stats().MajorFaults
	d := mustTouch(t, m, 1, 0, 48<<10, false)
	if m.Stats().MajorFaults == before {
		t.Fatal("touching swapped pages should cause major faults")
	}
	if d <= 0 {
		t.Fatal("page-in should cost disk time")
	}
	if m.Space(1).Stats().PagedInBytes == 0 {
		t.Fatal("per-space PagedInBytes should grow")
	}
	if m.SwappedBytes(1) != 0 {
		t.Fatalf("after full touch, SwappedBytes = %d, want 0", m.SwappedBytes(1))
	}
	checkInv(t, m)
}

func TestSwapSlotFreedOnRedirty(t *testing.T) {
	eng, m := testSetup(t, 0)
	mustRegister(t, m, 1, 48<<10)
	mustTouch(t, m, 1, 0, 48<<10, true)
	m.MarkStopped(1)
	mustRegister(t, m, 2, 40<<10)
	mustTouch(t, m, 2, 0, 40<<10, true)
	swapped := m.SwapUsedBytes()
	if swapped == 0 {
		t.Fatal("setup: some of p1 must be in swap")
	}
	m.Unregister(2)
	m.MarkRunning(1)
	eng.RunUntil(10 * time.Second)
	// Re-dirty everything: swap copies are stale, slots must be freed.
	mustTouch(t, m, 1, 0, 48<<10, true)
	if m.SwapUsedBytes() != 0 {
		t.Fatalf("SwapUsedBytes = %d after re-dirty, want 0", m.SwapUsedBytes())
	}
	checkInv(t, m)
}

func TestUnregisterReleasesEverything(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 48<<10)
	mustTouch(t, m, 1, 0, 48<<10, true)
	m.MarkStopped(1)
	mustRegister(t, m, 2, 48<<10)
	mustTouch(t, m, 2, 0, 48<<10, true)
	m.Unregister(1)
	m.Unregister(2)
	if m.FreeBytes() != 64<<10 {
		t.Fatalf("FreeBytes = %d, want all %d back", m.FreeBytes(), 64<<10)
	}
	if m.SwapUsedBytes() != 0 {
		t.Fatalf("SwapUsedBytes = %d, want 0", m.SwapUsedBytes())
	}
	if m.Space(1) != nil || m.Space(2) != nil {
		t.Fatal("spaces should be gone")
	}
	checkInv(t, m)
}

func TestUnregisterUnknownPIDIsNoop(t *testing.T) {
	_, m := testSetup(t, 0)
	m.Unregister(99) // must not panic
	checkInv(t, m)
}

func TestOOMWhenSwapFullAndAllDirty(t *testing.T) {
	eng := sim.New()
	d := disk.New(eng, "swap", disk.Config{
		SeekTime: time.Millisecond, ReadBandwidth: 1 << 20, WriteBandwidth: 1 << 20,
	})
	m, err := New(eng, d, Config{
		PageSize: 1024, RAMBytes: 16 << 10, SwapBytes: 4 << 10,
		PageClusterPages: 4, MinorFaultCost: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, m, 1, 16<<10)
	mustTouch(t, m, 1, 0, 16<<10, true)
	// All 16 frames dirty and referenced by a running process; only 4 KiB
	// of swap. Another process needs more than cache+swap can provide.
	mustRegister(t, m, 2, 16<<10)
	oomFired := false
	m.SetOOMHandler(func() { oomFired = true })
	_, err = m.Touch(2, 0, 16<<10, true)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if !oomFired {
		t.Fatal("OOM handler should fire")
	}
	checkInv(t, m)
}

func TestOOMHandlerCanFreeMemory(t *testing.T) {
	eng := sim.New()
	d := disk.New(eng, "swap", disk.Config{
		SeekTime: time.Millisecond, ReadBandwidth: 1 << 20, WriteBandwidth: 1 << 20,
	})
	m, err := New(eng, d, Config{
		PageSize: 1024, RAMBytes: 16 << 10, SwapBytes: 4 << 10,
		PageClusterPages: 4, MinorFaultCost: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, m, 1, 16<<10)
	mustTouch(t, m, 1, 0, 16<<10, true)
	mustRegister(t, m, 2, 8<<10)
	m.SetOOMHandler(func() { m.Unregister(1) }) // OOM-kill p1
	if _, err := m.Touch(2, 0, 8<<10, true); err != nil {
		t.Fatalf("touch after OOM kill should succeed: %v", err)
	}
	if m.Space(1) != nil {
		t.Fatal("victim should be gone")
	}
	checkInv(t, m)
}

func TestCacheFillGrowsOnlyIntoFreeFrames(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 60<<10)
	mustTouch(t, m, 1, 0, 60<<10, true)
	m.CacheFill(16 << 10) // only 4 KiB free
	if got := m.CacheBytes(); got != 4<<10 {
		t.Fatalf("CacheBytes = %d, want 4 KiB (free frames only)", got)
	}
	if m.Stats().PagedOutBytes != 0 {
		t.Fatal("CacheFill must never force anonymous eviction")
	}
	checkInv(t, m)
}

func TestSecondChanceSparesReferencedPages(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 32<<10)
	mustTouch(t, m, 1, 0, 32<<10, true)
	// Keep p1's pages hot by re-touching (sets referenced bits), then
	// create pressure with p2. The clock should clear bits on the first
	// sweep rather than evicting immediately.
	mustTouch(t, m, 1, 0, 32<<10, false)
	mustRegister(t, m, 2, 40<<10)
	mustTouch(t, m, 2, 0, 40<<10, true)
	if m.Stats().SecondChanceHit == 0 {
		t.Fatal("clock should have given second chances")
	}
	checkInv(t, m)
}

func TestSwappinessHighEvictsAnonWithCachePresent(t *testing.T) {
	eng := sim.New()
	d := disk.New(eng, "swap", disk.Config{
		SeekTime: time.Millisecond, ReadBandwidth: 1 << 20, WriteBandwidth: 1 << 20,
	})
	m, err := New(eng, d, Config{
		PageSize: 1024, RAMBytes: 64 << 10, InitialCacheBytes: 32 << 10,
		SwapBytes: 128 << 10, Swappiness: 100, PageClusterPages: 4,
		MinorFaultCost: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, m, 1, 30<<10)
	mustTouch(t, m, 1, 0, 30<<10, true)
	m.MarkStopped(1)
	mustRegister(t, m, 2, 30<<10)
	mustTouch(t, m, 2, 0, 30<<10, true)
	// With swappiness 100 anonymous pages are targeted even though cache
	// remains.
	if m.Stats().PagedOutBytes == 0 {
		t.Fatal("swappiness 100 should swap anon pages despite cache")
	}
	if m.CacheBytes() == 0 {
		t.Fatal("cache should not be fully drained at swappiness 100")
	}
	checkInv(t, m)
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	d := disk.New(eng, "swap", disk.DefaultConfig())
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero page size", Config{PageSize: 0, RAMBytes: 1 << 20}},
		{"reserved >= RAM", Config{PageSize: 1024, RAMBytes: 1 << 20, ReservedBytes: 1 << 20}},
		{"bad swappiness", Config{PageSize: 1024, RAMBytes: 1 << 20, Swappiness: 101}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(eng, d, tc.cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestDefaultConfigIsValid(t *testing.T) {
	eng := sim.New()
	d := disk.New(eng, "swap", disk.DefaultConfig())
	m, err := New(eng, d, DefaultConfig())
	if err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	// 4 GB - 240 MB reserved - 256 MB cache should leave ~3.5 GB free.
	free := m.FreeBytes()
	if free < 3<<30 || free > 4<<30 {
		t.Fatalf("FreeBytes = %d, want ~3.5 GB", free)
	}
}

// TestWorkingSetBeyondRAMThrashes reproduces the qualitative Figure 4
// mechanism at miniature scale: as the second process's allocation grows,
// total swap traffic grows superlinearly once combined working sets exceed
// RAM.
func TestWorkingSetBeyondRAMThrashes(t *testing.T) {
	run := func(thBytes int64) int64 {
		eng := sim.New()
		d := disk.New(eng, "swap", disk.Config{
			SeekTime: time.Millisecond, ReadBandwidth: 1 << 20, WriteBandwidth: 1 << 20,
		})
		m, err := New(eng, d, Config{
			PageSize: 1024, RAMBytes: 64 << 10, SwapBytes: 256 << 10,
			PageClusterPages: 4, MinorFaultCost: time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		const tlBytes = 40 << 10
		mustRegister(t, m, 1, tlBytes)
		mustTouch(t, m, 1, 0, tlBytes, true)
		m.MarkStopped(1)
		mustRegister(t, m, 2, thBytes)
		// th writes all pages at startup and reads them back at the end,
		// like the paper's worst-case tasks.
		mustTouch(t, m, 2, 0, thBytes, true)
		mustTouch(t, m, 2, 0, thBytes, false)
		return m.Stats().PagedOutBytes + m.Stats().PagedInBytes
	}
	small := run(8 << 10) // fits comfortably
	medium := run(30 << 10)
	large := run(60 << 10) // alone nearly fills RAM
	if small != 0 {
		t.Fatalf("small allocation should not swap, got %d bytes", small)
	}
	if medium == 0 {
		t.Fatal("medium allocation should cause some swap")
	}
	if large <= medium*2 {
		t.Fatalf("swap traffic should grow superlinearly: medium=%d large=%d", medium, large)
	}
}

// Property: any sequence of register/touch/stop/run/unregister operations
// preserves frame conservation and mapping consistency.
func TestPropertyInvariantsUnderRandomOps(t *testing.T) {
	type op struct {
		Kind   uint8
		PID    uint8
		Offset uint16
		Len    uint16
		Write  bool
	}
	f := func(ops []op) bool {
		eng := sim.New()
		d := disk.New(eng, "swap", disk.Config{
			SeekTime: time.Millisecond, ReadBandwidth: 1 << 20, WriteBandwidth: 1 << 20,
		})
		m, err := New(eng, d, Config{
			PageSize: 1024, RAMBytes: 32 << 10, InitialCacheBytes: 8 << 10,
			SwapBytes: 64 << 10, PageClusterPages: 4, MinorFaultCost: time.Microsecond,
		})
		if err != nil {
			return false
		}
		m.SetOOMHandler(func() {
			// Kill the largest resident space, like the kernel would.
			var victim PID
			var max int64 = -1
			for pid := range m.spaces {
				if r := m.ResidentBytes(pid); r > max {
					max = r
					victim = pid
				}
			}
			if max >= 0 {
				m.Unregister(victim)
			}
		})
		const spaceSize = 16 << 10
		for _, o := range ops {
			pid := PID(o.PID % 8)
			switch o.Kind % 5 {
			case 0:
				m.Register(pid, spaceSize) // error (already present) is fine
			case 1:
				if m.Space(pid) != nil {
					off := int64(o.Offset) % spaceSize
					n := int64(o.Len)%4096 + 1
					if off+n > spaceSize {
						n = spaceSize - off
					}
					m.Touch(pid, off, n, o.Write) // OOM error is fine
				}
			case 2:
				m.MarkStopped(pid)
			case 3:
				m.MarkRunning(pid)
			case 4:
				m.Unregister(pid)
			}
			if err := m.checkInvariants(); err != nil {
				t.Logf("invariant after op %+v: %v", o, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

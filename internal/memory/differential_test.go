package memory

// Differential property test: the run-based Manager must be an exact
// drop-in for the original per-page model (refManager). Both are driven
// through identical randomized scripts of register/touch/stop/resume/
// unregister/cache-fill/advance operations over adversarial geometries
// (tiny swap, swappiness > 0, cache present/absent) and every observable
// — returned latencies, errors, manager stats, per-space stats, free and
// cache bytes, swap usage, and the swap device's own counters — must match
// after every single operation.

import (
	"math/rand"
	"testing"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/sim"
)

// diffPair holds the two implementations under lockstep test.
type diffPair struct {
	t    *testing.T
	engN *sim.Engine
	engR *sim.Engine
	devN *disk.Device
	devR *disk.Device
	n    *Manager
	r    *refManager
	pids []PID
	// touching guards the OOM handlers: killing the pid that is mid-Touch
	// would leave the reference model faulting into a freed space, a
	// pathological state with no observable contract.
	touching PID
}

func newDiffPair(t *testing.T, cfg Config, dcfg disk.Config, pids []PID) *diffPair {
	t.Helper()
	p := &diffPair{t: t, engN: sim.New(), engR: sim.New(), pids: pids, touching: -100}
	p.devN = disk.New(p.engN, "swapN", dcfg)
	p.devR = disk.New(p.engR, "swapR", dcfg)
	var err error
	p.n, err = New(p.engN, p.devN, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.r, err = newRefManager(p.engR, p.devR, cfg)
	if err != nil {
		t.Fatalf("newRefManager: %v", err)
	}
	oom := func(resident func(PID) int64, unregister func(PID)) func() {
		return func() {
			victim := PID(-1)
			var maxR int64 = -1
			for _, pid := range pids {
				if pid == p.touching {
					continue
				}
				if r := resident(pid); r > maxR {
					maxR = r
					victim = pid
				}
			}
			if victim >= 0 {
				unregister(victim)
			}
		}
	}
	p.n.SetOOMHandler(oom(p.n.ResidentBytes, p.n.Unregister))
	p.r.SetOOMHandler(oom(p.r.ResidentBytes, p.r.Unregister))
	return p
}

// compare asserts every observable of both implementations matches.
func (p *diffPair) compare(step int, op string) {
	t := p.t
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("step %d (%s): "+format, append([]any{step, op}, args...)...)
	}
	if err := p.n.checkInvariants(); err != nil {
		fail("run-based invariants: %v", err)
	}
	if a, b := p.n.Stats(), p.r.Stats(); a != b {
		fail("Stats diverged:\n run-based: %+v\n reference: %+v", a, b)
	}
	if a, b := p.n.FreeBytes(), p.r.FreeBytes(); a != b {
		fail("FreeBytes %d != %d", a, b)
	}
	if a, b := p.n.CacheBytes(), p.r.CacheBytes(); a != b {
		fail("CacheBytes %d != %d", a, b)
	}
	if a, b := p.n.SwapUsedBytes(), p.r.SwapUsedBytes(); a != b {
		fail("SwapUsedBytes %d != %d", a, b)
	}
	if a, b := p.devN.Stats(), p.devR.Stats(); a != b {
		fail("disk stats diverged:\n run-based: %+v\n reference: %+v", a, b)
	}
	if a, b := p.devN.BusyUntil(), p.devR.BusyUntil(); a != b {
		fail("disk BusyUntil %v != %v", a, b)
	}
	for _, pid := range p.pids {
		sn, sr := p.n.Space(pid), p.r.Space(pid)
		if (sn == nil) != (sr == nil) {
			fail("space %d presence: run-based %v, reference %v", pid, sn != nil, sr != nil)
		}
		if sn == nil {
			continue
		}
		if a, b := sn.Stats(), sr.Stats(); a != b {
			fail("space %d stats diverged:\n run-based: %+v\n reference: %+v", pid, a, b)
		}
	}
	if a, b := p.n.SwapRate(30*time.Second), p.r.SwapRate(30*time.Second); a != b {
		fail("SwapRate %v != %v", a, b)
	}
}

// diffConfig draws an adversarial geometry: small RAM so reclaim is
// constant, swap sized from starving to roomy, the full swappiness range,
// and page-cluster batches that don't divide space sizes evenly.
func diffConfig(rng *rand.Rand) Config {
	ramPages := 16 + rng.Intn(49) // 16..64 frames
	return Config{
		PageSize:          1024,
		RAMBytes:          int64(ramPages) << 10,
		ReservedBytes:     0,
		InitialCacheBytes: int64(rng.Intn(3)) * 8 << 10,
		SwapBytes:         int64(rng.Intn(33)) << 10, // 0..32 KiB: often starved
		Swappiness:        []int{0, 0, 30, 60, 100}[rng.Intn(5)],
		PageClusterPages:  []int{1, 3, 4, 7, 32}[rng.Intn(5)],
		MinorFaultCost:    time.Microsecond,
	}
}

func TestDifferentialRunBasedVsPerPage(t *testing.T) {
	const (
		scenarios = 120
		opsPer    = 250
	)
	pids := []PID{0, 1, 2, 3, 4}
	for sc := 0; sc < scenarios; sc++ {
		rng := rand.New(rand.NewSource(int64(1000 + sc)))
		cfg := diffConfig(rng)
		dcfg := disk.Config{
			SeekTime:       time.Millisecond,
			ReadBandwidth:  1 << 20,
			WriteBandwidth: 1 << 20,
		}
		p := newDiffPair(t, cfg, dcfg, pids)
		const spaceMax = 40 << 10 // up to 2.5x the largest RAM
		for step := 0; step < opsPer; step++ {
			pid := pids[rng.Intn(len(pids))]
			switch rng.Intn(10) {
			case 0, 1:
				size := int64(rng.Intn(spaceMax))
				_, errN := p.n.Register(pid, size)
				_, errR := p.r.Register(pid, size)
				if (errN == nil) != (errR == nil) {
					t.Fatalf("scenario %d step %d: Register err mismatch: %v vs %v", sc, step, errN, errR)
				}
				p.compare(step, "register")
			case 2, 3, 4, 5, 6:
				if p.n.Space(pid) == nil {
					continue
				}
				size := p.n.Space(pid).SizeBytes()
				if size == 0 {
					continue
				}
				off := rng.Int63n(size)
				length := 1 + rng.Int63n(size-off)
				write := rng.Intn(2) == 0
				p.touching = pid
				dN, errN := p.n.Touch(pid, off, length, write)
				dR, errR := p.r.Touch(pid, off, length, write)
				p.touching = -100
				if dN != dR {
					t.Fatalf("scenario %d step %d: Touch(%d,%d,%d,%v) latency %v vs %v",
						sc, step, pid, off, length, write, dN, dR)
				}
				if (errN == nil) != (errR == nil) || (errN != nil && errN.Error() != errR.Error()) {
					t.Fatalf("scenario %d step %d: Touch err mismatch: %v vs %v", sc, step, errN, errR)
				}
				p.compare(step, "touch")
			case 7:
				if rng.Intn(2) == 0 {
					p.n.MarkStopped(pid)
					p.r.MarkStopped(pid)
					p.compare(step, "stop")
				} else {
					p.n.MarkRunning(pid)
					p.r.MarkRunning(pid)
					p.compare(step, "run")
				}
			case 8:
				if rng.Intn(3) == 0 {
					p.n.Unregister(pid)
					p.r.Unregister(pid)
					p.compare(step, "unregister")
				} else {
					bytes := int64(rng.Intn(16)) << 10
					p.n.CacheFill(bytes)
					p.r.CacheFill(bytes)
					p.compare(step, "cachefill")
				}
			case 9:
				d := time.Duration(rng.Intn(2000)) * time.Millisecond
				p.engN.RunFor(d)
				p.engR.RunFor(d)
				p.compare(step, "advance")
			}
		}
	}
}

// TestDifferentialWorstCaseSweep drives both models through the paper's
// worst-case shape (write-everything, stop, second task floods memory,
// resume and read back) at miniature scale — the exact pattern behind
// Figures 3 and 4 — including a swappiness>0 variant.
func TestDifferentialWorstCaseSweep(t *testing.T) {
	for _, swappiness := range []int{0, 60} {
		cfg := Config{
			PageSize:          1024,
			RAMBytes:          64 << 10,
			InitialCacheBytes: 16 << 10,
			SwapBytes:         96 << 10,
			Swappiness:        swappiness,
			PageClusterPages:  4,
			MinorFaultCost:    time.Microsecond,
		}
		dcfg := disk.Config{SeekTime: time.Millisecond, ReadBandwidth: 1 << 20, WriteBandwidth: 1 << 20}
		p := newDiffPair(t, cfg, dcfg, []PID{1, 2})
		step := 0
		do := func(op string, fn func()) {
			fn()
			p.compare(step, op)
			step++
		}
		const tl, th = 48 << 10, 56 << 10
		do("register tl", func() { p.n.Register(1, tl); p.r.Register(1, tl) })
		do("alloc tl", func() {
			p.touching = 1
			p.n.Touch(1, 0, tl, true)
			p.r.Touch(1, 0, tl, true)
			p.touching = -100
		})
		do("stop tl", func() { p.n.MarkStopped(1); p.r.MarkStopped(1) })
		do("register th", func() { p.n.Register(2, th); p.r.Register(2, th) })
		for off := int64(0); off < th; off += 8 << 10 {
			do("alloc th", func() {
				p.touching = 2
				p.n.Touch(2, off, 8<<10, true)
				p.r.Touch(2, off, 8<<10, true)
				p.touching = -100
			})
		}
		do("drain", func() { p.engN.RunFor(5 * time.Second); p.engR.RunFor(5 * time.Second) })
		do("read th", func() {
			p.touching = 2
			p.n.Touch(2, 0, th, false)
			p.r.Touch(2, 0, th, false)
			p.touching = -100
		})
		do("exit th", func() { p.n.Unregister(2); p.r.Unregister(2) })
		do("resume tl", func() { p.n.MarkRunning(1); p.r.MarkRunning(1) })
		do("read tl", func() {
			p.touching = 1
			p.n.Touch(1, 0, tl, false)
			p.r.Touch(1, 0, tl, false)
			p.touching = -100
		})
	}
}

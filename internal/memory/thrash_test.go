package memory

import (
	"testing"
	"time"
)

func TestSwapRateZeroWithoutTraffic(t *testing.T) {
	_, m := testSetup(t, 0)
	if r := m.SwapRate(10 * time.Second); r != 0 {
		t.Fatalf("SwapRate = %v, want 0", r)
	}
	if m.Thrashing(10*time.Second, 1) {
		t.Fatal("no traffic should not be thrashing")
	}
}

func TestSwapRateTracksTraffic(t *testing.T) {
	_, m := testSetup(t, 0)
	mustRegister(t, m, 1, 48<<10)
	mustTouch(t, m, 1, 0, 48<<10, true)
	m.MarkStopped(1)
	mustRegister(t, m, 2, 48<<10)
	mustTouch(t, m, 2, 0, 48<<10, true)
	if m.Stats().PagedOutBytes == 0 {
		t.Fatal("setup: expected page-out")
	}
	rate := m.SwapRate(10 * time.Second)
	if rate <= 0 {
		t.Fatalf("SwapRate = %v, want > 0", rate)
	}
	if !m.Thrashing(10*time.Second, rate/2) {
		t.Fatal("rate above threshold should report thrashing")
	}
	if m.Thrashing(10*time.Second, rate*2) {
		t.Fatal("rate below threshold should not report thrashing")
	}
}

func TestSwapRateWindowExpires(t *testing.T) {
	eng, m := testSetup(t, 0)
	mustRegister(t, m, 1, 48<<10)
	mustTouch(t, m, 1, 0, 48<<10, true)
	m.MarkStopped(1)
	mustRegister(t, m, 2, 48<<10)
	mustTouch(t, m, 2, 0, 48<<10, true)
	if m.SwapRate(time.Minute) == 0 {
		t.Fatal("setup: expected traffic")
	}
	eng.RunUntil(10 * time.Minute)
	if r := m.SwapRate(time.Minute); r != 0 {
		t.Fatalf("old traffic should age out of the window, got %v", r)
	}
}

func TestSwapEventRingBounded(t *testing.T) {
	// Force many small reclaim rounds and verify the ring stays bounded
	// (no unbounded growth, old entries overwritten).
	eng, m := testSetup(t, 0)
	mustRegister(t, m, 1, 48<<10)
	for i := 0; i < 200; i++ {
		mustTouch(t, m, 1, 0, 48<<10, true)
		m.MarkStopped(1)
		pid := PID(1000 + i)
		mustRegister(t, m, pid, 20<<10)
		mustTouch(t, m, pid, 0, 20<<10, true)
		m.Unregister(pid)
		m.MarkRunning(1)
		eng.RunFor(time.Second)
	}
	if len(m.swapEvents) > swapEventRing {
		t.Fatalf("ring grew to %d entries, cap %d", len(m.swapEvents), swapEventRing)
	}
	checkInv(t, m)
}

package memory

// Invariant coverage at the reclaim boundary the figure experiments lean
// on hardest: swap exhaustion while the clock is forced (swappiness > 0)
// to pick anonymous victims with cache still present. Before this file,
// checkInvariants was never exercised at that boundary.

import (
	"errors"
	"testing"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/sim"
)

// boundarySetup builds a manager with a tiny swap so reclaim hits the
// swap-full path quickly.
func boundarySetup(t *testing.T, swappiness int, swapBytes int64) (*sim.Engine, *Manager) {
	t.Helper()
	eng := sim.New()
	d := disk.New(eng, "swap", disk.Config{
		SeekTime:       time.Millisecond,
		ReadBandwidth:  1 << 20,
		WriteBandwidth: 1 << 20,
	})
	m, err := New(eng, d, Config{
		PageSize:          1024,
		RAMBytes:          32 << 10,
		InitialCacheBytes: 8 << 10,
		SwapBytes:         swapBytes,
		Swappiness:        swappiness,
		PageClusterPages:  4,
		MinorFaultCost:    time.Microsecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, m
}

// TestInvariantsSwapFullSwappinessReclaim drives reclaim into the state
// where swap is exhausted, dirty pages must be skipped by the clock, and
// swappiness > 0 splits the batch between cache and anonymous memory —
// checking manager invariants after every step.
func TestInvariantsSwapFullSwappinessReclaim(t *testing.T) {
	for _, swappiness := range []int{30, 60, 100} {
		_, m := boundarySetup(t, swappiness, 6<<10) // 6 pages of swap only
		step := func(name string) {
			t.Helper()
			if err := m.checkInvariants(); err != nil {
				t.Fatalf("swappiness=%d after %s: %v", swappiness, name, err)
			}
		}
		mustRegister(t, m, 1, 24<<10)
		mustTouch(t, m, 1, 0, 24<<10, true) // dirty everything
		step("fill p1")
		m.MarkStopped(1)
		step("stop p1")
		mustRegister(t, m, 2, 24<<10)
		// p2 floods memory: reclaim must write p1's dirty pages until the
		// 6 KiB swap fills, then skip dirty pages and fall back to cache.
		for off := int64(0); off < 24<<10; off += 4 << 10 {
			if _, err := m.Touch(2, off, 4<<10, true); err != nil &&
				!errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("swappiness=%d touch: %v", swappiness, err)
			}
			step("pressure touch")
		}
		if m.SwapUsedBytes() > 6<<10 {
			t.Fatalf("swappiness=%d swap overcommitted: %d bytes", swappiness, m.SwapUsedBytes())
		}
		if m.SwapFreeBytes() < 0 {
			t.Fatalf("swappiness=%d negative free swap", swappiness)
		}
		// Once swap is exhausted, the surviving dirty resident pages of
		// the stopped process must still be intact (skipped, not lost).
		total := m.ResidentBytes(1) + m.SwappedBytes(1)
		if total+m.SwapUsedBytes() < 6<<10 {
			t.Fatalf("swappiness=%d p1 accounting lost pages: resident+swapped=%d", swappiness, total)
		}
		step("final")
	}
}

// TestSwapFullOOMThenRecovery checks the full boundary cycle: swap fills,
// OOM fires, the handler frees a space, and subsequent touches succeed
// with invariants intact throughout.
func TestSwapFullOOMThenRecovery(t *testing.T) {
	_, m := boundarySetup(t, 60, 2<<10)
	mustRegister(t, m, 1, 24<<10)
	mustTouch(t, m, 1, 0, 24<<10, true)
	m.MarkStopped(1)
	oomKills := 0
	m.SetOOMHandler(func() {
		oomKills++
		m.Unregister(1)
	})
	mustRegister(t, m, 2, 24<<10)
	if _, err := m.Touch(2, 0, 24<<10, true); err != nil {
		t.Fatalf("touch after OOM-kill should succeed: %v", err)
	}
	if oomKills == 0 {
		t.Fatal("expected the OOM handler to fire at the swap-full boundary")
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if m.Space(1) != nil {
		t.Fatal("victim should be unregistered")
	}
	if got := m.ResidentBytes(2); got == 0 {
		t.Fatal("survivor should hold memory after recovery")
	}
}

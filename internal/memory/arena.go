package memory

import "sync"

// managerPool recycles Manager shells so a sweep cell that tears down and
// rebuilds its node (once per repetition) reuses the extent lists, stacks
// and swap-event ring instead of reallocating them. sync.Pool keeps the
// arenas effectively per-worker without any plumbing through the harness.
var managerPool = sync.Pool{New: func() any { return &Manager{} }}

// getManager returns a zeroed manager shell with retained slice capacity.
func getManager() *Manager {
	m := managerPool.Get().(*Manager)
	m.exts.reset()
	m.freeStack = m.freeStack[:0]
	m.cacheStack = m.cacheStack[:0]
	m.swapEvents = m.swapEvents[:0]
	m.swapHead = 0
	m.nframes = 0
	m.freeFrames = 0
	m.cachePages = 0
	m.clockHand = 0
	m.swapUsed = 0
	m.stats = Stats{}
	m.onOOM = nil
	if m.spaces == nil {
		m.spaces = make(map[PID]*Space)
	} else {
		clear(m.spaces)
	}
	clear(m.dense)
	m.dense = m.dense[:0]
	return m
}

// Release returns the manager's internal buffers to the arena for reuse by
// a future New. The caller must not touch the manager, its spaces, or any
// stats snapshot obtained through pointers afterwards.
func (m *Manager) Release() {
	m.eng = nil
	m.swap = nil
	m.onOOM = nil
	// Harvest still-registered spaces into the shell freelist; only their
	// slice capacity is reused, so map iteration order is immaterial.
	for _, s := range m.spaces {
		s.runs = s.runs[:0]
		m.spaceFree = append(m.spaceFree, s)
	}
	clear(m.spaces)
	managerPool.Put(m)
}

package memory

// Gap buffers over the ordered interval lists (frame extents and page
// runs). The reclaim clock sweeps frames in order, allocations consume the
// frames reclaim just freed, and touches walk pages sequentially, so
// splits and merges cluster around one moving position; keeping the
// slice's spare capacity as a movable gap at that position makes each
// insert/delete O(distance since the last edit) — effectively O(1) —
// instead of O(list length). The type is deliberately concrete: a generic
// version pays dictionary-call overhead on the search and access paths,
// which are the hottest code in the simulator. Page-run lists stay plain
// slices — they are short enough that splice copies beat the extra
// indirection of a gap.

// gapGrow is how much the gap widens when it runs out.
const gapGrow = 64

type extList struct {
	buf []frameExt
	gs  int // physical index where the gap starts (== logical index)
	gl  int // gap length
	// hint is the last search result. The clock hand and the allocator
	// revisit the same neighbourhood, so checking it (and its successor)
	// first turns most binary searches into one or two comparisons.
	// Correctness never depends on it: extents are disjoint, so a
	// containment hit is the right entry no matter how indices shifted.
	hint int
}

func (g *extList) len() int { return len(g.buf) - g.gl }

// at returns the element at logical index i. The pointer is valid only
// until the next insert or delete.
func (g *extList) at(i int) *frameExt {
	if i >= g.gs {
		i += g.gl
	}
	return &g.buf[i]
}

// reset empties the list, keeping capacity.
func (g *extList) reset() {
	g.gs = 0
	g.gl = len(g.buf)
}

// moveGap relocates the gap to logical index i.
func (g *extList) moveGap(i int) {
	switch {
	case i < g.gs:
		copy(g.buf[i+g.gl:g.gs+g.gl], g.buf[i:g.gs])
	case i > g.gs:
		copy(g.buf[g.gs:], g.buf[g.gs+g.gl:i+g.gl])
	}
	g.gs = i
}

// insert places e at logical index i, shifting later entries up.
func (g *extList) insert(i int, e frameExt) {
	g.moveGap(i)
	if g.gl == 0 {
		nb := make([]frameExt, len(g.buf)+gapGrow)
		copy(nb, g.buf[:g.gs])
		copy(nb[g.gs+gapGrow:], g.buf[g.gs:])
		g.buf = nb
		g.gl = gapGrow
	}
	g.buf[g.gs] = e
	g.gs++
	g.gl--
}

// delete removes the entry at logical index i.
func (g *extList) delete(i int) {
	g.moveGap(i + 1)
	g.gs--
	g.gl++
}

// search returns the logical index of the extent containing frame f (the
// last entry whose start is <= f).
func (g *extList) search(f int32) int {
	n := g.len()
	if h := g.hint; h < n {
		if e := g.at(h); e.start <= f {
			if f < e.start+e.n {
				return h
			}
			if h+1 < n {
				if e2 := g.at(h + 1); e2.start <= f && f < e2.start+e2.n {
					g.hint = h + 1
					return h + 1
				}
			}
		}
	}
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.at(mid).start <= f {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	g.hint = lo
	return lo
}

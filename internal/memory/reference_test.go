package memory

// This file preserves the original per-page memory manager as an executable
// reference model. The production Manager replaced its per-page loops with
// run/interval-based accounting (see memory.go); the differential property
// test (differential_test.go) drives both implementations through the same
// randomized scripts and asserts byte-identical accounting. Keep this model
// naive and obviously correct — it is the specification.

import (
	"fmt"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/sim"
)

type refPage struct {
	state pageState
	frame int32
	dirty bool
	slot  bool
}

type refSpace struct {
	pid      PID
	npages   int
	pages    []refPage
	resident int
	swapped  int
	stopped  bool
	stats    SpaceStats
	pageSize int64
}

func (s *refSpace) Stats() SpaceStats {
	st := s.stats
	st.ResidentBytes = int64(s.resident) * s.pageSize
	st.SwappedBytes = int64(s.swapped) * s.pageSize
	return st
}

type refFrame struct {
	owner      PID
	page       int32
	referenced bool
	inUse      bool
}

// refManager is the original per-page implementation of Manager.
type refManager struct {
	eng  *sim.Engine
	swap *disk.Device
	cfg  Config

	frames      []refFrame
	free        []int32
	spaces      map[PID]*refSpace
	clockHand   int
	cacheFrames []int32
	swapUsed    int64
	stats       Stats

	swapOutStream disk.StreamID
	swapInStream  disk.StreamID

	onOOM func()

	swapEvents []swapEvent
	swapHead   int
}

func newRefManager(eng *sim.Engine, swap *disk.Device, cfg Config) (*refManager, error) {
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("memory: page size %d must be positive", cfg.PageSize)
	}
	if cfg.RAMBytes <= cfg.ReservedBytes {
		return nil, fmt.Errorf("memory: RAM %d must exceed reserved %d", cfg.RAMBytes, cfg.ReservedBytes)
	}
	if cfg.Swappiness < 0 || cfg.Swappiness > 100 {
		return nil, fmt.Errorf("memory: swappiness %d out of [0,100]", cfg.Swappiness)
	}
	if cfg.PageClusterPages <= 0 {
		cfg.PageClusterPages = 1
	}
	usable := (cfg.RAMBytes - cfg.ReservedBytes) / cfg.PageSize
	if usable <= 0 {
		return nil, fmt.Errorf("memory: no usable frames")
	}
	m := &refManager{
		eng:           eng,
		swap:          swap,
		cfg:           cfg,
		frames:        make([]refFrame, usable),
		free:          make([]int32, 0, usable),
		spaces:        make(map[PID]*refSpace),
		swapOutStream: disk.StreamID(0x5157_4f55),
		swapInStream:  disk.StreamID(0x5157_494e),
	}
	for i := int32(int(usable) - 1); i >= 0; i-- {
		m.free = append(m.free, i)
	}
	cachePages := int(cfg.InitialCacheBytes / cfg.PageSize)
	if cachePages > len(m.frames) {
		cachePages = len(m.frames)
	}
	for i := 0; i < cachePages; i++ {
		m.cacheFrames = append(m.cacheFrames, m.takeFreeFrameFor(cacheOwner, int32(i)))
	}
	return m, nil
}

func (m *refManager) Stats() Stats            { return m.stats }
func (m *refManager) SetOOMHandler(fn func()) { m.onOOM = fn }
func (m *refManager) FreeBytes() int64        { return int64(len(m.free)) * m.cfg.PageSize }
func (m *refManager) CacheBytes() int64       { return int64(len(m.cacheFrames)) * m.cfg.PageSize }
func (m *refManager) SwapUsedBytes() int64    { return m.swapUsed }
func (m *refManager) Space(pid PID) *refSpace { return m.spaces[pid] }
func (m *refManager) ResidentBytes(pid PID) int64 {
	if s, ok := m.spaces[pid]; ok {
		return int64(s.resident) * m.cfg.PageSize
	}
	return 0
}

func (m *refManager) SwappedBytes(pid PID) int64 {
	if s, ok := m.spaces[pid]; ok {
		return int64(s.swapped) * m.cfg.PageSize
	}
	return 0
}

func (m *refManager) Register(pid PID, bytes int64) (*refSpace, error) {
	if _, ok := m.spaces[pid]; ok {
		return nil, fmt.Errorf("memory: pid %d already registered", pid)
	}
	if bytes < 0 {
		return nil, fmt.Errorf("memory: negative space size %d", bytes)
	}
	npages := int((bytes + m.cfg.PageSize - 1) / m.cfg.PageSize)
	s := &refSpace{
		pid:      pid,
		npages:   npages,
		pages:    make([]refPage, npages),
		pageSize: m.cfg.PageSize,
	}
	m.spaces[pid] = s
	return s, nil
}

func (m *refManager) Unregister(pid PID) {
	s, ok := m.spaces[pid]
	if !ok {
		return
	}
	for i := range s.pages {
		p := &s.pages[i]
		if p.state == pageResident {
			m.releaseFrame(p.frame)
		}
		if p.slot {
			m.swapUsed -= m.cfg.PageSize
			p.slot = false
		}
		p.state = pageUntouched
	}
	delete(m.spaces, pid)
}

func (m *refManager) MarkStopped(pid PID) {
	s, ok := m.spaces[pid]
	if !ok {
		return
	}
	s.stopped = true
	for i := range s.pages {
		p := &s.pages[i]
		if p.state == pageResident {
			m.frames[p.frame].referenced = false
		}
	}
}

func (m *refManager) MarkRunning(pid PID) {
	if s, ok := m.spaces[pid]; ok {
		s.stopped = false
	}
}

func (m *refManager) CacheFill(bytes int64) {
	pages := int(bytes / m.cfg.PageSize)
	for i := 0; i < pages && len(m.free) > 0; i++ {
		m.cacheFrames = append(m.cacheFrames, m.takeFreeFrameFor(cacheOwner, 0))
		m.stats.CacheFillBytes += m.cfg.PageSize
	}
}

func (m *refManager) Touch(pid PID, offset, length int64, write bool) (time.Duration, error) {
	s, ok := m.spaces[pid]
	if !ok {
		return 0, fmt.Errorf("memory: touch by unregistered pid %d", pid)
	}
	if length <= 0 {
		return 0, nil
	}
	first := int(offset / m.cfg.PageSize)
	last := int((offset + length - 1) / m.cfg.PageSize)
	if first < 0 || last >= s.npages {
		return 0, fmt.Errorf("memory: pid %d touch [%d,%d) outside %d-byte space",
			pid, offset, offset+length, int64(s.npages)*s.pageSize)
	}
	var cpuCost time.Duration
	var diskDeadline time.Duration
	pendingIn := 0
	flushIn := func() {
		if pendingIn == 0 {
			return
		}
		bytes := int64(pendingIn) * m.cfg.PageSize
		done := m.swap.Submit(disk.Read, bytes, m.swapInStream)
		if done > diskDeadline {
			diskDeadline = done
		}
		m.stats.PagedInBytes += bytes
		s.stats.PagedInBytes += bytes
		m.noteSwapTraffic(bytes)
		pendingIn = 0
	}
	finish := func() time.Duration {
		total := cpuCost
		if wait := diskDeadline - m.eng.Now(); wait > 0 {
			total += wait
		}
		return total
	}
	for i := first; i <= last; i++ {
		p := &s.pages[i]
		switch p.state {
		case pageResident:
			m.frames[p.frame].referenced = true
			if write && !p.dirty {
				p.dirty = true
				m.dropSwapSlot(p)
			}
		case pageUntouched:
			cpu, deadline, err := m.faultIn(s, i, write, false)
			cpuCost += cpu
			if deadline > diskDeadline {
				diskDeadline = deadline
			}
			if err != nil {
				flushIn()
				return finish(), err
			}
		case pageSwapped:
			cpu, deadline, err := m.faultIn(s, i, write, true)
			cpuCost += cpu
			if deadline > diskDeadline {
				diskDeadline = deadline
			}
			if err != nil {
				flushIn()
				return finish(), err
			}
			pendingIn++
			if pendingIn >= m.cfg.PageClusterPages {
				flushIn()
			}
		}
	}
	flushIn()
	return finish(), nil
}

func (m *refManager) faultIn(s *refSpace, i int, write, fromSwap bool) (time.Duration, time.Duration, error) {
	deadline, frameIdx, err := m.allocFrame()
	if err != nil {
		return 0, deadline, err
	}
	f := &m.frames[frameIdx]
	f.owner = s.pid
	f.page = int32(i)
	f.referenced = true
	f.inUse = true
	p := &s.pages[i]
	p.state = pageResident
	p.frame = frameIdx
	s.resident++
	if fromSwap {
		s.swapped--
		s.stats.MajorFaults++
		m.stats.MajorFaults++
		p.dirty = false
		if write {
			p.dirty = true
			m.dropSwapSlot(p)
		}
	} else {
		s.stats.MinorFaults++
		m.stats.MinorFaults++
		p.dirty = write
	}
	return m.cfg.MinorFaultCost, deadline, nil
}

func (m *refManager) dropSwapSlot(p *refPage) {
	if p.slot {
		p.slot = false
		m.swapUsed -= m.cfg.PageSize
	}
}

func (m *refManager) takeFreeFrameFor(owner PID, pg int32) int32 {
	idx := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.frames[idx] = refFrame{owner: owner, page: pg, inUse: true}
	return idx
}

func (m *refManager) releaseFrame(idx int32) {
	m.frames[idx] = refFrame{}
	m.free = append(m.free, idx)
}

func (m *refManager) allocFrame() (time.Duration, int32, error) {
	if len(m.free) == 0 {
		deadline := m.reclaim()
		if len(m.free) == 0 {
			m.stats.OOMKills++
			if m.onOOM != nil {
				m.onOOM()
			}
			if len(m.free) == 0 {
				return deadline, 0, ErrOutOfMemory
			}
		}
		idx := m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		return deadline, idx, nil
	}
	idx := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	return 0, idx, nil
}

func (m *refManager) reclaim() time.Duration {
	m.stats.ReclaimScans++
	want := m.cfg.PageClusterPages
	freed := 0

	cacheShare := want
	if m.cfg.Swappiness > 0 {
		cacheShare = want * (100 - m.cfg.Swappiness) / 100
	}
	for freed < cacheShare && len(m.cacheFrames) > 0 {
		m.dropOneCachePage()
		freed++
	}
	if freed >= want {
		return 0
	}

	dirtyVictims := 0
	n := len(m.frames)
	for scanned := 0; scanned < 2*n && freed < want; scanned++ {
		f := &m.frames[m.clockHand]
		hand := m.clockHand
		m.clockHand = (m.clockHand + 1) % n
		if !f.inUse || f.owner == cacheOwner {
			continue
		}
		if f.referenced {
			f.referenced = false
			m.stats.SecondChanceHit++
			continue
		}
		s := m.spaces[f.owner]
		if s == nil {
			m.releaseFrame(int32(hand))
			freed++
			continue
		}
		p := &s.pages[f.page]
		if p.dirty {
			if m.swapUsed+m.cfg.PageSize > m.cfg.SwapBytes {
				continue
			}
			p.slot = true
			p.dirty = false
			m.swapUsed += m.cfg.PageSize
			dirtyVictims++
			m.stats.PagedOutBytes += m.cfg.PageSize
			s.stats.PagedOutBytes += m.cfg.PageSize
		}
		if p.slot {
			p.state = pageSwapped
			s.swapped++
		} else {
			p.state = pageUntouched
		}
		s.resident--
		m.releaseFrame(p.frame)
		freed++
	}

	var deadline time.Duration
	if dirtyVictims > 0 {
		bytes := int64(dirtyVictims) * m.cfg.PageSize
		deadline = m.swap.Submit(disk.Write, bytes, m.swapOutStream)
		m.noteSwapTraffic(bytes)
	}
	return deadline
}

func (m *refManager) noteSwapTraffic(bytes int64) {
	ev := swapEvent{at: m.eng.Now(), bytes: bytes}
	if len(m.swapEvents) < swapEventRing {
		m.swapEvents = append(m.swapEvents, ev)
		return
	}
	m.swapEvents[m.swapHead] = ev
	m.swapHead = (m.swapHead + 1) % swapEventRing
}

func (m *refManager) SwapRate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	cutoff := m.eng.Now() - window
	var total int64
	for _, ev := range m.swapEvents {
		if ev.at >= cutoff {
			total += ev.bytes
		}
	}
	return float64(total) / window.Seconds()
}

func (m *refManager) dropOneCachePage() {
	idx := m.cacheFrames[len(m.cacheFrames)-1]
	m.cacheFrames = m.cacheFrames[:len(m.cacheFrames)-1]
	m.releaseFrame(idx)
	m.stats.CacheDropBytes += m.cfg.PageSize
}
